(* Benchmark harness: regenerates every table and figure of the
   evaluation (experiments E1-E11 in DESIGN.md / EXPERIMENTS.md), plus a
   Bechamel suite that times the simulator's own hot paths.

   All experiment metrics are *simulated cycles* and are deterministic;
   only the Bechamel section measures wall-clock time.

   Usage: main.exe [--only E4 E7 ...] [--quick] *)

open Velum_util
open Velum_devices
open Velum_vmm
open Velum_guests

let quick = ref false
let only : string list ref = ref []

let selected name = !only = [] || List.mem name !only

let section name title =
  if selected name then begin
    Printf.printf "\n================================================================\n";
    Printf.printf "%s — %s\n" name title;
    Printf.printf "================================================================\n\n";
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Harness helpers                                                     *)
(* ------------------------------------------------------------------ *)

let run_native setup =
  let platform = Platform.create ~frames:(setup.Images.frames + 16) () in
  Images.load_native platform setup;
  (match Platform.run platform with
  | Platform.Halted -> ()
  | Platform.Out_of_budget -> failwith "native run: out of budget"
  | Platform.Deadlock -> failwith "native run: deadlock");
  (platform, Platform.cycles platform)

let run_vm ?(paging = Vm.Nested_paging) ?(pv = Vm.no_pv) ?host_frames ?exec_mode ?engine
    setup =
  let frames =
    match host_frames with Some f -> f | None -> setup.Images.frames + 1024
  in
  let host = Host.create ~frames () in
  let hyp = Hypervisor.create ~host () in
  let vm =
    Hypervisor.create_vm hyp ~name:"bench" ~mem_frames:setup.Images.frames ~paging ~pv
      ?exec_mode ?engine ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  (match Hypervisor.run hyp ~budget:20_000_000_000L with
  | Hypervisor.All_halted -> ()
  | o ->
      failwith
        (Printf.sprintf "vm run did not halt (%s)"
           (match o with
           | Hypervisor.Out_of_budget -> "budget"
           | Hypervisor.Idle_deadlock -> "deadlock"
           | _ -> "?")));
  let total = Int64.add (Vm.guest_cycles vm) (Vm.vmm_cycles vm) in
  (vm, total)

(* Marginal cost of one "operation": run the same workload at two sizes
   and divide the cycle delta by the op delta — boot and fixed costs
   cancel. *)
let marginal_native ~build ~n1 ~n2 =
  let _, c1 = run_native (build n1) in
  let _, c2 = run_native (build n2) in
  Int64.to_float (Int64.sub c2 c1) /. float_of_int (n2 - n1)

let marginal_vm ?paging ?pv ?exec_mode ~build ~n1 ~n2 () =
  let _, c1 = run_vm ?paging ?pv ?exec_mode (build n1) in
  let _, c2 = run_vm ?paging ?pv ?exec_mode (build n2) in
  Int64.to_float (Int64.sub c2 c1) /. float_of_int (n2 - n1)

let mean_exit_cycles vm kind =
  let n = Monitor.count vm.Vm.monitor kind in
  if n = 0 then 0.0 else Int64.to_float (Monitor.cycles vm.Vm.monitor kind) /. float_of_int n

(* ------------------------------------------------------------------ *)
(* E1 — Table 1: VM-exit microcosts by exit type                       *)
(* ------------------------------------------------------------------ *)

let e1 () =
  if section "E1" "Table 1: VM-exit service cost by exit type (cycles)" then begin
    let t =
      Tablefmt.create
        [ ("exit type", Tablefmt.Left); ("count", Tablefmt.Right);
          ("mean cycles", Tablefmt.Right) ]
    in
    let row name vm kind =
      Tablefmt.add_row t
        [ name; Tablefmt.cell_i (Monitor.count vm.Vm.monitor kind);
          Tablefmt.cell_f (mean_exit_cycles vm kind) ]
    in
    let n = if !quick then 100L else 400L in
    (* csr reads: gettime syscalls execute csrr time in the guest kernel *)
    let vm, _ =
      run_vm (Images.plan ~user:(Workloads.syscall_stress ~num:Abi.sys_gettime ~count:n) ())
    in
    row "csr read (csrr time)" vm Monitor.E_csr;
    (* trap reflection: null syscalls *)
    let vm, _ = run_vm (Images.plan ~user:(Workloads.syscall_loop ~count:n) ()) in
    row "guest trap (ecall reflect)" vm Monitor.E_guest_trap;
    (* port I/O: console output through the UART port *)
    let vm, _ = run_vm (Images.plan ~user:(Workloads.hello ()) ()) in
    row "port i/o (console)" vm Monitor.E_port_io;
    (* MMIO: emulated block device register programming *)
    let vm, _ =
      run_vm
        (Images.plan ~heap_pages:8
           ~user:(Workloads.blk_read ~sector:0 ~count:2 ~reps:(Int64.to_int n / 8)) ())
    in
    row "mmio (device register)" vm Monitor.E_mmio;
    (* trapped guest page-table write (shadow paging) *)
    let vm, _ =
      run_vm ~paging:Vm.Shadow_paging
        (Images.plan ~user:(Workloads.pt_churn ~batch:8 ~count:(Int64.to_int n / 8) ()) ())
    in
    row "pt write (shadow)" vm Monitor.E_pt_write;
    row "hidden fault (shadow fill)" vm Monitor.E_shadow_fill;
    (* hypercall *)
    let vm, _ =
      run_vm ~pv:Vm.full_pv
        (Images.plan ~pv_console:true ~user:(Workloads.hello ()) ())
    in
    row "hypercall (pv console)" vm Monitor.E_hypercall;
    Tablefmt.print t
  end

(* ------------------------------------------------------------------ *)
(* E2 — Table 2: privileged-operation latency, native vs virtualized   *)
(* ------------------------------------------------------------------ *)

let e2 () =
  if section "E2" "Table 2: operation latency (cycles), native vs virtualized" then begin
    let t =
      Tablefmt.create
        [ ("operation", Tablefmt.Left); ("native", Tablefmt.Right);
          ("shadow", Tablefmt.Right); ("nested", Tablefmt.Right);
          ("pv", Tablefmt.Right); ("worst/native", Tablefmt.Right) ]
    in
    let n1, n2 = if !quick then (50, 150) else (200, 800) in
    let cn1, cn2 = if !quick then (10, 30) else (25, 100) in
    let syscall n = Images.plan ~user:(Workloads.syscall_loop ~count:(Int64.of_int n)) () in
    let sy_nat = marginal_native ~build:syscall ~n1 ~n2 in
    let sy_sh = marginal_vm ~paging:Vm.Shadow_paging ~build:syscall ~n1 ~n2 () in
    let sy_ne = marginal_vm ~paging:Vm.Nested_paging ~build:syscall ~n1 ~n2 () in
    Tablefmt.add_row t
      [ "null syscall"; Tablefmt.cell_f sy_nat; Tablefmt.cell_f sy_sh;
        Tablefmt.cell_f sy_ne; "-"; Tablefmt.cell_f (Float.max sy_sh sy_ne /. sy_nat) ];
    let churn n = Images.plan ~user:(Workloads.pt_churn ~batch:16 ~count:n ()) () in
    let churn_pv n =
      Images.plan ~pv_pt:true ~user:(Workloads.pt_churn ~batch:16 ~count:n ()) ()
    in
    let per_page v = v /. 16.0 in
    let pt_nat = per_page (marginal_native ~build:churn ~n1:cn1 ~n2:cn2) in
    let pt_sh = per_page (marginal_vm ~paging:Vm.Shadow_paging ~build:churn ~n1:cn1 ~n2:cn2 ()) in
    let pt_ne = per_page (marginal_vm ~paging:Vm.Nested_paging ~build:churn ~n1:cn1 ~n2:cn2 ()) in
    let pt_pv =
      per_page
        (marginal_vm ~paging:Vm.Shadow_paging ~pv:Vm.full_pv ~build:churn_pv ~n1:cn1 ~n2:cn2 ())
    in
    Tablefmt.add_row t
      [ "map+touch+unmap page"; Tablefmt.cell_f pt_nat; Tablefmt.cell_f pt_sh;
        Tablefmt.cell_f pt_ne; Tablefmt.cell_f pt_pv;
        Tablefmt.cell_f (pt_sh /. pt_nat) ];
    let gettime n =
      Images.plan ~user:(Workloads.syscall_stress ~num:Abi.sys_gettime ~count:(Int64.of_int n)) ()
    in
    let gt_nat = marginal_native ~build:gettime ~n1 ~n2 in
    let gt_sh = marginal_vm ~paging:Vm.Shadow_paging ~build:gettime ~n1 ~n2 () in
    let gt_ne = marginal_vm ~paging:Vm.Nested_paging ~build:gettime ~n1 ~n2 () in
    Tablefmt.add_row t
      [ "syscall + csr read"; Tablefmt.cell_f gt_nat; Tablefmt.cell_f gt_sh;
        Tablefmt.cell_f gt_ne; "-"; Tablefmt.cell_f (Float.max gt_sh gt_ne /. gt_nat) ];
    Tablefmt.print t
  end

(* ------------------------------------------------------------------ *)
(* E3 — Figure 1: workload slowdown vs native                          *)
(* ------------------------------------------------------------------ *)

let e3 () =
  if section "E3" "Figure 1: slowdown vs native, per workload" then begin
    let t =
      Tablefmt.create
        [ ("workload", Tablefmt.Left); ("native/op", Tablefmt.Right);
          ("shadow ×", Tablefmt.Right); ("nested ×", Tablefmt.Right) ]
    in
    let cases =
      [
        ( "cpu-bound (per 1k iters)",
          (fun n ->
            Images.plan ~user:(Workloads.cpu_spin ~iters:(Int64.of_int (n * 1000))) ()),
          (if !quick then (5, 20) else (20, 100)) );
        ( "syscall-heavy (per call)",
          (fun n -> Images.plan ~user:(Workloads.syscall_loop ~count:(Int64.of_int n)) ()),
          (if !quick then (50, 200) else (200, 1000)) );
        ( "tlb-miss-heavy (per iter, 256p)",
          (fun n ->
            Images.plan ~heap_pages:256
              ~user:(Workloads.memwalk ~pages:256 ~iters:n ~write:true) ()),
          (if !quick then (2, 6) else (4, 16)) );
        ( "pt-churn (per batch-16 iter)",
          (fun n -> Images.plan ~user:(Workloads.pt_churn ~batch:16 ~count:n ()) ()),
          (if !quick then (10, 30) else (25, 100)) );
      ]
    in
    List.iter
      (fun (name, build, (n1, n2)) ->
        let nat = marginal_native ~build ~n1 ~n2 in
        let sh = marginal_vm ~paging:Vm.Shadow_paging ~build ~n1 ~n2 () in
        let ne = marginal_vm ~paging:Vm.Nested_paging ~build ~n1 ~n2 () in
        Tablefmt.add_row t
          [ name; Tablefmt.cell_f nat; Tablefmt.cell_f ~decimals:3 (sh /. nat);
            Tablefmt.cell_f ~decimals:3 (ne /. nat) ])
      cases;
    Tablefmt.print t;
    Printf.printf
      "Expected shape: cpu-bound ~1.0x everywhere; syscall-heavy and pt-churn pay the\n\
       trap-and-emulate tax (shadow worst on pt-churn); tlb-miss-heavy pays the 2-D\n\
       walk tax under nested paging.\n"
  end

(* ------------------------------------------------------------------ *)
(* E4 — Figure 2: shadow vs nested paging crossover                    *)
(* ------------------------------------------------------------------ *)

let e4 () =
  if section "E4" "Figure 2: shadow vs nested paging (TLB-miss vs PT-update bound)" then begin
    let t =
      Tablefmt.create
        ~title:"(a) per-page-touch cycles vs working-set size (read+write walk)"
        [ ("wss pages", Tablefmt.Right); ("native", Tablefmt.Right);
          ("shadow", Tablefmt.Right); ("nested", Tablefmt.Right);
          ("nested/shadow", Tablefmt.Right) ]
    in
    let sizes = if !quick then [ 16; 128; 512 ] else [ 16; 64; 128; 256; 512; 1024 ] in
    List.iter
      (fun pages ->
        let build n =
          Images.plan ~heap_pages:pages
            ~user:(Workloads.memwalk ~pages ~iters:n ~write:true) ()
        in
        let n1, n2 = if !quick then (2, 6) else (4, 12) in
        let per_iter_to_touch v = v /. float_of_int pages in
        let nat = per_iter_to_touch (marginal_native ~build ~n1 ~n2) in
        let sh =
          per_iter_to_touch (marginal_vm ~paging:Vm.Shadow_paging ~build ~n1 ~n2 ())
        in
        let ne =
          per_iter_to_touch (marginal_vm ~paging:Vm.Nested_paging ~build ~n1 ~n2 ())
        in
        Tablefmt.add_row t
          [ string_of_int pages; Tablefmt.cell_f nat; Tablefmt.cell_f sh;
            Tablefmt.cell_f ne; Tablefmt.cell_f ~decimals:2 (ne /. sh) ])
      sizes;
    Tablefmt.print t;
    let t2 =
      Tablefmt.create ~title:"(b) page-table churn: cycles per page mapped+touched+unmapped (batch 16)"
        [ ("config", Tablefmt.Left); ("cycles/op", Tablefmt.Right);
          ("vs nested", Tablefmt.Right) ]
    in
    let build n = Images.plan ~user:(Workloads.pt_churn ~batch:16 ~count:n ()) () in
    let build_pv n =
      Images.plan ~pv_pt:true ~user:(Workloads.pt_churn ~batch:16 ~count:n ()) ()
    in
    let n1, n2 = if !quick then (10, 30) else (25, 100) in
    let per_page v = v /. 16.0 in
    let ne = per_page (marginal_vm ~paging:Vm.Nested_paging ~build ~n1 ~n2 ()) in
    let sh = per_page (marginal_vm ~paging:Vm.Shadow_paging ~build ~n1 ~n2 ()) in
    let pv =
      per_page
        (marginal_vm ~paging:Vm.Shadow_paging ~pv:Vm.full_pv ~build:build_pv ~n1 ~n2 ())
    in
    List.iter
      (fun (name, v) ->
        Tablefmt.add_row t2
          [ name; Tablefmt.cell_f v; Tablefmt.cell_f ~decimals:2 (v /. ne) ])
      [ ("nested (direct PT writes)", ne); ("shadow (trapped PT writes)", sh);
        ("shadow + PV batch updates", pv) ];
    Tablefmt.print t2;
    Printf.printf
      "Expected shape: (a) once the working set exceeds the TLB, nested pays the 2-D\n\
       walk on every miss (nested/shadow >> 1); (b) shadow pays an exit per PT write,\n\
       paravirtual updates claw most of it back, nested is near native.\n"
  end

(* ------------------------------------------------------------------ *)
(* E5 — Figure 3: I/O throughput, emulated vs paravirtual              *)
(* ------------------------------------------------------------------ *)

let e5 () =
  if section "E5" "Figure 3: block I/O cost, emulated MMIO vs virtio ring" then begin
    let t =
      Tablefmt.create
        [ ("sectors/op", Tablefmt.Right); ("emul cyc/KB", Tablefmt.Right);
          ("virtio cyc/KB", Tablefmt.Right); ("emul exits/op", Tablefmt.Right);
          ("virtio exits/op", Tablefmt.Right); ("speedup", Tablefmt.Right) ]
    in
    let sizes = if !quick then [ 1; 8 ] else [ 1; 4; 16; 32 ] in
    List.iter
      (fun sectors ->
        let heap = ((sectors * 512) / 4096) + 2 in
        let reps1, reps2 = if !quick then (4, 12) else (8, 32) in
        let build_e n =
          Images.plan ~heap_pages:heap
            ~user:(Workloads.blk_read ~sector:0 ~count:sectors ~reps:n) ()
        in
        let build_v n =
          Images.plan ~heap_pages:heap
            ~user:(Workloads.vblk_read ~sector:0 ~count:sectors ~reps:n) ()
        in
        let kb = float_of_int (sectors * 512) /. 1024.0 in
        let emul = marginal_vm ~build:build_e ~n1:reps1 ~n2:reps2 () /. kb in
        let virtio = marginal_vm ~build:build_v ~n1:reps1 ~n2:reps2 () /. kb in
        (* exits per op, from a single run *)
        let vm_e, _ = run_vm (build_e reps2) in
        let vm_v, _ = run_vm (build_v reps2) in
        let exits vm = float_of_int (Monitor.count vm.Vm.monitor Monitor.E_mmio) /. float_of_int reps2 in
        Tablefmt.add_row t
          [ string_of_int sectors; Tablefmt.cell_f emul; Tablefmt.cell_f virtio;
            Tablefmt.cell_f (exits vm_e); Tablefmt.cell_f (exits vm_v);
            Tablefmt.cell_f ~decimals:2 (emul /. virtio) ])
      sizes;
    Tablefmt.print t;
    Printf.printf
      "Expected shape: the ring batches submissions, so virtio needs fewer exits per\n\
       operation and wins most at small requests where per-exit overhead dominates.\n"
  end

(* ------------------------------------------------------------------ *)
(* E6 — Figure 4: scheduler fairness and weights                       *)
(* ------------------------------------------------------------------ *)

let e6 () =
  if section "E6" "Figure 4: CPU shares under weights (credit vs round-robin vs BVT)" then begin
    let weights = [ 256; 512; 1024 ] in
    let budget = if !quick then 30_000_000L else 120_000_000L in
    let shares sched_make =
      let host = Host.create ~frames:4096 () in
      let hyp = Hypervisor.create ~host ~sched:(sched_make ()) () in
      let setup = Images.plan ~user:(Workloads.cpu_spin ~iters:1_000_000_000L) () in
      let vms =
        List.map
          (fun w ->
            let vm =
              Hypervisor.create_vm hyp ~name:(Printf.sprintf "w%d" w)
                ~mem_frames:setup.Images.frames ~weight:w ~entry:Images.entry ()
            in
            Images.load_vm vm setup;
            vm)
          weights
      in
      ignore (Hypervisor.run hyp ~budget);
      let cycles = List.map (fun vm -> Int64.to_float (Vm.guest_cycles vm)) vms in
      let total = List.fold_left ( +. ) 0.0 cycles in
      List.map (fun c -> c /. total) cycles
    in
    let t =
      Tablefmt.create
        [ ("scheduler", Tablefmt.Left); ("share w=256", Tablefmt.Right);
          ("share w=512", Tablefmt.Right); ("share w=1024", Tablefmt.Right);
          ("weighted Jain", Tablefmt.Right) ]
    in
    List.iter
      (fun (name, make) ->
        let s = shares make in
        let weighted =
          Array.of_list (List.map2 (fun share w -> share /. float_of_int w) s weights)
        in
        let jain = Stats.jain_fairness weighted in
        Tablefmt.add_row t
          (name
           :: List.map (fun v -> Tablefmt.cell_f ~decimals:3 v) s
          @ [ Tablefmt.cell_f ~decimals:3 jain ]))
      [
        ("credit", fun () -> Credit.create ());
        ("round-robin", fun () -> Round_robin.create ());
        ("bvt", fun () -> Bvt.create ());
      ];
    Tablefmt.print t;
    (* (b) CPU caps: a capped spinner sharing the host with an uncapped
       one lands on its ceiling; the uncapped one absorbs the slack. *)
    let t2 =
      Tablefmt.create ~title:"(b) credit-scheduler caps (capped vs uncapped spinner)"
        [ ("cap %", Tablefmt.Right); ("capped share", Tablefmt.Right);
          ("uncapped share", Tablefmt.Right) ]
    in
    List.iter
      (fun cap ->
        let host = Host.create ~frames:4096 () in
        let hyp = Hypervisor.create ~host () in
        let setup = Images.plan ~user:(Workloads.cpu_spin ~iters:1_000_000_000L) () in
        let mk name =
          let vm =
            Hypervisor.create_vm hyp ~name ~mem_frames:setup.Images.frames
              ~entry:Images.entry ()
          in
          Images.load_vm vm setup;
          vm
        in
        let capped = mk "capped" and free = mk "free" in
        capped.Vm.vcpus.(0).Vcpu.cap <- cap;
        ignore (Hypervisor.run hyp ~budget);
        let total = Int64.to_float (Hypervisor.now hyp) in
        Tablefmt.add_row t2
          [ string_of_int cap;
            Tablefmt.cell_f ~decimals:3 (Int64.to_float (Vm.guest_cycles capped) /. total);
            Tablefmt.cell_f ~decimals:3 (Int64.to_float (Vm.guest_cycles free) /. total) ])
      [ 10; 25; 50 ];
    Tablefmt.print t2;
    Printf.printf
      "Expected shape: credit and BVT track the 1:2:4 weight ratio (weighted Jain\n\
       near 1.0); round-robin ignores weights and splits evenly (weighted Jain low);\n\
       caps pin the capped guest to its ceiling while the peer absorbs the slack.\n"
  end

(* ------------------------------------------------------------------ *)
(* E7 — Figure 5: live migration vs dirty rate                         *)
(* ------------------------------------------------------------------ *)

let e7 () =
  if section "E7" "Figure 5: migration total time and downtime vs dirty rate" then begin
    let t =
      Tablefmt.create
        [ ("dirty delay", Tablefmt.Right); ("strategy", Tablefmt.Left);
          ("total kcyc", Tablefmt.Right); ("downtime kcyc", Tablefmt.Right);
          ("pages", Tablefmt.Right); ("rounds", Tablefmt.Right);
          ("remote faults", Tablefmt.Right) ]
    in
    let delays = if !quick then [ 8000; 0 ] else [ 12000; 6000; 1000; 0 ] in
    List.iter
      (fun delay ->
        let strategies =
          [ ("stop-and-copy", `Stop); ("pre-copy", `Pre); ("post-copy", `Post) ]
        in
        List.iteri
          (fun i (name, strat) ->
            let setup =
              Images.plan ~heap_pages:128
                ~user:(Workloads.dirty_loop ~pages:96 ~delay) ()
            in
            let host_a = Host.create ~frames:(setup.Images.frames + 1024) () in
            let host_b = Host.create ~frames:(setup.Images.frames + 1024) () in
            let src = Hypervisor.create ~host:host_a () in
            let dst = Hypervisor.create ~host:host_b () in
            let vm =
              Hypervisor.create_vm src ~name:"mig" ~mem_frames:setup.Images.frames
                ~entry:Images.entry ()
            in
            Images.load_vm vm setup;
            ignore (Hypervisor.run src ~budget:3_000_000L);
            let link = Link.create () in
            let _twin, r =
              match strat with
              | `Stop -> Migrate.stop_and_copy ~src ~dst ~vm ~link ()
              | `Pre -> Migrate.precopy ~src ~dst ~vm ~link ~max_rounds:12 ~stop_threshold:8 ()
              | `Post -> Migrate.postcopy ~src ~dst ~vm ~link ()
            in
            Tablefmt.add_row t
              [ (if i = 0 then string_of_int delay else "");
                name;
                Tablefmt.cell_f ~decimals:1
                  (Int64.to_float r.Migrate.total_cycles /. 1000.0);
                Tablefmt.cell_f ~decimals:1
                  (Int64.to_float r.Migrate.downtime_cycles /. 1000.0);
                Tablefmt.cell_i r.Migrate.pages_sent;
                string_of_int r.Migrate.rounds;
                Tablefmt.cell_i r.Migrate.remote_faults ])
          strategies;
        Tablefmt.add_separator t)
      delays;
    Tablefmt.print t;
    Printf.printf
      "Expected shape: stop-and-copy downtime = total; pre-copy downtime is a small\n\
       fraction but grows (and rounds/pages grow) as the dirty rate rises (smaller\n\
       delay); post-copy downtime stays minimal at the price of remote faults.\n"
  end

(* ------------------------------------------------------------------ *)
(* E8 — Figure 6: content-based page sharing                           *)
(* ------------------------------------------------------------------ *)

let e8 () =
  if section "E8" "Figure 6: page sharing savings vs number of identical VMs" then begin
    let t =
      Tablefmt.create
        [ ("VMs", Tablefmt.Right); ("frames before", Tablefmt.Right);
          ("frames after", Tablefmt.Right); ("saved", Tablefmt.Right);
          ("saved %", Tablefmt.Right) ]
    in
    let counts = if !quick then [ 2; 4 ] else [ 2; 4; 8; 16 ] in
    List.iter
      (fun n ->
        let setup = Images.plan ~user:(Workloads.cpu_spin ~iters:1_000_000_000L) () in
        let host = Host.create ~frames:((n * setup.Images.frames) + 2048) () in
        let hyp = Hypervisor.create ~host () in
        let vms =
          List.init n (fun i ->
              let vm =
                Hypervisor.create_vm hyp ~name:(Printf.sprintf "vm%d" i)
                  ~mem_frames:setup.Images.frames ~entry:Images.entry ()
              in
              Images.load_vm vm setup;
              vm)
        in
        ignore (Hypervisor.run hyp ~budget:(Int64.of_int (n * 1_500_000)));
        let before = Frame_alloc.used_count host.Host.alloc in
        ignore (Mem_mgr.share_pass vms);
        let after = Frame_alloc.used_count host.Host.alloc in
        Tablefmt.add_row t
          [ string_of_int n; Tablefmt.cell_i before; Tablefmt.cell_i after;
            Tablefmt.cell_i (before - after);
            Tablefmt.cell_f ~decimals:1
              (100.0 *. float_of_int (before - after) /. float_of_int before) ])
      counts;
    Tablefmt.print t;
    Printf.printf
      "Expected shape: identical VMs dedup to one copy, so savings approach\n\
       (N-1)/N of guest memory as N grows — the ESX content-sharing curve.\n"
  end

(* ------------------------------------------------------------------ *)
(* E9 — Table 3: server consolidation (the source text's claim)        *)
(* ------------------------------------------------------------------ *)

let e9 () =
  if section "E9" "Table 3: consolidating 50 servers (the slide deck's deployment)" then begin
    (* A 50-VM fleet shaped like the deck's inventory: domain
       controllers, terminal servers, ERP app servers, SQL boxes, a mail
       suite, web servers, developer test machines. *)
    let mk name n cpu mem = List.init n (fun i ->
        { Placement.vm_name = Printf.sprintf "%s-%d" name i; cpu_units = cpu; mem_mb = mem })
    in
    let fleet =
      List.concat
        [
          mk "ad-dc" 4 50 2048;
          mk "terminal" 8 200 4096;
          mk "erp-app" 6 150 4096;
          mk "mssql" 6 250 8192;
          mk "mail" 2 200 8192;
          mk "web" 8 100 2048;
          mk "antivirus" 2 100 2048;
          mk "devtest" 10 100 2048;
          mk "legacy-dos" 4 25 512;
        ]
    in
    let spec = Placement.default_host in
    let plan = Placement.first_fit_decreasing spec fleet in
    let report = Placement.cost_savings spec fleet plan () in
    let t =
      Tablefmt.create [ ("metric", Tablefmt.Left); ("value", Tablefmt.Right) ]
    in
    List.iter
      (fun (k, v) -> Tablefmt.add_row t [ k; v ])
      [
        ("VMs", Tablefmt.cell_i (List.length fleet));
        ("hosts before (1 VM/host)", Tablefmt.cell_i report.Placement.unconsolidated_hosts);
        ("hosts after (FFD)", Tablefmt.cell_i report.Placement.consolidated_hosts);
        ("consolidation ratio", Tablefmt.cell_f ~decimals:2 (Placement.consolidation_ratio plan));
        ("mean cpu utilization", Tablefmt.cell_f ~decimals:2 plan.Placement.cpu_utilization);
        ("mean mem utilization", Tablefmt.cell_f ~decimals:2 plan.Placement.mem_utilization);
        ("power before (W, incl cooling)", Tablefmt.cell_f ~decimals:0 report.Placement.watts_before);
        ("power after (W, incl cooling)", Tablefmt.cell_f ~decimals:0 report.Placement.watts_after);
        ("annual kWh saved", Tablefmt.cell_f ~decimals:0 report.Placement.annual_kwh_saved);
        ("annual € saved", Tablefmt.cell_f ~decimals:0 report.Placement.annual_euro_saved);
        ("€ saved / displaced server / year",
         Tablefmt.cell_f ~decimals:0 report.Placement.euro_saved_per_displaced_server);
      ];
    Tablefmt.print t;
    Printf.printf
      "Expected shape: ratio in the 3-4 VMs/host band and roughly 200-250 EUR per\n\
       displaced server per year of power+cooling — the numbers the deck reports\n\
       (20 hosts for 50 VMs, ~10k EUR/year overall).\n"
  end

(* ------------------------------------------------------------------ *)
(* E10 — Table 4: memory overcommit, balloon vs hypervisor swap        *)
(* ------------------------------------------------------------------ *)

let e10 () =
  if section "E10" "Table 4: reclaiming memory — balloon vs hypervisor swapping" then begin
    let wss = 48 in
    let heap = 128 in
    let iters = if !quick then 6000 else 20000 in
    let run_case reclaim =
      let setup =
        Images.plan ~heap_pages:heap
          ~user:(Workloads.memwalk ~pages:wss ~iters ~write:true) ()
      in
      let host = Host.create ~frames:(setup.Images.frames + 1024) () in
      let hyp = Hypervisor.create ~host () in
      let vm =
        Hypervisor.create_vm hyp ~name:"oc" ~mem_frames:setup.Images.frames
          ~entry:Images.entry ()
      in
      Images.load_vm vm setup;
      (* boot + first touch pass, then reclaim, then measure the rest *)
      ignore (Hypervisor.run hyp ~budget:2_000_000L);
      let reclaimed = reclaim vm in
      let before = Int64.add (Vm.guest_cycles vm) (Vm.vmm_cycles vm) in
      (match Hypervisor.run hyp ~budget:20_000_000_000L with
      | Hypervisor.All_halted -> ()
      | _ -> failwith "overcommit case did not finish");
      let after = Int64.add (Vm.guest_cycles vm) (Vm.vmm_cycles vm) in
      (reclaimed, Int64.to_float (Int64.sub after before),
       Monitor.count vm.Vm.monitor Monitor.E_swap_in)
    in
    let pages_to_reclaim = 64 in
    let _, base, _ = run_case (fun _ -> 0) in
    let balloon_reclaimed, balloon, balloon_swapins =
      (* The guest's balloon driver hands back pages it is not using:
         the heap tail beyond the working set. *)
      run_case (fun vm ->
          let heap_gfn = Int64.to_int (Int64.shift_right_logical Abi.heap_base 12) in
          let n = ref 0 in
          for p = heap - pages_to_reclaim to heap - 1 do
            if Vm.balloon_out vm (Int64.of_int (heap_gfn + p)) then incr n
          done;
          !n)
    in
    let evict_reclaimed, evict, evict_swapins =
      (* The hypervisor cannot see guest usage: it swaps out blindly and
         hits hot pages. *)
      run_case (fun vm -> Mem_mgr.evict vm ~n:pages_to_reclaim)
    in
    let t =
      Tablefmt.create
        [ ("policy", Tablefmt.Left); ("pages reclaimed", Tablefmt.Right);
          ("runtime kcyc", Tablefmt.Right); ("slowdown", Tablefmt.Right);
          ("swap-ins", Tablefmt.Right) ]
    in
    Tablefmt.add_row t
      [ "no reclaim (baseline)"; "0"; Tablefmt.cell_f ~decimals:0 (base /. 1000.0);
        "1.00"; "0" ];
    Tablefmt.add_row t
      [ "balloon (guest picks free pages)"; Tablefmt.cell_i balloon_reclaimed;
        Tablefmt.cell_f ~decimals:0 (balloon /. 1000.0);
        Tablefmt.cell_f ~decimals:2 (balloon /. base); Tablefmt.cell_i balloon_swapins ];
    Tablefmt.add_row t
      [ "hypervisor swap (blind eviction)"; Tablefmt.cell_i evict_reclaimed;
        Tablefmt.cell_f ~decimals:0 (evict /. 1000.0);
        Tablefmt.cell_f ~decimals:2 (evict /. base); Tablefmt.cell_i evict_swapins ];
    Tablefmt.print t;
    Printf.printf
      "Expected shape: ballooning reclaims the same pages at ~no cost because the\n\
       guest chooses victims; hypervisor swapping faults hot pages back in at disk\n\
       latency — the ESX balloon-vs-swap result.\n"
  end

(* ------------------------------------------------------------------ *)
(* E11 — Table 5: snapshot cost, full vs live (copy-on-write)          *)
(* ------------------------------------------------------------------ *)

let e11 () =
  if section "E11" "Table 5: snapshot cost vs memory size, full vs live COW" then begin
    let t =
      Tablefmt.create
        [ ("heap pages", Tablefmt.Right); ("vm frames", Tablefmt.Right);
          ("full bytes", Tablefmt.Right); ("live pages (COW)", Tablefmt.Right);
          ("cow breaks after", Tablefmt.Right) ]
    in
    let sizes = if !quick then [ 0; 128 ] else [ 0; 64; 256; 512 ] in
    List.iter
      (fun heap ->
        let user =
          if heap = 0 then Workloads.cpu_spin ~iters:1_000_000_000L
          else Workloads.dirty_loop ~pages:(min heap 16) ~delay:20
        in
        let setup = Images.plan ~heap_pages:heap ~user () in
        let host = Host.create ~frames:((3 * setup.Images.frames) + 1024) () in
        let hyp = Hypervisor.create ~host () in
        let vm =
          Hypervisor.create_vm hyp ~name:"snap" ~mem_frames:setup.Images.frames
            ~entry:Images.entry ()
        in
        Images.load_vm vm setup;
        ignore (Hypervisor.run hyp ~budget:3_000_000L);
        let full = Snapshot.capture vm in
        let live = Snapshot.capture_live vm in
        ignore (Hypervisor.run hyp ~budget:3_000_000L);
        let breaks = Monitor.count vm.Vm.monitor Monitor.E_cow_break in
        Tablefmt.add_row t
          [ string_of_int heap; Tablefmt.cell_i setup.Images.frames;
            Tablefmt.cell_i (Snapshot.size_bytes full);
            Tablefmt.cell_i (Snapshot.live_pages live); Tablefmt.cell_i breaks ];
        Snapshot.release_live live)
      sizes;
    Tablefmt.print t;
    Printf.printf
      "Expected shape: full snapshots scale with memory size; live snapshots cost\n\
       O(pages) metadata up front and then only pay per page actually rewritten.\n"
  end

(* ------------------------------------------------------------------ *)
(* E12 — Table 6: checkpoint replication overhead vs epoch length      *)
(* ------------------------------------------------------------------ *)

let e12 () =
  if section "E12" "Table 6: HA checkpoint replication — overhead vs epoch length" then begin
    let t =
      Tablefmt.create
        [ ("epoch kcyc", Tablefmt.Right); ("epochs", Tablefmt.Right);
          ("pages/epoch", Tablefmt.Right); ("overhead %", Tablefmt.Right);
          ("loss window kcyc", Tablefmt.Right) ]
    in
    let total = if !quick then 2_000_000L else 6_000_000L in
    List.iter
      (fun epoch_cycles ->
        let setup =
          Images.plan ~heap_pages:64 ~user:(Workloads.dirty_loop ~pages:48 ~delay:500) ()
        in
        let primary =
          Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 1024) ()) ()
        in
        let backup =
          Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 1024) ()) ()
        in
        let vm =
          Hypervisor.create_vm primary ~name:"ha" ~mem_frames:setup.Images.frames
            ~entry:Images.entry ()
        in
        Images.load_vm vm setup;
        ignore (Hypervisor.run primary ~budget:3_000_000L);
        let link = Link.create () in
        let epochs = Int64.to_int (Int64.div total epoch_cycles) in
        let _twin, st =
          Replicate.protect ~primary ~backup ~vm ~link ~epoch_cycles ~epochs ()
        in
        let per_epoch =
          float_of_int st.Replicate.pages_sent /. float_of_int (max 1 st.Replicate.epochs_completed)
        in
        let overhead =
          100.0
          *. Int64.to_float st.Replicate.paused_cycles
          /. Int64.to_float (Int64.add st.Replicate.paused_cycles st.Replicate.run_cycles)
        in
        Tablefmt.add_row t
          [ Tablefmt.cell_f ~decimals:0 (Int64.to_float epoch_cycles /. 1000.0);
            string_of_int st.Replicate.epochs_completed;
            Tablefmt.cell_f ~decimals:1 per_epoch;
            Tablefmt.cell_f ~decimals:1 overhead;
            Tablefmt.cell_f ~decimals:0 (Int64.to_float epoch_cycles /. 1000.0) ])
      (if !quick then [ 200_000L; 1_000_000L ]
       else [ 100_000L; 300_000L; 1_000_000L; 3_000_000L ]);
    Tablefmt.print t;
    Printf.printf
      "Expected shape: the Remus trade-off — short epochs bound the failover loss\n\
       window but pause the guest often (high overhead); long epochs amortize the\n\
       checkpoint cost at the price of losing more work on failure.\n"
  end

(* ------------------------------------------------------------------ *)
(* E14 — Figure 8: CPU-virtualization techniques head to head          *)
(* ------------------------------------------------------------------ *)

let e14 () =
  if section "E14"
       "Figure 8: trap-and-emulate vs binary translation vs paravirtual (slowdown vs native)"
  then begin
    let t =
      Tablefmt.create
        [ ("workload", Tablefmt.Left); ("native/op", Tablefmt.Right);
          ("t&e ×", Tablefmt.Right); ("bt ×", Tablefmt.Right);
          ("pv ×", Tablefmt.Right) ]
    in
    let n1, n2 = if !quick then (50, 200) else (200, 1000) in
    let cn1, cn2 = if !quick then (10, 30) else (25, 100) in
    (* syscall-heavy: PV has no syscall shortcut, BT translates the
       reflection path *)
    let syscall n = Images.plan ~user:(Workloads.syscall_loop ~count:(Int64.of_int n)) () in
    let sy_nat = marginal_native ~build:syscall ~n1 ~n2 in
    let sy_te = marginal_vm ~build:syscall ~n1 ~n2 () in
    let sy_bt = marginal_vm ~exec_mode:Vm.Binary_translation ~build:syscall ~n1 ~n2 () in
    Tablefmt.add_row t
      [ "syscall-heavy (per call)"; Tablefmt.cell_f sy_nat;
        Tablefmt.cell_f ~decimals:2 (sy_te /. sy_nat);
        Tablefmt.cell_f ~decimals:2 (sy_bt /. sy_nat); "-" ];
    (* pt-churn under shadow paging: the Adams-Agesen adaptive-BT case *)
    let churn n = Images.plan ~user:(Workloads.pt_churn ~batch:16 ~count:n ()) () in
    let churn_pv n =
      Images.plan ~pv_pt:true ~user:(Workloads.pt_churn ~batch:16 ~count:n ()) ()
    in
    let per_page v = v /. 16.0 in
    let pt_nat = per_page (marginal_native ~build:churn ~n1:cn1 ~n2:cn2) in
    let pt_te =
      per_page (marginal_vm ~paging:Vm.Shadow_paging ~build:churn ~n1:cn1 ~n2:cn2 ())
    in
    let pt_bt =
      per_page
        (marginal_vm ~paging:Vm.Shadow_paging ~exec_mode:Vm.Binary_translation
           ~build:churn ~n1:cn1 ~n2:cn2 ())
    in
    let pt_pv =
      per_page
        (marginal_vm ~paging:Vm.Shadow_paging ~pv:Vm.full_pv ~build:churn_pv ~n1:cn1
           ~n2:cn2 ())
    in
    Tablefmt.add_row t
      [ "pt-churn, shadow (per page)"; Tablefmt.cell_f pt_nat;
        Tablefmt.cell_f ~decimals:2 (pt_te /. pt_nat);
        Tablefmt.cell_f ~decimals:2 (pt_bt /. pt_nat);
        Tablefmt.cell_f ~decimals:2 (pt_pv /. pt_nat) ];
    Tablefmt.print t;
    Printf.printf
      "Expected shape (Adams & Agesen): software BT beats trap-and-emulate wherever\n\
       exits dominate — hot sensitive sites run inline after one translation — and\n\
       approaches (without reaching) the explicitly paravirtualized interface.\n"
  end

(* ------------------------------------------------------------------ *)
(* E13 — Figure 7: multiprocessor scaling                              *)
(* ------------------------------------------------------------------ *)

let e13 () =
  if section "E13" "Figure 7: makespan scaling with physical CPUs (8 VMs)" then begin
    let t =
      Tablefmt.create
        [ ("pcpus", Tablefmt.Right); ("makespan Mcyc", Tablefmt.Right);
          ("speedup", Tablefmt.Right); ("efficiency", Tablefmt.Right);
          ("Jain", Tablefmt.Right) ]
    in
    let vms = 8 in
    let iters = if !quick then 100_000L else 400_000L in
    let baseline = ref 0.0 in
    List.iter
      (fun pcpus ->
        let setup = Images.plan ~user:(Workloads.cpu_spin ~iters) () in
        let host = Host.create ~frames:((vms * setup.Images.frames) + 2048) () in
        let hyp = Hypervisor.create ~host ~pcpus () in
        let guests =
          List.init vms (fun i ->
              let vm =
                Hypervisor.create_vm hyp ~name:(Printf.sprintf "v%d" i)
                  ~mem_frames:setup.Images.frames ~entry:Images.entry ()
              in
              Images.load_vm vm setup;
              vm)
        in
        (match Hypervisor.run hyp with
        | Hypervisor.All_halted -> ()
        | _ -> failwith "E13 fleet did not finish");
        let makespan = Int64.to_float (Hypervisor.now hyp) in
        if pcpus = 1 then baseline := makespan;
        let shares =
          Array.of_list (List.map (fun vm -> Int64.to_float (Vm.guest_cycles vm)) guests)
        in
        Tablefmt.add_row t
          [ string_of_int pcpus;
            Tablefmt.cell_f ~decimals:2 (makespan /. 1e6);
            Tablefmt.cell_f ~decimals:2 (!baseline /. makespan);
            Tablefmt.cell_f ~decimals:2 (!baseline /. makespan /. float_of_int pcpus);
            Tablefmt.cell_f ~decimals:3 (Stats.jain_fairness shares) ])
      [ 1; 2; 4; 8 ];
    Tablefmt.print t;
    Printf.printf
      "Expected shape: near-linear speedup while VMs outnumber pCPUs (the global\n\
       run queue is work-conserving), with fairness preserved at every width.\n"
  end

(* ------------------------------------------------------------------ *)
(* E15 — Table 7: application-level request/response benchmark         *)
(* ------------------------------------------------------------------ *)

let e15 () =
  if section "E15" "Table 7: client/server request-response across configurations" then begin
    let t =
      Tablefmt.create
        [ ("configuration", Tablefmt.Left); ("kcyc/request", Tablefmt.Right);
          ("exits/request", Tablefmt.Right); ("vs best", Tablefmt.Right) ]
    in
    let requests = if !quick then 20 else 60 in
    let run ~paging ~virtio ~exec_mode =
      let client_setup =
        Images.plan ~hcall_ok:true ~heap_pages:2
          ~user:(Workloads.net_client ~requests ~virtio_server:virtio) ()
      in
      let server_setup =
        Images.plan ~hcall_ok:true ~heap_pages:2
          ~user:(Workloads.net_server ~requests ~virtio) ()
      in
      let host =
        Host.create
          ~frames:(client_setup.Images.frames + server_setup.Images.frames + 1024)
          ()
      in
      let hyp = Hypervisor.create ~host () in
      let link = Link.create ~bytes_per_cycle:1.0 ~latency_cycles:300 () in
      let client =
        Hypervisor.create_vm hyp ~name:"client" ~mem_frames:client_setup.Images.frames
          ~paging ~exec_mode ~nic:(link, `A) ~entry:Images.entry ()
      in
      let server =
        Hypervisor.create_vm hyp ~name:"server" ~mem_frames:server_setup.Images.frames
          ~paging ~exec_mode ~nic:(link, `B) ~entry:Images.entry ()
      in
      Images.load_vm client client_setup;
      Images.load_vm server server_setup;
      (match Hypervisor.run hyp with
      | Hypervisor.All_halted -> ()
      | _ -> failwith "E15 pair did not finish");
      let per_req =
        Int64.to_float (Hypervisor.now hyp) /. float_of_int requests /. 1000.0
      in
      let exits =
        float_of_int
          (Monitor.total_exits client.Vm.monitor + Monitor.total_exits server.Vm.monitor)
        /. float_of_int requests
      in
      (per_req, exits)
    in
    let rows =
      [
        ("trap&emulate, emulated blk", run ~paging:Vm.Nested_paging ~virtio:false
           ~exec_mode:Vm.Trap_emulate);
        ("trap&emulate, virtio blk", run ~paging:Vm.Nested_paging ~virtio:true
           ~exec_mode:Vm.Trap_emulate);
        ("shadow paging, emulated blk", run ~paging:Vm.Shadow_paging ~virtio:false
           ~exec_mode:Vm.Trap_emulate);
        ("binary translation, virtio blk", run ~paging:Vm.Nested_paging ~virtio:true
           ~exec_mode:Vm.Binary_translation);
      ]
    in
    let best =
      List.fold_left (fun acc (_, (v, _)) -> Float.min acc v) infinity rows
    in
    List.iter
      (fun (name, (per_req, exits)) ->
        Tablefmt.add_row t
          [ name; Tablefmt.cell_f ~decimals:1 per_req; Tablefmt.cell_f ~decimals:1 exits;
            Tablefmt.cell_f ~decimals:2 (per_req /. best) ])
      rows;
    Tablefmt.print t;
    Printf.printf
      "Expected shape: the application mixes syscalls, device I/O and idle waits,\n\
       so no single optimization dominates — but PV I/O and cheap exits (BT)\n\
       compound, and the ranking mirrors the microbenchmarks.\n"
  end

(* ------------------------------------------------------------------ *)
(* A1 — ablation: TLB reach vs nested-paging overhead                  *)
(* ------------------------------------------------------------------ *)

let run_vm_tlb ~tlb_size ~paging setup =
  let host = Host.create ~frames:(setup.Images.frames + 1024) () in
  let hyp = Hypervisor.create ~host () in
  let vm =
    Hypervisor.create_vm hyp ~name:"abl" ~mem_frames:setup.Images.frames ~paging
      ~tlb_size ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  (match Hypervisor.run hyp ~budget:20_000_000_000L with
  | Hypervisor.All_halted -> ()
  | _ -> failwith "ablation run did not halt");
  Int64.add (Vm.guest_cycles vm) (Vm.vmm_cycles vm)

let a1 () =
  if section "A1" "Ablation: TLB size vs paging-mode overhead (128-page walk)" then begin
    let t =
      Tablefmt.create
        [ ("tlb entries", Tablefmt.Right); ("shadow cyc/touch", Tablefmt.Right);
          ("nested cyc/touch", Tablefmt.Right); ("nested/shadow", Tablefmt.Right) ]
    in
    let pages = 128 in
    let n1, n2 = if !quick then (2, 6) else (4, 12) in
    List.iter
      (fun tlb_size ->
        let build n =
          Images.plan ~heap_pages:pages
            ~user:(Workloads.memwalk ~pages ~iters:n ~write:true) ()
        in
        let per paging =
          let c1 = run_vm_tlb ~tlb_size ~paging (build n1) in
          let c2 = run_vm_tlb ~tlb_size ~paging (build n2) in
          Int64.to_float (Int64.sub c2 c1) /. float_of_int ((n2 - n1) * pages)
        in
        let sh = per Vm.Shadow_paging and ne = per Vm.Nested_paging in
        Tablefmt.add_row t
          [ string_of_int tlb_size; Tablefmt.cell_f sh; Tablefmt.cell_f ne;
            Tablefmt.cell_f ~decimals:2 (ne /. sh) ])
      (if !quick then [ 16; 256 ] else [ 16; 64; 128; 256 ]);
    Tablefmt.print t;
    Printf.printf
      "Expected shape: once the TLB covers the working set (>=128 entries + code\n\
       pages), both modes converge to hit-speed and the nested tax disappears —\n\
       TLB reach, not walk cost, decides whether nested paging hurts.\n"
  end

(* ------------------------------------------------------------------ *)
(* A2 — ablation: exit cost sensitivity                                *)
(* ------------------------------------------------------------------ *)

let a2 () =
  if section "A2" "Ablation: syscall slowdown vs world-switch cost" then begin
    let t =
      Tablefmt.create
        [ ("vmexit cycles", Tablefmt.Right); ("syscall cyc", Tablefmt.Right);
          ("slowdown vs native", Tablefmt.Right) ]
    in
    let n1, n2 = if !quick then (50, 150) else (200, 800) in
    let build n = Images.plan ~user:(Workloads.syscall_loop ~count:(Int64.of_int n)) () in
    let native = marginal_native ~build ~n1 ~n2 in
    List.iter
      (fun vmexit ->
        let cost = { Velum_machine.Cost_model.default with vmexit } in
        let run n =
          let setup = build n in
          let host = Host.create ~frames:(setup.Images.frames + 1024) ~cost () in
          let hyp = Hypervisor.create ~host () in
          let vm =
            Hypervisor.create_vm hyp ~name:"a2" ~mem_frames:setup.Images.frames
              ~entry:Images.entry ()
          in
          Images.load_vm vm setup;
          (match Hypervisor.run hyp ~budget:20_000_000_000L with
          | Hypervisor.All_halted -> ()
          | _ -> failwith "a2 run did not halt");
          Int64.add (Vm.guest_cycles vm) (Vm.vmm_cycles vm)
        in
        let per = Int64.to_float (Int64.sub (run n2) (run n1)) /. float_of_int (n2 - n1) in
        Tablefmt.add_row t
          [ Tablefmt.cell_i vmexit; Tablefmt.cell_f per;
            Tablefmt.cell_f ~decimals:2 (per /. native) ])
      (if !quick then [ 200; 1600 ] else [ 100; 200; 400; 800; 1600; 3200 ]);
    Tablefmt.print t;
    Printf.printf
      "Expected shape: slowdown scales linearly with the world-switch cost — the\n\
       hardware-assist story (cheaper exits) in one column.\n"
  end

(* ------------------------------------------------------------------ *)
(* A3 — ablation: virtio batch size                                    *)
(* ------------------------------------------------------------------ *)

let a3 () =
  if section "A3" "Ablation: virtio ring batching (fixed 32-sector volume)" then begin
    let t =
      Tablefmt.create
        [ ("sectors/kick", Tablefmt.Right); ("kicks", Tablefmt.Right);
          ("mmio exits", Tablefmt.Right); ("total kcyc", Tablefmt.Right) ]
    in
    List.iter
      (fun batch ->
        let reps = 32 / batch in
        let setup =
          Images.plan ~heap_pages:8
            ~user:(Workloads.vblk_read ~sector:0 ~count:batch ~reps) ()
        in
        let vm, total = run_vm setup in
        Tablefmt.add_row t
          [ string_of_int batch;
            Tablefmt.cell_i (Velum_devices.Virtio_blk.kicks vm.Vm.vblk);
            Tablefmt.cell_i (Monitor.count vm.Vm.monitor Monitor.E_mmio);
            Tablefmt.cell_f ~decimals:1 (Int64.to_float total /. 1000.0) ])
      [ 1; 2; 4; 8; 16; 32 ];
    Tablefmt.print t;
    Printf.printf
      "Expected shape: bigger batches mean fewer kicks and fewer exits for the\n\
       same data volume — the amortization argument for ring-based PV I/O.\n"
  end

(* ------------------------------------------------------------------ *)
(* A4 — ablation: zero-page compression on the migration wire          *)
(* ------------------------------------------------------------------ *)

let a4 () =
  if section "A4" "Ablation: zero-page elision vs guest memory fill" then begin
    let t =
      Tablefmt.create
        [ ("dirty heap pages", Tablefmt.Right); ("plain KB", Tablefmt.Right);
          ("compressed KB", Tablefmt.Right); ("reduction", Tablefmt.Right) ]
    in
    List.iter
      (fun fill ->
        let run compress =
          let setup =
            Images.plan ~heap_pages:256
              ~user:(Workloads.memwalk ~pages:(max 1 fill) ~iters:1 ~write:true) ()
          in
          let src =
            Hypervisor.create
              ~host:(Host.create ~frames:(setup.Images.frames + 1024) ())
              ()
          in
          let dst =
            Hypervisor.create
              ~host:(Host.create ~frames:(setup.Images.frames + 1024) ())
              ()
          in
          let vm =
            Hypervisor.create_vm src ~name:"a4" ~mem_frames:setup.Images.frames
              ~entry:Images.entry ()
          in
          Images.load_vm vm setup;
          (match Hypervisor.run src with
          | Hypervisor.All_halted -> ()
          | _ -> failwith "a4 guest did not finish");
          let link = Link.create () in
          let _twin, r = Migrate.stop_and_copy ~compress ~src ~dst ~vm ~link () in
          r.Migrate.bytes_sent
        in
        let plain = run false and compressed = run true in
        Tablefmt.add_row t
          [ string_of_int fill;
            Tablefmt.cell_i (plain / 1024);
            Tablefmt.cell_i (compressed / 1024);
            Tablefmt.cell_f ~decimals:2
              (float_of_int plain /. float_of_int compressed) ])
      (if !quick then [ 0; 128 ] else [ 0; 32; 128; 256 ]);
    Tablefmt.print t;
    Printf.printf
      "Expected shape: the emptier the guest, the more the wire shrinks; with the\n\
       heap fully written the two converge (nothing left to elide but code gaps).\n"
  end

(* ------------------------------------------------------------------ *)
(* A5 — ablation: 2 MiB superpages and TLB reach                       *)
(* ------------------------------------------------------------------ *)

let a5 () =
  if section "A5" "Ablation: guest superpages (1024-page walk, 64-entry TLB)" then begin
    let t =
      Tablefmt.create
        [ ("config", Tablefmt.Left); ("4 KiB cyc/touch", Tablefmt.Right);
          ("2 MiB cyc/touch", Tablefmt.Right); ("speedup", Tablefmt.Right) ]
    in
    let pages = 1024 in
    let n1, n2 = if !quick then (2, 6) else (4, 12) in
    let build super n =
      Images.plan ~heap_pages:pages ~heap_superpages:super
        ~user:(Workloads.memwalk ~pages ~iters:n ~write:true) ()
    in
    let native super =
      let c1 = snd (run_native (build super n1)) in
      let c2 = snd (run_native (build super n2)) in
      Int64.to_float (Int64.sub c2 c1) /. float_of_int ((n2 - n1) * pages)
    in
    let virt paging super =
      let per n =
        let _, c = run_vm ~paging (build super n) in
        c
      in
      Int64.to_float (Int64.sub (per n2) (per n1)) /. float_of_int ((n2 - n1) * pages)
    in
    let rows =
      [
        ("native", native false, native true);
        ("nested (4 KiB host frames)", virt Vm.Nested_paging false, virt Vm.Nested_paging true);
        ("shadow (splintered)", virt Vm.Shadow_paging false, virt Vm.Shadow_paging true);
      ]
    in
    List.iter
      (fun (name, small, large) ->
        Tablefmt.add_row t
          [ name; Tablefmt.cell_f small; Tablefmt.cell_f large;
            Tablefmt.cell_f ~decimals:2 (small /. large) ])
      rows;
    Tablefmt.print t;
    Printf.printf
      "Expected shape: native gets the full TLB-reach win (2 entries cover the\n\
       walk); nested keeps paying per-4KiB-miss because 4 KiB host frames splinter\n\
       the guest superpage — large pages must be large in BOTH dimensions; shadow\n\
       splinters too but its shorter 1-D refill softens the penalty.\n"
  end

(* ------------------------------------------------------------------ *)
(* E16 — fault injection: migration and replication on a lossy link    *)
(* ------------------------------------------------------------------ *)

(* Every number below is a simulated-cycle count or a counter driven by a
   dedicated splitmix64 fault stream (seed 42), so two runs of E16 must
   produce a byte-identical BENCH_fault.json — scripts/ci.sh asserts
   exactly that.  The state-match column is the end-to-end correctness
   check: a guest migrated over a lossy link, run to completion, must
   retire the same instruction count and print the same output as the
   fault-free baseline. *)

let e16 () =
  if section "E16" "Fault injection: migration and replication on a lossy link" then begin
    let scale l q = if !quick then q else l in
    let vm_instret vm =
      Array.fold_left
        (fun acc (v : Vcpu.t) ->
          Int64.add acc v.Vcpu.state.Velum_machine.Cpu.instret)
        0L vm.Vm.vcpus
    in
    (* --- pre-copy migration vs frame loss rate ----------------------- *)
    let mig_case spec =
      let setup =
        Images.plan ~heap_pages:128
          ~user:(Workloads.memwalk ~pages:96 ~iters:5000 ~write:true) ()
      in
      let host_a = Host.create ~frames:(setup.Images.frames + 1024) () in
      let host_b = Host.create ~frames:(setup.Images.frames + 1024) () in
      let src = Hypervisor.create ~host:host_a () in
      let dst = Hypervisor.create ~host:host_b () in
      let vm =
        Hypervisor.create_vm src ~name:"mig" ~mem_frames:setup.Images.frames
          ~entry:Images.entry ()
      in
      Images.load_vm vm setup;
      ignore (Hypervisor.run src ~budget:3_000_000L);
      let link = Link.create () in
      let f = Fault.create ~seed:42L () in
      (match spec with
      | `Drop p -> Fault.set_prob f Fault.Drop p
      | `Partition -> Fault.add_window f Fault.Partition ~lo:0L ~hi:Int64.max_int);
      Link.set_faults link f;
      let dst_used_before = Frame_alloc.used_count host_b.Host.alloc in
      let survivor, r =
        Migrate.precopy ~src ~dst ~vm ~link ~max_rounds:12 ~stop_threshold:8 ()
      in
      let reclaimed =
        (not r.Migrate.aborted)
        || Frame_alloc.used_count host_b.Host.alloc = dst_used_before
      in
      (* run the surviving copy to completion; a migrated (or rolled-back)
         guest must finish with exactly the baseline's output and retired
         instruction count, wherever the handoff happened *)
      let hyp = if r.Migrate.aborted then src else dst in
      (match Hypervisor.run hyp ~budget:20_000_000_000L with
      | Hypervisor.All_halted -> ()
      | _ -> failwith "E16: migrated guest did not halt");
      let output =
        if r.Migrate.aborted then Vm.console_output survivor
        else Vm.console_output vm ^ Vm.console_output survivor
      in
      (r, output, vm_instret survivor, reclaimed)
    in
    let rates = scale [ 0.0; 0.01; 0.05; 0.10 ] [ 0.0; 0.05 ] in
    let t =
      Tablefmt.create
        [ ("loss", Tablefmt.Right); ("total kcyc", Tablefmt.Right);
          ("downtime kcyc", Tablefmt.Right); ("pages", Tablefmt.Right);
          ("rounds", Tablefmt.Right); ("retransmits", Tablefmt.Right);
          ("aborted", Tablefmt.Left); ("state match", Tablefmt.Left) ]
    in
    let base_r, base_out, base_instret, _ = mig_case (`Drop 0.0) in
    let mig_rows =
      List.map
        (fun p ->
          let r, out, instret, reclaimed =
            if p = 0.0 then (base_r, base_out, base_instret, true)
            else mig_case (`Drop p)
          in
          let state_match = out = base_out && instret = base_instret in
          Tablefmt.add_row t
            [ Printf.sprintf "%.0f%%" (p *. 100.0);
              Tablefmt.cell_f ~decimals:1
                (Int64.to_float r.Migrate.total_cycles /. 1000.0);
              Tablefmt.cell_f ~decimals:1
                (Int64.to_float r.Migrate.downtime_cycles /. 1000.0);
              Tablefmt.cell_i r.Migrate.pages_sent;
              string_of_int r.Migrate.rounds;
              Tablefmt.cell_i r.Migrate.retransmits;
              (if r.Migrate.aborted then "yes" else "no");
              (if state_match then "yes" else "NO") ];
          if p > 0.0 && r.Migrate.retransmits = 0 then
            failwith "E16: lossy migration saw no retransmits";
          if not state_match then failwith "E16: migrated state diverged";
          ignore reclaimed;
          (Printf.sprintf "drop-%.0f%%" (p *. 100.0), p, r, state_match, true))
        rates
    in
    (* total partition: retries exhaust, migration rolls back, the source
       resumes and still finishes identically; destination frames are
       reclaimed *)
    let ab_r, ab_out, ab_instret, ab_reclaimed = mig_case `Partition in
    let ab_match = ab_out = base_out && ab_instret = base_instret in
    Tablefmt.add_row t
      [ "dead"; Tablefmt.cell_f ~decimals:1
          (Int64.to_float ab_r.Migrate.total_cycles /. 1000.0);
        "-"; Tablefmt.cell_i ab_r.Migrate.pages_sent;
        string_of_int ab_r.Migrate.rounds; Tablefmt.cell_i ab_r.Migrate.retransmits;
        (if ab_r.Migrate.aborted then "yes" else "no");
        (if ab_match && ab_reclaimed then "yes" else "NO") ];
    if not ab_r.Migrate.aborted then failwith "E16: dead link did not abort";
    if not (ab_match && ab_reclaimed) then
      failwith "E16: rollback left stale state";
    Tablefmt.print t;
    let mig_rows =
      mig_rows @ [ ("partition", 1.0, ab_r, ab_match, ab_reclaimed) ]
    in
    (* --- checkpoint replication under the same fault plans ------------ *)
    let rep_case spec =
      let setup =
        Images.plan ~heap_pages:64 ~user:(Workloads.dirty_loop ~pages:48 ~delay:500) ()
      in
      let host_a = Host.create ~frames:(setup.Images.frames + 1024) () in
      let host_b = Host.create ~frames:(setup.Images.frames + 1024) () in
      let primary = Hypervisor.create ~host:host_a () in
      let backup = Hypervisor.create ~host:host_b () in
      let vm =
        Hypervisor.create_vm primary ~name:"ha" ~mem_frames:setup.Images.frames
          ~entry:Images.entry ()
      in
      Images.load_vm vm setup;
      ignore (Hypervisor.run primary ~budget:2_000_000L);
      let link = Link.create () in
      let f = Fault.create ~seed:42L () in
      (match spec with
      | `Drop p -> Fault.set_prob f Fault.Drop p
      | `Partition lo -> Fault.add_window f Fault.Partition ~lo ~hi:Int64.max_int);
      Link.set_faults link f;
      let twin, st =
        Replicate.protect ~primary ~backup ~vm ~link ~epoch_cycles:200_000L
          ~epochs:6 ()
      in
      (* the backup must be runnable at the last completed checkpoint *)
      let before = vm_instret twin in
      ignore (Hypervisor.run backup ~budget:100_000L);
      if vm_instret twin <= before then
        failwith "E16: failed-over backup did not execute";
      st
    in
    let t2 =
      Tablefmt.create
        [ ("fault plan", Tablefmt.Left); ("epochs done", Tablefmt.Right);
          ("retransmits", Tablefmt.Right); ("link failed", Tablefmt.Left) ]
    in
    let rep_specs =
      scale
        [ ("drop-0%", `Drop 0.0); ("drop-2%", `Drop 0.02);
          ("dead@3M", `Partition 3_000_000L) ]
        [ ("drop-2%", `Drop 0.02); ("dead@3M", `Partition 3_000_000L) ]
    in
    let rep_rows =
      List.map
        (fun (name, spec) ->
          let st = rep_case spec in
          Tablefmt.add_row t2
            [ name; string_of_int st.Replicate.epochs_completed;
              Tablefmt.cell_i st.Replicate.retransmits;
              (if st.Replicate.link_failed then "yes" else "no") ];
          (name, st))
        rep_specs
    in
    Tablefmt.print t2;
    let oc = open_out "BENCH_fault.json" in
    output_string oc "{\n  \"benchmarks\": [\n";
    List.iter
      (fun (name, loss, (r : Migrate.result), state_match, reclaimed) ->
        Printf.fprintf oc
          "    {\"name\": \"fault/migrate/%s\", \"loss\": %.2f, \"total_cycles\": \
           %Ld, \"downtime_cycles\": %Ld, \"pages\": %d, \"rounds\": %d, \
           \"retransmits\": %d, \"aborted\": %b, \"state_match\": %b, \
           \"frames_reclaimed\": %b},\n"
          name loss r.Migrate.total_cycles r.Migrate.downtime_cycles
          r.Migrate.pages_sent r.Migrate.rounds r.Migrate.retransmits
          r.Migrate.aborted state_match reclaimed)
      mig_rows;
    List.iteri
      (fun i (name, (st : Replicate.stats)) ->
        Printf.fprintf oc
          "    {\"name\": \"fault/replicate/%s\", \"epochs_completed\": %d, \
           \"retransmits\": %d, \"link_failed\": %b, \"paused_cycles\": %Ld}%s\n"
          name st.Replicate.epochs_completed st.Replicate.retransmits
          st.Replicate.link_failed st.Replicate.paused_cycles
          (if i = List.length rep_rows - 1 then "" else ","))
      rep_rows;
    output_string oc "  ]\n}\n";
    close_out oc;
    Printf.printf
      "\nExpected shape: retransmits grow with the loss rate while the migrated\n\
       guest stays bit-identical to the fault-free baseline; a dead link aborts\n\
       after bounded retries, the source resumes, and the destination frames are\n\
       reclaimed.  Replication commits fewer epochs once the link dies, and the\n\
       backup resumes from the last completed checkpoint.  Written to\n\
       BENCH_fault.json (byte-identical across same-seed runs).\n"
  end

(* ------------------------------------------------------------------ *)
(* E17 — high availability: crash recovery, restart MTTR, failover     *)
(* ------------------------------------------------------------------ *)

(* Three layers of the HA stack, each with its own invariant asserted
   inline: (1) the durable store recovers a complete previous image from
   a power failure at EVERY swept byte offset of a commit, and the image
   restores to a VM that finishes in lockstep with an uncrashed run;
   (2) the per-VM supervisor restarts a wedged guest from its last good
   checkpoint, so MTTR and the checkpoint pause tax are measured against
   the same instruction count as a fault-free run; (3) heartbeat-driven
   failover activates the backup twin automatically under heartbeat loss
   or primary death.  Every number is simulated cycles under seeded
   fault streams — BENCH_ha.json must be byte-identical across runs. *)

let e17 () =
  if section "E17" "High availability: crash recovery, restart MTTR, failover" then begin
    let scale l q = if !quick then q else l in
    let module Asm = Velum_isa.Asm in
    let vm_instret vm =
      Array.fold_left
        (fun acc (v : Vcpu.t) ->
          Int64.add acc v.Vcpu.state.Velum_machine.Cpu.instret)
        0L vm.Vm.vcpus
    in
    let unikernel hyp name prog =
      let vm = Hypervisor.create_vm hyp ~name ~mem_frames:16 ~entry:0L () in
      Vm.load_image vm (Asm.assemble ~origin:0L prog);
      vm
    in
    let spin_n_then_halt n =
      Asm.
        [ li r2 (Int64.of_int n); label "spin"; addi r2 r2 (-1L);
          bne r2 r0 "spin"; halt ]
    in
    (* --- (1) power-failure sweep over every commit region ------------- *)
    let sweep_stride = scale 499 4999 in
    let mk_snapshots () =
      let hyp = Hypervisor.create ~host:(Host.create ~frames:2048 ()) () in
      let vm = unikernel hyp "crash" (spin_n_then_halt 2_000_000) in
      ignore (Hypervisor.run hyp ~budget:1_500_000L);
      let img1 = Snapshot.capture vm in
      ignore (Hypervisor.run hyp ~budget:1_500_000L);
      let img2 = Snapshot.capture vm in
      (img1, img2)
    in
    let img1, img2 = mk_snapshots () in
    let reference_finish image =
      let hyp = Hypervisor.create ~host:(Host.create ~frames:2048 ()) () in
      let vm = Snapshot.restore hyp image in
      (match Hypervisor.run hyp ~budget:20_000_000_000L with
      | Hypervisor.All_halted -> ()
      | _ -> failwith "E17: restored reference did not halt");
      vm_instret vm
    in
    let expect_finish = reference_finish img1 in
    let sectors = Store.sectors_for ~image_bytes:(Bytes.length img2) in
    (* delta-commit sweep: baseline prepared once, byte-cloned per offset *)
    let sweep () =
      let base = Store.create ~sectors () in
      (match Store.commit base img1 with
      | Store.Committed { gen = 1; _ } -> ()
      | _ -> failwith "E17: baseline commit failed");
      let total = Store.commit_bytes base img2 in
      let offsets = ref 0 and prev = ref 0 and bad = ref 0 in
      let off = ref 0 in
      while !off < total do
        let probe = Store.clone base in
        (match Store.commit ~crash_at:!off probe img2 with
        | Store.Torn _ -> ()
        | Store.Committed _ -> incr bad);
        (match Store.recover (Store.mount (Store.device probe)) with
        | Some (img, 1) when Bytes.equal img img1 -> incr prev
        | _ -> incr bad);
        incr offsets;
        off := !off + sweep_stride
      done;
      (* a torn-then-recovered image must still boot and run to lockstep *)
      if reference_finish img1 <> expect_finish then incr bad;
      (!offsets, !prev, !bad, total)
    in
    (* GC-compaction sweep: two live generations, cut the compaction —
       the newest one must survive every offset *)
    let gc_sweep () =
      let base = Store.create ~sectors () in
      (match Store.commit base img1 with
      | Store.Committed { gen = 1; _ } -> ()
      | _ -> failwith "E17: gc baseline commit failed");
      (match Store.commit base img2 with
      | Store.Committed { gen = 2; _ } -> ()
      | _ -> failwith "E17: gc second commit failed");
      let total = Store.gc_bytes base in
      let offsets = ref 0 and prev = ref 0 and bad = ref 0 in
      let off = ref 0 in
      while !off < total do
        let probe = Store.clone base in
        (match Store.gc ~crash_at:!off probe with
        | Store.Gc_torn _ -> ()
        | Store.Gc_committed _ -> incr bad);
        (match Store.recover (Store.mount (Store.device probe)) with
        | Some (img, 2) when Bytes.equal img img2 -> incr prev
        | _ -> incr bad);
        incr offsets;
        off := !off + sweep_stride
      done;
      (!offsets, !prev, !bad, total)
    in
    let offsets, prev, bad, commit_total = sweep () in
    let gc_offsets, gc_prev, gc_bad, gc_total = gc_sweep () in
    let t =
      Tablefmt.create
        [ ("stream", Tablefmt.Left); ("bytes", Tablefmt.Right);
          ("offsets swept", Tablefmt.Right);
          ("recover newest complete", Tablefmt.Right);
          ("torn/hybrid", Tablefmt.Right); ("restored lockstep", Tablefmt.Left) ]
    in
    Tablefmt.add_row t
      [ "delta commit"; Tablefmt.cell_i commit_total; Tablefmt.cell_i offsets;
        Tablefmt.cell_i prev; Tablefmt.cell_i bad;
        (if bad = 0 then "yes" else "NO") ];
    Tablefmt.add_row t
      [ "gc compaction"; Tablefmt.cell_i gc_total; Tablefmt.cell_i gc_offsets;
        Tablefmt.cell_i gc_prev; Tablefmt.cell_i gc_bad; "-" ];
    Tablefmt.print t;
    if bad > 0 then failwith "E17: power-failure sweep recovered a torn image";
    if gc_bad > 0 then failwith "E17: GC sweep lost or tore the newest generation";
    (* --- (2) supervisor restart: MTTR and checkpoint tax --------------- *)
    let work = 1_200_000 in
    let reference =
      let hyp = Hypervisor.create ~host:(Host.create ~frames:2048 ()) () in
      let vm = unikernel hyp "ref" (spin_n_then_halt work) in
      (match Hypervisor.run hyp with
      | Hypervisor.All_halted -> ()
      | _ -> failwith "E17: reference run did not halt");
      vm_instret vm
    in
    let supervise cadence =
      let hyp = Hypervisor.create ~host:(Host.create ~frames:2048 ()) () in
      let vm = unikernel hyp "work" (spin_n_then_halt work) in
      let probe = Snapshot.capture vm in
      let store =
        Store.create
          ~sectors:(Store.sectors_for ~image_bytes:(Snapshot.size_bytes probe))
          ()
      in
      let sup =
        Ha.create ~hyp ~store ~vm ~checkpoint_every:cadence ~wd_budget:50_000L
          ~backoff_base:100_000L ()
      in
      ignore (Ha.run sup ~budget:2_000_000L);
      Ha.inject_stall (Ha.vm sup);
      (match Ha.run sup ~budget:200_000_000L with
      | Hypervisor.All_halted -> ()
      | _ -> failwith "E17: supervised guest did not finish");
      if vm_instret (Ha.vm sup) <> reference then
        failwith "E17: supervised run diverged from the fault-free reference";
      let s = Ha.stats sup in
      let elapsed = Hypervisor.now hyp in
      let availability =
        1.0 -. (Int64.to_float s.Ha.mttr_total /. Int64.to_float elapsed)
      in
      let overhead =
        Int64.to_float s.Ha.checkpoint_cycles /. Int64.to_float elapsed
      in
      (s, elapsed, availability, overhead)
    in
    let cadences = scale [ 100_000L; 300_000L; 600_000L ] [ 300_000L ] in
    let t2 =
      Tablefmt.create
        [ ("cadence kcyc", Tablefmt.Right); ("checkpoints", Tablefmt.Right);
          ("ckpt tax %", Tablefmt.Right); ("ckpt KiB", Tablefmt.Right);
          ("dedup", Tablefmt.Right); ("restarts", Tablefmt.Right);
          ("MTTR kcyc", Tablefmt.Right); ("availability %", Tablefmt.Right) ]
    in
    let sup_rows =
      List.map
        (fun cadence ->
          let s, elapsed, avail, overhead = supervise cadence in
          let mttr =
            if s.Ha.mttr_events = 0 then 0L
            else Int64.div s.Ha.mttr_total (Int64.of_int s.Ha.mttr_events)
          in
          let dedup =
            if s.Ha.ckpt_bytes = 0 then 1.0
            else
              float_of_int s.Ha.ckpt_logical_bytes
              /. float_of_int s.Ha.ckpt_bytes
          in
          Tablefmt.add_row t2
            [ Tablefmt.cell_f ~decimals:0 (Int64.to_float cadence /. 1000.0);
              string_of_int s.Ha.checkpoints;
              Tablefmt.cell_f ~decimals:2 (overhead *. 100.0);
              Tablefmt.cell_f ~decimals:0
                (float_of_int s.Ha.ckpt_bytes /. 1024.0);
              Tablefmt.cell_f ~decimals:1 dedup;
              string_of_int s.Ha.restarts;
              Tablefmt.cell_f ~decimals:1 (Int64.to_float mttr /. 1000.0);
              Tablefmt.cell_f ~decimals:3 (avail *. 100.0) ];
          if s.Ha.restarts <> 1 then failwith "E17: expected exactly one restart";
          (cadence, s, elapsed, avail, overhead, mttr, dedup))
        cadences
    in
    Tablefmt.print t2;
    (* --- (3) heartbeat failover: loss-rate sweep + host death ---------- *)
    let failover_case name spec =
      let setup =
        Images.plan ~heap_pages:32
          ~user:(Workloads.dirty_loop ~pages:16 ~delay:50) ()
      in
      let primary =
        Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) ()
      in
      let backup =
        Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) ()
      in
      let vm =
        Hypervisor.create_vm primary ~name ~mem_frames:setup.Images.frames
          ~entry:Images.entry ()
      in
      Images.load_vm vm setup;
      ignore (Hypervisor.run primary ~budget:1_000_000L);
      let link = Link.create () in
      let faults =
        match spec with
        | `Loss p when p > 0.0 ->
            let f = Fault.create ~seed:42L () in
            Fault.set_prob f Fault.Hb_loss p;
            Some f
        | _ -> None
      in
      let primary_dies_at =
        match spec with `Dies at -> Some at | `Loss _ -> None
      in
      let fo =
        Ha.Failover.create ?faults ~primary ~backup ~vm ~link ?primary_dies_at ()
      in
      let epochs = 20 in
      let _survivor, s = Ha.Failover.run fo ~epoch_cycles:150_000L ~epochs in
      let served =
        (* epochs where at least one instance ran the guest; split-brain
           epochs ran both and must not count twice *)
        s.Ha.Failover.primary_epochs + s.Ha.Failover.backup_epochs
        - s.Ha.Failover.split_brain_epochs
      in
      (s, float_of_int served /. float_of_int epochs)
    in
    let fo_specs =
      scale
        [ ("loss-0%", `Loss 0.0); ("loss-10%", `Loss 0.1);
          ("loss-30%", `Loss 0.3); ("loss-100%", `Loss 1.0);
          ("death@1.5M", `Dies 1_500_000L) ]
        [ ("loss-100%", `Loss 1.0); ("death@1.5M", `Dies 1_500_000L) ]
    in
    let t3 =
      Tablefmt.create
        [ ("scenario", Tablefmt.Left); ("gen", Tablefmt.Right);
          ("hb sent/lost/seen", Tablefmt.Right); ("failover", Tablefmt.Left);
          ("MTTR kcyc", Tablefmt.Right); ("split-brain", Tablefmt.Right);
          ("fenced", Tablefmt.Left); ("availability %", Tablefmt.Right) ]
    in
    let fo_rows =
      List.map
        (fun (name, spec) ->
          let s, avail = failover_case name spec in
          let open Ha.Failover in
          Tablefmt.add_row t3
            [ name; string_of_int s.generation;
              Printf.sprintf "%d/%d/%d" s.hb_sent s.hb_lost s.hb_seen;
              (match s.failover_at with
              | Some at -> Printf.sprintf "@%.0fk" (Int64.to_float at /. 1000.0)
              | None -> "no");
              (match s.mttr with
              | Some m -> Tablefmt.cell_f ~decimals:1 (Int64.to_float m /. 1000.0)
              | None -> "-");
              string_of_int s.split_brain_epochs;
              (if s.fenced then "yes" else "no");
              Tablefmt.cell_f ~decimals:1 (avail *. 100.0) ];
          (match spec with
          | `Loss p when p >= 1.0 ->
              if s.failover_at = None || not s.fenced then
                failwith "E17: total heartbeat loss must fail over and fence"
          | `Dies _ ->
              if s.failover_at = None then
                failwith "E17: primary death must fail over"
          | `Loss 0.0 ->
              if s.failover_at <> None then
                failwith "E17: healthy run must not fail over"
          | `Loss _ -> ());
          (name, s, avail))
        fo_specs
    in
    Tablefmt.print t3;
    let oc = open_out "BENCH_ha.json" in
    output_string oc "{\n  \"benchmarks\": [\n";
    Printf.fprintf oc
      "    {\"name\": \"ha/crash_sweep\", \"commit_bytes\": %d, \"offsets\": %d, \
       \"recover_previous\": %d, \"failures\": %d},\n"
      commit_total offsets prev bad;
    Printf.fprintf oc
      "    {\"name\": \"ha/crash_sweep_gc\", \"gc_bytes\": %d, \"offsets\": %d, \
       \"recover_newest\": %d, \"failures\": %d},\n"
      gc_total gc_offsets gc_prev gc_bad;
    List.iter
      (fun (cadence, (s : Ha.stats), elapsed, avail, overhead, mttr, dedup) ->
        Printf.fprintf oc
          "    {\"name\": \"ha/supervisor/cadence_%Ld\", \"checkpoints\": %d, \
           \"torn\": %d, \"checkpoint_cycles\": %Ld, \"bytes_written\": %d, \
           \"logical_bytes\": %d, \"dedup_ratio\": %.3f, \"frames_churned\": \
           %d, \"restarts\": %d, \"mttr_cycles\": %Ld, \"elapsed_cycles\": \
           %Ld, \"availability\": %.6f, \"checkpoint_overhead\": %.6f},\n"
          cadence s.Ha.checkpoints s.Ha.torn_checkpoints s.Ha.checkpoint_cycles
          s.Ha.ckpt_bytes s.Ha.ckpt_logical_bytes dedup s.Ha.frames_churned
          s.Ha.restarts mttr elapsed avail overhead)
      sup_rows;
    List.iteri
      (fun i (name, (s : Ha.Failover.stats), avail) ->
        let open Ha.Failover in
        Printf.fprintf oc
          "    {\"name\": \"ha/failover/%s\", \"generation\": %d, \"hb_sent\": \
           %d, \"hb_lost\": %d, \"hb_seen\": %d, \"failover_at\": %s, \
           \"mttr_cycles\": %s, \"split_brain_epochs\": %d, \"fenced\": %b, \
           \"availability\": %.6f}%s\n"
          name s.generation s.hb_sent s.hb_lost s.hb_seen
          (match s.failover_at with Some v -> Int64.to_string v | None -> "null")
          (match s.mttr with Some v -> Int64.to_string v | None -> "null")
          s.split_brain_epochs s.fenced avail
          (if i = List.length fo_rows - 1 then "" else ","))
      fo_rows;
    output_string oc "  ]\n}\n";
    close_out oc;
    Printf.printf
      "\nExpected shape: every swept power-failure offset — of a delta commit\n\
       AND of a GC compaction — recovers the newest complete generation (the\n\
       superblock flip is the commit point; the pre-GC space is never\n\
       written) and the recovered image restores to a lockstep-identical\n\
       guest.  Checkpoints are content-addressed deltas, so the pause tax\n\
       tracks churn (see the dedup column), not the image footprint.  A\n\
       shorter checkpoint cadence buys a smaller restart MTTR at a higher\n\
       pause tax.\n\
       Heartbeat loss below the miss limit never fails over; total loss fails\n\
       over in ~hb_miss_limit epochs and generation-fences the stale primary;\n\
       host death recovers without fencing (nobody is left to fence).  Written\n\
       to BENCH_ha.json (byte-identical across same-seed runs).\n"
  end

(* ------------------------------------------------------------------ *)
(* ENGINE — execution engines: interp vs block wall clock              *)
(* ------------------------------------------------------------------ *)

(* E18: tracing overhead and determinism.  Recording is host-side
   observation only, so a traced run must execute exactly the same
   simulated cycles and exits as an untraced one (asserted per
   workload), and two traced runs of the same seeded workload must
   export byte-identical JSONL (asserted).  What tracing does cost is
   host wall clock, measured here and written to BENCH_trace.json. *)

let e18 () =
  if section "E18" "Tracing overhead: off vs on (identical simulated cycles)" then begin
    let scale l q = if !quick then q else l in
    let scale_i l q = if !quick then q else l in
    let cases =
      [
        ( "cpu-spin",
          Images.plan ~user:(Workloads.cpu_spin ~iters:(scale 1_000_000L 100_000L)) () );
        ( "syscalls",
          Images.plan ~user:(Workloads.syscall_loop ~count:(scale 4_000L 400L)) () );
        ( "memwalk",
          Images.plan ~heap_pages:64
            ~user:(Workloads.memwalk ~pages:64 ~iters:(scale_i 16 4) ~write:true)
            () );
      ]
    in
    let run_once ~traced setup =
      let host = Host.create ~frames:(setup.Images.frames + 1024) () in
      let hyp = Hypervisor.create ~host () in
      let tr =
        if traced then begin
          let tr = Trace.create () in
          Hypervisor.set_trace hyp tr;
          Some tr
        end
        else None
      in
      let vm =
        Hypervisor.create_vm hyp ~name:"bench" ~mem_frames:setup.Images.frames
          ~entry:Images.entry ()
      in
      Images.load_vm vm setup;
      let t0 = Sys.time () in
      (match Hypervisor.run hyp ~budget:20_000_000_000L with
      | Hypervisor.All_halted -> ()
      | _ -> failwith "E18: run did not halt");
      let dt = Sys.time () -. t0 in
      let cycles = Int64.add (Vm.guest_cycles vm) (Vm.vmm_cycles vm) in
      (dt, cycles, Monitor.total_exits vm.Vm.monitor, tr)
    in
    let t =
      Tablefmt.create
        [ ("workload", Tablefmt.Left); ("sim cycles", Tablefmt.Right);
          ("exits", Tablefmt.Right); ("events", Tablefmt.Right);
          ("off s", Tablefmt.Right); ("on s", Tablefmt.Right);
          ("overhead %", Tablefmt.Right) ]
    in
    let results =
      List.map
        (fun (name, setup) ->
          let reps = if !quick then 1 else 3 in
          let best_off = ref infinity and best_on = ref infinity in
          let c_off = ref 0L and x_off = ref 0 in
          let c_on = ref 0L and x_on = ref 0 in
          let events = ref 0 in
          let export = ref None in
          for _ = 1 to reps do
            let dt, c, x, _ = run_once ~traced:false setup in
            if dt < !best_off then best_off := dt;
            c_off := c;
            x_off := x
          done;
          (* at least two traced runs so the byte-identical assert bites
             even in --quick mode *)
          for _ = 1 to max 2 reps do
            let dt, c, x, tr = run_once ~traced:true setup in
            if dt < !best_on then best_on := dt;
            c_on := c;
            x_on := x;
            let tr = Option.get tr in
            events := Trace.events_recorded tr;
            let e = Trace.export_string tr in
            match !export with
            | None -> export := Some e
            | Some prev ->
                if not (String.equal prev e) then
                  failwith
                    (Printf.sprintf "E18 %s: trace export not byte-identical" name)
          done;
          if !c_off <> !c_on then
            failwith
              (Printf.sprintf
                 "E18 %s: tracing changed simulated cycles (off %Ld, on %Ld)" name
                 !c_off !c_on);
          if !x_off <> !x_on then
            failwith
              (Printf.sprintf "E18 %s: tracing changed exit count (off %d, on %d)"
                 name !x_off !x_on);
          let overhead = ((!best_on /. !best_off) -. 1.0) *. 100.0 in
          Tablefmt.add_row t
            [ name; Int64.to_string !c_off; string_of_int !x_off;
              string_of_int !events; Tablefmt.cell_f ~decimals:3 !best_off;
              Tablefmt.cell_f ~decimals:3 !best_on;
              Tablefmt.cell_f ~decimals:1 overhead ];
          (name, !c_off, !x_off, !events, !best_off, !best_on, overhead))
        cases
    in
    Tablefmt.print t;
    let oc = open_out "BENCH_trace.json" in
    output_string oc "{\n  \"benchmarks\": [\n";
    List.iteri
      (fun i (name, cycles, exits, events, off_s, on_s, overhead) ->
        Printf.fprintf oc
          "    {\"name\": \"trace/%s\", \"sim_cycles\": %Ld, \"sim_cycles_added\": 0, \
           \"exits\": %d, \"events\": %d, \"off_s\": %.6f, \"on_s\": %.6f, \
           \"wall_overhead_pct\": %.2f}%s\n"
          name cycles exits events off_s on_s overhead
          (if i = List.length results - 1 then "" else ","))
      results;
    output_string oc "  ]\n}\n";
    close_out oc;
    Printf.printf
      "\nSimulated cycles and exit counts are identical with tracing on or off\n\
       (asserted above, 'sim_cycles_added: 0'), and two traced runs export\n\
       byte-identical JSONL.  The overhead column is host wall clock only.\n\
       Written to BENCH_trace.json.\n"
  end

(* E19: parallel hosts on OCaml domains.  The round-barrier runner must
   produce a byte-identical fleet report (cycles, exits, monitor
   counters, heartbeats, link state) and byte-identical per-host trace
   exports at every domain count — asserted here at 1, 2 and 4 domains.
   Wall-clock speedup is measured and reported with a soft scaling
   target: it can only materialise when the machine actually has
   cores to spare, so the target is informational, never a failure. *)

let e19 () =
  if section "E19" "Parallel hosts: domain-count invariance and scaling" then begin
    let module P = Velum_cluster.Parallel in
    let hosts = 4 in
    let rounds = if !quick then 4 else 8 in
    let quantum = if !quick then 150_000L else 400_000L in
    (* dirty_loop never halts, so every host runs its full quantum every
       round — the work is identical whatever the domain count *)
    let setup =
      Images.plan ~heap_pages:24 ~user:(Workloads.dirty_loop ~pages:16 ~delay:800) ()
    in
    let cfg =
      P.config ~quantum ~rounds ~seed:11L ~trace:true ~hosts
        ~mk_vms:(fun i -> [ P.spec ~name:(Printf.sprintf "vm%d" i) setup ])
        ()
    in
    let reps = if !quick then 1 else 3 in
    let measure domains =
      let best = ref infinity in
      let report = ref "" in
      let traces = ref [] in
      for _ = 1 to reps do
        let t0 = Unix.gettimeofday () in
        let r = P.run ~domains cfg in
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best then best := dt;
        report := r.P.report;
        traces := P.traces r.P.fleet
      done;
      (!best, !report, !traces)
    in
    let domain_counts = [ 1; 2; 4 ] in
    let results = List.map (fun d -> (d, measure d)) domain_counts in
    let _, (wall1, ref_report, ref_traces) = List.hd results in
    List.iter
      (fun (d, (_, report, traces)) ->
        if not (String.equal report ref_report) then
          failwith
            (Printf.sprintf "E19: fleet report diverged at %d domains" d);
        if traces <> ref_traces then
          failwith
            (Printf.sprintf "E19: trace exports diverged at %d domains" d))
      results;
    let cores = Domain.recommended_domain_count () in
    let t =
      Tablefmt.create
        [ ("domains", Tablefmt.Right); ("wall s", Tablefmt.Right);
          ("speedup", Tablefmt.Right); ("report", Tablefmt.Left) ]
    in
    List.iter
      (fun (d, (wall, _, _)) ->
        Tablefmt.add_row t
          [ string_of_int d; Tablefmt.cell_f ~decimals:3 wall;
            Tablefmt.cell_f ~decimals:2 (wall1 /. wall); "byte-identical" ])
      results;
    Tablefmt.print t;
    let oc = open_out "BENCH_par.json" in
    Printf.fprintf oc
      "{\n  \"cores\": %d, \"hosts\": %d, \"rounds\": %d, \"quantum\": %Ld,\n\
      \  \"benchmarks\": [\n"
      cores hosts rounds quantum;
    List.iteri
      (fun i (d, (wall, _, _)) ->
        Printf.fprintf oc
          "    {\"name\": \"par/domains-%d\", \"wall_s\": %.6f, \"speedup\": \
           %.3f, \"byte_identical\": true}%s\n"
          d wall (wall1 /. wall)
          (if i = List.length results - 1 then "" else ","))
      results;
    output_string oc "  ]\n}\n";
    close_out oc;
    Printf.printf
      "\nThe fleet report and every per-host trace export are byte-identical\n\
       at 1, 2 and 4 domains (asserted above) — parallelism changes wall\n\
       clock only.  Soft scaling target: >= 1.3x at 2 domains on a machine\n\
       with 2+ cores (this machine reports %d core%s, so %s).\n\
       Written to BENCH_par.json.\n"
      cores
      (if cores = 1 then "" else "s")
      (if cores >= 2 then "the target applies"
       else "speedup cannot materialise here and the numbers are informational")
  end

(* ------------------------------------------------------------------ *)

(* E20: the self-healing control plane under scripted chaos — two host
   kills, one rolling drain, an overload burst, plus probabilistic
   heartbeat loss and evacuation/drain faults.  Every metric is
   simulated and the whole scenario is fixed (no --quick scaling): the
   emitted BENCH_cluster.json is byte-identical run-to-run and across
   domain counts, and is committed so CI can literally diff it. *)

let e20 () =
  if section "E20" "Cluster control plane: chaos, evacuation, drain, shedding" then begin
    let module C = Velum_cluster.Control in
    let hosts = 16 in
    let rounds = 24 in
    let quantum = 50_000L in
    let setup =
      Images.plan ~heap_pages:16 ~user:(Workloads.dirty_loop ~pages:8 ~delay:1500) ()
    in
    let prio i = match i mod 3 with 0 -> C.High | 1 -> C.Normal | _ -> C.Low in
    let mk ~arrives tag i =
      let group = if arrives <= 0 && i < 4 then Some 0 else None in
      C.desc ~prio:(prio i) ?group ~arrives ~name:(Printf.sprintf "%s%02d" tag i) setup
    in
    let workload =
      List.init (2 * hosts) (mk ~arrives:0 "vm") @ List.init 6 (mk ~arrives:6 "burst")
    in
    let faults =
      match
        Fault.parse "seed=7,cluster.hb=0.05,cluster.evac=0.1,cluster.drain=0.1,drop=0.02"
      with
      | Ok f -> f
      | Error e -> failwith e
    in
    let cfg =
      C.config ~quantum ~rounds ~seed:11L ~faults
        ~cap_units:(3 * setup.Images.frames)
        ~headroom:setup.Images.frames ~checkpoint_every:4
        ~kills:[ (5, 1); (8, 9) ]
        ~drains:[ (12, 3) ]
        ~hosts ~workload ()
    in
    let domain_counts = [ 1; 2; 4 ] in
    let results = List.map (fun d -> (d, C.run ~domains:d cfg)) domain_counts in
    let _, ref_res = List.hd results in
    List.iter
      (fun (d, r) ->
        if not (String.equal r.C.report ref_res.C.report) then
          failwith (Printf.sprintf "E20: control-plane report diverged at %d domains" d))
      results;
    let m = C.metrics ref_res.C.control in
    if m.C.availability < 0.95 then
      failwith
        (Printf.sprintf "E20: fleet availability %.4f below the 0.95 gate"
           m.C.availability);
    if m.C.split_brain <> 0 then failwith "E20: split-brain epoch observed";
    let t =
      Tablefmt.create [ ("metric", Tablefmt.Left); ("value", Tablefmt.Right) ]
    in
    List.iter
      (fun (k, v) -> Tablefmt.add_row t [ k; v ])
      [
        ("fleet availability", Printf.sprintf "%.4f" m.C.availability);
        ("SLO violations (VM-rounds)", string_of_int m.C.slo_violations);
        ("migration bytes", string_of_int m.C.migration_bytes);
        ("evacuation MTTR (rounds)", Printf.sprintf "%.2f" m.C.evac_mttr_rounds);
        ("consolidation (VMs/host)", Printf.sprintf "%.2f" m.C.consolidation);
        ("placed / shed / degraded",
         Printf.sprintf "%d / %d / %d" m.C.placed m.C.shed m.C.degraded);
        ("evacuated (checkpoint restores)", string_of_int m.C.evacuated);
        ("drain cold moves", string_of_int m.C.cold_moves);
        ("fenced while alive", string_of_int m.C.fenced_alive);
        ("split-brain epochs", string_of_int m.C.split_brain);
      ];
    Tablefmt.print t;
    let oc = open_out "BENCH_cluster.json" in
    Printf.fprintf oc
      "{\n\
      \  \"hosts\": %d, \"vms\": %d, \"rounds\": %d, \"quantum\": %Ld,\n\
      \  \"chaos\": \"2 kills + 1 drain + 6-VM burst + \
       hb/evac/drain/drop faults\",\n\
      \  \"byte_identical_domains\": [1, 2, 4],\n\
      \  \"benchmarks\": [\n\
      \    {\"name\": \"cluster/availability\", \"value\": %.4f},\n\
      \    {\"name\": \"cluster/slo_violations\", \"value\": %d},\n\
      \    {\"name\": \"cluster/migration_bytes\", \"value\": %d},\n\
      \    {\"name\": \"cluster/evac_mttr_rounds\", \"value\": %.2f},\n\
      \    {\"name\": \"cluster/consolidation\", \"value\": %.2f},\n\
      \    {\"name\": \"cluster/placed\", \"value\": %d},\n\
      \    {\"name\": \"cluster/shed\", \"value\": %d},\n\
      \    {\"name\": \"cluster/degraded\", \"value\": %d},\n\
      \    {\"name\": \"cluster/evacuated\", \"value\": %d},\n\
      \    {\"name\": \"cluster/cold_moves\", \"value\": %d},\n\
      \    {\"name\": \"cluster/fenced_alive\", \"value\": %d},\n\
      \    {\"name\": \"cluster/split_brain\", \"value\": %d}\n\
      \  ]\n\
       }\n"
      hosts (List.length workload) rounds quantum m.C.availability m.C.slo_violations
      m.C.migration_bytes m.C.evac_mttr_rounds m.C.consolidation m.C.placed m.C.shed
      m.C.degraded m.C.evacuated m.C.cold_moves m.C.fenced_alive m.C.split_brain;
    close_out oc;
    Printf.printf
      "\nThe control-plane report (placements, evacuations, drain progress,\n\
       shed/degrade events, per-host traces) is byte-identical at 1, 2 and 4\n\
       domains (asserted above), availability stayed above the 0.95 gate\n\
       through two host kills, a rolling drain and an overload burst, and no\n\
       split-brain epoch occurred (fencing precedes every restore).  All\n\
       metrics are simulated and deterministic — BENCH_cluster.json is\n\
       committed and diffed literally by CI.\n"
  end

(* ------------------------------------------------------------------ *)

(* E22: the content-addressed checkpoint store itself — what a commit
   costs as a function of churn, what chunk sharing buys across VMs
   committed to the same store, and what a GC compaction reclaims.
   Every number is a deterministic byte count (no wall clock), so
   BENCH_store.json is byte-identical across runs. *)

let e22 () =
  if section "E22" "Incremental store: churn cost, cross-VM dedup, GC reclaim" then begin
    let scale l q = if !quick then q else l in
    let pages = scale 256 64 in
    let image_bytes = pages * 4096 in
    let fill_page img i tag =
      (* a unique stamp per (page, tag) pair, so distinct pages never
         collide into the same chunk by accident *)
      Bytes.set_int64_le img (i * 4096)
        (Int64.of_int ((i * 65599) + (tag * 2654435761)));
      for j = 8 to 4095 do
        Bytes.unsafe_set img
          ((i * 4096) + j)
          (Char.chr ((((i * 31) + (j * 7) + tag) land 0x7f) + 1))
      done
    in
    let base () =
      let b = Bytes.create image_bytes in
      for i = 0 to pages - 1 do
        fill_page b i 0
      done;
      b
    in
    (* --- (1) commit cost vs churn: one stream, 8 delta commits ------- *)
    let commits_n = 8 in
    let churn_levels = [ 1; 4; 16; pages / 4; pages ] in
    let t1 =
      Tablefmt.create
        [ ("churned pages", Tablefmt.Right); ("bytes/commit", Tablefmt.Right);
          ("pause kcyc", Tablefmt.Right); ("dedup", Tablefmt.Right);
          ("auto-GC runs", Tablefmt.Right) ]
    in
    let churn_rows =
      List.map
        (fun k ->
          let store =
            Store.create ~sectors:(Store.sectors_for ~image_bytes) ()
          in
          let img = base () in
          (match Store.commit store img with
          | Store.Committed _ -> ()
          | Store.Torn _ -> failwith "E22: baseline commit torn");
          let delta_bytes = ref 0 in
          for n = 1 to commits_n do
            for c = 0 to k - 1 do
              fill_page img (((c * 97) + (n * 13)) mod pages) n
            done;
            match Store.commit store img with
            | Store.Committed { bytes; _ } -> delta_bytes := !delta_bytes + bytes
            | Store.Torn _ -> failwith "E22: churn commit torn"
          done;
          let per_commit = !delta_bytes / commits_n in
          let dedup =
            float_of_int (Store.logical_bytes store)
            /. float_of_int (Store.bytes_written store)
          in
          Tablefmt.add_row t1
            [ Tablefmt.cell_i k; Tablefmt.cell_i per_commit;
              Tablefmt.cell_f ~decimals:1
                (Int64.to_float (Store.commit_cycles ~bytes:per_commit)
                /. 1000.0);
              Tablefmt.cell_f ~decimals:2 dedup;
              string_of_int (Store.gc_runs store) ];
          (k, per_commit, dedup, Store.gc_runs store))
        churn_levels
    in
    Tablefmt.print t1;
    (* a 1-page delta must cost a small constant over one chunk, not the
       image footprint *)
    (match churn_rows with
    | (1, per_commit, _, _) :: _ ->
        if per_commit > 4 * 4096 then
          failwith "E22: single-page churn commit cost scales with the image"
    | _ -> ());
    (* --- (2) cross-VM sharing: one fleet store, 6 streams ----------- *)
    let streams = 6 in
    let shared =
      Store.create
        ~sectors:(Store.fleet_sectors_for ~streams ~image_bytes)
        ()
    in
    let t2 =
      Tablefmt.create
        [ ("stream", Tablefmt.Left); ("commit bytes", Tablefmt.Right);
          ("chunks new", Tablefmt.Right); ("chunks shared", Tablefmt.Right) ]
    in
    let stream_rows =
      List.init streams (fun s ->
          let img = base () in
          (* each VM diverges on four private pages *)
          for c = 0 to 3 do
            fill_page img (((s * 17) + (c * 53)) mod pages) (100 + s)
          done;
          match Store.commit ~id:(Printf.sprintf "vm%d" s) shared img with
          | Store.Committed { bytes; chunks_new; chunks_shared; _ } ->
              Tablefmt.add_row t2
                [ Printf.sprintf "vm%d" s; Tablefmt.cell_i bytes;
                  Tablefmt.cell_i chunks_new; Tablefmt.cell_i chunks_shared ];
              (s, bytes, chunks_new, chunks_shared)
          | Store.Torn _ -> failwith "E22: cross-VM commit torn")
    in
    Tablefmt.print t2;
    (match stream_rows with
    | (_, first_bytes, _, _) :: rest ->
        List.iter
          (fun (_, bytes, _, shared_chunks) ->
            if bytes * 4 > first_bytes then
              failwith "E22: sibling VM commit did not share the base image";
            if shared_chunks = 0 then
              failwith "E22: sibling VM commit shared no chunks")
          rest
    | [] -> ());
    (* --- (3) GC compaction: two live generations, compact, measure --- *)
    let store = Store.create ~sectors:(Store.sectors_for ~image_bytes) () in
    let img = base () in
    (match Store.commit store img with
    | Store.Committed _ -> ()
    | Store.Torn _ -> failwith "E22: gc baseline torn");
    for c = 0 to (pages / 2) - 1 do
      fill_page img (c * 2) 7
    done;
    (match Store.commit store img with
    | Store.Committed _ -> ()
    | Store.Torn _ -> failwith "E22: gc second commit torn");
    let before = Store.gc_bytes store in
    let gc_bytes, gc_live, gc_reclaimed =
      match Store.gc store with
      | Store.Gc_committed { bytes; live_chunks; reclaimed } ->
          (bytes, live_chunks, reclaimed)
      | Store.Gc_torn _ -> failwith "E22: gc torn without a fault plan"
    in
    let t3 =
      Tablefmt.create
        [ ("gc stream bytes", Tablefmt.Right); ("live chunks", Tablefmt.Right);
          ("reclaimed bytes", Tablefmt.Right); ("recovers", Tablefmt.Left) ]
    in
    let recovers =
      match Store.recover (Store.mount (Store.device store)) with
      | Some (rimg, _) when Bytes.equal rimg img -> "newest"
      | _ -> "BROKEN"
    in
    Tablefmt.add_row t3
      [ Tablefmt.cell_i gc_bytes; Tablefmt.cell_i gc_live;
        Tablefmt.cell_i gc_reclaimed; recovers ];
    Tablefmt.print t3;
    if recovers <> "newest" then
      failwith "E22: compaction lost the newest generation";
    ignore before;
    let oc = open_out "BENCH_store.json" in
    output_string oc "{\n  \"benchmarks\": [\n";
    List.iter
      (fun (k, per_commit, dedup, gcs) ->
        Printf.fprintf oc
          "    {\"name\": \"store/churn_%d\", \"bytes_per_commit\": %d, \
           \"dedup_ratio\": %.3f, \"auto_gc_runs\": %d},\n"
          k per_commit dedup gcs)
      churn_rows;
    List.iter
      (fun (s, bytes, chunks_new, chunks_shared) ->
        Printf.fprintf oc
          "    {\"name\": \"store/stream_vm%d\", \"commit_bytes\": %d, \
           \"chunks_new\": %d, \"chunks_shared\": %d},\n"
          s bytes chunks_new chunks_shared)
      stream_rows;
    Printf.fprintf oc
      "    {\"name\": \"store/gc\", \"stream_bytes\": %d, \"live_chunks\": \
       %d, \"reclaimed_bytes\": %d}\n"
      gc_bytes gc_live gc_reclaimed;
    output_string oc "  ]\n}\n";
    close_out oc;
    Printf.printf
      "\nExpected shape: a delta commit costs its churned chunks plus fixed\n\
       metadata — a 1-page delta is hundreds of times cheaper than the image\n\
       footprint (asserted), so the checkpoint pause tax tracks churn.  A\n\
       sibling VM committed to the same store shares the whole base image\n\
       and writes only its divergent pages (asserted).  GC copies exactly\n\
       the live chunks into the idle space and reclaims the dead ones, and\n\
       the newest generation survives the flip (asserted).  Written to\n\
       BENCH_store.json (deterministic byte counts, no wall clock).\n"
  end

(* ------------------------------------------------------------------ *)

(* E23: the virtio-net fabric — a load-balancer VM fanning requests out
   to backend VMs over a software switch, under heavy open-loop client
   traffic.  Reply latency (client gettime stamp to switch egress) is
   histogrammed by a switch snoop; the fleet runs as 4 independent
   host-cells under Parallel, so the run is asserted byte-identical at
   1 and 4 domains, clean and under link faults.  A third scenario
   live-migrates a backend between two hosts mid-benchmark.  Every
   metric is simulated and the scenario is fixed (no --quick scaling):
   BENCH_net.json is committed so CI literally diffs it. *)

let e23 () =
  if section "E23" "Network fabric: LB fan-out, tail latency, faults, live migration"
  then begin
    let module P = Velum_cluster.Parallel in
    let hosts = 4 in
    let backends = 2 and clients = 2 in
    let n_ports = 1 + backends + clients in
    let requests = 24 and batch = 4 in
    (* per-cell port map: 0 = LB, 1..backends = backends, rest = clients *)
    let mac p = Int64.of_int (0x10 + p) in
    let lb_setup =
      Images.plan ~heap_pages:2 ~vnet:true
        ~user:
          (Workloads.vnet_lb ~my_mac:(mac 0)
             ~backends:(List.init backends (fun b -> mac (1 + b))))
        ()
    in
    let backend_setup b =
      Images.plan ~heap_pages:2 ~vnet:true
        ~user:(Workloads.vnet_backend ~my_mac:(mac (1 + b)) ~service:150)
        ()
    in
    let client_setup c =
      Images.plan ~heap_pages:2 ~vnet:true
        ~user:
          (Workloads.vnet_client ~my_mac:(mac (1 + backends + c)) ~lb_mac:(mac 0)
             ~peers:(n_ports - 1) ~requests ~batch ~gap:500)
        ()
    in
    let mk_vms _i =
      [ P.spec ~name:"lb" lb_setup ]
      @ List.init backends (fun b ->
            P.spec ~name:(Printf.sprintf "backend%d" b) (backend_setup b))
      @ List.init clients (fun c ->
            P.spec ~name:(Printf.sprintf "client%d" c) (client_setup c))
    in
    (* fabric builder: switch + per-port links + reply-latency snoop.
       Static MAC entries keep early traffic off the unknown-unicast
       path (guests still broadcast a boot announce).  The snoop fires
       inside the worker phase, so everything it touches is per-host. *)
    let build_fabric ?faults ~hist ~cell () hyp =
      let ports =
        Array.init n_ports (fun _ ->
            Link.create ~bytes_per_cycle:1.0 ~latency_cycles:200 ())
      in
      (match faults with
      | Some base ->
          Array.iteri
            (fun p l ->
              Link.set_faults l
                (Fault.derive base
                   ~seed:(Int64.of_int (7_001 + (cell * 97) + p))))
            ports
      | None -> ());
      let sw = Switch.create ports in
      Array.iteri (fun p _ -> Switch.learn sw ~mac:(mac p) ~port:p) ports;
      Switch.set_snoop sw
        (Some
           (fun port now frame ->
             (* a reply crossing toward a client port closes a request *)
             if
               port > backends
               && String.length frame >= 48
               && String.get_int64_le frame 16 = 2L
             then
               Histogram.add hist
                 (Int64.to_int (Int64.sub now (String.get_int64_le frame 32)))));
      Hypervisor.add_ticker hyp (Switch.tick sw);
      Hypervisor.add_event_source hyp (fun () -> Switch.next_event sw);
      List.iteri
        (fun p vm -> ignore (Vm.attach_vnet vm ~link:ports.(p) ~endpoint:`A))
        hyp.Hypervisor.vms;
      (sw, ports)
    in
    let host_vnets hyp =
      List.filter_map (fun vm -> vm.Vm.vnet) hyp.Hypervisor.vms
    in
    (* Frame conservation at host scope: what the adapters put on the
       wire, plus wire duplicates and switch flood copies, equals what
       the adapters got back plus every named drop, undelivered backlog
       and in-flight frame.  Nothing is ever lost silently. *)
    let assert_conservation ~tag hyp (sw, ports) =
      if not (Switch.conserved sw) then
        failwith (Printf.sprintf "E23 %s: switch conservation violated" tag);
      let vnets = host_vnets hyp in
      let sum f = List.fold_left (fun a v -> a + f v) 0 vnets in
      let sent = sum Virtio_net.frames_sent
      and received = sum Virtio_net.frames_received
      and rx_lost =
        sum Virtio_net.rx_dropped + sum Virtio_net.rx_overflow
      and backlog = sum Virtio_net.backlog_length in
      let asum f = Array.fold_left (fun a l -> a + f l) 0 ports in
      let lhs = sent + asum Link.wire_duplicated + Switch.flood_extra sw in
      let rhs =
        received + rx_lost + Switch.drops sw + asum Link.wire_dropped
        + asum Link.in_flight + backlog
      in
      if lhs <> rhs then
        failwith
          (Printf.sprintf "E23 %s: frame conservation violated (%d <> %d)" tag
             lhs rhs)
    in
    let merge_into dst h =
      List.iter
        (fun (lo, n) ->
          for _ = 1 to n do
            Histogram.add dst lo
          done)
        (Histogram.buckets h)
    in
    (* one fleet scenario at a given domain count; returns the canonical
       report plus a per-host counter/latency digest (both must be
       byte-identical across domain counts) and the aggregate numbers *)
    let scenario ?faults ~domains ~tag () =
      let stash = Array.make hosts None in
      let hists = Array.init hosts (fun _ -> Histogram.create ()) in
      let wire i hyp =
        stash.(i) <- Some (build_fabric ?faults ~hist:hists.(i) ~cell:i () hyp)
      in
      let cfg =
        P.config ~quantum:400_000L ~rounds:16 ~seed:23L ~hosts ~wire ~mk_vms ()
      in
      let r = P.run ~domains cfg in
      let digest = Buffer.create 512 in
      let fleet_hist = Histogram.create () in
      let totals = Array.make 6 0 (* sent recv drops wire_drop kicks replies *) in
      Array.iteri
        (fun i node ->
          let fabric = Option.get stash.(i) in
          let sw, ports = fabric in
          assert_conservation ~tag:(Printf.sprintf "%s host%d" tag i)
            node.P.hyp fabric;
          let vnets = host_vnets node.P.hyp in
          let sum f = List.fold_left (fun a v -> a + f v) 0 vnets in
          let h = hists.(i) in
          merge_into fleet_hist h;
          totals.(0) <- totals.(0) + sum Virtio_net.frames_sent;
          totals.(1) <- totals.(1) + sum Virtio_net.frames_received;
          totals.(2) <- totals.(2) + Switch.drops sw;
          totals.(3) <-
            totals.(3) + Array.fold_left (fun a l -> a + Link.wire_dropped l) 0 ports;
          totals.(4) <- totals.(4) + sum Virtio_net.kicks;
          totals.(5) <- totals.(5) + Histogram.count h;
          Printf.bprintf digest
            "host%d replies=%d p50=%.1f p95=%.1f p99=%.1f max=%d sent=%d \
             recv=%d sw_drops=%d wire_drop=%d kicks=%d\n"
            i (Histogram.count h) (Histogram.percentile h 50.0)
            (Histogram.percentile h 95.0) (Histogram.percentile h 99.0)
            (Histogram.max_value h) (sum Virtio_net.frames_sent)
            (sum Virtio_net.frames_received) (Switch.drops sw)
            (Array.fold_left (fun a l -> a + Link.wire_dropped l) 0 ports)
            (sum Virtio_net.kicks))
        r.P.fleet.P.nodes;
      (r.P.report, Buffer.contents digest, fleet_hist, totals)
    in
    (* every scenario runs at 1 and 4 domains; both artifacts must match *)
    let run_checked ?faults ~tag () =
      let report1, digest1, hist, totals = scenario ?faults ~domains:1 ~tag () in
      let report4, digest4, _, _ = scenario ?faults ~domains:4 ~tag () in
      if not (String.equal report1 report4) then
        failwith (Printf.sprintf "E23 %s: fleet report diverged at 4 domains" tag);
      if not (String.equal digest1 digest4) then
        failwith (Printf.sprintf "E23 %s: fabric digest diverged at 4 domains" tag);
      (digest1, hist, totals)
    in
    let digest_clean, hist_clean, totals_clean = run_checked ~tag:"clean" () in
    let faults =
      let f = Fault.create ~seed:23L () in
      Fault.set_prob f Fault.Drop 0.02;
      Fault.set_prob f Fault.Corrupt 0.01;
      Fault.set_prob f Fault.Delay 0.05;
      Fault.set_prob f Fault.Duplicate 0.01;
      f
    in
    let digest_faults, hist_faults, totals_faults =
      run_checked ~faults ~tag:"faults" ()
    in
    ignore digest_clean;
    ignore digest_faults;
    (* sanity gates *)
    let expected_replies = hosts * clients * requests in
    if Histogram.count hist_clean <> expected_replies then
      failwith
        (Printf.sprintf "E23 clean: %d replies, expected %d"
           (Histogram.count hist_clean) expected_replies);
    if Histogram.count hist_faults = 0 then
      failwith "E23 faults: no replies survived the fault plan";
    let p99_clean = Histogram.percentile hist_clean 99.0 in
    if p99_clean <= 0.0 || p99_clean < Histogram.percentile hist_clean 50.0 then
      failwith "E23: nonsensical clean p99";
    if totals_clean.(4) * 2 > totals_clean.(0) then
      failwith "E23: doorbell coalescing regressed (kicks > sent/2)";
    (* --- scenario 3: live-migrate a backend mid-benchmark --- *)
    let hist_mig = Histogram.create () in
    let host_a = Host.create ~frames:8192 () in
    let src = Hypervisor.create ~host:host_a () in
    let specs = mk_vms 0 in
    let vms =
      List.map
        (fun s ->
          let vm =
            Hypervisor.create_vm src ~name:s.P.vname
              ~mem_frames:s.P.setup.Images.frames ~entry:Images.entry ()
          in
          Images.load_vm vm s.P.setup;
          vm)
        specs
    in
    let ((sw_mig, ports_mig) as fabric_mig) =
      build_fabric ~hist:hist_mig ~cell:0 () src
    in
    let victim = List.nth vms 1 (* backend0 *) in
    let clients_vms =
      List.filteri (fun i _ -> i > backends) vms
    in
    let some_traffic () =
      List.exists
        (fun vm ->
          match vm.Vm.vnet with
          | Some v -> Virtio_net.frames_sent v > batch
          | None -> false)
        clients_vms
    in
    let spins = ref 0 in
    while (not (some_traffic ())) && !spins < 200 do
      ignore (Hypervisor.run src ~budget:200_000L);
      incr spins
    done;
    let host_b = Host.create ~frames:8192 () in
    let dst = Hypervisor.create ~host:host_b () in
    Hypervisor.add_ticker dst (Switch.tick sw_mig);
    Hypervisor.add_event_source dst (fun () -> Switch.next_event sw_mig);
    let old_vnet = Option.get victim.Vm.vnet in
    let mig_link = Link.create () in
    let twin, mig_result =
      Migrate.stop_and_copy ~src ~dst ~vm:victim ~link:mig_link ()
    in
    let backlog = Virtio_net.drain_backlog old_vnet in
    let v = Vm.attach_vnet twin ~link:ports_mig.(1) ~endpoint:`A in
    Virtio_net.configure v ~tx_base:Abi.vnet_tx_ring ~tx_size:Abi.vnet_ring_size
      ~rx_base:Abi.vnet_rx_ring ~rx_size:Abi.vnet_ring_size;
    Virtio_net.seed_backlog v backlog;
    let all_clients_halted () = List.for_all Vm.halted clients_vms in
    let slices = ref 0 in
    while (not (all_clients_halted ())) && !slices < 120 do
      ignore (Hypervisor.run src ~budget:500_000L);
      ignore (Hypervisor.run dst ~budget:500_000L);
      incr slices
    done;
    if not (all_clients_halted ()) then
      failwith "E23 migration: clients did not finish";
    (* the clients' bounded final drain can beat the tail of the reply
       stream; keep driving both hosts a fixed number of slices so every
       reply reaches the switch egress (where the snoop counts it) *)
    for _ = 1 to 20 do
      ignore (Hypervisor.run src ~budget:500_000L);
      ignore (Hypervisor.run dst ~budget:500_000L)
    done;
    (* host-level conservation must hold across the handoff; the twin's
       adapter counters join the source-side ones *)
    if not (Switch.conserved sw_mig) then
      failwith "E23 migration: switch conservation violated";
    let mig_vnets = host_vnets src @ host_vnets dst @ [ old_vnet ] in
    let sum f = List.fold_left (fun a v -> a + f v) 0 mig_vnets in
    let asum f = Array.fold_left (fun a l -> a + f l) 0 ports_mig in
    let lhs =
      sum Virtio_net.frames_sent + asum Link.wire_duplicated
      + Switch.flood_extra sw_mig
    in
    let rhs =
      sum Virtio_net.frames_received + sum Virtio_net.rx_dropped
      + sum Virtio_net.rx_overflow + sum Virtio_net.backlog_length
      + Switch.drops sw_mig + asum Link.wire_dropped + asum Link.in_flight
    in
    if lhs <> rhs then
      failwith
        (Printf.sprintf "E23 migration: frame conservation violated (%d <> %d)"
           lhs rhs);
    ignore fabric_mig;
    if Histogram.count hist_mig <> expected_replies / hosts * 1 then
      (* one cell's worth of clients: clients * requests replies *)
      failwith
        (Printf.sprintf "E23 migration: %d replies, expected %d"
           (Histogram.count hist_mig)
           (clients * requests));
    (* --- table + BENCH_net.json --- *)
    let t =
      Tablefmt.create
        [ ("scenario", Tablefmt.Left); ("replies", Tablefmt.Right);
          ("p50", Tablefmt.Right); ("p95", Tablefmt.Right);
          ("p99", Tablefmt.Right); ("max", Tablefmt.Right);
          ("drops", Tablefmt.Right); ("frames/kick", Tablefmt.Right) ]
    in
    let row name hist totals =
      Tablefmt.add_row t
        [ name; Tablefmt.cell_i (Histogram.count hist);
          Tablefmt.cell_f ~decimals:1 (Histogram.percentile hist 50.0);
          Tablefmt.cell_f ~decimals:1 (Histogram.percentile hist 95.0);
          Tablefmt.cell_f ~decimals:1 (Histogram.percentile hist 99.0);
          Tablefmt.cell_i (Histogram.max_value hist);
          Tablefmt.cell_i (totals.(2) + totals.(3));
          (if totals.(4) = 0 then "-"
           else Tablefmt.cell_f ~decimals:2 (float_of_int totals.(0) /. float_of_int totals.(4))) ]
    in
    row "clean" hist_clean totals_clean;
    row "link faults" hist_faults totals_faults;
    let mig_totals =
      let sum f = List.fold_left (fun a v -> a + f v) 0 mig_vnets in
      [| sum Virtio_net.frames_sent; sum Virtio_net.frames_received;
         Switch.drops sw_mig;
         Array.fold_left (fun a l -> a + Link.wire_dropped l) 0 ports_mig;
         sum Virtio_net.kicks; Histogram.count hist_mig |]
    in
    row "live migration" hist_mig mig_totals;
    Tablefmt.print t;
    let oc = open_out "BENCH_net.json" in
    let emit name hist totals last extra =
      Printf.fprintf oc
        "    {\"name\": \"net/%s\", \"replies\": %d, \"p50\": %.1f, \"p95\": \
         %.1f, \"p99\": %.1f, \"max\": %d,\n\
        \     \"sent\": %d, \"received\": %d, \"switch_drops\": %d, \
         \"wire_dropped\": %d, \"kicks\": %d%s}%s\n"
        name (Histogram.count hist) (Histogram.percentile hist 50.0)
        (Histogram.percentile hist 95.0) (Histogram.percentile hist 99.0)
        (Histogram.max_value hist) totals.(0) totals.(1) totals.(2) totals.(3)
        totals.(4) extra
        (if last then "" else ",")
    in
    Printf.fprintf oc
      "{\n  \"hosts\": %d, \"clients_per_host\": %d, \"backends_per_host\": \
       %d, \"requests_per_client\": %d,\n\
      \  \"domains_checked\": [1, 4], \"byte_identical\": true,\n\
      \  \"scenarios\": [\n"
      hosts clients backends requests;
    emit "clean" hist_clean totals_clean false "";
    emit "faults" hist_faults totals_faults false "";
    emit "migration" hist_mig mig_totals true
      (Printf.sprintf ", \"downtime_cycles\": %Ld, \"pages_sent\": %d"
         mig_result.Migrate.downtime_cycles mig_result.Migrate.pages_sent);
    output_string oc "  ]\n}\n";
    close_out oc;
    Printf.printf
      "\nOpen-loop request/reply latency through the switched fabric\n\
       (client stamp to switch egress, simulated cycles).  The fleet\n\
       report and the per-host fabric digests are byte-identical at 1\n\
       and 4 domains, clean and under link faults (asserted); every\n\
       frame lands in a named counter (conservation asserted per host\n\
       and across the live migration).  Doorbell coalescing keeps kicks\n\
       well under frames sent (asserted).  Written to BENCH_net.json.\n"
  end

(* ------------------------------------------------------------------ *)

(* The block engine is a pure mechanism change: simulated cycles must be
   bit-identical to the interpreter on every workload (asserted here),
   while host wall-clock time drops because straight-line runs skip
   per-instruction fetch translation and decode.  Results also land in
   BENCH_engine.json for the CI trendline. *)

let engine_bench () =
  if section "ENGINE" "Execution engines: interp vs block (equal simulated cycles)" then begin
    let scale l q = if !quick then q else l in
    let scale_i l q = if !quick then q else l in
    let cases =
      [
        ( "cpu-spin",
          Images.plan ~user:(Workloads.cpu_spin ~iters:(scale 1_000_000L 100_000L)) () );
        ( "branch-mix",
          Images.plan ~user:(Workloads.branch_mix ~iters:(scale 600_000L 60_000L)) () );
        ( "memcpy",
          Images.plan ~heap_pages:18
            ~user:
              (Workloads.stream_copy ~words:4096 ~iters:(scale_i 150 15))
            () );
        ( "null-syscall",
          Images.plan ~user:(Workloads.syscall_loop ~count:(scale 4_000L 400L)) () );
        ( "pgtable-churn",
          Images.plan
            ~user:(Workloads.pt_churn ~batch:16 ~count:(scale_i 1_500 150) ())
            () );
      ]
    in
    let time_engine ~engine setup =
      let reps = if !quick then 1 else 3 in
      let best = ref infinity in
      let cycles = ref 0L in
      let instret = ref 0L in
      let chains = ref 0 in
      let traces = ref 0 in
      for _ = 1 to reps do
        let t0 = Sys.time () in
        let vm, total = run_vm ~engine setup in
        let dt = Sys.time () -. t0 in
        cycles := total;
        instret :=
          Array.fold_left
            (fun acc v -> Int64.add acc v.Vcpu.state.Velum_machine.Cpu.instret)
            0L vm.Vm.vcpus;
        (match vm.Vm.engine.Velum_machine.Engine.cache with
        | Some c ->
            chains := Velum_machine.Trans_cache.chain_follows c;
            traces := Velum_machine.Trans_cache.trace_follows c
        | None ->
            chains := 0;
            traces := 0);
        if dt < !best then best := dt
      done;
      (!best, !cycles, !instret, !chains, !traces)
    in
    let t =
      Tablefmt.create
        [ ("workload", Tablefmt.Left); ("interp s", Tablefmt.Right);
          ("block s", Tablefmt.Right); ("speedup", Tablefmt.Right);
          ("block MIPS", Tablefmt.Right); ("chains", Tablefmt.Right);
          ("traces", Tablefmt.Right); ("sim cycles", Tablefmt.Right) ]
    in
    let results =
      List.map
        (fun (name, setup) ->
          let si, ci, ri, _, _ = time_engine ~engine:Velum_machine.Engine.Interp setup in
          let sb, cb, rb, chains, traces =
            time_engine ~engine:Velum_machine.Engine.Block setup
          in
          if ci <> cb then
            failwith
              (Printf.sprintf
                 "ENGINE %s: simulated cycles diverged (interp %Ld, block %Ld)" name ci
                 cb);
          if ri <> rb then
            failwith
              (Printf.sprintf
                 "ENGINE %s: retired instructions diverged (interp %Ld, block %Ld)"
                 name ri rb);
          let speedup = si /. sb in
          (* guest instructions retired per host wall-clock second *)
          let mips = Int64.to_float rb /. sb /. 1e6 in
          Tablefmt.add_row t
            [ name; Tablefmt.cell_f ~decimals:3 si; Tablefmt.cell_f ~decimals:3 sb;
              Tablefmt.cell_f ~decimals:2 speedup; Tablefmt.cell_f ~decimals:1 mips;
              string_of_int chains; string_of_int traces; Int64.to_string ci ];
          (name, si, sb, speedup, mips, chains, traces, ci))
        cases
    in
    Tablefmt.print t;
    let oc = open_out "BENCH_engine.json" in
    output_string oc "{\n  \"benchmarks\": [\n";
    List.iteri
      (fun i (name, si, sb, speedup, mips, chains, traces, cycles) ->
        Printf.fprintf oc
          "    {\"name\": \"engine/%s\", \"interp_s\": %.6f, \"block_s\": %.6f, \
           \"speedup\": %.3f, \"block_mips\": %.2f, \"chain_follows\": %d, \
           \"trace_follows\": %d, \"sim_cycles\": %Ld}%s\n"
          name si sb speedup mips chains traces cycles
          (if i = List.length results - 1 then "" else ","))
      results;
    output_string oc "  ]\n}\n";
    close_out oc;
    Printf.printf
      "\nSimulated cycles and retired instructions are identical by construction\n\
       (asserted above); the speedup is pure host wall clock.  'chains' counts\n\
       block->block dispatches that skipped the hashtable, 'traces' counts\n\
       dispatches absorbed by compiled superblock traces.  Written to\n\
       BENCH_engine.json.\n"
  end

(* ------------------------------------------------------------------ *)
(* Bechamel: wall-clock microbenchmarks of the simulator itself        *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  if section "BECH" "Bechamel: simulator hot-path wall-clock microbenchmarks" then begin
    let open Bechamel in
    let open Velum_isa in
    let open Velum_machine in
    (* instruction encode/decode round trip *)
    let insns =
      [ Instr.Alu (Instr.Add, 1, 2, 3); Instr.Load { rd = 4; base = 5; off = 16L; width = Instr.W64 };
        Instr.Branch (Instr.Blt, 1, 2, -64L); Instr.Csrr (3, Arch.Satp); Instr.Hcall ]
    in
    let t_codec =
      Test.make ~name:"instr-encode-decode"
        (Staged.stage (fun () ->
             List.iter (fun i -> ignore (Instr.decode (Instr.encode i))) insns))
    in
    (* TLB hit *)
    let tlb = Tlb.create ~size:64 in
    Tlb.insert tlb
      { Tlb.vpn = 5L; ppn = 9L; perms = { Velum_isa.Pte.r = true; w = true; x = false; u = true };
        dirty_ok = true; mmio = false; superpage = false };
    let t_tlb =
      Test.make ~name:"tlb-lookup-hit" (Staged.stage (fun () -> ignore (Tlb.lookup tlb ~vpn:5L)))
    in
    (* native guest execution: cycles per simulated chunk *)
    let setup = Images.plan ~user:(Workloads.cpu_spin ~iters:1_000_000_000L) () in
    let platform = Platform.create ~frames:(setup.Images.frames + 16) () in
    Images.load_native platform setup;
    ignore (Platform.run ~budget:300_000L platform);
    let ctx_state = platform.Platform.cpu in
    let t_interp =
      Test.make ~name:"interp-1k-cycles"
        (Staged.stage (fun () ->
             (* keep executing the spin loop; budget bounds the work *)
             ignore
               (Velum_machine.Cpu.run ctx_state
                  (let open Velum_machine in
                   {
                     Cpu.translate =
                       (fun ~access ~user va -> Mmu.translate platform.Platform.mmu ~access ~user va);
                     read_ram = (fun pa w -> Phys_mem.read platform.Platform.mem pa w);
                     write_ram = (fun pa w v -> Phys_mem.write platform.Platform.mem pa w v);
                     flush_tlb = (fun () -> Mmu.flush platform.Platform.mmu);
                     now = (fun () -> 0L);
                     ext_irq = (fun () -> false);
                     cost = platform.Platform.cost;
                     dtlb = None;
                     env =
                       Cpu.Native
                         {
                           mmio_read = (fun _ _ -> None);
                           mmio_write = (fun _ _ _ -> false);
                           port_in = (fun _ -> None);
                           port_out = (fun _ _ -> false);
                         };
                   })
                  ~budget:1000)))
    in
    (* frame hashing (page-sharing scan) *)
    let mem = Phys_mem.create ~frames:8 in
    let t_hash =
      Test.make ~name:"frame-hash-4k"
        (Staged.stage (fun () -> ignore (Phys_mem.frame_hash mem ~ppn:3L)))
    in
    let grouped =
      Test.make_grouped ~name:"velum" [ t_codec; t_tlb; t_interp; t_hash ]
    in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg instances grouped in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    let t =
      Tablefmt.create
        [ ("benchmark", Tablefmt.Left); ("ns/run", Tablefmt.Right);
          ("r²", Tablefmt.Right) ]
    in
    let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
    List.iter
      (fun (name, ols_result) ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some (e :: _) -> Tablefmt.cell_f e
          | _ -> "-"
        in
        let r2 =
          match Analyze.OLS.r_square ols_result with
          | Some r -> Tablefmt.cell_f ~decimals:4 r
          | None -> "-"
        in
        Tablefmt.add_row t [ name; est; r2 ])
      (List.sort compare rows);
    Tablefmt.print t
  end

(* ------------------------------------------------------------------ *)

let () =
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--quick" -> quick := true
        | "--only" -> ()
        | a when String.length a > 0 && a.[0] <> '-' -> only := a :: !only
        | _ -> ())
    Sys.argv;
  Printf.printf "Velum benchmark harness (deterministic simulated cycles)\n";
  if !quick then Printf.printf "[quick mode]\n";
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  e14 ();
  e15 ();
  e16 ();
  e17 ();
  e18 ();
  e19 ();
  e20 ();
  e22 ();
  e23 ();
  a1 ();
  a2 ();
  a3 ();
  a4 ();
  a5 ();
  engine_bench ();
  bechamel_suite ();
  Printf.printf "\nDone.\n"
