(* The velum command-line tool: boot guests natively or under the
   hypervisor, migrate them between hosts, snapshot them, disassemble
   guest images, and plan consolidations — all from the shell.

     dune exec bin/velum.exe -- run --workload hello --paging shadow
     dune exec bin/velum.exe -- migrate --strategy precopy
     dune exec bin/velum.exe -- consolidate --hosts-cores 8
     dune exec bin/velum.exe -- disasm --workload memwalk *)

open Cmdliner
open Velum_util
open Velum_devices
open Velum_vmm
open Velum_guests

(* ---------------- shared workload construction ---------------- *)

type workload_kind =
  | W_hello
  | W_spin
  | W_syscalls
  | W_memwalk
  | W_pt_churn
  | W_blk
  | W_vblk
  | W_dirty

let workload_conv =
  Arg.enum
    [
      ("hello", W_hello); ("spin", W_spin); ("syscalls", W_syscalls);
      ("memwalk", W_memwalk); ("pt-churn", W_pt_churn); ("blk", W_blk);
      ("vblk", W_vblk); ("dirty", W_dirty);
    ]

let build_setup kind ~size ~pv =
  let n = Int64.of_int size in
  let user, heap =
    match kind with
    | W_hello -> (Workloads.hello (), 0)
    | W_spin -> (Workloads.cpu_spin ~iters:(Int64.mul n 1000L), 0)
    | W_syscalls -> (Workloads.syscall_loop ~count:n, 0)
    | W_memwalk -> (Workloads.memwalk ~pages:size ~iters:8 ~write:true, size)
    | W_pt_churn -> (Workloads.pt_churn ~batch:16 ~count:size (), 0)
    | W_blk -> (Workloads.blk_read ~sector:0 ~count:4 ~reps:size, 8)
    | W_vblk -> (Workloads.vblk_read ~sector:0 ~count:4 ~reps:size, 8)
    | W_dirty -> (Workloads.dirty_loop ~pages:size ~delay:2000, size + 8)
  in
  Images.plan ~pv_console:pv ~pv_pt:pv ~heap_pages:heap ~user ()

let paging_conv =
  Arg.enum [ ("shadow", Vm.Shadow_paging); ("nested", Vm.Nested_paging) ]

(* ---------------- fault plan flag ---------------- *)

let faults_conv =
  let parse s =
    match Fault.parse s with Ok f -> Ok f | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun fmt _ -> Format.fprintf fmt "<fault-plan>")

let faults_arg =
  Arg.(
    value
    & opt (some faults_conv) None
    & info [ "faults" ]
        ~doc:
          "Deterministic fault plan, e.g. \
           'seed=42,drop=0.05,corrupt=0.01,blk=0.02,partition@10000-20000'. \
           Clauses: seed=N, SITE=PROB, SITE@LO-HI (always-fire cycle \
           window).  Sites: drop corrupt dup delay blk blkperm partition \
           store.torn store.csum store.gc store.ref hb.loss.")

let print_faults f =
  if Fault.active f then Format.printf "fault counters:@.%a@?" Fault.pp f

(* ---------------- shared HA detector knobs ---------------- *)

(* One set of dials drives every heartbeat protocol in the tree: the
   fleet ring detector ('run --hosts N'), the single-host HA
   supervisor's restart backoff ('run --ha'), and the cluster control
   plane's hub-and-spoke failure detector ('velum cluster'). *)

let ha_miss_limit_arg =
  Arg.(
    value & opt int 3
    & info [ "ha-miss-limit" ]
        ~doc:
          "Consecutive heartbeat misses before a peer is declared dead \
           (ring detector in fleet mode; failover detector in 'velum \
           cluster').")

let ha_timeout_arg =
  Arg.(
    value & opt int64 0L
    & info [ "ha-timeout" ]
        ~doc:
          "Additional heartbeat-less cycles required on top of the miss \
           count before declaring death; 0 = the miss count alone \
           decides.")

let ha_backoff_arg =
  Arg.(
    value & opt int64 0L
    & info [ "ha-backoff" ]
        ~doc:
          "Base backoff in cycles, doubled per attempt: restart spacing \
           for the HA supervisor under --ha, probe spacing for the \
           cluster detector.  0 = the built-in default.")

(* ---------------- run ---------------- *)

let run_cmd =
  let workload =
    Arg.(value & opt workload_conv W_hello & info [ "workload"; "w" ] ~doc:"Guest workload.")
  in
  let size =
    Arg.(value & opt int 64 & info [ "size"; "n" ] ~doc:"Workload size parameter.")
  in
  let native =
    Arg.(value & flag & info [ "native" ] ~doc:"Run on bare metal instead of a VM.")
  in
  let paging =
    Arg.(value & opt paging_conv Vm.Nested_paging & info [ "paging" ] ~doc:"Paging mode.")
  in
  let pv = Arg.(value & flag & info [ "pv" ] ~doc:"Enable paravirtualization.") in
  let exec_mode =
    Arg.(
      value
      & opt (enum [ ("trap", Vm.Trap_emulate); ("bt", Vm.Binary_translation) ])
          Vm.Trap_emulate
      & info [ "exec" ] ~doc:"CPU virtualization technique: trap or bt.")
  in
  let engine =
    Arg.(
      value
      & opt
          (enum
             [
               ("interp", Velum_machine.Engine.Interp);
               ("block", Velum_machine.Engine.Block);
             ])
          Velum_machine.Engine.Interp
      & info [ "engine" ]
          ~doc:
            "Execution engine: interp (reference interpreter) or block \
             (decoded-block translation cache; same simulated cycles, faster \
             wall clock).")
  in
  let budget =
    Arg.(value & opt int64 2_000_000_000L & info [ "budget" ] ~doc:"Cycle budget.")
  in
  let watchdog =
    Arg.(
      value
      & opt (some int64) None
      & info [ "watchdog" ]
          ~doc:"Progress watchdog: cycles without retired instructions before firing.")
  in
  let watchdog_policy =
    Arg.(
      value
      & opt
          (enum
             [
               ("kill", Hypervisor.Wd_kill); ("notify", Hypervisor.Wd_notify);
               ("restart", Hypervisor.Wd_restart);
             ])
          Hypervisor.Wd_notify
      & info [ "watchdog-policy" ]
          ~doc:
            "What the watchdog does: kill, notify, or restart (restore from \
             the last checkpoint; implies the HA supervisor, see --ha).")
  in
  let ha =
    Arg.(
      value & flag
      & info [ "ha" ]
          ~doc:
            "Supervise the VM: periodic checkpoints to a crash-consistent \
             store, automatic restart from the last good checkpoint when the \
             progress watchdog wedges, crash-loop degradation.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int64 300_000L
      & info [ "checkpoint-every" ] ~doc:"HA checkpoint cadence in cycles.")
  in
  let trace_to =
    Arg.(
      value
      & opt ~vopt:(Some "velum.trace.jsonl") (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a cycle-stamped trace (VM exits, scheduler decisions, \
             hypercalls, device I/O, HA events) and export it as \
             deterministic JSONL to $(docv) (default velum.trace.jsonl). \
             Inspect with 'velum trace FILE'.")
  in
  let hosts =
    Arg.(
      value & opt int 1
      & info [ "hosts" ]
          ~doc:
            "Simulate a fleet of $(docv) share-nothing hosts (each runs one \
             copy of the workload) connected in a heartbeat ring, executed \
             under the deterministic round barrier.  Values > 1 switch to \
             the cluster runner; see also --domains.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ]
          ~doc:
            "Run the fleet's worker phases on this many OCaml domains.  The \
             printed report is byte-identical for every value — parallelism \
             only changes wall-clock time.")
  in
  let quantum =
    Arg.(
      value & opt int64 200_000L
      & info [ "quantum" ] ~doc:"Cycles each host runs between round barriers.")
  in
  let rounds =
    Arg.(
      value & opt int 8
      & info [ "rounds" ]
          ~doc:"Maximum barrier rounds (the fleet stops early if all hosts halt).")
  in
  let migrate_every =
    Arg.(
      value & opt int 0
      & info [ "migrate-every" ]
          ~doc:
            "Every $(docv) rounds, live-migrate one VM a step along the ring \
             at the barrier (0 = never).")
  in
  let fail_host =
    Arg.(
      value
      & opt (some (pair int int)) None
      & info [ "fail-host" ] ~docv:"ROUND,HOST"
          ~doc:
            "Kill host HOST at round ROUND; its ring successor detects the \
             missing heartbeats and declares it dead.")
  in
  let seed =
    Arg.(
      value & opt int64 0L
      & info [ "seed" ]
          ~doc:
            "Fleet seed: per-host RNG, fault and link streams derive from it.")
  in
  let action workload size native paging pv exec_mode engine budget faults watchdog
      watchdog_policy ha checkpoint_every trace_to hosts domains quantum rounds
      migrate_every fail_host seed ha_miss_limit ha_timeout ha_backoff =
    if hosts > 1 || domains > 1 then begin
      let module P = Velum_cluster.Parallel in
      let setup = build_setup workload ~size ~pv in
      let mk_vms i =
        [ P.spec ~paging ~pv ~engine ~name:(Printf.sprintf "vm%d" i) setup ]
      in
      let cfg =
        P.config ~quantum ~rounds ~seed ?faults ~migrate_every ?fail_host
          ~hb_miss_limit:ha_miss_limit ~hb_timeout:ha_timeout
          ~trace:(trace_to <> None) ~hosts ~mk_vms ()
      in
      let res = P.run ~domains cfg in
      print_string res.P.report;
      match trace_to with
      | Some file ->
          List.iter
            (fun (i, s) ->
              let oc = open_out (Printf.sprintf "%s.%d" file i) in
              output_string oc s;
              close_out oc)
            (P.traces res.P.fleet)
      | None -> ()
    end
    else begin
    let setup = build_setup workload ~size ~pv in
    let export_trace tr file =
      Trace.export_file tr file;
      Printf.printf "trace: %d events -> %s\n" (Trace.events_recorded tr) file
    in
    if native then begin
      let platform = Platform.create ~frames:(setup.Images.frames + 16) ~engine () in
      let tr = Option.map (fun _ -> Trace.create ()) trace_to in
      (* The device library cannot depend on the hypervisor core, so
         tracing on bare metal is glued here through a neutral I/O hook. *)
      Option.iter
        (fun tr ->
          Platform.set_io_hook platform (fun ~write ~addr ~now ->
              Trace.record tr ~vm_id:0 ~name:"native" ~at:now
                (Trace.Device_io { write; addr })))
        tr;
      Images.load_native platform setup;
      let outcome = Platform.run ~budget platform in
      Option.iter
        (fun tr ->
          Trace.add_guest_cycles tr ~vm_id:0 ~name:"native"
            (Int64.to_int (Platform.cycles platform)))
        tr;
      print_string (Platform.console_output platform);
      Printf.printf "[native] outcome: %s, cycles: %Ld, instructions: %Ld\n"
        (match outcome with
        | Platform.Halted -> "halted"
        | Platform.Out_of_budget -> "out of budget"
        | Platform.Deadlock -> "deadlock")
        (Platform.cycles platform)
        (Platform.instructions_retired platform);
      let open Velum_machine in
      Printf.printf "tlb.hits: %d\ntlb.misses: %d\ntlb.evictions: %d\ntlb.flushes: %d\n"
        (Tlb.hits platform.Platform.tlb)
        (Tlb.misses platform.Platform.tlb)
        (Tlb.evictions platform.Platform.tlb)
        (Tlb.flushes platform.Platform.tlb);
      Printf.printf "dtlb.hits: %d\ndtlb.misses: %d\ndtlb.fills: %d\n"
        (Dtlb.hits platform.Platform.dtlb)
        (Dtlb.misses platform.Platform.dtlb)
        (Dtlb.fills platform.Platform.dtlb);
      (match platform.Platform.engine.Engine.cache with
      | None -> ()
      | Some c ->
          Printf.printf
            "engine.cache.entries: %d\nengine.cache.hits: %d\nengine.cache.misses: \
             %d\nengine.cache.invalidations: %d\nengine.cache.evictions: %d\n"
            (Trans_cache.entries c) (Trans_cache.hits c) (Trans_cache.misses c)
            (Trans_cache.invalidations c) (Trans_cache.evictions c);
          Printf.printf
            "engine.chain.patched: %d\nengine.chain.follows: %d\nengine.chain.severed: \
             %d\n"
            (Trans_cache.chains_patched c)
            (Trans_cache.chain_follows c)
            (Trans_cache.chains_severed c);
          Printf.printf
            "engine.trace.built: %d\nengine.trace.follows: %d\nengine.trace.severed: \
             %d\nengine.trace.side_exits: %d\n"
            (Trans_cache.traces_built c)
            (Trans_cache.trace_follows c)
            (Trans_cache.traces_severed c)
            (Trans_cache.trace_side_exits c));
      match (trace_to, tr) with
      | Some file, Some tr -> export_trace tr file
      | _ -> ()
    end
    else begin
      let host = Host.create ~frames:(setup.Images.frames + 1024) () in
      let hyp = Hypervisor.create ~host () in
      Option.iter (fun _ -> Hypervisor.set_trace hyp (Trace.create ())) trace_to;
      let vm =
        Hypervisor.create_vm hyp ~name:"cli" ~mem_frames:setup.Images.frames ~paging
          ~pv:(if pv then Vm.full_pv else Vm.no_pv)
          ~exec_mode ~engine ~entry:Images.entry ()
      in
      Images.load_vm vm setup;
      (match faults with
      | Some f ->
          Blockdev.set_faults vm.Vm.blk f;
          Virtio_blk.set_faults vm.Vm.vblk f
      | None -> ());
      let outcome, vm =
        if ha then begin
          let probe = Snapshot.capture vm in
          let store =
            Store.create
              ~sectors:(Store.sectors_for ~image_bytes:(Snapshot.size_bytes probe))
              ?faults ()
          in
          let backoff_base =
            if Int64.compare ha_backoff 0L > 0 then Some ha_backoff else None
          in
          let sup =
            Ha.create ~hyp ~store ~vm ?wd_budget:watchdog ~checkpoint_every
              ?backoff_base ()
          in
          let o = Ha.run sup ~budget in
          let s = Ha.stats sup in
          Printf.printf "ha: %d checkpoints (%d torn), %d restarts, degraded: %b\n"
            s.Ha.checkpoints s.Ha.torn_checkpoints s.Ha.restarts s.Ha.degraded;
          if s.Ha.mttr_events > 0 then
            Printf.printf "ha: mean MTTR %Ld cycles over %d restores\n"
              (Int64.div s.Ha.mttr_total (Int64.of_int s.Ha.mttr_events))
              s.Ha.mttr_events;
          (o, Ha.vm sup)
        end
        else begin
          (match watchdog with
          | Some budget -> Hypervisor.set_watchdog hyp ~budget ~policy:watchdog_policy
          | None -> ());
          (Hypervisor.run hyp ~budget, vm)
        end
      in
      print_string (Vm.console_output vm);
      Printf.printf "[vm] outcome: %s, guest cycles: %Ld, vmm cycles: %Ld\n"
        (match outcome with
        | Hypervisor.All_halted -> "halted"
        | Hypervisor.Out_of_budget -> "out of budget"
        | Hypervisor.Idle_deadlock -> "deadlock"
        | Hypervisor.Until_satisfied -> "condition met")
        (Vm.guest_cycles vm) (Vm.vmm_cycles vm);
      Vm.publish_stats vm;
      Format.printf "%a@?" Monitor.pp vm.Vm.monitor;
      if Blockdev.error_count vm.Vm.blk > 0 || Virtio_blk.error_count vm.Vm.vblk > 0
      then
        Printf.printf "block errors: blk %d, vblk %d\n"
          (Blockdev.error_count vm.Vm.blk)
          (Virtio_blk.error_count vm.Vm.vblk);
      if Hypervisor.watchdog_fired hyp > 0 then
        Printf.printf "watchdog fired: %d\n" (Hypervisor.watchdog_fired hyp);
      Option.iter print_faults faults;
      match (trace_to, Hypervisor.trace hyp) with
      | Some file, Some tr -> export_trace tr file
      | _ -> ()
    end
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Boot a guest workload natively or under the hypervisor.")
    Term.(
      const action $ workload $ size $ native $ paging $ pv $ exec_mode $ engine $ budget
      $ faults_arg $ watchdog $ watchdog_policy $ ha $ checkpoint_every $ trace_to
      $ hosts $ domains $ quantum $ rounds $ migrate_every $ fail_host $ seed
      $ ha_miss_limit_arg $ ha_timeout_arg $ ha_backoff_arg)

(* ---------------- trace report ---------------- *)

let trace_cmd =
  let file =
    Arg.(
      value
      & pos 0 string "velum.trace.jsonl"
      & info [] ~docv:"FILE" ~doc:"Trace export produced by 'run --trace'.")
  in
  let action file = print_string (Trace.render_report file) in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Render a recorded trace: per-VM guest/VMM/device cycle attribution \
          and per-exit-kind latency histograms (p50/p95/p99).")
    Term.(const action $ file)

(* ---------------- migrate ---------------- *)

let migrate_cmd =
  let strategy =
    Arg.(
      value
      & opt (enum [ ("stopcopy", `Stop); ("precopy", `Pre); ("postcopy", `Post) ]) `Pre
      & info [ "strategy"; "s" ] ~doc:"Migration strategy.")
  in
  let delay =
    Arg.(value & opt int 4000 & info [ "delay" ] ~doc:"Guest inter-write delay (dirty rate knob).")
  in
  let pages =
    Arg.(value & opt int 64 & info [ "pages" ] ~doc:"Guest dirty working set in pages.")
  in
  let action strategy delay pages faults =
    let setup =
      Images.plan ~heap_pages:(pages + 8) ~user:(Workloads.dirty_loop ~pages ~delay) ()
    in
    let src = Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 1024) ()) () in
    let dst = Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 1024) ()) () in
    let vm =
      Hypervisor.create_vm src ~name:"mig" ~mem_frames:setup.Images.frames
        ~entry:Images.entry ()
    in
    Images.load_vm vm setup;
    ignore (Hypervisor.run src ~budget:4_000_000L);
    let link = Link.create () in
    Option.iter (Link.set_faults link) faults;
    let twin, r =
      match strategy with
      | `Stop -> Migrate.stop_and_copy ~src ~dst ~vm ~link ()
      | `Pre -> Migrate.precopy ~src ~dst ~vm ~link ~max_rounds:10 ~stop_threshold:8 ()
      | `Post -> Migrate.postcopy ~src ~dst ~vm ~link ()
    in
    if r.Migrate.aborted then begin
      Printf.printf
        "migration ABORTED after %d retransmits; source '%s' resumed (round %d)\n"
        r.Migrate.retransmits twin.Vm.name r.Migrate.rounds;
      ignore (Hypervisor.run src ~budget:2_000_000L);
      Printf.printf "source is %s after rollback\n"
        (if Vm.halted twin then "halted" else "running")
    end
    else begin
      ignore (Hypervisor.run dst ~budget:2_000_000L);
      Printf.printf
        "migrated '%s': total %Ld cycles, downtime %Ld cycles, %d pages, %d rounds, %d \
         demand faults, %d retransmits\n"
        twin.Vm.name r.Migrate.total_cycles r.Migrate.downtime_cycles
        r.Migrate.pages_sent r.Migrate.rounds r.Migrate.remote_faults
        r.Migrate.retransmits;
      Printf.printf "twin is %s on the destination\n"
        (if Vm.halted twin then "halted" else "running")
    end;
    Option.iter print_faults faults
  in
  Cmd.v
    (Cmd.info "migrate" ~doc:"Live-migrate a running guest between two hosts.")
    Term.(const action $ strategy $ delay $ pages $ faults_arg)

(* ---------------- replicate ---------------- *)

let replicate_cmd =
  let epoch =
    Arg.(value & opt int64 300_000L & info [ "epoch" ] ~doc:"Checkpoint epoch in cycles.")
  in
  let epochs = Arg.(value & opt int 8 & info [ "epochs" ] ~doc:"Epochs before failover.") in
  let action epoch_cycles epochs faults =
    let setup =
      Images.plan ~heap_pages:64 ~user:(Workloads.dirty_loop ~pages:48 ~delay:500) ()
    in
    let primary =
      Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 1024) ()) ()
    in
    let backup =
      Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 1024) ()) ()
    in
    let vm =
      Hypervisor.create_vm primary ~name:"protected" ~mem_frames:setup.Images.frames
        ~entry:Images.entry ()
    in
    Images.load_vm vm setup;
    ignore (Hypervisor.run primary ~budget:3_000_000L);
    let link = Link.create () in
    Option.iter (Link.set_faults link) faults;
    let twin, st = Replicate.protect ~primary ~backup ~vm ~link ~epoch_cycles ~epochs () in
    Printf.printf
      "protected for %d epochs: %d pages shipped (+%d initial), paused %Ld cycles over %Ld run
"
      st.Replicate.epochs_completed st.Replicate.pages_sent st.Replicate.initial_pages
      st.Replicate.paused_cycles st.Replicate.run_cycles;
    if st.Replicate.retransmits > 0 || st.Replicate.link_failed then
      Printf.printf "checkpoint retransmits: %d%s\n" st.Replicate.retransmits
        (if st.Replicate.link_failed then " (link failed; early failover)" else "");
    ignore (Hypervisor.run backup ~budget:2_000_000L);
    Printf.printf "failover complete; '%s' is %s on the backup host
" twin.Vm.name
      (if Vm.halted twin then "halted" else "running");
    Option.iter print_faults faults
  in
  Cmd.v
    (Cmd.info "replicate" ~doc:"Protect a guest with Remus-style checkpoints, then fail over.")
    Term.(const action $ epoch $ epochs $ faults_arg)

(* ---------------- snapshot ---------------- *)

let snapshot_cmd =
  let action () =
    let setup = build_setup W_hello ~size:0 ~pv:false in
    let host = Host.create ~frames:((3 * setup.Images.frames) + 1024) () in
    let hyp = Hypervisor.create ~host () in
    let vm =
      Hypervisor.create_vm hyp ~name:"snap-demo" ~mem_frames:setup.Images.frames
        ~entry:Images.entry ()
    in
    Images.load_vm vm setup;
    ignore (Hypervisor.run hyp);
    let image = Snapshot.capture vm in
    Printf.printf "captured %s: %d bytes (%d guest frames)\n" vm.Vm.name
      (Snapshot.size_bytes image) (Vm.mem_frames vm);
    let restored = Snapshot.restore hyp image in
    Printf.printf "restored as vm%d; console identical: %b\n" restored.Vm.id
      (Vm.console_output restored = Vm.console_output vm)
  in
  Cmd.v
    (Cmd.info "snapshot" ~doc:"Capture and restore a full VM snapshot.")
    Term.(const action $ const ())

(* ---------------- recover ---------------- *)

(* Crash-recovery exercise for the durable snapshot store: commit one
   generation intact, cut the next (delta) commit's byte stream — or,
   with `--gc`, a GC compaction's stream — at a chosen (or swept)
   offset, power-cycle (remount the raw device), and verify the
   recovered image is byte-identical to a complete generation — never a
   torn hybrid, never a manifest pointing at reclaimed chunks.
   `--sweep` is the CI crash matrix; it exits nonzero on any torn or
   empty recovery.  The prepared baseline store is built once and
   byte-cloned per offset, so a stride-1 sweep of every offset stays
   cheap. *)
let recover_cmd =
  let sweep =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Sweep power-failure offsets across the full write stream and \
             verify recovery at each.")
  in
  let gc =
    Arg.(
      value & flag
      & info [ "gc" ]
          ~doc:
            "Crash during a GC compaction instead of a delta commit: fill \
             two generations, cut the compaction stream, and verify the \
             newest generation still recovers.")
  in
  let stride =
    Arg.(value & opt int 997 & info [ "stride" ] ~doc:"Sweep stride in bytes.")
  in
  let size =
    Arg.(
      value & opt int 16
      & info [ "size" ]
          ~doc:
            "Dirty-workload size; smaller sizes shrink the write stream so \
             a stride-1 sweep of every byte offset stays fast.")
  in
  let pages =
    Arg.(
      value
      & opt (some int) None
      & info [ "pages" ]
          ~doc:
            "Use synthetic patterned images of this many 4 KiB pages \
             instead of VM snapshots.  A megabyte-scale VM image makes a \
             stride-1 sweep take hours; a handful of synthetic pages \
             exercises the identical write stream (chunks, manifest, \
             catalog, reftable, superblock) in seconds, so CI covers \
             EVERY byte offset.")
  in
  let crash_at =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-at" ]
          ~doc:"Cut the write stream after this many bytes, then recover.")
  in
  let action sweep gc stride size pages crash_at =
    if stride <= 0 then failwith "recover: stride must be positive";
    if size <= 0 then failwith "recover: size must be positive";
    let img1, img2 =
      match pages with
      | Some n ->
          if n <= 0 then failwith "recover: pages must be positive";
          (* patterned pages, with a deliberate duplicate so intra-image
             dedup is on the swept path; generation 2 churns a quarter
             of them (at least one) *)
          let page i tag =
            let b = Bytes.create 4096 in
            for j = 0 to 4095 do
              Bytes.unsafe_set b j
                (Char.chr ((((i * 131) + (j * 7) + tag) land 0x7f) + 1))
            done;
            b
          in
          let mk tag churned =
            let b = Buffer.create (n * 4096) in
            for i = 0 to n - 1 do
              let dup = if i = n - 1 && n > 1 then 0 else i in
              Buffer.add_bytes b
                (page dup (if churned i then tag else 0))
            done;
            Buffer.to_bytes b
          in
          (mk 0 (fun _ -> false), mk 17 (fun i -> i mod 4 = 1 || n = 1))
      | None ->
          (* two generations of a real VM image, some execution apart *)
          let setup = build_setup W_dirty ~size ~pv:false in
          let host = Host.create ~frames:(setup.Images.frames + 1024) () in
          let hyp = Hypervisor.create ~host () in
          let vm =
            Hypervisor.create_vm hyp ~name:"durable"
              ~mem_frames:setup.Images.frames ~entry:Images.entry ()
          in
          Images.load_vm vm setup;
          ignore (Hypervisor.run hyp ~budget:2_000_000L);
          let img1 = Snapshot.capture vm in
          ignore (Hypervisor.run hyp ~budget:2_000_000L);
          (img1, Snapshot.capture vm)
    in
    let image_bytes = max (Bytes.length img1) (Bytes.length img2) in
    let sectors = Store.sectors_for ~image_bytes in
    (* prepared baseline, cloned per offset instead of replayed *)
    let base = Store.create ~sectors () in
    (match Store.commit base img1 with
    | Store.Committed _ -> ()
    | Store.Torn _ -> failwith "recover: baseline commit torn");
    if gc then
      (* the compaction needs a second live generation so dead chunks
         from gen 1 actually exist to reclaim *)
      match Store.commit base img2 with
      | Store.Committed _ -> ()
      | Store.Torn _ -> failwith "recover: second baseline commit torn"
    else ();
    let stream_bytes =
      if gc then Store.gc_bytes base else Store.commit_bytes base img2
    in
    let base_gen = Store.generation base in
    let check offset =
      let store = Store.clone base in
      if gc then ignore (Store.gc ~crash_at:offset store)
      else ignore (Store.commit ~crash_at:offset store img2);
      (* power cycle: remount the raw device, discarding memory state *)
      let store = Store.mount (Store.device store) in
      match Store.recover store with
      | None -> `Nothing
      | Some (img, _gen) ->
          if gc then
            (* GC must preserve the newest generation at every cut *)
            if Bytes.equal img img2 then
              if Store.generation store > base_gen then `New else `Old
            else `Torn
          else if Bytes.equal img img2 then `New
          else if Bytes.equal img img1 then `Old
          else `Torn
    in
    let what = if gc then "gc" else "commit" in
    if sweep then begin
      let failures = ref 0 and old_n = ref 0 and new_n = ref 0 and offsets = ref 0 in
      let off = ref 0 in
      while !off < stream_bytes do
        incr offsets;
        (match check !off with
        | `Old -> incr old_n
        | `New -> incr new_n
        | `Torn ->
            incr failures;
            Printf.printf "TORN recovery at offset %d\n" !off
        | `Nothing ->
            incr failures;
            Printf.printf "NOTHING recoverable at offset %d\n" !off);
        off := !off + stride
      done;
      Printf.printf
        "crash sweep: %d offsets over %d %s bytes -> %d recover previous, %d \
         recover new, %d failures\n"
        !offsets stream_bytes what !old_n !new_n !failures;
      if !failures > 0 then exit 1
    end
    else begin
      let offset =
        match crash_at with Some o -> o | None -> stream_bytes / 2
      in
      let verdict =
        match check offset with
        | `Old ->
            if gc then "newest generation (compaction lost, image intact)"
            else "previous generation (commit lost, image intact)"
        | `New ->
            if gc then "newest generation (compaction flipped before the cut)"
            else "new generation (commit landed before the cut)"
        | `Torn -> "TORN HYBRID — crash consistency violated"
        | `Nothing -> "NOTHING — crash consistency violated"
      in
      Printf.printf "power failure at byte %d of %d (%s): recovered %s\n"
        offset stream_bytes what verdict;
      match check offset with `Old | `New -> () | _ -> exit 1
    end
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Verify crash-consistent snapshot-store recovery across power-failure offsets.")
    Term.(const action $ sweep $ gc $ stride $ size $ pages $ crash_at)

(* ---------------- disasm ---------------- *)

let disasm_cmd =
  let workload =
    Arg.(value & opt workload_conv W_hello & info [ "workload"; "w" ] ~doc:"Workload to disassemble.")
  in
  let kernel =
    Arg.(value & flag & info [ "kernel" ] ~doc:"Disassemble the guest kernel instead.")
  in
  let action workload kernel =
    let setup = build_setup workload ~size:16 ~pv:false in
    let img = if kernel then setup.Images.kernel else setup.Images.user in
    List.iter print_endline (Velum_isa.Asm.disassemble img)
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a guest image.")
    Term.(const action $ workload $ kernel)

(* ---------------- consolidate ---------------- *)

let consolidate_cmd =
  let cores =
    Arg.(value & opt int 8 & info [ "host-cores" ] ~doc:"Cores per physical host.")
  in
  let ram =
    Arg.(value & opt int 16384 & info [ "host-ram-mb" ] ~doc:"RAM per physical host (MiB).")
  in
  let action cores ram =
    let spec = { Placement.default_host with cores; ram_mb = ram } in
    let mk name n cpu mem =
      List.init n (fun i ->
          { Placement.vm_name = Printf.sprintf "%s-%d" name i; cpu_units = cpu; mem_mb = mem })
    in
    let fleet =
      List.concat
        [
          mk "ad-dc" 4 50 2048; mk "terminal" 8 200 4096; mk "erp-app" 6 150 4096;
          mk "mssql" 6 250 8192; mk "mail" 2 200 8192; mk "web" 8 100 2048;
          mk "antivirus" 2 100 2048; mk "devtest" 10 100 2048; mk "legacy-dos" 4 25 512;
        ]
    in
    let plan = Placement.first_fit_decreasing spec fleet in
    let report = Placement.cost_savings spec fleet plan () in
    let t = Tablefmt.create [ ("host", Tablefmt.Right); ("VMs", Tablefmt.Left) ] in
    for h = 0 to plan.Placement.hosts_used - 1 do
      let vms =
        List.filter_map
          (fun a ->
            if a.Placement.host_index = h then Some a.Placement.req.Placement.vm_name
            else None)
          plan.Placement.assignments
      in
      Tablefmt.add_row t [ string_of_int h; String.concat " " vms ]
    done;
    Tablefmt.print t;
    Printf.printf "%d VMs on %d hosts (%.1f VMs/host); %.0f EUR/year saved (%.0f per displaced server)\n"
      (List.length fleet) plan.Placement.hosts_used
      (Placement.consolidation_ratio plan) report.Placement.annual_euro_saved
      report.Placement.euro_saved_per_displaced_server
  in
  Cmd.v
    (Cmd.info "consolidate" ~doc:"Plan a 50-VM consolidation with FFD packing.")
    Term.(const action $ cores $ ram)

(* ---------------- cluster ---------------- *)

let cluster_cmd =
  let hosts =
    Arg.(value & opt int 16 & info [ "hosts" ] ~doc:"Fleet size in hosts.")
  in
  let vms =
    Arg.(
      value & opt int 0
      & info [ "vms" ]
          ~doc:"Initial workload size; 0 = two VMs per host.")
  in
  let burst =
    Arg.(
      value & opt int 0
      & info [ "burst" ]
          ~doc:
            "Overload burst: this many extra VMs arrive together at \
             --burst-round, exercising shed/balloon degradation.")
  in
  let burst_round =
    Arg.(
      value & opt int 6
      & info [ "burst-round" ] ~doc:"Arrival round of the overload burst.")
  in
  let quantum =
    Arg.(
      value & opt int64 50_000L
      & info [ "quantum" ] ~doc:"Cycles each host runs between round barriers.")
  in
  let rounds =
    Arg.(value & opt int 24 & info [ "rounds" ] ~doc:"Barrier rounds to run.")
  in
  let seed =
    Arg.(value & opt int64 0L & info [ "seed" ] ~doc:"Fleet seed.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ]
          ~doc:
            "Worker domains.  The printed report is byte-identical for \
             every value.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 4
      & info [ "checkpoint-every" ]
          ~doc:"Rounds between durable per-VM checkpoints (the evacuation source).")
  in
  let kills =
    Arg.(
      value
      & opt_all (pair int int) []
      & info [ "kill" ] ~docv:"ROUND,HOST"
          ~doc:
            "Kill host HOST at round ROUND (repeatable).  The detector \
             declares it dead, fences it, and evacuates its VMs from \
             their last checkpoint onto survivors.")
  in
  let drains =
    Arg.(
      value
      & opt_all (pair int int) []
      & info [ "drain" ] ~docv:"ROUND,HOST"
          ~doc:
            "Rolling maintenance on host HOST starting at round ROUND \
             (repeatable): cordon, live-migrate every VM off, reboot, \
             refill.")
  in
  let action hosts vms burst burst_round quantum rounds seed domains
      checkpoint_every kills drains faults ha_miss_limit ha_timeout ha_backoff =
    let module C = Velum_cluster.Control in
    let setup =
      Images.plan ~heap_pages:16
        ~user:(Workloads.dirty_loop ~pages:8 ~delay:1500)
        ()
    in
    let prio i = match i mod 3 with 0 -> C.High | 1 -> C.Normal | _ -> C.Low in
    let nvms = if vms > 0 then vms else 2 * hosts in
    (* the first four VMs form an anti-affinity group: the placer must
       spread them over four distinct hosts *)
    let mk ~arrives tag i =
      let group = if arrives <= 0 && i < 4 then Some 0 else None in
      C.desc ~prio:(prio i) ?group ~arrives
        ~name:(Printf.sprintf "%s%02d" tag i)
        setup
    in
    let workload =
      List.init nvms (mk ~arrives:0 "vm")
      @ List.init burst (mk ~arrives:burst_round "burst")
    in
    let knobs =
      {
        Ha.Failover.miss_limit = ha_miss_limit;
        timeout = ha_timeout;
        takeover_backoff = ha_backoff;
      }
    in
    let cfg =
      C.config ~quantum ~rounds ~seed ?faults ~knobs
        ~cap_units:(3 * setup.Images.frames)
        ~headroom:setup.Images.frames ~checkpoint_every ~kills ~drains ~hosts
        ~workload ()
    in
    let res = C.run ~domains cfg in
    print_string res.C.report;
    Option.iter print_faults faults
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Run the self-healing cluster control plane: FFD admission with \
          anti-affinity and headroom, heartbeat failure detection, \
          fence-then-evacuate from durable checkpoints, rolling drain \
          maintenance, and priority-class overload shedding — \
          byte-deterministic at any --domains.")
    Term.(
      const action $ hosts $ vms $ burst $ burst_round $ quantum $ rounds $ seed
      $ domains $ checkpoint_every $ kills $ drains $ faults_arg
      $ ha_miss_limit_arg $ ha_timeout_arg $ ha_backoff_arg)

(* ---------------- net ---------------- *)

(* A switched virtio-net fleet: per host, one load-balancer VM fanning
   requests out over backend VMs, driven by open-loop clients, all
   connected through the learning switch.  The printed fleet report and
   per-host fabric digest are byte-identical at any --domains, so CI
   diffs the output across domain counts (clean and under --faults). *)

let net_cmd =
  let hosts =
    Arg.(value & opt int 2 & info [ "hosts" ] ~doc:"Fleet cells (one switch + LB + backends + clients each).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ]
          ~doc:"Worker domains.  Output is byte-identical for every value.")
  in
  let backends =
    Arg.(value & opt int 2 & info [ "backends" ] ~doc:"Backend VMs per cell.")
  in
  let clients =
    Arg.(value & opt int 2 & info [ "clients" ] ~doc:"Client VMs per cell.")
  in
  let requests =
    Arg.(value & opt int 16 & info [ "requests" ] ~doc:"Requests per client.")
  in
  let batch =
    Arg.(
      value & opt int 4
      & info [ "batch" ]
          ~doc:"Requests staged per doorbell (one VM exit per batch).")
  in
  let service =
    Arg.(value & opt int 150 & info [ "service" ] ~doc:"Backend service time in spin iterations.")
  in
  let quantum =
    Arg.(
      value & opt int64 400_000L
      & info [ "quantum" ] ~doc:"Cycles each host runs between round barriers.")
  in
  let rounds =
    Arg.(value & opt int 16 & info [ "rounds" ] ~doc:"Maximum barrier rounds.")
  in
  let seed = Arg.(value & opt int64 23L & info [ "seed" ] ~doc:"Fleet seed.") in
  let action hosts domains backends clients requests batch service quantum
      rounds seed faults =
    let module P = Velum_cluster.Parallel in
    let n_ports = 1 + backends + clients in
    let mac p = Int64.of_int (0x10 + p) in
    let lb_setup =
      Images.plan ~heap_pages:2 ~vnet:true
        ~user:
          (Workloads.vnet_lb ~my_mac:(mac 0)
             ~backends:(List.init backends (fun b -> mac (1 + b))))
        ()
    in
    let backend_setup b =
      Images.plan ~heap_pages:2 ~vnet:true
        ~user:(Workloads.vnet_backend ~my_mac:(mac (1 + b)) ~service)
        ()
    in
    let client_setup c =
      Images.plan ~heap_pages:2 ~vnet:true
        ~user:
          (Workloads.vnet_client ~my_mac:(mac (1 + backends + c)) ~lb_mac:(mac 0)
             ~peers:(n_ports - 1) ~requests ~batch ~gap:500)
        ()
    in
    let mk_vms _i =
      [ P.spec ~name:"lb" lb_setup ]
      @ List.init backends (fun b ->
            P.spec ~name:(Printf.sprintf "backend%d" b) (backend_setup b))
      @ List.init clients (fun c ->
            P.spec ~name:(Printf.sprintf "client%d" c) (client_setup c))
    in
    let stash = Array.make hosts None in
    let hists = Array.init hosts (fun _ -> Histogram.create ()) in
    let wire i hyp =
      let ports =
        Array.init n_ports (fun _ ->
            Link.create ~bytes_per_cycle:1.0 ~latency_cycles:200 ())
      in
      (match faults with
      | Some base ->
          Array.iteri
            (fun p l ->
              Link.set_faults l
                (Fault.derive base ~seed:(Int64.of_int (7_001 + (i * 97) + p))))
            ports
      | None -> ());
      let sw = Switch.create ports in
      Array.iteri (fun p _ -> Switch.learn sw ~mac:(mac p) ~port:p) ports;
      Switch.set_snoop sw
        (Some
           (fun port now frame ->
             if
               port > backends
               && String.length frame >= 48
               && String.get_int64_le frame 16 = 2L
             then
               Histogram.add hists.(i)
                 (Int64.to_int (Int64.sub now (String.get_int64_le frame 32)))));
      Hypervisor.add_ticker hyp (Switch.tick sw);
      Hypervisor.add_event_source hyp (fun () -> Switch.next_event sw);
      List.iteri
        (fun p vm -> ignore (Vm.attach_vnet vm ~link:ports.(p) ~endpoint:`A))
        hyp.Hypervisor.vms;
      stash.(i) <- Some (sw, ports)
    in
    let cfg = P.config ~quantum ~rounds ~seed ~hosts ~wire ~mk_vms () in
    let r = P.run ~domains cfg in
    print_string r.P.report;
    let fleet_hist = Histogram.create () in
    let replies = ref 0 and sent = ref 0 and kicks = ref 0 and drops = ref 0 in
    Array.iteri
      (fun i node ->
        let sw, ports = Option.get stash.(i) in
        let vnets =
          List.filter_map (fun vm -> vm.Vm.vnet) node.P.hyp.Hypervisor.vms
        in
        let sum f = List.fold_left (fun a v -> a + f v) 0 vnets in
        let wire_drop =
          Array.fold_left (fun a l -> a + Link.wire_dropped l) 0 ports
        in
        if not (Switch.conserved sw) then
          failwith (Printf.sprintf "net: host%d switch conservation violated" i);
        let h = hists.(i) in
        List.iter
          (fun (lo, n) ->
            for _ = 1 to n do
              Histogram.add fleet_hist lo
            done)
          (Histogram.buckets h);
        replies := !replies + Histogram.count h;
        sent := !sent + sum Virtio_net.frames_sent;
        kicks := !kicks + sum Virtio_net.kicks;
        drops := !drops + Switch.drops sw + wire_drop;
        Printf.printf
          "host%d replies=%d p50=%.1f p95=%.1f p99=%.1f max=%d sent=%d \
           recv=%d sw_drops=%d wire_drop=%d kicks=%d\n"
          i (Histogram.count h) (Histogram.percentile h 50.0)
          (Histogram.percentile h 95.0) (Histogram.percentile h 99.0)
          (Histogram.max_value h) (sum Virtio_net.frames_sent)
          (sum Virtio_net.frames_received) (Switch.drops sw) wire_drop
          (sum Virtio_net.kicks))
      r.P.fleet.P.nodes;
    Printf.printf
      "fabric: replies=%d p50=%.1f p95=%.1f p99=%.1f drops=%d frames/kick=%s\n"
      !replies
      (Histogram.percentile fleet_hist 50.0)
      (Histogram.percentile fleet_hist 95.0)
      (Histogram.percentile fleet_hist 99.0)
      !drops
      (if !kicks = 0 then "-"
       else Printf.sprintf "%.2f" (float_of_int !sent /. float_of_int !kicks))
    (* the base fault plan only seeds the per-link derived plans, so its
       own counters stay empty — nothing useful to print here *)
  in
  Cmd.v
    (Cmd.info "net"
       ~doc:
         "Run a switched virtio-net fleet (LB fan-out over backends under \
          open-loop clients) and print per-host latency/counter digests — \
          byte-deterministic at any --domains.")
    Term.(
      const action $ hosts $ domains $ backends $ clients $ requests $ batch
      $ service $ quantum $ rounds $ seed $ faults_arg)

(* ---------------- info ---------------- *)

let info_cmd =
  let action () =
    let c = Velum_machine.Cost_model.default in
    Printf.printf "Velum: a trap-and-emulate VMM for the VR64 simulated machine\n\n";
    Printf.printf "architecture: %d-bit, %d registers, %d-level paging, %d-byte pages\n"
      Velum_isa.Arch.xlen Velum_isa.Arch.num_regs Velum_isa.Arch.pt_levels
      Velum_isa.Arch.page_size;
    Printf.printf "cost model (cycles): vmexit %d, hypercall %d, trap %d, pt-ref %d\n"
      c.Velum_machine.Cost_model.vmexit c.Velum_machine.Cost_model.hypercall
      c.Velum_machine.Cost_model.trap_enter c.Velum_machine.Cost_model.pt_ref;
    Printf.printf "walk refs: 1-D %d, 2-D %d\n" Velum_machine.Cost_model.walk_refs_1d
      Velum_machine.Cost_model.walk_refs_2d;
    Printf.printf "\nmonitor exit counters (per VM):\n  %s\n"
      (String.concat " "
         (List.map Monitor.exit_kind_name Monitor.all_exit_kinds));
    Printf.printf
      "engine/TLB gauges (printed by 'run', set/dotted names):\n\
      \  engine.cache.{entries,hits,misses,invalidations,evictions}\n\
      \  engine.chain.{patched,follows,severed}\n\
      \  engine.trace.{built,follows,severed,side_exits}\n\
      \  tlb.{hits,misses,evictions,flushes}  dtlb.{hits,misses,fills}\n\
      \  net.{sent,received,tx_dropped,rx_dropped,rx_overflow,rx_queued,kicks}\n";
    Printf.printf "fault-injection sites (--faults SPEC):\n  %s\n"
      (String.concat " " (List.map Fault.site_name Fault.all_sites));
    Printf.printf
      "recovery: link frames carry seq + FNV-1a checksum (NACK/timeout \
       retransmit,\n\
      \  exponential backoff, bounded retries); migration aborts and rolls \
       back on\n\
      \  exhaustion; replication commits checkpoints atomically; guest block \
       drivers\n\
      \  retry 3 times; the hypervisor watchdog counts under 'watchdog'.\n\
       high availability: the snapshot store is content-addressed — \
       images are\n\
      \  chunked, deduplicated across generations and VMs, and refcounted; \
       GC\n\
      \  compacts live chunks into the idle log space and flips \
       (store.gc cuts\n\
      \  the compaction, store.ref rots the refcount table); commits land \
       via a\n\
      \  two-slot superblock flip, so a cut at any byte offset of a delta \
       commit\n\
      \  or a compaction recovers the previous or new image, never a hybrid \
       and\n\
      \  never a dangling chunk — see 'velum recover --sweep [--gc]'; the \
       HA supervisor ('run --ha')\n\
      \  restores wedged VMs from the last checkpoint with exponential \
       backoff and a\n\
      \  crash-loop budget; missed heartbeats drive automatic failover with \
       generation\n\
      \  fencing against split-brain.\n\
       cluster: 'velum cluster' runs the fleet control plane — FFD \
       admission with\n\
      \  anti-affinity + headroom, heartbeat failure detection \
       (cluster.hb), fence-\n\
      \  then-evacuate from durable checkpoints (cluster.evac), rolling \
       drains\n\
      \  (cluster.drain), priority shedding under overload \
       (cluster.shed/degraded\n\
      \  events); byte-deterministic at any --domains.\n"
  in
  Cmd.v (Cmd.info "info" ~doc:"Print architecture and cost-model summary.")
    Term.(const action $ const ())

let () =
  let doc = "Velum hypervisor playground" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "velum" ~version:"1.0.0" ~doc)
          [
            run_cmd; cluster_cmd; net_cmd; trace_cmd; migrate_cmd;
            replicate_cmd; snapshot_cmd; recover_cmd; disasm_cmd;
            consolidate_cmd; info_cmd;
          ]))
