(* Unit tests for velum_machine: physical memory, page-table walking and
   construction, the TLB, the native MMU, and the CPU interpreter in
   both native and deprivileged modes. *)

open Velum_isa
open Velum_machine

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check64 = Alcotest.(check int64)

let cost = Cost_model.default

(* ---------------- Phys_mem ---------------- *)

let test_mem_widths () =
  let mem = Phys_mem.create ~frames:2 in
  Phys_mem.write mem 0x100L Instr.W64 0x1122_3344_5566_7788L;
  check64 "w64" 0x1122_3344_5566_7788L (Phys_mem.read mem 0x100L Instr.W64);
  check64 "w32 low" 0x5566_7788L (Phys_mem.read mem 0x100L Instr.W32);
  check64 "w16" 0x7788L (Phys_mem.read mem 0x100L Instr.W16);
  check64 "w8" 0x88L (Phys_mem.read mem 0x100L Instr.W8);
  Phys_mem.write mem 0x108L Instr.W8 0xFFAAL;
  check64 "w8 truncates" 0xAAL (Phys_mem.read mem 0x108L Instr.W8)

let test_mem_bounds () =
  let mem = Phys_mem.create ~frames:1 in
  checkb "in range" true (Phys_mem.in_range mem ~pa:4088L ~bytes:8);
  checkb "spills" false (Phys_mem.in_range mem ~pa:4089L ~bytes:8);
  Alcotest.check_raises "oob read"
    (Invalid_argument "Phys_mem: access 0x1000+8 out of range") (fun () ->
      ignore (Phys_mem.read mem 0x1000L Instr.W64))

let test_mem_frames () =
  let mem = Phys_mem.create ~frames:4 in
  Phys_mem.frame_fill mem ~ppn:1L 'x';
  Phys_mem.frame_copy mem ~src_ppn:1L ~dst_ppn:2L;
  checkb "frames equal" true (Phys_mem.frame_equal mem 1L 2L);
  checkb "hash equal" true (Phys_mem.frame_hash mem ~ppn:1L = Phys_mem.frame_hash mem ~ppn:2L);
  Phys_mem.write mem (Int64.of_int (2 * 4096)) Instr.W8 1L;
  checkb "diverged" false (Phys_mem.frame_equal mem 1L 2L);
  let b = Phys_mem.frame_read mem ~ppn:1L in
  checki "frame size" 4096 (Bytes.length b);
  Phys_mem.frame_write mem ~ppn:3L b;
  checkb "write back" true (Phys_mem.frame_equal mem 1L 3L)

let test_mem_blit_between () =
  let a = Phys_mem.create ~frames:2 and b = Phys_mem.create ~frames:2 in
  Phys_mem.frame_fill a ~ppn:1L 'z';
  Phys_mem.blit_between ~src:a ~src_ppn:1L ~dst:b ~dst_ppn:0L;
  check64 "copied" (Int64.of_int (Char.code 'z')) (Phys_mem.read b 0L Instr.W8)

let prop_mem_roundtrip =
  QCheck2.Test.make ~name:"phys_mem write/read round-trips"
    QCheck2.Gen.(pair (int_range 0 500) ui64)
    (fun (word_idx, v) ->
      let mem = Phys_mem.create ~frames:1 in
      let pa = Int64.of_int (word_idx * 8) in
      Phys_mem.write mem pa Instr.W64 v;
      Phys_mem.read mem pa Instr.W64 = v)

(* ---------------- Page_table ---------------- *)

let make_pt_world () =
  let mem = Phys_mem.create ~frames:64 in
  let next = ref 1L in
  let alloc () =
    let p = !next in
    next := Int64.add p 1L;
    p
  in
  let acc =
    {
      Page_table.read_pte = (fun pa -> Phys_mem.read mem pa Instr.W64);
      write_pte = (fun pa v -> Phys_mem.write mem pa Instr.W64 v);
    }
  in
  (mem, acc, alloc)

let rwxu = { Pte.r = true; w = true; x = true; u = true }

let test_pt_map_walk () =
  let _, acc, alloc = make_pt_world () in
  let root = alloc () in
  let va = 0x12_3456_7000L in
  Page_table.map acc ~alloc ~root_ppn:root ~va (Pte.leaf ~ppn:33L rwxu);
  match Page_table.walk acc ~root_ppn:root va with
  | Ok { pte; refs; table_ppns; _ } ->
      check64 "target" 33L (Pte.ppn pte);
      checki "refs" 3 refs;
      checki "tables visited" 3 (List.length table_ppns)
  | Error _ -> Alcotest.fail "walk failed"

let test_pt_walk_not_mapped () =
  let _, acc, alloc = make_pt_world () in
  let root = alloc () in
  (match Page_table.walk acc ~root_ppn:root 0x5000L with
  | Error { fault_level = 2; bad_pte = false; _ } -> ()
  | _ -> Alcotest.fail "expected level-2 miss");
  Page_table.map acc ~alloc ~root_ppn:root ~va:0x5000L (Pte.leaf ~ppn:5L rwxu);
  match Page_table.walk acc ~root_ppn:root 0x6000L with
  | Error { fault_level = 0; bad_pte = false; _ } -> ()
  | _ -> Alcotest.fail "expected level-0 miss"

let test_pt_non_canonical () =
  let _, acc, alloc = make_pt_world () in
  let root = alloc () in
  match Page_table.walk acc ~root_ppn:root 0x80_0000_0000L with
  | Error { bad_pte = true; _ } -> ()
  | _ -> Alcotest.fail "expected canonical fault"

let test_pt_unmap_update () =
  let _, acc, alloc = make_pt_world () in
  let root = alloc () in
  let va = 0x7000L in
  Page_table.map acc ~alloc ~root_ppn:root ~va (Pte.leaf ~ppn:9L rwxu);
  checkb "update" true
    (Page_table.update_leaf acc ~root_ppn:root ~va ~f:Pte.set_dirty);
  (match Page_table.walk acc ~root_ppn:root va with
  | Ok { pte; _ } -> checkb "dirty set" true (Pte.dirty pte)
  | Error _ -> Alcotest.fail "walk failed");
  checkb "unmap" true (Page_table.unmap acc ~root_ppn:root ~va);
  checkb "unmap again" false (Page_table.unmap acc ~root_ppn:root ~va);
  match Page_table.walk acc ~root_ppn:root va with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "still mapped"

let test_pt_iter_count () =
  let _, acc, alloc = make_pt_world () in
  let root = alloc () in
  let vas = [ 0x1000L; 0x2000L; 0x40_0000L; 0x12_3456_7000L ] in
  List.iteri
    (fun i va ->
      Page_table.map acc ~alloc ~root_ppn:root ~va (Pte.leaf ~ppn:(Int64.of_int (100 + i)) rwxu))
    vas;
  let seen = ref [] in
  Page_table.iter_leaves acc ~root_ppn:root ~f:(fun ~va ~pte_addr:_ _ -> seen := va :: !seen);
  Alcotest.(check (list int64)) "all leaves" (List.sort compare vas)
    (List.sort compare !seen);
  (* root; one L1 for the first GB shared by 0x1000/0x2000/0x400000;
     a leaf table for 0x1000/0x2000 and another for 0x400000; the huge
     address gets its own L1 and leaf table: 6 table pages in all *)
  checki "table pages" 6 (Page_table.count_table_pages acc ~root_ppn:root)

let prop_pt_map_then_walk =
  QCheck2.Test.make ~count:200 ~name:"map/walk round-trips over random VAs"
    QCheck2.Gen.(list_size (int_range 1 12) (int_range 0 ((1 lsl 27) - 1)))
    (fun pages ->
      let _, acc, alloc = make_pt_world () in
      let root = alloc () in
      let vas = List.sort_uniq compare pages in
      List.iteri
        (fun i page ->
          let va = Int64.shift_left (Int64.of_int page) 12 in
          Page_table.map acc ~alloc ~root_ppn:root ~va
            (Pte.leaf ~ppn:(Int64.of_int (200 + i)) rwxu))
        vas;
      List.for_all
        (fun page ->
          let va = Int64.shift_left (Int64.of_int page) 12 in
          match Page_table.walk acc ~root_ppn:root va with
          | Ok { pte; _ } -> Pte.ppn pte >= 200L
          | Error _ -> false)
        vas)

let test_pt_superpage () =
  let _, acc, alloc = make_pt_world () in
  let root = alloc () in
  (* a 2 MiB leaf at level 1: base frame 512-aligned *)
  Page_table.map ~level:1 acc ~alloc ~root_ppn:root ~va:0x20_0000L
    (Pte.leaf ~ppn:512L rwxu);
  (match Page_table.walk acc ~root_ppn:root 0x21_2345L with
  | Ok { pte; level = 1; refs = 2; _ } ->
      check64 "pa composes superpage offset" 0x21_2345L
        (Page_table.leaf_pa ~pte ~level:1 ~va:0x21_2345L)
      (* base ppn 512 = pa 0x200000, so identity here *)
  | Ok _ -> Alcotest.fail "expected a level-1 leaf with 2 refs"
  | Error _ -> Alcotest.fail "superpage walk failed");
  (* a misaligned superpage base is malformed *)
  Page_table.map ~level:1 acc ~alloc ~root_ppn:root ~va:0x40_0000L
    (Pte.leaf ~ppn:513L rwxu);
  (match Page_table.walk acc ~root_ppn:root 0x40_0000L with
  | Error { bad_pte = true; _ } -> ()
  | _ -> Alcotest.fail "misaligned superpage should be malformed");
  (* iter_leaves reports the superpage once *)
  let supers = ref 0 in
  Page_table.iter_leaves acc ~root_ppn:root ~f:(fun ~va:_ ~pte_addr:_ _ -> incr supers);
  checki "leaves seen" 2 !supers

let test_tlb_superpage_entry () =
  let tlb = Tlb.create ~size:4 in
  Tlb.insert tlb
    { Tlb.vpn = 512L; ppn = 1024L; perms = rwxu; dirty_ok = true; mmio = false;
      superpage = true };
  (* any vpn within the same 2 MiB region hits *)
  (match Tlb.lookup tlb ~vpn:700L with
  | Some e -> checkb "superpage hit" true e.Tlb.superpage
  | None -> Alcotest.fail "expected superpage hit");
  checkb "outside misses" true (Tlb.lookup tlb ~vpn:1200L = None);
  (* 4K entries take precedence *)
  Tlb.insert tlb
    { Tlb.vpn = 700L; ppn = 9L; perms = rwxu; dirty_ok = true; mmio = false;
      superpage = false };
  (match Tlb.lookup tlb ~vpn:700L with
  | Some e -> check64 "4k entry wins" 9L e.Tlb.ppn
  | None -> Alcotest.fail "miss");
  Tlb.flush_vpn tlb 700L;
  checkb "flush_vpn drops both granularities" true (Tlb.lookup tlb ~vpn:700L = None)

(* ---------------- Tlb ---------------- *)

let entry vpn ppn =
  { Tlb.vpn; ppn; perms = rwxu; dirty_ok = true; mmio = false; superpage = false }

let test_tlb_insert_lookup () =
  let tlb = Tlb.create ~size:2 in
  Tlb.insert tlb (entry 1L 10L);
  Tlb.insert tlb (entry 2L 20L);
  (match Tlb.lookup tlb ~vpn:1L with
  | Some e -> check64 "hit" 10L e.Tlb.ppn
  | None -> Alcotest.fail "miss");
  (* round-robin eviction: inserting a third evicts the first slot *)
  Tlb.insert tlb (entry 3L 30L);
  checkb "evicted" true (Tlb.lookup tlb ~vpn:1L = None);
  checkb "kept" true (Tlb.lookup tlb ~vpn:2L <> None)

let test_tlb_replace_same_vpn () =
  let tlb = Tlb.create ~size:4 in
  Tlb.insert tlb (entry 5L 50L);
  Tlb.insert tlb (entry 5L 51L);
  match Tlb.lookup tlb ~vpn:5L with
  | Some e -> check64 "updated" 51L e.Tlb.ppn
  | None -> Alcotest.fail "miss"

let test_tlb_flush () =
  let tlb = Tlb.create ~size:4 in
  Tlb.insert tlb (entry 1L 1L);
  Tlb.insert tlb (entry 2L 2L);
  Tlb.flush_vpn tlb 1L;
  checkb "vpn flushed" true (Tlb.lookup tlb ~vpn:1L = None);
  checkb "other kept" true (Tlb.lookup tlb ~vpn:2L <> None);
  Tlb.flush tlb;
  checkb "all flushed" true (Tlb.lookup tlb ~vpn:2L = None)

let test_tlb_stats () =
  let tlb = Tlb.create ~size:4 in
  Tlb.note_hit tlb;
  Tlb.note_hit tlb;
  Tlb.note_miss tlb;
  checki "hits" 2 (Tlb.hits tlb);
  checki "misses" 1 (Tlb.misses tlb);
  Tlb.reset_stats tlb;
  checki "reset" 0 (Tlb.hits tlb)

(* ---------------- CPU harness ---------------- *)

(* A bare one-frame machine with identity translation: assemble a
   program at 0, run it, inspect state. *)
let make_cpu ?(frames = 16) ?(env = `Native) () =
  let mem = Phys_mem.create ~frames in
  let state = Cpu.create_state () in
  let ext = ref false in
  let clock = ref 0L in
  let ctx =
    {
      Cpu.translate =
        (fun ~access:_ ~user:_ va ->
          if Bus.is_mmio va then Ok { Cpu.pa = va; mmio = true; xlate_cycles = 0 }
          else if Phys_mem.in_range mem ~pa:va ~bytes:1 then
            Ok { Cpu.pa = va; mmio = false; xlate_cycles = 0 }
          else Error `Access);
      read_ram = (fun pa w -> Phys_mem.read mem pa w);
      write_ram = (fun pa w v -> Phys_mem.write mem pa w v);
      flush_tlb = (fun () -> ());
      now = (fun () -> !clock);
      ext_irq = (fun () -> !ext);
      cost;
      dtlb = None;
      env =
        (match env with
        | `Native ->
            Cpu.Native
              {
                mmio_read = (fun _ _ -> Some 0xAAL);
                mmio_write = (fun _ _ _ -> true);
                port_in = (fun p -> if p = 0x10 then Some 0x7FL else None);
                port_out = (fun p _ -> p = 0x10);
              }
        | `Deprivileged -> Cpu.Deprivileged);
    }
  in
  (mem, state, ctx, ext, clock)

let load_program mem prog =
  let img = Asm.assemble prog in
  Phys_mem.load_bytes mem ~pa:0L img.Asm.code

let run_steps state ctx n =
  (* budget generous; n is just a safety bound on loop iterations *)
  ignore n;
  Cpu.run state ctx ~budget:100_000

open Asm

let test_cpu_alu () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem
    [
      li r1 7L; li r2 3L;
      add r3 r1 r2; sub r4 r1 r2; mul r5 r1 r2;
      div r6 r1 r2; rem r7 r1 r2;
      and_ r8 r1 r2; or_ r9 r1 r2; xor r10 r1 r2;
      slt r11 r2 r1; halt;
    ];
  ignore (run_steps state ctx 20);
  check64 "add" 10L (Cpu.get_reg state 3);
  check64 "sub" 4L (Cpu.get_reg state 4);
  check64 "mul" 21L (Cpu.get_reg state 5);
  check64 "div" 2L (Cpu.get_reg state 6);
  check64 "rem" 1L (Cpu.get_reg state 7);
  check64 "and" 3L (Cpu.get_reg state 8);
  check64 "or" 7L (Cpu.get_reg state 9);
  check64 "xor" 4L (Cpu.get_reg state 10);
  check64 "slt" 1L (Cpu.get_reg state 11)

let test_cpu_div_edge_cases () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem
    [
      li r1 5L; li r2 0L; div r3 r1 r2; rem r4 r1 r2;
      li r5 Int64.min_int; li r6 (-1L); div r7 r5 r6; rem r8 r5 r6; halt;
    ];
  ignore (run_steps state ctx 20);
  check64 "div by zero" (-1L) (Cpu.get_reg state 3);
  check64 "rem by zero" 5L (Cpu.get_reg state 4);
  check64 "min/-1 div" Int64.min_int (Cpu.get_reg state 7);
  check64 "min/-1 rem" 0L (Cpu.get_reg state 8)

let test_cpu_shifts () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem
    [
      li r1 (-8L);
      slli r2 r1 1L;
      srli r3 r1 60L;
      Insn (Instr.Alui (Instr.Sra, 4, 1, 1L));
      li r5 1L;
      li r6 65L;
      sll r7 r5 r6 (* shift amount masked to 1 *);
      Insn (Instr.Alui (Instr.Sltu, 8, 1, 1L)) (* unsigned: -8 > 1 → 0 *);
      halt;
    ];
  ignore (run_steps state ctx 20);
  check64 "sll" (-16L) (Cpu.get_reg state 2);
  check64 "srl fills zero" 0xFL (Cpu.get_reg state 3);
  check64 "sra keeps sign" (-4L) (Cpu.get_reg state 4);
  check64 "shift masked" 2L (Cpu.get_reg state 7);
  check64 "sltu" 0L (Cpu.get_reg state 8)

let test_cpu_branches () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem
    [
      li r1 1L; li r2 2L;
      blt r1 r2 "taken";
      li r3 99L (* skipped *);
      label "taken";
      bge r1 r2 "nottaken";
      li r4 42L;
      label "nottaken";
      halt;
    ];
  ignore (run_steps state ctx 20);
  check64 "skipped" 0L (Cpu.get_reg state 3);
  check64 "fellthrough" 42L (Cpu.get_reg state 4)

let test_cpu_jal_link () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem [ call "f"; halt; label "f"; li r3 5L; ret ];
  ignore (run_steps state ctx 20);
  check64 "function ran" 5L (Cpu.get_reg state 3);
  checkb "halted" true state.Cpu.halted

let test_cpu_memory_widths () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem
    [
      li r1 0x1234_5678L;
      li r2 0x8000L;
      sd r1 r2 0L;
      ld r3 r2 0L;
      lb r4 r2 0L;
      Insn (Instr.Load { rd = 5; base = 2; off = 0L; width = Instr.W16 });
      Insn (Instr.Load { rd = 6; base = 2; off = 0L; width = Instr.W32 });
      halt;
    ];
  ignore (run_steps state ctx 20);
  check64 "w64" 0x1234_5678L (Cpu.get_reg state 3);
  check64 "w8 zero-extends" 0x78L (Cpu.get_reg state 4);
  check64 "w16" 0x5678L (Cpu.get_reg state 5);
  check64 "w32" 0x1234_5678L (Cpu.get_reg state 6)

let test_cpu_misaligned_trap () =
  let mem, state, ctx, _, _ = make_cpu () in
  (* stvec = 0 → trap loops to pc 0; detect via scause *)
  load_program mem [ la r2 "handler"; csrw Arch.Stvec r2; li r1 0x8001L; ld r3 r1 0L;
                     label "handler"; halt ];
  ignore (run_steps state ctx 20);
  check64 "cause" (Arch.cause_code Arch.Misaligned_load) (Cpu.get_csr state Arch.Scause);
  check64 "tval" 0x8001L (Cpu.get_csr state Arch.Stval)

let test_cpu_r0_hardwired () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem [ Insn (Instr.Alui (Instr.Add, 0, 0, 77L)); halt ];
  ignore (run_steps state ctx 10);
  check64 "r0 still zero" 0L (Cpu.get_reg state 0)

let test_cpu_trap_and_sret () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem
    [
      la r2 "handler";
      csrw Arch.Stvec r2;
      (* drop to user mode at "user" *)
      la r2 "user";
      csrw Arch.Sepc r2;
      li r2 0L;
      csrw Arch.Sie r2 (* SPP=0 → user *);
      sret;
      label "handler";
      (* expect a syscall from user mode *)
      csrr r3 Arch.Scause;
      csrr r4 Arch.Sepc;
      halt;
      label "user";
      nop;
      ecall;
    ];
  ignore (run_steps state ctx 50);
  check64 "cause syscall" (Arch.cause_code Arch.Syscall) (Cpu.get_reg state 3);
  (* sepc points at the ecall itself *)
  let img = Asm.assemble
      [ la r2 "handler"; csrw Arch.Stvec r2; la r2 "user"; csrw Arch.Sepc r2;
        li r2 0L; csrw Arch.Sie r2; sret; label "handler"; csrr r3 Arch.Scause;
        csrr r4 Arch.Sepc; halt; label "user"; nop; ecall ] in
  check64 "sepc" (Int64.add (Asm.symbol img "user") 8L) (Cpu.get_reg state 4);
  checkb "back in supervisor" true (state.Cpu.mode = Arch.Supervisor)

let test_cpu_illegal_in_user () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem
    [
      la r2 "handler"; csrw Arch.Stvec r2;
      la r2 "user"; csrw Arch.Sepc r2;
      li r2 0L; csrw Arch.Sie r2; sret;
      label "handler"; csrr r3 Arch.Scause; halt;
      label "user"; halt (* privileged in user mode *);
    ];
  ignore (run_steps state ctx 50);
  check64 "illegal" (Arch.cause_code Arch.Illegal_instruction) (Cpu.get_reg state 3)

let test_cpu_csr_readonly () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem
    [ la r2 "handler"; csrw Arch.Stvec r2; csrw Arch.Time r1;
      label "handler"; csrr r3 Arch.Scause; halt ];
  ignore (run_steps state ctx 20);
  check64 "illegal write" (Arch.cause_code Arch.Illegal_instruction) (Cpu.get_reg state 3)

let test_cpu_timer_interrupt () =
  let mem, state, ctx, _, clock = make_cpu () in
  clock := 0L;
  load_program mem
    [
      la r2 "handler"; csrw Arch.Stvec r2;
      (* arm timer at t=1 and enable GIE+timer *)
      li r2 1L; csrw Arch.Stimecmp r2;
      li r2 0L; Insn (Instr.Alui (Instr.Add, 2, 0, 1L));
      (* sie = GIE | timer-enable *)
      li r2 1L; slli r3 r2 63L; ori r3 r3 1L; csrw Arch.Sie r3;
      label "spin"; jmp "spin";
      label "handler"; csrr r4 Arch.Scause; halt;
    ];
  clock := 100L;
  ignore (run_steps state ctx 50);
  check64 "timer cause" (Arch.cause_code Arch.Timer_interrupt) (Cpu.get_reg state 4)

let test_cpu_external_priority () =
  let mem, state, ctx, ext, clock = make_cpu () in
  load_program mem
    [
      la r2 "handler"; csrw Arch.Stvec r2;
      li r2 1L; csrw Arch.Stimecmp r2;
      li r2 1L; slli r3 r2 63L; ori r3 r3 3L (* GIE | timer | ext *); csrw Arch.Sie r3;
      label "spin"; jmp "spin";
      label "handler"; csrr r4 Arch.Scause; halt;
    ];
  ext := true;
  clock := 100L;
  ignore (run_steps state ctx 50);
  check64 "external wins" (Arch.cause_code Arch.External_interrupt) (Cpu.get_reg state 4)

let test_cpu_gie_masks () =
  let mem, state, ctx, ext, _ = make_cpu () in
  load_program mem [ li r1 1L; li r1 2L; li r1 3L; halt ];
  ext := true;
  (* GIE off: no delivery despite pending external *)
  ignore (run_steps state ctx 20);
  checkb "halted normally" true state.Cpu.halted;
  check64 "no trap" 0L (Cpu.get_csr state Arch.Scause)

let test_cpu_wfi_waits () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem [ wfi; halt ];
  let _, stop = Cpu.run state ctx ~budget:10_000 in
  checkb "waiting" true (stop = Cpu.Waiting);
  checkb "flag" true state.Cpu.waiting

let test_cpu_mmio_native () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem
    [ li r2 0x4000_0000L; ld r3 r2 0L; sd r3 r2 8L; halt ];
  ignore (run_steps state ctx 20);
  check64 "mmio read" 0xAAL (Cpu.get_reg state 3)

let test_cpu_port_native () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem [ inp r3 0x10; outp 0x10 r3; halt ];
  ignore (run_steps state ctx 20);
  check64 "port in" 0x7FL (Cpu.get_reg state 3);
  checkb "halted" true state.Cpu.halted

let test_cpu_lui_li64 () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem
    [ Insn (Instr.Lui (2, 0xDEADL)); li r3 0xDEAD_BEEF_1234_5678L; halt ];
  ignore (run_steps state ctx 10);
  check64 "lui shifts 32" (Int64.shift_left 0xDEADL 32) (Cpu.get_reg state 2);
  check64 "li 64-bit expansion" 0xDEAD_BEEF_1234_5678L (Cpu.get_reg state 3)

let test_cpu_hcall_native_illegal () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem
    [ la r2 "handler"; csrw Arch.Stvec r2; hcall; label "handler";
      csrr r3 Arch.Scause; halt ];
  ignore (run_steps state ctx 20);
  check64 "hcall illegal on bare metal" (Arch.cause_code Arch.Illegal_instruction)
    (Cpu.get_reg state 3)

let test_cpu_instret () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem [ nop; nop; nop; halt ];
  ignore (run_steps state ctx 10);
  (* the halt itself stops the hart before retiring *)
  check64 "instret" 3L state.Cpu.instret

let test_cpu_waiting_resumes_on_irq () =
  let mem, state, ctx, _, clock = make_cpu () in
  load_program mem
    [
      la r2 "handler"; csrw Arch.Stvec r2;
      li r2 500L; csrw Arch.Stimecmp r2;
      li r2 1L; slli r3 r2 63L; ori r3 r3 1L; csrw Arch.Sie r3;
      wfi;
      label "after"; jmp "after";
      label "handler"; halt;
    ];
  (* first run parks in wfi *)
  let _, stop = Cpu.run state ctx ~budget:100_000 in
  checkb "waiting" true (stop = Cpu.Waiting);
  (* time passes; the pending timer resumes and vectors to the handler *)
  clock := 1_000L;
  let _, stop = Cpu.run state ctx ~budget:100_000 in
  checkb "halted via handler" true (stop = Cpu.Halted)

let test_cpu_vmid_reads_zero_native () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem [ csrr r3 Arch.Vmid; halt ];
  ignore (run_steps state ctx 10);
  check64 "bare metal vmid" 0L (Cpu.get_reg state 3)

(* ---------------- Deprivileged exits ---------------- *)

let run_until_exit state ctx =
  match Cpu.run state ctx ~budget:100_000 with
  | _, Cpu.Exit e -> e
  | _, _ -> Alcotest.fail "expected a VM exit"

let test_exit_privileged () =
  let mem, state, ctx, _, _ = make_cpu ~env:`Deprivileged () in
  load_program mem [ csrr r1 Arch.Time ];
  (match run_until_exit state ctx with
  | Cpu.X_privileged (Instr.Csrr (1, Arch.Time)) -> ()
  | e -> Alcotest.fail (Format.asprintf "unexpected exit %a" Cpu.pp_vmexit e));
  check64 "pc not advanced" 0L state.Cpu.pc

let test_exit_ecall () =
  let mem, state, ctx, _, _ = make_cpu ~env:`Deprivileged () in
  load_program mem [ ecall ];
  match run_until_exit state ctx with
  | Cpu.X_trap { cause = Arch.Syscall; _ } -> ()
  | e -> Alcotest.fail (Format.asprintf "unexpected exit %a" Cpu.pp_vmexit e)

let test_exit_hypercall () =
  let mem, state, ctx, _, _ = make_cpu ~env:`Deprivileged () in
  load_program mem [ hcall ];
  checkb "hypercall exit" true (run_until_exit state ctx = Cpu.X_hypercall)

let test_exit_mmio () =
  let mem, state, ctx, _, _ = make_cpu ~env:`Deprivileged () in
  load_program mem [ li r2 0x4000_0000L; ld r7 r2 16L ];
  (match run_until_exit state ctx with
  | Cpu.X_mmio_load { rd = 7; pa = 0x4000_0010L; width = Instr.W64 } -> ()
  | e -> Alcotest.fail (Format.asprintf "unexpected exit %a" Cpu.pp_vmexit e));
  (* after the VMM emulates, it advances the pc and resumes *)
  Cpu.set_reg state 7 0x55L;
  Cpu.advance_pc state;
  let mem2 = mem in
  ignore mem2;
  load_program mem [ li r2 0x4000_0000L; ld r7 r2 16L; li r3 9L; sd r3 r2 24L ];
  match run_until_exit state ctx with
  | Cpu.X_mmio_store { pa = 0x4000_0018L; value = 9L; width = Instr.W64 } -> ()
  | e -> Alcotest.fail (Format.asprintf "unexpected exit %a" Cpu.pp_vmexit e)

let test_exit_page_fault () =
  let mem = Phys_mem.create ~frames:4 in
  let state = Cpu.create_state () in
  let ctx =
    {
      Cpu.translate = (fun ~access:_ ~user:_ _ -> Error `Page);
      read_ram = (fun pa w -> Phys_mem.read mem pa w);
      write_ram = (fun pa w v -> Phys_mem.write mem pa w v);
      flush_tlb = (fun () -> ());
      now = (fun () -> 0L);
      ext_irq = (fun () -> false);
      cost;
      dtlb = None;
      env = Cpu.Deprivileged;
    }
  in
  match Cpu.run state ctx ~budget:1000 with
  | _, Cpu.Exit (Cpu.X_page_fault { access = Arch.Fetch; va = 0L }) -> ()
  | _ -> Alcotest.fail "expected fetch page-fault exit"

let test_exit_halted_budget () =
  let mem, state, ctx, _, _ = make_cpu ~env:`Deprivileged () in
  load_program mem [ label "spin"; jmp "spin" ];
  let cycles, stop = Cpu.run state ctx ~budget:500 in
  checkb "budget stop" true (stop = Cpu.Budget);
  checkb "cycles counted" true (cycles >= 500)

let test_cpu_jalr_misaligned_target () =
  let mem, state, ctx, _, _ = make_cpu () in
  load_program mem
    [ la r2 "handler"; csrw Arch.Stvec r2; li r3 0x1001L; jalr r0 r3 0L;
      label "handler"; csrr r4 Arch.Scause; halt ];
  ignore (run_steps state ctx 20);
  check64 "misaligned fetch" (Arch.cause_code Arch.Misaligned_fetch) (Cpu.get_reg state 4)

(* ---------------- Native MMU ---------------- *)

let make_mmu_world () =
  let mem = Phys_mem.create ~frames:64 in
  let tlb = Tlb.create ~size:8 in
  let satp = ref 0L in
  let mmu = Mmu.create ~mem ~tlb ~cost ~get_satp:(fun () -> !satp) in
  let next = ref 1L in
  let alloc () =
    let p = !next in
    next := Int64.add p 1L;
    p
  in
  let acc =
    {
      Page_table.read_pte = (fun pa -> Phys_mem.read mem pa Instr.W64);
      write_pte = (fun pa v -> Phys_mem.write mem pa Instr.W64 v);
    }
  in
  (mem, tlb, satp, mmu, acc, alloc)

let test_mmu_bare () =
  let _, _, _, mmu, _, _ = make_mmu_world () in
  (match Mmu.translate mmu ~access:Arch.Load ~user:false 0x123L with
  | Ok { Cpu.pa = 0x123L; mmio = false; _ } -> ()
  | _ -> Alcotest.fail "identity expected");
  (match Mmu.translate mmu ~access:Arch.Load ~user:false 0x4000_0008L with
  | Ok { Cpu.mmio = true; _ } -> ()
  | _ -> Alcotest.fail "mmio expected");
  match Mmu.translate mmu ~access:Arch.Load ~user:false 0x9000_0000L with
  | Error `Access -> ()
  | _ -> Alcotest.fail "access fault expected"

let test_mmu_walk_and_tlb () =
  let _, tlb, satp, mmu, acc, alloc = make_mmu_world () in
  let root = alloc () in
  Page_table.map acc ~alloc ~root_ppn:root ~va:0x4000L
    (Pte.leaf ~ppn:10L { Pte.r = true; w = true; x = false; u = false });
  satp := Arch.satp_make ~root_ppn:root;
  (* first access walks *)
  (match Mmu.translate mmu ~access:Arch.Load ~user:false 0x4008L with
  | Ok { Cpu.pa; xlate_cycles; _ } ->
      check64 "translated" 0xA008L pa;
      checkb "walk charged" true (xlate_cycles > 0)
  | _ -> Alcotest.fail "walk failed");
  checki "one walk" 1 (Mmu.walk_count mmu);
  (* second access hits the TLB *)
  (match Mmu.translate mmu ~access:Arch.Load ~user:false 0x4010L with
  | Ok { Cpu.xlate_cycles = 0; _ } -> ()
  | _ -> Alcotest.fail "expected TLB hit");
  checki "still one walk" 1 (Mmu.walk_count mmu);
  checki "tlb hit" 1 (Tlb.hits tlb)

let test_mmu_ad_bits () =
  let _, _, satp, mmu, acc, alloc = make_mmu_world () in
  let root = alloc () in
  Page_table.map acc ~alloc ~root_ppn:root ~va:0x4000L
    (Pte.leaf ~ppn:10L { Pte.r = true; w = true; x = false; u = false });
  satp := Arch.satp_make ~root_ppn:root;
  ignore (Mmu.translate mmu ~access:Arch.Load ~user:false 0x4000L);
  (match Page_table.walk acc ~root_ppn:root 0x4000L with
  | Ok { pte; _ } ->
      checkb "A set" true (Pte.accessed pte);
      checkb "D clear" false (Pte.dirty pte)
  | Error _ -> Alcotest.fail "walk");
  (* store through a load-installed entry re-walks to set D *)
  ignore (Mmu.translate mmu ~access:Arch.Store ~user:false 0x4000L);
  (match Page_table.walk acc ~root_ppn:root 0x4000L with
  | Ok { pte; _ } -> checkb "D set" true (Pte.dirty pte)
  | Error _ -> Alcotest.fail "walk");
  checki "two walks" 2 (Mmu.walk_count mmu)

let test_mmu_permissions () =
  let _, _, satp, mmu, acc, alloc = make_mmu_world () in
  let root = alloc () in
  Page_table.map acc ~alloc ~root_ppn:root ~va:0x4000L
    (Pte.leaf ~ppn:10L { Pte.r = true; w = false; x = false; u = true });
  satp := Arch.satp_make ~root_ppn:root;
  (match Mmu.translate mmu ~access:Arch.Store ~user:true 0x4000L with
  | Error `Page -> ()
  | _ -> Alcotest.fail "store should fault");
  (match Mmu.translate mmu ~access:Arch.Fetch ~user:true 0x4000L with
  | Error `Page -> ()
  | _ -> Alcotest.fail "fetch should fault");
  match Mmu.translate mmu ~access:Arch.Load ~user:true 0x4000L with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "load should succeed"

let test_mmu_flush () =
  let _, tlb, satp, mmu, acc, alloc = make_mmu_world () in
  let root = alloc () in
  Page_table.map acc ~alloc ~root_ppn:root ~va:0x4000L (Pte.leaf ~ppn:10L rwxu);
  satp := Arch.satp_make ~root_ppn:root;
  ignore (Mmu.translate mmu ~access:Arch.Load ~user:false 0x4000L);
  Mmu.flush mmu;
  checkb "tlb empty" true (Tlb.lookup tlb ~vpn:4L = None);
  ignore (Mmu.translate mmu ~access:Arch.Load ~user:false 0x4000L);
  checki "re-walked" 2 (Mmu.walk_count mmu)

let test_mmu_write_protected_store_faults () =
  let _, _, satp, mmu, acc, alloc = make_mmu_world () in
  let root = alloc () in
  Page_table.map acc ~alloc ~root_ppn:root ~va:0x4000L
    (Pte.leaf ~ppn:10L { Pte.r = true; w = false; x = false; u = false });
  satp := Arch.satp_make ~root_ppn:root;
  (match Mmu.translate mmu ~access:Arch.Load ~user:false 0x4000L with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "read-only load should pass");
  match Mmu.translate mmu ~access:Arch.Store ~user:false 0x4000L with
  | Error `Page -> ()
  | _ -> Alcotest.fail "store to read-only page must fault"

(* ---------------- Cost model ---------------- *)

let test_cost_model_shape () =
  checkb "exit >> trap" true (cost.Cost_model.vmexit > 5 * cost.Cost_model.trap_enter);
  checkb "hypercall << exit" true (cost.Cost_model.hypercall * 3 < cost.Cost_model.vmexit);
  checki "1d refs" 3 Cost_model.walk_refs_1d;
  checki "2d refs" 15 Cost_model.walk_refs_2d;
  checkb "2d >> 1d" true
    (Cost_model.walk_cycles_2d cost > 4 * Cost_model.walk_cycles_1d cost)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "machine"
    [
      ( "phys_mem",
        [
          Alcotest.test_case "widths" `Quick test_mem_widths;
          Alcotest.test_case "bounds" `Quick test_mem_bounds;
          Alcotest.test_case "frames" `Quick test_mem_frames;
          Alcotest.test_case "blit between" `Quick test_mem_blit_between;
        ]
        @ qsuite [ prop_mem_roundtrip ] );
      ( "page_table",
        [
          Alcotest.test_case "map/walk" `Quick test_pt_map_walk;
          Alcotest.test_case "not mapped" `Quick test_pt_walk_not_mapped;
          Alcotest.test_case "non-canonical" `Quick test_pt_non_canonical;
          Alcotest.test_case "unmap/update" `Quick test_pt_unmap_update;
          Alcotest.test_case "iter/count" `Quick test_pt_iter_count;
          Alcotest.test_case "superpages" `Quick test_pt_superpage;
        ]
        @ qsuite [ prop_pt_map_then_walk ] );
      ( "tlb",
        [
          Alcotest.test_case "insert/lookup/evict" `Quick test_tlb_insert_lookup;
          Alcotest.test_case "same vpn replace" `Quick test_tlb_replace_same_vpn;
          Alcotest.test_case "flush" `Quick test_tlb_flush;
          Alcotest.test_case "stats" `Quick test_tlb_stats;
          Alcotest.test_case "superpage entries" `Quick test_tlb_superpage_entry;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "alu" `Quick test_cpu_alu;
          Alcotest.test_case "div edges" `Quick test_cpu_div_edge_cases;
          Alcotest.test_case "shifts" `Quick test_cpu_shifts;
          Alcotest.test_case "branches" `Quick test_cpu_branches;
          Alcotest.test_case "jal link" `Quick test_cpu_jal_link;
          Alcotest.test_case "memory widths" `Quick test_cpu_memory_widths;
          Alcotest.test_case "misaligned trap" `Quick test_cpu_misaligned_trap;
          Alcotest.test_case "r0 hardwired" `Quick test_cpu_r0_hardwired;
          Alcotest.test_case "trap and sret" `Quick test_cpu_trap_and_sret;
          Alcotest.test_case "illegal in user" `Quick test_cpu_illegal_in_user;
          Alcotest.test_case "read-only csr" `Quick test_cpu_csr_readonly;
          Alcotest.test_case "timer interrupt" `Quick test_cpu_timer_interrupt;
          Alcotest.test_case "external priority" `Quick test_cpu_external_priority;
          Alcotest.test_case "gie masks" `Quick test_cpu_gie_masks;
          Alcotest.test_case "wfi waits" `Quick test_cpu_wfi_waits;
          Alcotest.test_case "mmio native" `Quick test_cpu_mmio_native;
          Alcotest.test_case "port native" `Quick test_cpu_port_native;
          Alcotest.test_case "lui and 64-bit li" `Quick test_cpu_lui_li64;
          Alcotest.test_case "hcall illegal natively" `Quick test_cpu_hcall_native_illegal;
          Alcotest.test_case "instret" `Quick test_cpu_instret;
          Alcotest.test_case "waiting resumes" `Quick test_cpu_waiting_resumes_on_irq;
          Alcotest.test_case "vmid native" `Quick test_cpu_vmid_reads_zero_native;
          Alcotest.test_case "jalr misaligned" `Quick test_cpu_jalr_misaligned_target;
        ] );
      ( "exits",
        [
          Alcotest.test_case "privileged" `Quick test_exit_privileged;
          Alcotest.test_case "ecall" `Quick test_exit_ecall;
          Alcotest.test_case "hypercall" `Quick test_exit_hypercall;
          Alcotest.test_case "mmio" `Quick test_exit_mmio;
          Alcotest.test_case "page fault" `Quick test_exit_page_fault;
          Alcotest.test_case "budget" `Quick test_exit_halted_budget;
        ] );
      ( "mmu",
        [
          Alcotest.test_case "bare mode" `Quick test_mmu_bare;
          Alcotest.test_case "walk and tlb" `Quick test_mmu_walk_and_tlb;
          Alcotest.test_case "a/d bits" `Quick test_mmu_ad_bits;
          Alcotest.test_case "permissions" `Quick test_mmu_permissions;
          Alcotest.test_case "flush" `Quick test_mmu_flush;
          Alcotest.test_case "write-protected store" `Quick
            test_mmu_write_protected_store_faults;
        ] );
      ( "cost_model",
        [ Alcotest.test_case "relative magnitudes" `Quick test_cost_model_shape ] );
    ]
