(* Unit tests for velum_devices: bus dispatch, UART, block device,
   virtio ring/block, network link and NIC, and the native platform. *)

open Velum_isa
open Velum_machine
open Velum_devices

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check64 = Alcotest.(check int64)
let checks = Alcotest.(check string)

(* ---------------- Bus ---------------- *)

let dummy_device name base size =
  let last = ref 0L in
  {
    Bus.name;
    base;
    size;
    read = (fun off _ -> Int64.add off 100L);
    write = (fun _ _ v -> last := v);
    tick = (fun _ -> ());
    pending_irq = (fun () -> false);
  }

let test_bus_dispatch () =
  let bus = Bus.create () in
  Bus.attach bus (dummy_device "a" 0x4000_0000L 0x100);
  Bus.attach bus (dummy_device "b" 0x4000_1000L 0x100);
  (match Bus.read bus 0x4000_0010L Instr.W64 with
  | Some v -> check64 "offset-relative" 116L v
  | None -> Alcotest.fail "no device");
  checkb "write claimed" true (Bus.write bus 0x4000_1000L Instr.W64 7L);
  checkb "hole" true (Bus.read bus 0x4000_2000L Instr.W64 = None)

let test_bus_overlap_rejected () =
  let bus = Bus.create () in
  Bus.attach bus (dummy_device "a" 0x4000_0000L 0x200);
  Alcotest.check_raises "overlap" (Invalid_argument "Bus.attach: b overlaps a")
    (fun () -> Bus.attach bus (dummy_device "b" 0x4000_0100L 0x100))

let test_bus_window () =
  checkb "below" false (Bus.is_mmio 0x3FFF_FFFFL);
  checkb "base" true (Bus.is_mmio 0x4000_0000L);
  checkb "top" false (Bus.is_mmio 0x5000_0000L);
  let bus = Bus.create () in
  Alcotest.check_raises "outside window"
    (Invalid_argument "Bus.attach: x outside the MMIO window") (fun () ->
      Bus.attach bus (dummy_device "x" 0x1000L 0x100))

(* ---------------- Uart ---------------- *)

let test_uart_tx () =
  let u = Uart.create () in
  Uart.write_reg u Uart.reg_data 0x68L (* h *);
  Uart.write_reg u Uart.reg_data 0x69L (* i *);
  checks "output" "hi" (Uart.output u);
  checki "length" 2 (Uart.output_length u);
  Uart.clear_output u;
  checks "cleared" "" (Uart.output u)

let test_uart_rx () =
  let u = Uart.create () in
  checkb "no rx" false (Uart.rx_pending u);
  check64 "empty read" 0L (Uart.read_reg u Uart.reg_data);
  Uart.feed_input u "ab";
  checkb "rx pending" true (Uart.rx_pending u);
  check64 "status rx bit" 3L (Uart.read_reg u Uart.reg_status);
  check64 "pop a" (Int64.of_int (Char.code 'a')) (Uart.read_reg u Uart.reg_data);
  check64 "pop b" (Int64.of_int (Char.code 'b')) (Uart.read_reg u Uart.reg_data);
  check64 "status tx only" 2L (Uart.read_reg u Uart.reg_status)

let test_uart_device_irq () =
  let u = Uart.create () in
  let d = Uart.device u in
  checkb "idle" false (d.Bus.pending_irq ());
  Uart.feed_input u "x";
  checkb "irq on rx" true (d.Bus.pending_irq ())

(* ---------------- Blockdev ---------------- *)

let make_blk () =
  let backing = Bytes.make 65536 '\000' in
  let dma =
    {
      Blockdev.dma_read =
        (fun pa len ->
          let off = Int64.to_int pa in
          if off + len <= Bytes.length backing then Some (Bytes.sub backing off len)
          else None);
      dma_write =
        (fun pa b ->
          let off = Int64.to_int pa in
          if off + Bytes.length b <= Bytes.length backing then begin
            Bytes.blit b 0 backing off (Bytes.length b);
            true
          end
          else false);
    }
  in
  (Blockdev.create ~sectors:64 dma, backing)

let test_blk_read () =
  let blk, backing = make_blk () in
  Blockdev.load blk ~sector:2 "hello-disk";
  let d = Blockdev.device blk in
  d.Bus.write Blockdev.reg_sector Instr.W64 2L;
  d.Bus.write Blockdev.reg_count Instr.W64 1L;
  d.Bus.write Blockdev.reg_dma Instr.W64 0x100L;
  d.Bus.write Blockdev.reg_cmd Instr.W64 Blockdev.cmd_read;
  check64 "busy" Blockdev.status_busy (d.Bus.read Blockdev.reg_status Instr.W64);
  checkb "has deadline" true (Blockdev.next_completion blk <> None);
  d.Bus.tick 10_000_000L;
  checkb "irq raised" true (d.Bus.pending_irq ());
  check64 "done" Blockdev.status_done (d.Bus.read Blockdev.reg_status Instr.W64);
  checkb "irq acked" false (d.Bus.pending_irq ());
  check64 "idle after ack" Blockdev.status_idle (d.Bus.read Blockdev.reg_status Instr.W64);
  checks "dma payload" "hello-disk" (Bytes.sub_string backing 0x100 10);
  checki "ops" 1 (Blockdev.completed_ops blk)

let test_blk_write () =
  let blk, backing = make_blk () in
  Bytes.blit_string "write-me!" 0 backing 0x200 9;
  let d = Blockdev.device blk in
  d.Bus.write Blockdev.reg_sector Instr.W64 5L;
  d.Bus.write Blockdev.reg_count Instr.W64 1L;
  d.Bus.write Blockdev.reg_dma Instr.W64 0x200L;
  d.Bus.write Blockdev.reg_cmd Instr.W64 Blockdev.cmd_write;
  d.Bus.tick 10_000_000L;
  check64 "done" Blockdev.status_done (d.Bus.read Blockdev.reg_status Instr.W64);
  checks "stored" "write-me!" (String.sub (Blockdev.read_back blk ~sector:5 ~count:1) 0 9)

let test_blk_bad_range () =
  let blk, _ = make_blk () in
  let d = Blockdev.device blk in
  d.Bus.write Blockdev.reg_sector Instr.W64 1000L (* beyond 64 sectors *);
  d.Bus.write Blockdev.reg_count Instr.W64 1L;
  d.Bus.write Blockdev.reg_cmd Instr.W64 Blockdev.cmd_read;
  check64 "error" Blockdev.status_error (d.Bus.read Blockdev.reg_status Instr.W64)

let test_blk_bad_dma () =
  let blk, _ = make_blk () in
  let d = Blockdev.device blk in
  d.Bus.write Blockdev.reg_sector Instr.W64 0L;
  d.Bus.write Blockdev.reg_count Instr.W64 1L;
  d.Bus.write Blockdev.reg_dma Instr.W64 0xFFFF_0000L (* outside backing *);
  d.Bus.write Blockdev.reg_cmd Instr.W64 Blockdev.cmd_read;
  d.Bus.tick 10_000_000L;
  check64 "error surfaced at completion" Blockdev.status_error
    (d.Bus.read Blockdev.reg_status Instr.W64);
  checki "error counted" 1 (Blockdev.error_count blk)

let test_blk_unknown_cmd () =
  let blk, _ = make_blk () in
  let d = Blockdev.device blk in
  d.Bus.write Blockdev.reg_sector Instr.W64 0L;
  d.Bus.write Blockdev.reg_count Instr.W64 1L;
  d.Bus.write Blockdev.reg_dma Instr.W64 0x100L;
  d.Bus.write Blockdev.reg_cmd Instr.W64 99L (* not read/write *);
  (* rejected immediately: no seek latency, no pending completion *)
  checkb "no completion scheduled" true (Blockdev.next_completion blk = None);
  checkb "irq raised" true (d.Bus.pending_irq ());
  checki "error counted" 1 (Blockdev.error_count blk);
  check64 "immediate error" Blockdev.status_error
    (d.Bus.read Blockdev.reg_status Instr.W64);
  (* the status read acked the error; the device accepts new commands *)
  d.Bus.write Blockdev.reg_cmd Instr.W64 Blockdev.cmd_read;
  d.Bus.tick 10_000_000L;
  check64 "recovers after reject" Blockdev.status_done
    (d.Bus.read Blockdev.reg_status Instr.W64)

let test_blk_zero_count () =
  let blk, _ = make_blk () in
  let d = Blockdev.device blk in
  d.Bus.write Blockdev.reg_sector Instr.W64 0L;
  d.Bus.write Blockdev.reg_count Instr.W64 0L (* empty transfer is malformed *);
  d.Bus.write Blockdev.reg_cmd Instr.W64 Blockdev.cmd_read;
  check64 "immediate error" Blockdev.status_error
    (d.Bus.read Blockdev.reg_status Instr.W64);
  checki "error counted" 1 (Blockdev.error_count blk)

let test_blk_transient_fault_retry () =
  let blk, _ = make_blk () in
  Blockdev.load blk ~sector:0 "retry-me";
  let f = Velum_util.Fault.create ~seed:7L () in
  (* the fault window covers only the first command's issue time *)
  Velum_util.Fault.add_window f Velum_util.Fault.Blk_transient ~lo:0L ~hi:1_000L;
  Blockdev.set_faults blk f;
  let d = Blockdev.device blk in
  let issue () =
    d.Bus.write Blockdev.reg_sector Instr.W64 0L;
    d.Bus.write Blockdev.reg_count Instr.W64 1L;
    d.Bus.write Blockdev.reg_dma Instr.W64 0x100L;
    d.Bus.write Blockdev.reg_cmd Instr.W64 Blockdev.cmd_read
  in
  issue ();
  d.Bus.tick 10_000_000L;
  check64 "injected error" Blockdev.status_error
    (d.Bus.read Blockdev.reg_status Instr.W64);
  checki "error counted" 1 (Blockdev.error_count blk);
  checki "fault observed" 1 (Velum_util.Fault.observed f Velum_util.Fault.Blk_transient);
  (* past the window the retry succeeds *)
  issue ();
  d.Bus.tick 20_000_000L;
  check64 "retry succeeds" Blockdev.status_done
    (d.Bus.read Blockdev.reg_status Instr.W64);
  checki "no new error" 1 (Blockdev.error_count blk)

(* ---------------- Virtio ring ---------------- *)

let make_guest_mem () =
  let mem = Phys_mem.create ~frames:16 in
  Platform.identity_guest_mem mem

let test_ring_push_pending () =
  let gm = make_guest_mem () in
  let ring = Virtio_ring.create ~mem:gm ~base:0x1000L ~size:4 in
  check64 "avail 0" 0L (Virtio_ring.avail_idx ring);
  let d =
    { Virtio_ring.data_gpa = 0x2000L; data_len = 512; kind = 1L; arg = 7L; status_gpa = 0x3000L }
  in
  checkb "push" true (Virtio_ring.guest_push ring d);
  check64 "avail 1" 1L (Virtio_ring.avail_idx ring);
  (match Virtio_ring.pending ring with
  | [ got ] ->
      check64 "gpa" 0x2000L got.Virtio_ring.data_gpa;
      checki "len" 512 got.Virtio_ring.data_len;
      check64 "arg" 7L got.Virtio_ring.arg
  | l -> Alcotest.fail (Printf.sprintf "expected 1 pending, got %d" (List.length l)));
  Virtio_ring.complete ring ~count:1;
  checkb "drained" true (Virtio_ring.pending ring = [])

let test_ring_full_and_wrap () =
  let gm = make_guest_mem () in
  let ring = Virtio_ring.create ~mem:gm ~base:0x1000L ~size:2 in
  let d i =
    { Virtio_ring.data_gpa = Int64.of_int (0x2000 + i); data_len = 8; kind = 1L;
      arg = Int64.of_int i; status_gpa = 0x3000L }
  in
  checkb "p0" true (Virtio_ring.guest_push ring (d 0));
  checkb "p1" true (Virtio_ring.guest_push ring (d 1));
  checkb "full" false (Virtio_ring.guest_push ring (d 2));
  Virtio_ring.complete ring ~count:2;
  (* free-running indices wrap around the slot array *)
  checkb "p2 after complete" true (Virtio_ring.guest_push ring (d 2));
  match Virtio_ring.pending ring with
  | [ got ] -> check64 "wrapped slot" 2L got.Virtio_ring.arg
  | _ -> Alcotest.fail "expected one pending"

let test_ring_bad_size () =
  let gm = make_guest_mem () in
  Alcotest.check_raises "not power of two"
    (Invalid_argument "Virtio_ring.create: size must be a positive power of two")
    (fun () -> ignore (Virtio_ring.create ~mem:gm ~base:0L ~size:3))

(* ---------------- Virtio blk ---------------- *)

let test_vblk_batch () =
  let mem = Phys_mem.create ~frames:32 in
  let gm = Platform.identity_guest_mem mem in
  let vblk = Virtio_blk.create ~sectors:64 gm in
  Virtio_blk.load vblk ~sector:0 "sector-zero";
  Virtio_blk.load vblk ~sector:1 "sector-one!";
  let d = Virtio_blk.device vblk in
  d.Bus.write Virtio_blk.reg_ring_base Instr.W64 0x1000L;
  d.Bus.write Virtio_blk.reg_ring_size Instr.W64 4L;
  let ring = Virtio_ring.create ~mem:gm ~base:0x1000L ~size:4 in
  let push sector buf st =
    ignore
      (Virtio_ring.guest_push ring
         { Virtio_ring.data_gpa = buf; data_len = 512; kind = Virtio_blk.kind_read;
           arg = sector; status_gpa = st })
  in
  push 0L 0x4000L 0x3000L;
  push 1L 0x5000L 0x3008L;
  d.Bus.write Virtio_blk.reg_kick Instr.W64 0L;
  checki "one kick" 1 (Virtio_blk.kicks vblk);
  checkb "deadline" true (Virtio_blk.next_completion vblk <> None);
  d.Bus.tick 10_000_000L;
  check64 "used advanced" 2L (Virtio_ring.used_idx ring);
  checki "ops" 2 (Virtio_blk.completed_ops vblk);
  check64 "isr" 1L (d.Bus.read Virtio_blk.reg_isr Instr.W64);
  check64 "isr acked" 0L (d.Bus.read Virtio_blk.reg_isr Instr.W64);
  checks "payload 0" "sector-zero"
    (String.sub (Bytes.to_string (Option.get (gm.Virtio_ring.read_bytes 0x4000L 11))) 0 11);
  checks "payload 1" "sector-one!"
    (String.sub (Bytes.to_string (Option.get (gm.Virtio_ring.read_bytes 0x5000L 11))) 0 11);
  check64 "status ok" 0L
    (Int64.of_int (Char.code (Bytes.get (Option.get (gm.Virtio_ring.read_bytes 0x3000L 1)) 0)))

let test_vblk_error_status () =
  let mem = Phys_mem.create ~frames:32 in
  let gm = Platform.identity_guest_mem mem in
  let vblk = Virtio_blk.create ~sectors:4 gm in
  let d = Virtio_blk.device vblk in
  d.Bus.write Virtio_blk.reg_ring_base Instr.W64 0x1000L;
  d.Bus.write Virtio_blk.reg_ring_size Instr.W64 4L;
  let ring = Virtio_ring.create ~mem:gm ~base:0x1000L ~size:4 in
  ignore
    (Virtio_ring.guest_push ring
       { Virtio_ring.data_gpa = 0x4000L; data_len = 512; kind = Virtio_blk.kind_read;
         arg = 100L (* out of range *); status_gpa = 0x3000L });
  d.Bus.write Virtio_blk.reg_kick Instr.W64 0L;
  d.Bus.tick 10_000_000L;
  check64 "status error" 1L
    (Int64.of_int (Char.code (Bytes.get (Option.get (gm.Virtio_ring.read_bytes 0x3000L 1)) 0)))

(* ---------------- Link ---------------- *)

let test_link_transfer_model () =
  let l = Link.create ~bytes_per_cycle:2.0 ~latency_cycles:100 () in
  checki "transfer cycles" (100 + 500) (Link.transfer_cycles l ~bytes:1000);
  let arrival = Link.send l ~from:`A ~now:0L ~payload:(String.make 1000 'x') in
  check64 "arrival" 600L arrival;
  (* second frame queues behind the first on the line *)
  let arrival2 = Link.send l ~from:`A ~now:0L ~payload:(String.make 1000 'y') in
  check64 "serialized" 1100L arrival2;
  checki "in flight" 2 (Link.in_flight l);
  checki "bytes" 2000 (Link.bytes_sent l)

let test_link_poll () =
  let l = Link.create ~bytes_per_cycle:1.0 ~latency_cycles:10 () in
  ignore (Link.send l ~from:`A ~now:0L ~payload:"one");
  ignore (Link.send l ~from:`A ~now:0L ~payload:"two");
  Alcotest.(check (list string)) "nothing yet" [] (Link.poll l ~at:`B ~now:5L);
  Alcotest.(check (list string)) "both in order" [ "one"; "two" ]
    (Link.poll l ~at:`B ~now:1000L);
  Alcotest.(check (list string)) "drained" [] (Link.poll l ~at:`B ~now:2000L)

let test_link_directions_independent () =
  let l = Link.create () in
  ignore (Link.send l ~from:`A ~now:0L ~payload:"to-b");
  ignore (Link.send l ~from:`B ~now:0L ~payload:"to-a");
  Alcotest.(check (list string)) "b gets" [ "to-b" ] (Link.poll l ~at:`B ~now:100_000L);
  Alcotest.(check (list string)) "a gets" [ "to-a" ] (Link.poll l ~at:`A ~now:100_000L)

(* ---------------- Nic ---------------- *)

let test_nic_loopback () =
  let link = Link.create ~bytes_per_cycle:10.0 ~latency_cycles:50 () in
  let mem_a = Phys_mem.create ~frames:4 and mem_b = Phys_mem.create ~frames:4 in
  let nic_a = Nic.create ~link ~endpoint:`A ~dma:(Platform.identity_dma mem_a) () in
  let nic_b = Nic.create ~link ~endpoint:`B ~dma:(Platform.identity_dma mem_b) () in
  let da = Nic.device nic_a and db = Nic.device nic_b in
  (* put a frame in A's memory and transmit *)
  Phys_mem.write mem_a 0x100L Instr.W64 0x11223344L;
  da.Bus.write Nic.reg_tx_addr Instr.W64 0x100L;
  da.Bus.write Nic.reg_tx_len Instr.W64 8L;
  da.Bus.write Nic.reg_tx_cmd Instr.W64 1L;
  checki "sent" 1 (Nic.frames_sent nic_a);
  (* before latency elapses nothing is pending at B *)
  db.Bus.tick 10L;
  check64 "rx empty" 0L (db.Bus.read Nic.reg_rx_len Instr.W64);
  db.Bus.tick 10_000L;
  checkb "irq" true (db.Bus.pending_irq ());
  check64 "rx len" 8L (db.Bus.read Nic.reg_rx_len Instr.W64);
  db.Bus.write Nic.reg_rx_dma Instr.W64 0x200L;
  db.Bus.write Nic.reg_rx_cmd Instr.W64 1L;
  checki "received" 1 (Nic.frames_received nic_b);
  check64 "payload" 0x11223344L (Phys_mem.read mem_b 0x200L Instr.W64)

let test_uart_rx_overflow () =
  let u = Uart.create ~rx_capacity:4 () in
  Uart.feed_input u "abcdef" (* e, f dropped *);
  let drained = ref "" in
  for _ = 1 to 6 do
    let v = Uart.read_reg u Uart.reg_data in
    if v <> 0L then drained := !drained ^ String.make 1 (Char.chr (Int64.to_int v))
  done;
  checks "capacity bounds input" "abcd" !drained

let test_nic_oversized_frame_dropped () =
  let link = Link.create () in
  let mem = Phys_mem.create ~frames:8 in
  let nic = Nic.create ~link ~endpoint:`A ~dma:(Platform.identity_dma mem) () in
  let d = Nic.device nic in
  d.Bus.write Nic.reg_tx_addr Instr.W64 0L;
  d.Bus.write Nic.reg_tx_len Instr.W64 (Int64.of_int (Nic.max_frame + 1));
  d.Bus.write Nic.reg_tx_cmd Instr.W64 1L;
  checki "not sent" 0 (Nic.frames_sent nic);
  checki "nothing on the wire" 0 (Link.in_flight link)

let test_device_tick_monotonic () =
  let blk, _ = make_blk () in
  let d = Blockdev.device blk in
  d.Bus.write Blockdev.reg_sector Instr.W64 0L;
  d.Bus.write Blockdev.reg_count Instr.W64 1L;
  d.Bus.write Blockdev.reg_dma Instr.W64 0x100L;
  d.Bus.write Blockdev.reg_cmd Instr.W64 Blockdev.cmd_read;
  d.Bus.tick 10_000_000L;
  check64 "completed" Blockdev.status_done (d.Bus.read Blockdev.reg_status Instr.W64);
  (* a lagging pCPU ticks with an older timestamp: the device clock must
     not rewind, so the new command is still in flight... *)
  d.Bus.write Blockdev.reg_cmd Instr.W64 Blockdev.cmd_read;
  d.Bus.tick 5L;
  check64 "no spurious completion from a stale tick" Blockdev.status_busy
    (d.Bus.read Blockdev.reg_status Instr.W64);
  (* ...and completes once time genuinely advances *)
  d.Bus.tick 30_000_000L;
  check64 "completes later" Blockdev.status_done
    (d.Bus.read Blockdev.reg_status Instr.W64)

(* ---------------- Network fabric ---------------- *)

(* A slot whose descriptor words are unreadable must still move the used
   index: the in-order ring would otherwise desynchronize forever (the
   device completing only well-formed slots leaves used < avail with
   nothing pending). *)
let test_ring_malformed_slot () =
  let mem = Phys_mem.create ~frames:16 in
  let base_gm = Platform.identity_guest_mem mem in
  let poisoned = ref Int64.minus_one in
  let gm =
    {
      base_gm with
      Virtio_ring.read_u64 =
        (fun a -> if a = !poisoned then None else base_gm.Virtio_ring.read_u64 a);
    }
  in
  let ring = Virtio_ring.create ~mem:gm ~base:0x1000L ~size:4 in
  poisoned := Virtio_ring.slot_addr ring 1L;
  for i = 0 to 2 do
    ignore
      (Virtio_ring.guest_push ring
         { Virtio_ring.data_gpa = Int64.of_int (0x4000 + (i * 64)); data_len = 48;
           kind = 0L; arg = 0L; status_gpa = Int64.of_int (0x3000 + (i * 8)) })
  done;
  (match Virtio_ring.pending_slots ring with
  | [ (0L, Some _); (1L, None); (2L, Some _) ] -> ()
  | l -> Alcotest.fail (Printf.sprintf "unexpected slots (%d)" (List.length l)));
  checki "pending drops malformed" 2 (List.length (Virtio_ring.pending ring));
  Virtio_ring.fail_slot ring 1L;
  Virtio_ring.complete ring ~count:3;
  check64 "used catches avail" (Virtio_ring.avail_idx ring)
    (Virtio_ring.used_idx ring);
  checkb "error status written" true
    (Bytes.get (Option.get (base_gm.Virtio_ring.read_bytes 0x3008L 1)) 0
    = Virtio_ring.error_status)

(* The same condition end-to-end through the device: a kick over a batch
   with an unreadable middle slot sends the readable frames, fails the
   bad slot, and leaves the ring live for the next batch. *)
let test_vnet_malformed_tx_slot () =
  let link = Link.create ~bytes_per_cycle:8.0 ~latency_cycles:10 () in
  let mem = Phys_mem.create ~frames:16 in
  let base_gm = Platform.identity_guest_mem mem in
  let poisoned = ref Int64.minus_one in
  let gm =
    {
      base_gm with
      Virtio_ring.read_u64 =
        (fun a -> if a = !poisoned then None else base_gm.Virtio_ring.read_u64 a);
    }
  in
  let v = Virtio_net.create ~link ~endpoint:`A ~mem:gm () in
  Virtio_net.configure v ~tx_base:0x1000L ~tx_size:4 ~rx_base:0x2000L ~rx_size:4;
  let ring = Virtio_ring.create ~mem:gm ~base:0x1000L ~size:4 in
  poisoned := Virtio_ring.slot_addr ring 1L;
  let push i =
    ignore
      (Virtio_ring.guest_push ring
         { Virtio_ring.data_gpa = Int64.of_int (0x4000 + (i * 64)); data_len = 48;
           kind = 0L; arg = 0L; status_gpa = Int64.of_int (0x3000 + (i * 8)) })
  in
  push 0; push 1; push 2;
  Virtio_net.kick v;
  checki "two on the wire" 2 (Virtio_net.frames_sent v);
  checki "malformed counted" 1 (Virtio_net.tx_malformed v);
  check64 "no used-index desync" (Virtio_ring.avail_idx ring)
    (Virtio_ring.used_idx ring);
  checkb "failed slot status" true
    (Bytes.get (Option.get (base_gm.Virtio_ring.read_bytes 0x3008L 1)) 0
    = Virtio_ring.error_status);
  (* ring still usable after the malformed batch *)
  push 3;
  Virtio_net.kick v;
  checki "next batch flows" 3 (Virtio_net.frames_sent v)

let test_vnet_rx_overflow () =
  let link = Link.create ~bytes_per_cycle:8.0 ~latency_cycles:10 () in
  let mem = Phys_mem.create ~frames:16 in
  let gm = Platform.identity_guest_mem mem in
  let v = Virtio_net.create ~link ~endpoint:`A ~mem:gm ~backlog_capacity:4 () in
  for _ = 1 to 7 do
    ignore (Link.send link ~from:`B ~now:0L ~payload:(String.make 48 'x'))
  done;
  (* no RX ring posted yet: the backlog bounds what the device holds *)
  Virtio_net.tick v 100_000L;
  checki "backlog full" 4 (Virtio_net.backlog_length v);
  checki "overflow counted" 3 (Virtio_net.rx_overflow v);
  (* post two empty buffers; exactly two deliver, the rest stay queued *)
  Virtio_net.configure v ~tx_base:0x1000L ~tx_size:4 ~rx_base:0x2000L ~rx_size:4;
  let rx = Virtio_ring.create ~mem:gm ~base:0x2000L ~size:4 in
  for i = 0 to 1 do
    ignore
      (Virtio_ring.guest_push rx
         { Virtio_ring.data_gpa = Int64.of_int (0x4000 + (i * 64)); data_len = 64;
           kind = 0L; arg = 0L; status_gpa = Int64.of_int (0x3000 + (i * 8)) })
  done;
  Virtio_net.tick v 200_000L;
  checki "delivered into posted buffers" 2 (Virtio_net.frames_received v);
  checki "rest still queued" 2 (Virtio_net.backlog_length v);
  check64 "used advanced" 2L (Virtio_ring.used_idx rx);
  (* arrivals = delivered + overflow + queued *)
  checki "conservation" 7
    (Virtio_net.frames_received v + Virtio_net.rx_overflow v
   + Virtio_net.backlog_length v)

(* Frame conservation through NIC + switch under a random fault plan and
   a random op schedule: everything transmitted is delivered or lands in
   a named counter — nothing disappears silently. *)
let prop_fabric_conservation =
  QCheck2.Test.make ~count:40 ~name:"nic+switch frame conservation"
    QCheck2.Gen.(
      pair (int_bound 9999) (list_size (int_range 30 120) (int_bound 99_999)))
    (fun (seed, ops) ->
      let n = 3 in
      let mac i = Int64.of_int (0xA0 + i) in
      let base = Velum_util.Fault.create ~seed:(Int64.of_int (seed + 1)) () in
      Velum_util.Fault.set_prob base Velum_util.Fault.Drop 0.05;
      Velum_util.Fault.set_prob base Velum_util.Fault.Corrupt 0.03;
      Velum_util.Fault.set_prob base Velum_util.Fault.Duplicate 0.03;
      Velum_util.Fault.set_prob base Velum_util.Fault.Delay 0.1;
      let links =
        Array.init n (fun p ->
            let l = Link.create ~bytes_per_cycle:1.0 ~latency_cycles:20 () in
            Link.set_faults l
              (Velum_util.Fault.derive base ~seed:(Int64.of_int (31 + p)));
            l)
      in
      let sw = Switch.create ~queue_cap:8 links in
      Array.iteri (fun p _ -> Switch.learn sw ~mac:(mac p) ~port:p) links;
      let mems = Array.init n (fun _ -> Phys_mem.create ~frames:4) in
      let nics =
        Array.init n (fun p ->
            Nic.create ~link:links.(p) ~endpoint:`A
              ~dma:(Platform.identity_dma mems.(p))
              ~rx_capacity:4 ())
      in
      let devs = Array.map Nic.device nics in
      let now = ref 0L in
      let tick_all () =
        Switch.tick sw !now;
        Array.iter (fun d -> d.Bus.tick !now) devs
      in
      let transmit p code =
        let dst =
          match code mod 5 with
          | 0 | 1 -> mac (code mod n) (* known unicast (maybe self) *)
          | 2 -> Switch.broadcast_mac
          | 3 -> 0x999L (* unknown unicast *)
          | _ -> mac ((p + 1) mod n)
        in
        Phys_mem.write mems.(p) 0x100L Instr.W64 dst;
        Phys_mem.write mems.(p) 0x108L Instr.W64 (mac p);
        let len = if code mod 13 = 0 then 8 (* runt *) else 48 in
        devs.(p).Bus.write Nic.reg_tx_addr Instr.W64 0x100L;
        devs.(p).Bus.write Nic.reg_tx_len Instr.W64 (Int64.of_int len);
        devs.(p).Bus.write Nic.reg_tx_cmd Instr.W64 1L
      in
      let receive p code =
        if devs.(p).Bus.read Nic.reg_rx_len Instr.W64 > 0L then begin
          let dma = if code mod 7 = 0 then 0x10_0000L (* bad *) else 0x400L in
          devs.(p).Bus.write Nic.reg_rx_dma Instr.W64 dma;
          devs.(p).Bus.write Nic.reg_rx_cmd Instr.W64 1L
        end
      in
      List.iter
        (fun code ->
          match code mod 10 with
          | 0 | 1 | 2 | 3 | 4 -> transmit (code mod n) (code / 10)
          | 5 | 6 | 7 ->
              now := Int64.add !now (Int64.of_int (1 + (code mod 500)));
              tick_all ()
          | _ -> receive (code mod n) (code / 10))
        ops;
      (* drain rounds: anything delayed on the wire either arrives or
         stays visibly in flight *)
      for _ = 1 to 5 do
        now := Int64.add !now 1_000_000L;
        tick_all ()
      done;
      let nsum f = Array.fold_left (fun a x -> a + f x) 0 nics in
      let lsum f = Array.fold_left (fun a l -> a + f l) 0 links in
      let lhs =
        nsum Nic.frames_sent + lsum Link.wire_duplicated + Switch.flood_extra sw
      in
      let rhs =
        nsum Nic.frames_received + nsum Nic.rx_dropped + nsum Nic.rx_overflow
        + nsum Nic.rx_queue_length + Switch.drops sw + lsum Link.wire_dropped
        + lsum Link.in_flight
      in
      if not (Switch.conserved sw) then
        QCheck2.Test.fail_report "switch conservation violated";
      if lhs <> rhs then
        QCheck2.Test.fail_reportf "fabric conservation violated: %d <> %d" lhs
          rhs;
      true)

(* ---------------- Platform ---------------- *)

let test_platform_deadlock_detection () =
  (* a guest that wfi's with interrupts disabled can never wake *)
  let platform = Platform.create ~frames:64 () in
  let img = Velum_isa.Asm.assemble ~origin:0x0L Velum_isa.Asm.[ wfi; halt ] in
  Platform.load_image platform img;
  Platform.boot platform ~entry:0L;
  checkb "deadlock detected" true (Platform.run platform = Platform.Deadlock)

let test_platform_timer_wakeup () =
  let platform = Platform.create ~frames:64 () in
  let open Velum_isa.Asm in
  let img =
    Velum_isa.Asm.assemble ~origin:0x0L
      [
        la r2 "handler";
        csrw Arch.Stvec r2;
        csrr r2 Arch.Time;
        addi r2 r2 50_000L;
        csrw Arch.Stimecmp r2;
        (* GIE | timer enable *)
        li r2 1L; slli r3 r2 63L; ori r3 r3 1L; csrw Arch.Sie r3;
        wfi;
        halt (* unreachable: handler halts *);
        label "handler";
        halt;
      ]
  in
  Platform.load_image platform img;
  Platform.boot platform ~entry:0L;
  checkb "halted via handler" true (Platform.run platform = Platform.Halted);
  checkb "time advanced past timer" true (Platform.cycles platform >= 50_000L)

let test_platform_budget () =
  let platform = Platform.create ~frames:64 () in
  let img =
    Velum_isa.Asm.assemble ~origin:0x0L
      Velum_isa.Asm.[ label "spin"; jmp "spin" ]
  in
  Platform.load_image platform img;
  Platform.boot platform ~entry:0L;
  checkb "budget" true (Platform.run ~budget:10_000L platform = Platform.Out_of_budget)

let () =
  Alcotest.run "devices"
    [
      ( "bus",
        [
          Alcotest.test_case "dispatch" `Quick test_bus_dispatch;
          Alcotest.test_case "overlap rejected" `Quick test_bus_overlap_rejected;
          Alcotest.test_case "window" `Quick test_bus_window;
        ] );
      ( "uart",
        [
          Alcotest.test_case "tx" `Quick test_uart_tx;
          Alcotest.test_case "rx" `Quick test_uart_rx;
          Alcotest.test_case "irq" `Quick test_uart_device_irq;
        ] );
      ( "blockdev",
        [
          Alcotest.test_case "read flow" `Quick test_blk_read;
          Alcotest.test_case "write flow" `Quick test_blk_write;
          Alcotest.test_case "bad range" `Quick test_blk_bad_range;
          Alcotest.test_case "bad dma" `Quick test_blk_bad_dma;
          Alcotest.test_case "unknown command" `Quick test_blk_unknown_cmd;
          Alcotest.test_case "zero count" `Quick test_blk_zero_count;
          Alcotest.test_case "transient fault retry" `Quick test_blk_transient_fault_retry;
        ] );
      ( "virtio_ring",
        [
          Alcotest.test_case "push/pending/complete" `Quick test_ring_push_pending;
          Alcotest.test_case "full and wrap" `Quick test_ring_full_and_wrap;
          Alcotest.test_case "bad size" `Quick test_ring_bad_size;
        ] );
      ( "virtio_blk",
        [
          Alcotest.test_case "batch" `Quick test_vblk_batch;
          Alcotest.test_case "error status" `Quick test_vblk_error_status;
        ] );
      ( "link",
        [
          Alcotest.test_case "transfer model" `Quick test_link_transfer_model;
          Alcotest.test_case "poll" `Quick test_link_poll;
          Alcotest.test_case "directions" `Quick test_link_directions_independent;
        ] );
      ( "nic",
        [
          Alcotest.test_case "loopback" `Quick test_nic_loopback;
          Alcotest.test_case "oversized frame" `Quick test_nic_oversized_frame_dropped;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "uart rx overflow" `Quick test_uart_rx_overflow;
          Alcotest.test_case "tick monotonic" `Quick test_device_tick_monotonic;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "ring malformed slot" `Quick test_ring_malformed_slot;
          Alcotest.test_case "vnet malformed tx slot" `Quick
            test_vnet_malformed_tx_slot;
          Alcotest.test_case "vnet rx overflow" `Quick test_vnet_rx_overflow;
          QCheck_alcotest.to_alcotest prop_fabric_conservation;
        ] );
      ( "platform",
        [
          Alcotest.test_case "deadlock detection" `Quick test_platform_deadlock_detection;
          Alcotest.test_case "timer wakeup" `Quick test_platform_timer_wakeup;
          Alcotest.test_case "budget" `Quick test_platform_budget;
        ] );
    ]
