(* Unit tests for velum_util: RNG, statistics, bit operations, ring
   buffers, FNV hashing and table formatting. *)

open Velum_util

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))
let check64 = Alcotest.(check int64)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ---------------- Rng ---------------- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:42L and b = Rng.create ~seed:42L in
  for _ = 1 to 100 do
    check64 "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.next a = Rng.next b then incr same
  done;
  checkb "different seeds diverge" true (!same < 5)

let test_rng_copy () =
  let a = Rng.create ~seed:7L in
  ignore (Rng.next a);
  let b = Rng.copy a in
  check64 "copy continues identically" (Rng.next a) (Rng.next b)

let test_rng_split_independent () =
  let a = Rng.create ~seed:7L in
  let b = Rng.split a in
  let xa = Rng.next a and xb = Rng.next b in
  checkb "split streams differ" true (xa <> xb)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:3L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_range () =
  let r = Rng.create ~seed:9L in
  for _ = 1 to 1000 do
    let v = Rng.float r in
    checkb "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:5L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_geometric () =
  let r = Rng.create ~seed:11L in
  checki "p=1 is always 0" 0 (Rng.geometric r ~p:1.0);
  let total = ref 0 in
  for _ = 1 to 2000 do
    total := !total + Rng.geometric r ~p:0.5
  done;
  (* mean of Geom(0.5) failure count = 1 *)
  let mean = float_of_int !total /. 2000.0 in
  checkb "mean near 1" true (mean > 0.8 && mean < 1.2)

let rng_prop_int_uniformish =
  QCheck2.Test.make ~name:"rng int covers all residues"
    QCheck2.Gen.(int_range 2 20)
    (fun bound ->
      let r = Rng.create ~seed:(Int64.of_int bound) in
      let seen = Array.make bound false in
      for _ = 1 to bound * 200 do
        seen.(Rng.int r bound) <- true
      done;
      Array.for_all Fun.id seen)

(* ---------------- Stats ---------------- *)

let test_stats_mean_stddev () =
  checkf "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  checkf "mean empty" 0.0 (Stats.mean [||]);
  checkf "stddev constant" 0.0 (Stats.stddev [| 4.0; 4.0; 4.0 |]);
  checkf "stddev alternating" 1.0 (Stats.stddev [| 1.0; 3.0; 1.0; 3.0 |])

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  checkf "p0" 10.0 (Stats.percentile xs 0.0);
  checkf "p100" 40.0 (Stats.percentile xs 100.0);
  checkf "p50 interpolates" 25.0 (Stats.percentile xs 50.0);
  checkf "median" 25.0 (Stats.median xs);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile [||] 50.0))

let test_stats_jain () =
  checkf "even allocation" 1.0 (Stats.jain_fairness [| 5.0; 5.0; 5.0 |]);
  checkf "maximally unfair" (1.0 /. 4.0) (Stats.jain_fairness [| 1.0; 0.0; 0.0; 0.0 |]);
  checkf "empty" 1.0 (Stats.jain_fairness [||])

let test_stats_geomean () =
  checkf "geomean" 2.0 (Stats.geometric_mean [| 1.0; 2.0; 4.0 |]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geometric_mean: non-positive sample") (fun () ->
      ignore (Stats.geometric_mean [| 1.0; 0.0 |]))

let test_stats_running () =
  let r = Stats.running_create () in
  List.iter (Stats.running_add r) [ 1.0; 2.0; 3.0; 4.0 ];
  checki "count" 4 (Stats.running_count r);
  checkf "mean" 2.5 (Stats.running_mean r);
  checkf "min" 1.0 (Stats.running_min r);
  checkf "max" 4.0 (Stats.running_max r);
  checkb "stddev matches batch" true
    (abs_float (Stats.running_stddev r -. Stats.stddev [| 1.0; 2.0; 3.0; 4.0 |]) < 1e-9)

let test_stats_population_stddev () =
  (* documented convention: population (/ n), not sample (/ n-1) *)
  checkf "two-point population" 1.0 (Stats.stddev [| 1.0; 3.0 |]);
  let r = Stats.running_create () in
  Stats.running_add r 1.0;
  Stats.running_add r 3.0;
  checkf "running matches" 1.0 (Stats.running_stddev r)

let test_stats_percentile_nan () =
  Alcotest.check_raises "NaN sample" (Invalid_argument "Stats.percentile: NaN sample")
    (fun () -> ignore (Stats.percentile [| 1.0; Float.nan; 3.0 |] 50.0));
  (* Float.compare-based sort: negative values order correctly *)
  checkf "negative samples sort" (-3.0) (Stats.percentile [| -1.0; -3.0; -2.0 |] 0.0)

let stats_prop_percentile_monotone =
  QCheck2.Test.make ~name:"percentile is monotone in p"
    QCheck2.Gen.(list_size (int_range 1 30) (float_bound_inclusive 1000.0))
    (fun xs ->
      let a = Array.of_list xs in
      let p25 = Stats.percentile a 25.0
      and p50 = Stats.percentile a 50.0
      and p75 = Stats.percentile a 75.0 in
      p25 <= p50 && p50 <= p75)

(* ---------------- Bitops ---------------- *)

let test_bitops_basics () =
  check64 "mask 0" 0L (Bitops.mask 0);
  check64 "mask 64" (-1L) (Bitops.mask 64);
  check64 "extract" 0xCL (Bitops.extract 0xAB_CDL ~lo:4 ~width:4);
  check64 "insert" 0xA5_CDL (Bitops.insert 0xAB_CDL ~lo:8 ~width:4 0x5L);
  checkb "test_bit" true (Bitops.test_bit 0x80L 7);
  check64 "set_bit on" 0x81L (Bitops.set_bit 0x80L 0 true);
  check64 "set_bit off" 0x00L (Bitops.set_bit 0x80L 7 false);
  check64 "sign extend neg" (-1L) (Bitops.sign_extend 0xFFL ~width:8);
  check64 "sign extend pos" 0x7FL (Bitops.sign_extend 0x7FL ~width:8);
  check64 "align down" 0x1000L (Bitops.align_down 0x1FFFL 4096);
  check64 "align up" 0x2000L (Bitops.align_up 0x1001L 4096);
  checkb "is_aligned" true (Bitops.is_aligned 0x3000L 4096);
  checkb "not aligned" false (Bitops.is_aligned 0x3008L 4096);
  checki "popcount" 3 (Bitops.popcount 0b10101L)

let bitops_prop_roundtrip =
  QCheck2.Test.make ~name:"insert then extract round-trips"
    QCheck2.Gen.(triple (int_range 0 56) (int_range 1 8) (pair ui64 ui64))
    (fun (lo, width, (v, field)) ->
      let inserted = Bitops.insert v ~lo ~width field in
      Bitops.extract inserted ~lo ~width = Int64.logand field (Bitops.mask width))

let bitops_prop_sign_extend_idempotent =
  QCheck2.Test.make ~name:"sign_extend is idempotent"
    QCheck2.Gen.(pair (int_range 1 64) ui64)
    (fun (width, v) ->
      let once = Bitops.sign_extend v ~width in
      Bitops.sign_extend once ~width = once)

(* ---------------- Ring ---------------- *)

let test_ring_fifo () =
  let r = Ring.create ~capacity:3 in
  checkb "empty" true (Ring.is_empty r);
  checkb "push" true (Ring.push r 1);
  checkb "push" true (Ring.push r 2);
  checkb "push" true (Ring.push r 3);
  checkb "full" true (Ring.is_full r);
  checkb "push full fails" false (Ring.push r 4);
  Alcotest.(check (option int)) "peek" (Some 1) (Ring.peek r);
  Alcotest.(check (option int)) "pop order" (Some 1) (Ring.pop r);
  Alcotest.(check (option int)) "pop order" (Some 2) (Ring.pop r);
  checkb "push after pop" true (Ring.push r 5);
  Alcotest.(check (list int)) "to_list" [ 3; 5 ] (Ring.to_list r)

let test_ring_force () =
  let r = Ring.create ~capacity:2 in
  Ring.push_force r 1;
  Ring.push_force r 2;
  Ring.push_force r 3;
  Alcotest.(check (list int)) "oldest evicted" [ 2; 3 ] (Ring.to_list r)

let test_ring_clear () =
  let r = Ring.create ~capacity:4 in
  ignore (Ring.push r 1);
  Ring.clear r;
  checkb "cleared" true (Ring.is_empty r);
  checki "length" 0 (Ring.length r)

let test_ring_wraparound () =
  (* drive head/tail through several full revolutions of the backing
     array and check FIFO order survives each wrap *)
  let r = Ring.create ~capacity:4 in
  let next_in = ref 0 and next_out = ref 0 in
  for _ = 1 to 10 do
    while not (Ring.is_full r) do
      checkb "push" true (Ring.push r !next_in);
      incr next_in
    done;
    checki "full length" 4 (Ring.length r);
    Alcotest.(check (list int)) "to_list in order"
      [ !next_out; !next_out + 1; !next_out + 2; !next_out + 3 ]
      (Ring.to_list r);
    for _ = 1 to 3 do
      Alcotest.(check (option int)) "pop order" (Some !next_out) (Ring.pop r);
      incr next_out
    done
  done

let test_ring_force_across_wrap () =
  let r = Ring.create ~capacity:3 in
  for i = 1 to 10 do
    Ring.push_force r i
  done;
  Alcotest.(check (list int)) "last capacity survive" [ 8; 9; 10 ] (Ring.to_list r);
  checki "length stays capped" 3 (Ring.length r);
  Ring.clear r;
  checkb "clear after wrap" true (Ring.is_empty r);
  Ring.push_force r 99;
  Alcotest.(check (list int)) "usable after clear" [ 99 ] (Ring.to_list r)

let ring_prop_model =
  QCheck2.Test.make ~name:"ring matches queue model"
    QCheck2.Gen.(list (pair bool small_int))
    (fun ops ->
      let r = Ring.create ~capacity:8 in
      let q = Queue.create () in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            let ok = Ring.push r v in
            if Queue.length q < 8 then begin
              Queue.push v q;
              ok
            end
            else not ok
          end
          else
            match (Ring.pop r, Queue.take_opt q) with
            | Some a, Some b -> a = b
            | None, None -> true
            | _ -> false)
        ops)

(* ---------------- Histogram ---------------- *)

let test_hist_bucket_of () =
  checki "0" 0 (Histogram.bucket_of 0);
  checki "1" 0 (Histogram.bucket_of 1);
  checki "2" 1 (Histogram.bucket_of 2);
  checki "3" 1 (Histogram.bucket_of 3);
  checki "4" 2 (Histogram.bucket_of 4);
  checki "7" 2 (Histogram.bucket_of 7);
  checki "8" 3 (Histogram.bucket_of 8);
  checki "1023" 9 (Histogram.bucket_of 1023);
  checki "1024" 10 (Histogram.bucket_of 1024);
  checki "negative clamps" 0 (Histogram.bucket_of (-5));
  checki "max_int fits" 61 (Histogram.bucket_of max_int)

let test_hist_summary () =
  let h = Histogram.create () in
  checki "empty count" 0 (Histogram.count h);
  checkf "empty percentile" 0.0 (Histogram.percentile h 50.0);
  List.iter (Histogram.add h) [ 5; 5; 5; 5 ];
  checki "count" 4 (Histogram.count h);
  check64 "sum" 20L (Histogram.sum h);
  checki "min" 5 (Histogram.min_value h);
  checki "max" 5 (Histogram.max_value h);
  checkf "mean" 5.0 (Histogram.mean h);
  (* single distinct value: percentiles are exact at every p *)
  checkf "p50 exact" 5.0 (Histogram.percentile h 50.0);
  checkf "p99 exact" 5.0 (Histogram.percentile h 99.0);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Histogram.percentile: p out of range") (fun () ->
      ignore (Histogram.percentile h 101.0))

let test_hist_buckets_and_reset () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1; 2; 3; 100; -7 ];
  Alcotest.(check (list (pair int int)))
    "nonzero buckets ascending"
    [ (0, 2); (2, 2); (64, 1) ]
    (Histogram.buckets h);
  checki "negative clamped to 0" 0 (Histogram.min_value h);
  Histogram.reset h;
  checki "reset count" 0 (Histogram.count h);
  check64 "reset sum" 0L (Histogram.sum h);
  Alcotest.(check (list (pair int int))) "reset buckets" [] (Histogram.buckets h)

let hist_prop_percentile_bounds =
  QCheck2.Test.make ~name:"percentiles stay within observed min/max"
    QCheck2.Gen.(list_size (int_range 1 50) (int_range 0 100_000))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let lo = float_of_int (Histogram.min_value h)
      and hi = float_of_int (Histogram.max_value h) in
      List.for_all
        (fun p ->
          let v = Histogram.percentile h p in
          v >= lo && v <= hi)
        [ 0.0; 25.0; 50.0; 95.0; 99.0; 100.0 ])

let hist_prop_percentile_monotone =
  QCheck2.Test.make ~name:"histogram percentile is monotone in p"
    QCheck2.Gen.(list_size (int_range 1 50) (int_range 0 100_000))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let ps = [ 0.0; 10.0; 50.0; 90.0; 95.0; 99.0; 100.0 ] in
      let vs = List.map (Histogram.percentile h) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono vs)

(* ---------------- Fnv ---------------- *)

let test_fnv_known () =
  (* standard FNV-1a test vectors *)
  check64 "empty" 0xCBF29CE484222325L (Fnv.hash_string "");
  check64 "a" 0xAF63DC4C8601EC8CL (Fnv.hash_string "a");
  check64 "foobar" 0x85944171F73967E8L (Fnv.hash_string "foobar")

let test_fnv_bytes_range () =
  let b = Bytes.of_string "xxfoobarxx" in
  check64 "range matches" (Fnv.hash_string "foobar") (Fnv.hash_bytes ~pos:2 ~len:6 b);
  Alcotest.check_raises "oob" (Invalid_argument "Fnv.hash_bytes: range out of bounds")
    (fun () -> ignore (Fnv.hash_bytes ~pos:8 ~len:10 b))

let test_fnv_combine_order () =
  let a = Fnv.combine (Fnv.combine Fnv.offset_basis 1L) 2L in
  let b = Fnv.combine (Fnv.combine Fnv.offset_basis 2L) 1L in
  checkb "order matters" true (a <> b)

let fnv_prop_string_bytes_agree =
  QCheck2.Test.make ~name:"hash_string = hash_bytes" QCheck2.Gen.string (fun s ->
      Fnv.hash_string s = Fnv.hash_bytes (Bytes.of_string s))

(* ---------------- Tablefmt ---------------- *)

let test_tablefmt_render () =
  let t = Tablefmt.create ~title:"T" [ ("name", Tablefmt.Left); ("n", Tablefmt.Right) ] in
  Tablefmt.add_row t [ "alpha"; "1" ];
  Tablefmt.add_separator t;
  Tablefmt.add_row t [ "b"; "22" ];
  let s = Tablefmt.render t in
  checkb "has title" true (String.length s > 0 && s.[0] = 'T');
  checkb "contains alpha" true (contains s "alpha");
  checkb "right aligned" true (contains s "|  1 |" || contains s "| 1 |")

let test_tablefmt_arity () =
  let t = Tablefmt.create [ ("a", Tablefmt.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Tablefmt.add_row: arity mismatch")
    (fun () -> Tablefmt.add_row t [ "x"; "y" ])

let test_tablefmt_cells () =
  Alcotest.(check string) "thousands" "1,234,567" (Tablefmt.cell_i 1234567);
  Alcotest.(check string) "negative" "-1,000" (Tablefmt.cell_i (-1000));
  Alcotest.(check string) "small" "42" (Tablefmt.cell_i 42);
  Alcotest.(check string) "float" "3.14" (Tablefmt.cell_f 3.14159);
  Alcotest.(check string) "decimals" "3.1416" (Tablefmt.cell_f ~decimals:4 3.14159)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "geometric" `Quick test_rng_geometric;
        ]
        @ qsuite [ rng_prop_int_uniformish ] );
      ( "stats",
        [
          Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "jain" `Quick test_stats_jain;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "running" `Quick test_stats_running;
          Alcotest.test_case "population stddev" `Quick test_stats_population_stddev;
          Alcotest.test_case "percentile NaN" `Quick test_stats_percentile_nan;
        ]
        @ qsuite [ stats_prop_percentile_monotone ] );
      ( "bitops",
        [ Alcotest.test_case "basics" `Quick test_bitops_basics ]
        @ qsuite [ bitops_prop_roundtrip; bitops_prop_sign_extend_idempotent ] );
      ( "ring",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "force" `Quick test_ring_force;
          Alcotest.test_case "clear" `Quick test_ring_clear;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "force across wrap" `Quick test_ring_force_across_wrap;
        ]
        @ qsuite [ ring_prop_model ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket_of" `Quick test_hist_bucket_of;
          Alcotest.test_case "summary" `Quick test_hist_summary;
          Alcotest.test_case "buckets/reset" `Quick test_hist_buckets_and_reset;
        ]
        @ qsuite [ hist_prop_percentile_bounds; hist_prop_percentile_monotone ] );
      ( "fnv",
        [
          Alcotest.test_case "known vectors" `Quick test_fnv_known;
          Alcotest.test_case "byte ranges" `Quick test_fnv_bytes_range;
          Alcotest.test_case "combine order" `Quick test_fnv_combine_order;
        ]
        @ qsuite [ fnv_prop_string_bytes_agree ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_tablefmt_render;
          Alcotest.test_case "arity" `Quick test_tablefmt_arity;
          Alcotest.test_case "cells" `Quick test_tablefmt_cells;
        ] );
    ]
