(* Differential testing: generate random guest user programs, run each
   on bare metal and under the hypervisor in every configuration
   (shadow/nested paging, paravirtual, binary translation, 4 KiB and
   2 MiB heap mappings), and require byte-identical console output.

   Each program seeds registers with random constants, applies a random
   sequence of ALU and heap load/store operations, folds the registers
   into a digest, and prints the digest as 16 letters.  Any divergence
   between the native hart and the deprivileged hart — in instruction
   semantics, trap reflection, address translation, A/D handling, or
   device emulation — shows up as different output. *)

open Velum_isa
open Velum_machine
open Velum_devices
open Velum_vmm
open Velum_guests
open Asm

(* ---------------- program generator ---------------- *)

type op =
  | Alu3 of Instr.alu_op * int * int * int  (* rd, rs1, rs2 in 2..11 *)
  | Alui of Instr.alu_op * int * int * int64
  | Store of int * int64  (* src reg, aligned heap offset *)
  | Load of int * int64  (* rd, aligned heap offset *)

let gen_reg = QCheck2.Gen.int_range 2 11

let gen_alu3_op =
  QCheck2.Gen.oneofl
    [ Instr.Add; Instr.Sub; Instr.Mul; Instr.And; Instr.Or; Instr.Xor;
      Instr.Sll; Instr.Srl; Instr.Sra; Instr.Slt; Instr.Sltu; Instr.Div; Instr.Rem ]

let gen_alui_op =
  QCheck2.Gen.oneofl
    [ Instr.Add; Instr.And; Instr.Or; Instr.Xor; Instr.Sll; Instr.Srl; Instr.Sra;
      Instr.Slt; Instr.Sltu ]

let gen_op =
  let open QCheck2.Gen in
  frequency
    [
      (5, map (fun ((o, a), (b, c)) -> Alu3 (o, a, b, c))
           (pair (pair gen_alu3_op gen_reg) (pair gen_reg gen_reg)));
      (3, map (fun ((o, a), (b, i)) -> Alui (o, a, b, Int64.of_int i))
           (pair (pair gen_alui_op gen_reg) (pair gen_reg (int_range (-100000) 100000))));
      (1, map (fun (r, slot) -> Store (r, Int64.of_int (slot * 8)))
           (pair gen_reg (int_range 0 63)));
      (1, map (fun (r, slot) -> Load (r, Int64.of_int (slot * 8)))
           (pair gen_reg (int_range 0 63)));
    ]

let gen_program =
  let open QCheck2.Gen in
  pair (array_size (return 10) (map Int64.of_int int)) (list_size (int_range 5 60) gen_op)

let compile (seeds, ops) =
  let seed_items =
    List.concat (List.mapi (fun i v -> [ li (i + 2) v ]) (Array.to_list seeds))
  in
  let op_item = function
    | Alu3 (o, rd, rs1, rs2) -> Insn (Instr.Alu (o, rd, rs1, rs2))
    | Alui (o, rd, rs1, imm) -> Insn (Instr.Alui (o, rd, rs1, imm))
    | Store (src, off) -> Insn (Instr.Store { src; base = 15; off; width = Instr.W64 })
    | Load (rd, off) -> Insn (Instr.Load { rd; base = 15; off; width = Instr.W64 })
  in
  let fold =
    (* digest = xor of r2..r11 *)
    [ mv r12 r2 ]
    @ List.concat (List.map (fun r -> [ xor r12 r12 r ]) [ 3; 4; 5; 6; 7; 8; 9; 10; 11 ])
  in
  let print_digest =
    [
      li r6 16L;
      label "d_loop";
      srli r7 r12 60L;
      andi r7 r7 15L;
      addi r2 r7 97L (* 'a' + nibble *);
      li r1 Abi.sys_putchar;
      ecall;
      slli r12 r12 4L;
      addi r6 r6 (-1L);
      bne r6 r0 "d_loop";
    ]
  in
  Asm.assemble ~origin:Abi.user_base
    ([ label "u_entry"; li r14 0x0014_4000L; li r15 Abi.heap_base ]
    @ seed_items
    @ List.map op_item ops
    @ fold @ print_digest
    @ [ li r1 Abi.sys_exit; ecall ])

(* ---------------- execution under each configuration ---------------- *)

let run_native ?engine setup =
  let platform = Platform.create ~frames:(setup.Images.frames + 16) ?engine () in
  Images.load_native platform setup;
  match Platform.run ~budget:100_000_000L platform with
  | Platform.Halted -> Platform.console_output platform
  | _ -> "<native did not halt>"

let run_virt ?exec_mode ?engine ~paging ~pv setup =
  let host = Host.create ~frames:(setup.Images.frames + 1024) () in
  let hyp = Hypervisor.create ~host () in
  let vm =
    Hypervisor.create_vm hyp ~name:"diff" ~mem_frames:setup.Images.frames ~paging
      ~pv:(if pv then Vm.full_pv else Vm.no_pv)
      ?exec_mode ?engine ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  match Hypervisor.run hyp ~budget:500_000_000L with
  | Hypervisor.All_halted -> Vm.console_output vm
  | _ -> "<vm did not halt>"

let differential_prop =
  QCheck2.Test.make ~count:40 ~name:"native = shadow = nested = pv for random programs"
    gen_program
    (fun prog ->
      let user = compile prog in
      let setup = Images.plan ~heap_pages:1 ~user () in
      let pv_setup = Images.plan ~pv_console:true ~pv_pt:true ~heap_pages:1 ~user () in
      let sp_setup = Images.plan ~heap_pages:1 ~heap_superpages:true ~user () in
      let native = run_native setup in
      String.length native = 16
      && native = run_virt ~paging:Vm.Shadow_paging ~pv:false setup
      && native = run_virt ~paging:Vm.Nested_paging ~pv:false setup
      && native = run_virt ~paging:Vm.Shadow_paging ~pv:true pv_setup
      && native
         = run_virt ~exec_mode:Vm.Binary_translation ~paging:Vm.Nested_paging ~pv:false
             setup
      && native = run_native sp_setup
      && native = run_virt ~paging:Vm.Nested_paging ~pv:false sp_setup
      && native = run_virt ~paging:Vm.Shadow_paging ~pv:false sp_setup)

(* A fixed regression corpus in addition to the random sweep: division
   edges, shift masking, unsigned compares, load/store interleaving. *)
let fixed_corpus () =
  let cases =
    [
      ([| 5L; 0L; Int64.min_int; -1L; 7L; 3L; 0L; 0L; 0L; 0L |],
       [ Alu3 (Instr.Div, 2, 2, 3); Alu3 (Instr.Rem, 4, 4, 5);
         Alu3 (Instr.Div, 6, 6, 7); Alu3 (Instr.Sltu, 8, 4, 5) ]);
      ([| -8L; 65L; 1L; 0L; 0L; 0L; 0L; 0L; 0L; 0L |],
       [ Alu3 (Instr.Sll, 4, 2, 3); Alu3 (Instr.Srl, 5, 2, 3);
         Alu3 (Instr.Sra, 6, 2, 3) ]);
      ([| 0x1234L; 0x5678L; 0L; 0L; 0L; 0L; 0L; 0L; 0L; 0L |],
       [ Store (2, 0L); Store (3, 8L); Load (4, 0L); Load (5, 8L);
         Alu3 (Instr.Add, 6, 4, 5); Store (6, 16L); Load (7, 16L) ]);
    ]
  in
  List.iter
    (fun prog ->
      let user = compile prog in
      let setup = Images.plan ~heap_pages:1 ~user () in
      let native = run_native setup in
      Alcotest.(check string) "shadow" native
        (run_virt ~paging:Vm.Shadow_paging ~pv:false setup);
      Alcotest.(check string) "nested" native
        (run_virt ~paging:Vm.Nested_paging ~pv:false setup))
    cases

(* ---------------- execution engines: lockstep equivalence ----------------

   The block engine must be {e observationally identical} to the
   reference interpreter: same console bytes, same final architectural
   state on every vCPU, same per-kind exit counts and cycles, same
   guest/VMM cycle totals, and the same literal exit sequence.  Anything
   the embedding hypervisor can see must match. *)

(* Render everything engine-visible about a finished VM into one string
   so a mismatch shows exactly which observable diverged. *)
let observe_vm (vm : Vm.t) outcome =
  let b = Buffer.create 1024 in
  Buffer.add_string b (outcome ^ "\n");
  Buffer.add_string b (Vm.console_output vm);
  Buffer.add_char b '\n';
  Array.iteri
    (fun i v ->
      let s = v.Vcpu.state in
      Buffer.add_string b
        (Printf.sprintf "vcpu%d pc=%Lx mode=%s instret=%Ld halted=%b waiting=%b\n" i
           s.Cpu.pc
           (match s.Cpu.mode with Arch.User -> "U" | Arch.Supervisor -> "S")
           s.Cpu.instret s.Cpu.halted s.Cpu.waiting);
      Array.iteri (fun j r -> Buffer.add_string b (Printf.sprintf " r%d=%Lx" j r)) s.Cpu.regs;
      Buffer.add_char b '\n';
      Array.iteri (fun j c -> Buffer.add_string b (Printf.sprintf " c%d=%Lx" j c)) s.Cpu.csrs;
      Buffer.add_char b '\n')
    vm.Vm.vcpus;
  List.iter
    (fun k ->
      Buffer.add_string b
        (Printf.sprintf "%s=%d/%Ld\n" (Monitor.exit_kind_name k)
           (Monitor.count vm.Vm.monitor k)
           (Monitor.cycles vm.Vm.monitor k)))
    Monitor.all_exit_kinds;
  (* TLB evictions and flushes are engine-lockstep (round-robin
     replacement driven only by inserts, and inserts only happen on
     real misses — the block engine skips only guaranteed hits), so
     they belong in the oracle.  Hit/miss counts legitimately diverge
     and stay out. *)
  let sum f = Array.fold_left (fun acc tlb -> acc + f tlb) 0 vm.Vm.tlbs in
  Buffer.add_string b
    (Printf.sprintf "tlb-evict=%d tlb-flush=%d\n" (sum Tlb.evictions) (sum Tlb.flushes));
  Buffer.add_string b
    (Printf.sprintf "guest=%Ld vmm=%Ld\n" (Vm.guest_cycles vm) (Vm.vmm_cycles vm));
  Buffer.contents b

let run_observed_vm ~engine ~paging setup =
  let host = Host.create ~frames:(setup.Images.frames + 1024) () in
  let hyp = Hypervisor.create ~host () in
  let vm =
    Hypervisor.create_vm hyp ~name:"eng" ~mem_frames:setup.Images.frames ~paging ~engine
      ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  let outcome =
    match Hypervisor.run hyp ~budget:500_000_000L with
    | Hypervisor.All_halted -> "halted"
    | Hypervisor.Out_of_budget -> "budget"
    | Hypervisor.Idle_deadlock -> "deadlock"
    | Hypervisor.Until_satisfied -> "satisfied"
  in
  (observe_vm vm outcome, vm)

let run_observed ~engine ~paging setup = fst (run_observed_vm ~engine ~paging setup)

let workload_setups () =
  List.map
    (fun (name, user, heap) -> (name, Images.plan ~heap_pages:heap ~user ()))
    [
      ("hello", Workloads.hello (), 0);
      ("cpu-spin", Workloads.cpu_spin ~iters:30_000L, 0);
      ("syscalls", Workloads.syscall_loop ~count:48L, 0);
      ("memwalk", Workloads.memwalk ~pages:24 ~iters:8 ~write:true, 24);
      ("pt-churn", Workloads.pt_churn ~batch:16 ~count:24 (), 0);
      ("blk", Workloads.blk_read ~sector:0 ~count:4 ~reps:8, 8);
      ("vblk", Workloads.vblk_read ~sector:0 ~count:4 ~reps:8, 8);
    ]

let engine_lockstep () =
  List.iter
    (fun (name, setup) ->
      List.iter
        (fun (pname, paging) ->
          Alcotest.(check string)
            (Printf.sprintf "%s/%s" name pname)
            (run_observed ~engine:Engine.Interp ~paging setup)
            (run_observed ~engine:Engine.Block ~paging setup))
        [ ("nested", Vm.Nested_paging); ("shadow", Vm.Shadow_paging) ])
    (workload_setups ())

(* The five ENGINE bench workloads at a scale where the superblock
   trace tier actually kicks in (hot heads cross the promotion
   threshold).  The full lockstep oracle must hold with traces running
   most of the guest's instructions, and each block run must really
   have built and followed traces — otherwise this test would silently
   degrade into re-testing plain chaining. *)
let engine_trace_workloads () =
  let setups =
    [
      ("cpu-spin", Images.plan ~user:(Workloads.cpu_spin ~iters:5_000L) ());
      ("branch-mix", Images.plan ~user:(Workloads.branch_mix ~iters:3_000L) ());
      ( "memcpy",
        Images.plan ~heap_pages:18
          ~user:(Workloads.stream_copy ~words:1024 ~iters:4)
          () );
      ("null-syscall", Images.plan ~user:(Workloads.syscall_loop ~count:200L) ());
      ( "pgtable-churn",
        Images.plan ~user:(Workloads.pt_churn ~batch:16 ~count:60 ()) () );
    ]
  in
  List.iter
    (fun (name, setup) ->
      List.iter
        (fun (pname, paging) ->
          let obs_i = run_observed ~engine:Engine.Interp ~paging setup in
          let obs_b, vm = run_observed_vm ~engine:Engine.Block ~paging setup in
          Alcotest.(check string) (Printf.sprintf "%s/%s" name pname) obs_i obs_b;
          match vm.Vm.engine.Engine.cache with
          | None -> Alcotest.fail "block engine has no cache"
          | Some c ->
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s traces built" name pname)
                true
                (Trans_cache.traces_built c > 0);
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s traces followed" name pname)
                true
                (Trans_cache.trace_follows c > 0))
        [ ("nested", Vm.Nested_paging); ("shadow", Vm.Shadow_paging) ])
    setups

(* Literal exit sequences: a stripped-down copy of the hypervisor's
   exec_vcpu loop that records every [Stop_exec] reason the engine
   reports, in order.  Both engines must produce the same sequence. *)
let record_exits ~engine setup =
  let host = Host.create ~frames:(setup.Images.frames + 1024) () in
  let hyp = Hypervisor.create ~host () in
  let vm =
    Hypervisor.create_vm hyp ~name:"seq" ~mem_frames:setup.Images.frames ~engine
      ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  let state = vm.Vm.vcpus.(0).Vcpu.state in
  let used = ref 0 in
  let now_fn () = Int64.of_int !used in
  let ctx =
    {
      Cpu.translate = (fun ~access ~user va -> Vm.translate vm ~vcpu_idx:0 ~access ~user va);
      read_ram = (fun pa w -> Phys_mem.read host.Host.mem pa w);
      write_ram = (fun pa w v -> Phys_mem.write host.Host.mem pa w v);
      flush_tlb = (fun () -> Vm.flush_vcpu_tlb vm ~vcpu_idx:0);
      now = now_fn;
      ext_irq = (fun () -> false);
      cost = host.Host.cost;
      dtlb = None;
      env = Cpu.Deprivileged;
    }
  in
  let exits = ref [] in
  let halted = ref false in
  let rounds = ref 0 in
  while (not !halted) && !rounds < 500_000 do
    incr rounds;
    ignore (Emulate.maybe_inject_irq vm ~vcpu_idx:0 ~now:(now_fn ()));
    let consumed, stop = vm.Vm.engine.Engine.step_n state ctx ~fuel:1000 in
    used := !used + consumed;
    Bus.tick vm.Vm.bus (now_fn ());
    match stop with
    | Cpu.Budget -> ()
    | Cpu.Halted -> halted := true
    | Cpu.Waiting -> Alcotest.fail "exit-sequence harness hit wfi"
    | Cpu.Exit e -> (
        exits := Format.asprintf "%a" Cpu.pp_vmexit e :: !exits;
        match Emulate.handle_exit vm ~vcpu_idx:0 ~now:(now_fn ()) e with
        | Emulate.Resume | Emulate.Yielded -> ()
        | Emulate.Became_blocked -> Alcotest.fail "exit-sequence harness blocked"
        | Emulate.Vcpu_halted -> halted := true)
  done;
  if not !halted then Alcotest.fail "exit-sequence harness did not halt";
  (List.rev !exits, state.Cpu.instret, !used)

let exit_sequences () =
  List.iter
    (fun (name, setup) ->
      let xs_i, ret_i, used_i = record_exits ~engine:Engine.Interp setup in
      let xs_b, ret_b, used_b = record_exits ~engine:Engine.Block setup in
      Alcotest.(check (list string)) (name ^ " exit sequence") xs_i xs_b;
      Alcotest.(check int64) (name ^ " retired") ret_i ret_b;
      Alcotest.(check int) (name ^ " cycles") used_i used_b)
    (List.filter
       (fun (n, _) -> List.mem n [ "hello"; "syscalls"; "pt-churn"; "memwalk" ])
       (workload_setups ()))

(* Deterministic supervisor-mode self-modifying code on bare metal: a
   two-iteration loop patches its own body (same 4 KiB page, already
   decoded and cached by the block engine) between iterations, so the
   second pass must execute the {e new} bytes. *)
let native_smc () =
  let patched = Instr.Alui (Instr.Add, 2, 2, 1L) in
  let prog =
    Asm.assemble ~origin:0L
      [
        li r2 0L;
        li r3 2L;
        la r13 "patch";
        li r1 (Instr.encode patched);
        label "loop";
        label "patch";
        addi r2 r2 100L;
        sd r1 r13 0L;
        addi r3 r3 (-1L);
        bne r3 r0 "loop";
        (* r2 = 100 (first pass) + 1 (patched second pass) = 101 = 'e' *)
        outp Uart.data_port r2;
        halt;
      ]
  in
  let run engine =
    let p = Platform.create ~frames:64 ~engine () in
    Platform.load_image p prog;
    Platform.boot p ~entry:0L;
    (match Platform.run p with
    | Platform.Halted -> ()
    | _ -> Alcotest.fail "native SMC did not halt");
    (Platform.console_output p, Platform.cycles p, Platform.instructions_retired p, p)
  in
  let out_i, cyc_i, ret_i, _ = run Engine.Interp in
  let out_b, cyc_b, ret_b, pb = run Engine.Block in
  Alcotest.(check string) "patched output" "e" out_i;
  Alcotest.(check string) "console" out_i out_b;
  Alcotest.(check int64) "cycles" cyc_i cyc_b;
  Alcotest.(check int64) "instret" ret_i ret_b;
  match pb.Platform.engine.Engine.cache with
  | None -> Alcotest.fail "block engine has no cache"
  | Some c ->
      (* the store lands in the code's own frame, so every iteration
         drops the cached blocks and misses on re-fetch *)
      Alcotest.(check bool) "SMC invalidated" true (Trans_cache.invalidations c > 0);
      Alcotest.(check bool) "re-decoded after SMC" true (Trans_cache.misses c > 1)

(* A loop with a slow (window-collapsing) instruction must be served
   from the cache on re-entry: decoded once, hit on every later
   iteration, cycle-identical.  (A loop of only fast instructions never
   even consults the cache — the engine stays inside its current
   block.) *)
let native_cache_hits () =
  let prog =
    Asm.assemble ~origin:0L
      [
        li r2 0L;
        li r3 500L;
        label "loop";
        addi r2 r2 3L;
        csrr r4 Arch.Sscratch;
        addi r3 r3 (-1L);
        bne r3 r0 "loop";
        halt;
      ]
  in
  let run engine =
    let p = Platform.create ~frames:64 ~engine () in
    Platform.load_image p prog;
    Platform.boot p ~entry:0L;
    (match Platform.run p with
    | Platform.Halted -> ()
    | _ -> Alcotest.fail "loop did not halt");
    (Platform.cycles p, Platform.instructions_retired p, p)
  in
  let cyc_i, ret_i, _ = run Engine.Interp in
  let cyc_b, ret_b, pb = run Engine.Block in
  Alcotest.(check int64) "cycles" cyc_i cyc_b;
  Alcotest.(check int64) "instret" ret_i ret_b;
  match pb.Platform.engine.Engine.cache with
  | None -> Alcotest.fail "block engine has no cache"
  | Some c ->
      (* chained dispatches bypass the hashtable entirely, so count them
         alongside plain hits: both are cached (no redecode) dispatches *)
      let cached = Trans_cache.hits c + Trans_cache.chain_follows c in
      Alcotest.(check bool) "mostly hits" true
        (cached > 100 && cached > 10 * Trans_cache.misses c);
      Alcotest.(check bool) "chains followed" true (Trans_cache.chain_follows c > 0)

(* SMC into an established chain: a two-block loop runs hot (its edges
   get patched and followed), then one store rewrites an instruction in
   the middle block and the loop runs again.  Unlinking the patched
   block must sever the chain edges through it, and the re-run must
   execute the new bytes — r2's final value proves which bytes ran. *)
let native_chain_smc () =
  let patched = Instr.Alui (Instr.Add, 2, 2, 2L) in
  let prog =
    Asm.assemble ~origin:0L
      [
        li r2 0L;
        li r5 2L;
        label "pass";
        li r3 20L;
        label "loop";
        addi r2 r2 1L;
        csrr r4 Arch.Sscratch (* slow: splits the loop into two blocks *);
        label "patchme";
        nop;
        addi r3 r3 (-1L);
        bne r3 r0 "loop";
        addi r5 r5 (-1L);
        bne r5 r0 "dopatch";
        jmp "done";
        label "dopatch";
        la r13 "patchme";
        li r1 (Instr.encode patched);
        sd r1 r13 0L;
        jmp "pass";
        label "done";
        (* r2 = 20 (nop pass) + 20 * 3 (patched pass) = 80 = 'P' *)
        outp Uart.data_port r2;
        halt;
      ]
  in
  let run engine =
    let p = Platform.create ~frames:64 ~engine () in
    Platform.load_image p prog;
    Platform.boot p ~entry:0L;
    (match Platform.run p with
    | Platform.Halted -> ()
    | _ -> Alcotest.fail "chain SMC did not halt");
    (Platform.console_output p, Platform.cycles p, Platform.instructions_retired p, p)
  in
  let out_i, cyc_i, ret_i, _ = run Engine.Interp in
  let out_b, cyc_b, ret_b, pb = run Engine.Block in
  Alcotest.(check string) "patched output" "P" out_i;
  Alcotest.(check string) "console" out_i out_b;
  Alcotest.(check int64) "cycles" cyc_i cyc_b;
  Alcotest.(check int64) "instret" ret_i ret_b;
  match pb.Platform.engine.Engine.cache with
  | None -> Alcotest.fail "block engine has no cache"
  | Some c ->
      Alcotest.(check bool) "chains patched" true (Trans_cache.chains_patched c > 0);
      Alcotest.(check bool) "chains followed" true (Trans_cache.chain_follows c > 0);
      Alcotest.(check bool) "chains severed" true (Trans_cache.chains_severed c > 0)

(* SMC into the interior of a formed superblock trace: a three-block
   loop runs hot enough (40 passes, threshold 16) for the trace tier to
   promote it, then one pass stores over an instruction in a {e
   non-head} constituent block.  The write listener must sever the
   whole trace (not just the patched block), and the remaining passes
   must execute the new bytes — the interpreter-equality check catches
   any stale trace execution, the counters prove a trace really formed
   and really died. *)
let vm_trace_smc () =
  let patched = Instr.Alui (Instr.Add, 2, 2, 100L) in
  let user =
    Asm.assemble ~origin:Abi.user_base
      [
        label "u_entry";
        li r2 0L;
        li r5 40L;
        li r10 10L;
        la r13 "patchme";
        li r9 (Instr.encode patched);
        label "pass";
        addi r2 r2 1L;
        jmp "mid";
        label "mid";
        label "patchme";
        nop;
        addi r2 r2 10L;
        bne r5 r10 "skip";
        sd r9 r13 0L;
        label "skip";
        addi r5 r5 (-1L);
        bne r5 r0 "pass";
        li r1 Abi.sys_exit;
        ecall;
      ]
  in
  let setup = Images.plan ~user () in
  List.iter
    (fun (pname, paging) ->
      let obs_i = run_observed ~engine:Engine.Interp ~paging setup in
      let obs_b, vm = run_observed_vm ~engine:Engine.Block ~paging setup in
      Alcotest.(check string) ("trace SMC " ^ pname) obs_i obs_b;
      match vm.Vm.engine.Engine.cache with
      | None -> Alcotest.fail "block engine has no cache"
      | Some c ->
          Alcotest.(check bool) (pname ^ " trace formed") true
            (Trans_cache.traces_built c > 0);
          Alcotest.(check bool) (pname ^ " trace followed") true
            (Trans_cache.trace_follows c > 0);
          Alcotest.(check bool) (pname ^ " trace severed by interior SMC") true
            (Trans_cache.traces_severed c > 0))
    [ ("nested", Vm.Nested_paging); ("shadow", Vm.Shadow_paging) ]

(* Random programs that also store encoded instructions over a patch
   slab inside their own (RWX-mapped) code page, then fall through and
   execute it — user-mode SMC under every engine/paging combination. *)
type smc_op = Plain of op | Smc of int * int * int64  (* slot, rd, imm *)

let gen_smc_op =
  let open QCheck2.Gen in
  frequency
    [
      (4, map (fun o -> Plain o) gen_op);
      ( 1,
        map
          (fun ((slot, rd), imm) -> Smc (slot, rd, Int64.of_int imm))
          (pair (pair (int_range 0 7) gen_reg) (int_range (-64) 64)) );
    ]

let gen_smc_program =
  let open QCheck2.Gen in
  pair (array_size (return 10) (map Int64.of_int int)) (list_size (int_range 5 50) gen_smc_op)

let compile_smc (seeds, ops) =
  let seed_items = List.mapi (fun i v -> li (i + 2) v) (Array.to_list seeds) in
  let op_items = function
    | Plain (Alu3 (o, rd, rs1, rs2)) -> [ Insn (Instr.Alu (o, rd, rs1, rs2)) ]
    | Plain (Alui (o, rd, rs1, imm)) -> [ Insn (Instr.Alui (o, rd, rs1, imm)) ]
    | Plain (Store (src, off)) -> [ Insn (Instr.Store { src; base = 15; off; width = Instr.W64 }) ]
    | Plain (Load (rd, off)) -> [ Insn (Instr.Load { rd; base = 15; off; width = Instr.W64 }) ]
    | Smc (slot, rd, imm) ->
        [
          li r1 (Instr.encode (Instr.Alui (Instr.Add, rd, rd, imm)));
          sd r1 r13 (Int64.of_int (slot * 8));
        ]
  in
  let fold =
    [ mv r12 r2 ]
    @ List.concat (List.map (fun r -> [ xor r12 r12 r ]) [ 3; 4; 5; 6; 7; 8; 9; 10; 11 ])
  in
  let print_digest =
    [
      li r6 16L;
      label "d_loop";
      srli r7 r12 60L;
      andi r7 r7 15L;
      addi r2 r7 97L;
      li r1 Abi.sys_putchar;
      ecall;
      slli r12 r12 4L;
      addi r6 r6 (-1L);
      bne r6 r0 "d_loop";
    ]
  in
  Asm.assemble ~origin:Abi.user_base
    ([ label "u_entry"; li r14 0x0014_4000L; li r15 Abi.heap_base; la r13 "patch" ]
    @ seed_items
    @ List.concat_map op_items ops
    (* the patch slab: nops the Smc ops overwrite, executed on the way
       to the digest so patched instructions feed the output *)
    @ [ label "patch" ]
    @ List.init 8 (fun _ -> nop)
    @ fold @ print_digest
    @ [ li r1 Abi.sys_exit; ecall ])

let engine_smc_prop =
  QCheck2.Test.make ~count:30
    ~name:"interp = block for random programs with self-modifying code" gen_smc_program
    (fun prog ->
      let user = compile_smc prog in
      let setup = Images.plan ~heap_pages:1 ~user () in
      let native = run_native ~engine:Engine.Interp setup in
      String.length native = 16
      && native = run_native ~engine:Engine.Block setup
      && run_observed ~engine:Engine.Interp ~paging:Vm.Nested_paging setup
         = run_observed ~engine:Engine.Block ~paging:Vm.Nested_paging setup
      && run_observed ~engine:Engine.Interp ~paging:Vm.Shadow_paging setup
         = run_observed ~engine:Engine.Block ~paging:Vm.Shadow_paging setup)

(* Random block graphs under chained execution: the program loops four
   times over code spread across two pages (a nop sled keeps them on
   distinct frames), with random conditional splits carving each page
   into several chained blocks.  Patch ops overwrite a nop slab either
   in their own page or in the other one — SMC stores landing in both
   the predecessor and the successor pages of live chain edges, every
   pass, after the chains are hot.  The digest only matches the
   interpreter if severing keeps stale chained successors unreachable. *)
type chain_op =
  | C_plain of op
  | C_patch of bool * int * int * int64  (* into other page?, slot, rd, imm *)
  | C_split of int  (* conditional block split keyed on a seed register *)

let gen_chain_op =
  let open QCheck2.Gen in
  frequency
    [
      (4, map (fun o -> C_plain o) gen_op);
      ( 2,
        map
          (fun ((far, slot), (rd, imm)) -> C_patch (far, slot, rd, Int64.of_int imm))
          (pair (pair bool (int_range 0 7)) (pair gen_reg (int_range (-64) 64))) );
      (2, map (fun r -> C_split r) gen_reg);
    ]

let gen_chain_program =
  let open QCheck2.Gen in
  pair
    (array_size (return 10) (map Int64.of_int int))
    (pair (list_size (int_range 3 25) gen_chain_op) (list_size (int_range 3 25) gen_chain_op))

let compile_chain ?(passes = 4) (seeds, (ops_a, ops_b)) =
  let seed_items = List.mapi (fun i v -> li (i + 2) v) (Array.to_list seeds) in
  (* [own]/[other] are the registers holding this page's and the other
     page's patch-slab base (r13 = slab_a, r12 = slab_b). *)
  let op_items tag own other i = function
    | C_plain (Alu3 (o, rd, rs1, rs2)) -> [ Insn (Instr.Alu (o, rd, rs1, rs2)) ]
    | C_plain (Alui (o, rd, rs1, imm)) -> [ Insn (Instr.Alui (o, rd, rs1, imm)) ]
    | C_plain (Store (src, off)) -> [ Insn (Instr.Store { src; base = 15; off; width = Instr.W64 }) ]
    | C_plain (Load (rd, off)) -> [ Insn (Instr.Load { rd; base = 15; off; width = Instr.W64 }) ]
    | C_patch (far, slot, rd, imm) ->
        [
          li r1 (Instr.encode (Instr.Alui (Instr.Add, rd, rd, imm)));
          sd r1 (if far then other else own) (Int64.of_int (slot * 8));
        ]
    | C_split r ->
        let l = Printf.sprintf "%s%d" tag i in
        [ beq r r0 l; addi r r 1L; label l ]
  in
  let ops tag own other l = List.concat (List.mapi (op_items tag own other) l) in
  let slab = List.init 8 (fun _ -> nop) in
  (* a full page of nops between the two code groups guarantees they
     land on different frames whatever the surrounding code sizes *)
  let sled = List.init (Velum_isa.Arch.page_size / Velum_isa.Arch.instr_bytes) (fun _ -> nop) in
  let fold =
    [ mv r12 r2 ]
    @ List.concat (List.map (fun r -> [ xor r12 r12 r ]) [ 3; 4; 5; 6; 7; 8; 9; 10; 11 ])
  in
  let print_digest =
    [
      li r6 16L;
      label "d_loop";
      srli r7 r12 60L;
      andi r7 r7 15L;
      addi r2 r7 97L;
      li r1 Abi.sys_putchar;
      ecall;
      slli r12 r12 4L;
      addi r6 r6 (-1L);
      bne r6 r0 "d_loop";
    ]
  in
  Asm.assemble ~origin:Abi.user_base
    ([
       label "u_entry";
       li r14 0x0014_4000L;
       li r15 Abi.heap_base;
       la r13 "slab_a";
       la r12 "slab_b";
     ]
    @ seed_items
    (* the pass counter lives in the heap past the random Store/Load
       slots — every architectural register is spoken for *)
    @ [ li r1 (Int64.of_int passes); sd r1 r15 1024L; label "pass" ]
    @ ops "ca" r13 r12 ops_a
    @ [ label "slab_a" ] @ slab
    @ [ jmp "b_entry" ]
    @ [
        label "a_ret";
        ld r1 r15 1024L;
        addi r1 r1 (-1L);
        sd r1 r15 1024L;
        bne r1 r0 "pass";
        jmp "finish";
      ]
    @ sled
    @ [ label "b_entry" ]
    @ ops "cb" r12 r13 ops_b
    @ [ label "slab_b" ] @ slab
    @ [ jmp "a_ret"; label "finish" ]
    @ fold @ print_digest
    @ [ li r1 Abi.sys_exit; ecall ])

let engine_chain_smc_prop =
  QCheck2.Test.make ~count:20
    ~name:"interp = block for SMC into chained predecessor/successor pages"
    gen_chain_program
    (fun prog ->
      let user = compile_chain prog in
      let setup = Images.plan ~heap_pages:1 ~user () in
      let native = run_native ~engine:Engine.Interp setup in
      String.length native = 16
      && native = run_native ~engine:Engine.Block setup
      && run_observed ~engine:Engine.Interp ~paging:Vm.Nested_paging setup
         = run_observed ~engine:Engine.Block ~paging:Vm.Nested_paging setup
      && run_observed ~engine:Engine.Interp ~paging:Vm.Shadow_paging setup
         = run_observed ~engine:Engine.Block ~paging:Vm.Shadow_paging setup)

(* The same random block graphs, run long enough (24 passes vs the
   promotion threshold of 16) that hot heads get promoted into
   superblock traces {e before} the later passes' patch stores land —
   randomized SMC into interior frames of formed traces.  The digest
   and full observable state only match the interpreter if severing a
   constituent kills the whole trace (no stale multi-block execution),
   and the nested block run must actually have compiled traces. *)
let engine_trace_smc_prop =
  QCheck2.Test.make ~count:15
    ~name:"interp = block for SMC into interior blocks of formed traces"
    gen_chain_program
    (fun prog ->
      let user = compile_chain ~passes:24 prog in
      let setup = Images.plan ~heap_pages:1 ~user () in
      let obs_i = run_observed ~engine:Engine.Interp ~paging:Vm.Nested_paging setup in
      let obs_b, vm = run_observed_vm ~engine:Engine.Block ~paging:Vm.Nested_paging setup in
      let traced =
        match vm.Vm.engine.Engine.cache with
        | Some c -> Trans_cache.traces_built c > 0
        | None -> false
      in
      obs_i = obs_b && traced
      && run_observed ~engine:Engine.Interp ~paging:Vm.Shadow_paging setup
         = run_observed ~engine:Engine.Block ~paging:Vm.Shadow_paging setup)

(* The random ALU/heap sweep, replayed on the block engine. *)
let engine_differential_prop =
  QCheck2.Test.make ~count:25 ~name:"block engine matches native/shadow/nested sweep"
    gen_program
    (fun prog ->
      let user = compile prog in
      let setup = Images.plan ~heap_pages:1 ~user () in
      let native = run_native setup in
      String.length native = 16
      && native = run_native ~engine:Engine.Block setup
      && native = run_virt ~engine:Engine.Block ~paging:Vm.Shadow_paging ~pv:false setup
      && native = run_virt ~engine:Engine.Block ~paging:Vm.Nested_paging ~pv:false setup)

let () =
  Alcotest.run "differential"
    [
      ( "differential",
        [
          Alcotest.test_case "fixed corpus" `Quick fixed_corpus;
          QCheck_alcotest.to_alcotest differential_prop;
        ] );
      ( "engines",
        [
          Alcotest.test_case "lockstep on all workloads" `Quick engine_lockstep;
          Alcotest.test_case "lockstep with traces on ENGINE workloads" `Quick
            engine_trace_workloads;
          Alcotest.test_case "exit sequences identical" `Quick exit_sequences;
          Alcotest.test_case "native self-modifying code" `Quick native_smc;
          Alcotest.test_case "native cache hit path" `Quick native_cache_hits;
          Alcotest.test_case "chain severed by SMC" `Quick native_chain_smc;
          Alcotest.test_case "trace severed by interior SMC" `Quick vm_trace_smc;
          QCheck_alcotest.to_alcotest engine_smc_prop;
          QCheck_alcotest.to_alcotest engine_chain_smc_prop;
          QCheck_alcotest.to_alcotest engine_trace_smc_prop;
          QCheck_alcotest.to_alcotest engine_differential_prop;
        ] );
    ]
