(* High availability: the durable snapshot store is crash-consistent at
   every power-failure offset (qcheck sweep), a rejected snapshot restore
   leaves no trace, failover is idempotent, the watchdog policies fire
   exactly as specified, the HA supervisor restarts wedged VMs from the
   last good checkpoint with zero manual recovery calls, and missed
   heartbeats drive automatic generation-fenced failover. *)

open Velum_isa
open Velum_machine
open Velum_devices
open Velum_vmm
open Velum_guests
open Asm

module Fault = Velum_util.Fault

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check64 = Alcotest.(check int64)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let make_hyp ?(frames = 2048) () = Hypervisor.create ~host:(Host.create ~frames ()) ()

let unikernel hyp ?(mem_frames = 16) name prog =
  let vm = Hypervisor.create_vm hyp ~name ~mem_frames ~entry:0L () in
  Vm.load_image vm (Asm.assemble ~origin:0L prog);
  vm

let vm_instret vm =
  Array.fold_left
    (fun acc (v : Vcpu.t) -> Int64.add acc v.Vcpu.state.Cpu.instret)
    0L vm.Vm.vcpus

let store_for ?faults ~image_bytes () =
  Store.create ~sectors:(Store.sectors_for ~image_bytes) ?faults ()

(* ---------------- store: crash consistency ---------------- *)

(* Commit one generation intact, cut the next commit at an arbitrary
   byte offset, power-cycle (remount the raw device) and recover: the
   result must be byte-identical to the previous image — the commit
   point is the last superblock byte, so no cut offset may ever yield
   the new image, a hybrid, or nothing. *)
let store_crash_sweep_prop =
  QCheck2.Test.make ~count:100
    ~name:"power failure at any commit offset recovers the previous image"
    QCheck2.Gen.(
      triple
        (string_size ~gen:char (int_range 1 30_000))
        (string_size ~gen:char (int_range 1 30_000))
        nat)
    (fun (s1, s2, off_seed) ->
      let img1 = Bytes.of_string s1 and img2 = Bytes.of_string s2 in
      let image_bytes = max (Bytes.length img1) (Bytes.length img2) in
      let store = store_for ~image_bytes () in
      (match Store.commit store img1 with
      | Store.Committed { gen = 1; _ } -> ()
      | _ -> failwith "baseline commit failed");
      let total = Store.commit_bytes store img2 in
      let off = off_seed mod total in
      (match Store.commit ~crash_at:off store img2 with
      | Store.Torn cut -> if cut <> off then failwith "cut at wrong offset"
      | Store.Committed _ -> failwith "crash_at must tear the commit");
      (* power cycle: all in-memory state is lost *)
      let store = Store.mount (Store.device store) in
      match Store.recover store with
      | Some (img, 1) -> Bytes.equal img img1
      | _ -> false)

let test_store_generations () =
  let store = store_for ~image_bytes:10_000 () in
  checkb "empty store recovers nothing" true (Store.recover store = None);
  let imgs = List.init 5 (fun i -> Bytes.make (3_000 + (i * 811)) (Char.chr (65 + i))) in
  List.iteri
    (fun i img ->
      match Store.commit store img with
      | Store.Committed { gen; _ } -> checki "generation increments" (i + 1) gen
      | Store.Torn _ -> Alcotest.fail "unexpected torn commit")
    imgs;
  (match Store.recover store with
  | Some (img, 5) -> checkb "newest image wins" true (Bytes.equal img (List.nth imgs 4))
  | _ -> Alcotest.fail "newest generation must recover");
  let store = Store.mount (Store.device store) in
  checki "generation survives remount" 5 (Store.generation store)

let test_store_torn_site () =
  let f = Fault.create ~seed:9L () in
  (* [now] for store sites is the commit ordinal: cut the second commit *)
  Fault.add_window f Fault.Store_torn ~lo:1L ~hi:1L;
  let store = store_for ~faults:f ~image_bytes:8_000 () in
  let img1 = Bytes.make 8_000 'x' and img2 = Bytes.make 8_000 'y' in
  (match Store.commit store img1 with
  | Store.Committed { gen = 1; _ } -> ()
  | _ -> Alcotest.fail "first commit must land");
  (match Store.commit store img2 with
  | Store.Torn _ -> ()
  | Store.Committed _ -> Alcotest.fail "the window must cut the second commit");
  checki "torn commit counted" 1 (Store.torn_commits store);
  checki "injected counted" 1 (Fault.injected f Fault.Store_torn);
  let store = Store.mount ~faults:f (Store.device store) in
  (match Store.recover store with
  | Some (img, 1) -> checkb "previous generation rules" true (Bytes.equal img img1)
  | _ -> Alcotest.fail "must recover generation 1")

let test_store_csum_rot () =
  let f = Fault.create ~seed:3L () in
  Fault.add_window f Fault.Store_csum ~lo:1L ~hi:1L;
  let store = store_for ~faults:f ~image_bytes:8_000 () in
  let img1 = Bytes.make 8_000 'x' and img2 = Bytes.make 8_000 'y' in
  (match Store.commit store img1 with
  | Store.Committed { gen = 1; _ } -> ()
  | _ -> Alcotest.fail "first commit must land");
  (match Store.commit store img2 with
  | Store.Committed { gen = 2; _ } -> ()
  | _ -> Alcotest.fail "rot happens after the commit lands");
  (match Store.recover store with
  | Some (img, 1) -> checkb "rot falls back a generation" true (Bytes.equal img img1)
  | _ -> Alcotest.fail "generation 1 must still recover");
  checkb "corruption observed by the scan" true
    (Fault.observed f Fault.Store_csum + Fault.observed f Fault.Store_torn >= 1)

let test_new_sites_parse () =
  match
    Fault.parse
      "seed=5,store.torn=0.25,store.csum=0.1,store.gc=0.5,store.ref@2-3,hb.loss@100-200"
  with
  | Error e -> Alcotest.fail e
  | Ok f ->
      checkb "torn prob" true (Fault.prob f Fault.Store_torn = 0.25);
      checkb "csum prob" true (Fault.prob f Fault.Store_csum = 0.1);
      checkb "gc prob" true (Fault.prob f Fault.Store_gc = 0.5);
      checkb "ref window" true (Fault.fire f Fault.Store_ref ~now:2L);
      checkb "ref outside window" false (Fault.fire f Fault.Store_ref ~now:4L);
      checkb "hb window" true (Fault.fire f Fault.Hb_loss ~now:150L);
      checkb "hb outside window" false (Fault.fire f Fault.Hb_loss ~now:250L)

(* ---------------- store: content-addressed deltas and GC ---------------- *)

(* Deterministic patterned pages: content is a pure function of the
   tag, so shared tags dedup across streams and generations. *)
let fill_page img i tag =
  Bytes.set_int64_le img (i * 4096) (Int64.of_int tag);
  for j = 8 to 4095 do
    Bytes.unsafe_set img ((i * 4096) + j)
      (Char.chr (((tag + (j * 7)) land 0x7f) + 1))
  done

(* Multi-stream fleet store under GC: cut a compaction at any byte
   offset (or let it complete), power-cycle, and every stream's newest
   generation must still restore byte-identically — GC must never
   reclaim a chunk any live manifest can reach. *)
let store_gc_live_prop =
  QCheck2.Test.make ~count:60
    ~name:"GC at any cut offset never loses a live generation"
    QCheck2.Gen.(triple (int_range 2 4) (int_range 1 3) nat)
    (fun (streams, gens, off_seed) ->
      let pages = 6 in
      let image_bytes = pages * 4096 in
      let image s g =
        let b = Bytes.create image_bytes in
        for i = 0 to pages - 1 do
          (* low pages shared by every stream of the same generation,
             high pages private to the stream *)
          let tag =
            if i < 3 then (g * 1009) + i
            else (s * 65599) + (g * 1009) + i
          in
          fill_page b i tag
        done;
        b
      in
      let store =
        Store.create
          ~sectors:(Store.fleet_sectors_for ~streams ~image_bytes)
          ()
      in
      let last = Array.make streams Bytes.empty in
      for g = 1 to gens do
        for s = 0 to streams - 1 do
          let img = image s g in
          (match Store.commit ~id:(string_of_int s) store img with
          | Store.Committed _ -> ()
          | Store.Torn _ -> failwith "commit torn without a fault plan");
          last.(s) <- img
        done
      done;
      let total = Store.gc_bytes store in
      let cut = off_seed mod (total + 1) in
      (if cut >= total then (
         match Store.gc store with
         | Store.Gc_committed _ -> ()
         | Store.Gc_torn _ -> failwith "gc torn without a fault plan")
       else
         match Store.gc ~crash_at:cut store with
         | Store.Gc_torn c when c = cut -> ()
         | _ -> failwith "crash_at must tear the compaction");
      (* power cycle: all in-memory state is lost *)
      let store = Store.mount (Store.device store) in
      let ok = ref true in
      for s = 0 to streams - 1 do
        match Store.recover ~id:(string_of_int s) store with
        | Some (img, g) ->
            if g <> gens || not (Bytes.equal img last.(s)) then ok := false
        | None -> ok := false
      done;
      !ok)

(* A chain of delta commits must reassemble the exact same bytes as a
   fresh store holding only the final image — chunk sharing is a
   storage optimisation, never a semantic one.  Half the runs remount
   the device mid-chain so the rebuilt index is on the committing
   path too. *)
let store_delta_oracle_prop =
  QCheck2.Test.make ~count:60
    ~name:"delta-chain recover equals single-commit recover"
    QCheck2.Gen.(
      quad
        (string_size ~gen:char (int_range 4096 20_000))
        (list_size (int_range 1 6)
           (list_size (int_range 1 8) (pair nat (int_range 1 255))))
        bool bool)
    (fun (base, steps, remount, grow) ->
      let image_bytes = String.length base + 4096 in
      let store = store_for ~image_bytes () in
      let img = ref (Bytes.of_string base) in
      (match Store.commit store !img with
      | Store.Committed { gen = 1; _ } -> ()
      | _ -> failwith "baseline commit failed");
      let store = ref store in
      List.iteri
        (fun i muts ->
          let next =
            if grow && i = 0 then (
              (* a generation that changes length exercises the tail chunk *)
              let b = Bytes.create (Bytes.length !img + 811) in
              Bytes.blit !img 0 b 0 (Bytes.length !img);
              b)
            else Bytes.copy !img
          in
          List.iter
            (fun (pos, v) ->
              Bytes.set next
                (pos mod Bytes.length next)
                (Char.chr v))
            muts;
          (match Store.commit !store next with
          | Store.Committed _ -> ()
          | Store.Torn _ -> failwith "chain commit torn without a fault plan");
          if remount && i mod 2 = 0 then
            store := Store.mount (Store.device !store);
          img := next)
        steps;
      let final = !img in
      let oracle = store_for ~image_bytes:(Bytes.length final) () in
      (match Store.commit oracle final with
      | Store.Committed { gen = 1; _ } -> ()
      | _ -> failwith "oracle commit failed");
      match
        (Store.recover !store, Store.recover oracle)
      with
      | Some (a, _), Some (b, _) ->
          Bytes.equal a final && Bytes.equal b final && Bytes.equal a b
      | _ -> false)

let test_store_gc_site () =
  let f = Fault.create ~seed:11L () in
  (* [now] for store sites is the successful-commit ordinal *)
  Fault.add_window f Fault.Store_gc ~lo:2L ~hi:2L;
  let store = store_for ~faults:f ~image_bytes:16_000 () in
  let img1 = Bytes.make 16_000 'x' and img2 = Bytes.make 16_000 'y' in
  (match Store.commit store img1 with
  | Store.Committed { gen = 1; _ } -> ()
  | _ -> Alcotest.fail "first commit must land");
  (match Store.commit store img2 with
  | Store.Committed { gen = 2; _ } -> ()
  | _ -> Alcotest.fail "second commit must land");
  (match Store.gc store with
  | Store.Gc_torn _ -> ()
  | Store.Gc_committed _ -> Alcotest.fail "the window must cut the compaction");
  checki "torn gc counted" 1 (Store.torn_gc store);
  checki "injected counted" 1 (Fault.injected f Fault.Store_gc);
  let store = Store.mount (Store.device store) in
  (match Store.recover store with
  | Some (img, 2) ->
      checkb "newest generation survives the torn compaction" true
        (Bytes.equal img img2)
  | _ -> Alcotest.fail "must recover generation 2")

let test_store_ref_site () =
  let f = Fault.create ~seed:21L () in
  Fault.add_window f Fault.Store_ref ~lo:1L ~hi:1L;
  let store = store_for ~faults:f ~image_bytes:16_000 () in
  let img1 = Bytes.make 16_000 'x' and img2 = Bytes.make 16_000 'y' in
  (match Store.commit store img1 with
  | Store.Committed { gen = 1; _ } -> ()
  | _ -> Alcotest.fail "first commit must land");
  (match Store.commit store img2 with
  | Store.Committed { gen = 2; _ } -> ()
  | _ -> Alcotest.fail "rot happens after the commit lands");
  checki "rot injected" 1 (Fault.injected f Fault.Store_ref);
  (* the reboot path must detect the rotted table and rebuild it from
     the live manifests instead of trusting it *)
  let store = Store.mount ~faults:f (Store.device store) in
  checki "refcount table rebuilt" 1 (Store.ref_rebuilds store);
  checkb "rot observed" true (Fault.observed f Fault.Store_ref >= 1);
  (match Store.recover store with
  | Some (img, 2) -> checkb "newest image intact" true (Bytes.equal img img2)
  | _ -> Alcotest.fail "recovery must be unaffected by refcount rot")

(* ---------------- snapshot: rejected restores leave no trace ---------------- *)

let snap_base_image =
  lazy
    (let setup = Images.plan ~heap_pages:4 ~user:(Workloads.hello ()) () in
     let hyp = make_hyp ~frames:(setup.Images.frames + 512) () in
     let vm =
       Hypervisor.create_vm hyp ~name:"h" ~mem_frames:setup.Images.frames
         ~entry:Images.entry ()
     in
     Images.load_vm vm setup;
     ignore (Hypervisor.run hyp);
     Snapshot.capture vm)

(* Flip one byte anywhere in a valid image.  Whether the restore is then
   rejected or (for flips in benign payload bytes) still succeeds, the
   host must end with exactly the frames and VM registrations it started
   with. *)
let restore_no_leak_prop =
  QCheck2.Test.make ~count:80 ~name:"bit-flipped snapshot restores leak nothing"
    QCheck2.Gen.(pair nat (int_range 0 254))
    (fun (pos_seed, flip) ->
      let image = Bytes.copy (Lazy.force snap_base_image) in
      let pos = pos_seed mod Bytes.length image in
      Bytes.set image pos
        (Char.chr (Char.code (Bytes.get image pos) lxor (1 + flip)));
      let hyp = make_hyp ~frames:4096 () in
      let used0 = Frame_alloc.used_count (Hypervisor.host hyp).Host.alloc in
      let nvms0 = List.length hyp.Hypervisor.vms in
      (match Snapshot.restore hyp image with
      | vm -> Hypervisor.remove_vm hyp vm
      | exception Failure _ -> ());
      Frame_alloc.used_count (Hypervisor.host hyp).Host.alloc = used0
      && List.length hyp.Hypervisor.vms = nvms0)

let test_truncated_restore_rejected () =
  let image = Lazy.force snap_base_image in
  let hyp = make_hyp ~frames:4096 () in
  let used0 = Frame_alloc.used_count (Hypervisor.host hyp).Host.alloc in
  let cut = Bytes.sub image 0 (Bytes.length image / 2) in
  (match Snapshot.restore hyp cut with
  | _ -> Alcotest.fail "truncated image must be rejected"
  | exception Failure _ -> ());
  checki "frames reclaimed" used0
    (Frame_alloc.used_count (Hypervisor.host hyp).Host.alloc);
  checki "no half-built VM registered" 0 (List.length hyp.Hypervisor.vms)

(* ---------------- replication: idempotent failover ---------------- *)

let test_failover_idempotent () =
  let setup =
    Images.plan ~heap_pages:32 ~user:(Workloads.dirty_loop ~pages:16 ~delay:50) ()
  in
  let primary = make_hyp ~frames:(setup.Images.frames + 512) () in
  let backup = make_hyp ~frames:(setup.Images.frames + 512) () in
  let vm =
    Hypervisor.create_vm primary ~name:"p" ~mem_frames:setup.Images.frames
      ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  ignore (Hypervisor.run primary ~budget:1_000_000L);
  let link = Link.create () in
  let session = Replicate.start ~primary ~backup ~vm ~link () in
  for _ = 1 to 3 do
    ignore (Replicate.epoch session ~run_cycles:150_000L)
  done;
  checkb "not yet failed over" true (Replicate.failed_over session = None);
  let twin1 = Replicate.failover session in
  (* the racing second invocation must return the same twin, not raise *)
  let twin2 = Replicate.failover session in
  checkb "same twin" true (twin1 == twin2);
  checkb "accessor agrees" true
    (match Replicate.failed_over session with
    | Some v -> v == twin1
    | None -> false);
  checki "failover event recorded once" 1
    (Monitor.count twin1.Vm.monitor Monitor.E_ha_failover);
  checkb "twin finishes on the backup" true
    (Hypervisor.run backup ~budget:50_000_000L = Hypervisor.Out_of_budget
    || Vm.halted twin1)

(* ---------------- watchdog policies ---------------- *)

let spin_forever = [ label "spin"; jmp "spin" ]
let wedge_now = [ wfi; halt ]

(* A stalled-but-not-halted VM next to a spinner that keeps the clock
   moving: Wd_kill must fire exactly once (the halt ends the stall
   window family for good). *)
let test_wd_kill_fires_once () =
  let hyp = make_hyp () in
  let _spin = unikernel hyp "spin" spin_forever in
  let stuck = unikernel hyp "stuck" wedge_now in
  Hypervisor.set_watchdog hyp ~budget:50_000L ~policy:Hypervisor.Wd_kill;
  ignore (Hypervisor.run hyp ~budget:2_000_000L);
  checki "fired exactly once" 1 (Hypervisor.watchdog_fired hyp);
  checki "counted on the stalled VM" 1 (Monitor.count stuck.Vm.monitor Monitor.E_watchdog);
  checkb "stalled VM halted" true (Vm.halted stuck)

(* Wd_notify restarts the window on each firing: one firing per full
   stall window, deterministically. *)
let test_wd_notify_once_per_window () =
  let fired budget =
    let hyp = make_hyp () in
    let _spin = unikernel hyp "spin" spin_forever in
    let stuck = unikernel hyp "stuck" wedge_now in
    Hypervisor.set_watchdog hyp ~budget ~policy:Hypervisor.Wd_notify;
    ignore (Hypervisor.run hyp ~budget:2_000_000L);
    checkb "still stalled, not halted" false (Vm.halted stuck);
    checki "counted on the stalled VM" (Hypervisor.watchdog_fired hyp)
      (Monitor.count stuck.Vm.monitor Monitor.E_watchdog);
    Hypervisor.watchdog_fired hyp
  in
  let n = fired 50_000L in
  checkb "fires once per elapsed window" true (n >= 2);
  checki "deterministic across identical runs" n (fired 50_000L);
  checkb "a shorter window fires at least as often" true (fired 25_000L >= n)

(* Wd_restart with no handler attached degenerates to kill. *)
let test_wd_restart_without_handler_kills () =
  let hyp = make_hyp () in
  let _spin = unikernel hyp "spin" spin_forever in
  let stuck = unikernel hyp "stuck" wedge_now in
  Hypervisor.set_watchdog hyp ~budget:50_000L ~policy:Hypervisor.Wd_restart;
  ignore (Hypervisor.run hyp ~budget:2_000_000L);
  checki "fired exactly once" 1 (Hypervisor.watchdog_fired hyp);
  checkb "stalled VM halted" true (Vm.halted stuck)

(* ---------------- HA supervisor ---------------- *)

let spin_n_then_halt n =
  [ li r2 (Int64.of_int n); label "spin"; addi r2 r2 (-1L); bne r2 r0 "spin"; halt ]

(* The guest spins, then wedges itself: every restore replays into the
   same wedge — the crash-loop shape. *)
let spin_then_wedge n =
  [ li r2 (Int64.of_int n); label "spin"; addi r2 r2 (-1L); bne r2 r0 "spin"; wfi; halt ]

let reference_instret prog =
  let hyp = make_hyp () in
  let vm = unikernel hyp "ref" prog in
  (match Hypervisor.run hyp with
  | Hypervisor.All_halted -> ()
  | _ -> Alcotest.fail "reference run did not halt");
  vm_instret vm

let supervised ?faults ?(checkpoint_every = 100_000L) ?(wd_budget = 30_000L)
    ?(backoff_base = 50_000L) ?max_restarts prog =
  let hyp = make_hyp () in
  let vm = unikernel hyp "work" prog in
  let probe = Snapshot.capture vm in
  let store =
    store_for ?faults ~image_bytes:(Snapshot.size_bytes probe) ()
  in
  let sup =
    Ha.create ~hyp ~store ~vm ~checkpoint_every ~wd_budget ~backoff_base
      ?max_restarts ()
  in
  (hyp, sup)

(* An externally injected stall: the supervisor must notice, destroy the
   wedged VM, restore the last good checkpoint, and the guest must then
   finish with the exact instruction count of an undisturbed run —
   without a single manual recovery call. *)
let test_ha_restart_recovers () =
  let prog = spin_n_then_halt 100_000 in
  let base = reference_instret prog in
  let _hyp, sup = supervised prog in
  (* incremental commits pause the guest for the delta only, so keep the
     budget well short of the ~200k instructions the program needs *)
  (match Ha.run sup ~budget:150_000L with
  | Hypervisor.Out_of_budget -> ()
  | _ -> Alcotest.fail "guest should still be running");
  checkb "checkpoints committed" true ((Ha.stats sup).Ha.checkpoints >= 1);
  Ha.inject_stall (Ha.vm sup);
  (match Ha.run sup ~budget:50_000_000L with
  | Hypervisor.All_halted -> ()
  | _ -> Alcotest.fail "supervised guest must finish after the restart");
  let s = Ha.stats sup in
  checki "exactly one restart" 1 s.Ha.restarts;
  checkb "not degraded" false s.Ha.degraded;
  checki "restart recorded on the restored VM" 1
    (Monitor.count (Ha.vm sup).Vm.monitor Monitor.E_ha_restart);
  checkb "MTTR accounted" true (s.Ha.mttr_events = 1 && s.Ha.mttr_total > 0L);
  check64 "lockstep with the undisturbed run" base (vm_instret (Ha.vm sup))

(* A guest that wedges from its own state replays into the wedge on
   every restore: the crash-loop budget must bound the futility and
   degrade the VM to halted, with the Monitor event to show for it. *)
let test_ha_crash_loop_degrades () =
  let _hyp, sup = supervised ~checkpoint_every:30_000L (spin_then_wedge 50_000) in
  (match Ha.run sup ~budget:100_000_000L with
  | Hypervisor.All_halted -> ()
  | o ->
      Alcotest.failf "degraded VM should read as halted, got %s"
        (match o with
        | Hypervisor.Out_of_budget -> "out-of-budget"
        | Hypervisor.Idle_deadlock -> "idle-deadlock"
        | _ -> "?"));
  let s = Ha.stats sup in
  checkb "degraded" true s.Ha.degraded;
  checki "restart budget exhausted" 3 s.Ha.restarts;
  checki "degradation recorded" 1
    (Monitor.count (Ha.vm sup).Vm.monitor Monitor.E_ha_degraded);
  checkb "kept registered for post-mortem" true
    (Array.length (Ha.vm sup).Vm.vcpus > 0)

(* End-to-end adversarial run: torn checkpoint commits and latent rot
   from a seeded plan, plus an injected stall — recovery must be fully
   automatic (the test only ever calls Ha.run) and land on the exact
   instruction count of the fault-free run. *)
let test_ha_adversarial_end_to_end () =
  let prog = spin_n_then_halt 100_000 in
  let base = reference_instret prog in
  let f = Fault.create ~seed:7L () in
  Fault.set_prob f Fault.Store_torn 0.3;
  Fault.set_prob f Fault.Store_csum 0.15;
  let _hyp, sup = supervised ~faults:f prog in
  ignore (Ha.run sup ~budget:300_000L);
  Ha.inject_stall (Ha.vm sup);
  (match Ha.run sup ~budget:100_000_000L with
  | Hypervisor.All_halted -> ()
  | _ -> Alcotest.fail "adversarial run must still finish");
  let s = Ha.stats sup in
  checkb "not degraded" false s.Ha.degraded;
  checkb "the plan actually bit" true
    (s.Ha.torn_checkpoints >= 1 || Fault.injected f Fault.Store_csum >= 1);
  check64 "lockstep with the fault-free run" base (vm_instret (Ha.vm sup))

(* ---------------- heartbeat failover ---------------- *)

let failover_setup () =
  let setup =
    Images.plan ~heap_pages:32 ~user:(Workloads.dirty_loop ~pages:16 ~delay:50) ()
  in
  let primary = make_hyp ~frames:(setup.Images.frames + 512) () in
  let backup = make_hyp ~frames:(setup.Images.frames + 512) () in
  let vm =
    Hypervisor.create_vm primary ~name:"prot" ~mem_frames:setup.Images.frames
      ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  ignore (Hypervisor.run primary ~budget:1_000_000L);
  (primary, backup, vm, Link.create ())

let test_failover_healthy_run () =
  let primary, backup, vm, link = failover_setup () in
  let fo = Ha.Failover.create ~primary ~backup ~vm ~link () in
  let survivor, s = Ha.Failover.run fo ~epoch_cycles:150_000L ~epochs:12 in
  checkb "no failover" true (s.Ha.Failover.failover_at = None);
  checki "generation unchanged" 1 s.Ha.Failover.generation;
  checkb "survivor is the primary instance" true (survivor == vm);
  checkb "heartbeats flowed" true (s.Ha.Failover.hb_seen >= 10);
  checkb "primary still allowed to run" true (Ha.Failover.primary_may_run fo)

(* Host death: heartbeats stop, the backup counts misses and activates
   the twin on its own — zero manual failover calls. *)
let test_failover_on_primary_death () =
  let primary, backup, vm, link = failover_setup () in
  let fo =
    Ha.Failover.create ~primary ~backup ~vm ~link ~primary_dies_at:1_500_000L ()
  in
  let survivor, s = Ha.Failover.run fo ~epoch_cycles:150_000L ~epochs:20 in
  checkb "failed over" true (s.Ha.Failover.failover_at <> None);
  checki "generation bumped once" 2 s.Ha.Failover.generation;
  checkb "survivor is the twin" true (survivor != vm);
  checki "failover event recorded" 1
    (Monitor.count survivor.Vm.monitor Monitor.E_ha_failover);
  checkb "twin ran on the backup" true (s.Ha.Failover.backup_epochs >= 1);
  (match s.Ha.Failover.mttr with
  | Some m -> checkb "MTTR covers the miss window" true (m > 0L)
  | None -> Alcotest.fail "MTTR must be measured");
  checkb "dead primary never fenced (it never came back)" false s.Ha.Failover.fenced

(* Split-brain: every heartbeat is eaten but the primary is alive.  The
   backup takes over; the stale primary must fence itself on the first
   TAKEOVER it hears and refuse to run from then on. *)
let test_failover_fences_stale_primary () =
  let primary, backup, vm, link = failover_setup () in
  let f = Fault.create ~seed:11L () in
  Fault.set_prob f Fault.Hb_loss 1.0;
  let fo = Ha.Failover.create ~faults:f ~primary ~backup ~vm ~link () in
  let survivor, s = Ha.Failover.run fo ~epoch_cycles:150_000L ~epochs:16 in
  checkb "failed over" true (s.Ha.Failover.failover_at <> None);
  checki "generation bumped" 2 s.Ha.Failover.generation;
  checkb "every heartbeat was eaten" true
    (s.Ha.Failover.hb_sent = 0 && s.Ha.Failover.hb_lost >= 3);
  checkb "losses observed at detection" true (Fault.observed f Fault.Hb_loss >= 1);
  checkb "stale primary fenced" true s.Ha.Failover.fenced;
  checkb "fenced primary may not run" false (Ha.Failover.primary_may_run fo);
  checkb "split-brain window was bounded" true
    (s.Ha.Failover.split_brain_epochs >= 1
    && s.Ha.Failover.split_brain_epochs <= 3);
  checkb "survivor is the twin" true (survivor != vm);
  checki "primary's instance destroyed by the fence" 0
    (List.length primary.Hypervisor.vms)

(* Same seed, same schedule: the whole failover drama is deterministic. *)
let failover_deterministic_prop =
  QCheck2.Test.make ~count:4 ~name:"seeded heartbeat-loss failover is deterministic"
    QCheck2.Gen.(int_range 0 999)
    (fun seed ->
      let run () =
        let primary, backup, vm, link = failover_setup () in
        let f = Fault.create ~seed:(Int64.of_int seed) () in
        Fault.set_prob f Fault.Hb_loss 0.4;
        let fo = Ha.Failover.create ~faults:f ~primary ~backup ~vm ~link () in
        let survivor, s = Ha.Failover.run fo ~epoch_cycles:120_000L ~epochs:14 in
        let open Ha.Failover in
        ( s.hb_sent, s.hb_lost, s.hb_seen, s.generation, s.fenced, s.failover_at,
          s.mttr, s.primary_epochs, s.backup_epochs, vm_instret survivor )
      in
      run () = run ())

let () =
  Alcotest.run "ha"
    [
      ( "store",
        Alcotest.test_case "generations alternate and survive remount" `Quick
          test_store_generations
        :: Alcotest.test_case "store.torn window tears a commit" `Quick
             test_store_torn_site
        :: Alcotest.test_case "store.csum rot falls back a generation" `Quick
             test_store_csum_rot
        :: Alcotest.test_case "new fault sites parse" `Quick test_new_sites_parse
        :: Alcotest.test_case "store.gc window tears a compaction" `Quick
             test_store_gc_site
        :: Alcotest.test_case "store.ref rot is detected and rebuilt" `Quick
             test_store_ref_site
        :: qsuite
             [
               store_crash_sweep_prop; store_gc_live_prop;
               store_delta_oracle_prop;
             ] );
      ( "snapshot",
        Alcotest.test_case "truncated image rejected without trace" `Quick
          test_truncated_restore_rejected
        :: qsuite [ restore_no_leak_prop ] );
      ( "replication",
        [ Alcotest.test_case "failover is idempotent" `Quick test_failover_idempotent ] );
      ( "watchdog",
        [
          Alcotest.test_case "kill fires exactly once" `Quick test_wd_kill_fires_once;
          Alcotest.test_case "notify fires once per stall window" `Quick
            test_wd_notify_once_per_window;
          Alcotest.test_case "restart without handler kills" `Quick
            test_wd_restart_without_handler_kills;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "restart recovers to lockstep" `Quick
            test_ha_restart_recovers;
          Alcotest.test_case "crash loop degrades to halted" `Quick
            test_ha_crash_loop_degrades;
          Alcotest.test_case "adversarial plan, zero manual recovery" `Quick
            test_ha_adversarial_end_to_end;
        ] );
      ( "failover",
        Alcotest.test_case "healthy run never fails over" `Quick
          test_failover_healthy_run
        :: Alcotest.test_case "primary death drives automatic failover" `Quick
             test_failover_on_primary_death
        :: Alcotest.test_case "stale primary is generation-fenced" `Quick
             test_failover_fences_stale_primary
        :: qsuite [ failover_deterministic_prop ] );
    ]
