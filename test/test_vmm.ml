(* Unit tests for velum_vmm: frame allocator, p2m, host swap, monitor,
   vCPUs, the shadow pager, nested-walk classification, hypercalls,
   schedulers, memory management, placement and snapshots. *)

open Velum_isa
open Velum_machine
open Velum_vmm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check64 = Alcotest.(check int64)

(* ---------------- Frame_alloc ---------------- *)

let test_alloc_basics () =
  let mem = Phys_mem.create ~frames:32 in
  let fa = Frame_alloc.create ~mem ~reserved:4 () in
  checki "total" 28 (Frame_alloc.total fa);
  checki "free" 28 (Frame_alloc.free_count fa);
  let p = Frame_alloc.alloc_exn fa in
  checkb "not reserved" true (p >= 4L);
  checki "refcount" 1 (Frame_alloc.refcount fa p);
  checki "used" 1 (Frame_alloc.used_count fa);
  checkb "freed" true (Frame_alloc.decr_ref fa p);
  checki "free again" 28 (Frame_alloc.free_count fa)

let test_alloc_zeroed () =
  let mem = Phys_mem.create ~frames:8 in
  let fa = Frame_alloc.create ~mem ~reserved:0 () in
  let p = Frame_alloc.alloc_exn fa in
  Phys_mem.frame_fill mem ~ppn:p 'x';
  ignore (Frame_alloc.decr_ref fa p);
  (* the same frame comes back zeroed *)
  let p2 = Frame_alloc.alloc_exn fa in
  checkb "zeroed" true (Phys_mem.read mem (Int64.shift_left p2 12) Instr.W64 = 0L)

let test_alloc_refcounting () =
  let mem = Phys_mem.create ~frames:8 in
  let fa = Frame_alloc.create ~mem ~reserved:0 () in
  let p = Frame_alloc.alloc_exn fa in
  Frame_alloc.incr_ref fa p;
  checki "rc 2" 2 (Frame_alloc.refcount fa p);
  checkb "not freed" false (Frame_alloc.decr_ref fa p);
  checkb "freed" true (Frame_alloc.decr_ref fa p);
  Alcotest.check_raises "double free"
    (Invalid_argument "Frame_alloc.decr_ref: frame is free") (fun () ->
      ignore (Frame_alloc.decr_ref fa p))

let test_alloc_exhaustion () =
  let mem = Phys_mem.create ~frames:4 in
  let fa = Frame_alloc.create ~mem ~reserved:2 () in
  ignore (Frame_alloc.alloc_exn fa);
  ignore (Frame_alloc.alloc_exn fa);
  checkb "exhausted" true (Frame_alloc.alloc fa = None)

(* Model-based property: the allocator's refcounts and free counts match
   a reference map under random alloc/incr/decr sequences. *)
let prop_alloc_model =
  QCheck2.Test.make ~count:300 ~name:"frame_alloc matches reference model"
    QCheck2.Gen.(list_size (int_range 1 60) (int_range 0 2))
    (fun ops ->
      let mem = Phys_mem.create ~frames:24 in
      let fa = Frame_alloc.create ~mem ~reserved:2 () in
      let model : (int64, int) Hashtbl.t = Hashtbl.create 16 in
      let held () = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
      let ok = ref true in
      List.iteri
        (fun i op ->
          match op with
          | 0 -> (
              match Frame_alloc.alloc fa with
              | Some p ->
                  if Hashtbl.mem model p then ok := false;
                  Hashtbl.replace model p 1
              | None -> if Hashtbl.length model < Frame_alloc.total fa then ok := false)
          | 1 -> (
              match held () with
              | [] -> ()
              | l ->
                  let p = List.nth l (i mod List.length l) in
                  Frame_alloc.incr_ref fa p;
                  Hashtbl.replace model p (Hashtbl.find model p + 1))
          | _ -> (
              match held () with
              | [] -> ()
              | l ->
                  let p = List.nth l (i mod List.length l) in
                  let rc = Hashtbl.find model p in
                  let freed = Frame_alloc.decr_ref fa p in
                  if rc = 1 then begin
                    if not freed then ok := false;
                    Hashtbl.remove model p
                  end
                  else begin
                    if freed then ok := false;
                    Hashtbl.replace model p (rc - 1)
                  end))
        ops;
      !ok
      && Hashtbl.fold (fun p rc acc -> acc && Frame_alloc.refcount fa p = rc) model true
      && Frame_alloc.used_count fa = Hashtbl.length model)

(* ---------------- P2m ---------------- *)

let test_p2m_basics () =
  let p2m = P2m.create ~gframes:8 in
  checki "gframes" 8 (P2m.gframes p2m);
  checkb "absent" true (P2m.get p2m 3L = P2m.Absent);
  P2m.set p2m 3L (P2m.Present { hpa_ppn = 99L; writable = true; cow = false });
  checki "one present" 1 (P2m.present_count p2m);
  checkb "range" true (P2m.in_range p2m 7L);
  checkb "out of range" false (P2m.in_range p2m 8L);
  Alcotest.check_raises "get oob" (Invalid_argument "P2m: gfn 8 out of range") (fun () ->
      ignore (P2m.get p2m 8L))

let test_p2m_clear_writable () =
  let p2m = P2m.create ~gframes:4 in
  P2m.set p2m 0L (P2m.Present { hpa_ppn = 1L; writable = true; cow = false });
  P2m.set p2m 1L (P2m.Present { hpa_ppn = 2L; writable = false; cow = false });
  P2m.set p2m 2L P2m.Ballooned;
  checki "changed" 1 (P2m.clear_writable_all p2m);
  (match P2m.get p2m 0L with
  | P2m.Present { writable = false; _ } -> ()
  | _ -> Alcotest.fail "not protected");
  checki "fold present" 2
    (P2m.fold_present p2m ~init:0 ~f:(fun acc ~gfn:_ ~hpa_ppn:_ -> acc + 1))

(* ---------------- Host swap ---------------- *)

let test_host_swap_roundtrip () =
  let host = Host.create ~frames:64 ~swap_slots:4 () in
  let p = Frame_alloc.alloc_exn host.Host.alloc in
  Phys_mem.frame_fill host.Host.mem ~ppn:p 'q';
  let slot = Host.swap_out host ~ppn:p in
  Phys_mem.frame_fill host.Host.mem ~ppn:p '\000';
  Host.swap_in host ~slot ~ppn:p;
  check64 "restored" (Int64.of_int (Char.code 'q'))
    (Phys_mem.read host.Host.mem (Int64.shift_left p 12) Instr.W8);
  checki "slot freed" 4 (Host.free_swap_slots host);
  Alcotest.check_raises "empty slot" (Invalid_argument "Host.swap_in: empty slot")
    (fun () -> Host.swap_in host ~slot ~ppn:p)

let test_host_swap_fill_drain () =
  let slots = 8 in
  let host = Host.create ~frames:64 ~swap_slots:slots () in
  let p = Frame_alloc.alloc_exn host.Host.alloc in
  checki "all free initially" slots (Host.free_swap_slots host);
  let taken = Array.init slots (fun _ -> Host.swap_out host ~ppn:p) in
  checki "drained" 0 (Host.free_swap_slots host);
  (* the free list and the slot array must agree that nothing is left *)
  (try
     ignore (Host.swap_out host ~ppn:p);
     Alcotest.fail "swap_out past capacity should fail"
   with Failure _ -> ());
  Array.iter (fun slot -> Host.swap_in host ~slot ~ppn:p) taken;
  checki "refilled" slots (Host.free_swap_slots host);
  (* free list is LIFO: the last slot released is handed out first *)
  let again = Host.swap_out host ~ppn:p in
  checki "LIFO reuse" taken.(slots - 1) again;
  checki "one taken" (slots - 1) (Host.free_swap_slots host)

(* ---------------- Monitor ---------------- *)

let test_monitor_counts () =
  let m = Monitor.create () in
  Monitor.bump m Monitor.E_mmio;
  Monitor.bump m Monitor.E_mmio;
  Monitor.add_cycles m Monitor.E_mmio 100;
  checki "count" 2 (Monitor.count m Monitor.E_mmio);
  check64 "cycles" 100L (Monitor.cycles m Monitor.E_mmio);
  checki "total" 2 (Monitor.total_exits m);
  Monitor.irq_injected m;
  checki "irqs" 1 (Monitor.irq_injections m);
  Monitor.reset m;
  checki "reset" 0 (Monitor.total_exits m)

let test_monitor_kind_index () =
  (* kind_index must be a bijection onto 0..nkinds-1 that agrees with
     the position of each kind in all_exit_kinds *)
  checki "nkinds" (List.length Monitor.all_exit_kinds) Monitor.nkinds;
  List.iteri
    (fun i k -> checki (Monitor.exit_kind_name k) i (Monitor.kind_index k))
    Monitor.all_exit_kinds

let test_monitor_bump_all_kinds () =
  let m = Monitor.create () in
  (* bump each kind a distinct number of times; count must agree *)
  List.iteri
    (fun i k ->
      for _ = 1 to i + 1 do
        Monitor.bump m k
      done;
      Monitor.add_cycles m k (10 * (i + 1)))
    Monitor.all_exit_kinds;
  List.iteri
    (fun i k ->
      checki (Monitor.exit_kind_name k) (i + 1) (Monitor.count m k);
      check64 (Monitor.exit_kind_name k) (Int64.of_int (10 * (i + 1)))
        (Monitor.cycles m k))
    Monitor.all_exit_kinds;
  let n = Monitor.nkinds in
  checki "total" (n * (n + 1) / 2) (Monitor.total_exits m)

let test_monitor_reset_everything () =
  let m = Monitor.create () in
  List.iter
    (fun k ->
      Monitor.bump m k;
      Monitor.add_cycles m k 7)
    Monitor.all_exit_kinds;
  Monitor.irq_injected m;
  Monitor.set_gauge m "tlb.hits" 99;
  Monitor.reset m;
  List.iter
    (fun k ->
      checki (Monitor.exit_kind_name k) 0 (Monitor.count m k);
      check64 (Monitor.exit_kind_name k) 0L (Monitor.cycles m k))
    Monitor.all_exit_kinds;
  checki "total" 0 (Monitor.total_exits m);
  checki "irqs" 0 (Monitor.irq_injections m);
  Alcotest.(check (list (pair string int))) "gauges" [] (Monitor.gauges m)

(* ---------------- Vcpu ---------------- *)

let test_vcpu_lifecycle () =
  let v = Vcpu.create ~id:1 ~vm_id:0 ~entry:0x1000L () in
  checkb "runnable" true (Vcpu.is_runnable v);
  check64 "entry" 0x1000L v.Vcpu.state.Cpu.pc;
  Vcpu.block v;
  checkb "blocked" false (Vcpu.is_runnable v);
  Vcpu.wake v ~boost:true;
  checkb "woken" true (Vcpu.is_runnable v);
  checkb "boosted" true v.Vcpu.boosted;
  v.Vcpu.runstate <- Vcpu.Halted;
  Vcpu.wake v ~boost:false;
  checkb "halted stays halted" false (Vcpu.is_runnable v)

(* ---------------- VM-level memory paths ---------------- *)

let make_vm ?(paging = Vm.Shadow_paging) ?(mem_frames = 64) () =
  let host = Host.create ~frames:512 () in
  let vm =
    Vm.create ~host ~id:0 ~name:"unit" ~mem_frames ~paging ~entry:0L ()
  in
  (host, vm)

let test_vm_gpa_accessors () =
  let _, vm = make_vm () in
  checkb "write" true (Vm.write_gpa_u64 vm 0x1008L 0xDEADL);
  Alcotest.(check (option int64)) "read back" (Some 0xDEADL) (Vm.read_gpa_u64 vm 0x1008L);
  Alcotest.(check (option int64)) "misaligned" None (Vm.read_gpa_u64 vm 0x1001L);
  (* cross-page byte string *)
  let s = Bytes.of_string (String.make 6000 'r') in
  checkb "bytes write" true (Vm.write_gpa_bytes vm 0x0FFCL s);
  (match Vm.read_gpa_bytes vm 0x0FFCL 6000 with
  | Some b -> checkb "bytes read" true (Bytes.equal b s)
  | None -> Alcotest.fail "read failed");
  checkb "oob" true (Vm.read_gpa_u64 vm 0x40_0000L = None)

let test_vm_dirty_logging () =
  let _, vm = make_vm () in
  Vm.start_dirty_logging vm;
  checki "clean" 0 (Vm.dirty_count vm);
  ignore (Vm.write_gpa_u64 vm 0x3000L 1L);
  checkb "marked" true (Vm.is_dirty vm 3L);
  checki "one page" 1 (Vm.dirty_count vm);
  Alcotest.(check (list int64)) "collect" [ 3L ] (Vm.collect_dirty vm ~clear:true);
  checki "cleared" 0 (Vm.dirty_count vm);
  Vm.stop_dirty_logging vm;
  ignore (Vm.write_gpa_u64 vm 0x4000L 1L);
  checki "not logging" 0 (Vm.dirty_count vm)

let test_vm_balloon () =
  let host, vm = make_vm () in
  let free0 = Frame_alloc.free_count host.Host.alloc in
  checkb "balloon out" true (Vm.balloon_out vm 10L);
  checki "freed to host" (free0 + 1) (Frame_alloc.free_count host.Host.alloc);
  checkb "read fails" true (Vm.read_gpa_u64 vm (Int64.shift_left 10L 12) = None);
  checkb "balloon out twice fails" false (Vm.balloon_out vm 10L);
  checkb "balloon in" true (Vm.balloon_in vm 10L);
  Alcotest.(check (option int64)) "zeroed page back" (Some 0L)
    (Vm.read_gpa_u64 vm (Int64.shift_left 10L 12))

let test_vm_destroy_returns_frames () =
  let host = Host.create ~frames:512 () in
  let free0 = Frame_alloc.free_count host.Host.alloc in
  let vm = Vm.create ~host ~id:1 ~name:"tmp" ~mem_frames:64 ~entry:0L () in
  checkb "frames taken" true (Frame_alloc.free_count host.Host.alloc = free0 - 64);
  Vm.destroy vm;
  checki "frames back" free0 (Frame_alloc.free_count host.Host.alloc)

(* ---------------- Shadow pager (synthetic guest tables) ---------------- *)

(* Build guest page tables by hand inside the VM's memory, point a vCPU's
   virtual satp at them, and drive Shadow.handle_fault/translate. *)
let make_shadow_world () =
  let host, vm = make_vm ~paging:Vm.Shadow_paging ~mem_frames:64 () in
  let shadow = Option.get vm.Vm.shadow in
  (* guest PT root at gfn 8; map GVA 0x4000 -> gfn 5 (user rw) *)
  let root_gfn = 8L in
  let gpt_alloc = ref 9L in
  let alloc () =
    let g = !gpt_alloc in
    gpt_alloc := Int64.add g 1L;
    g
  in
  let acc =
    {
      Page_table.read_pte = (fun gpa -> Option.value (Vm.read_gpa_u64 vm gpa) ~default:0L);
      write_pte = (fun gpa v -> ignore (Vm.write_gpa_u64 vm gpa v));
    }
  in
  (host, vm, shadow, root_gfn, acc, alloc)

let user_rw = { Pte.r = true; w = true; x = false; u = true }

let test_shadow_fill_and_translate () =
  let _, vm, shadow, root_gfn, acc, alloc = make_shadow_world () in
  Page_table.map acc ~alloc ~root_ppn:root_gfn ~va:0x4000L (Pte.leaf ~ppn:5L user_rw);
  (* fault-fill a load *)
  (match Shadow.handle_fault shadow ~root_gfn ~access:Arch.Load ~user:true ~va:0x4008L with
  | Shadow.Filled _ -> ()
  | _ -> Alcotest.fail "expected fill");
  checki "fills" 1 (Shadow.fills shadow);
  checkb "root paired" true (Shadow.shadow_root shadow ~root_gfn <> None);
  checkb "pt pages protected" true (Shadow.is_pt_gfn shadow root_gfn);
  (* the shadow now translates loads without faults *)
  let tlb = Tlb.create ~size:8 in
  (match Shadow.translate shadow ~root_gfn ~tlb ~access:Arch.Load ~user:true 0x4008L with
  | Ok { Cpu.pa; _ } ->
      (* pa must land in the host frame backing gfn 5 *)
      let hpa = Option.get (Vm.resolve_read vm 5L) in
      check64 "host frame" hpa (Int64.shift_right_logical pa 12)
  | Error _ -> Alcotest.fail "translate failed");
  (* stores still fault (guest D bit not yet set)… *)
  (match Shadow.translate shadow ~root_gfn ~tlb ~access:Arch.Store ~user:true 0x4008L with
  | Error `Page -> ()
  | _ -> Alcotest.fail "store should fault for D-bit");
  (* …until the pager upgrades them *)
  (match Shadow.handle_fault shadow ~root_gfn ~access:Arch.Store ~user:true ~va:0x4008L with
  | Shadow.Filled _ -> ()
  | _ -> Alcotest.fail "store fill");
  (match Shadow.translate shadow ~root_gfn ~tlb ~access:Arch.Store ~user:true 0x4008L with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "store should now hit");
  (* and the guest leaf has A+D set *)
  match Page_table.walk acc ~root_ppn:root_gfn 0x4000L with
  | Ok { pte; _ } ->
      checkb "A" true (Pte.accessed pte);
      checkb "D" true (Pte.dirty pte)
  | Error _ -> Alcotest.fail "guest walk"

let test_shadow_guest_fault () =
  let _, _, shadow, root_gfn, acc, alloc = make_shadow_world () in
  Page_table.map acc ~alloc ~root_ppn:root_gfn ~va:0x4000L (Pte.leaf ~ppn:5L user_rw);
  (* unmapped VA *)
  (match Shadow.handle_fault shadow ~root_gfn ~access:Arch.Load ~user:true ~va:0x9000L with
  | Shadow.Guest_fault -> ()
  | _ -> Alcotest.fail "expected guest fault");
  (* supervisor-only page touched from user *)
  Page_table.map acc ~alloc ~root_ppn:root_gfn ~va:0x5000L
    (Pte.leaf ~ppn:6L { Pte.r = true; w = true; x = false; u = false });
  match Shadow.handle_fault shadow ~root_gfn ~access:Arch.Load ~user:true ~va:0x5000L with
  | Shadow.Guest_fault -> ()
  | _ -> Alcotest.fail "expected permission fault"

let test_shadow_pt_write_detection () =
  let _, _, shadow, root_gfn, acc, alloc = make_shadow_world () in
  Page_table.map acc ~alloc ~root_ppn:root_gfn ~va:0x4000L (Pte.leaf ~ppn:5L user_rw);
  ignore (Shadow.handle_fault shadow ~root_gfn ~access:Arch.Load ~user:true ~va:0x4008L);
  (* map the leaf-table gfn itself into the guest address space and store
     to it: the pager must flag a PT write rather than filling *)
  let leaf_table_gfn = 9L (* first gpt_alloc after root: level-1 table *) in
  ignore leaf_table_gfn;
  (* find a gfn that is a pt page (not the root, any) *)
  let pt_gfn = ref None in
  for g = 8 to 12 do
    if Shadow.is_pt_gfn shadow (Int64.of_int g) then pt_gfn := Some (Int64.of_int g)
  done;
  let pt_gfn = Option.get !pt_gfn in
  Page_table.map acc ~alloc ~root_ppn:root_gfn ~va:0x8000L (Pte.leaf ~ppn:pt_gfn user_rw);
  match Shadow.handle_fault shadow ~root_gfn ~access:Arch.Store ~user:true ~va:0x8010L with
  | Shadow.Pt_write { gpa } ->
      check64 "gpa in that frame" pt_gfn (Int64.shift_right_logical gpa 12)
  | _ -> Alcotest.fail "expected Pt_write"

let test_shadow_emulate_pt_write_invalidates () =
  let _, vm, shadow, root_gfn, acc, alloc = make_shadow_world () in
  Page_table.map acc ~alloc ~root_ppn:root_gfn ~va:0x4000L (Pte.leaf ~ppn:5L user_rw);
  ignore (Shadow.handle_fault shadow ~root_gfn ~access:Arch.Load ~user:true ~va:0x4000L);
  let tlb = Tlb.create ~size:8 in
  (match Shadow.translate shadow ~root_gfn ~tlb ~access:Arch.Load ~user:true 0x4000L with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "should hit");
  (* locate the guest leaf PTE and remap the VA to gfn 6 via the pager *)
  (match Page_table.walk acc ~root_ppn:root_gfn 0x4000L with
  | Ok { pte_addr; _ } ->
      checkb "applied" true
        (Shadow.emulate_pt_write shadow ~gpa:pte_addr ~value:(Pte.leaf ~ppn:6L user_rw))
  | Error _ -> Alcotest.fail "guest walk");
  ignore (Shadow.take_tlb_flush shadow);
  Tlb.flush tlb;
  (* the old shadow entry is gone: next access faults, then refills to
     the new frame *)
  (match Shadow.translate shadow ~root_gfn ~tlb ~access:Arch.Load ~user:true 0x4000L with
  | Error `Page -> ()
  | _ -> Alcotest.fail "stale shadow entry survived");
  ignore (Shadow.handle_fault shadow ~root_gfn ~access:Arch.Load ~user:true ~va:0x4000L);
  match Shadow.translate shadow ~root_gfn ~tlb ~access:Arch.Load ~user:true 0x4000L with
  | Ok { Cpu.pa; _ } ->
      let hpa6 = Option.get (Vm.resolve_read vm 6L) in
      check64 "remapped" hpa6 (Int64.shift_right_logical pa 12)
  | Error _ -> Alcotest.fail "refill failed"

let test_shadow_invalidate_gfn () =
  let _, _, shadow, root_gfn, acc, alloc = make_shadow_world () in
  Page_table.map acc ~alloc ~root_ppn:root_gfn ~va:0x4000L (Pte.leaf ~ppn:5L user_rw);
  ignore (Shadow.handle_fault shadow ~root_gfn ~access:Arch.Load ~user:true ~va:0x4000L);
  Shadow.invalidate_gfn shadow 5L;
  let tlb = Tlb.create ~size:8 in
  match Shadow.translate shadow ~root_gfn ~tlb ~access:Arch.Load ~user:true 0x4000L with
  | Error `Page -> ()
  | _ -> Alcotest.fail "mapping should be revoked"

let test_shadow_mmio_detection () =
  let _, _, shadow, root_gfn, acc, alloc = make_shadow_world () in
  (* guest maps the UART page *)
  Page_table.map acc ~alloc ~root_ppn:root_gfn ~va:0x6000L
    (Pte.leaf ~ppn:(Int64.shift_right_logical 0x4000_0000L 12) user_rw);
  match Shadow.handle_fault shadow ~root_gfn ~access:Arch.Load ~user:true ~va:0x6008L with
  | Shadow.Target_mmio { gpa } -> check64 "device gpa" 0x4000_0008L gpa
  | _ -> Alcotest.fail "expected mmio"

let test_shadow_flush_all_frees () =
  let host, _, shadow, root_gfn, acc, alloc = make_shadow_world () in
  Page_table.map acc ~alloc ~root_ppn:root_gfn ~va:0x4000L (Pte.leaf ~ppn:5L user_rw);
  ignore (Shadow.handle_fault shadow ~root_gfn ~access:Arch.Load ~user:true ~va:0x4000L);
  let used = Frame_alloc.used_count host.Host.alloc in
  let tables = Shadow.table_frames shadow in
  checkb "has tables" true (tables > 0);
  Shadow.flush_all shadow;
  checki "frames released" (used - tables) (Frame_alloc.used_count host.Host.alloc);
  checki "no tables" 0 (Shadow.table_frames shadow)

(* ---------------- Nested classification ---------------- *)

let make_nested_world () =
  let host, vm = make_vm ~paging:Vm.Nested_paging ~mem_frames:64 () in
  let nested = Option.get vm.Vm.nested in
  let acc =
    {
      Page_table.read_pte = (fun gpa -> Option.value (Vm.read_gpa_u64 vm gpa) ~default:0L);
      write_pte = (fun gpa v -> ignore (Vm.write_gpa_u64 vm gpa v));
    }
  in
  let gpt_alloc = ref 9L in
  let alloc () =
    let g = !gpt_alloc in
    gpt_alloc := Int64.add g 1L;
    g
  in
  (host, vm, nested, acc, alloc)

let test_nested_translate_and_ad () =
  let _, vm, nested, acc, alloc = make_nested_world () in
  let root_gfn = 8L in
  Page_table.map acc ~alloc ~root_ppn:root_gfn ~va:0x4000L (Pte.leaf ~ppn:5L user_rw);
  let satp = Arch.satp_make ~root_ppn:root_gfn in
  let tlb = Tlb.create ~size:8 in
  (match Nested.translate nested ~guest_satp:satp ~tlb ~access:Arch.Store ~user:true 0x4010L with
  | Ok { Cpu.pa; xlate_cycles; _ } ->
      let hpa = Option.get (Vm.resolve_read vm 5L) in
      check64 "frame" hpa (Int64.shift_right_logical pa 12);
      (* 2-D walk: (3+1)*3 + 3 = 15 refs *)
      checkb "2d cost" true (xlate_cycles >= 15 * Cost_model.default.Cost_model.pt_ref)
  | Error _ -> Alcotest.fail "translate failed");
  (* A/D set in the guest tables by the walker *)
  (match Page_table.walk acc ~root_ppn:root_gfn 0x4000L with
  | Ok { pte; _ } ->
      checkb "A" true (Pte.accessed pte);
      checkb "D" true (Pte.dirty pte)
  | Error _ -> Alcotest.fail "guest walk");
  (* TLB hit on retry *)
  match Nested.translate nested ~guest_satp:satp ~tlb ~access:Arch.Load ~user:true 0x4000L with
  | Ok { Cpu.xlate_cycles = 0; _ } -> ()
  | _ -> Alcotest.fail "expected TLB hit"

let test_nested_classify () =
  let _, vm, nested, acc, alloc = make_nested_world () in
  let root_gfn = 8L in
  Page_table.map acc ~alloc ~root_ppn:root_gfn ~va:0x4000L (Pte.leaf ~ppn:5L user_rw);
  let satp = Arch.satp_make ~root_ppn:root_gfn in
  (* guest-level: unmapped va *)
  (match Nested.classify_fault nested ~guest_satp:satp ~access:Arch.Load ~user:true ~va:0x9000L with
  | Nested.Guest_level -> ()
  | _ -> Alcotest.fail "expected guest level");
  (* host-level: balloon the data frame out *)
  ignore (Vm.balloon_out vm 5L);
  (* ballooned = unbacked: the data page target is now gone *)
  (match Nested.classify_fault nested ~guest_satp:satp ~access:Arch.Load ~user:true ~va:0x4000L with
  | Nested.Host_level { gfn = 5L } -> ()
  | _ -> Alcotest.fail "expected host level on ballooned frame");
  (* mmio *)
  Page_table.map acc ~alloc ~root_ppn:root_gfn ~va:0x6000L
    (Pte.leaf ~ppn:(Int64.shift_right_logical 0x4000_0000L 12) user_rw);
  (match Nested.classify_fault nested ~guest_satp:satp ~access:Arch.Load ~user:true ~va:0x6000L with
  | Nested.Mmio { gpa = 0x4000_0000L } -> ()
  | _ -> Alcotest.fail "expected mmio");
  (* bad gpa: guest maps beyond its memory *)
  Page_table.map acc ~alloc ~root_ppn:root_gfn ~va:0x7000L (Pte.leaf ~ppn:1000L user_rw);
  match Nested.classify_fault nested ~guest_satp:satp ~access:Arch.Load ~user:true ~va:0x7000L with
  | Nested.Bad _ -> ()
  | _ -> Alcotest.fail "expected bad gpa"

let test_nested_write_protection () =
  let _, vm, nested, acc, alloc = make_nested_world () in
  let root_gfn = 8L in
  Page_table.map acc ~alloc ~root_ppn:root_gfn ~va:0x4000L (Pte.leaf ~ppn:5L user_rw);
  let satp = Arch.satp_make ~root_ppn:root_gfn in
  let tlb = Tlb.create ~size:8 in
  Vm.start_dirty_logging vm;
  (* loads fine, stores host-fault *)
  (match Nested.translate nested ~guest_satp:satp ~tlb ~access:Arch.Load ~user:true 0x4000L with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "load should pass");
  match Nested.translate nested ~guest_satp:satp ~tlb ~access:Arch.Store ~user:true 0x4000L with
  | Error `Page -> ()
  | _ -> Alcotest.fail "store should host-fault under logging"

(* ---------------- Schedulers ---------------- *)

let drive_scheduler sched vcpus ~rounds =
  (* simulate pick/charge cycles; every vcpu always runnable *)
  let shares = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace shares v.Vcpu.id 0) vcpus;
  List.iter (fun v -> sched.Scheduler.enqueue v) vcpus;
  let now = ref 0L in
  for _ = 1 to rounds do
    match sched.Scheduler.pick ~now:!now with
    | Some (v, slice) ->
        now := Int64.add !now (Int64.of_int slice);
        sched.Scheduler.charge v ~used:slice ~now:!now;
        Hashtbl.replace shares v.Vcpu.id (Hashtbl.find shares v.Vcpu.id + slice);
        sched.Scheduler.requeue v
    | None -> Alcotest.fail "scheduler went idle with runnable vcpus"
  done;
  List.map (fun v -> Hashtbl.find shares v.Vcpu.id) vcpus

let test_rr_equal_shares () =
  let vcpus = List.init 3 (fun i -> Vcpu.create ~id:i ~vm_id:i ~entry:0L ()) in
  let shares = drive_scheduler (Round_robin.create ()) vcpus ~rounds:300 in
  match shares with
  | [ a; b; c ] ->
      checkb "equal" true (a = b && b = c)
  | _ -> Alcotest.fail "expected 3"

let test_credit_weighted_shares () =
  let vcpus = List.init 3 (fun i -> Vcpu.create ~id:i ~vm_id:i ~entry:0L ()) in
  List.iteri (fun i v -> v.Vcpu.weight <- 256 * (i + 1)) vcpus;
  let shares = drive_scheduler (Credit.create ()) vcpus ~rounds:3000 in
  (match shares with
  | [ a; b; c ] ->
      let fa = float_of_int a and fb = float_of_int b and fc = float_of_int c in
      checkb "monotone in weight" true (fa < fb && fb < fc);
      checkb "ratio roughly 1:2:3" true
        (fb /. fa > 1.5 && fb /. fa < 2.5 && fc /. fa > 2.2 && fc /. fa < 3.8)
  | _ -> Alcotest.fail "expected 3")

let test_credit_boost_priority () =
  let sched = Credit.create () in
  let a = Vcpu.create ~id:0 ~vm_id:0 ~entry:0L () in
  let b = Vcpu.create ~id:1 ~vm_id:1 ~entry:0L () in
  sched.Scheduler.enqueue a;
  (* b wakes from I/O with boost *)
  b.Vcpu.runstate <- Vcpu.Blocked;
  Vcpu.wake b ~boost:true;
  sched.Scheduler.wake b;
  (match sched.Scheduler.pick ~now:0L with
  | Some (v, _) -> checki "boosted first" 1 v.Vcpu.id
  | None -> Alcotest.fail "no pick");
  checkb "boost consumed" false b.Vcpu.boosted

let test_bvt_min_vruntime_first () =
  let sched = Bvt.create () in
  let a = Vcpu.create ~id:0 ~vm_id:0 ~entry:0L () in
  let b = Vcpu.create ~id:1 ~vm_id:1 ~entry:0L () in
  a.Vcpu.vruntime <- 100.0;
  b.Vcpu.vruntime <- 50.0;
  sched.Scheduler.enqueue a;
  sched.Scheduler.enqueue b;
  (match sched.Scheduler.pick ~now:0L with
  | Some (v, _) -> checki "min vruntime" 1 v.Vcpu.id
  | None -> Alcotest.fail "no pick");
  (* waker clamped to min *)
  let c = Vcpu.create ~id:2 ~vm_id:2 ~entry:0L () in
  c.Vcpu.vruntime <- 0.0;
  c.Vcpu.runstate <- Vcpu.Blocked;
  Vcpu.wake c ~boost:false;
  sched.Scheduler.wake c;
  checkb "clamped" true (c.Vcpu.vruntime >= 50.0)

let test_scheduler_remove () =
  let sched = Round_robin.create () in
  let a = Vcpu.create ~id:0 ~vm_id:0 ~entry:0L () in
  sched.Scheduler.enqueue a;
  sched.Scheduler.remove a;
  checkb "empty after remove" true (sched.Scheduler.pick ~now:0L = None)

(* ---------------- Mem_mgr ---------------- *)

let test_share_pass_merges_and_preserves () =
  let host = Host.create ~frames:512 () in
  let vm_a = Vm.create ~host ~id:0 ~name:"a" ~mem_frames:16 ~entry:0L () in
  let vm_b = Vm.create ~host ~id:1 ~name:"b" ~mem_frames:16 ~entry:0L () in
  (* identical content in both VMs at gfn 3, distinct at gfn 4 *)
  ignore (Vm.write_gpa_u64 vm_a 0x3000L 0xAAAAL);
  ignore (Vm.write_gpa_u64 vm_b 0x3000L 0xAAAAL);
  ignore (Vm.write_gpa_u64 vm_a 0x4000L 0x1111L);
  ignore (Vm.write_gpa_u64 vm_b 0x4000L 0x2222L);
  let stats = Mem_mgr.share_pass [ vm_a; vm_b ] in
  checkb "something shared" true (stats.Mem_mgr.shared > 0);
  checkb "frames freed" true (stats.Mem_mgr.freed > 0);
  (* both VMs still read their own values *)
  Alcotest.(check (option int64)) "a keeps shared" (Some 0xAAAAL) (Vm.read_gpa_u64 vm_a 0x3000L);
  Alcotest.(check (option int64)) "b keeps shared" (Some 0xAAAAL) (Vm.read_gpa_u64 vm_b 0x3000L);
  Alcotest.(check (option int64)) "a keeps private" (Some 0x1111L) (Vm.read_gpa_u64 vm_a 0x4000L);
  Alcotest.(check (option int64)) "b keeps private" (Some 0x2222L) (Vm.read_gpa_u64 vm_b 0x4000L);
  (* COW break: writing through one VM must not affect the other *)
  ignore (Vm.write_gpa_u64 vm_a 0x3000L 0xBBBBL);
  Alcotest.(check (option int64)) "a updated" (Some 0xBBBBL) (Vm.read_gpa_u64 vm_a 0x3000L);
  Alcotest.(check (option int64)) "b unchanged" (Some 0xAAAAL) (Vm.read_gpa_u64 vm_b 0x3000L);
  checkb "cow break counted" true (Monitor.count vm_a.Vm.monitor Monitor.E_cow_break > 0)

let test_share_pass_idempotent () =
  let host = Host.create ~frames:512 () in
  let vm_a = Vm.create ~host ~id:0 ~name:"a" ~mem_frames:8 ~entry:0L () in
  let vm_b = Vm.create ~host ~id:1 ~name:"b" ~mem_frames:8 ~entry:0L () in
  let s1 = Mem_mgr.share_pass [ vm_a; vm_b ] in
  let used = Frame_alloc.used_count host.Host.alloc in
  let s2 = Mem_mgr.share_pass [ vm_a; vm_b ] in
  checkb "first pass shares" true (s1.Mem_mgr.freed > 0);
  checki "second pass is a no-op" 0 s2.Mem_mgr.freed;
  checki "usage stable" used (Frame_alloc.used_count host.Host.alloc)

let test_saved_frames_accounting () =
  let host = Host.create ~frames:512 () in
  let vms =
    List.init 3 (fun i -> Vm.create ~host ~id:i ~name:"z" ~mem_frames:4 ~entry:0L ())
  in
  ignore (Mem_mgr.share_pass vms);
  (* 12 identical zero frames collapse to 1: 11 saved *)
  checki "saved" 11 (Mem_mgr.saved_frames vms);
  checki "shared entries" 12 (Mem_mgr.shared_frames vms)

let test_evict_and_fault_back () =
  let host = Host.create ~frames:512 () in
  let vm = Vm.create ~host ~id:0 ~name:"e" ~mem_frames:8 ~entry:0L () in
  ignore (Vm.write_gpa_u64 vm 0x2000L 0x77L);
  let evicted = Mem_mgr.evict vm ~n:3 in
  checki "evicted" 3 evicted;
  checkb "some swapped" true
    (P2m.count vm.Vm.p2m ~f:(function P2m.Swapped _ -> true | _ -> false) = 3);
  (* reads transparently swap back in *)
  Alcotest.(check (option int64)) "content preserved" (Some 0x77L)
    (Vm.read_gpa_u64 vm 0x2000L)

(* ---------------- Grant tables ---------------- *)

let make_grant_world () =
  let host = Host.create ~frames:512 () in
  let a = Vm.create ~host ~id:0 ~name:"grantor" ~mem_frames:16 ~entry:0L () in
  let b = Vm.create ~host ~id:1 ~name:"grantee" ~mem_frames:16 ~entry:0L () in
  (* carve a free slot in b *)
  ignore (Vm.balloon_out b 8L);
  (host, a, b, Grant.create ())

let ok_or_fail = function Ok v -> v | Error m -> Alcotest.fail m

let test_grant_share_and_write () =
  let host, a, b, g = make_grant_world () in
  ignore (Vm.write_gpa_u64 a 0x3000L 0xFEEDL);
  let r = ok_or_fail (Grant.offer g ~from_vm:a ~gfn:3L ~writable:true) in
  ok_or_fail (Grant.map g ~grant:r ~into_vm:b ~at_gfn:8L);
  (* the grantee reads the grantor's data through its own gfn *)
  Alcotest.(check (option int64)) "b sees a's data" (Some 0xFEEDL)
    (Vm.read_gpa_u64 b 0x8000L);
  (* writes are visible both ways (read-write grant) *)
  ignore (Vm.write_gpa_u64 b 0x8008L 0xBEEFL);
  Alcotest.(check (option int64)) "a sees b's write" (Some 0xBEEFL)
    (Vm.read_gpa_u64 a 0x3008L);
  (* refcount protects the frame *)
  (match P2m.get a.Vm.p2m 3L with
  | P2m.Present { hpa_ppn; _ } ->
      checki "rc 2 while mapped" 2 (Frame_alloc.refcount host.Host.alloc hpa_ppn)
  | _ -> Alcotest.fail "grantor lost the frame");
  ok_or_fail (Grant.unmap g ~grant:r);
  ok_or_fail (Grant.revoke g ~grant:r);
  checki "table drained" 0 (Grant.active_grants g)

let test_grant_readonly_blocks_stores () =
  let _, a, b, g = make_grant_world () in
  let r = ok_or_fail (Grant.offer g ~from_vm:a ~gfn:3L ~writable:false) in
  ok_or_fail (Grant.map g ~grant:r ~into_vm:b ~at_gfn:8L);
  (* host-side writes resolve_write: on a read-only grant the p2m entry
     is non-writable, non-cow — resolve_write would upgrade it, so check
     the p2m state the hardware enforces against guest stores instead *)
  (match P2m.get b.Vm.p2m 8L with
  | P2m.Present { writable = false; cow = false; _ } -> ()
  | _ -> Alcotest.fail "expected a write-protected mapping");
  ok_or_fail (Grant.unmap g ~grant:r)

let test_grant_error_paths () =
  let _, a, b, g = make_grant_world () in
  let r = ok_or_fail (Grant.offer g ~from_vm:a ~gfn:3L ~writable:true) in
  checkb "double offer rejected" true
    (Grant.offer g ~from_vm:a ~gfn:3L ~writable:false = Error "gfn already offered");
  checkb "self map rejected" true
    (Grant.map g ~grant:r ~into_vm:a ~at_gfn:8L
    = Error "cannot map a grant into its owner");
  checkb "occupied slot rejected" true
    (Grant.map g ~grant:r ~into_vm:b ~at_gfn:2L = Error "slot not free");
  ok_or_fail (Grant.map g ~grant:r ~into_vm:b ~at_gfn:8L);
  checkb "revoke while mapped rejected" true
    (Grant.revoke g ~grant:r = Error "grant still mapped");
  checkb "mapped" true (Grant.is_mapped g ~grant:r);
  ok_or_fail (Grant.unmap g ~grant:r);
  ok_or_fail (Grant.revoke g ~grant:r)

let test_grant_survives_grantor_destroy () =
  let host, a, b, g = make_grant_world () in
  ignore (Vm.write_gpa_u64 a 0x3000L 0x1234L);
  let r = ok_or_fail (Grant.offer g ~from_vm:a ~gfn:3L ~writable:true) in
  ok_or_fail (Grant.map g ~grant:r ~into_vm:b ~at_gfn:8L);
  Vm.destroy a;
  (* the grantee's mapping still works: the refcount kept the frame *)
  Alcotest.(check (option int64)) "data survives" (Some 0x1234L)
    (Vm.read_gpa_u64 b 0x8000L);
  ignore host

let test_grant_excluded_from_sharing () =
  let _, a, b, g = make_grant_world () in
  ignore (Vm.write_gpa_u64 a 0x3000L 0x77L);
  ignore (Vm.write_gpa_u64 b 0x2000L 0x77L) (* same content elsewhere *);
  let r = ok_or_fail (Grant.offer g ~from_vm:a ~gfn:3L ~writable:true) in
  ok_or_fail (Grant.map g ~grant:r ~into_vm:b ~at_gfn:8L);
  ignore (Mem_mgr.share_pass [ a; b ]);
  (* the granted frame stayed plain (not COW) in both p2ms *)
  (match (P2m.get a.Vm.p2m 3L, P2m.get b.Vm.p2m 8L) with
  | P2m.Present { cow = false; _ }, P2m.Present { cow = false; _ } -> ()
  | _ -> Alcotest.fail "granted frame was merged");
  (* writes still propagate *)
  ignore (Vm.write_gpa_u64 a 0x3010L 0x99L);
  Alcotest.(check (option int64)) "still shared" (Some 0x99L)
    (Vm.read_gpa_u64 b 0x8010L)

(* ---------------- Placement ---------------- *)

let test_ffd_packs () =
  let spec = Placement.default_host in
  let reqs =
    List.init 8 (fun i ->
        { Placement.vm_name = Printf.sprintf "vm%d" i; cpu_units = 200; mem_mb = 4096 })
  in
  let plan = Placement.first_fit_decreasing spec reqs in
  (* 8 cores*100/200 = 4 cpu-fit; 16384/4096 = 4 mem-fit → 4 VMs/host *)
  checki "hosts" 2 plan.Placement.hosts_used;
  checkb "ratio" true (abs_float (Placement.consolidation_ratio plan -. 4.0) < 0.01);
  checki "all placed" 8 (List.length plan.Placement.assignments)

let test_ffd_rejects_oversized () =
  let spec = Placement.default_host in
  Alcotest.check_raises "too big" (Invalid_argument "Placement: whale exceeds a whole host")
    (fun () ->
      ignore
        (Placement.first_fit_decreasing spec
           [ { Placement.vm_name = "whale"; cpu_units = 10_000; mem_mb = 100 } ]))

let test_cost_savings_positive () =
  let spec = Placement.default_host in
  let reqs =
    List.init 10 (fun i ->
        { Placement.vm_name = Printf.sprintf "s%d" i; cpu_units = 100; mem_mb = 2048 })
  in
  let plan = Placement.first_fit_decreasing spec reqs in
  let r = Placement.cost_savings spec reqs plan () in
  checkb "hosts reduced" true (r.Placement.consolidated_hosts < r.Placement.unconsolidated_hosts);
  checkb "power reduced" true (r.Placement.watts_after < r.Placement.watts_before);
  checkb "euros saved" true (r.Placement.annual_euro_saved > 0.0);
  checkb "per-server band" true
    (r.Placement.euro_saved_per_displaced_server > 100.0
    && r.Placement.euro_saved_per_displaced_server < 500.0)

(* ---------------- Snapshot error paths ---------------- *)

let test_snapshot_bad_magic () =
  let host = Host.create ~frames:512 () in
  let hyp = Hypervisor.create ~host () in
  Alcotest.check_raises "bad magic" (Failure "Snapshot: bad magic") (fun () ->
      ignore (Snapshot.restore hyp (Bytes.make 64 '\000')))

let test_snapshot_truncated () =
  let host = Host.create ~frames:512 () in
  let hyp = Hypervisor.create ~host () in
  let vm =
    Hypervisor.create_vm hyp ~name:"s" ~mem_frames:8 ~entry:0L ()
  in
  let img = Snapshot.capture vm in
  let cut = Bytes.sub img 0 (Bytes.length img / 2) in
  checkb "raises on truncation" true
    (try
       ignore (Snapshot.restore hyp cut);
       false
     with Failure _ -> true)

let test_live_snapshot_release () =
  let host = Host.create ~frames:512 () in
  let hyp = Hypervisor.create ~host () in
  let vm = Hypervisor.create_vm hyp ~name:"l" ~mem_frames:8 ~entry:0L () in
  ignore vm;
  let snap = Snapshot.capture_live vm in
  checki "pages" 8 (Snapshot.live_pages snap);
  Snapshot.release_live snap;
  checkb "restore after release fails" true
    (try
       ignore (Snapshot.restore_live hyp snap);
       false
     with Failure _ -> true)

(* Snapshot round-trip property: random guest memory contents survive
   capture/restore byte for byte. *)
let prop_snapshot_roundtrip =
  QCheck2.Test.make ~count:30 ~name:"snapshot preserves random memory"
    QCheck2.Gen.(list_size (int_range 1 20) (pair (int_range 0 15) ui64))
    (fun writes ->
      let host = Host.create ~frames:512 () in
      let hyp = Hypervisor.create ~host () in
      let vm = Hypervisor.create_vm hyp ~name:"prop" ~mem_frames:16 ~entry:0L () in
      List.iter
        (fun (gfn, v) ->
          ignore (Vm.write_gpa_u64 vm (Int64.shift_left (Int64.of_int gfn) 12) v))
        writes;
      let image = Snapshot.capture vm in
      let restored = Snapshot.restore hyp image in
      List.for_all
        (fun (gfn, _) ->
          let gpa = Int64.shift_left (Int64.of_int gfn) 12 in
          Vm.read_gpa_u64 vm gpa = Vm.read_gpa_u64 restored gpa)
        writes)

let test_snapshot_with_balloon_and_swap () =
  let host = Host.create ~frames:512 () in
  let hyp = Hypervisor.create ~host () in
  let vm = Hypervisor.create_vm hyp ~name:"mix" ~mem_frames:16 ~entry:0L () in
  ignore (Vm.write_gpa_u64 vm 0x2000L 0xCAFEL);
  ignore (Vm.balloon_out vm 9L);
  ignore (Mem_mgr.evict vm ~n:4);
  let image = Snapshot.capture vm in
  let restored = Snapshot.restore hyp image in
  Alcotest.(check (option int64)) "data preserved" (Some 0xCAFEL)
    (Vm.read_gpa_u64 restored 0x2000L);
  checkb "balloon preserved" true
    (match P2m.get restored.Vm.p2m 9L with P2m.Ballooned -> true | _ -> false);
  (* swapped pages were pulled in and serialized as data *)
  checki "no swapped entries in the restore" 0
    (P2m.count restored.Vm.p2m ~f:(function P2m.Swapped _ -> true | _ -> false))

let test_snapshot_restore_out_of_frames () =
  let host = Host.create ~frames:128 () in
  let hyp = Hypervisor.create ~host () in
  let vm = Hypervisor.create_vm hyp ~name:"big" ~mem_frames:80 ~entry:0L () in
  let image = Snapshot.capture vm in
  (* not enough room for a second copy *)
  checkb "restore fails cleanly" true
    (try
       ignore (Snapshot.restore hyp image);
       false
     with Failure _ -> true)

(* ---------------- Hypercall dispatch (via a real VM) ---------------- *)

let test_hypercall_console_and_ids () =
  let host = Host.create ~frames:512 () in
  let vm = Vm.create ~host ~id:7 ~name:"hc" ~mem_frames:16 ~pv:Vm.full_pv ~entry:0L () in
  let s = vm.Vm.vcpus.(0).Vcpu.state in
  Cpu.set_reg s 1 Hypercall.hc_console_putc;
  Cpu.set_reg s 2 (Int64.of_int (Char.code 'Z'));
  ignore (Hypercall.dispatch vm ~vcpu_idx:0 ~now:0L);
  Alcotest.(check string) "console" "Z" (Vm.console_output vm);
  check64 "success" 0L (Cpu.get_reg s 1);
  check64 "pc advanced" 8L s.Cpu.pc;
  Cpu.set_reg s 1 Hypercall.hc_vm_id;
  ignore (Hypercall.dispatch vm ~vcpu_idx:0 ~now:0L);
  check64 "vm id" 7L (Cpu.get_reg s 1);
  Cpu.set_reg s 1 999L;
  ignore (Hypercall.dispatch vm ~vcpu_idx:0 ~now:0L);
  check64 "unknown errors" (-1L) (Cpu.get_reg s 1)

let test_hypercall_console_write () =
  let host = Host.create ~frames:512 () in
  let vm = Vm.create ~host ~id:0 ~name:"hc" ~mem_frames:16 ~pv:Vm.full_pv ~entry:0L () in
  ignore (Vm.write_gpa_bytes vm 0x2000L (Bytes.of_string "ping"));
  let s = vm.Vm.vcpus.(0).Vcpu.state in
  Cpu.set_reg s 1 Hypercall.hc_console_write;
  Cpu.set_reg s 2 0x2000L;
  Cpu.set_reg s 3 4L;
  ignore (Hypercall.dispatch vm ~vcpu_idx:0 ~now:0L);
  Alcotest.(check string) "console" "ping" (Vm.console_output vm)

let test_hypercall_balloon () =
  let host = Host.create ~frames:512 () in
  let vm = Vm.create ~host ~id:0 ~name:"hc" ~mem_frames:16 ~pv:Vm.full_pv ~entry:0L () in
  let s = vm.Vm.vcpus.(0).Vcpu.state in
  Cpu.set_reg s 1 Hypercall.hc_balloon_give;
  Cpu.set_reg s 2 5L;
  ignore (Hypercall.dispatch vm ~vcpu_idx:0 ~now:0L);
  check64 "ok" 0L (Cpu.get_reg s 1);
  checki "ballooned" 1 vm.Vm.balloon_pages;
  Cpu.set_reg s 1 Hypercall.hc_balloon_want;
  Cpu.set_reg s 2 5L;
  ignore (Hypercall.dispatch vm ~vcpu_idx:0 ~now:0L);
  checki "returned" 0 vm.Vm.balloon_pages

let () =
  Alcotest.run "vmm"
    [
      ( "frame_alloc",
        [
          Alcotest.test_case "basics" `Quick test_alloc_basics;
          Alcotest.test_case "zeroed" `Quick test_alloc_zeroed;
          Alcotest.test_case "refcounting" `Quick test_alloc_refcounting;
          Alcotest.test_case "exhaustion" `Quick test_alloc_exhaustion;
          QCheck_alcotest.to_alcotest prop_alloc_model;
        ] );
      ( "p2m",
        [
          Alcotest.test_case "basics" `Quick test_p2m_basics;
          Alcotest.test_case "clear writable" `Quick test_p2m_clear_writable;
        ] );
      ( "host",
        [
          Alcotest.test_case "swap roundtrip" `Quick test_host_swap_roundtrip;
          Alcotest.test_case "swap fill/drain" `Quick test_host_swap_fill_drain;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "counts" `Quick test_monitor_counts;
          Alcotest.test_case "kind_index alignment" `Quick test_monitor_kind_index;
          Alcotest.test_case "bump all kinds" `Quick test_monitor_bump_all_kinds;
          Alcotest.test_case "reset everything" `Quick test_monitor_reset_everything;
        ] );
      ("vcpu", [ Alcotest.test_case "lifecycle" `Quick test_vcpu_lifecycle ]);
      ( "vm",
        [
          Alcotest.test_case "gpa accessors" `Quick test_vm_gpa_accessors;
          Alcotest.test_case "dirty logging" `Quick test_vm_dirty_logging;
          Alcotest.test_case "balloon" `Quick test_vm_balloon;
          Alcotest.test_case "destroy returns frames" `Quick test_vm_destroy_returns_frames;
        ] );
      ( "shadow",
        [
          Alcotest.test_case "fill and translate" `Quick test_shadow_fill_and_translate;
          Alcotest.test_case "guest fault" `Quick test_shadow_guest_fault;
          Alcotest.test_case "pt write detection" `Quick test_shadow_pt_write_detection;
          Alcotest.test_case "pt write invalidates" `Quick
            test_shadow_emulate_pt_write_invalidates;
          Alcotest.test_case "invalidate gfn" `Quick test_shadow_invalidate_gfn;
          Alcotest.test_case "mmio detection" `Quick test_shadow_mmio_detection;
          Alcotest.test_case "flush all frees" `Quick test_shadow_flush_all_frees;
        ] );
      ( "nested",
        [
          Alcotest.test_case "translate and a/d" `Quick test_nested_translate_and_ad;
          Alcotest.test_case "classify" `Quick test_nested_classify;
          Alcotest.test_case "write protection" `Quick test_nested_write_protection;
        ] );
      ( "schedulers",
        [
          Alcotest.test_case "rr equal shares" `Quick test_rr_equal_shares;
          Alcotest.test_case "credit weighted" `Quick test_credit_weighted_shares;
          Alcotest.test_case "credit boost" `Quick test_credit_boost_priority;
          Alcotest.test_case "bvt ordering" `Quick test_bvt_min_vruntime_first;
          Alcotest.test_case "remove" `Quick test_scheduler_remove;
        ] );
      ( "mem_mgr",
        [
          Alcotest.test_case "share merges and preserves" `Quick
            test_share_pass_merges_and_preserves;
          Alcotest.test_case "share idempotent" `Quick test_share_pass_idempotent;
          Alcotest.test_case "saved accounting" `Quick test_saved_frames_accounting;
          Alcotest.test_case "evict and fault back" `Quick test_evict_and_fault_back;
        ] );
      ( "grant",
        [
          Alcotest.test_case "share and write" `Quick test_grant_share_and_write;
          Alcotest.test_case "readonly" `Quick test_grant_readonly_blocks_stores;
          Alcotest.test_case "error paths" `Quick test_grant_error_paths;
          Alcotest.test_case "survives grantor destroy" `Quick
            test_grant_survives_grantor_destroy;
          Alcotest.test_case "excluded from sharing" `Quick
            test_grant_excluded_from_sharing;
        ] );
      ( "placement",
        [
          Alcotest.test_case "ffd packs" `Quick test_ffd_packs;
          Alcotest.test_case "rejects oversized" `Quick test_ffd_rejects_oversized;
          Alcotest.test_case "cost savings" `Quick test_cost_savings_positive;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "bad magic" `Quick test_snapshot_bad_magic;
          Alcotest.test_case "truncated" `Quick test_snapshot_truncated;
          Alcotest.test_case "live release" `Quick test_live_snapshot_release;
          QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
          Alcotest.test_case "balloon+swap state" `Quick test_snapshot_with_balloon_and_swap;
          Alcotest.test_case "restore out of frames" `Quick
            test_snapshot_restore_out_of_frames;
        ] );
      ( "hypercall",
        [
          Alcotest.test_case "console and ids" `Quick test_hypercall_console_and_ids;
          Alcotest.test_case "console write" `Quick test_hypercall_console_write;
          Alcotest.test_case "balloon" `Quick test_hypercall_balloon;
        ] );
    ]
