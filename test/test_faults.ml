(* Fault injection and recovery: the link fault plan is exact and
   deterministic (qcheck over random seeds and probabilities), lossy
   migration converges to a state bit-identical to the fault-free run,
   a dead link aborts with a clean rollback, and replication fails over
   to the last *completed* checkpoint whatever cycle the link dies at. *)

open Velum_machine
open Velum_devices
open Velum_vmm
open Velum_guests

module Fault = Velum_util.Fault

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let check64 = Alcotest.(check int64)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* --- link: conservation and FIFO order with faults off --- *)

(* Random payloads on a random send schedule (including back-to-back
   sends at the same cycle): with no fault plan the link must deliver
   every frame exactly once, unmodified, in send order. *)
let link_conservation_prop =
  QCheck2.Test.make ~count:60 ~name:"link conserves frames in order (faults off)"
    QCheck2.Gen.(
      list_size (int_range 1 60)
        (pair (string_size ~gen:printable (int_range 1 40)) (int_range 0 3000)))
    (fun frames ->
      let link = Link.create () in
      let now = ref 0L in
      let last_arrival = ref 0L in
      List.iter
        (fun (payload, gap) ->
          now := Int64.add !now (Int64.of_int gap);
          last_arrival := Link.send link ~from:`A ~now:!now ~payload)
        frames;
      let got = Link.poll link ~at:`B ~now:(Int64.add !last_arrival 1L) in
      got = List.map fst frames && Link.in_flight link = 0)

(* --- link: losses and corruptions match the injected counters --- *)

(* Distinct repeated-byte payloads: a single bit flip can never turn one
   valid payload into another, so delivered frames classify exactly as
   intact or corrupted.  Deliveries must then satisfy
     delivered = sent - injected(Drop)
     corrupted = injected(Corrupt)
   for any seed and any drop/corrupt probabilities. *)
let link_loss_counts_prop =
  QCheck2.Test.make ~count:60 ~name:"deliveries = sent - drops; corruptions exact"
    QCheck2.Gen.(triple (int_range 0 1000) (int_range 0 30) (int_range 0 30))
    (fun (seed, drop_pct, corrupt_pct) ->
      let n = 120 in
      let link = Link.create () in
      let f = Fault.create ~seed:(Int64.of_int seed) () in
      Fault.set_prob f Fault.Drop (float_of_int drop_pct /. 100.0);
      Fault.set_prob f Fault.Corrupt (float_of_int corrupt_pct /. 100.0);
      Link.set_faults link f;
      let sent = Hashtbl.create 64 in
      for i = 0 to n - 1 do
        let payload = String.make 8 (Char.chr i) in
        Hashtbl.replace sent payload ();
        ignore (Link.send link ~from:`A ~now:(Int64.of_int (i * 5000)) ~payload)
      done;
      let got = Link.poll link ~at:`B ~now:Int64.max_int in
      let intact, corrupted =
        List.fold_left
          (fun (ok, bad) p ->
            if Hashtbl.mem sent p then (ok + 1, bad) else (ok, bad + 1))
          (0, 0) got
      in
      List.length got = n - Fault.injected f Fault.Drop
      && corrupted = Fault.injected f Fault.Corrupt
      && intact = n - Fault.injected f Fault.Drop - Fault.injected f Fault.Corrupt)

let test_partition_window () =
  let link = Link.create () in
  let f = Fault.create () in
  Fault.add_window f Fault.Partition ~lo:5_000L ~hi:10_000L;
  Link.set_faults link f;
  ignore (Link.send link ~from:`A ~now:6_000L ~payload:"swallowed");
  let arr = Link.send link ~from:`A ~now:20_000L ~payload:"through" in
  let got = Link.poll link ~at:`B ~now:arr in
  checkb "only the post-window frame arrives" true (got = [ "through" ]);
  checki "partition hit counted" 1 (Fault.injected f Fault.Partition)

let test_fault_parse () =
  (match Fault.parse "seed=7,drop=0.1,blk=0.05,partition@100-200" with
  | Error e -> Alcotest.fail e
  | Ok f ->
      checkb "active" true (Fault.active f);
      checkb "drop prob" true (Fault.prob f Fault.Drop = 0.1);
      checkb "blk prob" true (Fault.prob f Fault.Blk_transient = 0.05);
      checkb "in window" true (Fault.fire f Fault.Partition ~now:150L);
      checkb "out of window" false (Fault.fire f Fault.Partition ~now:250L));
  match Fault.parse "bogus=1" with
  | Ok _ -> Alcotest.fail "bogus site accepted"
  | Error _ -> ()

(* --- migration over a lossy link --- *)

let vm_instret vm =
  Array.fold_left
    (fun acc (v : Vcpu.t) -> Int64.add acc v.Vcpu.state.Cpu.instret)
    0L vm.Vm.vcpus

let mig_setup () =
  Images.plan ~heap_pages:64
    ~user:(Workloads.memwalk ~pages:32 ~iters:5000 ~write:true) ()

(* Boot the guest partway, then migrate under [faults] and run whichever
   copy survives to completion.  Returns the final (output, instret)
   plus the migration result. *)
let migrate_under faults =
  let setup = mig_setup () in
  let host_b = Host.create ~frames:(setup.Images.frames + 512) () in
  let src = Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) () in
  let dst = Hypervisor.create ~host:host_b () in
  let vm =
    Hypervisor.create_vm src ~name:"m" ~mem_frames:setup.Images.frames
      ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  ignore (Hypervisor.run src ~budget:1_000_000L);
  let link = Link.create () in
  Link.set_faults link faults;
  let used_before = Frame_alloc.used_count host_b.Host.alloc in
  let twin, r = Migrate.precopy ~src ~dst ~vm ~link ~max_rounds:12 ~stop_threshold:8 () in
  let hyp = if r.Migrate.aborted then src else dst in
  (match Hypervisor.run hyp with
  | Hypervisor.All_halted -> ()
  | _ -> Alcotest.fail "guest did not halt after migration");
  let output =
    if r.Migrate.aborted then Vm.console_output twin
    else Vm.console_output vm ^ Vm.console_output twin
  in
  let dst_reclaimed = Frame_alloc.used_count host_b.Host.alloc = used_before in
  (r, output, vm_instret twin, dst_reclaimed)

(* Reference: the same guest run to completion with no migration. *)
let plain_run () =
  let setup = mig_setup () in
  let hyp = Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) () in
  let vm =
    Hypervisor.create_vm hyp ~name:"m" ~mem_frames:setup.Images.frames
      ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  (match Hypervisor.run hyp with
  | Hypervisor.All_halted -> ()
  | _ -> Alcotest.fail "plain run did not halt");
  (Vm.console_output vm, vm_instret vm)

let test_lossy_migration_lockstep () =
  let base_out, base_instret = plain_run () in
  let f = Fault.create ~seed:42L () in
  Fault.set_prob f Fault.Drop 0.05;
  let r, out, instret, _ = migrate_under f in
  checkb "completed" false r.Migrate.aborted;
  checkb "loss forced retransmits" true (r.Migrate.retransmits > 0);
  checks "output identical to fault-free run" base_out out;
  check64 "instret identical to fault-free run" base_instret instret

let test_dead_link_rollback () =
  let base_out, base_instret = plain_run () in
  let f = Fault.create ~seed:42L () in
  Fault.add_window f Fault.Partition ~lo:0L ~hi:Int64.max_int;
  let r, out, instret, dst_reclaimed = migrate_under f in
  checkb "aborted" true r.Migrate.aborted;
  checkb "bounded retries" true (r.Migrate.retransmits > 0);
  checkb "destination frames reclaimed" true dst_reclaimed;
  checks "source resumed and finished identically" base_out out;
  check64 "instret identical" base_instret instret

(* Same seed, same loss schedule, byte-identical migration — twice, for
   random seeds. *)
let migration_deterministic_prop =
  QCheck2.Test.make ~count:3 ~name:"fixed-seed lossy migration is deterministic"
    QCheck2.Gen.(int_range 0 999)
    (fun seed ->
      let run () =
        let f = Fault.create ~seed:(Int64.of_int seed) () in
        Fault.set_prob f Fault.Drop 0.08;
        let r, out, instret, _ = migrate_under f in
        ( r.Migrate.total_cycles, r.Migrate.downtime_cycles, r.Migrate.pages_sent,
          r.Migrate.rounds, r.Migrate.retransmits, r.Migrate.aborted, out, instret )
      in
      run () = run ())

(* --- replication: failover lands on the last completed checkpoint --- *)

let snap vm =
  Array.map
    (fun (v : Vcpu.t) -> (v.Vcpu.state.Cpu.pc, v.Vcpu.state.Cpu.instret))
    vm.Vm.vcpus

(* Kill the link at a random session cycle (plus background frame loss).
   However many checkpoints survive, the backup must resume exactly at
   the last one that committed — never a torn or partial epoch. *)
let replication_failover_prop =
  QCheck2.Test.make ~count:6 ~name:"failover resumes at last completed checkpoint"
    QCheck2.Gen.(int_range 0 3_000_000)
    (fun death_cycle ->
      let setup =
        Images.plan ~heap_pages:32 ~user:(Workloads.dirty_loop ~pages:16 ~delay:50) ()
      in
      let primary =
        Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) ()
      in
      let backup =
        Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) ()
      in
      let vm =
        Hypervisor.create_vm primary ~name:"ha" ~mem_frames:setup.Images.frames
          ~entry:Images.entry ()
      in
      Images.load_vm vm setup;
      ignore (Hypervisor.run primary ~budget:1_000_000L);
      let link = Link.create () in
      let f = Fault.create ~seed:42L () in
      Fault.set_prob f Fault.Drop 0.02;
      Fault.add_window f Fault.Partition ~lo:(Int64.of_int death_cycle)
        ~hi:Int64.max_int;
      Link.set_faults link f;
      let session = Replicate.start ~primary ~backup ~vm ~link () in
      let committed = ref (snap vm) (* the initial full sync *) in
      (try
         for _ = 1 to 8 do
           match Replicate.epoch session ~run_cycles:150_000L with
           | Replicate.Committed -> committed := snap vm
           | Replicate.Link_failed -> raise Exit
         done
       with Exit -> ());
      let twin = Replicate.failover session in
      snap twin = !committed)

let () =
  Alcotest.run "faults"
    [
      ( "link",
        Alcotest.test_case "partition window" `Quick test_partition_window
        :: Alcotest.test_case "spec parsing" `Quick test_fault_parse
        :: qsuite [ link_conservation_prop; link_loss_counts_prop ] );
      ( "migration",
        Alcotest.test_case "lossy pre-copy is lockstep-identical" `Quick
          test_lossy_migration_lockstep
        :: Alcotest.test_case "dead link aborts and rolls back" `Quick
             test_dead_link_rollback
        :: qsuite [ migration_deterministic_prop ] );
      ("replication", qsuite [ replication_failover_prop ]);
    ]
