(* End-to-end tests: the same guest images boot on bare metal and under
   the hypervisor in every paging/PV configuration, and the full
   mechanism suite (migration, sharing, ballooning, snapshots) works on
   live guests. *)

open Velum_devices
open Velum_vmm
open Velum_guests

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* --- helpers --- *)

let boot_native setup =
  let platform = Platform.create ~frames:(setup.Images.frames + 16) () in
  Images.load_native platform setup;
  let outcome = Platform.run platform in
  (platform, outcome)

let boot_vm ?(paging = Vm.Nested_paging) ?(pv = Vm.no_pv) ?host_frames ?exec_mode setup =
  let frames =
    match host_frames with Some f -> f | None -> setup.Images.frames + 512
  in
  let host = Host.create ~frames () in
  let hyp = Hypervisor.create ~host () in
  let vm =
    Hypervisor.create_vm hyp ~name:"t" ~mem_frames:setup.Images.frames ~paging ~pv
      ?exec_mode ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  (hyp, vm)

let run_to_halt hyp =
  match Hypervisor.run hyp with
  | Hypervisor.All_halted -> ()
  | Hypervisor.Out_of_budget -> Alcotest.fail "guest did not halt within budget"
  | Hypervisor.Idle_deadlock -> Alcotest.fail "guest deadlocked"
  | Hypervisor.Until_satisfied -> ()

let hello_setup ?(pv_console = false) ?(pv_pt = false) () =
  Images.plan ~pv_console ~pv_pt ~user:(Workloads.hello ()) ()

let expected_hello = "hello from velum guest\n"

(* --- native boot --- *)

let test_native_hello () =
  let platform, outcome = boot_native (hello_setup ()) in
  checkb "halted" true (outcome = Platform.Halted);
  checks "console" expected_hello (Platform.console_output platform)

let test_native_cpu_spin () =
  let setup = Images.plan ~user:(Workloads.cpu_spin ~iters:10_000L) () in
  let platform, outcome = boot_native setup in
  checkb "halted" true (outcome = Platform.Halted);
  checkb "retired plausible" true (Platform.instructions_retired platform > 40_000L)

let test_native_memwalk () =
  let setup =
    Images.plan ~heap_pages:128 ~user:(Workloads.memwalk ~pages:128 ~iters:3 ~write:true) ()
  in
  let _, outcome = boot_native setup in
  checkb "halted" true (outcome = Platform.Halted)

let test_native_syscalls () =
  let setup = Images.plan ~user:(Workloads.syscall_loop ~count:100L) () in
  let _, outcome = boot_native setup in
  checkb "halted" true (outcome = Platform.Halted)

let test_native_blk () =
  let setup =
    Images.plan ~heap_pages:8 ~user:(Workloads.blk_read ~sector:3 ~count:4 ~reps:2) ()
  in
  let platform = Platform.create ~frames:(setup.Images.frames + 16) () in
  Blockdev.load platform.Platform.blk ~sector:3 (String.make 2048 'z');
  Images.load_native platform setup;
  let outcome = Platform.run platform in
  checkb "halted" true (outcome = Platform.Halted)

let test_native_vblk () =
  let setup =
    Images.plan ~heap_pages:8 ~user:(Workloads.vblk_read ~sector:0 ~count:4 ~reps:2) ()
  in
  let platform = Platform.create ~frames:(setup.Images.frames + 16) () in
  Virtio_blk.load platform.Platform.vblk ~sector:0 (String.make 2048 'q');
  Images.load_native platform setup;
  let outcome = Platform.run platform in
  checkb "halted" true (outcome = Platform.Halted)

(* --- virtualized boot, each paging mode --- *)

let test_vmm_hello paging () =
  let hyp, vm = boot_vm ~paging (hello_setup ()) in
  run_to_halt hyp;
  checks "console" expected_hello (Vm.console_output vm);
  checkb "exits happened" true (Monitor.total_exits vm.Vm.monitor > 0)

let test_vmm_hello_pv () =
  let setup = hello_setup ~pv_console:true ~pv_pt:true () in
  let hyp, vm = boot_vm ~paging:Vm.Shadow_paging ~pv:Vm.full_pv setup in
  run_to_halt hyp;
  checks "console" expected_hello (Vm.console_output vm);
  checkb "hypercalls used" true (Monitor.count vm.Vm.monitor Monitor.E_hypercall > 0)

let test_vmm_memwalk paging () =
  let setup =
    Images.plan ~heap_pages:64 ~user:(Workloads.memwalk ~pages:64 ~iters:2 ~write:true) ()
  in
  let hyp, _vm = boot_vm ~paging setup in
  run_to_halt hyp

let test_vmm_syscalls paging () =
  let setup = Images.plan ~user:(Workloads.syscall_loop ~count:50L) () in
  let hyp, vm = boot_vm ~paging setup in
  run_to_halt hyp;
  checkb "traps reflected" true (Monitor.count vm.Vm.monitor Monitor.E_guest_trap >= 50)

let test_vmm_pt_churn paging () =
  let setup = Images.plan ~user:(Workloads.pt_churn ~count:10 ()) () in
  let hyp, vm = boot_vm ~paging setup in
  run_to_halt hyp;
  if paging = Vm.Shadow_paging then
    checkb "pt writes trapped" true (Monitor.count vm.Vm.monitor Monitor.E_pt_write > 0)

let test_vmm_blk paging () =
  let setup =
    Images.plan ~heap_pages:8 ~user:(Workloads.blk_read ~sector:0 ~count:2 ~reps:3) ()
  in
  let hyp, vm = boot_vm ~paging setup in
  Blockdev.load vm.Vm.blk ~sector:0 (String.make 1024 'x');
  run_to_halt hyp;
  check Alcotest.int "ops completed" 3 (Blockdev.completed_ops vm.Vm.blk)

let test_vmm_vblk paging () =
  let setup =
    Images.plan ~heap_pages:8 ~user:(Workloads.vblk_read ~sector:0 ~count:4 ~reps:2) ()
  in
  let hyp, vm = boot_vm ~paging setup in
  Virtio_blk.load vm.Vm.vblk ~sector:0 (String.make 2048 'y');
  run_to_halt hyp;
  check Alcotest.int "ops completed" 8 (Virtio_blk.completed_ops vm.Vm.vblk);
  check Alcotest.int "kicks" 2 (Virtio_blk.kicks vm.Vm.vblk)

(* The paravirtual path must produce far fewer exits per request than
   the emulated path for the same I/O volume. *)
let test_vblk_fewer_exits () =
  let mmio_exits paging user =
    let setup = Images.plan ~heap_pages:8 ~user () in
    let hyp, vm = boot_vm ~paging setup in
    run_to_halt hyp;
    Monitor.count vm.Vm.monitor Monitor.E_mmio
  in
  let emul =
    mmio_exits Vm.Nested_paging (Workloads.blk_read ~sector:0 ~count:8 ~reps:4)
  in
  let virtio =
    mmio_exits Vm.Nested_paging (Workloads.vblk_read ~sector:0 ~count:8 ~reps:4)
  in
  checkb
    (Printf.sprintf "virtio (%d) <= emulated (%d) exits" virtio emul)
    true (virtio <= emul)

(* --- 2 MiB superpages --- *)

(* Write a value to each heap page, read them all back, fold into a
   digest, print it — correctness probe for superpage mappings. *)
let heap_digest_user ~pages =
  Velum_isa.Asm.(
    assemble ~origin:Velum_guests.Abi.user_base
      ([
         label "u_entry";
         li r14 0x0014_4000L;
         li r5 (Int64.of_int pages);
         li r7 Velum_guests.Abi.heap_base;
         li r8 0L;
         label "u_w";
         slli r9 r8 3L;
         addi r9 r9 0x55L;
         sd r9 r7 0L;
         addi r7 r7 4096L;
         addi r8 r8 1L;
         blt r8 r5 "u_w";
         (* read back and fold *)
         li r7 Velum_guests.Abi.heap_base;
         li r8 0L;
         li r12 0L;
         label "u_r";
         ld r9 r7 0L;
         xor r12 r12 r9;
         add r12 r12 r8;
         addi r7 r7 4096L;
         addi r8 r8 1L;
         blt r8 r5 "u_r";
         (* print 16 nibbles *)
         li r6 16L;
         label "u_p";
         srli r7 r12 60L;
         andi r7 r7 15L;
         addi r2 r7 97L;
         li r1 Velum_guests.Abi.sys_putchar;
         ecall;
         slli r12 r12 4L;
         addi r6 r6 (-1L);
         bne r6 r0 "u_p";
         li r1 Velum_guests.Abi.sys_exit;
         ecall;
       ]))

let test_superpage_equivalence () =
  let pages = 96 in
  let user = heap_digest_user ~pages in
  let plain = Images.plan ~heap_pages:pages ~user () in
  let sup = Images.plan ~heap_pages:pages ~heap_superpages:true ~user () in
  let run_native setup =
    let platform = Platform.create ~frames:(setup.Images.frames + 16) () in
    Images.load_native platform setup;
    checkb "halts" true (Platform.run platform = Platform.Halted);
    Platform.console_output platform
  in
  let run_vm_mode paging setup =
    let hyp, vm = boot_vm ~paging setup in
    run_to_halt hyp;
    Vm.console_output vm
  in
  let reference = run_native plain in
  checkb "digest printed" true (String.length reference = 16);
  checks "native 2M" reference (run_native sup);
  checks "shadow 2M (splintered)" reference (run_vm_mode Vm.Shadow_paging sup);
  checks "nested 2M" reference (run_vm_mode Vm.Nested_paging sup)

let test_superpage_tlb_reach_native () =
  (* working set of 512 pages >> 64-entry TLB: with 4 KiB pages every
     touch walks; one 2 MiB mapping covers it all *)
  let run superpages =
    let setup =
      Images.plan ~heap_pages:512 ~heap_superpages:superpages
        ~user:(Workloads.memwalk ~pages:512 ~iters:4 ~write:true) ()
    in
    let platform = Platform.create ~frames:(setup.Images.frames + 16) () in
    Images.load_native platform setup;
    checkb "halts" true (Platform.run platform = Platform.Halted);
    Platform.cycles platform
  in
  let small = run false in
  let large = run true in
  checkb
    (Printf.sprintf "superpages faster (%Ld vs %Ld)" large small)
    true
    (Int64.to_float large < 0.6 *. Int64.to_float small)

(* --- SMP guests: the kernel boots multiple harts --- *)

let test_smp_guest_probe () =
  List.iter
    (fun pcpus ->
      let setup = Images.plan ~heap_pages:1 ~user:Workloads.smp_probe () in
      let host = Host.create ~frames:(setup.Images.frames + 512) () in
      let hyp = Hypervisor.create ~host ~pcpus () in
      let vm =
        Hypervisor.create_vm hyp ~name:"smp" ~mem_frames:setup.Images.frames
          ~vcpu_count:4 ~entry:Images.entry ()
      in
      Images.load_vm vm setup;
      run_to_halt hyp;
      for hart = 0 to 3 do
        Alcotest.(check (option int64))
          (Printf.sprintf "hart %d stamped its slot (pcpus=%d)" hart pcpus)
          (Some (Int64.of_int ((hart + 1) * 0x101)))
          (Vm.read_gpa_u64 vm
             (Int64.add Velum_guests.Abi.heap_base (Int64.of_int (hart * 8))))
      done)
    [ 1; 2 ]

(* Concurrent system calls: every hart prints its own letter; the
   per-hart trap save areas must keep them from corrupting each other. *)
let smp_letters =
  Velum_isa.Asm.(
    assemble ~origin:Velum_guests.Abi.user_base
      [
        label "u_entry";
        li r14 0x0014_4000L;
        li r9 256L;
        mul r9 r9 r10;
        sub r14 r14 r9;
        addi r2 r10 65L (* 'A' + hartid *);
        li r1 Velum_guests.Abi.sys_putchar;
        ecall;
        li r1 Velum_guests.Abi.sys_exit;
        ecall;
      ])

let test_smp_guest_syscalls () =
  let setup = Images.plan ~user:smp_letters () in
  let host = Host.create ~frames:(setup.Images.frames + 512) () in
  let hyp = Hypervisor.create ~host ~pcpus:2 () in
  let vm =
    Hypervisor.create_vm hyp ~name:"smp-sys" ~mem_frames:setup.Images.frames
      ~vcpu_count:4 ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  run_to_halt hyp;
  let chars = List.sort compare (List.init 4 (String.get (Vm.console_output vm))) in
  Alcotest.(check (list char)) "all four harts spoke" [ 'A'; 'B'; 'C'; 'D' ] chars

let test_smp_guest_native_single_hart () =
  (* the same SMP-aware kernel still boots a single native hart *)
  let setup = Images.plan ~heap_pages:1 ~user:Workloads.smp_probe () in
  let platform = Platform.create ~frames:(setup.Images.frames + 16) () in
  Images.load_native platform setup;
  checkb "halts" true (Platform.run platform = Platform.Halted)

(* --- the red pill: vmid distinguishes bare metal from a VM --- *)

let vmid_probe =
  (* unikernel: print 'V' if vmid != 0, 'N' otherwise, then halt *)
  Velum_isa.Asm.(
    assemble ~origin:0L
      [
        csrr r3 Velum_isa.Arch.Vmid;
        li r2 (Int64.of_int (Char.code 'N'));
        beq r3 r0 "print";
        li r2 (Int64.of_int (Char.code 'V'));
        label "print";
        outp Uart.data_port r2;
        halt;
      ])

let test_vmid_detection () =
  (* native *)
  let platform = Platform.create ~frames:64 () in
  Platform.load_image platform vmid_probe;
  Platform.boot platform ~entry:0L;
  checkb "native halts" true (Platform.run platform = Platform.Halted);
  checks "native sees metal" "N" (Platform.console_output platform);
  (* virtualized: the hypervisor chooses to expose itself via vmid *)
  let host = Host.create ~frames:512 () in
  let hyp = Hypervisor.create ~host () in
  let vm = Hypervisor.create_vm hyp ~name:"probe" ~mem_frames:16 ~entry:0L () in
  Vm.load_image vm vmid_probe;
  run_to_halt hyp;
  checks "guest sees hypervisor" "V" (Vm.console_output vm)

(* --- binary translation --- *)

let test_bt_hello () =
  let hyp, vm = boot_vm ~exec_mode:Vm.Binary_translation (hello_setup ()) in
  run_to_halt hyp;
  checks "console" expected_hello (Vm.console_output vm);
  checkb "sites translated" true (Monitor.count vm.Vm.monitor Monitor.E_bt_translate > 0)

let test_bt_cheaper_syscalls () =
  let run exec_mode =
    let setup = Images.plan ~user:(Workloads.syscall_loop ~count:300L) () in
    let hyp, vm = boot_vm ~exec_mode setup in
    run_to_halt hyp;
    Vm.vmm_cycles vm
  in
  let te = run Vm.Trap_emulate in
  let bt = run Vm.Binary_translation in
  checkb
    (Printf.sprintf "bt (%Ld) well under trap-and-emulate (%Ld)" bt te)
    true
    (Int64.to_float bt < 0.4 *. Int64.to_float te)

let test_bt_translation_cache_reuse () =
  let setup = Images.plan ~user:(Workloads.syscall_loop ~count:200L) () in
  let hyp, vm = boot_vm ~exec_mode:Vm.Binary_translation setup in
  run_to_halt hyp;
  let translations = Monitor.count vm.Vm.monitor Monitor.E_bt_translate in
  (* a handful of sensitive sites serve hundreds of syscalls *)
  checkb (Printf.sprintf "only %d sites translated" translations) true
    (translations < 40);
  checkb "cache populated" true (Hashtbl.length vm.Vm.bt_cache = translations)

(* --- console input, timers, networking --- *)

let test_echo_native () =
  let setup = Images.plan ~user:(Workloads.echo ~count:4L) () in
  let platform = Platform.create ~frames:(setup.Images.frames + 16) () in
  Uart.feed_input platform.Platform.uart "ping";
  Images.load_native platform setup;
  checkb "halted" true (Platform.run platform = Platform.Halted);
  checks "echoed" "ping" (Platform.console_output platform)

let test_echo_vmm paging () =
  let setup = Images.plan ~user:(Workloads.echo ~count:4L) () in
  let hyp, vm = boot_vm ~paging setup in
  Uart.feed_input vm.Vm.uart "pong";
  run_to_halt hyp;
  checks "echoed" "pong" (Vm.console_output vm)

let test_timer_native () =
  let setup =
    Images.plan ~timer_interval:20_000L ~user:(Workloads.tick_watch ~ticks:3L) ()
  in
  let platform, outcome = boot_native setup in
  checkb "halted" true (outcome = Platform.Halted);
  checkb "took at least 3 intervals" true (Platform.cycles platform >= 60_000L)

let test_timer_vmm paging () =
  let setup =
    Images.plan ~timer_interval:20_000L ~user:(Workloads.tick_watch ~ticks:3L) ()
  in
  let hyp, vm = boot_vm ~paging setup in
  run_to_halt hyp;
  checkb "interrupts injected" true (Monitor.irq_injections vm.Vm.monitor >= 3)

let test_net_ping_pong () =
  let ping_setup =
    Images.plan ~heap_pages:2 ~user:(Workloads.net_ping ~message:"hi velum") ()
  in
  let echo_setup = Images.plan ~heap_pages:2 ~user:(Workloads.net_echo ~frames:1) () in
  let frames = ping_setup.Images.frames + echo_setup.Images.frames + 1024 in
  let host = Host.create ~frames () in
  let hyp = Hypervisor.create ~host () in
  let link = Link.create ~bytes_per_cycle:1.0 ~latency_cycles:500 () in
  let ping_vm =
    Hypervisor.create_vm hyp ~name:"ping" ~mem_frames:ping_setup.Images.frames
      ~nic:(link, `A) ~entry:Images.entry ()
  in
  let echo_vm =
    Hypervisor.create_vm hyp ~name:"echo" ~mem_frames:echo_setup.Images.frames
      ~nic:(link, `B) ~entry:Images.entry ()
  in
  Images.load_vm ping_vm ping_setup;
  Images.load_vm echo_vm echo_setup;
  run_to_halt hyp;
  checks "round trip" "hi velum" (Vm.console_output ping_vm);
  (match ping_vm.Vm.nic with
  | Some n ->
      Alcotest.(check int) "ping sent one" 1 (Nic.frames_sent n);
      Alcotest.(check int) "ping received one" 1 (Nic.frames_received n)
  | None -> Alcotest.fail "no nic")

(* --- client/server application benchmark plumbing --- *)

let run_client_server ~paging ~virtio ~requests =
  let client_setup =
    Images.plan ~hcall_ok:true ~heap_pages:2
      ~user:(Workloads.net_client ~requests ~virtio_server:virtio) ()
  in
  let server_setup =
    Images.plan ~hcall_ok:true ~heap_pages:2
      ~user:(Workloads.net_server ~requests ~virtio) ()
  in
  let host =
    Host.create ~frames:(client_setup.Images.frames + server_setup.Images.frames + 1024) ()
  in
  let hyp = Hypervisor.create ~host () in
  let link = Link.create ~bytes_per_cycle:1.0 ~latency_cycles:300 () in
  let client =
    Hypervisor.create_vm hyp ~name:"client" ~mem_frames:client_setup.Images.frames
      ~paging ~nic:(link, `A) ~entry:Images.entry ()
  in
  let server =
    Hypervisor.create_vm hyp ~name:"server" ~mem_frames:server_setup.Images.frames
      ~paging ~nic:(link, `B) ~entry:Images.entry ()
  in
  Images.load_vm client client_setup;
  Images.load_vm server server_setup;
  (* give the served sectors recognizable content *)
  for sct = 0 to requests - 1 do
    let dev_load = if virtio then Virtio_blk.load server.Vm.vblk else Blockdev.load server.Vm.blk in
    dev_load ~sector:sct (Printf.sprintf "sector%02d" sct)
  done;
  (hyp, client, server)

let test_client_server_completes () =
  List.iter
    (fun (paging, virtio) ->
      let hyp, client, _server = run_client_server ~paging ~virtio ~requests:5 in
      run_to_halt hyp;
      checks "client done" "D" (Vm.console_output client))
    [ (Vm.Nested_paging, false); (Vm.Nested_paging, true); (Vm.Shadow_paging, false) ]

(* --- guest/native equivalence --- *)

let test_console_equivalence () =
  let setup = hello_setup () in
  let platform, _ = boot_native setup in
  let hyp_s, vm_s = boot_vm ~paging:Vm.Shadow_paging setup in
  run_to_halt hyp_s;
  let hyp_n, vm_n = boot_vm ~paging:Vm.Nested_paging setup in
  run_to_halt hyp_n;
  checks "native = shadow" (Platform.console_output platform) (Vm.console_output vm_s);
  checks "native = nested" (Platform.console_output platform) (Vm.console_output vm_n)

(* --- live migration --- *)

let migrate_test strategy () =
  let setup =
    Images.plan ~heap_pages:32 ~user:(Workloads.dirty_loop ~pages:16 ~delay:20) ()
  in
  let host_a = Host.create ~frames:(setup.Images.frames + 512) () in
  let host_b = Host.create ~frames:(setup.Images.frames + 512) () in
  let src = Hypervisor.create ~host:host_a () in
  let dst = Hypervisor.create ~host:host_b () in
  let vm =
    Hypervisor.create_vm src ~name:"mig" ~mem_frames:setup.Images.frames
      ~paging:Vm.Nested_paging ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  (* let the guest boot and start dirtying *)
  ignore (Hypervisor.run src ~budget:3_000_000L);
  checkb "guest alive" true (not (Vm.halted vm));
  let link = Link.create () in
  let twin, result =
    match strategy with
    | `Stop -> Migrate.stop_and_copy ~src ~dst ~vm ~link ()
    | `Pre -> Migrate.precopy ~src ~dst ~vm ~link ()
    | `Post -> Migrate.postcopy ~src ~dst ~vm ~link ()
  in
  checkb "pages were sent" true (result.Migrate.pages_sent > 0);
  checkb "downtime <= total" true
    (Int64.unsigned_compare result.Migrate.downtime_cycles result.Migrate.total_cycles <= 0);
  (* the twin must keep executing on the destination *)
  let before = Vm.guest_cycles twin in
  ignore (Hypervisor.run dst ~budget:2_000_000L);
  checkb "twin made progress" true (Vm.guest_cycles twin > before);
  (match strategy with
  | `Pre -> checkb "several rounds" true (result.Migrate.rounds >= 1)
  | `Post -> checkb "no leftover remote pages" true
               (P2m.count twin.Vm.p2m ~f:(function P2m.Remote -> true | _ -> false) = 0)
  | `Stop -> ());
  checkb "source deactivated" true
    (not (List.exists (fun v -> v == vm) src.Hypervisor.vms))

(* --- fault paths: the guest kernel panics deterministically --- *)

(* A user program that touches an unmapped address: the kernel's trap
   handler prints '!' and halts — identically everywhere. *)
let wild_load =
  Velum_isa.Asm.(
    assemble ~origin:Velum_guests.Abi.user_base
      [ li r2 0x0800_0000L; ld r3 r2 0L; li r1 Velum_guests.Abi.sys_exit; ecall ])

let wild_jump =
  Velum_isa.Asm.(
    assemble ~origin:Velum_guests.Abi.user_base
      [ li r2 0x0800_0000L; jalr r0 r2 0L ])

let priv_in_user =
  Velum_isa.Asm.(
    assemble ~origin:Velum_guests.Abi.user_base [ halt ])

let test_panic_equivalence () =
  List.iter
    (fun (name, user) ->
      let setup = Images.plan ~user () in
      let platform, n_out = boot_native setup in
      checkb (name ^ " native halts") true (n_out = Platform.Halted);
      checks (name ^ " native panics") "!" (Platform.console_output platform);
      List.iter
        (fun paging ->
          let hyp, vm = boot_vm ~paging setup in
          run_to_halt hyp;
          checks (name ^ " vm panics identically") "!" (Vm.console_output vm))
        [ Vm.Shadow_paging; Vm.Nested_paging ])
    [ ("wild load", wild_load); ("wild jump", wild_jump); ("priv in user", priv_in_user) ]

(* --- migration variants --- *)

let migrate_with ~paging ~pv () =
  let setup =
    Images.plan ~pv_console:pv ~pv_pt:pv ~heap_pages:32
      ~user:(Workloads.dirty_loop ~pages:16 ~delay:50) ()
  in
  let src = Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) () in
  let dst = Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) () in
  let vm =
    Hypervisor.create_vm src ~name:"mv" ~mem_frames:setup.Images.frames ~paging
      ~pv:(if pv then Vm.full_pv else Vm.no_pv)
      ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  ignore (Hypervisor.run src ~budget:3_000_000L);
  checkb "alive before" true (not (Vm.halted vm));
  let link = Link.create () in
  let twin, _ = Migrate.precopy ~src ~dst ~vm ~link () in
  let before = Vm.guest_cycles twin in
  ignore (Hypervisor.run dst ~budget:2_000_000L);
  checkb "twin runs" true (Vm.guest_cycles twin > before)

let test_migrate_shadow () = migrate_with ~paging:Vm.Shadow_paging ~pv:false ()

let test_migrate_bt_mode_carried () =
  (* a syscall-heavy guest so the twin has sensitive sites to
     retranslate after the move *)
  let setup = Images.plan ~user:(Workloads.syscall_loop ~count:1_000_000L) () in
  let src = Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) () in
  let dst = Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) () in
  let vm =
    Hypervisor.create_vm src ~name:"btmig" ~mem_frames:setup.Images.frames
      ~exec_mode:Vm.Binary_translation ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  ignore (Hypervisor.run src ~budget:3_000_000L);
  let link = Link.create () in
  let twin, _ = Migrate.precopy ~src ~dst ~vm ~link () in
  checkb "exec mode carried" true (twin.Vm.exec_mode = Vm.Binary_translation);
  ignore (Hypervisor.run dst ~budget:2_000_000L);
  checkb "twin retranslates" true
    (Monitor.count twin.Vm.monitor Monitor.E_bt_translate > 0)
let test_migrate_pv () = migrate_with ~paging:Vm.Shadow_paging ~pv:true ()

let test_migrate_with_swapped_and_ballooned () =
  let setup =
    Images.plan ~heap_pages:32 ~user:(Workloads.dirty_loop ~pages:8 ~delay:50) ()
  in
  let src = Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) () in
  let dst = Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) () in
  let vm =
    Hypervisor.create_vm src ~name:"mixed" ~mem_frames:setup.Images.frames
      ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  ignore (Hypervisor.run src ~budget:3_000_000L);
  (* park some pages in swap and balloon one out before migrating *)
  checkb "evicted some" true (Mem_mgr.evict vm ~n:8 = 8);
  let heap_gfn = Int64.shift_right_logical Velum_guests.Abi.heap_base 12 in
  ignore (Vm.balloon_out vm (Int64.add heap_gfn 30L));
  let link = Link.create () in
  let twin, _ = Migrate.stop_and_copy ~src ~dst ~vm ~link () in
  (* ballooned page stays unbacked on the twin, swapped pages were
     pulled in and transferred *)
  checkb "ballooned not transferred" true
    (match P2m.get twin.Vm.p2m (Int64.add heap_gfn 30L) with
     | P2m.Present _ -> false
     | _ -> true);
  let before = Vm.guest_cycles twin in
  ignore (Hypervisor.run dst ~budget:2_000_000L);
  checkb "twin runs" true (Vm.guest_cycles twin > before)

(* --- zero-page compression --- *)

let test_migration_compression () =
  (* a mostly-zero guest: compression collapses the wire footprint *)
  let run compress =
    let setup = Images.plan ~heap_pages:128 ~user:(Workloads.cpu_spin ~iters:1_000_000_000L) () in
    let src = Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) () in
    let dst = Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) () in
    let vm =
      Hypervisor.create_vm src ~name:"z" ~mem_frames:setup.Images.frames
        ~entry:Images.entry ()
    in
    Images.load_vm vm setup;
    ignore (Hypervisor.run src ~budget:2_000_000L);
    let link = Link.create () in
    let twin, r = Migrate.stop_and_copy ~compress ~src ~dst ~vm ~link () in
    (* twin still correct *)
    let before = Vm.guest_cycles twin in
    ignore (Hypervisor.run dst ~budget:1_000_000L);
    checkb "twin runs" true (Vm.guest_cycles twin > before);
    r.Migrate.bytes_sent
  in
  let plain = run false in
  let compressed = run true in
  checkb
    (Printf.sprintf "compressed (%d) < half of plain (%d)" compressed plain)
    true
    (compressed * 2 < plain)

(* --- checkpoint replication (Remus-style) --- *)

let test_replication_failover () =
  let setup =
    Images.plan ~heap_pages:32 ~user:(Workloads.dirty_loop ~pages:16 ~delay:50) ()
  in
  let primary =
    Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) ()
  in
  let backup =
    Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) ()
  in
  let vm =
    Hypervisor.create_vm primary ~name:"ha" ~mem_frames:setup.Images.frames
      ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  ignore (Hypervisor.run primary ~budget:3_000_000L);
  let link = Link.create () in
  let twin, stats =
    Replicate.protect ~primary ~backup ~vm ~link ~epoch_cycles:200_000L ~epochs:5 ()
  in
  checkb "epochs ran" true (stats.Replicate.epochs_completed = 5);
  checkb "pages shipped" true (stats.Replicate.pages_sent > 0);
  checkb "paused less than ran" true
    (Int64.unsigned_compare stats.Replicate.paused_cycles
       (Int64.add stats.Replicate.run_cycles stats.Replicate.paused_cycles) < 0);
  checkb "primary gone" true (primary.Hypervisor.vms = []);
  (* the backup resumes from the last checkpoint and keeps executing *)
  let before = Vm.guest_cycles twin in
  ignore (Hypervisor.run backup ~budget:2_000_000L);
  checkb "twin progressed" true (Vm.guest_cycles twin > before)

let test_replication_backup_idle_until_failover () =
  let setup = Images.plan ~user:(Workloads.cpu_spin ~iters:100_000_000L) () in
  let primary =
    Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) ()
  in
  let backup =
    Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 512) ()) ()
  in
  let vm =
    Hypervisor.create_vm primary ~name:"ha2" ~mem_frames:setup.Images.frames
      ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  ignore (Hypervisor.run primary ~budget:2_000_000L);
  let link = Link.create () in
  let session = Replicate.start ~primary ~backup ~vm ~link () in
  ignore (Replicate.epoch session ~run_cycles:100_000L);
  (* while protected, the backup twin must not execute *)
  ignore (Hypervisor.run backup ~budget:500_000L);
  let twin_cycles_before =
    List.fold_left
      (fun acc vm -> Int64.add acc (Vm.guest_cycles vm))
      0L backup.Hypervisor.vms
  in
  checkb "backup idle" true (twin_cycles_before = 0L);
  let twin = Replicate.failover session in
  ignore (Hypervisor.run backup ~budget:500_000L);
  checkb "twin active after failover" true (Vm.guest_cycles twin > 0L)

(* --- page sharing + ballooning + snapshots on live guests --- *)

let test_page_sharing_live () =
  let setup = Images.plan ~user:(Workloads.cpu_spin ~iters:2_000_000L) () in
  let host = Host.create ~frames:8192 () in
  let hyp = Hypervisor.create ~host () in
  let vms =
    List.init 3 (fun i ->
        let vm =
          Hypervisor.create_vm hyp ~name:(Printf.sprintf "vm%d" i)
            ~mem_frames:setup.Images.frames ~entry:Images.entry ()
        in
        Images.load_vm vm setup;
        vm)
  in
  (* boot all three a bit *)
  ignore (Hypervisor.run hyp ~budget:2_000_000L);
  let used_before = Frame_alloc.used_count host.Host.alloc in
  let stats = Mem_mgr.share_pass vms in
  let used_after = Frame_alloc.used_count host.Host.alloc in
  checkb "frames freed" true (stats.Mem_mgr.freed > 0);
  checkb "usage dropped" true (used_after < used_before);
  (* guests keep running correctly on shared frames *)
  ignore (Hypervisor.run hyp ~budget:5_000_000L);
  List.iter
    (fun vm -> checkb "progressing" true (Vm.guest_cycles vm > 0L))
    vms

let test_snapshot_roundtrip () =
  let setup = hello_setup () in
  let hyp, vm =
    boot_vm ~paging:Vm.Nested_paging ~host_frames:((2 * setup.Images.frames) + 512) setup
  in
  run_to_halt hyp;
  let image = Snapshot.capture vm in
  let restored = Snapshot.restore hyp image in
  checks "console preserved" (Vm.console_output vm) (Vm.console_output restored);
  checkb "halted state preserved" true (Vm.halted restored)

let test_live_snapshot_clone () =
  let setup =
    Images.plan ~heap_pages:8 ~user:(Workloads.dirty_loop ~pages:8 ~delay:50) ()
  in
  let host = Host.create ~frames:8192 () in
  let hyp = Hypervisor.create ~host () in
  let vm =
    Hypervisor.create_vm hyp ~name:"orig" ~mem_frames:setup.Images.frames
      ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  ignore (Hypervisor.run hyp ~budget:2_000_000L);
  let snap = Snapshot.capture_live vm in
  let clone = Snapshot.restore_live hyp snap in
  (* both keep executing, diverging via COW *)
  ignore (Hypervisor.run hyp ~budget:4_000_000L);
  checkb "original progressed" true (Vm.guest_cycles vm > 0L);
  checkb "clone progressed" true (Vm.guest_cycles clone > 0L);
  checkb "cow breaks happened" true
    (Monitor.count vm.Vm.monitor Monitor.E_cow_break
     + Monitor.count clone.Vm.monitor Monitor.E_cow_break
     > 0);
  Snapshot.release_live snap

(* --- virtio-net fabric: client -> load balancer -> backends --- *)

let vnet_mac i = Int64.of_int (0x10 + i)

(* Ports: 0 = client, 1 = LB, 2.. = backends. *)
let build_vnet_fleet ?(requests = 8) ?(batch = 4) ?(backends = 2) hyp =
  let client_setup =
    Images.plan ~heap_pages:2 ~vnet:true
      ~user:
        (Workloads.vnet_client ~my_mac:(vnet_mac 0) ~lb_mac:(vnet_mac 1)
           ~peers:(1 + backends) ~requests ~batch ~gap:400)
      ()
  in
  let lb_setup =
    Images.plan ~heap_pages:2 ~vnet:true
      ~user:
        (Workloads.vnet_lb ~my_mac:(vnet_mac 1)
           ~backends:(List.init backends (fun i -> vnet_mac (2 + i))))
      ()
  in
  let backend_setup i =
    Images.plan ~heap_pages:2 ~vnet:true
      ~user:(Workloads.vnet_backend ~my_mac:(vnet_mac (2 + i)) ~service:100)
      ()
  in
  let setups =
    [ ("client", client_setup); ("lb", lb_setup) ]
    @ List.init backends (fun i -> (Printf.sprintf "backend%d" i, backend_setup i))
  in
  let ports =
    Array.init (List.length setups) (fun _ ->
        Link.create ~bytes_per_cycle:1.0 ~latency_cycles:200 ())
  in
  let sw = Switch.create ports in
  (* static MAC entries: guests also announce dynamically, but on a
     time-shared pcpu the client's first batch can beat the backends'
     boot announces to the switch and die as unknown unicast *)
  Array.iteri (fun i _ -> Switch.learn sw ~mac:(vnet_mac i) ~port:i) ports;
  Hypervisor.add_ticker hyp (Switch.tick sw);
  Hypervisor.add_event_source hyp (fun () -> Switch.next_event sw);
  let vms =
    List.mapi
      (fun i (name, setup) ->
        let vm =
          Hypervisor.create_vm hyp ~name ~mem_frames:setup.Images.frames
            ~entry:Images.entry ()
        in
        ignore (Vm.attach_vnet vm ~link:ports.(i) ~endpoint:`A);
        Images.load_vm vm setup;
        vm)
      setups
  in
  (sw, ports, vms)

(* Every frame anywhere must land in a named counter: what the adapters
   put on the wire, minus wire losses, plus duplicates and floods, is
   what the adapters got back plus every drop the switch and adapters
   admit to.  [conserved] folds the same identity per layer. *)
let check_vnet_conservation sw ports vms =
  checkb "switch conserved" true (Switch.conserved sw);
  let vnets =
    List.filter_map (fun vm -> vm.Vm.vnet) vms
  in
  let sent = List.fold_left (fun a v -> a + Virtio_net.frames_sent v) 0 vnets in
  let received =
    List.fold_left (fun a v -> a + Virtio_net.frames_received v) 0 vnets
  in
  let rx_lost =
    List.fold_left
      (fun a v -> a + Virtio_net.rx_dropped v + Virtio_net.rx_overflow v)
      0 vnets
  in
  let backlog =
    List.fold_left (fun a v -> a + Virtio_net.backlog_length v) 0 vnets
  in
  let wire_dropped =
    Array.fold_left (fun a l -> a + Link.wire_dropped l) 0 ports
  in
  let wire_dup =
    Array.fold_left (fun a l -> a + Link.wire_duplicated l) 0 ports
  in
  let in_flight = Array.fold_left (fun a l -> a + Link.in_flight l) 0 ports in
  Alcotest.(check int) "frame conservation"
    (sent + wire_dup + Switch.flood_extra sw)
    (received + rx_lost + Switch.drops sw + wire_dropped + in_flight + backlog)

let test_vnet_fabric () =
  let host = Host.create ~frames:8192 () in
  let hyp = Hypervisor.create ~host () in
  let requests = 8 in
  let sw, ports, vms = build_vnet_fleet ~requests ~batch:4 hyp in
  ignore (Hypervisor.run hyp ~budget:60_000_000L);
  let client = List.hd vms in
  checkb "client halted" true (Vm.halted client);
  let cn = Option.get client.Vm.vnet in
  (* announce + requests out; every reply plus the three broadcast
     announces from the other guests comes back *)
  Alcotest.(check int) "client sent" (requests + 1) (Virtio_net.frames_sent cn);
  Alcotest.(check int) "client got every reply"
    (requests + Array.length ports - 1)
    (Virtio_net.frames_received cn);
  (* doorbell coalescing: 1 announce kick + 1 per batch of 4 *)
  checkb "tx kicks coalesced" true (Virtio_net.kicks cn <= 1 + (requests / 4) + 1);
  (* the LB spread the load *)
  List.iteri
    (fun i vm ->
      if i >= 2 then
        checkb
          (Printf.sprintf "backend %d served" (i - 2))
          true
          (Virtio_net.frames_received (Option.get vm.Vm.vnet) >= requests / 4))
    vms;
  check_vnet_conservation sw ports vms

(* A backend migrates to another host mid-benchmark: its port link and
   the switch are shared infrastructure, so the twin re-attaches a fresh
   virtio-net at the same link endpoint, re-programs the rings from the
   static ABI layout (the ring pages travelled with guest memory), and
   inherits the undelivered backlog.  The switch's clock is monotonic,
   so both hypervisors may tick it. *)
let test_vnet_migration () =
  let host_a = Host.create ~frames:8192 () in
  let src = Hypervisor.create ~host:host_a () in
  let requests = 24 in
  let sw, ports, vms = build_vnet_fleet ~requests ~batch:4 src in
  let client = List.hd vms in
  let backend = List.nth vms 3 in
  (* run in small slices until the request stream is mid-flight *)
  let cn = Option.get client.Vm.vnet in
  let spins = ref 0 in
  while Virtio_net.frames_sent cn < 6 && !spins < 100 do
    ignore (Hypervisor.run src ~budget:200_000L);
    incr spins
  done;
  checkb "benchmark still running" true (not (Vm.halted client));
  let host_b = Host.create ~frames:8192 () in
  let dst = Hypervisor.create ~host:host_b () in
  Hypervisor.add_ticker dst (Switch.tick sw);
  Hypervisor.add_event_source dst (fun () -> Switch.next_event sw);
  let old_vnet = Option.get backend.Vm.vnet in
  let mig_link = Link.create () in
  let twin, result = Migrate.stop_and_copy ~src ~dst ~vm:backend ~link:mig_link () in
  let backlog = Virtio_net.drain_backlog old_vnet in
  let v = Vm.attach_vnet twin ~link:ports.(3) ~endpoint:`A in
  Virtio_net.configure v ~tx_base:Abi.vnet_tx_ring ~tx_size:Abi.vnet_ring_size
    ~rx_base:Abi.vnet_rx_ring ~rx_size:Abi.vnet_ring_size;
  Virtio_net.seed_backlog v backlog;
  checkb "pages were sent" true (result.Migrate.pages_sent > 0);
  (* drive both hosts in alternating slices until the client finishes *)
  let slices = ref 0 in
  while (not (Vm.halted client)) && !slices < 60 do
    ignore (Hypervisor.run src ~budget:1_000_000L);
    ignore (Hypervisor.run dst ~budget:1_000_000L);
    incr slices
  done;
  checkb "client halted after migration" true (Vm.halted client);
  (* the client's bounded final drain can give up while the last replies
     are still crossing the fabric; its RX buffers stay posted, so a few
     more slices deliver them (delivery costs the guest zero exits) *)
  for _ = 1 to 10 do
    ignore (Hypervisor.run src ~budget:1_000_000L);
    ignore (Hypervisor.run dst ~budget:1_000_000L)
  done;
  Alcotest.(check int) "every reply arrived"
    (requests + Array.length ports - 1)
    (Virtio_net.frames_received cn);
  (* the migrated backend kept serving on the destination *)
  checkb "twin served requests" true (Virtio_net.frames_sent v > 0);
  checkb "switch conserved" true (Switch.conserved sw)

let suite =
  [
    ("native hello", `Quick, test_native_hello);
    ("native cpu spin", `Quick, test_native_cpu_spin);
    ("native memwalk", `Quick, test_native_memwalk);
    ("native syscalls", `Quick, test_native_syscalls);
    ("native blk", `Quick, test_native_blk);
    ("native vblk", `Quick, test_native_vblk);
    ("vmm hello shadow", `Quick, test_vmm_hello Vm.Shadow_paging);
    ("vmm hello nested", `Quick, test_vmm_hello Vm.Nested_paging);
    ("vmm hello pv", `Quick, test_vmm_hello_pv);
    ("vmm memwalk shadow", `Quick, test_vmm_memwalk Vm.Shadow_paging);
    ("vmm memwalk nested", `Quick, test_vmm_memwalk Vm.Nested_paging);
    ("vmm syscalls shadow", `Quick, test_vmm_syscalls Vm.Shadow_paging);
    ("vmm syscalls nested", `Quick, test_vmm_syscalls Vm.Nested_paging);
    ("vmm pt churn shadow", `Quick, test_vmm_pt_churn Vm.Shadow_paging);
    ("vmm pt churn nested", `Quick, test_vmm_pt_churn Vm.Nested_paging);
    ("vmm blk shadow", `Quick, test_vmm_blk Vm.Shadow_paging);
    ("vmm blk nested", `Quick, test_vmm_blk Vm.Nested_paging);
    ("vmm vblk shadow", `Quick, test_vmm_vblk Vm.Shadow_paging);
    ("vmm vblk nested", `Quick, test_vmm_vblk Vm.Nested_paging);
    ("virtio fewer exits", `Quick, test_vblk_fewer_exits);
    ("echo native", `Quick, test_echo_native);
    ("echo vmm shadow", `Quick, test_echo_vmm Vm.Shadow_paging);
    ("echo vmm nested", `Quick, test_echo_vmm Vm.Nested_paging);
    ("timer native", `Quick, test_timer_native);
    ("timer vmm shadow", `Quick, test_timer_vmm Vm.Shadow_paging);
    ("timer vmm nested", `Quick, test_timer_vmm Vm.Nested_paging);
    ("net ping-pong", `Quick, test_net_ping_pong);
    ("vnet fabric lb", `Quick, test_vnet_fabric);
    ("vnet live migration", `Quick, test_vnet_migration);
    ("smp guest probe", `Quick, test_smp_guest_probe);
    ("smp guest syscalls", `Quick, test_smp_guest_syscalls);
    ("smp kernel native", `Quick, test_smp_guest_native_single_hart);
    ("vmid detection", `Quick, test_vmid_detection);
    ("superpage equivalence", `Quick, test_superpage_equivalence);
    ("superpage tlb reach", `Quick, test_superpage_tlb_reach_native);
    ("bt hello", `Quick, test_bt_hello);
    ("bt cheaper syscalls", `Quick, test_bt_cheaper_syscalls);
    ("bt cache reuse", `Quick, test_bt_translation_cache_reuse);
    ("console equivalence", `Quick, test_console_equivalence);
    ("client/server app", `Quick, test_client_server_completes);
    ("migration stop-and-copy", `Quick, migrate_test `Stop);
    ("migration precopy", `Quick, migrate_test `Pre);
    ("migration postcopy", `Quick, migrate_test `Post);
    ("panic equivalence", `Quick, test_panic_equivalence);
    ("migration shadow vm", `Quick, test_migrate_shadow);
    ("migration carries bt mode", `Quick, test_migrate_bt_mode_carried);
    ("migration pv vm", `Quick, test_migrate_pv);
    ("migration with swap+balloon", `Quick, test_migrate_with_swapped_and_ballooned);
    ("migration zero-page compression", `Quick, test_migration_compression);
    ("replication failover", `Quick, test_replication_failover);
    ("replication backup idle", `Quick, test_replication_backup_idle_until_failover);
    ("page sharing live", `Quick, test_page_sharing_live);
    ("snapshot roundtrip", `Quick, test_snapshot_roundtrip);
    ("live snapshot clone", `Quick, test_live_snapshot_clone);
  ]

let () = Alcotest.run "integration" [ ("integration", suite) ]
