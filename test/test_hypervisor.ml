(* Unit tests for the hypervisor run loop using tiny "unikernel" guests:
   bare assembled programs that run in virtual supervisor mode with
   paging off, so each test controls exactly which exits occur. *)

open Velum_isa
open Velum_vmm
open Asm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let make_hyp ?(frames = 2048) () = Hypervisor.create ~host:(Host.create ~frames ()) ()

(* Create a VM whose vCPU starts at gpa 0 executing [prog]. *)
let unikernel hyp ?(vcpu_count = 1) ?(weight = 256) ?(mem_frames = 16) name prog =
  let vm =
    Hypervisor.create_vm hyp ~name ~mem_frames ~vcpu_count ~weight ~entry:0L ()
  in
  let img = Asm.assemble ~origin:0L prog in
  Vm.load_image vm img;
  vm

let spin_forever = [ label "spin"; jmp "spin" ]
let halt_now = [ halt ]

let spin_n_then_halt n =
  [ li r2 (Int64.of_int n); label "spin"; addi r2 r2 (-1L); bne r2 r0 "spin"; halt ]

(* Arm the timer, enable it, and wait; the handler halts. *)
let wfi_until_timer ~delta =
  [
    la r2 "handler";
    csrw Arch.Stvec r2;
    csrr r3 Arch.Time;
    addi r3 r3 delta;
    csrw Arch.Stimecmp r3;
    li r2 1L;
    slli r4 r2 63L;
    ori r4 r4 1L (* GIE | timer *);
    csrw Arch.Sie r4;
    label "wait";
    wfi;
    jmp "wait";
    label "handler";
    halt;
  ]

let yield_forever = [ label "y"; li r1 Hypercall.hc_yield; hcall; jmp "y" ]

(* ---------------- outcomes ---------------- *)

let test_all_halted () =
  let hyp = make_hyp () in
  let _a = unikernel hyp "a" (spin_n_then_halt 100) in
  let _b = unikernel hyp "b" halt_now in
  checkb "all halted" true (Hypervisor.run hyp = Hypervisor.All_halted)

let test_out_of_budget () =
  let hyp = make_hyp () in
  let vm = unikernel hyp "spin" spin_forever in
  checkb "budget" true (Hypervisor.run hyp ~budget:1_000_000L = Hypervisor.Out_of_budget);
  checkb "clock advanced" true (Hypervisor.now hyp >= 1_000_000L);
  checkb "guest consumed it" true (Vm.guest_cycles vm > 500_000L)

let test_idle_deadlock () =
  let hyp = make_hyp () in
  (* wfi with interrupts fully masked: nothing can ever wake it *)
  let _vm = unikernel hyp "stuck" [ wfi; halt ] in
  checkb "deadlock" true (Hypervisor.run hyp = Hypervisor.Idle_deadlock)

let test_until_predicate () =
  let hyp = make_hyp () in
  let _vm = unikernel hyp "spin" spin_forever in
  let outcome = Hypervisor.run hyp ~until:(fun t -> Hypervisor.now t > 200_000L) in
  checkb "until" true (outcome = Hypervisor.Until_satisfied)

(* ---------------- timer wake / idle fast-forward ---------------- *)

let test_timer_wakes_blocked_vcpu () =
  let hyp = make_hyp () in
  let vm = unikernel hyp "sleeper" (wfi_until_timer ~delta:500_000L) in
  checkb "halted via handler" true (Hypervisor.run hyp = Hypervisor.All_halted);
  checkb "time advanced past deadline" true (Hypervisor.now hyp >= 500_000L);
  checkb "idle fast-forward happened" true (hyp.Hypervisor.idle_cycles > 100_000L);
  checkb "irq injected" true (Monitor.irq_injections vm.Vm.monitor >= 1)

let test_two_sleepers_wake_in_order () =
  let hyp = make_hyp () in
  let _early = unikernel hyp "early" (wfi_until_timer ~delta:100_000L) in
  let _late = unikernel hyp "late" (wfi_until_timer ~delta:900_000L) in
  checkb "both halt" true (Hypervisor.run hyp = Hypervisor.All_halted);
  checkb "clock past the later deadline" true (Hypervisor.now hyp >= 900_000L)

(* ---------------- scheduling ---------------- *)

let test_interleaving_fair () =
  let hyp = make_hyp () in
  let a = unikernel hyp "a" spin_forever in
  let b = unikernel hyp "b" spin_forever in
  ignore (Hypervisor.run hyp ~budget:10_000_000L);
  let ca = Int64.to_float (Vm.guest_cycles a) in
  let cb = Int64.to_float (Vm.guest_cycles b) in
  checkb "both ran" true (ca > 0.0 && cb > 0.0);
  checkb "roughly equal (equal weights)" true (ca /. cb > 0.8 && ca /. cb < 1.25);
  checkb "many decisions" true (hyp.Hypervisor.sched_decisions > 20)

let test_yield_reschedules () =
  let hyp = make_hyp () in
  let y = unikernel hyp "yielder" yield_forever in
  let _s = unikernel hyp "spinner" spin_forever in
  ignore (Hypervisor.run hyp ~budget:5_000_000L);
  let yields = Monitor.count y.Vm.monitor Monitor.E_hypercall in
  checkb "yield hypercalls happened" true (yields > 10);
  (* a yielder gives up its slice, so it burns far fewer guest cycles
     than a spinner with the same weight *)
  checkb "yielder used less cpu" true (Vm.guest_cycles y < Vm.guest_cycles (_s : Vm.t))

let test_weights_respected_between_vms () =
  let hyp = make_hyp () in
  let light = unikernel hyp ~weight:256 "light" spin_forever in
  let heavy = unikernel hyp ~weight:1024 "heavy" spin_forever in
  ignore (Hypervisor.run hyp ~budget:40_000_000L);
  let ratio =
    Int64.to_float (Vm.guest_cycles heavy) /. Int64.to_float (Vm.guest_cycles light)
  in
  checkb (Printf.sprintf "heavy/light ratio %.2f in [3,5]" ratio) true
    (ratio > 3.0 && ratio < 5.0)

let test_multi_vcpu_vm () =
  let hyp = make_hyp () in
  let vm = unikernel hyp ~vcpu_count:3 "smp" (spin_n_then_halt 1000) in
  checkb "all vcpus halt" true (Hypervisor.run hyp = Hypervisor.All_halted);
  Array.iter
    (fun vcpu -> checkb "vcpu ran" true (vcpu.Vcpu.guest_cycles > 0L))
    vm.Vm.vcpus

(* ---------------- event channels ---------------- *)

let test_event_channel_send_wake () =
  let hyp = make_hyp () in
  (* receiver: enable external interrupts, wfi; the handler acks the
     event and halts *)
  let receiver_prog =
    [
      la r2 "handler";
      csrw Arch.Stvec r2;
      li r2 1L;
      slli r3 r2 63L;
      ori r3 r3 2L (* GIE | external *);
      csrw Arch.Sie r3;
      label "wait";
      wfi;
      jmp "wait";
      label "handler";
      li r1 Hypercall.hc_evt_ack;
      hcall;
      halt;
    ]
  in
  (* sender: signal port 1, then halt *)
  let sender_prog =
    [ li r1 Hypercall.hc_evt_send; li r2 1L; hcall; mv r4 r1; halt ]
  in
  let receiver = unikernel hyp "receiver" receiver_prog in
  let sender = unikernel hyp "sender" sender_prog in
  (match Event.connect ~a:sender ~b:receiver ~port_a:1L ~port_b:1L with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  checkb "both halt" true (Hypervisor.run hyp = Hypervisor.All_halted);
  Alcotest.(check int64) "send succeeded" 0L
    (Velum_machine.Cpu.get_reg sender.Vm.vcpus.(0).Vcpu.state 4);
  checkb "event acked" false (Event.pending receiver)

let test_event_channel_errors () =
  let hyp = make_hyp () in
  let a = unikernel hyp "a" halt_now in
  let b = unikernel hyp "b" halt_now in
  checkb "self connect" true (Event.connect ~a ~b:a ~port_a:1L ~port_b:2L <> Ok ());
  (match Event.connect ~a ~b ~port_a:1L ~port_b:1L with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  checkb "port busy" true (Event.connect ~a ~b ~port_a:1L ~port_b:2L <> Ok ());
  checkb "unknown port send fails" false (Event.send ~vm:a ~port:9L);
  Alcotest.(check (list int64)) "ports" [ 1L ] (Event.ports a);
  checkb "disconnect" true (Event.disconnect ~vm:a ~port:1L);
  Alcotest.(check (list int64)) "peer end dropped" [] (Event.ports b);
  checkb "send after disconnect fails" false (Event.send ~vm:a ~port:1L)

(* ---------------- CPU caps ---------------- *)

let test_cap_limits_solo_vm () =
  (* A 25%-capped spinner alone on the host gets ~25% of wall time even
     though the host is otherwise idle — caps are non-work-conserving. *)
  let hyp = make_hyp () in
  let vm = unikernel hyp "capped" spin_forever in
  vm.Vm.vcpus.(0).Vcpu.cap <- 25;
  ignore (Hypervisor.run hyp ~budget:30_000_000L);
  let share =
    Int64.to_float (Vm.guest_cycles vm) /. Int64.to_float (Hypervisor.now hyp)
  in
  checkb (Printf.sprintf "share %.3f near 0.25" share) true
    (share > 0.20 && share < 0.30);
  checkb "host idled the rest" true
    (Int64.to_float hyp.Hypervisor.idle_cycles
    > 0.5 *. Int64.to_float (Hypervisor.now hyp))

let test_cap_vs_uncapped () =
  let hyp = make_hyp () in
  let capped = unikernel hyp "capped" spin_forever in
  capped.Vm.vcpus.(0).Vcpu.cap <- 20;
  let free = unikernel hyp "free" spin_forever in
  ignore (Hypervisor.run hyp ~budget:30_000_000L);
  let c = Int64.to_float (Vm.guest_cycles capped) in
  let f = Int64.to_float (Vm.guest_cycles free) in
  let total = Int64.to_float (Hypervisor.now hyp) in
  checkb (Printf.sprintf "capped share %.3f <= 0.25" (c /. total)) true
    (c /. total <= 0.25);
  (* the uncapped VM absorbs the slack *)
  checkb (Printf.sprintf "free share %.3f >= 0.6" (f /. total)) true
    (f /. total >= 0.6)

(* ---------------- hypercall privilege and guest-driven balloon ------ *)

let test_hypercall_from_user_rejected () =
  let hyp = make_hyp () in
  (* drop to user mode, then hcall: the guest kernel must receive an
     illegal-instruction trap, whose handler stores scause and halts *)
  let prog =
    [
      la r2 "handler";
      csrw Arch.Stvec r2;
      la r2 "user";
      csrw Arch.Sepc r2;
      li r2 0L;
      csrw Arch.Sie r2;
      sret;
      label "user";
      li r1 Hypercall.hc_balloon_give;
      li r2 3L;
      hcall;
      label "spin";
      jmp "spin";
      label "handler";
      csrr r3 Arch.Scause;
      halt;
    ]
  in
  let vm = unikernel hyp "sneaky" prog in
  checkb "halts via handler" true (Hypervisor.run hyp = Hypervisor.All_halted);
  Alcotest.(check int64) "illegal instruction reflected"
    (Arch.cause_code Arch.Illegal_instruction)
    (Velum_machine.Cpu.get_reg vm.Vm.vcpus.(0).Vcpu.state 3);
  Alcotest.(check int) "no balloon happened" 0 vm.Vm.balloon_pages

let test_guest_driven_balloon () =
  let hyp = make_hyp () in
  (* a supervisor-mode guest balloons out its own gfns 8..11 *)
  let prog =
    [
      li r5 8L;
      label "loop";
      li r1 Hypercall.hc_balloon_give;
      mv r2 r5;
      hcall;
      addi r5 r5 1L;
      li r6 12L;
      blt r5 r6 "loop";
      halt;
    ]
  in
  let vm = unikernel hyp "balloonist" prog in
  let free0 = Frame_alloc.free_count (Hypervisor.host hyp).Host.alloc in
  checkb "halts" true (Hypervisor.run hyp = Hypervisor.All_halted);
  Alcotest.(check int) "4 pages surrendered" 4 vm.Vm.balloon_pages;
  Alcotest.(check int) "frames back to the host" (free0 + 4)
    (Frame_alloc.free_count (Hypervisor.host hyp).Host.alloc)

(* ---------------- multiprocessor hosts ---------------- *)

let make_smp_hyp ~pcpus = Hypervisor.create ~host:(Host.create ~frames:2048 ()) ~pcpus ()

let makespan_for ~pcpus ~vms work =
  let hyp = make_smp_hyp ~pcpus in
  for i = 1 to vms do
    ignore (unikernel hyp (Printf.sprintf "w%d" i) (spin_n_then_halt work))
  done;
  checkb "finished" true (Hypervisor.run hyp = Hypervisor.All_halted);
  Int64.to_float (Hypervisor.now hyp)

let test_smp_speedup () =
  let one = makespan_for ~pcpus:1 ~vms:4 200_000 in
  let two = makespan_for ~pcpus:2 ~vms:4 200_000 in
  let four = makespan_for ~pcpus:4 ~vms:4 200_000 in
  let s2 = one /. two and s4 = one /. four in
  checkb (Printf.sprintf "2 pcpus speedup %.2f in [1.7,2.1]" s2) true
    (s2 > 1.7 && s2 <= 2.1);
  checkb (Printf.sprintf "4 pcpus speedup %.2f in [3.2,4.2]" s4) true
    (s4 > 3.2 && s4 <= 4.2)

let test_smp_single_vm_no_slowdown () =
  (* one runnable vCPU cannot use a second pCPU, but must not get slower *)
  let one = makespan_for ~pcpus:1 ~vms:1 300_000 in
  let two = makespan_for ~pcpus:2 ~vms:1 300_000 in
  checkb "same makespan" true (abs_float (one -. two) /. one < 0.05)

let test_smp_timer_wake () =
  let hyp = make_smp_hyp ~pcpus:2 in
  let _sleeper = unikernel hyp "sleeper" (wfi_until_timer ~delta:400_000L) in
  let _worker = unikernel hyp "worker" (spin_n_then_halt 10_000) in
  checkb "both halt" true (Hypervisor.run hyp = Hypervisor.All_halted);
  checkb "clock past the deadline" true (Hypervisor.now hyp >= 400_000L)

let test_smp_fairness () =
  let hyp = make_smp_hyp ~pcpus:2 in
  let vms = List.init 4 (fun i -> unikernel hyp (Printf.sprintf "f%d" i) spin_forever) in
  ignore (Hypervisor.run hyp ~budget:20_000_000L);
  let shares = List.map (fun vm -> Int64.to_float (Vm.guest_cycles vm)) vms in
  let jain = Velum_util.Stats.jain_fairness (Array.of_list shares) in
  checkb (Printf.sprintf "jain %.3f near 1" jain) true (jain > 0.95)

let test_smp_multi_vcpu_vm_parallelism () =
  (* a 2-vCPU VM finishes its two independent spins in roughly half the
     wall time on a 2-pCPU host *)
  let run pcpus =
    let hyp = make_smp_hyp ~pcpus in
    let _vm = unikernel hyp ~vcpu_count:2 "smp-vm" (spin_n_then_halt 200_000) in
    checkb "halts" true (Hypervisor.run hyp = Hypervisor.All_halted);
    Int64.to_float (Hypervisor.now hyp)
  in
  let one = run 1 and two = run 2 in
  checkb (Printf.sprintf "parallel speedup %.2f > 1.7" (one /. two)) true
    (one /. two > 1.7)

(* ---------------- VM lifecycle ---------------- *)

let test_remove_vm_frees_and_continues () =
  let hyp = make_hyp () in
  let free0 = Frame_alloc.free_count (Hypervisor.host hyp).Host.alloc in
  let doomed = unikernel hyp "doomed" spin_forever in
  let survivor = unikernel hyp "survivor" (spin_n_then_halt 5000) in
  ignore (Hypervisor.run hyp ~budget:1_000_000L);
  Hypervisor.remove_vm hyp doomed;
  checkb "gone from list" true (Hypervisor.find_vm hyp ~vm_id:doomed.Vm.id = None);
  checkb "survivor still listed" true
    (Hypervisor.find_vm hyp ~vm_id:survivor.Vm.id <> None);
  checkb "finishes" true (Hypervisor.run hyp = Hypervisor.All_halted);
  checki "frames returned (minus survivor's)"
    (free0 - Vm.mem_frames survivor)
    (Frame_alloc.free_count (Hypervisor.host hyp).Host.alloc)

let test_run_vm_isolates () =
  let hyp = make_hyp () in
  let target = unikernel hyp "target" spin_forever in
  let other = unikernel hyp "other" spin_forever in
  Hypervisor.run_vm hyp target ~cycles:500_000L;
  checkb "target ran" true (Vm.guest_cycles target > 0L);
  checkb "other did not" true (Vm.guest_cycles other = 0L);
  checkb "clock advanced exactly" true (Hypervisor.now hyp >= 500_000L)

let test_run_vm_halted_guest_advances_clock () =
  let hyp = make_hyp () in
  let vm = unikernel hyp "quick" halt_now in
  ignore (Hypervisor.run hyp);
  let before = Hypervisor.now hyp in
  Hypervisor.run_vm hyp vm ~cycles:100_000L;
  checkb "time still advances" true (Int64.sub (Hypervisor.now hyp) before >= 100_000L)

let test_vcpu_index () =
  let hyp = make_hyp () in
  let vm = unikernel hyp ~vcpu_count:2 "pair" halt_now in
  checki "first" 0 (Hypervisor.vcpu_index vm vm.Vm.vcpus.(0));
  checki "second" 1 (Hypervisor.vcpu_index vm vm.Vm.vcpus.(1));
  let other = unikernel hyp "other" halt_now in
  checkb "foreign vcpu rejected" true
    (try
       ignore (Hypervisor.vcpu_index vm other.Vm.vcpus.(0));
       false
     with Not_found -> true)

let test_until_immediate () =
  let hyp = make_hyp () in
  let _vm = unikernel hyp "spin" spin_forever in
  checkb "until true at entry" true
    (Hypervisor.run hyp ~until:(fun _ -> true) = Hypervisor.Until_satisfied);
  checkb "no time passed" true (Hypervisor.now hyp = 0L)

let test_empty_host_runs_nothing () =
  let hyp = make_hyp () in
  (* no VMs: not "all halted" (vacuous), just deadlocks immediately *)
  checkb "idle deadlock" true (Hypervisor.run hyp = Hypervisor.Idle_deadlock)

(* ---------------- accounting ---------------- *)

let test_cycle_accounting_consistent () =
  let hyp = make_hyp () in
  let _a = unikernel hyp "a" (spin_n_then_halt 20_000) in
  let _b = unikernel hyp "b" (spin_n_then_halt 20_000) in
  ignore (Hypervisor.run hyp);
  let guest = Hypervisor.guest_cycles hyp and vmm = Hypervisor.vmm_cycles hyp in
  let accounted = Int64.add guest (Int64.add vmm hyp.Hypervisor.idle_cycles) in
  (* clock = guest + vmm + idle + context switches; switches are the
     only remainder and are bounded by decisions * ctx_switch *)
  let slack = Int64.sub (Hypervisor.now hyp) accounted in
  checkb "remainder is context-switch overhead" true
    (slack >= 0L
    && slack
       <= Int64.of_int
            ((hyp.Hypervisor.sched_decisions + 1)
            * (Hypervisor.host hyp).Host.cost.Velum_machine.Cost_model.ctx_switch))

(* ---------------- progress watchdog ---------------- *)

(* A VM whose vCPU is blocked (not halted) retires nothing: the watchdog
   must fire and, under [Wd_kill], halt it so the host drains cleanly. *)
let test_watchdog_kills_stuck_vm () =
  let hyp = make_hyp () in
  let _spin = unikernel hyp "spin" (spin_n_then_halt 200_000) in
  let stuck = unikernel hyp "stuck" spin_forever in
  Array.iter Vcpu.block stuck.Vm.vcpus;
  Hypervisor.set_watchdog hyp ~budget:50_000L ~policy:Hypervisor.Wd_kill;
  checkb "host drains after the kill" true
    (Hypervisor.run hyp = Hypervisor.All_halted);
  checkb "watchdog fired" true (Hypervisor.watchdog_fired hyp >= 1);
  checkb "stuck vm halted" true (Vm.halted stuck);
  checki "fires counted in the monitor" (Hypervisor.watchdog_fired hyp)
    (Monitor.count stuck.Vm.monitor Monitor.E_watchdog)

let test_watchdog_quiet_on_progress () =
  let hyp = make_hyp () in
  let _spin = unikernel hyp "spin" (spin_n_then_halt 200_000) in
  Hypervisor.set_watchdog hyp ~budget:10_000L ~policy:Hypervisor.Wd_notify;
  checkb "halted" true (Hypervisor.run hyp = Hypervisor.All_halted);
  checki "a progressing vm never trips it" 0 (Hypervisor.watchdog_fired hyp)

let () =
  Alcotest.run "hypervisor"
    [
      ( "outcomes",
        [
          Alcotest.test_case "all halted" `Quick test_all_halted;
          Alcotest.test_case "out of budget" `Quick test_out_of_budget;
          Alcotest.test_case "idle deadlock" `Quick test_idle_deadlock;
          Alcotest.test_case "until predicate" `Quick test_until_predicate;
        ] );
      ( "timer",
        [
          Alcotest.test_case "timer wakes blocked vcpu" `Quick test_timer_wakes_blocked_vcpu;
          Alcotest.test_case "two sleepers" `Quick test_two_sleepers_wake_in_order;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "interleaving fair" `Quick test_interleaving_fair;
          Alcotest.test_case "yield reschedules" `Quick test_yield_reschedules;
          Alcotest.test_case "weights between vms" `Quick test_weights_respected_between_vms;
          Alcotest.test_case "multi-vcpu vm" `Quick test_multi_vcpu_vm;
        ] );
      ( "events",
        [
          Alcotest.test_case "send wakes receiver" `Quick test_event_channel_send_wake;
          Alcotest.test_case "error paths" `Quick test_event_channel_errors;
        ] );
      ( "caps",
        [
          Alcotest.test_case "cap limits a solo vm" `Quick test_cap_limits_solo_vm;
          Alcotest.test_case "cap vs uncapped" `Quick test_cap_vs_uncapped;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "kills a stuck vm" `Quick test_watchdog_kills_stuck_vm;
          Alcotest.test_case "quiet on progress" `Quick test_watchdog_quiet_on_progress;
        ] );
      ( "privilege",
        [
          Alcotest.test_case "hypercall from user rejected" `Quick
            test_hypercall_from_user_rejected;
          Alcotest.test_case "guest-driven balloon" `Quick test_guest_driven_balloon;
        ] );
      ( "smp",
        [
          Alcotest.test_case "speedup" `Quick test_smp_speedup;
          Alcotest.test_case "single vm no slowdown" `Quick test_smp_single_vm_no_slowdown;
          Alcotest.test_case "timer wake" `Quick test_smp_timer_wake;
          Alcotest.test_case "fairness" `Quick test_smp_fairness;
          Alcotest.test_case "multi-vcpu parallelism" `Quick
            test_smp_multi_vcpu_vm_parallelism;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "remove vm" `Quick test_remove_vm_frees_and_continues;
          Alcotest.test_case "run_vm isolates" `Quick test_run_vm_isolates;
          Alcotest.test_case "run_vm on halted vm" `Quick test_run_vm_halted_guest_advances_clock;
          Alcotest.test_case "vcpu index" `Quick test_vcpu_index;
        ] );
      ( "edges",
        [
          Alcotest.test_case "until immediate" `Quick test_until_immediate;
          Alcotest.test_case "empty host" `Quick test_empty_host_runs_nothing;
        ] );
      ( "accounting",
        [ Alcotest.test_case "cycles add up" `Quick test_cycle_accounting_consistent ] );
    ]
