(* Unit tests for velum_guests: the ABI layout, kernel image
   construction across configurations, workload builders, and the image
   planner. *)

open Velum_isa
open Velum_guests

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------------- Abi ---------------- *)

let test_layout_ordering () =
  let ordered =
    [ Abi.kernel_base; Abi.kernel_stack_top; Abi.ring_page; Abi.user_base;
      Abi.user_stack_base; Abi.scratch_page; Abi.heap_base ]
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a < b && monotone rest
    | _ -> true
  in
  checkb "regions ordered and disjoint" true (monotone ordered);
  checkb "pt arena inside kernel region" true
    (Abi.pt_arena_base >= Abi.kernel_stack_top
    && Abi.pt_arena_base < Abi.kernel_region_end);
  checkb "user outside kernel region" true (Abi.user_base >= Abi.kernel_region_end)

let test_layout_page_aligned () =
  List.iter
    (fun (name, a) ->
      checkb (name ^ " aligned") true (Int64.rem a 4096L = 0L))
    [
      ("stack top", Abi.kernel_stack_top); ("region end", Abi.kernel_region_end);
      ("pt arena", Abi.pt_arena_base); ("ring", Abi.ring_page);
      ("user", Abi.user_base); ("user stack", Abi.user_stack_base);
      ("scratch", Abi.scratch_page); ("heap", Abi.heap_base);
    ]

let test_min_frames () =
  let base = Abi.min_frames ~user_image_bytes:100 ~heap_pages:0 () in
  (* must cover the scratch page plus slack *)
  checkb "covers scratch" true
    (base >= Int64.to_int (Int64.shift_right_logical Abi.scratch_page 12));
  let with_heap = Abi.min_frames ~user_image_bytes:100 ~heap_pages:64 () in
  checki "heap adds pages" 64
    (with_heap - Int64.to_int (Int64.shift_right_logical Abi.heap_base 12) - 8);
  checkb "syscall numbers distinct" true
    (let l =
       [ Abi.sys_exit; Abi.sys_putchar; Abi.sys_gettime; Abi.sys_yield; Abi.sys_nop;
         Abi.sys_map; Abi.sys_unmap; Abi.sys_blk_read; Abi.sys_vblk_read;
         Abi.sys_tick_count; Abi.sys_getchar; Abi.sys_net_send; Abi.sys_net_recv ]
     in
     List.length (List.sort_uniq compare l) = List.length l)

(* ---------------- Kernel ---------------- *)

let kernel_symbols cfg =
  let img = Kernel.build cfg in
  List.map fst img.Asm.symbols

let test_kernel_builds_all_configs () =
  List.iter
    (fun cfg ->
      let img = Kernel.build cfg in
      checkb "origin" true (img.Asm.origin = Abi.kernel_base);
      checkb "nonempty" true (Bytes.length img.Asm.code > 512);
      (* every 8-byte word before the data section decodes or is data *)
      checkb "has entry trap and syscalls" true
        (let syms = List.map fst img.Asm.symbols in
         List.for_all
           (fun s -> List.mem s syms)
           [ "k_entry"; "k_trap"; "k_sys_done"; "k_map_page"; "k_pt_store"; "k_restore" ]))
    [
      Kernel.default;
      { Kernel.default with pv_console = true; hcall_ok = true };
      { Kernel.default with pv_pt = true; hcall_ok = true };
      { Kernel.default with timer_interval = 10_000L };
      { Kernel.default with heap_pages = 256 };
      Kernel.{ pv_console = true; pv_pt = true; hcall_ok = true; user_pages = 4;
               heap_pages = 32; heap_superpages = false; timer_interval = 5_000L;
               vnet = false };
      { Kernel.default with vnet = true };
      { Kernel.default with heap_pages = 600; heap_superpages = true };
    ]

let test_kernel_entry_is_origin () =
  let img = Kernel.build Kernel.default in
  checkb "entry at origin" true (Asm.symbol img "k_entry" = img.Asm.origin)

let test_kernel_pv_variants_differ () =
  let plain = Kernel.build Kernel.default in
  let pv =
    Kernel.build { Kernel.default with pv_console = true; pv_pt = true; hcall_ok = true }
  in
  checkb "different code" true (not (Bytes.equal plain.Asm.code pv.Asm.code))

let test_for_user_sizes () =
  let small = Workloads.hello () in
  let cfg = Kernel.for_user small in
  checkb "at least one page" true (cfg.Kernel.user_pages >= 1);
  checki "covers the image" ((Bytes.length small.Asm.code + 4095) / 4096)
    cfg.Kernel.user_pages

(* ---------------- Workloads ---------------- *)

let all_workloads =
  [
    ("hello", Workloads.hello ());
    ("cpu_spin", Workloads.cpu_spin ~iters:10L);
    ("syscall_loop", Workloads.syscall_loop ~count:5L);
    ("syscall_stress", Workloads.syscall_stress ~num:Abi.sys_gettime ~count:5L);
    ("memwalk", Workloads.memwalk ~pages:4 ~iters:2 ~write:true);
    ("memwalk ro", Workloads.memwalk ~pages:4 ~iters:2 ~write:false);
    ("pt_churn", Workloads.pt_churn ~batch:4 ~count:2 ());
    ("blk_read", Workloads.blk_read ~sector:0 ~count:1 ~reps:1);
    ("vblk_read", Workloads.vblk_read ~sector:0 ~count:1 ~reps:1);
    ("dirty_loop", Workloads.dirty_loop ~pages:2 ~delay:5);
    ("echo", Workloads.echo ~count:1L);
    ("tick_watch", Workloads.tick_watch ~ticks:1L);
    ("net_ping", Workloads.net_ping ~message:"x");
    ("net_echo", Workloads.net_echo ~frames:1);
    ("vnet_client",
      Workloads.vnet_client ~my_mac:0x10L ~lb_mac:0x20L ~peers:3 ~requests:8
        ~batch:4 ~gap:10);
    ("vnet_lb", Workloads.vnet_lb ~my_mac:0x20L ~backends:[ 0x31L; 0x32L ]);
    ("vnet_backend", Workloads.vnet_backend ~my_mac:0x31L ~service:50);
  ]

let test_workloads_assemble_and_decode () =
  List.iter
    (fun (name, img) ->
      checkb (name ^ " at user base") true (img.Asm.origin = Abi.user_base);
      checkb (name ^ " nonempty") true (Bytes.length img.Asm.code > 0);
      (* all words must decode: workloads contain no data sections *)
      let words = Bytes.length img.Asm.code / 8 in
      for i = 0 to words - 1 do
        match Instr.decode (Bytes.get_int64_le img.Asm.code (i * 8)) with
        | Some _ -> ()
        | None -> Alcotest.fail (Printf.sprintf "%s: word %d does not decode" name i)
      done)
    all_workloads

let test_workloads_end_in_exit_or_loop () =
  (* every terminating workload's last instruction is the ecall of
     sys_exit *)
  List.iter
    (fun (name, img) ->
      let words = Bytes.length img.Asm.code / 8 in
      let last = Instr.decode (Bytes.get_int64_le img.Asm.code ((words - 1) * 8)) in
      if not (List.mem name [ "dirty_loop"; "vnet_lb"; "vnet_backend" ]) then
        checkb (name ^ " ends with ecall") true (last = Some Instr.Ecall))
    all_workloads

(* ---------------- Images ---------------- *)

let test_plan_consistency () =
  let user = Workloads.memwalk ~pages:16 ~iters:1 ~write:false in
  let setup = Images.plan ~heap_pages:16 ~user () in
  checkb "kernel heap config" true (setup.Images.config.Kernel.heap_pages = 16);
  checkb "frames cover heap" true
    (setup.Images.frames
    > Int64.to_int (Int64.shift_right_logical Abi.heap_base 12) + 15);
  checkb "entry" true (Images.entry = Abi.kernel_base)

let test_plan_pv_defaults () =
  let user = Workloads.hello () in
  let s1 = Images.plan ~pv_console:true ~user () in
  checkb "pv console implies hcall" true s1.Images.config.Kernel.hcall_ok;
  let s2 = Images.plan ~user () in
  checkb "no pv, no hcall" false s2.Images.config.Kernel.hcall_ok;
  let s3 = Images.plan ~hcall_ok:true ~user () in
  checkb "explicit hcall" true s3.Images.config.Kernel.hcall_ok

let test_kernel_symbol_stability () =
  (* the data labels the kernel reads with absolute loads must exist *)
  let syms = kernel_symbols Kernel.default in
  List.iter
    (fun s -> checkb (s ^ " present") true (List.mem s syms))
    [ "k_pt_root_v"; "k_pt_bump"; "k_paging_on"; "k_ticks"; "k_vblk_init";
      "k_save_harts"; "k_smp_go" ]

let () =
  Alcotest.run "guests"
    [
      ( "abi",
        [
          Alcotest.test_case "layout ordering" `Quick test_layout_ordering;
          Alcotest.test_case "page alignment" `Quick test_layout_page_aligned;
          Alcotest.test_case "min frames" `Quick test_min_frames;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "builds all configs" `Quick test_kernel_builds_all_configs;
          Alcotest.test_case "entry at origin" `Quick test_kernel_entry_is_origin;
          Alcotest.test_case "pv variants differ" `Quick test_kernel_pv_variants_differ;
          Alcotest.test_case "for_user sizes" `Quick test_for_user_sizes;
          Alcotest.test_case "symbol stability" `Quick test_kernel_symbol_stability;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "assemble and decode" `Quick test_workloads_assemble_and_decode;
          Alcotest.test_case "terminators" `Quick test_workloads_end_in_exit_or_loop;
        ] );
      ( "images",
        [
          Alcotest.test_case "plan consistency" `Quick test_plan_consistency;
          Alcotest.test_case "pv defaults" `Quick test_plan_pv_defaults;
        ] );
    ]
