(* Unit tests for the tracing subsystem: recording/readback, bounded
   rings, deterministic export, zero simulated overhead, and the text
   report.  Guests are tiny unikernels (see test_hypervisor.ml) so each
   test controls exactly which events occur. *)

open Velum_isa
open Velum_vmm
open Asm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check64 = Alcotest.(check int64)
let checks = Alcotest.(check string)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let make_hyp ?(frames = 2048) () = Hypervisor.create ~host:(Host.create ~frames ()) ()

let unikernel hyp ?(mem_frames = 16) name prog =
  let vm = Hypervisor.create_vm hyp ~name ~mem_frames ~entry:0L () in
  Vm.load_image vm (Asm.assemble ~origin:0L prog);
  vm

(* a few hypercall exits, then halt — a small but varied exit stream *)
let yield_n_then_halt n =
  [
    li r3 (Int64.of_int n);
    label "loop";
    li r1 Hypercall.hc_yield;
    hcall;
    addi r3 r3 (-1L);
    bne r3 r0 "loop";
    halt;
  ]

let run_traced ?ring_capacity prog =
  let hyp = make_hyp () in
  let tr = Trace.create ?ring_capacity () in
  Hypervisor.set_trace hyp tr;
  let vm = unikernel hyp "traced" prog in
  ignore (Hypervisor.run hyp ~budget:10_000_000L);
  (hyp, vm, tr)

(* ---------------- recording and readback ---------------- *)

let test_record_readback () =
  let tr = Trace.create () in
  Trace.record tr ~vm_id:3 ~name:"b" ~at:100L
    (Trace.Exit { kind = Monitor.E_mmio; cost = 40; detail = 0x1000L });
  Trace.record tr ~vm_id:3 ~name:"b" ~at:200L
    (Trace.Exit { kind = Monitor.E_hypercall; cost = 25; detail = 1L });
  Trace.record tr ~vm_id:1 ~name:"a" ~at:150L (Trace.Irq_inject { cost = 9 });
  Trace.add_guest_cycles tr ~vm_id:1 ~name:"a" 500;
  Alcotest.(check (list int)) "vm_ids ascending" [ 1; 3 ] (Trace.vm_ids tr);
  checki "events" 3 (Trace.events_recorded tr);
  checki "mmio count" 1 (Trace.exit_count tr ~vm_id:3 Monitor.E_mmio);
  checki "hypercall count" 1 (Trace.exit_count tr ~vm_id:3 Monitor.E_hypercall);
  checki "no csr" 0 (Trace.exit_count tr ~vm_id:3 Monitor.E_csr);
  (* attribution: device I/O exits are device time, the rest VMM time *)
  check64 "device cycles" 40L (Trace.device_cycles tr ~vm_id:3);
  check64 "vmm cycles" 25L (Trace.vmm_cycles tr ~vm_id:3);
  check64 "irq is vmm time" 9L (Trace.vmm_cycles tr ~vm_id:1);
  check64 "guest cycles" 500L (Trace.guest_cycles tr ~vm_id:1)

let test_ring_bounded () =
  let tr = Trace.create ~ring_capacity:4 () in
  for i = 1 to 10 do
    Trace.record tr ~vm_id:0 ~name:"v" ~at:(Int64.of_int i)
      (Trace.Exit { kind = Monitor.E_csr; cost = i; detail = 0L })
  done;
  (* evicted events still count toward totals and histograms *)
  checki "all recorded" 10 (Trace.events_recorded tr);
  checki "all in histogram" 10 (Trace.exit_count tr ~vm_id:0 Monitor.E_csr);
  let s = Trace.export_string tr in
  checkb "oldest evicted" false (contains s "\"at\":1,");
  checkb "newest retained" true (contains s "\"at\":10,");
  checkb "drop count exported" true (contains s "\"dropped\":6")

(* ---------------- determinism and zero overhead ---------------- *)

let test_export_deterministic () =
  let _, _, tr1 = run_traced (yield_n_then_halt 20) in
  let _, _, tr2 = run_traced (yield_n_then_halt 20) in
  checks "byte-identical export" (Trace.export_string tr1) (Trace.export_string tr2)

let test_traced_equals_untraced () =
  let hyp_off = make_hyp () in
  let vm_off = unikernel hyp_off "traced" (yield_n_then_halt 20) in
  ignore (Hypervisor.run hyp_off ~budget:10_000_000L);
  let _, vm_on, _ = run_traced (yield_n_then_halt 20) in
  check64 "guest cycles equal" (Vm.guest_cycles vm_off) (Vm.guest_cycles vm_on);
  check64 "vmm cycles equal" (Vm.vmm_cycles vm_off) (Vm.vmm_cycles vm_on);
  checki "exit totals equal"
    (Monitor.total_exits vm_off.Vm.monitor)
    (Monitor.total_exits vm_on.Vm.monitor)

let test_exit_count_matches_monitor () =
  let _, vm, tr = run_traced (yield_n_then_halt 20) in
  checkb "saw hypercalls" true (Trace.exit_count tr ~vm_id:vm.Vm.id Monitor.E_hypercall > 0);
  List.iter
    (fun k ->
      checki (Monitor.exit_kind_name k)
        (Monitor.count vm.Vm.monitor k)
        (Trace.exit_count tr ~vm_id:vm.Vm.id k))
    Monitor.all_exit_kinds

(* ---------------- export and report ---------------- *)

let test_export_contents () =
  let _, vm, tr = run_traced (yield_n_then_halt 5) in
  let s = Trace.export_string tr in
  checkb "meta line" true (contains s "{\"type\":\"meta\"");
  checkb "vm line" true (contains s "\"name\":\"traced\"");
  checkb "hist line" true (contains s "\"kind\":\"hypercall\"");
  checkb "hypercall event" true (contains s "\"ev\":\"hypercall\"");
  checkb "dispatch event" true (contains s "\"ev\":\"dispatch\"");
  checkb "exit events" true (contains s "\"ev\":\"exit\"");
  ignore vm

let test_report_renders () =
  let _, _, tr = run_traced (yield_n_then_halt 20) in
  let lines = String.split_on_char '\n' (Trace.export_string tr) in
  let report = Trace.render_report_lines lines in
  checkb "attribution table" true (contains report "cycle attribution");
  checkb "latency table" true (contains report "exit latency histograms");
  checkb "p99 column" true (contains report "p99");
  checkb "vm row" true (contains report "traced");
  checkb "hypercall row" true (contains report "hypercall");
  checkb "footer" true (contains report "events recorded:")

let () =
  Alcotest.run "trace"
    [
      ( "record",
        [
          Alcotest.test_case "readback" `Quick test_record_readback;
          Alcotest.test_case "bounded ring" `Quick test_ring_bounded;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "export byte-identical" `Quick test_export_deterministic;
          Alcotest.test_case "zero simulated overhead" `Quick
            test_traced_equals_untraced;
          Alcotest.test_case "matches monitor" `Quick test_exit_count_matches_monitor;
        ] );
      ( "report",
        [
          Alcotest.test_case "export contents" `Quick test_export_contents;
          Alcotest.test_case "report renders" `Quick test_report_renders;
        ] );
    ]
