(* Parallel cluster runner: a random fleet — seeds, fault plans, quantum
   sizes, migrations, injected host failures — produces byte-identical
   reports and trace exports whatever the domain count (qcheck), the
   round barrier and mailboxes behave under real domains, and the
   share-nothing regressions hold: two traced hypervisors in one process
   never cross-talk scheduler events, Monitor exports are insertion-order
   independent, and derived fault plans draw from independent streams. *)

open Velum_vmm
open Velum_guests
module Parallel = Velum_cluster.Parallel
module Barrier = Velum_cluster.Barrier
module Mailbox = Velum_cluster.Mailbox
module Fault = Velum_util.Fault

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let has_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- barrier: phases stay in lockstep under real domains --- *)

let test_barrier_lockstep () =
  let workers = 3 and rounds = 50 in
  let start_b = Barrier.create ~parties:(workers + 1) in
  let done_b = Barrier.create ~parties:(workers + 1) in
  let cells = Array.make workers 0 in
  let stop = ref false in
  let worker w =
    let live = ref true in
    while !live do
      Barrier.await start_b;
      if !stop then live := false
      else begin
        cells.(w) <- cells.(w) + 1;
        Barrier.await done_b
      end
    done
  in
  let doms = Array.init workers (fun w -> Domain.spawn (fun () -> worker w)) in
  let ok = ref true in
  for r = 1 to rounds do
    Barrier.await start_b;
    Barrier.await done_b;
    Array.iter (fun c -> if c <> r then ok := false) cells
  done;
  stop := true;
  Barrier.await start_b;
  Array.iter Domain.join doms;
  checkb "every worker advanced exactly once per round" true !ok

(* --- mailbox: FIFO, and no frame lost under concurrent posting --- *)

let test_mailbox () =
  let mb = Mailbox.create () in
  let mk i =
    { Mailbox.src = 0; dst = 1; sent_at = Int64.of_int i; payload = string_of_int i }
  in
  for i = 1 to 5 do
    checkb "unbounded post accepted" true (Mailbox.post mb (mk i))
  done;
  checks "FIFO order" "1 2 3 4 5"
    (String.concat " " (List.map (fun f -> f.Mailbox.payload) (Mailbox.drain mb)));
  checki "drained" 0 (Mailbox.length mb);
  let n = 1000 in
  let poster () = for i = 1 to n do ignore (Mailbox.post mb (mk i)) done in
  let d1 = Domain.spawn poster and d2 = Domain.spawn poster in
  Domain.join d1;
  Domain.join d2;
  checki "no frame lost across domains" (2 * n) (List.length (Mailbox.drain mb))

(* --- regression: two traced hypervisors must not cross-talk --- *)

(* With a process-wide notify cell, the second set_trace would steal the
   first hypervisor's scheduler notifications: running A would record
   events (at least the credit scheduler's first refill) into B's trace.
   The notify hook is a per-scheduler field, so B's sink must stay empty
   until B itself runs. *)
let test_concurrent_traces () =
  let setup = Images.plan ~user:(Workloads.syscall_loop ~count:50L) () in
  let mk name =
    let hyp = Hypervisor.create () in
    let tr = Trace.create () in
    Hypervisor.set_trace hyp tr;
    let vm =
      Hypervisor.create_vm hyp ~name ~mem_frames:setup.Images.frames
        ~entry:Images.entry ()
    in
    Images.load_vm vm setup;
    (hyp, tr)
  in
  let a, tra = mk "alpha" in
  let b, trb = mk "beta" in
  ignore (Hypervisor.run a ~budget:5_000_000L);
  checkb "A recorded events" true (Trace.events_recorded tra > 0);
  checkb "A saw its scheduler's notifications" true
    (has_sub (Trace.export_string tra) "sched-refill");
  checki "B's sink is untouched by A's run" 0 (Trace.events_recorded trb);
  let a_before = Trace.events_recorded tra in
  ignore (Hypervisor.run b ~budget:5_000_000L);
  checkb "B recorded its own events" true (Trace.events_recorded trb > 0);
  checki "B's run left A's sink alone" a_before (Trace.events_recorded tra);
  checkb "no foreign VM leaked into A" true
    (not (has_sub (Trace.export_string tra) "beta"));
  checkb "no foreign VM leaked into B" true
    (not (has_sub (Trace.export_string trb) "alpha"))

(* --- monitor exports are insertion-order independent --- *)

let test_monitor_export_stable () =
  let m1 = Monitor.create () and m2 = Monitor.create () in
  List.iter
    (fun m ->
      Monitor.bump m Monitor.E_csr;
      Monitor.bump m Monitor.E_mmio;
      Monitor.add_cycles m Monitor.E_csr 840)
    [ m1; m2 ];
  let gauges = [ ("tlb.hits", 7); ("dtlb.hits", 3); ("engine.cache.hits", 9) ] in
  List.iter (fun (k, v) -> Monitor.set_gauge m1 k v) gauges;
  List.iter (fun (k, v) -> Monitor.set_gauge m2 k v) (List.rev gauges);
  checks "json is order-stable" (Monitor.to_json m1) (Monitor.to_json m2);
  checks "pp is order-stable"
    (Format.asprintf "%a" Monitor.pp m1)
    (Format.asprintf "%a" Monitor.pp m2);
  checkb "json carries the counters" true
    (has_sub (Monitor.to_json m1) "\"csr\":[1,840]")

(* --- derived fault plans: same profile, independent streams --- *)

let test_fault_derive () =
  let base = Fault.create ~seed:42L () in
  Fault.set_prob base Fault.Drop 0.5;
  let schedule f =
    List.init 64 (fun i -> Fault.fire f Fault.Drop ~now:(Int64.of_int i))
  in
  let d1 = Fault.derive base ~seed:1L in
  let d1' = Fault.derive base ~seed:1L in
  let d2 = Fault.derive base ~seed:2L in
  checkb "equal seeds give equal schedules" true (schedule d1 = schedule d1');
  checkb "different seeds give different schedules" true
    (schedule d1' <> schedule d2);
  checkb "derivation copies the profile" true (Fault.prob d2 Fault.Drop = 0.5);
  checki "the base plan's counters are untouched" 0 (Fault.injected base Fault.Drop)

(* --- the tentpole property: domain-count invariance --- *)

let mk_setup kind =
  match kind with
  | 0 -> Images.plan ~user:(Workloads.syscall_loop ~count:120L) ()
  | 1 -> Images.plan ~user:(Workloads.cpu_spin ~iters:40_000L) ()
  | _ ->
      (* never halts: every round runs a full quantum *)
      Images.plan ~heap_pages:16 ~user:(Workloads.dirty_loop ~pages:8 ~delay:1500) ()

let fleet_invariance_prop =
  QCheck2.Test.make ~count:8
    ~name:"fleet report and traces are byte-identical for domains 1/2/4"
    QCheck2.Gen.(
      tup7 (int_range 0 9999) (int_range 2 4) (int_range 0 2)
        (oneofl [ 60_000L; 150_000L ])
        (int_range 4 6) bool bool)
    (fun (seed, hosts, wkind, quantum, rounds, with_faults, with_chaos) ->
      let setup = mk_setup wkind in
      let spin = mk_setup 1 in
      let mk_vms i =
        let base = [ Parallel.spec ~name:(Printf.sprintf "vm%d" i) setup ] in
        if i = 0 then Parallel.spec ~name:"extra0" spin :: base else base
      in
      let faults =
        if with_faults then
          match
            Fault.parse
              (Printf.sprintf "seed=%d,drop=0.1,corrupt=0.05,hb.loss=0.15" seed)
          with
          | Ok f -> Some f
          | Error e -> failwith e
        else None
      in
      let cfg =
        Parallel.config ~quantum ~rounds ~seed:(Int64.of_int seed) ?faults
          ~hb_miss_limit:2
          ~migrate_every:(if with_chaos && wkind = 2 then 3 else 0)
          ?fail_host:(if with_chaos then Some (2, hosts - 1) else None)
          ~trace:true ~hosts ~mk_vms ()
      in
      let r1 = Parallel.run ~domains:1 cfg in
      let r2 = Parallel.run ~domains:2 cfg in
      let r4 = Parallel.run ~domains:4 cfg in
      r1.Parallel.report = r2.Parallel.report
      && r1.Parallel.report = r4.Parallel.report
      && Parallel.traces r1.Parallel.fleet = Parallel.traces r2.Parallel.fleet
      && Parallel.traces r1.Parallel.fleet = Parallel.traces r4.Parallel.fleet)

(* --- failure detection is exact under a clean ring --- *)

let test_failure_detection () =
  let setup = mk_setup 2 in
  let cfg =
    Parallel.config ~quantum:80_000L ~rounds:10 ~hb_miss_limit:3
      ~fail_host:(4, 1) ~hosts:3
      ~mk_vms:(fun i -> [ Parallel.spec ~name:(Printf.sprintf "vm%d" i) setup ])
      ()
  in
  let r = Parallel.run ~domains:2 cfg in
  let n2 = r.Parallel.fleet.Parallel.nodes.(2) in
  let n0 = r.Parallel.fleet.Parallel.nodes.(0) in
  checkb "host 1 is down" true (not r.Parallel.fleet.Parallel.nodes.(1).Parallel.alive);
  (* host 1 last heartbeats at the round-3 barrier (arriving in round 4),
     so its successor misses rounds 5,6,7 and declares death at round 7 *)
  Alcotest.(check (option int)) "successor detected the death at round 7"
    (Some 7) n2.Parallel.pred_dead_at;
  Alcotest.(check (option int)) "unaffected host suspects nobody" None
    n0.Parallel.pred_dead_at;
  checkb "detection is surfaced in the monitor" true
    (Monitor.count
       (List.hd n2.Parallel.hyp.Hypervisor.vms).Vm.monitor Monitor.E_ha_failover
    = 1)

(* --- self-healing control plane --- *)

module Control = Velum_cluster.Control
module Detector = Velum_cluster.Detector
module Placement = Velum_vmm.Placement
module Ha = Velum_vmm.Ha

let ctl_setup () =
  (* never halts: long-running service VMs for chaos scenarios *)
  Images.plan ~heap_pages:16 ~user:(Workloads.dirty_loop ~pages:8 ~delay:1500) ()

(* Bounded mailboxes: a full box refuses the frame, counts the drop, and
   the sender sees the backpressure in the return value. *)
let test_mailbox_bounded () =
  let mb = Mailbox.create ~capacity:2 () in
  let mk i = { Mailbox.src = 0; dst = 1; sent_at = 0L; payload = string_of_int i } in
  checkb "first accepted" true (Mailbox.post mb (mk 0));
  checkb "second accepted" true (Mailbox.post mb (mk 1));
  checkb "third refused" false (Mailbox.post mb (mk 2));
  checki "one drop counted" 1 (Mailbox.dropped mb);
  checki "capacity frames retained" 2 (List.length (Mailbox.drain mb));
  checkb "drained box accepts again" true (Mailbox.post mb (mk 3));
  checki "drop counter survives drain" 1 (Mailbox.dropped mb);
  (try
     ignore (Mailbox.create ~capacity:0 ());
     Alcotest.fail "capacity 0 must be rejected"
   with Invalid_argument _ -> ())

(* Placement.Pool: anti-affinity and headroom are enforced exactly. *)
let test_pool_placement () =
  let p = Placement.Pool.create ~hosts:3 ~cap_units:10 ~headroom:2 in
  (* admission may not touch the top [headroom] units... *)
  Alcotest.(check (option int)) "9 units exceed the admittable 8" None
    (Placement.Pool.choose p ~units:9);
  (* ...but evacuation may *)
  Alcotest.(check (option int)) "evacuation spends the reserve" (Some 0)
    (Placement.Pool.choose ~use_headroom:true p ~units:9);
  (* anti-affinity: one member of a group per host *)
  Alcotest.(check (option int)) "group lands on host 0" (Some 0)
    (Placement.Pool.choose ~group:7 p ~units:4);
  Placement.Pool.commit p 0 ~units:4 ~group:(Some 7);
  Alcotest.(check (option int)) "second member skips host 0" (Some 1)
    (Placement.Pool.choose ~group:7 p ~units:4);
  (* no conflict for ungrouped requests *)
  Alcotest.(check (option int)) "ungrouped still fits host 0" (Some 0)
    (Placement.Pool.choose p ~units:4);
  Placement.Pool.cordon p 1;
  Alcotest.(check (option int)) "cordoned host skipped" (Some 2)
    (Placement.Pool.choose ~group:7 p ~units:4);
  Placement.Pool.uncordon p 1;
  Placement.Pool.release p 0 ~units:4 ~group:(Some 7);
  Alcotest.(check (option int)) "release clears the group" (Some 0)
    (Placement.Pool.choose ~group:7 p ~units:4)

(* Host kill → exact detection round → fence → evacuation from the last
   checkpoint onto survivors; anti-affinity respected; zero split-brain. *)
let test_evacuation_exact () =
  let setup = ctl_setup () in
  let f = setup.Images.frames in
  let workload =
    List.init 12 (fun i ->
        Control.desc
          ~prio:
            (match i mod 3 with
            | 0 -> Control.High
            | 1 -> Control.Normal
            | _ -> Control.Low)
          ?group:(if i < 4 then Some 0 else None)
          ~name:(Printf.sprintf "vm%02d" i) setup)
  in
  let cfg =
    Control.config ~hosts:6 ~cap_units:(3 * f) ~headroom:f ~rounds:20
      ~kills:[ (5, 1) ] ~workload ()
  in
  let r = Control.run ~domains:1 cfg in
  let t = r.Control.control in
  let det = Control.detector t in
  (* killed at round 5: last HB seen round 4, misses at 5,6,7 = limit 3 *)
  Alcotest.(check (option int)) "declared dead exactly at round 7" (Some 7)
    (Detector.declared_at det 1);
  checki "one death" 1 (Detector.stats det).Detector.deaths;
  let m = Control.metrics t in
  checki "every VM ends placed" 12 m.Control.placed;
  checki "nothing shed" 0 m.Control.shed;
  checkb "both victims restored from checkpoints" true
    (m.Control.evacuated = 2);
  checki "no split-brain epoch, by construction" 0 m.Control.split_brain;
  checki "no false positives fenced" 0 m.Control.fenced_alive;
  checkb "fleet availability under a clean kill" true
    (m.Control.availability >= 0.95);
  (* no survivor VM sits on the dead host *)
  List.iter
    (fun d ->
      match Control.entry_host t ~name:d.Control.name with
      | Some 1 -> Alcotest.failf "%s left on the dead host" d.Control.name
      | _ -> ())
    workload;
  (* the anti-affinity group stayed spread: four members, four hosts *)
  let hosts_of_group =
    List.filter_map
      (fun d ->
        if d.Control.group = Some 0 then
          Control.entry_host t ~name:d.Control.name
        else None)
      workload
  in
  checki "group members on distinct hosts" 4
    (List.length (List.sort_uniq compare hosts_of_group));
  checkb "reports byte-identical to a 4-domain run" true
    (String.equal r.Control.report (Control.run ~domains:4 cfg).Control.report)

(* Rolling maintenance: cordon → live-migrate everything off → reboot →
   refill, nothing left behind, migrations accounted. *)
let test_drain_completeness () =
  let setup = ctl_setup () in
  let f = setup.Images.frames in
  let workload =
    List.init 8 (fun i -> Control.desc ~name:(Printf.sprintf "vm%02d" i) setup)
  in
  let cfg =
    Control.config ~hosts:4 ~cap_units:(3 * f) ~headroom:f ~rounds:16
      ~drains:[ (4, 2) ] ~workload ()
  in
  let r = Control.run ~domains:1 cfg in
  let t = r.Control.control in
  checkb "drain completed" true (has_sub r.Control.report "drain host 2: done=true");
  List.iter
    (fun d ->
      match Control.entry_host t ~name:d.Control.name with
      | Some 2 -> Alcotest.failf "%s still on the drained host" d.Control.name
      | Some _ -> ()
      | None -> Alcotest.failf "%s not placed after the drain" d.Control.name)
    workload;
  let m = Control.metrics t in
  checki "all placed" 8 m.Control.placed;
  checkb "live migrations moved real bytes" true (m.Control.migration_bytes > 0);
  checki "no cold-move fallbacks on a clean link" 0 m.Control.cold_moves;
  checkb "maintenance outage stays inside the SLO gate" true
    (m.Control.availability >= 0.95)

(* Overload: lowest class rejected, middle class balloons victims down,
   highest class is never evicted and always lands. *)
let test_shed_order () =
  let setup = ctl_setup () in
  let f = setup.Images.frames in
  let workload =
    [
      Control.desc ~prio:Control.High ~name:"hi-a" setup;
      Control.desc ~prio:Control.Normal ~name:"no-b" setup;
      Control.desc ~prio:Control.Normal ~name:"no-c" setup;
      Control.desc ~prio:Control.Normal ~name:"no-d" setup;
      Control.desc ~prio:Control.Low ~name:"lo-e" setup;
      Control.desc ~prio:Control.Low ~name:"lo-f" setup;
      (* the overload burst: a High arrival into a full cluster *)
      Control.desc ~prio:Control.High ~arrives:2 ~name:"hi-g" setup;
    ]
  in
  let cfg = Control.config ~hosts:2 ~cap_units:(2 * f) ~rounds:10 ~workload () in
  let r = Control.run ~domains:1 cfg in
  let t = r.Control.control in
  Alcotest.(check (option bool)) "low class rejected" (Some true)
    (Option.map (fun s -> s = Control.Shed) (Control.entry_state t ~name:"lo-e"));
  Alcotest.(check (option bool)) "second low rejected" (Some true)
    (Option.map (fun s -> s = Control.Shed) (Control.entry_state t ~name:"lo-f"));
  checkb "late high-priority VM placed via ballooning" true
    (Control.entry_host t ~name:"hi-g" <> None);
  checkb "resident high-priority VM untouched" true
    (Control.entry_host t ~name:"hi-a" <> None);
  let mon = Control.cluster_monitor t in
  checki "two shed events" 2 (Monitor.count mon Monitor.E_cluster_shed);
  checkb "balloon squeezes recorded" true
    (Monitor.count mon Monitor.E_cluster_degraded >= 1);
  let m = Control.metrics t in
  checki "shed metric agrees" 2 m.Control.shed;
  checkb "ballooned rounds count as SLO violations" true
    (m.Control.slo_violations > 0)

(* Detector knobs: timeout delays declaration; probe backoff thins the
   probe stream.  Mirrors the Ha.Failover dials exactly. *)
let test_detector_knobs () =
  let quantum = 50_000L in
  let alive_until k i = not (i = 1 && k <= 0) in
  let run_det ~knobs ~rounds =
    let det = Detector.create ~knobs ~hosts:2 ~quantum ~seed:3L () in
    let declared = ref None in
    for round = 0 to rounds - 1 do
      let dead =
        Detector.observe_round det ~alive:(alive_until (3 - round)) ~round
      in
      if List.mem 1 dead && !declared = None then declared := Some round
    done;
    (det, !declared)
  in
  let base = { Ha.Failover.miss_limit = 3; timeout = 0L; takeover_backoff = 0L } in
  let _, d0 = run_det ~knobs:base ~rounds:14 in
  (* dead from round 3: misses 3,4,5 → declared at round 5 *)
  Alcotest.(check (option int)) "miss limit alone declares at round 5" (Some 5) d0;
  (* a timeout floor of 6 quanta delays the declaration *)
  let _, d1 =
    run_det ~knobs:{ base with Ha.Failover.timeout = Int64.mul 6L quantum } ~rounds:14
  in
  (match d1 with
  | Some r -> checkb "timeout floor delays declaration" true (r > 5)
  | None -> Alcotest.fail "timeout variant must still declare");
  (* probe backoff: suspect-but-undeclared host is probed ever more
     sparsely when the backoff knob is set *)
  let probes ~backoff =
    let knobs =
      { Ha.Failover.miss_limit = 99; timeout = 0L; takeover_backoff = backoff }
    in
    let det, _ = (run_det ~knobs ~rounds:14 |> fun (d, x) -> (d, x)) in
    (Detector.stats det).Detector.probes_sent
  in
  let eager = probes ~backoff:0L in
  let lazy_ = probes ~backoff:(Int64.mul 4L quantum) in
  checkb "backoff thins the probe stream" true (lazy_ < eager);
  checkb "probes still flow" true (lazy_ >= 1)

(* Ha.Failover honours the same knobs: a timeout floor postpones the
   takeover decision past the pure miss-count point. *)
let test_failover_knobs () =
  let mk () =
    let setup =
      Images.plan ~heap_pages:32 ~user:(Workloads.dirty_loop ~pages:16 ~delay:50) ()
    in
    let mk_hyp () =
      let host = Velum_vmm.Host.create ~frames:(setup.Images.frames + 512) () in
      Hypervisor.create ~ctx:(Velum_vmm.Host_ctx.create ~host ()) ()
    in
    let primary = mk_hyp () in
    let backup = mk_hyp () in
    let vm =
      Hypervisor.create_vm primary ~name:"prot" ~mem_frames:setup.Images.frames
        ~entry:Images.entry ()
    in
    Images.load_vm vm setup;
    ignore (Hypervisor.run primary ~budget:1_000_000L);
    (primary, backup, vm, Velum_devices.Link.create ())
  in
  let failover_at ~knobs =
    let primary, backup, vm, link = mk () in
    let fo =
      Ha.Failover.create ~primary ~backup ~vm ~link ?knobs
        ~primary_dies_at:1_500_000L ()
    in
    let _, s = Ha.Failover.run fo ~epoch_cycles:150_000L ~epochs:24 in
    s.Ha.Failover.failover_at
  in
  let default_at = failover_at ~knobs:None in
  let slow_at =
    failover_at
      ~knobs:
        (Some
           {
             Ha.Failover.miss_limit = 3;
             timeout = 1_200_000L;
             takeover_backoff = 300_000L;
           })
  in
  match (default_at, slow_at) with
  | Some d, Some s ->
      checkb "timeout floor postpones the takeover" true (Int64.compare s d > 0)
  | _ -> Alcotest.fail "both configurations must fail over"

(* The whole control plane — detection, evacuation, maintenance, shed,
   fault injection on its own sites — is byte-deterministic at 1/2/4
   domains. *)
let control_invariance_prop =
  QCheck2.Test.make ~count:4
    ~name:"cluster control report is byte-identical for domains 1/2/4"
    QCheck2.Gen.(
      tup5 (int_range 0 9999) (int_range 3 4) (int_range 2 5) bool bool)
    (fun (seed, hosts, kill_round, with_faults, with_burst) ->
      let setup = ctl_setup () in
      let f = setup.Images.frames in
      let workload =
        List.init (2 * hosts) (fun i ->
            Control.desc
              ~prio:
                (match i mod 3 with
                | 0 -> Control.High
                | 1 -> Control.Normal
                | _ -> Control.Low)
              ?group:(if i < 3 then Some 0 else None)
              ~arrives:(if with_burst && i >= 2 * hosts - 2 then 6 else 0)
              ~name:(Printf.sprintf "vm%02d" i) setup)
      in
      let faults =
        if with_faults then
          match
            Fault.parse
              (Printf.sprintf
                 "seed=%d,cluster.hb=0.2,cluster.evac=0.25,cluster.drain=0.25,drop=0.05"
                 seed)
          with
          | Ok fp -> Some fp
          | Error e -> failwith e
        else None
      in
      let cfg =
        Control.config ~hosts ~cap_units:(3 * f) ~headroom:f ~rounds:14
          ~seed:(Int64.of_int seed) ?faults
          ~kills:[ (kill_round, 1) ]
          ~drains:[ (kill_round + 2, 0) ]
          ~workload ()
      in
      let r1 = Control.run ~domains:1 cfg in
      let r2 = Control.run ~domains:2 cfg in
      let r4 = Control.run ~domains:4 cfg in
      String.equal r1.Control.report r2.Control.report
      && String.equal r1.Control.report r4.Control.report)

let () =
  Alcotest.run "cluster"
    [
      ( "plumbing",
        [
          Alcotest.test_case "barrier lockstep across domains" `Quick
            test_barrier_lockstep;
          Alcotest.test_case "mailbox FIFO and concurrent posting" `Quick
            test_mailbox;
        ] );
      ( "share-nothing",
        [
          Alcotest.test_case "two traced hypervisors do not cross-talk" `Quick
            test_concurrent_traces;
          Alcotest.test_case "monitor export is insertion-order independent"
            `Quick test_monitor_export_stable;
          Alcotest.test_case "derived fault plans are independent" `Quick
            test_fault_derive;
        ] );
      ( "round-barrier",
        Alcotest.test_case "ring failure detection is exact" `Quick
          test_failure_detection
        :: qsuite [ fleet_invariance_prop ] );
      ( "control-plane",
        [
          Alcotest.test_case "bounded mailboxes backpressure and count drops"
            `Quick test_mailbox_bounded;
          Alcotest.test_case "pool placement: anti-affinity and headroom"
            `Quick test_pool_placement;
          Alcotest.test_case "kill → exact detection → evacuation, no split-brain"
            `Quick test_evacuation_exact;
          Alcotest.test_case "rolling drain leaves nothing behind" `Quick
            test_drain_completeness;
          Alcotest.test_case "overload sheds by priority class" `Quick
            test_shed_order;
          Alcotest.test_case "detector knobs: timeout floor and probe backoff"
            `Quick test_detector_knobs;
          Alcotest.test_case "failover knobs: timeout floor postpones takeover"
            `Quick test_failover_knobs;
        ]
        @ qsuite [ control_invariance_prop ] );
    ]
