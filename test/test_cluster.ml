(* Parallel cluster runner: a random fleet — seeds, fault plans, quantum
   sizes, migrations, injected host failures — produces byte-identical
   reports and trace exports whatever the domain count (qcheck), the
   round barrier and mailboxes behave under real domains, and the
   share-nothing regressions hold: two traced hypervisors in one process
   never cross-talk scheduler events, Monitor exports are insertion-order
   independent, and derived fault plans draw from independent streams. *)

open Velum_vmm
open Velum_guests
module Parallel = Velum_cluster.Parallel
module Barrier = Velum_cluster.Barrier
module Mailbox = Velum_cluster.Mailbox
module Fault = Velum_util.Fault

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let has_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- barrier: phases stay in lockstep under real domains --- *)

let test_barrier_lockstep () =
  let workers = 3 and rounds = 50 in
  let start_b = Barrier.create ~parties:(workers + 1) in
  let done_b = Barrier.create ~parties:(workers + 1) in
  let cells = Array.make workers 0 in
  let stop = ref false in
  let worker w =
    let live = ref true in
    while !live do
      Barrier.await start_b;
      if !stop then live := false
      else begin
        cells.(w) <- cells.(w) + 1;
        Barrier.await done_b
      end
    done
  in
  let doms = Array.init workers (fun w -> Domain.spawn (fun () -> worker w)) in
  let ok = ref true in
  for r = 1 to rounds do
    Barrier.await start_b;
    Barrier.await done_b;
    Array.iter (fun c -> if c <> r then ok := false) cells
  done;
  stop := true;
  Barrier.await start_b;
  Array.iter Domain.join doms;
  checkb "every worker advanced exactly once per round" true !ok

(* --- mailbox: FIFO, and no frame lost under concurrent posting --- *)

let test_mailbox () =
  let mb = Mailbox.create () in
  let mk i =
    { Mailbox.src = 0; dst = 1; sent_at = Int64.of_int i; payload = string_of_int i }
  in
  for i = 1 to 5 do
    Mailbox.post mb (mk i)
  done;
  checks "FIFO order" "1 2 3 4 5"
    (String.concat " " (List.map (fun f -> f.Mailbox.payload) (Mailbox.drain mb)));
  checki "drained" 0 (Mailbox.length mb);
  let n = 1000 in
  let poster () = for i = 1 to n do Mailbox.post mb (mk i) done in
  let d1 = Domain.spawn poster and d2 = Domain.spawn poster in
  Domain.join d1;
  Domain.join d2;
  checki "no frame lost across domains" (2 * n) (List.length (Mailbox.drain mb))

(* --- regression: two traced hypervisors must not cross-talk --- *)

(* With a process-wide notify cell, the second set_trace would steal the
   first hypervisor's scheduler notifications: running A would record
   events (at least the credit scheduler's first refill) into B's trace.
   The notify hook is a per-scheduler field, so B's sink must stay empty
   until B itself runs. *)
let test_concurrent_traces () =
  let setup = Images.plan ~user:(Workloads.syscall_loop ~count:50L) () in
  let mk name =
    let hyp = Hypervisor.create () in
    let tr = Trace.create () in
    Hypervisor.set_trace hyp tr;
    let vm =
      Hypervisor.create_vm hyp ~name ~mem_frames:setup.Images.frames
        ~entry:Images.entry ()
    in
    Images.load_vm vm setup;
    (hyp, tr)
  in
  let a, tra = mk "alpha" in
  let b, trb = mk "beta" in
  ignore (Hypervisor.run a ~budget:5_000_000L);
  checkb "A recorded events" true (Trace.events_recorded tra > 0);
  checkb "A saw its scheduler's notifications" true
    (has_sub (Trace.export_string tra) "sched-refill");
  checki "B's sink is untouched by A's run" 0 (Trace.events_recorded trb);
  let a_before = Trace.events_recorded tra in
  ignore (Hypervisor.run b ~budget:5_000_000L);
  checkb "B recorded its own events" true (Trace.events_recorded trb > 0);
  checki "B's run left A's sink alone" a_before (Trace.events_recorded tra);
  checkb "no foreign VM leaked into A" true
    (not (has_sub (Trace.export_string tra) "beta"));
  checkb "no foreign VM leaked into B" true
    (not (has_sub (Trace.export_string trb) "alpha"))

(* --- monitor exports are insertion-order independent --- *)

let test_monitor_export_stable () =
  let m1 = Monitor.create () and m2 = Monitor.create () in
  List.iter
    (fun m ->
      Monitor.bump m Monitor.E_csr;
      Monitor.bump m Monitor.E_mmio;
      Monitor.add_cycles m Monitor.E_csr 840)
    [ m1; m2 ];
  let gauges = [ ("tlb.hits", 7); ("dtlb.hits", 3); ("engine.cache.hits", 9) ] in
  List.iter (fun (k, v) -> Monitor.set_gauge m1 k v) gauges;
  List.iter (fun (k, v) -> Monitor.set_gauge m2 k v) (List.rev gauges);
  checks "json is order-stable" (Monitor.to_json m1) (Monitor.to_json m2);
  checks "pp is order-stable"
    (Format.asprintf "%a" Monitor.pp m1)
    (Format.asprintf "%a" Monitor.pp m2);
  checkb "json carries the counters" true
    (has_sub (Monitor.to_json m1) "\"csr\":[1,840]")

(* --- derived fault plans: same profile, independent streams --- *)

let test_fault_derive () =
  let base = Fault.create ~seed:42L () in
  Fault.set_prob base Fault.Drop 0.5;
  let schedule f =
    List.init 64 (fun i -> Fault.fire f Fault.Drop ~now:(Int64.of_int i))
  in
  let d1 = Fault.derive base ~seed:1L in
  let d1' = Fault.derive base ~seed:1L in
  let d2 = Fault.derive base ~seed:2L in
  checkb "equal seeds give equal schedules" true (schedule d1 = schedule d1');
  checkb "different seeds give different schedules" true
    (schedule d1' <> schedule d2);
  checkb "derivation copies the profile" true (Fault.prob d2 Fault.Drop = 0.5);
  checki "the base plan's counters are untouched" 0 (Fault.injected base Fault.Drop)

(* --- the tentpole property: domain-count invariance --- *)

let mk_setup kind =
  match kind with
  | 0 -> Images.plan ~user:(Workloads.syscall_loop ~count:120L) ()
  | 1 -> Images.plan ~user:(Workloads.cpu_spin ~iters:40_000L) ()
  | _ ->
      (* never halts: every round runs a full quantum *)
      Images.plan ~heap_pages:16 ~user:(Workloads.dirty_loop ~pages:8 ~delay:1500) ()

let fleet_invariance_prop =
  QCheck2.Test.make ~count:8
    ~name:"fleet report and traces are byte-identical for domains 1/2/4"
    QCheck2.Gen.(
      tup7 (int_range 0 9999) (int_range 2 4) (int_range 0 2)
        (oneofl [ 60_000L; 150_000L ])
        (int_range 4 6) bool bool)
    (fun (seed, hosts, wkind, quantum, rounds, with_faults, with_chaos) ->
      let setup = mk_setup wkind in
      let spin = mk_setup 1 in
      let mk_vms i =
        let base = [ Parallel.spec ~name:(Printf.sprintf "vm%d" i) setup ] in
        if i = 0 then Parallel.spec ~name:"extra0" spin :: base else base
      in
      let faults =
        if with_faults then
          match
            Fault.parse
              (Printf.sprintf "seed=%d,drop=0.1,corrupt=0.05,hb.loss=0.15" seed)
          with
          | Ok f -> Some f
          | Error e -> failwith e
        else None
      in
      let cfg =
        Parallel.config ~quantum ~rounds ~seed:(Int64.of_int seed) ?faults
          ~hb_miss_limit:2
          ~migrate_every:(if with_chaos && wkind = 2 then 3 else 0)
          ?fail_host:(if with_chaos then Some (2, hosts - 1) else None)
          ~trace:true ~hosts ~mk_vms ()
      in
      let r1 = Parallel.run ~domains:1 cfg in
      let r2 = Parallel.run ~domains:2 cfg in
      let r4 = Parallel.run ~domains:4 cfg in
      r1.Parallel.report = r2.Parallel.report
      && r1.Parallel.report = r4.Parallel.report
      && Parallel.traces r1.Parallel.fleet = Parallel.traces r2.Parallel.fleet
      && Parallel.traces r1.Parallel.fleet = Parallel.traces r4.Parallel.fleet)

(* --- failure detection is exact under a clean ring --- *)

let test_failure_detection () =
  let setup = mk_setup 2 in
  let cfg =
    Parallel.config ~quantum:80_000L ~rounds:10 ~hb_miss_limit:3
      ~fail_host:(4, 1) ~hosts:3
      ~mk_vms:(fun i -> [ Parallel.spec ~name:(Printf.sprintf "vm%d" i) setup ])
      ()
  in
  let r = Parallel.run ~domains:2 cfg in
  let n2 = r.Parallel.fleet.Parallel.nodes.(2) in
  let n0 = r.Parallel.fleet.Parallel.nodes.(0) in
  checkb "host 1 is down" true (not r.Parallel.fleet.Parallel.nodes.(1).Parallel.alive);
  (* host 1 last heartbeats at the round-3 barrier (arriving in round 4),
     so its successor misses rounds 5,6,7 and declares death at round 7 *)
  Alcotest.(check (option int)) "successor detected the death at round 7"
    (Some 7) n2.Parallel.pred_dead_at;
  Alcotest.(check (option int)) "unaffected host suspects nobody" None
    n0.Parallel.pred_dead_at;
  checkb "detection is surfaced in the monitor" true
    (Monitor.count
       (List.hd n2.Parallel.hyp.Hypervisor.vms).Vm.monitor Monitor.E_ha_failover
    = 1)

let () =
  Alcotest.run "cluster"
    [
      ( "plumbing",
        [
          Alcotest.test_case "barrier lockstep across domains" `Quick
            test_barrier_lockstep;
          Alcotest.test_case "mailbox FIFO and concurrent posting" `Quick
            test_mailbox;
        ] );
      ( "share-nothing",
        [
          Alcotest.test_case "two traced hypervisors do not cross-talk" `Quick
            test_concurrent_traces;
          Alcotest.test_case "monitor export is insertion-order independent"
            `Quick test_monitor_export_stable;
          Alcotest.test_case "derived fault plans are independent" `Quick
            test_fault_derive;
        ] );
      ( "round-barrier",
        Alcotest.test_case "ring failure detection is exact" `Quick
          test_failure_detection
        :: qsuite [ fleet_invariance_prop ] );
    ]
