(* Differential testing: generate random guest user programs, run each
   on bare metal and under the hypervisor in every configuration
   (shadow/nested paging, paravirtual, binary translation, 4 KiB and
   2 MiB heap mappings), and require byte-identical console output.

   Each program seeds registers with random constants, applies a random
   sequence of ALU and heap load/store operations, folds the registers
   into a digest, and prints the digest as 16 letters.  Any divergence
   between the native hart and the deprivileged hart — in instruction
   semantics, trap reflection, address translation, A/D handling, or
   device emulation — shows up as different output. *)

open Velum_isa
open Velum_devices
open Velum_vmm
open Velum_guests
open Asm

(* ---------------- program generator ---------------- *)

type op =
  | Alu3 of Instr.alu_op * int * int * int  (* rd, rs1, rs2 in 2..11 *)
  | Alui of Instr.alu_op * int * int * int64
  | Store of int * int64  (* src reg, aligned heap offset *)
  | Load of int * int64  (* rd, aligned heap offset *)

let gen_reg = QCheck2.Gen.int_range 2 11

let gen_alu3_op =
  QCheck2.Gen.oneofl
    [ Instr.Add; Instr.Sub; Instr.Mul; Instr.And; Instr.Or; Instr.Xor;
      Instr.Sll; Instr.Srl; Instr.Sra; Instr.Slt; Instr.Sltu; Instr.Div; Instr.Rem ]

let gen_alui_op =
  QCheck2.Gen.oneofl
    [ Instr.Add; Instr.And; Instr.Or; Instr.Xor; Instr.Sll; Instr.Srl; Instr.Sra;
      Instr.Slt; Instr.Sltu ]

let gen_op =
  let open QCheck2.Gen in
  frequency
    [
      (5, map (fun ((o, a), (b, c)) -> Alu3 (o, a, b, c))
           (pair (pair gen_alu3_op gen_reg) (pair gen_reg gen_reg)));
      (3, map (fun ((o, a), (b, i)) -> Alui (o, a, b, Int64.of_int i))
           (pair (pair gen_alui_op gen_reg) (pair gen_reg (int_range (-100000) 100000))));
      (1, map (fun (r, slot) -> Store (r, Int64.of_int (slot * 8)))
           (pair gen_reg (int_range 0 63)));
      (1, map (fun (r, slot) -> Load (r, Int64.of_int (slot * 8)))
           (pair gen_reg (int_range 0 63)));
    ]

let gen_program =
  let open QCheck2.Gen in
  pair (array_size (return 10) (map Int64.of_int int)) (list_size (int_range 5 60) gen_op)

let compile (seeds, ops) =
  let seed_items =
    List.concat (List.mapi (fun i v -> [ li (i + 2) v ]) (Array.to_list seeds))
  in
  let op_item = function
    | Alu3 (o, rd, rs1, rs2) -> Insn (Instr.Alu (o, rd, rs1, rs2))
    | Alui (o, rd, rs1, imm) -> Insn (Instr.Alui (o, rd, rs1, imm))
    | Store (src, off) -> Insn (Instr.Store { src; base = 15; off; width = Instr.W64 })
    | Load (rd, off) -> Insn (Instr.Load { rd; base = 15; off; width = Instr.W64 })
  in
  let fold =
    (* digest = xor of r2..r11 *)
    [ mv r12 r2 ]
    @ List.concat (List.map (fun r -> [ xor r12 r12 r ]) [ 3; 4; 5; 6; 7; 8; 9; 10; 11 ])
  in
  let print_digest =
    [
      li r6 16L;
      label "d_loop";
      srli r7 r12 60L;
      andi r7 r7 15L;
      addi r2 r7 97L (* 'a' + nibble *);
      li r1 Abi.sys_putchar;
      ecall;
      slli r12 r12 4L;
      addi r6 r6 (-1L);
      bne r6 r0 "d_loop";
    ]
  in
  Asm.assemble ~origin:Abi.user_base
    ([ label "u_entry"; li r14 0x0014_4000L; li r15 Abi.heap_base ]
    @ seed_items
    @ List.map op_item ops
    @ fold @ print_digest
    @ [ li r1 Abi.sys_exit; ecall ])

(* ---------------- execution under each configuration ---------------- *)

let run_native setup =
  let platform = Platform.create ~frames:(setup.Images.frames + 16) () in
  Images.load_native platform setup;
  match Platform.run ~budget:100_000_000L platform with
  | Platform.Halted -> Platform.console_output platform
  | _ -> "<native did not halt>"

let run_virt ?exec_mode ~paging ~pv setup =
  let host = Host.create ~frames:(setup.Images.frames + 1024) () in
  let hyp = Hypervisor.create ~host () in
  let vm =
    Hypervisor.create_vm hyp ~name:"diff" ~mem_frames:setup.Images.frames ~paging
      ~pv:(if pv then Vm.full_pv else Vm.no_pv)
      ?exec_mode ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  match Hypervisor.run hyp ~budget:500_000_000L with
  | Hypervisor.All_halted -> Vm.console_output vm
  | _ -> "<vm did not halt>"

let differential_prop =
  QCheck2.Test.make ~count:40 ~name:"native = shadow = nested = pv for random programs"
    gen_program
    (fun prog ->
      let user = compile prog in
      let setup = Images.plan ~heap_pages:1 ~user () in
      let pv_setup = Images.plan ~pv_console:true ~pv_pt:true ~heap_pages:1 ~user () in
      let sp_setup = Images.plan ~heap_pages:1 ~heap_superpages:true ~user () in
      let native = run_native setup in
      String.length native = 16
      && native = run_virt ~paging:Vm.Shadow_paging ~pv:false setup
      && native = run_virt ~paging:Vm.Nested_paging ~pv:false setup
      && native = run_virt ~paging:Vm.Shadow_paging ~pv:true pv_setup
      && native
         = run_virt ~exec_mode:Vm.Binary_translation ~paging:Vm.Nested_paging ~pv:false
             setup
      && native = run_native sp_setup
      && native = run_virt ~paging:Vm.Nested_paging ~pv:false sp_setup
      && native = run_virt ~paging:Vm.Shadow_paging ~pv:false sp_setup)

(* A fixed regression corpus in addition to the random sweep: division
   edges, shift masking, unsigned compares, load/store interleaving. *)
let fixed_corpus () =
  let cases =
    [
      ([| 5L; 0L; Int64.min_int; -1L; 7L; 3L; 0L; 0L; 0L; 0L |],
       [ Alu3 (Instr.Div, 2, 2, 3); Alu3 (Instr.Rem, 4, 4, 5);
         Alu3 (Instr.Div, 6, 6, 7); Alu3 (Instr.Sltu, 8, 4, 5) ]);
      ([| -8L; 65L; 1L; 0L; 0L; 0L; 0L; 0L; 0L; 0L |],
       [ Alu3 (Instr.Sll, 4, 2, 3); Alu3 (Instr.Srl, 5, 2, 3);
         Alu3 (Instr.Sra, 6, 2, 3) ]);
      ([| 0x1234L; 0x5678L; 0L; 0L; 0L; 0L; 0L; 0L; 0L; 0L |],
       [ Store (2, 0L); Store (3, 8L); Load (4, 0L); Load (5, 8L);
         Alu3 (Instr.Add, 6, 4, 5); Store (6, 16L); Load (7, 16L) ]);
    ]
  in
  List.iter
    (fun prog ->
      let user = compile prog in
      let setup = Images.plan ~heap_pages:1 ~user () in
      let native = run_native setup in
      Alcotest.(check string) "shadow" native
        (run_virt ~paging:Vm.Shadow_paging ~pv:false setup);
      Alcotest.(check string) "nested" native
        (run_virt ~paging:Vm.Nested_paging ~pv:false setup))
    cases

let () =
  Alcotest.run "differential"
    [
      ( "differential",
        [
          Alcotest.test_case "fixed corpus" `Quick fixed_corpus;
          QCheck_alcotest.to_alcotest differential_prop;
        ] );
    ]
