(* Unit tests for velum_isa: architecture definitions, PTE format,
   instruction encode/decode, and the assembler. *)

open Velum_isa

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check64 = Alcotest.(check int64)

(* ---------------- Arch ---------------- *)

let test_csr_index_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check (option string))
        "csr roundtrip"
        (Some (Arch.csr_name c))
        (Option.map Arch.csr_name (Arch.csr_of_index (Arch.csr_index c))))
    Arch.all_csrs;
  Alcotest.(check (option string)) "bad index" None
    (Option.map Arch.csr_name (Arch.csr_of_index 99))

let test_cause_codes () =
  checkb "interrupt flag" true (Arch.is_interrupt Arch.Timer_interrupt);
  checkb "sync has no flag" false (Arch.is_interrupt Arch.Syscall);
  List.iter
    (fun c ->
      match Arch.cause_of_code (Arch.cause_code c) with
      | Some c' -> checkb "cause roundtrip" true (c = c')
      | None -> Alcotest.fail "cause did not round-trip")
    [ Arch.Syscall; Arch.Illegal_instruction; Arch.Store_page_fault; Arch.Timer_interrupt ]

let test_fault_cause_matrix () =
  checkb "store page" true (Arch.fault_cause Arch.Store `Page = Arch.Store_page_fault);
  checkb "load access" true (Arch.fault_cause Arch.Load `Access = Arch.Load_access_fault);
  checkb "fetch misaligned" true
    (Arch.fault_cause Arch.Fetch `Misaligned = Arch.Misaligned_fetch)

let test_satp () =
  let satp = Arch.satp_make ~root_ppn:0x123L in
  checkb "enabled" true (Arch.satp_enabled satp);
  check64 "root" 0x123L (Arch.satp_root_ppn satp);
  checkb "zero disabled" false (Arch.satp_enabled 0x123L)

let test_constants () =
  checki "page size" 4096 Arch.page_size;
  checki "va bits" 39 Arch.va_bits;
  checki "instr bytes" 8 Arch.instr_bytes

(* ---------------- Pte ---------------- *)

let test_pte_leaf () =
  let p = { Pte.r = true; w = false; x = true; u = true } in
  let pte = Pte.leaf ~ppn:0x42L p in
  checkb "valid" true (Pte.is_valid pte);
  checkb "leaf" true (Pte.is_leaf pte);
  check64 "ppn" 0x42L (Pte.ppn pte);
  checkb "perms" true (Pte.perms pte = p);
  checkb "not accessed" false (Pte.accessed pte);
  checkb "not dirty" false (Pte.dirty pte)

let test_pte_table () =
  let pte = Pte.table ~ppn:7L in
  checkb "valid" true (Pte.is_valid pte);
  checkb "not a leaf" false (Pte.is_leaf pte);
  check64 "ppn" 7L (Pte.ppn pte)

let test_pte_ad_bits () =
  let pte = Pte.leaf ~ppn:1L { Pte.r = true; w = true; x = false; u = false } in
  let pte = Pte.set_accessed pte in
  checkb "accessed" true (Pte.accessed pte);
  let pte = Pte.set_dirty pte in
  checkb "dirty" true (Pte.dirty pte);
  let pte = Pte.clear_dirty pte in
  checkb "dirty cleared" false (Pte.dirty pte);
  checkb "accessed kept" true (Pte.accessed (Pte.clear_dirty pte))

let test_pte_allows () =
  let sup_rw = Pte.leaf ~ppn:1L { Pte.r = true; w = true; x = false; u = false } in
  checkb "sup load" true (Pte.allows sup_rw Arch.Load ~user:false);
  checkb "sup store" true (Pte.allows sup_rw Arch.Store ~user:false);
  checkb "sup fetch denied" false (Pte.allows sup_rw Arch.Fetch ~user:false);
  checkb "user denied" false (Pte.allows sup_rw Arch.Load ~user:true);
  let user_x = Pte.leaf ~ppn:1L { Pte.r = false; w = false; x = true; u = true } in
  checkb "user fetch" true (Pte.allows user_x Arch.Fetch ~user:true);
  checkb "user load denied" false (Pte.allows user_x Arch.Load ~user:true)

let test_pte_with_perms () =
  let pte =
    Pte.set_dirty (Pte.leaf ~ppn:9L { Pte.r = true; w = true; x = true; u = true })
  in
  let pte' = Pte.with_perms pte { Pte.r = true; w = false; x = true; u = true } in
  checkb "w stripped" false (Pte.perms pte').Pte.w;
  check64 "ppn kept" 9L (Pte.ppn pte');
  checkb "dirty kept" true (Pte.dirty pte')

(* ---------------- Instr ---------------- *)

let arbitrary_instr : Instr.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let reg = int_range 0 15 in
  let imm = map Int64.of_int (int_range (-1000000) 1000000) in
  let alu_op =
    oneofl
      [ Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Rem; Instr.And; Instr.Or;
        Instr.Xor; Instr.Sll; Instr.Srl; Instr.Sra; Instr.Slt; Instr.Sltu ]
  in
  let alui_op =
    oneofl
      [ Instr.Add; Instr.And; Instr.Or; Instr.Xor; Instr.Sll; Instr.Srl; Instr.Sra;
        Instr.Slt; Instr.Sltu ]
  in
  let branch_op =
    oneofl [ Instr.Beq; Instr.Bne; Instr.Blt; Instr.Bge; Instr.Bltu; Instr.Bgeu ]
  in
  let width = oneofl [ Instr.W8; Instr.W16; Instr.W32; Instr.W64 ] in
  let csr = oneofl Arch.all_csrs in
  oneof
    [
      return Instr.Nop;
      map (fun (op, (a, b, c)) -> Instr.Alu (op, a, b, c)) (pair alu_op (triple reg reg reg));
      map (fun (op, (a, b, i)) -> Instr.Alui (op, a, b, i)) (pair alui_op (triple reg reg imm));
      map (fun (r, i) -> Instr.Lui (r, Int64.logand i 0xFFFF_FFFFL)) (pair reg imm);
      map
        (fun ((rd, base), (off, w)) -> Instr.Load { rd; base; off; width = w })
        (pair (pair reg reg) (pair imm width));
      map
        (fun ((src, base), (off, w)) -> Instr.Store { src; base; off; width = w })
        (pair (pair reg reg) (pair imm width));
      map (fun (op, (a, b, off)) -> Instr.Branch (op, a, b, off))
        (pair branch_op (triple reg reg imm));
      map (fun (r, off) -> Instr.Jal (r, off)) (pair reg imm);
      map (fun ((rd, rs), i) -> Instr.Jalr (rd, rs, i)) (pair (pair reg reg) imm);
      return Instr.Ecall;
      return Instr.Ebreak;
      map (fun (r, c) -> Instr.Csrr (r, c)) (pair reg csr);
      map (fun (c, r) -> Instr.Csrw (c, r)) (pair csr reg);
      return Instr.Sret;
      return Instr.Sfence;
      return Instr.Wfi;
      map (fun (r, p) -> Instr.In (r, p)) (pair reg (int_range 0 0xffff));
      map (fun (p, r) -> Instr.Out (p, r)) (pair (int_range 0 0xffff) reg);
      return Instr.Hcall;
      return Instr.Halt;
    ]

let prop_encode_decode_roundtrip =
  QCheck2.Test.make ~count:2000 ~name:"encode/decode round-trips" arbitrary_instr
    (fun i -> Instr.decode (Instr.encode i) = Some i)

let test_decode_garbage () =
  Alcotest.(check (option string)) "opcode 0" None
    (Option.map Instr.to_string (Instr.decode 0L));
  Alcotest.(check (option string)) "opcode 255" None
    (Option.map Instr.to_string (Instr.decode 0xFFL));
  (* nonzero reserved bits (28-31) invalidate an otherwise-fine word *)
  let valid = Instr.encode Instr.Nop in
  let poisoned = Int64.logor valid (Int64.shift_left 1L 29) in
  Alcotest.(check (option string)) "reserved bits" None
    (Option.map Instr.to_string (Instr.decode poisoned))

let test_encode_validation () =
  Alcotest.check_raises "bad register" (Invalid_argument "Instr.encode: bad register")
    (fun () -> ignore (Instr.encode (Instr.Alu (Instr.Add, 16, 0, 0))));
  Alcotest.check_raises "imm too big"
    (Invalid_argument "Instr.encode: immediate does not fit in 32 bits") (fun () ->
      ignore (Instr.encode (Instr.Alui (Instr.Add, 1, 1, 0x1_0000_0000L))));
  Alcotest.check_raises "sub immediate invalid"
    (Invalid_argument "Instr.encode: invalid immediate ALU op") (fun () ->
      ignore (Instr.encode (Instr.Alui (Instr.Sub, 1, 1, 1L))))

let test_privileged_set () =
  checkb "csrr" true (Instr.is_privileged (Instr.Csrr (1, Arch.Satp)));
  checkb "halt" true (Instr.is_privileged Instr.Halt);
  checkb "wfi" true (Instr.is_privileged Instr.Wfi);
  checkb "in" true (Instr.is_privileged (Instr.In (1, 2)));
  checkb "add not" false (Instr.is_privileged (Instr.Alu (Instr.Add, 1, 2, 3)));
  checkb "ecall not" false (Instr.is_privileged Instr.Ecall);
  checkb "hcall not" false (Instr.is_privileged Instr.Hcall)

let test_pp_smoke () =
  checkb "alu" true (Instr.to_string (Instr.Alu (Instr.Add, 1, 2, 3)) = "add r1, r2, r3");
  checkb "load" true
    (Instr.to_string (Instr.Load { rd = 1; base = 2; off = 16L; width = Instr.W64 })
    = "ld.w64 r1, 16(r2)")

(* ---------------- Asm ---------------- *)

open Asm

let test_asm_simple_layout () =
  let img = assemble [ nop; nop; label "here"; nop ] in
  checki "size" 24 (Bytes.length img.code);
  check64 "label" 16L (symbol img "here")

let test_asm_origin () =
  let img = assemble ~origin:0x1000L [ label "start"; nop ] in
  check64 "origin label" 0x1000L (symbol img "start")

let test_asm_branch_offsets () =
  let img = assemble [ label "top"; nop; beq r1 r2 "top"; bne r1 r2 "bottom"; label "bottom" ] in
  (* the beq at offset 8 targets offset 0: delta -8 *)
  (match Instr.decode (Bytes.get_int64_le img.code 8) with
  | Some (Instr.Branch (Instr.Beq, 1, 2, off)) -> check64 "backward" (-8L) off
  | _ -> Alcotest.fail "bad beq encoding");
  match Instr.decode (Bytes.get_int64_le img.code 16) with
  | Some (Instr.Branch (Instr.Bne, 1, 2, off)) -> check64 "forward" 8L off
  | _ -> Alcotest.fail "bad bne encoding"

let test_asm_li_expansion () =
  checki "small li" 8 (size_of (li r1 42L));
  checki "negative li" 8 (size_of (li r1 (-42L)));
  checki "big li" 16 (size_of (li r1 0x1_2345_6789L));
  let img = assemble [ li r1 0xDEAD_BEEF_CAFEL ] in
  checki "two slots" 16 (Bytes.length img.code)

let test_asm_duplicate_label () =
  Alcotest.check_raises "duplicate" (Asm.Error "duplicate label \"x\"") (fun () ->
      ignore (assemble [ label "x"; label "x" ]))

let test_asm_undefined_label () =
  Alcotest.check_raises "undefined" (Asm.Error "undefined label \"nowhere\"") (fun () ->
      ignore (assemble [ jmp "nowhere" ]))

let test_asm_data_directives () =
  let img =
    assemble
      [ Dword 0x1122_3344_5566_7788L; Bytes_lit "abc"; Space 5; Align 8; label "end" ]
  in
  check64 "dword" 0x1122_3344_5566_7788L (Bytes.get_int64_le img.code 0);
  Alcotest.(check char) "bytes" 'a' (Bytes.get img.code 8);
  check64 "aligned end" 16L (symbol img "end")

let test_asm_ld_abs () =
  let img = assemble [ ldl r3 "data"; sdl r4 "data"; label "data"; Dword 0L ] in
  (match Instr.decode (Bytes.get_int64_le img.code 0) with
  | Some (Instr.Load { rd = 3; base = 0; off; width = Instr.W64 }) ->
      check64 "abs load addr" 16L off
  | _ -> Alcotest.fail "bad ldl");
  match Instr.decode (Bytes.get_int64_le img.code 8) with
  | Some (Instr.Store { src = 4; base = 0; off; width = Instr.W64 }) ->
      check64 "abs store addr" 16L off
  | _ -> Alcotest.fail "bad sdl"

let test_asm_la () =
  let img = assemble ~origin:0x2000L [ la r5 "target"; label "target"; nop ] in
  match Instr.decode (Bytes.get_int64_le img.code 0) with
  | Some (Instr.Alui (Instr.Add, 5, 0, imm)) -> check64 "la imm" 0x2008L imm
  | _ -> Alcotest.fail "bad la"

let test_asm_call_ret () =
  let img = assemble [ call "f"; halt; label "f"; ret ] in
  (match Instr.decode (Bytes.get_int64_le img.code 0) with
  | Some (Instr.Jal (15, 16L)) -> ()
  | _ -> Alcotest.fail "bad call");
  match Instr.decode (Bytes.get_int64_le img.code 16) with
  | Some (Instr.Jalr (0, 15, 0L)) -> ()
  | _ -> Alcotest.fail "bad ret"

let test_asm_misaligned_origin () =
  Alcotest.check_raises "misaligned origin"
    (Asm.Error "origin 0x4 is not instruction aligned") (fun () ->
      ignore (assemble ~origin:4L [ nop ]))

let test_asm_disassemble () =
  let img = assemble [ nop; halt ] in
  match disassemble img with
  | [ l1; l2 ] ->
      checkb "nop line" true (String.length l1 > 0);
      checkb "halt line" true
        (String.length l2 >= 4 && String.sub l2 (String.length l2 - 4) 4 = "halt")
  | _ -> Alcotest.fail "expected two lines"

(* Property: assembling a list of concrete instructions and decoding the
   image yields the same instructions. *)
let prop_asm_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"assemble/decode round-trips"
    QCheck2.Gen.(list_size (int_range 1 20) arbitrary_instr)
    (fun insns ->
      (* restrict to encodable immediates *)
      let ok =
        List.for_all
          (fun i -> match Instr.encode i with _ -> true | exception _ -> false)
          insns
      in
      if not ok then QCheck2.assume_fail ()
      else begin
        let img = assemble (List.map (fun i -> Insn i) insns) in
        let decoded =
          List.init (List.length insns) (fun k ->
              Instr.decode (Bytes.get_int64_le img.code (k * 8)))
        in
        List.for_all2 (fun i d -> d = Some i) insns decoded
      end)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "isa"
    [
      ( "arch",
        [
          Alcotest.test_case "csr indices" `Quick test_csr_index_roundtrip;
          Alcotest.test_case "cause codes" `Quick test_cause_codes;
          Alcotest.test_case "fault causes" `Quick test_fault_cause_matrix;
          Alcotest.test_case "satp" `Quick test_satp;
          Alcotest.test_case "constants" `Quick test_constants;
        ] );
      ( "pte",
        [
          Alcotest.test_case "leaf" `Quick test_pte_leaf;
          Alcotest.test_case "table" `Quick test_pte_table;
          Alcotest.test_case "a/d bits" `Quick test_pte_ad_bits;
          Alcotest.test_case "allows" `Quick test_pte_allows;
          Alcotest.test_case "with_perms" `Quick test_pte_with_perms;
        ] );
      ( "instr",
        [
          Alcotest.test_case "decode garbage" `Quick test_decode_garbage;
          Alcotest.test_case "encode validation" `Quick test_encode_validation;
          Alcotest.test_case "privileged set" `Quick test_privileged_set;
          Alcotest.test_case "pretty printing" `Quick test_pp_smoke;
        ]
        @ qsuite [ prop_encode_decode_roundtrip ] );
      ( "asm",
        [
          Alcotest.test_case "layout" `Quick test_asm_simple_layout;
          Alcotest.test_case "origin" `Quick test_asm_origin;
          Alcotest.test_case "branch offsets" `Quick test_asm_branch_offsets;
          Alcotest.test_case "li expansion" `Quick test_asm_li_expansion;
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
          Alcotest.test_case "undefined label" `Quick test_asm_undefined_label;
          Alcotest.test_case "data directives" `Quick test_asm_data_directives;
          Alcotest.test_case "absolute load/store" `Quick test_asm_ld_abs;
          Alcotest.test_case "la" `Quick test_asm_la;
          Alcotest.test_case "call/ret" `Quick test_asm_call_ret;
          Alcotest.test_case "misaligned origin" `Quick test_asm_misaligned_origin;
          Alcotest.test_case "disassemble" `Quick test_asm_disassemble;
        ]
        @ qsuite [ prop_asm_roundtrip ] );
    ]
