test/test_util.ml: Alcotest Array Bitops Bytes Fnv Fun Int64 List QCheck2 QCheck_alcotest Queue Ring Rng Stats String Tablefmt Velum_util
