test/test_hypervisor.ml: Alcotest Arch Array Asm Event Frame_alloc Host Hypercall Hypervisor Int64 List Monitor Printf Vcpu Velum_isa Velum_machine Velum_util Velum_vmm Vm
