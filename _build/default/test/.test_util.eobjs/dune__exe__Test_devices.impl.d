test/test_devices.ml: Alcotest Arch Blockdev Bus Bytes Char Instr Int64 Link List Nic Option Phys_mem Platform Printf String Uart Velum_devices Velum_isa Velum_machine Virtio_blk Virtio_ring
