test/test_machine.ml: Alcotest Arch Asm Bus Bytes Char Cost_model Cpu Format Instr Int64 List Mmu Page_table Phys_mem Pte QCheck2 QCheck_alcotest Tlb Velum_isa Velum_machine
