test/test_isa.ml: Alcotest Arch Asm Bytes Instr Int64 List Option Pte QCheck2 QCheck_alcotest String Velum_isa
