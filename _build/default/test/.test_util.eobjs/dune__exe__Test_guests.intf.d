test/test_guests.mli:
