test/test_guests.ml: Abi Alcotest Asm Bytes Images Instr Int64 Kernel List Printf Velum_guests Velum_isa Workloads
