test/test_differential.ml: Abi Alcotest Array Asm Host Hypervisor Images Instr Int64 List Platform QCheck2 QCheck_alcotest String Velum_devices Velum_guests Velum_isa Velum_vmm Vm
