(** VR64 architecture definition: modes, registers, CSRs, trap causes and
    the constants shared by the CPU, MMU and guest kernels.

    VR64 is a 64-bit RISC machine with two privilege modes and Sv39-style
    three-level paging.  It is deliberately {e classically virtualizable}:
    every sensitive instruction is also privileged, so a trap-and-emulate
    hypervisor needs no binary translation (cf. Popek & Goldberg). *)

(** {1 Privilege modes} *)

type mode = User | Supervisor

val pp_mode : Format.formatter -> mode -> unit

(** {1 General registers}

    Sixteen 64-bit registers; register 0 reads as zero and ignores
    writes. *)

type reg = int
(** Register index in [0, 15]. *)

val num_regs : int

val reg_name : reg -> string
(** [reg_name r] is ["r3"] etc.

    @raise Invalid_argument if out of range. *)

(** {1 Control and status registers} *)

type csr =
  | Satp  (** paging control: bit 63 = translation enable, bits 0-43 = root
              page-table PPN *)
  | Stvec  (** trap-vector base address *)
  | Sepc  (** PC saved on trap *)
  | Scause  (** trap cause code *)
  | Stval  (** faulting address / bad instruction *)
  | Sie  (** interrupt-enable bits; see {!irq_timer} / {!irq_external} *)
  | Sip  (** interrupt-pending bits (read-only to software) *)
  | Sscratch  (** scratch for trap handlers *)
  | Stimecmp  (** timer comparator: timer interrupt pends when
                  [time >= stimecmp] *)
  | Time  (** current cycle count (read-only) *)
  | Vmid  (** VM identity hint: 0 when native, nonzero under a hypervisor
              that chooses to expose itself (read-only) *)
  | Hartid  (** this hart's index, 0-based (read-only) *)

val csr_index : csr -> int
(** Stable encoding index used in the instruction format. *)

val csr_of_index : int -> csr option
val csr_name : csr -> string
val all_csrs : csr list

val csr_read_only : csr -> bool
(** [csr_read_only c] is true for [Time], [Sip], [Vmid] and
    [Hartid]. *)

(** {1 Interrupt bit positions in [sie]/[sip]} *)

val irq_timer : int
val irq_external : int

(** {1 Trap causes} *)

type cause =
  | Syscall  (** [ecall] from user mode *)
  | Breakpoint  (** [ebreak] *)
  | Illegal_instruction
  | Misaligned_fetch
  | Misaligned_load
  | Misaligned_store
  | Fetch_page_fault
  | Load_page_fault
  | Store_page_fault
  | Fetch_access_fault  (** physical address outside RAM and MMIO *)
  | Load_access_fault
  | Store_access_fault
  | Timer_interrupt
  | External_interrupt

val cause_code : cause -> int64
(** Numeric encoding written to [scause]; interrupts have bit 63 set. *)

val cause_of_code : int64 -> cause option
val cause_name : cause -> string
val is_interrupt : cause -> bool

(** {1 Memory accesses} *)

type access = Fetch | Load | Store

val access_name : access -> string

val fault_cause : access -> [ `Page | `Access | `Misaligned ] -> cause
(** [fault_cause a k] maps an access kind and fault class to the
    architectural cause, e.g. [fault_cause Store `Page =
    Store_page_fault]. *)

(** {1 Architectural constants} *)

val xlen : int
(** Word size in bits (64). *)

val instr_bytes : int
(** Instruction width in bytes (8). *)

val page_shift : int
(** log2 of the page size (12). *)

val page_size : int
(** 4096. *)

val pt_levels : int
(** Page-table levels (3). *)

val vpn_bits : int
(** Index bits per level (9 → 512 PTEs per table page). *)

val va_bits : int
(** Virtual-address width: [pt_levels * vpn_bits + page_shift] = 39. *)

val satp_enable_bit : int
(** Bit position of the translation-enable flag in [satp] (63). *)

val satp_make : root_ppn:int64 -> int64
(** [satp_make ~root_ppn] is a satp value with translation enabled. *)

val satp_enabled : int64 -> bool
val satp_root_ppn : int64 -> int64
