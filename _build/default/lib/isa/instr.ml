open Velum_util

type alu_op =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Slt
  | Sltu

type branch_op = Beq | Bne | Blt | Bge | Bltu | Bgeu

type width = W8 | W16 | W32 | W64

let width_bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

type t =
  | Nop
  | Alu of alu_op * Arch.reg * Arch.reg * Arch.reg
  | Alui of alu_op * Arch.reg * Arch.reg * int64
  | Lui of Arch.reg * int64
  | Load of { rd : Arch.reg; base : Arch.reg; off : int64; width : width }
  | Store of { src : Arch.reg; base : Arch.reg; off : int64; width : width }
  | Branch of branch_op * Arch.reg * Arch.reg * int64
  | Jal of Arch.reg * int64
  | Jalr of Arch.reg * Arch.reg * int64
  | Ecall
  | Ebreak
  | Csrr of Arch.reg * Arch.csr
  | Csrw of Arch.csr * Arch.reg
  | Sret
  | Sfence
  | Wfi
  | In of Arch.reg * int
  | Out of int * Arch.reg
  | Hcall
  | Halt

let is_privileged = function
  | Csrr _ | Csrw _ | Sret | Sfence | Wfi | In _ | Out _ | Halt -> true
  | Nop | Alu _ | Alui _ | Lui _ | Load _ | Store _ | Branch _ | Jal _ | Jalr _
  | Ecall | Ebreak | Hcall ->
      false

(* Opcode assignments.  Gaps are illegal encodings. *)
let op_nop = 0x01
let op_alu = 0x02
let op_alui = 0x03
let op_lui = 0x04
let op_load = 0x05
let op_store = 0x06
let op_branch = 0x07
let op_jal = 0x08
let op_jalr = 0x09
let op_ecall = 0x0a
let op_ebreak = 0x0b
let op_csrr = 0x0c
let op_csrw = 0x0d
let op_sret = 0x0e
let op_sfence = 0x0f
let op_wfi = 0x10
let op_in = 0x11
let op_out = 0x12
let op_hcall = 0x13
let op_halt = 0x14

let alu_code = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | Rem -> 4
  | And -> 5
  | Or -> 6
  | Xor -> 7
  | Sll -> 8
  | Srl -> 9
  | Sra -> 10
  | Slt -> 11
  | Sltu -> 12

let alu_ops = [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Sll; Srl; Sra; Slt; Sltu ]
let alu_of_code c = List.find_opt (fun op -> alu_code op = c) alu_ops

let alui_valid = function
  | Add | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu -> true
  | Sub | Mul | Div | Rem -> false

let branch_code = function
  | Beq -> 0
  | Bne -> 1
  | Blt -> 2
  | Bge -> 3
  | Bltu -> 4
  | Bgeu -> 5

let branch_ops = [ Beq; Bne; Blt; Bge; Bltu; Bgeu ]
let branch_of_code c = List.find_opt (fun op -> branch_code op = c) branch_ops

let width_code = function W8 -> 0 | W16 -> 1 | W32 -> 2 | W64 -> 3
let width_of_code = function
  | 0 -> Some W8
  | 1 -> Some W16
  | 2 -> Some W32
  | 3 -> Some W64
  | _ -> None

let check_reg r =
  if r < 0 || r >= Arch.num_regs then invalid_arg "Instr.encode: bad register"

let check_imm imm =
  if imm < Int64.neg 0x8000_0000L || imm > 0xFFFF_FFFFL then
    invalid_arg "Instr.encode: immediate does not fit in 32 bits"

let pack ~opcode ?(rd = 0) ?(rs1 = 0) ?(rs2 = 0) ?(aux = 0) ?(imm = 0L) () =
  check_reg rd;
  check_reg rs1;
  check_reg rs2;
  if aux < 0 || aux > 0xff then invalid_arg "Instr.encode: bad aux field";
  check_imm imm;
  let w = Int64.of_int (opcode land 0xff) in
  let w = Bitops.insert w ~lo:8 ~width:4 (Int64.of_int rd) in
  let w = Bitops.insert w ~lo:12 ~width:4 (Int64.of_int rs1) in
  let w = Bitops.insert w ~lo:16 ~width:4 (Int64.of_int rs2) in
  let w = Bitops.insert w ~lo:20 ~width:8 (Int64.of_int aux) in
  Bitops.insert w ~lo:32 ~width:32 imm

let encode = function
  | Nop -> pack ~opcode:op_nop ()
  | Alu (op, rd, rs1, rs2) -> pack ~opcode:op_alu ~rd ~rs1 ~rs2 ~aux:(alu_code op) ()
  | Alui (op, rd, rs1, imm) ->
      if not (alui_valid op) then invalid_arg "Instr.encode: invalid immediate ALU op";
      pack ~opcode:op_alui ~rd ~rs1 ~aux:(alu_code op) ~imm ()
  | Lui (rd, imm) -> pack ~opcode:op_lui ~rd ~imm ()
  | Load { rd; base; off; width } ->
      pack ~opcode:op_load ~rd ~rs1:base ~aux:(width_code width) ~imm:off ()
  | Store { src; base; off; width } ->
      pack ~opcode:op_store ~rs1:base ~rs2:src ~aux:(width_code width) ~imm:off ()
  | Branch (op, rs1, rs2, off) ->
      pack ~opcode:op_branch ~rs1 ~rs2 ~aux:(branch_code op) ~imm:off ()
  | Jal (rd, off) -> pack ~opcode:op_jal ~rd ~imm:off ()
  | Jalr (rd, rs1, imm) -> pack ~opcode:op_jalr ~rd ~rs1 ~imm ()
  | Ecall -> pack ~opcode:op_ecall ()
  | Ebreak -> pack ~opcode:op_ebreak ()
  | Csrr (rd, csr) -> pack ~opcode:op_csrr ~rd ~aux:(Arch.csr_index csr) ()
  | Csrw (csr, rs1) -> pack ~opcode:op_csrw ~rs1 ~aux:(Arch.csr_index csr) ()
  | Sret -> pack ~opcode:op_sret ()
  | Sfence -> pack ~opcode:op_sfence ()
  | Wfi -> pack ~opcode:op_wfi ()
  | In (rd, port) ->
      if port < 0 || port > 0xffff then invalid_arg "Instr.encode: bad port";
      pack ~opcode:op_in ~rd ~imm:(Int64.of_int port) ()
  | Out (port, rs1) ->
      if port < 0 || port > 0xffff then invalid_arg "Instr.encode: bad port";
      pack ~opcode:op_out ~rs1 ~imm:(Int64.of_int port) ()
  | Hcall -> pack ~opcode:op_hcall ()
  | Halt -> pack ~opcode:op_halt ()

let decode w =
  let opcode = Int64.to_int (Bitops.extract w ~lo:0 ~width:8) in
  let rd = Int64.to_int (Bitops.extract w ~lo:8 ~width:4) in
  let rs1 = Int64.to_int (Bitops.extract w ~lo:12 ~width:4) in
  let rs2 = Int64.to_int (Bitops.extract w ~lo:16 ~width:4) in
  let aux = Int64.to_int (Bitops.extract w ~lo:20 ~width:8) in
  let imm_u = Bitops.extract w ~lo:32 ~width:32 in
  let imm_s = Bitops.sign_extend imm_u ~width:32 in
  if Bitops.extract w ~lo:28 ~width:4 <> 0L then None
  else
    match opcode with
    | o when o = op_nop -> Some Nop
    | o when o = op_alu -> (
        match alu_of_code aux with
        | Some op -> Some (Alu (op, rd, rs1, rs2))
        | None -> None)
    | o when o = op_alui -> (
        match alu_of_code aux with
        | Some op when alui_valid op ->
            (* Bitwise/shift immediates were stored zero-extended, the
               rest sign-extended; the execution semantics re-extend, so
               surface the raw signed view uniformly here. *)
            Some (Alui (op, rd, rs1, imm_s))
        | Some _ | None -> None)
    | o when o = op_lui -> Some (Lui (rd, imm_u))
    | o when o = op_load -> (
        match width_of_code aux with
        | Some width -> Some (Load { rd; base = rs1; off = imm_s; width })
        | None -> None)
    | o when o = op_store -> (
        match width_of_code aux with
        | Some width -> Some (Store { src = rs2; base = rs1; off = imm_s; width })
        | None -> None)
    | o when o = op_branch -> (
        match branch_of_code aux with
        | Some op -> Some (Branch (op, rs1, rs2, imm_s))
        | None -> None)
    | o when o = op_jal -> Some (Jal (rd, imm_s))
    | o when o = op_jalr -> Some (Jalr (rd, rs1, imm_s))
    | o when o = op_ecall -> Some Ecall
    | o when o = op_ebreak -> Some Ebreak
    | o when o = op_csrr -> (
        match Arch.csr_of_index aux with
        | Some csr -> Some (Csrr (rd, csr))
        | None -> None)
    | o when o = op_csrw -> (
        match Arch.csr_of_index aux with
        | Some csr -> Some (Csrw (csr, rs1))
        | None -> None)
    | o when o = op_sret -> Some Sret
    | o when o = op_sfence -> Some Sfence
    | o when o = op_wfi -> Some Wfi
    | o when o = op_in -> Some (In (rd, Int64.to_int imm_u))
    | o when o = op_out -> Some (Out (Int64.to_int imm_u, rs1))
    | o when o = op_hcall -> Some Hcall
    | o when o = op_halt -> Some Halt
    | _ -> None

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"
  | Slt -> "slt"
  | Sltu -> "sltu"

let branch_name = function
  | Beq -> "beq"
  | Bne -> "bne"
  | Blt -> "blt"
  | Bge -> "bge"
  | Bltu -> "bltu"
  | Bgeu -> "bgeu"

let width_name = function W8 -> "w8" | W16 -> "w16" | W32 -> "w32" | W64 -> "w64"

let pp ppf i =
  let r = Arch.reg_name in
  match i with
  | Nop -> Format.pp_print_string ppf "nop"
  | Alu (op, rd, rs1, rs2) ->
      Format.fprintf ppf "%s %s, %s, %s" (alu_name op) (r rd) (r rs1) (r rs2)
  | Alui (op, rd, rs1, imm) ->
      Format.fprintf ppf "%si %s, %s, %Ld" (alu_name op) (r rd) (r rs1) imm
  | Lui (rd, imm) -> Format.fprintf ppf "lui %s, 0x%Lx" (r rd) imm
  | Load { rd; base; off; width } ->
      Format.fprintf ppf "ld.%s %s, %Ld(%s)" (width_name width) (r rd) off (r base)
  | Store { src; base; off; width } ->
      Format.fprintf ppf "st.%s %s, %Ld(%s)" (width_name width) (r src) off (r base)
  | Branch (op, rs1, rs2, off) ->
      Format.fprintf ppf "%s %s, %s, %Ld" (branch_name op) (r rs1) (r rs2) off
  | Jal (rd, off) -> Format.fprintf ppf "jal %s, %Ld" (r rd) off
  | Jalr (rd, rs1, imm) -> Format.fprintf ppf "jalr %s, %Ld(%s)" (r rd) imm (r rs1)
  | Ecall -> Format.pp_print_string ppf "ecall"
  | Ebreak -> Format.pp_print_string ppf "ebreak"
  | Csrr (rd, csr) -> Format.fprintf ppf "csrr %s, %s" (r rd) (Arch.csr_name csr)
  | Csrw (csr, rs1) -> Format.fprintf ppf "csrw %s, %s" (Arch.csr_name csr) (r rs1)
  | Sret -> Format.pp_print_string ppf "sret"
  | Sfence -> Format.pp_print_string ppf "sfence"
  | Wfi -> Format.pp_print_string ppf "wfi"
  | In (rd, port) -> Format.fprintf ppf "in %s, 0x%x" (r rd) port
  | Out (port, rs1) -> Format.fprintf ppf "out 0x%x, %s" port (r rs1)
  | Hcall -> Format.pp_print_string ppf "hcall"
  | Halt -> Format.pp_print_string ppf "halt"

let to_string i = Format.asprintf "%a" pp i
