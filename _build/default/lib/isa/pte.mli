(** Page-table entry format (Sv39-flavoured).

    A PTE is a 64-bit word: bit 0 valid, 1 readable, 2 writable,
    3 executable, 4 user-accessible, 5 accessed, 6 dirty; bits 10-53 hold
    the physical page number.  A valid entry with R=W=X=0 is a pointer to
    the next table level; any R/W/X bit makes it a leaf. *)

type t = int64

val invalid : t
(** The all-zero (not valid) entry. *)

type perms = { r : bool; w : bool; x : bool; u : bool }
(** Leaf permissions: readable / writable / executable /
    user-accessible. *)

val pp_perms : Format.formatter -> perms -> unit

val leaf : ppn:int64 -> perms -> t
(** [leaf ~ppn perms] is a valid leaf entry. *)

val table : ppn:int64 -> t
(** [table ~ppn] is a valid non-leaf entry pointing at the next level. *)

val is_valid : t -> bool
val is_leaf : t -> bool
(** [is_leaf pte] — valid and at least one of R/W/X set. *)

val ppn : t -> int64
val perms : t -> perms

val accessed : t -> bool
val dirty : t -> bool
val set_accessed : t -> t
val set_dirty : t -> t
val clear_accessed : t -> t
val clear_dirty : t -> t

val with_perms : t -> perms -> t
(** [with_perms pte p] replaces the permission bits, keeping PPN and
    A/D. *)

val allows : t -> Arch.access -> user:bool -> bool
(** [allows pte access ~user] checks a leaf's permission bits against an
    access from user ([true]) or supervisor mode.  Supervisor may touch
    user pages (no SUM restriction in VR64). *)
