let r0 = 0
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4
let r5 = 5
let r6 = 6
let r7 = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let r13 = 13
let r14 = 14
let r15 = 15

type item =
  | Label of string
  | Insn of Instr.t
  | Branch_to of Instr.branch_op * Arch.reg * Arch.reg * string
  | Jal_to of Arch.reg * string
  | La of Arch.reg * string
  | Li of Arch.reg * int64
  | Ld_abs of Arch.reg * string
  | Sd_abs of Arch.reg * string
  | Dword of int64
  | Bytes_lit of string
  | Space of int
  | Align of int

let nop = Insn Instr.Nop
let alu op rd rs1 rs2 = Insn (Instr.Alu (op, rd, rs1, rs2))
let alui op rd rs1 imm = Insn (Instr.Alui (op, rd, rs1, imm))
let add = alu Instr.Add
let sub = alu Instr.Sub
let mul = alu Instr.Mul
let div = alu Instr.Div
let rem = alu Instr.Rem
let and_ = alu Instr.And
let or_ = alu Instr.Or
let xor = alu Instr.Xor
let sll = alu Instr.Sll
let srl = alu Instr.Srl
let slt = alu Instr.Slt
let addi = alui Instr.Add
let andi = alui Instr.And
let ori = alui Instr.Or
let xori = alui Instr.Xor
let slli = alui Instr.Sll
let srli = alui Instr.Srl
let slti = alui Instr.Slt
let mv rd rs = addi rd rs 0L
let li rd v = Li (rd, v)
let la rd sym = La (rd, sym)
let ldl rd sym = Ld_abs (rd, sym)
let sdl src sym = Sd_abs (src, sym)
let ld rd base off = Insn (Instr.Load { rd; base; off; width = Instr.W64 })
let sd src base off = Insn (Instr.Store { src; base; off; width = Instr.W64 })
let lb rd base off = Insn (Instr.Load { rd; base; off; width = Instr.W8 })
let sb src base off = Insn (Instr.Store { src; base; off; width = Instr.W8 })
let beq a b t = Branch_to (Instr.Beq, a, b, t)
let bne a b t = Branch_to (Instr.Bne, a, b, t)
let blt a b t = Branch_to (Instr.Blt, a, b, t)
let bge a b t = Branch_to (Instr.Bge, a, b, t)
let bltu a b t = Branch_to (Instr.Bltu, a, b, t)
let bgeu a b t = Branch_to (Instr.Bgeu, a, b, t)
let jmp t = Jal_to (r0, t)
let call t = Jal_to (r15, t)
let ret = Insn (Instr.Jalr (r0, r15, 0L))
let jalr rd rs1 imm = Insn (Instr.Jalr (rd, rs1, imm))
let ecall = Insn Instr.Ecall
let ebreak = Insn Instr.Ebreak
let csrr rd csr = Insn (Instr.Csrr (rd, csr))
let csrw csr rs = Insn (Instr.Csrw (csr, rs))
let sret = Insn Instr.Sret
let sfence = Insn Instr.Sfence
let wfi = Insn Instr.Wfi
let inp rd port = Insn (Instr.In (rd, port))
let outp port rs = Insn (Instr.Out (port, rs))
let hcall = Insn Instr.Hcall
let halt = Insn Instr.Halt
let label name = Label name

type image = {
  origin : int64;
  code : Bytes.t;
  symbols : (string * int64) list;
}

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let ibytes = Arch.instr_bytes

let fits_signed32 v = v >= Int64.neg 0x8000_0000L && v <= 0x7FFF_FFFFL

let li_size v = if fits_signed32 v then ibytes else 2 * ibytes

let size_of = function
  | Label _ -> 0
  | Insn _ | Branch_to _ | Jal_to _ | La _ | Ld_abs _ | Sd_abs _ -> ibytes
  | Li (_, v) -> li_size v
  | Dword _ -> 8
  | Bytes_lit s -> String.length s
  | Space n -> n
  | Align _ -> 0

let align_pad addr a =
  if a <= 0 || a land (a - 1) <> 0 then err "align %d is not a power of two" a;
  let m = Int64.rem addr (Int64.of_int a) in
  if m = 0L then 0 else a - Int64.to_int m

(* Pass 1: compute each label's absolute address. *)
let layout ~origin items =
  let tbl = Hashtbl.create 64 in
  let addr = ref origin in
  List.iter
    (fun item ->
      (match item with
      | Label name ->
          if Hashtbl.mem tbl name then err "duplicate label %S" name;
          Hashtbl.add tbl name !addr
      | _ -> ());
      let sz =
        match item with
        | Align a -> align_pad !addr a
        | other -> size_of other
      in
      addr := Int64.add !addr (Int64.of_int sz))
    items;
  (tbl, Int64.to_int (Int64.sub !addr origin))

let assemble ?(origin = 0L) items =
  if Int64.rem origin (Int64.of_int ibytes) <> 0L then
    err "origin 0x%Lx is not instruction aligned" origin;
  let symbols, total = layout ~origin items in
  let lookup name =
    match Hashtbl.find_opt symbols name with
    | Some a -> a
    | None -> err "undefined label %S" name
  in
  let buf = Bytes.make total '\000' in
  let addr = ref origin in
  let off () = Int64.to_int (Int64.sub !addr origin) in
  let emit_word w =
    Bytes.set_int64_le buf (off ()) w;
    addr := Int64.add !addr 8L
  in
  let emit_insn i =
    if Int64.rem !addr (Int64.of_int ibytes) <> 0L then
      err "instruction at 0x%Lx is misaligned" !addr;
    emit_word (Instr.encode i)
  in
  List.iter
    (fun item ->
      match item with
      | Label _ -> ()
      | Insn i -> emit_insn i
      | Branch_to (op, a, b, target) ->
          let delta = Int64.sub (lookup target) !addr in
          if not (fits_signed32 delta) then err "branch to %S out of range" target;
          emit_insn (Instr.Branch (op, a, b, delta))
      | Jal_to (rd, target) ->
          let delta = Int64.sub (lookup target) !addr in
          if not (fits_signed32 delta) then err "jump to %S out of range" target;
          emit_insn (Instr.Jal (rd, delta))
      | La (rd, target) ->
          let a = lookup target in
          if not (fits_signed32 a) then err "address of %S does not fit in la" target;
          emit_insn (Instr.Alui (Instr.Add, rd, r0, a))
      | Ld_abs (rd, target) ->
          let a = lookup target in
          if not (fits_signed32 a) then err "address of %S does not fit in ld" target;
          emit_insn (Instr.Load { rd; base = r0; off = a; width = Instr.W64 })
      | Sd_abs (src, target) ->
          let a = lookup target in
          if not (fits_signed32 a) then err "address of %S does not fit in sd" target;
          emit_insn (Instr.Store { src; base = r0; off = a; width = Instr.W64 })
      | Li (rd, v) ->
          if fits_signed32 v then emit_insn (Instr.Alui (Instr.Add, rd, r0, v))
          else begin
            let hi = Int64.shift_right_logical v 32 in
            let lo = Int64.logand v 0xFFFF_FFFFL in
            emit_insn (Instr.Lui (rd, hi));
            emit_insn (Instr.Alui (Instr.Or, rd, rd, lo))
          end
      | Dword v -> emit_word v
      | Bytes_lit s ->
          Bytes.blit_string s 0 buf (off ()) (String.length s);
          addr := Int64.add !addr (Int64.of_int (String.length s))
      | Space n -> addr := Int64.add !addr (Int64.of_int n)
      | Align a ->
          let pad = align_pad !addr a in
          addr := Int64.add !addr (Int64.of_int pad))
    items;
  let syms = Hashtbl.fold (fun k v acc -> (k, v) :: acc) symbols [] in
  { origin; code = buf; symbols = List.sort compare syms }

let symbol img name =
  match List.assoc_opt name img.symbols with
  | Some a -> a
  | None -> err "undefined label %S" name

let disassemble img =
  let n = Bytes.length img.code / 8 in
  List.init n (fun i ->
      let addr = Int64.add img.origin (Int64.of_int (i * 8)) in
      let w = Bytes.get_int64_le img.code (i * 8) in
      let body =
        match Instr.decode w with
        | Some insn -> Instr.to_string insn
        | None -> Printf.sprintf ".dword 0x%Lx" w
      in
      Printf.sprintf "%08Lx: %s" addr body)
