(** VR64 instruction set: abstract syntax, 8-byte binary encoding, decoding
    and disassembly.

    Encoding layout (one 64-bit little-endian word per instruction):
    {v
      bits  0-7   opcode
      bits  8-11  rd
      bits 12-15  rs1
      bits 16-19  rs2
      bits 20-27  aux   (ALU sub-op, branch sub-op, width, CSR index)
      bits 28-31  zero
      bits 32-63  imm   (32 bits; sign- or zero-extended per instruction)
    v} *)

type alu_op =
  | Add
  | Sub
  | Mul
  | Div  (** signed; division by zero yields -1 (no trap) *)
  | Rem  (** signed; remainder by zero yields the dividend *)
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Slt  (** signed set-less-than *)
  | Sltu  (** unsigned set-less-than *)

type branch_op = Beq | Bne | Blt | Bge | Bltu | Bgeu

type width = W8 | W16 | W32 | W64

val width_bytes : width -> int

type t =
  | Nop
  | Alu of alu_op * Arch.reg * Arch.reg * Arch.reg
      (** [Alu (op, rd, rs1, rs2)] *)
  | Alui of alu_op * Arch.reg * Arch.reg * int64
      (** [Alui (op, rd, rs1, imm)].  Arithmetic/compare ops sign-extend
          the immediate; bitwise and shift ops zero-extend it.  Only
          [Add], [And], [Or], [Xor], [Sll], [Srl], [Sra], [Slt], [Sltu]
          are valid immediates. *)
  | Lui of Arch.reg * int64
      (** [Lui (rd, imm)]: [rd := imm << 32] (imm treated as unsigned
          32-bit); combined with a bitwise-or immediate this builds any
          64-bit constant in two instructions. *)
  | Load of { rd : Arch.reg; base : Arch.reg; off : int64; width : width }
      (** Zero-extending load of [width] bytes from [base + off]. *)
  | Store of { src : Arch.reg; base : Arch.reg; off : int64; width : width }
  | Branch of branch_op * Arch.reg * Arch.reg * int64
      (** PC-relative byte offset (from the branch's own address). *)
  | Jal of Arch.reg * int64
      (** [rd := pc + 8]; [pc := pc + off]. *)
  | Jalr of Arch.reg * Arch.reg * int64
      (** [rd := pc + 8]; [pc := rs1 + imm]. *)
  | Ecall  (** environment call (system call from user mode) *)
  | Ebreak
  | Csrr of Arch.reg * Arch.csr  (** privileged: [rd := csr] *)
  | Csrw of Arch.csr * Arch.reg  (** privileged: [csr := rs1] *)
  | Sret  (** privileged: return from trap *)
  | Sfence  (** privileged: flush the TLB *)
  | Wfi  (** privileged: wait for interrupt *)
  | In of Arch.reg * int  (** privileged: port input, port in imm *)
  | Out of int * Arch.reg  (** privileged: port output *)
  | Hcall  (** hypercall; illegal when running on bare metal *)
  | Halt  (** privileged: stop the hart *)

val is_privileged : t -> bool
(** [is_privileged i] — true for the instructions that trap with
    [Illegal_instruction] when executed in user mode.  VR64 satisfies the
    Popek-Goldberg criterion: this set contains every sensitive
    instruction. *)

val encode : t -> int64
(** [encode i] is the binary form.

    @raise Invalid_argument if a register, immediate or offset is out of
    encodable range (immediates must fit in 32 bits; register fields in
    0-15). *)

val decode : int64 -> t option
(** [decode w] is the instruction encoded by [w], or [None] if [w] is not
    a valid encoding. *)

val pp : Format.formatter -> t -> unit
(** Disassembly, e.g. [add r1, r2, r3] or [ld.w64 r1, 16(r2)]. *)

val to_string : t -> string
