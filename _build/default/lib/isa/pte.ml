open Velum_util

type t = int64

let invalid = 0L

type perms = { r : bool; w : bool; x : bool; u : bool }

let pp_perms ppf p =
  let c b ch = if b then ch else '-' in
  Format.fprintf ppf "%c%c%c%c" (c p.r 'r') (c p.w 'w') (c p.x 'x') (c p.u 'u')

let bit_valid = 0
let bit_r = 1
let bit_w = 2
let bit_x = 3
let bit_u = 4
let bit_a = 5
let bit_d = 6
let ppn_lo = 10
let ppn_width = 44

let leaf ~ppn { r; w; x; u } =
  let v = Bitops.set_bit 0L bit_valid true in
  let v = Bitops.set_bit v bit_r r in
  let v = Bitops.set_bit v bit_w w in
  let v = Bitops.set_bit v bit_x x in
  let v = Bitops.set_bit v bit_u u in
  Bitops.insert v ~lo:ppn_lo ~width:ppn_width ppn

let table ~ppn =
  Bitops.insert (Bitops.set_bit 0L bit_valid true) ~lo:ppn_lo ~width:ppn_width ppn

let is_valid t = Bitops.test_bit t bit_valid

let is_leaf t =
  is_valid t && (Bitops.test_bit t bit_r || Bitops.test_bit t bit_w || Bitops.test_bit t bit_x)

let ppn t = Bitops.extract t ~lo:ppn_lo ~width:ppn_width

let perms t =
  {
    r = Bitops.test_bit t bit_r;
    w = Bitops.test_bit t bit_w;
    x = Bitops.test_bit t bit_x;
    u = Bitops.test_bit t bit_u;
  }

let accessed t = Bitops.test_bit t bit_a
let dirty t = Bitops.test_bit t bit_d
let set_accessed t = Bitops.set_bit t bit_a true
let set_dirty t = Bitops.set_bit t bit_d true
let clear_accessed t = Bitops.set_bit t bit_a false
let clear_dirty t = Bitops.set_bit t bit_d false

let with_perms t { r; w; x; u } =
  let t = Bitops.set_bit t bit_r r in
  let t = Bitops.set_bit t bit_w w in
  let t = Bitops.set_bit t bit_x x in
  Bitops.set_bit t bit_u u

let allows t access ~user =
  let p = perms t in
  let priv_ok = if user then p.u else true in
  let kind_ok =
    match access with
    | Arch.Fetch -> p.x
    | Arch.Load -> p.r
    | Arch.Store -> p.w
  in
  priv_ok && kind_ok
