lib/isa/pte.mli: Arch Format
