lib/isa/asm.mli: Arch Bytes Instr
