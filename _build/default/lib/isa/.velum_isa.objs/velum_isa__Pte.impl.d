lib/isa/pte.ml: Arch Bitops Format Velum_util
