lib/isa/instr.ml: Arch Bitops Format Int64 List Velum_util
