lib/isa/arch.ml: Format Int64 List Velum_util
