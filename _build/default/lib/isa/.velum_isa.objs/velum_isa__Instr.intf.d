lib/isa/instr.mli: Arch Format
