lib/isa/asm.ml: Arch Bytes Format Hashtbl Instr Int64 List Printf String
