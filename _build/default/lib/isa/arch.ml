type mode = User | Supervisor

let pp_mode ppf = function
  | User -> Format.pp_print_string ppf "user"
  | Supervisor -> Format.pp_print_string ppf "supervisor"

type reg = int

let num_regs = 16

let reg_name r =
  if r < 0 || r >= num_regs then invalid_arg "Arch.reg_name: out of range";
  "r" ^ string_of_int r

type csr =
  | Satp
  | Stvec
  | Sepc
  | Scause
  | Stval
  | Sie
  | Sip
  | Sscratch
  | Stimecmp
  | Time
  | Vmid
  | Hartid

let csr_index = function
  | Satp -> 0
  | Stvec -> 1
  | Sepc -> 2
  | Scause -> 3
  | Stval -> 4
  | Sie -> 5
  | Sip -> 6
  | Sscratch -> 7
  | Stimecmp -> 8
  | Time -> 9
  | Vmid -> 10
  | Hartid -> 11

let all_csrs =
  [ Satp; Stvec; Sepc; Scause; Stval; Sie; Sip; Sscratch; Stimecmp; Time; Vmid; Hartid ]

let csr_of_index i = List.find_opt (fun c -> csr_index c = i) all_csrs

let csr_name = function
  | Satp -> "satp"
  | Stvec -> "stvec"
  | Sepc -> "sepc"
  | Scause -> "scause"
  | Stval -> "stval"
  | Sie -> "sie"
  | Sip -> "sip"
  | Sscratch -> "sscratch"
  | Stimecmp -> "stimecmp"
  | Time -> "time"
  | Vmid -> "vmid"
  | Hartid -> "hartid"

let csr_read_only = function
  | Time | Sip | Vmid | Hartid -> true
  | Satp | Stvec | Sepc | Scause | Stval | Sie | Sscratch | Stimecmp -> false

let irq_timer = 0
let irq_external = 1

type cause =
  | Syscall
  | Breakpoint
  | Illegal_instruction
  | Misaligned_fetch
  | Misaligned_load
  | Misaligned_store
  | Fetch_page_fault
  | Load_page_fault
  | Store_page_fault
  | Fetch_access_fault
  | Load_access_fault
  | Store_access_fault
  | Timer_interrupt
  | External_interrupt

let interrupt_flag = Int64.shift_left 1L 63

let cause_code = function
  | Syscall -> 0L
  | Breakpoint -> 1L
  | Illegal_instruction -> 2L
  | Misaligned_fetch -> 3L
  | Misaligned_load -> 4L
  | Misaligned_store -> 5L
  | Fetch_page_fault -> 6L
  | Load_page_fault -> 7L
  | Store_page_fault -> 8L
  | Fetch_access_fault -> 9L
  | Load_access_fault -> 10L
  | Store_access_fault -> 11L
  | Timer_interrupt -> Int64.logor interrupt_flag 0L
  | External_interrupt -> Int64.logor interrupt_flag 1L

let all_causes =
  [
    Syscall;
    Breakpoint;
    Illegal_instruction;
    Misaligned_fetch;
    Misaligned_load;
    Misaligned_store;
    Fetch_page_fault;
    Load_page_fault;
    Store_page_fault;
    Fetch_access_fault;
    Load_access_fault;
    Store_access_fault;
    Timer_interrupt;
    External_interrupt;
  ]

let cause_of_code code = List.find_opt (fun c -> cause_code c = code) all_causes

let cause_name = function
  | Syscall -> "syscall"
  | Breakpoint -> "breakpoint"
  | Illegal_instruction -> "illegal-instruction"
  | Misaligned_fetch -> "misaligned-fetch"
  | Misaligned_load -> "misaligned-load"
  | Misaligned_store -> "misaligned-store"
  | Fetch_page_fault -> "fetch-page-fault"
  | Load_page_fault -> "load-page-fault"
  | Store_page_fault -> "store-page-fault"
  | Fetch_access_fault -> "fetch-access-fault"
  | Load_access_fault -> "load-access-fault"
  | Store_access_fault -> "store-access-fault"
  | Timer_interrupt -> "timer-interrupt"
  | External_interrupt -> "external-interrupt"

let is_interrupt c = Int64.logand (cause_code c) interrupt_flag <> 0L

type access = Fetch | Load | Store

let access_name = function Fetch -> "fetch" | Load -> "load" | Store -> "store"

let fault_cause access kind =
  match (access, kind) with
  | Fetch, `Page -> Fetch_page_fault
  | Load, `Page -> Load_page_fault
  | Store, `Page -> Store_page_fault
  | Fetch, `Access -> Fetch_access_fault
  | Load, `Access -> Load_access_fault
  | Store, `Access -> Store_access_fault
  | Fetch, `Misaligned -> Misaligned_fetch
  | Load, `Misaligned -> Misaligned_load
  | Store, `Misaligned -> Misaligned_store

let xlen = 64
let instr_bytes = 8
let page_shift = 12
let page_size = 1 lsl page_shift
let pt_levels = 3
let vpn_bits = 9
let va_bits = (pt_levels * vpn_bits) + page_shift
let satp_enable_bit = 63

let satp_make ~root_ppn =
  Int64.logor (Int64.shift_left 1L satp_enable_bit) root_ppn

let satp_enabled satp = Velum_util.Bitops.test_bit satp satp_enable_bit
let satp_root_ppn satp = Velum_util.Bitops.extract satp ~lo:0 ~width:44
