(** Two-pass assembler for VR64.

    Programs are OCaml lists of {!item}s — instructions, labels and data
    directives.  Branch and jump targets are symbolic; the assembler
    resolves them relative to the program's load address.  Guest kernels
    and workloads in [velum.guests] are written in this DSL.

    Register convention used by the assembler's pseudo-instructions and
    by all guest code in this repository:
    - [r0] hardwired zero
    - [r1] syscall/hypercall number and return value
    - [r2]-[r5] arguments
    - [r13] frame/scratch, [r14] stack pointer, [r15] link register *)

(** {1 Register shorthands} *)

val r0 : Arch.reg
val r1 : Arch.reg
val r2 : Arch.reg
val r3 : Arch.reg
val r4 : Arch.reg
val r5 : Arch.reg
val r6 : Arch.reg
val r7 : Arch.reg
val r8 : Arch.reg
val r9 : Arch.reg
val r10 : Arch.reg
val r11 : Arch.reg
val r12 : Arch.reg
val r13 : Arch.reg
val r14 : Arch.reg
val r15 : Arch.reg

(** {1 Program items} *)

type item =
  | Label of string
  | Insn of Instr.t  (** a concrete instruction *)
  | Branch_to of Instr.branch_op * Arch.reg * Arch.reg * string
  | Jal_to of Arch.reg * string
  | La of Arch.reg * string  (** load a label's absolute address *)
  | Li of Arch.reg * int64
      (** load a 64-bit constant; expands to one instruction when the
          value fits in a signed 32-bit immediate, two otherwise *)
  | Ld_abs of Arch.reg * string
      (** 64-bit load from a label's absolute address (r0-based) *)
  | Sd_abs of Arch.reg * string
      (** 64-bit store to a label's absolute address (r0-based) *)
  | Dword of int64  (** 8 bytes of data *)
  | Bytes_lit of string  (** raw bytes *)
  | Space of int  (** [n] zero bytes *)
  | Align of int  (** pad with zeros to a power-of-two boundary *)

(** {1 Instruction helpers}

    Thin constructors so programs read like assembly. *)

val nop : item
val add : Arch.reg -> Arch.reg -> Arch.reg -> item
val sub : Arch.reg -> Arch.reg -> Arch.reg -> item
val mul : Arch.reg -> Arch.reg -> Arch.reg -> item
val div : Arch.reg -> Arch.reg -> Arch.reg -> item
val rem : Arch.reg -> Arch.reg -> Arch.reg -> item
val and_ : Arch.reg -> Arch.reg -> Arch.reg -> item
val or_ : Arch.reg -> Arch.reg -> Arch.reg -> item
val xor : Arch.reg -> Arch.reg -> Arch.reg -> item
val sll : Arch.reg -> Arch.reg -> Arch.reg -> item
val srl : Arch.reg -> Arch.reg -> Arch.reg -> item
val slt : Arch.reg -> Arch.reg -> Arch.reg -> item
val addi : Arch.reg -> Arch.reg -> int64 -> item
val andi : Arch.reg -> Arch.reg -> int64 -> item
val ori : Arch.reg -> Arch.reg -> int64 -> item
val xori : Arch.reg -> Arch.reg -> int64 -> item
val slli : Arch.reg -> Arch.reg -> int64 -> item
val srli : Arch.reg -> Arch.reg -> int64 -> item
val slti : Arch.reg -> Arch.reg -> int64 -> item
val mv : Arch.reg -> Arch.reg -> item
val li : Arch.reg -> int64 -> item
val la : Arch.reg -> string -> item
val ldl : Arch.reg -> string -> item
val sdl : Arch.reg -> string -> item
val ld : Arch.reg -> Arch.reg -> int64 -> item
val sd : Arch.reg -> Arch.reg -> int64 -> item
val lb : Arch.reg -> Arch.reg -> int64 -> item
val sb : Arch.reg -> Arch.reg -> int64 -> item
val beq : Arch.reg -> Arch.reg -> string -> item
val bne : Arch.reg -> Arch.reg -> string -> item
val blt : Arch.reg -> Arch.reg -> string -> item
val bge : Arch.reg -> Arch.reg -> string -> item
val bltu : Arch.reg -> Arch.reg -> string -> item
val bgeu : Arch.reg -> Arch.reg -> string -> item
val jmp : string -> item
val call : string -> item
val ret : item
val jalr : Arch.reg -> Arch.reg -> int64 -> item
val ecall : item
val ebreak : item
val csrr : Arch.reg -> Arch.csr -> item
val csrw : Arch.csr -> Arch.reg -> item
val sret : item
val sfence : item
val wfi : item
val inp : Arch.reg -> int -> item
val outp : int -> Arch.reg -> item
val hcall : item
val halt : item
val label : string -> item

(** {1 Assembly} *)

type image = {
  origin : int64;  (** load address of the first byte *)
  code : Bytes.t;  (** assembled bytes *)
  symbols : (string * int64) list;  (** label → absolute address *)
}

exception Error of string
(** Raised on duplicate or undefined labels, unencodable operands, or
    misaligned instruction placement. *)

val assemble : ?origin:int64 -> item list -> image
(** [assemble ~origin items] lays the program out starting at [origin]
    (default 0) and resolves all symbols.

    @raise Error as described above. *)

val size_of : item -> int
(** [size_of item] is the number of bytes the item occupies, except for
    [Align] whose size depends on position (reported as 0 here). *)

val symbol : image -> string -> int64
(** [symbol img name] looks up a label.

    @raise Error if undefined. *)

val disassemble : image -> string list
(** [disassemble img] renders each 8-byte word of the image as an
    instruction (or [.dword] when it does not decode); for debugging. *)
