open Velum_util

let data_port = 0x10
let status_port = 0x11
let reg_data = 0x00L
let reg_status = 0x08L
let mmio_base = 0x4000_0000L

type t = { rx : char Ring.t; tx : Buffer.t }

let create ?(rx_capacity = 4096) () =
  { rx = Ring.create ~capacity:rx_capacity; tx = Buffer.create 256 }

let feed_input t s = String.iter (fun c -> ignore (Ring.push t.rx c)) s

let output t = Buffer.contents t.tx
let output_length t = Buffer.length t.tx
let clear_output t = Buffer.clear t.tx
let rx_pending t = not (Ring.is_empty t.rx)

let read_reg t off =
  if off = reg_data then
    match Ring.pop t.rx with Some c -> Int64.of_int (Char.code c) | None -> 0L
  else if off = reg_status then
    let v = if rx_pending t then 1L else 0L in
    Int64.logor v 2L
  else 0L

let write_reg t off v =
  if off = reg_data then
    Buffer.add_char t.tx (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))

let device ?(base = mmio_base) t =
  {
    Velum_machine.Bus.name = "uart";
    base;
    size = 0x100;
    read = (fun off _w -> read_reg t off);
    write = (fun off _w v -> write_reg t off v);
    tick = (fun _ -> ());
    pending_irq = (fun () -> rx_pending t);
  }
