(** Console UART.

    Register layout (64-bit registers, offsets from the device base):
    - [0x00] DATA — write: transmit the low byte; read: pop one received
      byte (0 when the receive buffer is empty)
    - [0x08] STATUS — bit 0: receive data ready; bit 1: transmit ready
      (always set)

    The same device also answers port I/O: port {!data_port} maps to
    DATA and port {!status_port} to STATUS.  A pending interrupt is
    raised while the receive buffer is non-empty. *)

val data_port : int
val status_port : int

val reg_data : int64
val reg_status : int64

type t

val create : ?rx_capacity:int -> unit -> t

val mmio_base : int64
(** Conventional base address ([0x4000_0000]). *)

val device : ?base:int64 -> t -> Velum_machine.Bus.device
(** [device t] wraps the UART for bus attachment. *)

val feed_input : t -> string -> unit
(** [feed_input t s] appends [s] to the receive buffer (dropping bytes
    beyond capacity). *)

val output : t -> string
(** All bytes transmitted so far. *)

val output_length : t -> int

val clear_output : t -> unit

val read_reg : t -> int64 -> int64
(** Register access used by both the MMIO wrapper and port handlers. *)

val write_reg : t -> int64 -> int64 -> unit

val rx_pending : t -> bool
