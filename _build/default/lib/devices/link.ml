type endpoint = [ `A | `B ]

let peer = function `A -> `B | `B -> `A

type direction = {
  mutable line_free : int64; (* cycle when the sender's line frees up *)
  mutable queue : (int64 * string) list; (* arrival-sorted, oldest first *)
}

type t = {
  bpc : float;
  latency : int;
  a_to_b : direction;
  b_to_a : direction;
  mutable total_bytes : int;
}

let create ?(bytes_per_cycle = 1.25) ?(latency_cycles = 2000) () =
  if bytes_per_cycle <= 0.0 then invalid_arg "Link.create: bandwidth must be positive";
  if latency_cycles < 0 then invalid_arg "Link.create: negative latency";
  {
    bpc = bytes_per_cycle;
    latency = latency_cycles;
    a_to_b = { line_free = 0L; queue = [] };
    b_to_a = { line_free = 0L; queue = [] };
    total_bytes = 0;
  }

let bytes_per_cycle t = t.bpc
let latency_cycles t = t.latency

let serialization t bytes = int_of_float (ceil (float_of_int bytes /. t.bpc))

let transfer_cycles t ~bytes = serialization t bytes + t.latency

let dir t from = match from with `A -> t.a_to_b | `B -> t.b_to_a

let send t ~from ~now ~payload =
  let d = dir t from in
  let start = if Int64.unsigned_compare now d.line_free > 0 then now else d.line_free in
  let ser = Int64.of_int (serialization t (String.length payload)) in
  d.line_free <- Int64.add start ser;
  let arrival = Int64.add d.line_free (Int64.of_int t.latency) in
  d.queue <- d.queue @ [ (arrival, payload) ];
  t.total_bytes <- t.total_bytes + String.length payload;
  arrival

let poll t ~at ~now =
  let d = dir t (peer at) in
  let arrived, still = List.partition (fun (when_, _) -> Int64.unsigned_compare when_ now <= 0) d.queue in
  d.queue <- still;
  List.map snd arrived

let next_arrival t ~at =
  match (dir t (peer at)).queue with [] -> None | (when_, _) :: _ -> Some when_

let in_flight t = List.length t.a_to_b.queue + List.length t.b_to_a.queue
let bytes_sent t = t.total_bytes
