lib/devices/nic.mli: Blockdev Link Velum_machine
