lib/devices/nic.ml: Blockdev Bytes Int64 Link List Ring String Velum_machine Velum_util
