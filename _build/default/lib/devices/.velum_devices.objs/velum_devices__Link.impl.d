lib/devices/link.ml: Int64 List String
