lib/devices/blockdev.mli: Bytes Velum_machine
