lib/devices/virtio_blk.ml: Blockdev Bytes Int64 List String Velum_machine Virtio_ring
