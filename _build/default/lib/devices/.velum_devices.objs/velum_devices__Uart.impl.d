lib/devices/uart.ml: Buffer Char Int64 Ring String Velum_machine Velum_util
