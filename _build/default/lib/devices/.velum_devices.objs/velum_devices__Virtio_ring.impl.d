lib/devices/virtio_ring.ml: Bytes Fun Int64 List Option
