lib/devices/virtio_blk.mli: Velum_machine Virtio_ring
