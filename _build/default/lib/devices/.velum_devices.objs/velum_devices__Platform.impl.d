lib/devices/platform.ml: Arch Array Asm Blockdev Bus Bytes Char Cost_model Cpu Fun Instr Int64 List Mmu Nic Option Phys_mem Tlb Uart Velum_isa Velum_machine Virtio_blk Virtio_ring
