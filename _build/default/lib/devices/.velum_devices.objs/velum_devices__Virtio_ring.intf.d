lib/devices/virtio_ring.mli: Bytes
