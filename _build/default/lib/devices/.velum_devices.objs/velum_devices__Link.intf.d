lib/devices/link.mli:
