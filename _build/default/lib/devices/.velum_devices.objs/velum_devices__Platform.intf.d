lib/devices/platform.mli: Asm Blockdev Bus Cost_model Cpu Link Mmu Nic Phys_mem Tlb Uart Velum_isa Velum_machine Virtio_blk Virtio_ring
