lib/devices/uart.mli: Velum_machine
