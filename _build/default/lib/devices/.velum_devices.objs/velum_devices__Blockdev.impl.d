lib/devices/blockdev.ml: Bytes Int64 String Velum_machine
