open Velum_isa
open Velum_machine

type env = {
  mem : Phys_mem.t;
  alloc : Frame_alloc.t;
  cost : Cost_model.t;
  read_guest_pte : int64 -> Pte.t option;
  write_guest_pte : int64 -> Pte.t -> bool;
  resolve_read : int64 -> int64 option;
  resolve_write : int64 -> int64 option;
  host_writable : int64 -> bool;
}

type pair = { shadow_ppn : int64; pair_level : int }

type t = {
  env : env;
  pairs : (int64, pair) Hashtbl.t; (* guest table gfn -> shadow table page *)
  synthetic : (int64 * int, int64) Hashtbl.t;
      (* (guest L1-table gfn, index) -> shadow level-0 table splintering
         a guest 2 MiB superpage into 4 KiB shadow leaves *)
  rmap : (int64, int64 list ref) Hashtbl.t; (* data gfn -> shadow leaf slots *)
  mutable fill_count : int;
  mutable pt_write_count : int;
  mutable needs_flush : bool;
}

let create env =
  {
    env;
    pairs = Hashtbl.create 64;
    synthetic = Hashtbl.create 16;
    rmap = Hashtbl.create 256;
    fill_count = 0;
    pt_write_count = 0;
    needs_flush = false;
  }

let is_pt_gfn t gfn = Hashtbl.mem t.pairs gfn

let shadow_root t ~root_gfn =
  Option.map (fun p -> p.shadow_ppn) (Hashtbl.find_opt t.pairs root_gfn)

let fills t = t.fill_count
let pt_writes t = t.pt_write_count
let table_frames t = Hashtbl.length t.pairs + Hashtbl.length t.synthetic

let page = Arch.page_size
let frame_base ppn = Int64.shift_left ppn Arch.page_shift
let page_off va = Int64.logand va (Int64.of_int (page - 1))

let read_shadow_pte t addr = Phys_mem.read t.env.mem addr Instr.W64
let write_shadow_pte t addr v = Phys_mem.write t.env.mem addr Instr.W64 v

(* Strip the writable bit from every shadow leaf that maps [gfn]; used
   when a data frame is promoted to a guest page-table page. *)
let strip_rmap_writable t gfn =
  match Hashtbl.find_opt t.rmap gfn with
  | None -> ()
  | Some slots ->
      List.iter
        (fun addr ->
          let pte = read_shadow_pte t addr in
          if Pte.is_leaf pte then begin
            let p = Pte.perms pte in
            write_shadow_pte t addr (Pte.with_perms pte { p with w = false })
          end)
        !slots;
      t.needs_flush <- true

let ensure_pair t gfn level =
  match Hashtbl.find_opt t.pairs gfn with
  | Some p -> p.shadow_ppn
  | None ->
      let shadow_ppn = Frame_alloc.alloc_exn t.env.alloc in
      Hashtbl.replace t.pairs gfn { shadow_ppn; pair_level = level };
      (* The frame is now a page-table page: revoke existing write
         mappings so future guest PTE updates trap. *)
      strip_rmap_writable t gfn;
      t.needs_flush <- true;
      shadow_ppn

let ensure_synthetic t table_gfn index =
  match Hashtbl.find_opt t.synthetic (table_gfn, index) with
  | Some ppn -> ppn
  | None ->
      let ppn = Frame_alloc.alloc_exn t.env.alloc in
      Hashtbl.replace t.synthetic (table_gfn, index) ppn;
      ppn

let rmap_add t gfn addr =
  let slots =
    match Hashtbl.find_opt t.rmap gfn with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace t.rmap gfn l;
        l
  in
  if not (List.mem addr !slots) then slots := addr :: !slots

type fill_result =
  | Filled of { cycles : int }
  | Guest_fault
  | Target_mmio of { gpa : int64 }
  | Pt_write of { gpa : int64 }
  | Bad_gpa

let handle_fault t ~root_gfn ~access ~user ~va =
  let env = t.env in
  if not (Page_table.canonical va) then Guest_fault
  else begin
    let root_shadow = ensure_pair t root_gfn (Arch.pt_levels - 1) in
    (* Walk the guest tables level by level, pairing each table page and
       linking the shadow skeleton as we descend. *)
    let rec descend level table_gfn shadow_ppn =
      let index = Page_table.vpn va ~level in
      let gpte_gpa = Int64.add (frame_base table_gfn) (Int64.of_int (index * 8)) in
      match env.read_guest_pte gpte_gpa with
      | None -> Bad_gpa
      | Some gpte ->
          if not (Pte.is_valid gpte) then Guest_fault
          else if Pte.is_leaf gpte then
            if level = 0 then
              finish gpte gpte_gpa ~target_gfn:(Pte.ppn gpte) shadow_ppn index
            else if
              level = 1
              && Velum_util.Bitops.is_aligned (Pte.ppn gpte) (1 lsl Arch.vpn_bits)
            then begin
              (* guest 2 MiB superpage: splinter into 4 KiB shadow
                 leaves through a synthetic level-0 table *)
              let synth = ensure_synthetic t table_gfn index in
              let slot = Int64.add (frame_base shadow_ppn) (Int64.of_int (index * 8)) in
              let cur = read_shadow_pte t slot in
              if not (Pte.is_valid cur) || Pte.ppn cur <> synth then
                write_shadow_pte t slot (Pte.table ~ppn:synth);
              let vpn0 = Page_table.vpn va ~level:0 in
              let target_gfn = Int64.add (Pte.ppn gpte) (Int64.of_int vpn0) in
              finish gpte gpte_gpa ~target_gfn synth vpn0
            end
            else Guest_fault
          else if level = 0 then Guest_fault
          else begin
            let child_gfn = Pte.ppn gpte in
            let child_shadow = ensure_pair t child_gfn (level - 1) in
            let slot = Int64.add (frame_base shadow_ppn) (Int64.of_int (index * 8)) in
            let cur = read_shadow_pte t slot in
            if not (Pte.is_valid cur) || Pte.ppn cur <> child_shadow then
              write_shadow_pte t slot (Pte.table ~ppn:child_shadow);
            descend (level - 1) child_gfn child_shadow
          end
    and finish gpte gpte_gpa ~target_gfn leaf_shadow_ppn index =
      if not (Pte.allows gpte access ~user) then Guest_fault
      else begin
        let target_gpa = Int64.logor (frame_base target_gfn) (page_off va) in
        if Bus.is_mmio (frame_base target_gfn) then Target_mmio { gpa = target_gpa }
        else if access = Arch.Store && is_pt_gfn t target_gfn then
          Pt_write { gpa = target_gpa }
        else begin
          let resolved =
            if access = Arch.Store then env.resolve_write target_gfn
            else env.resolve_read target_gfn
          in
          match resolved with
          | None -> Bad_gpa
          | Some hpa_ppn ->
              (* Architectural A/D maintenance on the guest leaf. *)
              let gpte' = Pte.set_accessed gpte in
              let gpte' = if access = Arch.Store then Pte.set_dirty gpte' else gpte' in
              if gpte' <> gpte then ignore (env.write_guest_pte gpte_gpa gpte');
              let gp = Pte.perms gpte in
              let w =
                gp.w && Pte.dirty gpte'
                && env.host_writable target_gfn
                && not (is_pt_gfn t target_gfn)
              in
              let sp = { gp with w } in
              let slot = Int64.add (frame_base leaf_shadow_ppn) (Int64.of_int (index * 8)) in
              write_shadow_pte t slot (Pte.set_dirty (Pte.set_accessed (Pte.leaf ~ppn:hpa_ppn sp)));
              rmap_add t target_gfn slot;
              t.fill_count <- t.fill_count + 1;
              let cycles = t.env.cost.Cost_model.emul_instr * (Arch.pt_levels + 1) in
              Filled { cycles }
        end
      end
    in
    descend (Arch.pt_levels - 1) root_gfn root_shadow
  end

let emulate_pt_write t ~gpa ~value =
  if t.env.write_guest_pte gpa value then begin
    let gfn = Int64.shift_right_logical gpa Arch.page_shift in
    (match Hashtbl.find_opt t.pairs gfn with
    | Some pair ->
        let index = Int64.to_int (Int64.div (page_off gpa) 8L) in
        let slot = Int64.add (frame_base pair.shadow_ppn) (Int64.of_int (index * 8)) in
        write_shadow_pte t slot Pte.invalid
    | None -> ());
    t.pt_write_count <- t.pt_write_count + 1;
    t.needs_flush <- true;
    true
  end
  else false

let invalidate_gfn t gfn =
  (match Hashtbl.find_opt t.rmap gfn with
  | Some slots ->
      List.iter (fun addr -> write_shadow_pte t addr Pte.invalid) !slots;
      slots := []
  | None -> ());
  t.needs_flush <- true

let clear_table_writable t table_ppn =
  for index = 0 to (page / 8) - 1 do
    let addr = Int64.add (frame_base table_ppn) (Int64.of_int (index * 8)) in
    let pte = read_shadow_pte t addr in
    if Pte.is_leaf pte then begin
      let p = Pte.perms pte in
      if p.w then write_shadow_pte t addr (Pte.with_perms pte { p with w = false })
    end
  done

let clear_all_writable t =
  Hashtbl.iter
    (fun _gfn pair ->
      if pair.pair_level = 0 then clear_table_writable t pair.shadow_ppn)
    t.pairs;
  Hashtbl.iter (fun _ ppn -> clear_table_writable t ppn) t.synthetic;
  t.needs_flush <- true

let flush_all t =
  Hashtbl.iter (fun _ pair -> ignore (Frame_alloc.decr_ref t.env.alloc pair.shadow_ppn)) t.pairs;
  Hashtbl.iter (fun _ ppn -> ignore (Frame_alloc.decr_ref t.env.alloc ppn)) t.synthetic;
  Hashtbl.reset t.pairs;
  Hashtbl.reset t.synthetic;
  Hashtbl.reset t.rmap;
  t.needs_flush <- true

let translate t ~root_gfn ~tlb ~access ~user va =
  match Hashtbl.find_opt t.pairs root_gfn with
  | None -> Error `Page
  | Some root_pair -> (
      let vpn = Int64.shift_right_logical va Arch.page_shift in
      let perms_allow (p : Pte.perms) =
        (if user then p.u else true)
        &&
        match access with
        | Arch.Fetch -> p.x
        | Arch.Load -> p.r
        | Arch.Store -> p.w
      in
      let hit =
        match Tlb.lookup tlb ~vpn with
        | Some e when perms_allow e.perms ->
            if access = Arch.Store && not e.dirty_ok then None else Some e
        | _ -> None
      in
      match hit with
      | Some e ->
          Tlb.note_hit tlb;
          Ok
            {
              Cpu.pa = Int64.logor (frame_base e.ppn) (page_off va);
              mmio = false;
              xlate_cycles = 0;
            }
      | None -> (
          Tlb.note_miss tlb;
          let acc =
            {
              Page_table.read_pte = (fun pa -> read_shadow_pte t pa);
              write_pte = (fun pa v -> write_shadow_pte t pa v);
            }
          in
          match Page_table.walk acc ~root_ppn:root_pair.shadow_ppn va with
          | Error _ -> Error `Page
          | Ok { pte; refs; _ } ->
              if not (Pte.allows pte access ~user) then Error `Page
              else begin
                let perms = Pte.perms pte in
                Tlb.insert tlb
                  {
                    Tlb.vpn;
                    ppn = Pte.ppn pte;
                    perms;
                    dirty_ok = perms.w;
                    mmio = false;
                    superpage = false;
                  };
                let cost = t.env.cost in
                Ok
                  {
                    Cpu.pa = Int64.logor (frame_base (Pte.ppn pte)) (page_off va);
                    mmio = false;
                    xlate_cycles =
                      (refs * cost.Cost_model.pt_ref) + cost.Cost_model.tlb_fill;
                  }
              end))

let take_tlb_flush t =
  let f = t.needs_flush in
  t.needs_flush <- false;
  f
