(** First-in-first-out round-robin scheduler with a fixed time slice.

    The baseline policy: ignores weights and I/O boost, so CPU time
    divides equally among runnable vCPUs regardless of administrator
    intent — exactly the failure the credit scheduler's weight experiment
    demonstrates. *)

val create : ?slice:int -> unit -> Scheduler.t
