(** VM-exit emulation — the hypervisor's trap handler.

    Each exit from a deprivileged hart lands here.  The handler emulates
    the sensitive instruction against the vCPU's virtual state (or
    services the hidden fault), charges the exit's cycles to the vCPU's
    VMM account, bumps the telemetry counters, and says how the scheduler
    should proceed. *)

open Velum_machine

type action =
  | Resume  (** re-enter the guest *)
  | Yielded  (** guest voluntarily released the CPU (yield hypercall) *)
  | Became_blocked  (** vCPU blocked in wfi; wake on virtual interrupt *)
  | Vcpu_halted

val handle_exit : Vm.t -> vcpu_idx:int -> now:int64 -> Cpu.vmexit -> action

val irq_deliverable : Vm.t -> Vcpu.t -> now:int64 -> bool
(** A virtual interrupt is pending {e and} the guest would accept it —
    the wake condition for blocked vCPUs. *)

val maybe_inject_irq : Vm.t -> vcpu_idx:int -> now:int64 -> bool
(** Inject the highest-priority deliverable virtual interrupt (if any)
    by performing trap entry on the virtual state; returns whether one
    was injected.  Called before resuming a vCPU. *)

val cow_copy_cycles : int
(** Cycles charged to copy a page when breaking copy-on-write. *)
