(** Borrowed-virtual-time scheduler.

    Each vCPU accumulates virtual time at a rate inversely proportional
    to its weight; the runnable vCPU with the smallest virtual time runs
    next.  Newly woken vCPUs are clamped to the minimum runnable virtual
    time so sleepers cannot starve the system when they return. *)

val create : ?slice:int -> unit -> Scheduler.t
