(** Grant tables: controlled inter-VM memory sharing (Xen-style).

    A granting VM offers one of its frames to a specific peer; the peer
    maps the grant into a free slot of its own guest-physical space.
    Both VMs then address the same machine frame — the foundation for
    shared-ring I/O between driver domains, zero-copy networking, and
    inter-VM channels.  Grants may be read-only (the mapping side faults
    to the VMM on stores) or read-write.

    Bookkeeping rules:
    - the backing frame's refcount rises while mapped, so neither
      ballooning nor VM destruction on one side can free memory the
      other side still addresses;
    - page sharing/COW is disabled on granted frames (they are
      intentionally shared; a COW break would silently unshare them);
    - a grant must be unmapped before it can be revoked. *)

type t
(** A grant table (one per host suffices). *)

val create : unit -> t

type grant_ref = int

val offer :
  t -> from_vm:Vm.t -> gfn:int64 -> writable:bool -> (grant_ref, string) result
(** [offer t ~from_vm ~gfn ~writable] publishes frame [gfn] of
    [from_vm].  Fails if the gfn is not Present or is already offered. *)

val map :
  t -> grant:grant_ref -> into_vm:Vm.t -> at_gfn:int64 -> (unit, string) result
(** [map t ~grant ~into_vm ~at_gfn] installs the granted frame at
    [at_gfn] of the mapping VM, which must currently be [Absent] or
    [Ballooned] there.  Read-only grants map with the p2m writable bit
    clear. *)

val unmap : t -> grant:grant_ref -> (unit, string) result
(** Remove the peer's mapping (the slot returns to [Absent]). *)

val revoke : t -> grant:grant_ref -> (unit, string) result
(** Withdraw an unmapped offer. *)

val is_mapped : t -> grant:grant_ref -> bool
val active_grants : t -> int
