(** Nested (two-dimensional) paging.

    Models EPT/NPT hardware: the guest manages its own page tables over
    guest-physical addresses and the MMU composes them with the
    hypervisor's physical-to-machine map on every TLB miss.  Guest
    [satp] writes and PTE updates need no exits; the price is the 2-D
    walk — every guest-level table reference itself requires a host-level
    translation, so a miss costs [(n+1)·m + n] memory references instead
    of [n].

    Host-level conditions (not-present, COW, write-protection for dirty
    logging, swapped, ballooned, post-copy remote) surface as [`Page]
    faults that the hypervisor services without the guest noticing. *)

open Velum_isa
open Velum_machine

type env = {
  mem : Phys_mem.t;
  cost : Cost_model.t;
  p2m : P2m.t;
  mark_ad_write : int64 -> unit;
      (** called when the walker hardware sets A/D bits in a guest table
          page (gfn): the page must be marked dirty for migration *)
}

type t

val create : env -> t

val walks : t -> int

val translate :
  t ->
  guest_satp:int64 ->
  tlb:Tlb.t ->
  access:Arch.access ->
  user:bool ->
  int64 ->
  (Cpu.xlate, Cpu.xlate_fault) result
(** Full two-dimensional translation.  With guest paging disabled the
    guest-virtual address {e is} the guest-physical address and only the
    host dimension is walked.  Permission outcomes:

    - guest-level denial (invalid/permission PTE) → [`Page] (the
      hypervisor reflects a fault into the guest);
    - host-level denial (p2m not Present-writable as needed) → [`Page]
      (the hypervisor repairs and resumes);
    - guest-physical address in the device window → [Ok] with
      [mmio = true];
    - guest-physical address beyond the VM's memory → [`Access]. *)

type classify =
  | Guest_level  (** the guest's own tables deny the access — reflect *)
  | Host_level of { gfn : int64 }  (** p2m work needed on this frame *)
  | Mmio of { gpa : int64 }  (** should not reach the fault path *)
  | Bad of { gpa : int64 }  (** guest mapped a nonexistent address *)

val classify_fault :
  t -> guest_satp:int64 -> access:Arch.access -> user:bool -> va:int64 -> classify
(** Software re-walk used by the hypervisor's fault handler to decide
    what a [`Page] exit from {!translate} means. *)
