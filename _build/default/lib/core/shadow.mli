(** Shadow page tables (software MMU).

    In shadow mode the hardware TLB walks {e host-side} tables that map
    guest-virtual addresses directly to machine frames.  The hypervisor
    keeps one shadow table page {e paired} with every guest page-table
    page it has seen, mirrors guest leaves into shadow leaves on demand
    (filling on the resulting hidden page faults), and write-protects the
    guest's page-table frames so every guest PTE update traps and can be
    applied to both trees.

    Key invariants:
    - A shadow leaf is writable only if the guest leaf is writable {e
      and} the host-side p2m entry is writable (dirty logging, COW) {e
      and} the target frame is not itself a known guest page-table page
      {e and} the guest leaf's dirty bit is already set (so the first
      store faults and the pager can set the guest D bit — precise dirty
      bits, as hardware provides).
    - [rmap] records, for every guest frame, the shadow leaf slots that
      map it, so the pager can revoke access when the frame is promoted
      to a page-table page, COW-broken, shared, ballooned or swapped. *)

open Velum_isa
open Velum_machine

type env = {
  mem : Phys_mem.t;  (** host machine memory (shadow tables live here) *)
  alloc : Frame_alloc.t;
  cost : Cost_model.t;
  read_guest_pte : int64 -> Pte.t option;
      (** read a guest PTE by guest-physical address ([None] = bad gpa) *)
  write_guest_pte : int64 -> Pte.t -> bool;
      (** write a guest PTE (A/D maintenance, PT-write emulation);
          implementations must mark the page dirty for migration *)
  resolve_read : int64 -> int64 option;
      (** gfn → machine frame for a read mapping (swap-in etc.) *)
  resolve_write : int64 -> int64 option;
      (** gfn → machine frame for a write mapping (COW break, dirty
          logging) *)
  host_writable : int64 -> bool;
      (** current p2m writability of a gfn (false during a dirty-logging
          epoch until first resolved write) *)
}

type t

val create : env -> t

val is_pt_gfn : t -> int64 -> bool
(** [is_pt_gfn t gfn] — the frame is a known guest page-table page (and
    is therefore write-protected). *)

val shadow_root : t -> root_gfn:int64 -> int64 option
(** [shadow_root t ~root_gfn] is the machine frame of the shadow table
    paired with the guest root, if it exists. *)

val fills : t -> int
val pt_writes : t -> int
val table_frames : t -> int
(** Shadow table pages currently allocated. *)

type fill_result =
  | Filled of { cycles : int }
      (** shadow updated; re-execute the faulting instruction *)
  | Guest_fault  (** the guest's own tables deny the access: reflect *)
  | Target_mmio of { gpa : int64 }
      (** the access targets the device window: emulate it *)
  | Pt_write of { gpa : int64 }
      (** a store to a write-protected guest page-table page: emulate
          the PTE update *)
  | Bad_gpa  (** the guest mapped a nonexistent physical address *)

val handle_fault :
  t -> root_gfn:int64 -> access:Arch.access -> user:bool -> va:int64 -> fill_result
(** [handle_fault] is the shadow pager's page-fault service routine: walk
    the guest tables in software, classify, and (in the common case)
    build the missing shadow entry, pairing and write-protecting guest
    table pages along the way.  [cycles] is the VMM work to charge. *)

val emulate_pt_write : t -> gpa:int64 -> value:Pte.t -> bool
(** [emulate_pt_write t ~gpa ~value] applies a guest PTE write to the
    guest table and knocks out the paired shadow entry.  Returns [false]
    on a bad address.  The caller flushes the TLB. *)

val invalidate_gfn : t -> int64 -> unit
(** [invalidate_gfn t gfn] revokes every shadow leaf mapping [gfn]
    (COW break, sharing, balloon, swap-out).  The caller flushes the
    TLB. *)

val clear_all_writable : t -> unit
(** Strip the writable bit from every shadow leaf — start of a
    dirty-logging epoch.  The caller flushes the TLB. *)

val flush_all : t -> unit
(** Drop every shadow table and pairing (frees the frames). *)

val take_tlb_flush : t -> bool
(** [take_tlb_flush t] — true when a pager action since the last call
    requires a hardware TLB flush (new write-protection, revocation, PTE
    update); reading clears the request. *)

val translate :
  t ->
  root_gfn:int64 ->
  tlb:Tlb.t ->
  access:Arch.access ->
  user:bool ->
  int64 ->
  (Cpu.xlate, Cpu.xlate_fault) result
(** The translate function the deprivileged hart runs with while the
    guest has paging enabled: TLB, then a one-dimensional walk of the
    shadow tree.  Every miss that the shadow tree cannot satisfy is a
    [`Page] fault, which the hypervisor routes to {!handle_fault}. *)
