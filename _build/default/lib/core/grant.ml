type entry = {
  from_vm : Vm.t;
  gfn : int64;
  hpa_ppn : int64;
  writable : bool;
  mutable mapped : (Vm.t * int64) option;
}

type t = { mutable next : int; entries : (int, entry) Hashtbl.t }

type grant_ref = int

let create () = { next = 0; entries = Hashtbl.create 16 }

let already_offered t vm gfn =
  Hashtbl.fold
    (fun _ e acc -> acc || (e.from_vm == vm && e.gfn = gfn))
    t.entries false

let offer t ~from_vm ~gfn ~writable =
  if already_offered t from_vm gfn then Error "gfn already offered"
  else if not (P2m.in_range from_vm.Vm.p2m gfn) then Error "gfn out of range"
  else
    match P2m.get from_vm.Vm.p2m gfn with
    | P2m.Present { hpa_ppn; cow = true; _ } ->
        (* break the COW first so the peer shares the live copy *)
        ignore (Vm.resolve_write from_vm gfn);
        (match P2m.get from_vm.Vm.p2m gfn with
        | P2m.Present { hpa_ppn = fresh; _ } ->
            let r = t.next in
            t.next <- r + 1;
            Hashtbl.replace t.entries r
              { from_vm; gfn; hpa_ppn = fresh; writable; mapped = None };
            ignore hpa_ppn;
            Ok r
        | _ -> Error "gfn not present after cow break")
    | P2m.Present { hpa_ppn; cow = false; _ } ->
        let r = t.next in
        t.next <- r + 1;
        Hashtbl.replace t.entries r { from_vm; gfn; hpa_ppn; writable; mapped = None };
        Ok r
    | _ -> Error "gfn not present"

let map t ~grant ~into_vm ~at_gfn =
  match Hashtbl.find_opt t.entries grant with
  | None -> Error "no such grant"
  | Some e -> (
      if e.mapped <> None then Error "grant already mapped"
      else if into_vm == e.from_vm then Error "cannot map a grant into its owner"
      else if not (into_vm.Vm.host == e.from_vm.Vm.host) then
        Error "grantor and grantee live on different hosts"
      else if not (P2m.in_range into_vm.Vm.p2m at_gfn) then Error "slot out of range"
      else
        match P2m.get into_vm.Vm.p2m at_gfn with
        | P2m.Absent | P2m.Ballooned ->
            Frame_alloc.incr_ref into_vm.Vm.host.Host.alloc e.hpa_ppn;
            P2m.set into_vm.Vm.p2m at_gfn
              (P2m.Present { hpa_ppn = e.hpa_ppn; writable = e.writable; cow = false });
            Vm.flush_all_tlbs into_vm;
            e.mapped <- Some (into_vm, at_gfn);
            Ok ()
        | _ -> Error "slot not free")

let unmap t ~grant =
  match Hashtbl.find_opt t.entries grant with
  | None -> Error "no such grant"
  | Some e -> (
      match e.mapped with
      | None -> Error "grant not mapped"
      | Some (vm, at_gfn) ->
          (match P2m.get vm.Vm.p2m at_gfn with
          | P2m.Present { hpa_ppn; _ } when hpa_ppn = e.hpa_ppn ->
              ignore (Frame_alloc.decr_ref vm.Vm.host.Host.alloc hpa_ppn);
              P2m.set vm.Vm.p2m at_gfn P2m.Absent;
              (match vm.Vm.shadow with
              | Some s -> Shadow.invalidate_gfn s at_gfn
              | None -> ());
              Vm.flush_all_tlbs vm
          | _ -> ());
          e.mapped <- None;
          Ok ())

let revoke t ~grant =
  match Hashtbl.find_opt t.entries grant with
  | None -> Error "no such grant"
  | Some e ->
      if e.mapped <> None then Error "grant still mapped"
      else begin
        Hashtbl.remove t.entries grant;
        Ok ()
      end

let is_mapped t ~grant =
  match Hashtbl.find_opt t.entries grant with
  | Some e -> e.mapped <> None
  | None -> false

let active_grants t = Hashtbl.length t.entries
