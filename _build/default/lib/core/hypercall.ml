open Velum_isa
open Velum_machine

let hc_console_putc = 0L
let hc_console_write = 1L
let hc_yield = 2L
let hc_set_timer = 3L
let hc_balloon_give = 4L
let hc_balloon_want = 5L
let hc_pt_update = 6L
let hc_pt_update_batch = 7L
let hc_vm_id = 8L
let hc_evt_send = 9L
let hc_evt_ack = 10L

type action = Continue | Yield_cpu

let ok = 0L
let err = -1L

let pt_update (vm : Vm.t) gpa value =
  match vm.Vm.shadow with
  | Some shadow ->
      let applied = Shadow.emulate_pt_write shadow ~gpa ~value in
      if Shadow.take_tlb_flush shadow then Vm.flush_all_tlbs vm;
      applied
  | None -> Vm.write_gpa_u64 vm gpa value

let dispatch (vm : Vm.t) ~vcpu_idx ~now:_ =
  let vcpu = vm.Vm.vcpus.(vcpu_idx) in
  let s = vcpu.Vcpu.state in
  let arg n = Cpu.get_reg s n in
  let num = arg 1 in
  let ret v = Cpu.set_reg s 1 v in
  let action = ref Continue in
  (if num = hc_console_putc then begin
     Vm.console_put vm (Char.chr (Int64.to_int (Int64.logand (arg 2) 0xFFL)));
     ret ok
   end
   else if num = hc_console_write then begin
     match Vm.read_gpa_bytes vm (arg 2) (Int64.to_int (arg 3)) with
     | Some b ->
         String.iter (fun c -> Vm.console_put vm c) (Bytes.to_string b);
         ret ok
     | None -> ret err
   end
   else if num = hc_yield then begin
     action := Yield_cpu;
     ret ok
   end
   else if num = hc_set_timer then begin
     Cpu.set_csr s Arch.Stimecmp (arg 2);
     ret ok
   end
   else if num = hc_balloon_give then
     ret (if Vm.balloon_out vm (arg 2) then ok else err)
   else if num = hc_balloon_want then
     ret (if Vm.balloon_in vm (arg 2) then ok else err)
   else if num = hc_pt_update then
     ret (if pt_update vm (arg 2) (arg 3) then ok else err)
   else if num = hc_pt_update_batch then begin
     let base = arg 2 and count = Int64.to_int (arg 3) in
     let rec apply i =
       if i >= count then true
       else
         let entry = Int64.add base (Int64.of_int (i * 16)) in
         match (Vm.read_gpa_u64 vm entry, Vm.read_gpa_u64 vm (Int64.add entry 8L)) with
         | Some gpa, Some value -> pt_update vm gpa value && apply (i + 1)
         | _ -> false
     in
     ret (if apply 0 then ok else err)
   end
   else if num = hc_vm_id then ret (Int64.of_int vm.Vm.id)
   else if num = hc_evt_send then ret (if Event.send ~vm ~port:(arg 2) then ok else err)
   else if num = hc_evt_ack then begin
     Event.ack vm;
     ret ok
   end
   else ret err);
  Cpu.advance_pc s;
  !action
