let connect ~(a : Vm.t) ~(b : Vm.t) ~port_a ~port_b =
  if a == b then Error "cannot connect a VM to itself"
  else if Hashtbl.mem a.Vm.event_channels port_a then Error "port busy on first VM"
  else if Hashtbl.mem b.Vm.event_channels port_b then Error "port busy on second VM"
  else begin
    Hashtbl.replace a.Vm.event_channels port_a b;
    Hashtbl.replace b.Vm.event_channels port_b a;
    Ok ()
  end

let disconnect ~(vm : Vm.t) ~port =
  match Hashtbl.find_opt vm.Vm.event_channels port with
  | None -> false
  | Some peer ->
      Hashtbl.remove vm.Vm.event_channels port;
      (* drop the peer's end(s) pointing back at us *)
      let back =
        Hashtbl.fold
          (fun p q acc -> if q == vm then p :: acc else acc)
          peer.Vm.event_channels []
      in
      List.iter (Hashtbl.remove peer.Vm.event_channels) back;
      true

let send ~(vm : Vm.t) ~port =
  match Hashtbl.find_opt vm.Vm.event_channels port with
  | None -> false
  | Some peer ->
      peer.Vm.event_pending <- true;
      true

let pending (vm : Vm.t) = vm.Vm.event_pending
let ack (vm : Vm.t) = vm.Vm.event_pending <- false

let ports (vm : Vm.t) =
  Hashtbl.fold (fun p _ acc -> p :: acc) vm.Vm.event_channels [] |> List.sort compare
