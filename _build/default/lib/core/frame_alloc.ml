open Velum_machine

type t = {
  mem : Phys_mem.t;
  reserved : int;
  counts : int array; (* index: ppn - reserved *)
  mutable free : int64 list;
  mutable free_n : int;
}

let create ~mem ?(reserved = 16) () =
  let n = Phys_mem.frames mem in
  if reserved < 0 || reserved > n then invalid_arg "Frame_alloc.create: bad reserved";
  let managed = n - reserved in
  let free = List.init managed (fun i -> Int64.of_int (reserved + i)) in
  { mem; reserved; counts = Array.make managed 0; free; free_n = managed }

let total t = Array.length t.counts
let free_count t = t.free_n
let used_count t = total t - t.free_n

let index t ppn =
  let i = Int64.to_int ppn - t.reserved in
  if i < 0 || i >= Array.length t.counts then
    invalid_arg (Printf.sprintf "Frame_alloc: frame %Ld not managed" ppn);
  i

let alloc t =
  match t.free with
  | [] -> None
  | ppn :: rest ->
      t.free <- rest;
      t.free_n <- t.free_n - 1;
      t.counts.(index t ppn) <- 1;
      Phys_mem.frame_fill t.mem ~ppn '\000';
      Some ppn

let alloc_exn t =
  match alloc t with Some p -> p | None -> failwith "Frame_alloc: out of frames"

let refcount t ppn = t.counts.(index t ppn)

let incr_ref t ppn =
  let i = index t ppn in
  if t.counts.(i) = 0 then invalid_arg "Frame_alloc.incr_ref: frame is free";
  t.counts.(i) <- t.counts.(i) + 1

let decr_ref t ppn =
  let i = index t ppn in
  if t.counts.(i) = 0 then invalid_arg "Frame_alloc.decr_ref: frame is free";
  t.counts.(i) <- t.counts.(i) - 1;
  if t.counts.(i) = 0 then begin
    t.free <- ppn :: t.free;
    t.free_n <- t.free_n + 1;
    true
  end
  else false
