(** Host (machine) frame allocator with reference counting.

    The hypervisor hands machine frames to guests, shadow page tables and
    its own metadata from this allocator.  Reference counts support
    content-based page sharing and copy-on-write snapshots: a frame is
    returned to the free list when its last reference is dropped. *)

type t

val create : mem:Velum_machine.Phys_mem.t -> ?reserved:int -> unit -> t
(** [create ~mem ~reserved ()] manages all of [mem]'s frames except the
    first [reserved] (default 16, kept for boot/firmware use).

    @raise Invalid_argument if [reserved] exceeds the frame count. *)

val total : t -> int
(** Frames under management. *)

val free_count : t -> int
val used_count : t -> int

val alloc : t -> int64 option
(** [alloc t] takes a frame (zeroed) with refcount 1; [None] when
    exhausted. *)

val alloc_exn : t -> int64
(** @raise Failure when out of frames. *)

val refcount : t -> int64 -> int
(** Current reference count (0 = free).

    @raise Invalid_argument for frames outside management. *)

val incr_ref : t -> int64 -> unit
(** [incr_ref t ppn] adds a reference (page sharing / snapshot).

    @raise Invalid_argument if the frame is free. *)

val decr_ref : t -> int64 -> bool
(** [decr_ref t ppn] drops a reference; returns [true] when this freed
    the frame.

    @raise Invalid_argument if the frame is already free. *)
