(** Paravirtual hypercall interface.

    ABI: the guest executes [hcall] with the call number in r1 and
    arguments in r2-r5; the result replaces r1 (0 = success, -1 =
    error).  One hypercall costs {!Velum_machine.Cost_model.t.hypercall}
    cycles — several times cheaper than a full trap-and-emulate exit,
    which is the entire point of paravirtualization. *)

(** Call numbers:
    - [hc_console_putc]: r2 = character
    - [hc_console_write]: r2 = buffer gpa, r3 = length
    - [hc_yield]: voluntarily give up the CPU
    - [hc_set_timer]: r2 = absolute cycle deadline (0 disarms)
    - [hc_balloon_give]: r2 = gfn surrendered to the host
    - [hc_balloon_want]: r2 = gfn requested back
    - [hc_pt_update]: r2 = gpa of a guest PTE, r3 = new value
    - [hc_pt_update_batch]: r2 = gpa of an array of (pte-gpa, value)
      pairs, r3 = pair count — the Xen-style amortization of page-table
      maintenance
    - [hc_vm_id]: returns the VM id in r1
    - [hc_evt_send]: r2 = local event-channel port — raise the peer's
      external line
    - [hc_evt_ack]: acknowledge (clear) this VM's pending event *)

val hc_console_putc : int64

val hc_console_write : int64
val hc_yield : int64
val hc_set_timer : int64
val hc_balloon_give : int64
val hc_balloon_want : int64
val hc_pt_update : int64
val hc_pt_update_batch : int64
val hc_vm_id : int64
val hc_evt_send : int64
val hc_evt_ack : int64

type action =
  | Continue  (** keep running the vCPU *)
  | Yield_cpu  (** the guest asked to be descheduled *)

val dispatch : Vm.t -> vcpu_idx:int -> now:int64 -> action
(** [dispatch vm ~vcpu_idx ~now] reads the registers, performs the call,
    writes the result to r1 and advances the PC. *)
