(** Live migration of a VM between two hypervisors over a network link.

    Three strategies, as in the live-migration literature:

    - {!stop_and_copy}: freeze, transfer everything, resume — downtime
      equals total time (the baseline);
    - {!precopy}: iterative rounds — transfer all pages while the guest
      keeps running and dirtying, then re-send each round's dirty set
      until it is small enough (or stops shrinking), then freeze for a
      short final round.  Downtime scales with the residual dirty set;
      writable-working-set behaviour decides convergence;
    - {!postcopy}: freeze only for the vCPU state, resume on the
      destination immediately, pull pages on demand (charging a network
      round trip per fault) while pushing the rest in the background.
      Minimal downtime, degraded performance until the working set
      arrives.

    Storage is modelled as shared (network-attached); only memory and
    vCPU state move.  Transfer times are charged through the
    {!Velum_devices.Link} bandwidth/latency model, and the source VM
    executes on its hypervisor for the duration of each transfer round,
    so dirtying happens at the guest's natural rate. *)

open Velum_devices

type result = {
  total_cycles : int64;  (** start of migration to guest running on the
                             destination with all pages resident *)
  downtime_cycles : int64;  (** guest frozen (neither side executing) *)
  pages_sent : int;  (** includes re-sends and post-copy pulls *)
  bytes_sent : int;
  rounds : int;  (** pre-copy rounds (1 for stop-and-copy) *)
  remote_faults : int;  (** post-copy demand fetches *)
}

val page_wire_bytes : int
(** Bytes on the wire per page (page + header). *)

val stop_and_copy :
  ?compress:bool ->
  src:Hypervisor.t ->
  dst:Hypervisor.t ->
  vm:Vm.t ->
  link:Link.t ->
  unit ->
  Vm.t * result
(** [compress] elides all-zero pages to a 24-byte wire marker (default
    false). *)

val precopy :
  ?compress:bool ->
  src:Hypervisor.t ->
  dst:Hypervisor.t ->
  vm:Vm.t ->
  link:Link.t ->
  ?max_rounds:int ->
  ?stop_threshold:int ->
  unit ->
  Vm.t * result
(** Defaults: at most 8 rounds; freeze when the dirty set is ≤ 64
    pages.  Also freezes early when a round fails to shrink the dirty
    set (non-convergence guard). *)

val postcopy :
  src:Hypervisor.t ->
  dst:Hypervisor.t ->
  vm:Vm.t ->
  link:Link.t ->
  ?push_batch:int ->
  unit ->
  Vm.t * result
(** [push_batch] pages are pushed in the background between execution
    bursts (default 32). *)
