(** Virtual CPU: the guest-visible architectural state plus run-state and
    scheduling bookkeeping.

    The architectural state is a plain {!Velum_machine.Cpu.state} whose
    [mode] field holds the {e virtual} privilege mode — under
    trap-and-emulate the real hart always runs deprivileged, and the
    hypervisor consults the virtual mode when emulating sensitive
    instructions. *)

open Velum_machine

type runstate =
  | Runnable
  | Running  (** currently on a physical CPU *)
  | Blocked  (** waiting for a virtual interrupt (wfi) *)
  | Halted  (** executed [halt]; never runs again *)

type t = {
  id : int;  (** unique across the host *)
  vm_id : int;
  state : Cpu.state;
  mutable runstate : runstate;
  (* scheduling *)
  mutable weight : int;  (** credit-scheduler weight (default 256) *)
  mutable cap : int;
      (** hard ceiling as a percentage of one pCPU (0 = uncapped); caps
          are non-work-conserving — a capped vCPU idles even on an
          otherwise idle host *)
  mutable window_used : int;
      (** cycles consumed in the current accounting period (cap
          bookkeeping) *)
  mutable credits : int;
  mutable boosted : bool;  (** woken by I/O; gets priority (Xen BOOST) *)
  mutable vruntime : float;  (** borrowed-virtual-time accounting *)
  mutable last_scheduled : int64;
  (* accounting *)
  mutable guest_cycles : int64;  (** cycles spent executing guest code *)
  mutable vmm_cycles : int64;  (** cycles charged for exits/emulation *)
}

val create :
  id:int -> vm_id:int -> ?weight:int -> ?hartid:int -> entry:int64 -> unit -> t
(** Fresh vCPU parked at [entry] in virtual supervisor mode, [Runnable];
    [hartid] (default 0) seeds the read-only [Hartid] CSR. *)

val is_runnable : t -> bool
(** [Runnable] or [Running]. *)

val total_cycles : t -> int64
(** Guest + VMM cycles consumed on behalf of this vCPU. *)

val block : t -> unit
val wake : t -> boost:bool -> unit
(** [wake t ~boost] makes a blocked vCPU runnable; [boost] marks it as
    I/O-woken for schedulers that prioritise latency-sensitive vCPUs.
    No-op unless blocked. *)

val pp : Format.formatter -> t -> unit
