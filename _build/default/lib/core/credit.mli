(** Xen-style credit scheduler.

    Proportional-share with work conservation and I/O boost:

    - Every accounting period, each registered vCPU receives credits
      proportional to its weight (the whole period's cycles divided by
      total weight); credits are capped at two periods' worth so idle
      vCPUs cannot hoard.
    - Running debits credits one-for-one with consumed cycles.  vCPUs
      with positive credits are UNDER, others OVER; UNDER always runs
      before OVER, so shares converge to the weight ratio, while OVER
      keeps the machine work-conserving when someone is otherwise idle.
    - A vCPU woken by I/O enters the BOOST state and preempts in front
      of UNDER once, keeping latency-sensitive guests responsive without
      distorting long-run shares.
    - A nonzero {!Vcpu.t.cap} is a hard, non-work-conserving ceiling:
      once a vCPU has consumed cap% of a period it is parked until the
      next refill, even if the host is otherwise idle. *)

val create : ?slice:int -> ?period:int -> unit -> Scheduler.t
(** Defaults: 100k-cycle slice, 3M-cycle accounting period. *)
