(** Physical-to-machine map: a guest's view of "physical" memory.

    One entry per guest frame number (gfn).  This is the hypervisor's
    second translation dimension — what EPT/NPT hardware walks in nested
    mode and what the shadow pager folds into its leaves in shadow mode.
    Per-entry flags express the memory-management machinery:

    - [writable = false] makes guest stores fault to the VMM — used for
      dirty-page logging during live migration;
    - [cow] marks the frame as shared copy-on-write (content-based page
      sharing, snapshots) so a store fault duplicates it;
    - [Swapped] parks the contents in host swap;
    - [Ballooned] means the guest surrendered the page;
    - [Remote] means the page still lives on the migration source
      (post-copy). *)

type entry =
  | Absent  (** never populated *)
  | Present of { hpa_ppn : int64; writable : bool; cow : bool }
  | Swapped of { slot : int }
  | Ballooned
  | Remote  (** post-copy: fetch from the source on first touch *)

type t

val create : gframes:int -> t
(** [create ~gframes] — all entries [Absent].

    @raise Invalid_argument if [gframes <= 0]. *)

val gframes : t -> int
val get : t -> int64 -> entry
(** @raise Invalid_argument if the gfn is out of range. *)

val set : t -> int64 -> entry -> unit
val in_range : t -> int64 -> bool

val iter : t -> f:(gfn:int64 -> entry -> unit) -> unit

val present_count : t -> int
val count : t -> f:(entry -> bool) -> int

val fold_present : t -> init:'a -> f:('a -> gfn:int64 -> hpa_ppn:int64 -> 'a) -> 'a

val clear_writable_all : t -> int
(** [clear_writable_all t] strips the writable flag from every present
    entry (start of a dirty-logging epoch); returns how many were
    changed. *)
