(** Server-consolidation planning: pack VM reservations onto physical
    hosts and estimate the power/cost savings of the consolidation —
    Experiment E9, the one quantitative claim in the supplied text
    (≈3-4 VMs per host, ≈200-250 €/server/year of power+cooling). *)

type vm_req = {
  vm_name : string;
  cpu_units : int;  (** 100 = one core's worth of sustained demand *)
  mem_mb : int;
}

type host_spec = {
  cores : int;
  ram_mb : int;
  watts_idle : float;  (** power drawn by a host that is on *)
  watts_per_core : float;  (** additional power per busy core *)
}

val default_host : host_spec
(** 8 cores, 16 GiB, 120 W idle + 20 W/core — a modest 2010-era server. *)

type assignment = { host_index : int; req : vm_req }

type plan = {
  hosts_used : int;
  assignments : assignment list;
  cpu_utilization : float;  (** mean over used hosts, 0..1 *)
  mem_utilization : float;
}

val first_fit_decreasing : host_spec -> vm_req list -> plan
(** FFD bin packing on (cpu, memory) — sorted by the max of the two
    normalized dimensions.  Opens a new host when a VM fits nowhere.

    @raise Invalid_argument if some VM exceeds a whole host. *)

val consolidation_ratio : plan -> float
(** VMs per used host. *)

type cost_report = {
  unconsolidated_hosts : int;  (** one VM per host *)
  consolidated_hosts : int;
  watts_before : float;
  watts_after : float;
  annual_kwh_saved : float;
  annual_euro_saved : float;
  euro_saved_per_displaced_server : float;
}

val cost_savings :
  host_spec -> vm_req list -> plan -> ?euro_per_kwh:float -> ?cooling_overhead:float ->
  unit -> cost_report
(** Power model: each powered-on host draws [watts_idle] plus
    [watts_per_core × busy-cores]; consolidation removes idle draw of
    displaced hosts.  [cooling_overhead] multiplies IT power (default
    0.6 — cooling adds 60%).  Default electricity price 0.12 €/kWh. *)
