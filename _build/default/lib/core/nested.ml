open Velum_isa
open Velum_machine

type env = {
  mem : Phys_mem.t;
  cost : Cost_model.t;
  p2m : P2m.t;
  mark_ad_write : int64 -> unit;
}

type t = { env : env; mutable walk_count : int }

let create env = { env; walk_count = 0 }

let walks t = t.walk_count

let page = Arch.page_size
let frame_base ppn = Int64.shift_left ppn Arch.page_shift
let page_off va = Int64.logand va (Int64.of_int (page - 1))
let gfn_of gpa = Int64.shift_right_logical gpa Arch.page_shift

(* Host dimension: resolve a gfn for the walker.  The walker reads guest
   table pages regardless of the p2m writable bit (hardware table walks
   are not write-checked); A/D updates may write through dirty-logging
   protection (they report via mark_ad_write) but never through COW —
   the frame is shared, so the update must fault to the hypervisor. *)
let host_lookup t gfn =
  if not (P2m.in_range t.env.p2m gfn) then `Bad
  else
    match P2m.get t.env.p2m gfn with
    | P2m.Present { hpa_ppn; writable; cow } ->
        `Ram (hpa_ppn, writable && not cow, cow)
    | P2m.Absent -> `Bad
    | P2m.Swapped _ | P2m.Ballooned | P2m.Remote -> `Host_fault

let perms_allow (p : Pte.perms) access ~user =
  (if user then p.u else true)
  &&
  match access with Arch.Fetch -> p.x | Arch.Load -> p.r | Arch.Store -> p.w

(* One 2-D walk.  Returns the machine frame, effective permissions and
   the number of memory references, or the failure class. *)
type walk_outcome =
  | W_ram of { hpa_ppn : int64; perms : Pte.perms; dirty_ok : bool; refs : int }
  | W_mmio of { gpa : int64 }
  | W_guest_fault
  | W_host_fault of { gfn : int64 }
  | W_bad

let walk_2d t ~guest_satp ~access ~user va =
  let env = t.env in
  t.walk_count <- t.walk_count + 1;
  if not (Page_table.canonical va) then W_guest_fault
  else begin
    let refs = ref 0 in
    (* Each guest-level reference costs one access to the guest table
       page plus a host walk for its address. *)
    let host_levels = Arch.pt_levels in
    let exception Stop of walk_outcome in
    try
      let read_gpte table_gfn index =
        match host_lookup t table_gfn with
        | `Bad -> raise (Stop W_bad)
        | `Host_fault -> raise (Stop (W_host_fault { gfn = table_gfn }))
        | `Ram (hpa_ppn, _, _) ->
            refs := !refs + 1 + host_levels;
            Phys_mem.read env.mem
              (Int64.add (frame_base hpa_ppn) (Int64.of_int (index * 8)))
              Instr.W64
      in
      let write_gpte table_gfn index v =
        match host_lookup t table_gfn with
        | `Ram (_, _, true) ->
            (* A/D update into a shared frame: must break COW first. *)
            raise (Stop (W_host_fault { gfn = table_gfn }))
        | `Ram (hpa_ppn, _, false) ->
            Phys_mem.write env.mem
              (Int64.add (frame_base hpa_ppn) (Int64.of_int (index * 8)))
              Instr.W64 v;
            env.mark_ad_write table_gfn
        | `Bad | `Host_fault -> ()
      in
      (* Finish through a leaf found at [level]: a guest superpage
         (level 1) still composes with 4 KiB host frames, so the cached
         translation splinters to a 4 KiB entry — the hardware behaviour
         when the host does not back guests with large frames. *)
      let finish level table_gfn index gpte =
        if not (Pte.allows gpte access ~user) then raise (Stop W_guest_fault);
        if level = 1 && not (Velum_util.Bitops.is_aligned (Pte.ppn gpte) (1 lsl Arch.vpn_bits))
        then raise (Stop W_guest_fault);
        (* Architectural A/D maintenance in the guest tables. *)
        let gpte' = Pte.set_accessed gpte in
        let gpte' = if access = Arch.Store then Pte.set_dirty gpte' else gpte' in
        if gpte' <> gpte then write_gpte table_gfn index gpte';
        let target_gfn =
          if level = 0 then Pte.ppn gpte
          else
            Int64.add (Pte.ppn gpte)
              (Velum_util.Bitops.extract va ~lo:Arch.page_shift ~width:Arch.vpn_bits)
        in
        let target_base = frame_base target_gfn in
        if Bus.is_mmio target_base then
          raise (Stop (W_mmio { gpa = Int64.logor target_base (page_off va) }));
        match host_lookup t target_gfn with
        | `Bad -> raise (Stop W_bad)
        | `Host_fault -> raise (Stop (W_host_fault { gfn = target_gfn }))
        | `Ram (hpa_ppn, host_w, _) ->
            if access = Arch.Store && not host_w then
              raise (Stop (W_host_fault { gfn = target_gfn }));
            (* final host walk for the data page *)
            refs := !refs + host_levels;
            let gp = Pte.perms gpte in
            let eff = { gp with w = gp.w && host_w } in
            W_ram
              {
                hpa_ppn;
                perms = eff;
                dirty_ok = (access = Arch.Store || Pte.dirty gpte') && host_w;
                refs = !refs;
              }
      in
      let rec descend level table_gfn =
        let index = Page_table.vpn va ~level in
        let gpte = read_gpte table_gfn index in
        if not (Pte.is_valid gpte) then raise (Stop W_guest_fault);
        if Pte.is_leaf gpte then
          if level <= 1 then finish level table_gfn index gpte
          else raise (Stop W_guest_fault)
        else if level = 0 then raise (Stop W_guest_fault)
        else descend (level - 1) (Pte.ppn gpte)
      in
      descend (Arch.pt_levels - 1) (Arch.satp_root_ppn guest_satp)
    with Stop o -> o
  end

(* Guest paging disabled: identity guest-virtual → guest-physical, host
   dimension only. *)
let walk_bare t ~access va =
  let gpa = va in
  if Bus.is_mmio gpa then W_mmio { gpa }
  else begin
    let gfn = gfn_of gpa in
    match host_lookup t gfn with
    | `Bad -> W_bad
    | `Host_fault -> W_host_fault { gfn }
    | `Ram (hpa_ppn, host_w, _) ->
        if access = Arch.Store && not host_w then W_host_fault { gfn }
        else
          W_ram
            {
              hpa_ppn;
              perms = { Pte.r = true; w = host_w; x = true; u = true };
              dirty_ok = host_w;
              refs = Arch.pt_levels;
            }
  end

let translate t ~guest_satp ~tlb ~access ~user va =
  let vpn = Int64.shift_right_logical va Arch.page_shift in
  let hit =
    match Tlb.lookup tlb ~vpn with
    | Some e when (not e.mmio) && perms_allow e.perms access ~user ->
        if access = Arch.Store && not e.dirty_ok then None else Some e
    | Some e when e.mmio -> Some e
    | _ -> None
  in
  match hit with
  | Some e when e.mmio ->
      Tlb.note_hit tlb;
      Ok { Cpu.pa = Int64.logor (frame_base e.ppn) (page_off va); mmio = true; xlate_cycles = 0 }
  | Some e ->
      Tlb.note_hit tlb;
      Ok { Cpu.pa = Int64.logor (frame_base e.ppn) (page_off va); mmio = false; xlate_cycles = 0 }
  | None -> (
      Tlb.note_miss tlb;
      let outcome =
        if Arch.satp_enabled guest_satp then walk_2d t ~guest_satp ~access ~user va
        else walk_bare t ~access va
      in
      let cost = t.env.cost in
      match outcome with
      | W_ram { hpa_ppn; perms; dirty_ok; refs } ->
          Tlb.insert tlb
            { Tlb.vpn; ppn = hpa_ppn; perms; dirty_ok; mmio = false; superpage = false };
          Ok
            {
              Cpu.pa = Int64.logor (frame_base hpa_ppn) (page_off va);
              mmio = false;
              xlate_cycles = (refs * cost.Cost_model.pt_ref) + cost.Cost_model.tlb_fill;
            }
      | W_mmio { gpa } ->
          (* Cache the guest-physical page so repeated device touches
             skip the walk; the exit itself still happens. *)
          Tlb.insert tlb
            {
              Tlb.vpn;
              ppn = gfn_of gpa;
              perms = { Pte.r = true; w = true; x = false; u = true };
              dirty_ok = true;
              mmio = true;
              superpage = false;
            };
          Ok { Cpu.pa = gpa; mmio = true; xlate_cycles = 0 }
      | W_guest_fault | W_host_fault _ -> Error `Page
      | W_bad -> Error `Access)

type classify =
  | Guest_level
  | Host_level of { gfn : int64 }
  | Mmio of { gpa : int64 }
  | Bad of { gpa : int64 }

let classify_fault t ~guest_satp ~access ~user ~va =
  let outcome =
    if Arch.satp_enabled guest_satp then walk_2d t ~guest_satp ~access ~user va
    else walk_bare t ~access va
  in
  match outcome with
  | W_guest_fault -> Guest_level
  | W_host_fault { gfn } -> Host_level { gfn }
  | W_mmio { gpa } -> Mmio { gpa }
  | W_bad -> Bad { gpa = va }
  | W_ram _ ->
      (* The re-walk succeeded — the first walk's side effects (A/D
         updates) already repaired it; treat as host-level no-op. *)
      Host_level { gfn = -1L }
