lib/core/snapshot.ml: Arch Array Buffer Bytes Cpu Frame_alloc Host Hypervisor Int64 List P2m Phys_mem Shadow String Vcpu Velum_isa Velum_machine Vm
