lib/core/placement.ml: Array Float List Printf
