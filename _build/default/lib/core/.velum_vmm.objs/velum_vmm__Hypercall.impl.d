lib/core/hypercall.ml: Arch Array Bytes Char Cpu Event Int64 Shadow String Vcpu Velum_isa Velum_machine Vm
