lib/core/emulate.ml: Arch Array Bus Cost_model Cpu Hashtbl Host Hypercall Instr Int64 Monitor Nested Option P2m Shadow Vcpu Velum_devices Velum_isa Velum_machine Velum_util Vm
