lib/core/shadow.mli: Arch Cost_model Cpu Frame_alloc Phys_mem Pte Tlb Velum_isa Velum_machine
