lib/core/replicate.mli: Hypervisor Link Velum_devices Vm
