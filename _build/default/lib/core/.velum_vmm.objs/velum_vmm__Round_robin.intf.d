lib/core/round_robin.mli: Scheduler
