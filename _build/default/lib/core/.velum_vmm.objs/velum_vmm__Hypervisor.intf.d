lib/core/hypervisor.mli: Host Scheduler Vcpu Velum_devices Vm
