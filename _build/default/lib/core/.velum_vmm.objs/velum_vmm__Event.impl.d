lib/core/event.ml: Hashtbl List Vm
