lib/core/mem_mgr.mli: Vm
