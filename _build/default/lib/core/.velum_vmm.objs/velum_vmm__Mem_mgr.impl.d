lib/core/mem_mgr.ml: Array Frame_alloc Hashtbl Host Int64 List P2m Phys_mem Shadow Velum_machine Velum_util Vm
