lib/core/shadow.ml: Arch Bus Cost_model Cpu Frame_alloc Hashtbl Instr Int64 List Option Page_table Phys_mem Pte Tlb Velum_isa Velum_machine Velum_util
