lib/core/credit.mli: Scheduler
