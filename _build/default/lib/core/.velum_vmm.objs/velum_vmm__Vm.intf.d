lib/core/vm.mli: Arch Asm Blockdev Bus Bytes Cpu Format Hashtbl Host Monitor Nested Nic P2m Shadow Tlb Uart Vcpu Velum_devices Velum_isa Velum_machine Virtio_blk Virtio_ring
