lib/core/p2m.mli:
