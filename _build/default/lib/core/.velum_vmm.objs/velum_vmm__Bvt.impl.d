lib/core/bvt.ml: List Scheduler Vcpu
