lib/core/host.mli: Bytes Cost_model Frame_alloc Phys_mem Velum_machine
