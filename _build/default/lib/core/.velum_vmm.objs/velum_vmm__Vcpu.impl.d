lib/core/vcpu.ml: Cpu Format Int64 Velum_isa Velum_machine
