lib/core/event.mli: Vm
