lib/core/hypercall.mli: Vm
