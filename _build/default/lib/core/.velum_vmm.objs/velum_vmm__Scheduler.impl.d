lib/core/scheduler.ml: Vcpu
