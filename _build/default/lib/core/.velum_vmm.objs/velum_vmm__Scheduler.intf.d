lib/core/scheduler.mli: Vcpu
