lib/core/migrate.ml: Arch Array Cpu Frame_alloc Host Hypervisor Int64 Link List Logs Monitor P2m Phys_mem Vcpu Velum_devices Velum_isa Velum_machine Vm
