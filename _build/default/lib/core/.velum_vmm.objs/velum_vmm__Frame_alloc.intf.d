lib/core/frame_alloc.mli: Velum_machine
