lib/core/p2m.ml: Array Int64 Printf
