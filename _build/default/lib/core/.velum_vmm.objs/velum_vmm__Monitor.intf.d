lib/core/monitor.mli: Format
