lib/core/nested.ml: Arch Bus Cost_model Cpu Instr Int64 P2m Page_table Phys_mem Pte Tlb Velum_isa Velum_machine Velum_util
