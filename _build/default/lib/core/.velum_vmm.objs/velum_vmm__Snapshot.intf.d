lib/core/snapshot.mli: Bytes Hypervisor Vm
