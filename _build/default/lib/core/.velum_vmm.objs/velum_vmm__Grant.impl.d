lib/core/grant.ml: Frame_alloc Hashtbl Host P2m Shadow Vm
