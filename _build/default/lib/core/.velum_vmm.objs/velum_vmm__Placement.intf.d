lib/core/placement.mli:
