lib/core/credit.ml: Int64 List Option Scheduler Vcpu
