lib/core/round_robin.ml: List Queue Scheduler Vcpu
