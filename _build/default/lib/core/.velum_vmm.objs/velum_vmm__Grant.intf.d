lib/core/grant.mli: Vm
