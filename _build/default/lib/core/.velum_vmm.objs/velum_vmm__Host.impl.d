lib/core/host.ml: Array Bytes Cost_model Frame_alloc Phys_mem Velum_machine
