lib/core/emulate.mli: Cpu Vcpu Velum_machine Vm
