lib/core/monitor.ml: Array Format Int64 List
