lib/core/frame_alloc.ml: Array Int64 List Phys_mem Printf Velum_machine
