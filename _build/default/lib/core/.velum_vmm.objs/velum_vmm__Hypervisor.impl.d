lib/core/hypervisor.ml: Arch Array Blockdev Bus Cost_model Cpu Credit Emulate Host Int64 List Logs Nic Option Phys_mem Scheduler Vcpu Velum_devices Velum_isa Velum_machine Virtio_blk Vm
