lib/core/migrate.mli: Hypervisor Link Velum_devices Vm
