lib/core/nested.mli: Arch Cost_model Cpu P2m Phys_mem Tlb Velum_isa Velum_machine
