lib/core/replicate.ml: Array Cpu Frame_alloc Host Hypervisor Int64 Link List Migrate P2m Phys_mem Scheduler Vcpu Velum_devices Velum_machine Vm
