lib/core/bvt.mli: Scheduler
