lib/core/vcpu.mli: Cpu Format Velum_machine
