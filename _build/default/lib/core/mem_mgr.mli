(** Host memory management: content-based page sharing and hypervisor
    swapping — the ESX-lineage overcommit machinery that complements the
    balloon driver in {!Hypercall}.

    Page sharing scans guest frames, buckets them by FNV-1a digest,
    byte-compares candidates, and collapses duplicates onto one machine
    frame mapped copy-on-write everywhere.  A later write by any owner
    breaks the sharing with a private copy ({!Vm.resolve_write}). *)

type share_stats = {
  scanned : int;  (** candidate frames hashed *)
  shared : int;  (** p2m entries redirected to a canonical frame *)
  freed : int;  (** machine frames returned to the allocator *)
}

val share_pass : Vm.t list -> share_stats
(** [share_pass vms] runs one full scan over the present, non-swapped
    frames of the given VMs (all VMs must live on the same host).
    Idempotent: frames already sharing a canonical copy are skipped. *)

val shared_frames : Vm.t list -> int
(** Number of p2m entries currently marked copy-on-write shared. *)

val saved_frames : Vm.t list -> int
(** Machine frames saved versus fully private copies: for each frame
    with refcount [r > 1], [r - 1] are saved. *)

val evict : Vm.t -> n:int -> int
(** [evict vm ~n] forcibly swaps out up to [n] of the VM's present,
    non-shared frames (hypervisor swapping — the slow fallback when the
    balloon cannot reclaim enough).  Returns how many were evicted. *)
