(** Event channels: inter-VM notification doorbells (Xen-style).

    A channel binds a local port number in each of two VMs.  A guest
    sends on its port with the {!Hypercall.hc_evt_send} hypercall; the
    peer's external-interrupt line rises until the peer acknowledges
    with {!Hypercall.hc_evt_ack}.  Together with {!Grant} mappings this
    is the classic split-driver transport: shared ring in a granted
    frame, doorbell over an event channel. *)

val connect : a:Vm.t -> b:Vm.t -> port_a:int64 -> port_b:int64 -> (unit, string) result
(** [connect ~a ~b ~port_a ~port_b] binds a channel between the two VMs;
    [a] sends on [port_a] to signal [b] and vice versa.  Fails when a
    port is already bound on its VM or the VMs are the same. *)

val disconnect : vm:Vm.t -> port:int64 -> bool
(** [disconnect ~vm ~port] unbinds the channel end (and its peer end);
    false if not bound. *)

val send : vm:Vm.t -> port:int64 -> bool
(** Host-side send (the hypercall path uses this too). *)

val pending : Vm.t -> bool
(** The VM has an unacknowledged event. *)

val ack : Vm.t -> unit

val ports : Vm.t -> int64 list
(** Bound local ports, sorted. *)
