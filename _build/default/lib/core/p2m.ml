type entry =
  | Absent
  | Present of { hpa_ppn : int64; writable : bool; cow : bool }
  | Swapped of { slot : int }
  | Ballooned
  | Remote

type t = { entries : entry array }

let create ~gframes =
  if gframes <= 0 then invalid_arg "P2m.create: gframes must be positive";
  { entries = Array.make gframes Absent }

let gframes t = Array.length t.entries

let in_range t gfn = gfn >= 0L && gfn < Int64.of_int (Array.length t.entries)

let check t gfn =
  if not (in_range t gfn) then
    invalid_arg (Printf.sprintf "P2m: gfn %Ld out of range" gfn)

let get t gfn =
  check t gfn;
  t.entries.(Int64.to_int gfn)

let set t gfn e =
  check t gfn;
  t.entries.(Int64.to_int gfn) <- e

let iter t ~f =
  Array.iteri (fun i e -> f ~gfn:(Int64.of_int i) e) t.entries

let count t ~f = Array.fold_left (fun acc e -> if f e then acc + 1 else acc) 0 t.entries

let present_count t = count t ~f:(function Present _ -> true | _ -> false)

let fold_present t ~init ~f =
  let acc = ref init in
  Array.iteri
    (fun i e ->
      match e with
      | Present { hpa_ppn; _ } -> acc := f !acc ~gfn:(Int64.of_int i) ~hpa_ppn
      | _ -> ())
    t.entries;
  !acc

let clear_writable_all t =
  let changed = ref 0 in
  Array.iteri
    (fun i e ->
      match e with
      | Present ({ writable = true; _ } as p) ->
          t.entries.(i) <- Present { p with writable = false };
          incr changed
      | _ -> ())
    t.entries;
  !changed
