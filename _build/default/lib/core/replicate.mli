(** Checkpoint replication for high availability (Remus-style).

    A protected VM runs in epochs: at the end of each epoch the primary
    pauses briefly, ships the pages dirtied during the epoch plus the
    vCPU state to a warm backup on another host, and resumes.  If the
    primary fails, the backup resumes from the last completed checkpoint
    — losing at most one epoch of execution, with no shared storage of
    memory state required.

    The trade-off this module lets the benchmarks quantify: shorter
    epochs bound the failover loss window but pause the guest more often
    (checkpoint overhead grows), exactly the knob the Remus paper
    (NSDI'08) evaluates. *)

open Velum_devices

type session

type stats = {
  epochs_completed : int;
  pages_sent : int;  (** epoch checkpoints only *)
  initial_pages : int;  (** the one-time full synchronization *)
  initial_sync_cycles : int64;
  bytes_sent : int;  (** everything, including the full sync *)
  paused_cycles : int64;  (** guest stopped while epoch checkpoints
                              shipped (full sync excluded) *)
  run_cycles : int64;  (** guest execution between checkpoints *)
}

val start :
  primary:Hypervisor.t -> backup:Hypervisor.t -> vm:Vm.t -> link:Link.t -> session
(** Full initial synchronization (guest paused), then dirty logging is
    armed and the VM keeps running on the primary.  The backup twin is
    created blocked — it must not execute while the primary lives. *)

val epoch : session -> run_cycles:int64 -> unit
(** Run the guest for [run_cycles] on the primary, then pause it for the
    time the epoch's dirty pages + vCPU state occupy the wire, applying
    them to the backup. *)

val stats : session -> stats

val failover : session -> Vm.t
(** The primary is declared dead: it is destroyed, and the backup twin is
    unblocked at the last completed checkpoint.

    @raise Failure if called twice. *)

val protect :
  primary:Hypervisor.t ->
  backup:Hypervisor.t ->
  vm:Vm.t ->
  link:Link.t ->
  epoch_cycles:int64 ->
  epochs:int ->
  Vm.t * stats
(** Convenience: [start], run [epochs] epochs, then [failover]. *)
