open Velum_machine

type runstate = Runnable | Running | Blocked | Halted

type t = {
  id : int;
  vm_id : int;
  state : Cpu.state;
  mutable runstate : runstate;
  mutable weight : int;
  mutable cap : int; (* max CPU %, 0 = uncapped *)
  mutable window_used : int; (* cycles consumed in the current period *)
  mutable credits : int;
  mutable boosted : bool;
  mutable vruntime : float;
  mutable last_scheduled : int64;
  mutable guest_cycles : int64;
  mutable vmm_cycles : int64;
}

let create ~id ~vm_id ?(weight = 256) ?(hartid = 0) ~entry () =
  let state = Cpu.create_state ~pc:entry ~mode:Velum_isa.Arch.Supervisor () in
  Cpu.set_csr state Velum_isa.Arch.Hartid (Int64.of_int hartid);
  {
    id;
    vm_id;
    state;
    runstate = Runnable;
    weight;
    cap = 0;
    window_used = 0;
    credits = 0;
    boosted = false;
    vruntime = 0.0;
    last_scheduled = 0L;
    guest_cycles = 0L;
    vmm_cycles = 0L;
  }

let is_runnable t = match t.runstate with Runnable | Running -> true | Blocked | Halted -> false

let total_cycles t = Int64.add t.guest_cycles t.vmm_cycles

let block t = if t.runstate <> Halted then t.runstate <- Blocked

let wake t ~boost =
  if t.runstate = Blocked then begin
    t.runstate <- Runnable;
    if boost then t.boosted <- true
  end

let runstate_name = function
  | Runnable -> "runnable"
  | Running -> "running"
  | Blocked -> "blocked"
  | Halted -> "halted"

let pp ppf t =
  Format.fprintf ppf "vcpu%d(vm%d, %s, pc=0x%Lx)" t.id t.vm_id (runstate_name t.runstate)
    t.state.Cpu.pc
