lib/guests/kernel.mli: Velum_isa
