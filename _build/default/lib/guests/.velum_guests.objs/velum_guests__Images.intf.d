lib/guests/images.mli: Asm Kernel Velum_devices Velum_isa Velum_vmm
