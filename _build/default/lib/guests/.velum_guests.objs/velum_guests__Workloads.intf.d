lib/guests/workloads.mli: Asm Velum_isa
