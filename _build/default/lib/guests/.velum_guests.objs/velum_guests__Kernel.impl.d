lib/guests/kernel.ml: Abi Arch Asm Bytes Char Int64 List Printf Velum_devices Velum_isa Velum_machine Velum_vmm
