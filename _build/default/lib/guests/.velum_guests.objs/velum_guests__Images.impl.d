lib/guests/images.ml: Abi Asm Bytes Kernel Velum_devices Velum_isa Velum_vmm
