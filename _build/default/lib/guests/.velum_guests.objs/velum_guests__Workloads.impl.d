lib/guests/workloads.ml: Abi Arch Asm Char Int64 List String Velum_isa
