lib/guests/abi.mli:
