lib/guests/abi.ml: Int64 Velum_isa
