(** Guest software ABI: memory layout and system-call numbers shared by
    the kernel, the user workloads, and the host-side harness.

    Guest-physical layout (all regions identity-mapped once paging is
    on):
    {v
      0x0000_1000  kernel code + data          (supervisor rwx)
      0x0008_0000  kernel stack top            (grows down)
      0x0008_0000  page-table arena (bump)     (supervisor rw)
      0x000F_0000  virtio ring page            (supervisor rw)
      0x0010_0000  user program                (user rwx)
      0x0014_0000  user stack (4 pages)        (user rw)
      0x0015_0000  scratch frame for sys_map   (user rw when mapped)
      0x0020_0000  user heap                   (user rw, cfg pages)
      0x4000_0000  device window               (supervisor rw)
    v} *)

val kernel_base : int64
val kernel_stack_top : int64
val kernel_region_end : int64
(** Identity-mapped supervisor region covers
    [0, kernel_region_end). *)

val pt_arena_base : int64
val ring_page : int64
val user_base : int64
val user_stack_base : int64
val user_stack_pages : int
val scratch_page : int64
val heap_base : int64

(** {1 System calls} — number in r1, args in r2.., result in r1.

    - [sys_map]: r2 = page-aligned va → maps it to the scratch frame
    - [sys_unmap]: r2 = va
    - [sys_blk_read] (emulated block device): r2 = sector, r3 = count,
      r4 = buffer va
    - [sys_vblk_read] (paravirtual block device): same arguments;
      [count] one-sector requests batched as one ring kick
    - [sys_tick_count]: timer interrupts seen so far
    - [sys_getchar]: pop one byte from the console input (0 if empty)
    - [sys_net_send]: r2 = frame buffer va, r3 = length
    - [sys_net_recv]: r2 = buffer va; returns the frame length in r1, or
      -1 when nothing is pending *)

val sys_exit : int64

val sys_putchar : int64
val sys_gettime : int64
val sys_yield : int64
val sys_nop : int64
val sys_map : int64
val sys_unmap : int64
val sys_blk_read : int64
val sys_vblk_read : int64
val sys_tick_count : int64
val sys_getchar : int64
val sys_net_send : int64
val sys_net_recv : int64

val min_frames : user_image_bytes:int -> heap_pages:int -> int
(** Guest frames needed for the layout above. *)
