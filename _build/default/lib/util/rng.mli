(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through this module so that every
    experiment is exactly reproducible from its seed.  The generator is
    splitmix64, which is fast, has a 64-bit state, and passes BigCrush. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val next : t -> int64
(** [next t] draws a uniformly distributed 64-bit value and advances the
    state. *)

val int : t -> int -> int
(** [int t bound] draws a uniform integer in [\[0, bound)].  [bound] must be
    positive.

    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** [float t] draws a uniform float in [\[0, 1)]. *)

val bool : t -> bool
(** [bool t] draws a fair coin flip. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] draws the number of failures before the first success
    in Bernoulli(p) trials.  Used for e.g. randomized page-touch strides.

    @raise Invalid_argument if [p] is outside (0, 1]. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place, uniformly (Fisher-Yates). *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of the
    parent's subsequent draws.  Useful to give each VM its own stream. *)
