let offset_basis = 0xCBF29CE484222325L
let prime = 0x100000001B3L

let step h byte =
  Int64.mul (Int64.logxor h (Int64.of_int (byte land 0xff))) prime

let hash_bytes ?(pos = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - pos in
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Fnv.hash_bytes: range out of bounds";
  let h = ref offset_basis in
  for i = pos to pos + len - 1 do
    h := step !h (Char.code (Bytes.unsafe_get b i))
  done;
  !h

let hash_string s =
  let h = ref offset_basis in
  String.iter (fun c -> h := step !h (Char.code c)) s;
  !h

let combine h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := step !h (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
  done;
  !h
