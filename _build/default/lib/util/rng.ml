type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64 output function: mix the incremented state through two
   xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Drop the sign bit, then reduce in int64 so the value never wraps
     through OCaml's 63-bit native int. *)
  let v = Int64.shift_right_logical (next t) 1 in
  Int64.to_int (Int64.rem v (Int64.of_int bound))

let float t =
  (* 53 high-quality bits into the mantissa. *)
  let bits = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next t) 1L = 1L

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p >= 1.0 then 0
  else
    let u = float t in
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t =
  let s = next t in
  { state = mix s }
