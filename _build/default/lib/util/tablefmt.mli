(** ASCII table rendering for experiment output.

    Every table and figure the bench harness regenerates is printed through
    this module so the output format is uniform and diffable. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?title:string -> (string * align) list -> t
(** [create ?title columns] starts a table with the given column headers
    and alignments. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row.

    @raise Invalid_argument if the arity differs from the header. *)

val add_separator : t -> unit
(** [add_separator t] inserts a horizontal rule between rows. *)

val render : t -> string
(** [render t] lays the table out with padded, aligned columns. *)

val print : t -> unit
(** [print t] renders to stdout followed by a blank line. *)

val cell_f : ?decimals:int -> float -> string
(** [cell_f x] formats a float for a table cell (default 2 decimals). *)

val cell_i : int -> string
(** [cell_i n] formats an integer with thousands separators
    (e.g. ["12_345"] prints as ["12,345"]). *)
