type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Tablefmt.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let cell_rows =
    List.filter_map (function Cells c -> Some c | Separator -> None) rows
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc cells -> max acc (String.length (List.nth cells i)))
          (String.length h) cell_rows)
      t.headers
  in
  let buf = Buffer.create 256 in
  let rule () =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let emit cells =
    List.iteri
      (fun i c ->
        let w = List.nth widths i in
        let a = List.nth t.aligns i in
        Buffer.add_string buf ("| " ^ pad a w c ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | Some title -> Buffer.add_string buf (title ^ "\n")
  | None -> ());
  rule ();
  emit t.headers;
  rule ();
  List.iter (function Cells c -> emit c | Separator -> rule ()) rows;
  rule ();
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_f ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_i n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  let body = Buffer.contents buf in
  if n < 0 then "-" ^ body else body
