lib/util/ring.mli:
