lib/util/rng.mli:
