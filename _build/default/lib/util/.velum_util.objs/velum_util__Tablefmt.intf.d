lib/util/tablefmt.mli:
