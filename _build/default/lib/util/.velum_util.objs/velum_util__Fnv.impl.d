lib/util/fnv.ml: Bytes Char Int64 String
