lib/util/bitops.mli:
