lib/util/fnv.mli: Bytes
