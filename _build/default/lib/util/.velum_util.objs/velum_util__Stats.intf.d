lib/util/stats.mli:
