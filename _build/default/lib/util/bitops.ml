let mask n =
  if n < 0 || n > 64 then invalid_arg "Bitops.mask: width out of range";
  if n = 64 then -1L else Int64.sub (Int64.shift_left 1L n) 1L

let extract v ~lo ~width =
  if lo < 0 || width < 0 || lo + width > 64 then
    invalid_arg "Bitops.extract: field out of range";
  Int64.logand (Int64.shift_right_logical v lo) (mask width)

let insert v ~lo ~width field =
  if lo < 0 || width < 0 || lo + width > 64 then
    invalid_arg "Bitops.insert: field out of range";
  let m = Int64.shift_left (mask width) lo in
  Int64.logor
    (Int64.logand v (Int64.lognot m))
    (Int64.logand (Int64.shift_left field lo) m)

let test_bit v i = Int64.logand (Int64.shift_right_logical v i) 1L = 1L

let set_bit v i b =
  let m = Int64.shift_left 1L i in
  if b then Int64.logor v m else Int64.logand v (Int64.lognot m)

let sign_extend v ~width =
  if width <= 0 || width > 64 then invalid_arg "Bitops.sign_extend: width";
  if width = 64 then v
  else
    let shift = 64 - width in
    Int64.shift_right (Int64.shift_left v shift) shift

let align_down v a = Int64.logand v (Int64.lognot (Int64.of_int (a - 1)))

let align_up v a =
  align_down (Int64.add v (Int64.of_int (a - 1))) a

let is_aligned v a = Int64.logand v (Int64.of_int (a - 1)) = 0L

let popcount v =
  let c = ref 0 in
  for i = 0 to 63 do
    if test_bit v i then incr c
  done;
  !c
