(** Bounded FIFO ring buffer.

    Used for device queues (UART receive buffer, NIC frames in flight) and
    scheduler run queues where a fixed capacity models real hardware
    limits. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] makes an empty ring holding at most [capacity]
    elements.

    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [push t x] appends [x]; returns [false] (dropping [x]) when full. *)

val push_force : 'a t -> 'a -> unit
(** [push_force t x] appends [x], evicting the oldest element if full. *)

val pop : 'a t -> 'a option
(** [pop t] removes and returns the oldest element. *)

val peek : 'a t -> 'a option
(** [peek t] returns the oldest element without removing it. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
(** [iter f t] applies [f] oldest-first without consuming. *)

val to_list : 'a t -> 'a list
(** [to_list t] is the contents oldest-first. *)
