(** FNV-1a hashing over byte buffers.

    Used by the memory manager for content-based page sharing: page frames
    are bucketed by their FNV-1a digest before an exact byte comparison. *)

val offset_basis : int64
(** The standard 64-bit FNV offset basis. *)

val hash_bytes : ?pos:int -> ?len:int -> Bytes.t -> int64
(** [hash_bytes ?pos ?len b] hashes [len] bytes of [b] starting at [pos]
    (defaults: the whole buffer).

    @raise Invalid_argument if the range is out of bounds. *)

val hash_string : string -> int64
(** [hash_string s] hashes all of [s]. *)

val combine : int64 -> int64 -> int64
(** [combine h v] folds the 8 bytes of [v] into running digest [h]. *)
