(** Bit-field extraction and insertion over [int64] machine words. *)

val extract : int64 -> lo:int -> width:int -> int64
(** [extract v ~lo ~width] is bits [lo .. lo+width-1] of [v], right
    aligned.

    @raise Invalid_argument if the field does not fit in 64 bits. *)

val insert : int64 -> lo:int -> width:int -> int64 -> int64
(** [insert v ~lo ~width field] replaces bits [lo .. lo+width-1] of [v]
    with the low [width] bits of [field]. *)

val test_bit : int64 -> int -> bool
(** [test_bit v i] is bit [i] of [v]. *)

val set_bit : int64 -> int -> bool -> int64
(** [set_bit v i b] sets bit [i] of [v] to [b]. *)

val sign_extend : int64 -> width:int -> int64
(** [sign_extend v ~width] treats the low [width] bits of [v] as a signed
    [width]-bit value and widens it to 64 bits. *)

val mask : int -> int64
(** [mask n] is an [int64] with the low [n] bits set ([0 <= n <= 64]). *)

val align_down : int64 -> int -> int64
(** [align_down v a] rounds [v] down to a multiple of [a] ([a] a power of
    two). *)

val align_up : int64 -> int -> int64
(** [align_up v a] rounds [v] up to a multiple of [a] ([a] a power of
    two). *)

val is_aligned : int64 -> int -> bool
(** [is_aligned v a] tests whether [v] is a multiple of power-of-two
    [a]. *)

val popcount : int64 -> int
(** [popcount v] counts set bits. *)
