(** Native one-dimensional MMU: satp-driven page-table walks with TLB
    caching and architectural A/D-bit maintenance.

    The hypervisor builds its own translators (shadow and nested) with the
    same {!Cpu.ctx} signature; this module is the translator a bare-metal
    machine uses, and also the reference model the virtualized translators
    are tested against. *)

open Velum_isa

type t

val create :
  mem:Phys_mem.t -> tlb:Tlb.t -> cost:Cost_model.t -> get_satp:(unit -> int64) -> t
(** [create ~mem ~tlb ~cost ~get_satp] — [get_satp] reads the hart's
    current satp so the translator always follows the live root. *)

val translate :
  t -> access:Arch.access -> user:bool -> int64 -> (Cpu.xlate, Cpu.xlate_fault) result
(** Architectural translation:

    - satp disabled: identity mapping; addresses in the device window are
      MMIO, addresses beyond RAM fault with [`Access].
    - satp enabled: TLB hit (with permissions and, for stores, the dirty
      bit) is free; a miss walks the tables ([pt_ref] cycles per
      reference plus [tlb_fill]), sets the accessed bit (and dirty on
      stores) and installs the entry.  Permission failures and
      not-present entries fault with [`Page]; leaves pointing outside RAM
      and the device window fault with [`Access]. *)

val flush : t -> unit
(** Flush the TLB (satp write / sfence). *)

val walk_count : t -> int
(** Number of table walks performed (TLB misses + dirty upgrades). *)
