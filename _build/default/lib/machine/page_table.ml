open Velum_isa
open Velum_util

type accessor = {
  read_pte : int64 -> Pte.t;
  write_pte : int64 -> Pte.t -> unit;
}

let entries_per_table = 1 lsl Arch.vpn_bits

let vpn va ~level =
  let lo = Arch.page_shift + (level * Arch.vpn_bits) in
  Int64.to_int (Bitops.extract va ~lo ~width:Arch.vpn_bits)

let canonical va =
  Int64.shift_right_logical va Arch.va_bits = 0L

let pte_addr_of ~table_ppn ~index =
  Int64.add (Int64.shift_left table_ppn Arch.page_shift) (Int64.of_int (index * 8))

type walk_ok = {
  pte : Pte.t;
  pte_addr : int64;
  level : int;
  refs : int;
  table_ppns : int64 list;
}

type walk_fault = { fault_level : int; fault_refs : int; bad_pte : bool }

let walk acc ~root_ppn va =
  if not (canonical va) then
    Error { fault_level = Arch.pt_levels - 1; fault_refs = 0; bad_pte = true }
  else
    let rec go level table_ppn refs visited =
      let index = vpn va ~level in
      let addr = pte_addr_of ~table_ppn ~index in
      let pte = acc.read_pte addr in
      let refs = refs + 1 in
      if not (Pte.is_valid pte) then
        Error { fault_level = level; fault_refs = refs; bad_pte = false }
      else if Pte.is_leaf pte then
        if level <= 1 then begin
          (* level 1 = 2 MiB superpage; its base frame must be aligned *)
          if level = 1 && not (Bitops.is_aligned (Pte.ppn pte) (1 lsl Arch.vpn_bits))
          then Error { fault_level = level; fault_refs = refs; bad_pte = true }
          else Ok { pte; pte_addr = addr; level; refs; table_ppns = List.rev visited }
        end
        else (* no 1 GiB pages in VR64 *)
          Error { fault_level = level; fault_refs = refs; bad_pte = true }
      else if level = 0 then
        Error { fault_level = 0; fault_refs = refs; bad_pte = true }
      else go (level - 1) (Pte.ppn pte) refs (Pte.ppn pte :: visited)
    in
    go (Arch.pt_levels - 1) root_ppn 0 [ root_ppn ]

(* Physical address of [va] through a leaf found at [level]. *)
let leaf_pa ~pte ~level ~va =
  let offset_bits = Arch.page_shift + (level * Arch.vpn_bits) in
  Int64.logor
    (Int64.shift_left (Pte.ppn pte) Arch.page_shift)
    (Int64.logand va (Bitops.mask offset_bits))

let check_mappable va =
  if not (canonical va) then invalid_arg "Page_table.map: non-canonical va";
  if not (Bitops.is_aligned va Arch.page_size) then
    invalid_arg "Page_table.map: va not page aligned"

let map ?(level = 0) acc ~alloc ~root_ppn ~va pte =
  check_mappable va;
  if level < 0 || level > 1 then invalid_arg "Page_table.map: bad leaf level";
  let rec go cur table_ppn =
    let index = vpn va ~level:cur in
    let addr = pte_addr_of ~table_ppn ~index in
    if cur = level then acc.write_pte addr pte
    else
      let entry = acc.read_pte addr in
      let next_ppn =
        if Pte.is_valid entry then begin
          if Pte.is_leaf entry then
            invalid_arg "Page_table.map: intermediate entry is a leaf";
          Pte.ppn entry
        end
        else begin
          let ppn = alloc () in
          acc.write_pte addr (Pte.table ~ppn);
          ppn
        end
      in
      go (cur - 1) next_ppn
  in
  go (Arch.pt_levels - 1) root_ppn

let find_leaf_addr acc ~root_ppn ~va =
  match walk acc ~root_ppn va with
  | Ok { pte_addr; pte; _ } -> Some (pte_addr, pte)
  | Error _ -> None

let unmap acc ~root_ppn ~va =
  match find_leaf_addr acc ~root_ppn ~va with
  | Some (addr, _) ->
      acc.write_pte addr Pte.invalid;
      true
  | None -> false

let update_leaf acc ~root_ppn ~va ~f =
  match find_leaf_addr acc ~root_ppn ~va with
  | Some (addr, pte) ->
      acc.write_pte addr (f pte);
      true
  | None -> false

let iter_leaves acc ~root_ppn ~f =
  let rec go level table_ppn va_base =
    for index = 0 to entries_per_table - 1 do
      let addr = pte_addr_of ~table_ppn ~index in
      let pte = acc.read_pte addr in
      if Pte.is_valid pte then begin
        let step = Int64.shift_left 1L (Arch.page_shift + (level * Arch.vpn_bits)) in
        let va = Int64.add va_base (Int64.mul (Int64.of_int index) step) in
        if Pte.is_leaf pte then f ~va ~pte_addr:addr pte
        else if level > 0 then go (level - 1) (Pte.ppn pte) va
      end
    done
  in
  go (Arch.pt_levels - 1) root_ppn 0L

let count_table_pages acc ~root_ppn =
  let count = ref 1 in
  let rec go level table_ppn =
    if level > 0 then
      for index = 0 to entries_per_table - 1 do
        let pte = acc.read_pte (pte_addr_of ~table_ppn ~index) in
        if Pte.is_valid pte && not (Pte.is_leaf pte) then begin
          incr count;
          go (level - 1) (Pte.ppn pte)
        end
      done
  in
  go (Arch.pt_levels - 1) root_ppn;
  !count
