type t = {
  base_instr : int;
  mul : int;
  div : int;
  mem_access : int;
  pt_ref : int;
  tlb_fill : int;
  trap_enter : int;
  vmexit : int;
  emul_instr : int;
  hypercall : int;
  mmio_device : int;
  port_io : int;
  irq_inject : int;
  ctx_switch : int;
  bt_translate : int;
  bt_exec : int;
}

let default =
  {
    base_instr = 1;
    mul = 3;
    div = 12;
    mem_access = 2;
    pt_ref = 20;
    tlb_fill = 4;
    trap_enter = 60;
    vmexit = 800;
    emul_instr = 40;
    hypercall = 160;
    mmio_device = 120;
    port_io = 80;
    irq_inject = 50;
    ctx_switch = 200;
    bt_translate = 300;
    bt_exec = 40;
  }

let walk_refs_1d = Velum_isa.Arch.pt_levels

let walk_refs_2d =
  let n = Velum_isa.Arch.pt_levels in
  ((n + 1) * n) + n

let walk_cycles_1d t = walk_refs_1d * t.pt_ref
let walk_cycles_2d t = walk_refs_2d * t.pt_ref
