(** Cycle cost model for the simulated machine.

    All performance results in the benchmark suite are reported in
    simulated cycles charged through this table.  The defaults are chosen
    to match the {e relative} magnitudes reported for hardware
    virtualization (a VM exit round trip is ~an order of magnitude more
    expensive than a native trap; a two-dimensional nested page walk costs
    [(n+1)*m + n] memory references against [n] for a one-dimensional
    walk), not any absolute machine. *)

type t = {
  base_instr : int;  (** every retired instruction *)
  mul : int;  (** extra cycles for multiply *)
  div : int;  (** extra cycles for divide/remainder *)
  mem_access : int;  (** extra cycles for a data RAM access (cache hit) *)
  pt_ref : int;  (** one page-table memory reference during a walk *)
  tlb_fill : int;  (** installing a TLB entry after a walk *)
  trap_enter : int;  (** native trap entry + sret round trip *)
  vmexit : int;  (** guest→VMM world switch + resume *)
  emul_instr : int;  (** VMM software work to emulate one instruction *)
  hypercall : int;  (** paravirtual call round trip (cheaper than exit) *)
  mmio_device : int;  (** device-model work per emulated MMIO access *)
  port_io : int;  (** port I/O device work *)
  irq_inject : int;  (** injecting a virtual interrupt *)
  ctx_switch : int;  (** scheduler vCPU context switch *)
  bt_translate : int;
      (** binary translation: first encounter of a sensitive instruction
          — decode, emit the translated sequence, install it in the
          translation cache *)
  bt_exec : int;
      (** binary translation: executing an already-translated sensitive
          instruction inline (no world switch) *)
}

val default : t

val walk_refs_1d : int
(** Memory references for a one-dimensional (native or shadow) walk:
    [Arch.pt_levels]. *)

val walk_refs_2d : int
(** Memory references for a two-dimensional (nested) walk:
    [(levels + 1) * levels + levels] = 15 for three levels. *)

val walk_cycles_1d : t -> int
val walk_cycles_2d : t -> int
