(** Radix page-table walking and construction.

    Works over an abstract physical-memory accessor so the same code walks
    native tables, guest tables viewed through a physical-to-machine map,
    and hypervisor shadow tables.  Tables are three levels of 512 8-byte
    PTEs; leaves live at level 0 (4 KiB pages) or level 1 (2 MiB
    superpages, whose base frame must be 512-aligned). *)

open Velum_isa

type accessor = {
  read_pte : int64 -> Pte.t;  (** read a PTE at a physical address *)
  write_pte : int64 -> Pte.t -> unit;
}

val vpn : int64 -> level:int -> int
(** [vpn va ~level] is the 9-bit table index used at [level]
    (level 2 = root for a three-level walk). *)

val canonical : int64 -> bool
(** [canonical va] — the address fits in {!Arch.va_bits} bits (high bits
    all zero; VR64 uses a positive-half-only canonical form). *)

type walk_ok = {
  pte : Pte.t;  (** the leaf entry *)
  pte_addr : int64;  (** physical address of the leaf entry *)
  level : int;  (** 0 for a 4 KiB page, 1 for a 2 MiB superpage *)
  refs : int;  (** page-table memory references performed *)
  table_ppns : int64 list;  (** PPNs of the table pages visited, root
                                first — the shadow pager uses these to
                                write-protect guest page-table frames *)
}

type walk_fault = {
  fault_level : int;  (** level at which the walk stopped *)
  fault_refs : int;  (** references performed before stopping *)
  bad_pte : bool;  (** true when the entry was malformed (e.g. a leaf at
                       a non-zero level) rather than merely not present *)
}

val walk : accessor -> root_ppn:int64 -> int64 -> (walk_ok, walk_fault) result
(** [walk acc ~root_ppn va] walks to the leaf for [va].  Does not touch
    A/D bits (callers decide).  Non-canonical addresses fault at the root
    level with [bad_pte = true]. *)

val leaf_pa : pte:Pte.t -> level:int -> va:int64 -> int64
(** [leaf_pa ~pte ~level ~va] composes the physical address of [va]
    through a leaf found at [level]. *)

val map :
  ?level:int ->
  accessor ->
  alloc:(unit -> int64) ->
  root_ppn:int64 ->
  va:int64 ->
  Pte.t ->
  unit
(** [map acc ~alloc ~root_ppn ~va pte] installs leaf [pte] for [va] at
    [level] (default 0; 1 installs a 2 MiB superpage), allocating
    intermediate table pages with [alloc] (which must return the PPN of
    a zeroed frame).  Overwrites any existing leaf.

    @raise Invalid_argument if [va] is not canonical or page aligned, or
    an intermediate entry is a malformed leaf. *)

val unmap : accessor -> root_ppn:int64 -> va:int64 -> bool
(** [unmap acc ~root_ppn ~va] clears the leaf; returns false if nothing
    was mapped.  Intermediate tables are not reclaimed. *)

val update_leaf :
  accessor -> root_ppn:int64 -> va:int64 -> f:(Pte.t -> Pte.t) -> bool
(** [update_leaf acc ~root_ppn ~va ~f] rewrites an existing leaf in
    place; false if the walk faults. *)

val iter_leaves :
  accessor -> root_ppn:int64 -> f:(va:int64 -> pte_addr:int64 -> Pte.t -> unit) -> unit
(** [iter_leaves acc ~root_ppn ~f] visits every valid leaf in the tree. *)

val count_table_pages : accessor -> root_ppn:int64 -> int
(** [count_table_pages acc ~root_ppn] counts table pages (including the
    root) reachable from the root — the memory footprint of the tree. *)
