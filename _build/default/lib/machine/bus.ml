open Velum_isa

let mmio_base = 0x4000_0000L
let mmio_limit = 0x5000_0000L

let is_mmio pa = pa >= mmio_base && pa < mmio_limit

type device = {
  name : string;
  base : int64;
  size : int;
  read : int64 -> Instr.width -> int64;
  write : int64 -> Instr.width -> int64 -> unit;
  tick : int64 -> unit;
  pending_irq : unit -> bool;
}

type t = { mutable devs : device list }

let create () = { devs = [] }

let dev_end d = Int64.add d.base (Int64.of_int d.size)

let overlaps a b = a.base < dev_end b && b.base < dev_end a

let attach t d =
  if not (is_mmio d.base) || dev_end d > mmio_limit then
    invalid_arg (Printf.sprintf "Bus.attach: %s outside the MMIO window" d.name);
  List.iter
    (fun existing ->
      if overlaps existing d then
        invalid_arg
          (Printf.sprintf "Bus.attach: %s overlaps %s" d.name existing.name))
    t.devs;
  t.devs <- d :: t.devs

let devices t = List.rev t.devs

let find t pa =
  List.find_map
    (fun d -> if pa >= d.base && pa < dev_end d then Some (d, Int64.sub pa d.base) else None)
    t.devs

let read t pa w =
  match find t pa with Some (d, off) -> Some (d.read off w) | None -> None

let write t pa w v =
  match find t pa with
  | Some (d, off) ->
      d.write off w v;
      true
  | None -> false

let tick t now = List.iter (fun d -> d.tick now) t.devs
let pending_irq t = List.exists (fun d -> d.pending_irq ()) t.devs
