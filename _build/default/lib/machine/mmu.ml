open Velum_isa

type t = {
  mem : Phys_mem.t;
  tlb : Tlb.t;
  cost : Cost_model.t;
  get_satp : unit -> int64;
  mutable walks : int;
}

let create ~mem ~tlb ~cost ~get_satp = { mem; tlb; cost; get_satp; walks = 0 }

let accessor mem =
  {
    Page_table.read_pte =
      (fun pa ->
        if Phys_mem.in_range mem ~pa ~bytes:8 then Phys_mem.read mem pa Instr.W64
        else Pte.invalid);
    write_pte =
      (fun pa v ->
        if Phys_mem.in_range mem ~pa ~bytes:8 then Phys_mem.write mem pa Instr.W64 v);
  }

let classify_pa mem pa ~bytes =
  if Bus.is_mmio pa then `Mmio
  else if Phys_mem.in_range mem ~pa ~bytes then `Ram
  else `Bad

let page_off va = Int64.logand va (Int64.of_int (Arch.page_size - 1))

let translate t ~access ~user va =
  let satp = t.get_satp () in
  if not (Arch.satp_enabled satp) then
    match classify_pa t.mem va ~bytes:1 with
    | `Ram -> Ok { Cpu.pa = va; mmio = false; xlate_cycles = 0 }
    | `Mmio -> Ok { Cpu.pa = va; mmio = true; xlate_cycles = 0 }
    | `Bad -> Error `Access
  else
    let vpn = Int64.shift_right_logical va Arch.page_shift in
    let perms_allow (p : Pte.perms) =
      (if user then p.u else true)
      &&
      match access with
      | Arch.Fetch -> p.x
      | Arch.Load -> p.r
      | Arch.Store -> p.w
    in
    let tlb_pa (e : Tlb.entry) =
      if e.superpage then
        Int64.logor
          (Int64.shift_left e.ppn Arch.page_shift)
          (Int64.logand va (Velum_util.Bitops.mask (Arch.page_shift + Arch.vpn_bits)))
      else Int64.logor (Int64.shift_left e.ppn Arch.page_shift) (page_off va)
    in
    let hit =
      match Tlb.lookup t.tlb ~vpn with
      | Some e when perms_allow e.perms ->
          (* stores need the dirty bit already hardened *)
          if access = Arch.Store && not e.dirty_ok then None else Some e
      | _ -> None
    in
    match hit with
    | Some e -> (
        Tlb.note_hit t.tlb;
        let pa = tlb_pa e in
        (* bounds are checked per access: a superpage entry may cover
           addresses beyond the end of RAM *)
        match classify_pa t.mem pa ~bytes:1 with
        | `Bad -> Error `Access
        | `Ram | `Mmio -> Ok { Cpu.pa; mmio = e.mmio; xlate_cycles = 0 })
    | None -> (
        Tlb.note_miss t.tlb;
        t.walks <- t.walks + 1;
        let acc = accessor t.mem in
        match Page_table.walk acc ~root_ppn:(Arch.satp_root_ppn satp) va with
        | Error _ -> Error `Page
        | Ok { pte; pte_addr; level; refs; _ } ->
            if not (Pte.allows pte access ~user) then Error `Page
            else begin
              let pte' = Pte.set_accessed pte in
              let pte' = if access = Arch.Store then Pte.set_dirty pte' else pte' in
              if pte' <> pte then acc.write_pte pte_addr pte';
              let ppn = Pte.ppn pte in
              let pa = Page_table.leaf_pa ~pte ~level ~va in
              (* classify the page actually touched, not the whole
                 (possibly partially-backed) superpage region *)
              let target = classify_pa t.mem pa ~bytes:1 in
              match target with
              | `Bad -> Error `Access
              | (`Ram | `Mmio) as k ->
                  let mmio = k = `Mmio in
                  Tlb.insert t.tlb
                    {
                      Tlb.vpn;
                      ppn;
                      perms = Pte.perms pte;
                      dirty_ok = Pte.dirty pte';
                      mmio;
                      superpage = level = 1;
                    };
                  let cycles = (refs * t.cost.Cost_model.pt_ref) + t.cost.Cost_model.tlb_fill in
                  Ok { Cpu.pa; mmio; xlate_cycles = cycles }
            end)

let flush t = Tlb.flush t.tlb
let walk_count t = t.walks
