(** MMIO bus: dispatches physical accesses in the device window to device
    models, and collects their interrupt lines.

    By convention (shared by native machines and virtual machines) the
    device window is physical [0x4000_0000, 0x5000_0000); RAM starts at
    zero and must not reach the window. *)

open Velum_isa

val mmio_base : int64
val mmio_limit : int64

val is_mmio : int64 -> bool
(** [is_mmio pa] — the address falls in the device window (regardless of
    whether a device is mapped there). *)

type device = {
  name : string;
  base : int64;  (** absolute physical base inside the window *)
  size : int;
  read : int64 -> Instr.width -> int64;  (** offset-relative *)
  write : int64 -> Instr.width -> int64 -> unit;
  tick : int64 -> unit;  (** advance device time to the given cycle *)
  pending_irq : unit -> bool;
}

type t

val create : unit -> t

val attach : t -> device -> unit
(** @raise Invalid_argument if the range is outside the window or
    overlaps an attached device. *)

val devices : t -> device list

val find : t -> int64 -> (device * int64) option
(** [find t pa] is the device covering [pa] plus the offset within it. *)

val read : t -> int64 -> Instr.width -> int64 option
(** [read t pa w] dispatches; [None] if no device claims the address
    (reads as a bus error to the CPU). *)

val write : t -> int64 -> Instr.width -> int64 -> bool
val tick : t -> int64 -> unit
val pending_irq : t -> bool
