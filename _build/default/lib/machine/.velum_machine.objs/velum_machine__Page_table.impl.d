lib/machine/page_table.ml: Arch Bitops Int64 List Pte Velum_isa Velum_util
