lib/machine/mmu.ml: Arch Bus Cost_model Cpu Instr Int64 Page_table Phys_mem Pte Tlb Velum_isa Velum_util
