lib/machine/page_table.mli: Pte Velum_isa
