lib/machine/cost_model.ml: Velum_isa
