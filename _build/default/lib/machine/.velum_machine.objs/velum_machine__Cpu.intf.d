lib/machine/cpu.mli: Arch Cost_model Format Instr Velum_isa
