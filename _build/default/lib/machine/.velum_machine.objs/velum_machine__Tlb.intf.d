lib/machine/tlb.mli: Pte Velum_isa
