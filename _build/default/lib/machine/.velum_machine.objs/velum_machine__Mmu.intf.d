lib/machine/mmu.mli: Arch Cost_model Cpu Phys_mem Tlb Velum_isa
