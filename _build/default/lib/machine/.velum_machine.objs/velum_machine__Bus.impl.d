lib/machine/bus.ml: Instr Int64 List Printf Velum_isa
