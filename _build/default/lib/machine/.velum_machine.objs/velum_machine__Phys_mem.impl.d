lib/machine/phys_mem.ml: Arch Bytes Char Instr Int64 Printf Velum_isa Velum_util
