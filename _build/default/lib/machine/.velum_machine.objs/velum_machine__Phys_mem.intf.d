lib/machine/phys_mem.mli: Bytes Velum_isa
