lib/machine/tlb.ml: Arch Array Hashtbl Int64 List Pte Velum_isa
