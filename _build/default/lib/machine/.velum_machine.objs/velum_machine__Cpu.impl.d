lib/machine/cpu.ml: Arch Array Bitops Cost_model Format Instr Int64 List Velum_isa Velum_util
