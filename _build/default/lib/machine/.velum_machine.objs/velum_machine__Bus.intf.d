lib/machine/bus.mli: Instr Velum_isa
