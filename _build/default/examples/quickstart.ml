(* Quickstart: boot one guest three ways — bare metal, trap-and-emulate
   with shadow paging, and with nested paging — and compare what the
   hypervisor had to do.

     dune exec examples/quickstart.exe *)

open Velum_devices
open Velum_vmm
open Velum_guests

let () =
  (* A guest = a kernel configuration + a user workload, assembled to a
     bootable image pair. *)
  let setup = Images.plan ~user:(Workloads.hello ()) () in

  (* 1. Bare metal: the baseline every experiment compares against. *)
  let platform = Platform.create ~frames:(setup.Images.frames + 16) () in
  Images.load_native platform setup;
  (match Platform.run platform with
  | Platform.Halted -> ()
  | _ -> failwith "native boot failed");
  Printf.printf "--- native ---\n%s" (Platform.console_output platform);
  Printf.printf "cycles: %Ld, instructions: %Ld\n\n" (Platform.cycles platform)
    (Platform.instructions_retired platform);

  (* 2 & 3. The same image under the hypervisor, in each paging mode. *)
  let boot paging label =
    let host = Host.create ~frames:(setup.Images.frames + 512) () in
    let hyp = Hypervisor.create ~host () in
    let vm =
      Hypervisor.create_vm hyp ~name:"demo" ~mem_frames:setup.Images.frames ~paging
        ~entry:Images.entry ()
    in
    Images.load_vm vm setup;
    (match Hypervisor.run hyp with
    | Hypervisor.All_halted -> ()
    | _ -> failwith "guest did not halt");
    Printf.printf "--- %s ---\n%s" label (Vm.console_output vm);
    Printf.printf "guest cycles: %Ld, vmm cycles: %Ld, exits: %d\n"
      (Vm.guest_cycles vm) (Vm.vmm_cycles vm)
      (Monitor.total_exits vm.Vm.monitor);
    Format.printf "%a@." Monitor.pp vm.Vm.monitor;
    print_newline ()
  in
  boot Vm.Shadow_paging "virtualized, shadow paging";
  boot Vm.Nested_paging "virtualized, nested paging";

  Printf.printf
    "The console output is identical in all three runs; only the cost of\n\
     getting there differs — that difference is what the bench suite measures.\n"
