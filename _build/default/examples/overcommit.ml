(* Memory overcommit: reclaim a quarter of a guest's memory while it
   runs, first with the balloon driver (the guest gives up pages it is
   not using), then with hypervisor swapping (the host picks victims
   blindly).  Same pages reclaimed — very different guest performance.

     dune exec examples/overcommit.exe *)

open Velum_vmm
open Velum_guests

let heap = 128
let wss = 48
let reclaim_pages = 64

let run_case label reclaim =
  let setup =
    Images.plan ~heap_pages:heap ~user:(Workloads.memwalk ~pages:wss ~iters:20000 ~write:true) ()
  in
  let host = Host.create ~frames:(setup.Images.frames + 1024) () in
  let hyp = Hypervisor.create ~host () in
  let vm =
    Hypervisor.create_vm hyp ~name:"victim" ~mem_frames:setup.Images.frames
      ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  ignore (Hypervisor.run hyp ~budget:2_000_000L);
  let reclaimed = reclaim vm in
  let t0 = Int64.add (Vm.guest_cycles vm) (Vm.vmm_cycles vm) in
  (match Hypervisor.run hyp with
  | Hypervisor.All_halted -> ()
  | _ -> failwith "guest did not finish");
  let t1 = Int64.add (Vm.guest_cycles vm) (Vm.vmm_cycles vm) in
  let runtime = Int64.to_float (Int64.sub t1 t0) in
  Printf.printf "%-34s reclaimed %3d pages, runtime %10.0f cycles, %4d swap-ins\n"
    label reclaimed runtime
    (Monitor.count vm.Vm.monitor Monitor.E_swap_in);
  runtime

let () =
  Printf.printf "guest: %d-page heap, %d-page working set; reclaiming %d pages\n\n"
    heap wss reclaim_pages;
  let base = run_case "no reclaim (baseline)" (fun _ -> 0) in
  let balloon =
    run_case "balloon (guest picks free pages)" (fun vm ->
        (* the guest's balloon driver surrenders the heap tail it never
           touches — here driven host-side for brevity; guests do the
           same thing with the balloon hypercalls *)
        let heap_gfn = Int64.to_int (Int64.shift_right_logical Abi.heap_base 12) in
        let n = ref 0 in
        for p = heap - reclaim_pages to heap - 1 do
          if Vm.balloon_out vm (Int64.of_int (heap_gfn + p)) then incr n
        done;
        !n)
  in
  let swap =
    run_case "hypervisor swap (blind victims)" (fun vm ->
        Mem_mgr.evict vm ~n:reclaim_pages)
  in
  Printf.printf "\nslowdown vs baseline: balloon %.2fx, hypervisor swap %.2fx\n"
    (balloon /. base) (swap /. base);
  Printf.printf
    "The balloon is nearly free because only the guest knows which pages are\n\
     cold; the hypervisor's blind eviction drags hot pages through swap.\n"
