(* Inter-VM networking: two guests on one hypervisor, each with a
   paravirtual NIC plugged into opposite ends of a simulated link.  The
   "ping" guest transmits a message, the "echo" guest bounces it back,
   and the reply lands on the ping guest's console — every hop crossing
   the guest/VMM boundary through MMIO exits and guest-physical DMA.

     dune exec examples/network.exe *)

open Velum_devices
open Velum_vmm
open Velum_guests

let () =
  let message = "ping across the hypervisor" in
  let ping_setup = Images.plan ~heap_pages:2 ~user:(Workloads.net_ping ~message) () in
  let echo_setup = Images.plan ~heap_pages:2 ~user:(Workloads.net_echo ~frames:1) () in
  let host =
    Host.create ~frames:(ping_setup.Images.frames + echo_setup.Images.frames + 1024) ()
  in
  let hyp = Hypervisor.create ~host () in
  (* 1 byte/cycle with 500 cycles of propagation delay *)
  let link = Link.create ~bytes_per_cycle:1.0 ~latency_cycles:500 () in
  let ping_vm =
    Hypervisor.create_vm hyp ~name:"ping" ~mem_frames:ping_setup.Images.frames
      ~nic:(link, `A) ~entry:Images.entry ()
  in
  let echo_vm =
    Hypervisor.create_vm hyp ~name:"echo" ~mem_frames:echo_setup.Images.frames
      ~nic:(link, `B) ~entry:Images.entry ()
  in
  Images.load_vm ping_vm ping_setup;
  Images.load_vm echo_vm echo_setup;
  (match Hypervisor.run hyp with
  | Hypervisor.All_halted -> ()
  | _ -> failwith "guests did not finish");
  Printf.printf "ping guest console: %S\n" (Vm.console_output ping_vm);
  let stats vm =
    match vm.Vm.nic with
    | Some n -> (Nic.frames_sent n, Nic.frames_received n)
    | None -> (0, 0)
  in
  let ps, pr = stats ping_vm and es, er = stats echo_vm in
  Printf.printf "ping nic: %d tx / %d rx;  echo nic: %d tx / %d rx\n" ps pr es er;
  Printf.printf "link carried %d bytes; ping guest paid %d MMIO exits\n"
    (Link.bytes_sent link)
    (Monitor.count ping_vm.Vm.monitor Monitor.E_mmio);
  assert (Vm.console_output ping_vm = message)
