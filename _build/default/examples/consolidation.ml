(* Server consolidation: run a small "datacenter" of heterogeneous
   guests on one hypervisor under the credit scheduler, dedupe their
   memory, and plan the full 50-VM fleet with FFD packing — the workflow
   the source presentation describes (20 hosts for 50 production VMs).

     dune exec examples/consolidation.exe *)

open Velum_util
open Velum_vmm
open Velum_guests

let () =
  Printf.printf "== Part 1: five guests sharing one host ==\n\n";
  let host = Host.create ~frames:8192 () in
  let hyp = Hypervisor.create ~host () in

  (* A mix of roles: compute-heavy "app servers" with different weights
     and an I/O-ish guest doing syscalls. *)
  let guests =
    [
      ("erp-app", Workloads.cpu_spin ~iters:2_000_000L, 512);
      ("mssql", Workloads.cpu_spin ~iters:2_000_000L, 1024);
      ("terminal", Workloads.syscall_loop ~count:2_000L, 256);
      ("web-1", Workloads.cpu_spin ~iters:2_000_000L, 256);
      ("web-2", Workloads.cpu_spin ~iters:2_000_000L, 256);
    ]
  in
  let vms =
    List.map
      (fun (name, user, weight) ->
        let setup = Images.plan ~user () in
        let vm =
          Hypervisor.create_vm hyp ~name ~mem_frames:setup.Images.frames ~weight
            ~entry:Images.entry ()
        in
        Images.load_vm vm setup;
        vm)
      guests
  in
  let used_before = Frame_alloc.used_count host.Host.alloc in
  ignore (Hypervisor.run hyp ~budget:20_000_000L);
  let stats = Mem_mgr.share_pass vms in
  let used_after = Frame_alloc.used_count host.Host.alloc in

  let t =
    Tablefmt.create
      [ ("vm", Tablefmt.Left); ("weight", Tablefmt.Right);
        ("guest Mcyc", Tablefmt.Right); ("exits", Tablefmt.Right) ]
  in
  List.iter
    (fun vm ->
      let w = vm.Vm.vcpus.(0).Vcpu.weight in
      Tablefmt.add_row t
        [ vm.Vm.name; string_of_int w;
          Tablefmt.cell_f ~decimals:2 (Int64.to_float (Vm.guest_cycles vm) /. 1e6);
          Tablefmt.cell_i (Monitor.total_exits vm.Vm.monitor) ])
    vms;
  Tablefmt.print t;
  Printf.printf "page sharing: %d frames scanned, %d merged, %d freed (%d -> %d used)\n\n"
    stats.Mem_mgr.scanned stats.Mem_mgr.shared stats.Mem_mgr.freed used_before used_after;

  Printf.printf "== Part 2: planning the 50-VM fleet ==\n\n";
  let mk name n cpu mem =
    List.init n (fun i ->
        { Placement.vm_name = Printf.sprintf "%s-%d" name i; cpu_units = cpu; mem_mb = mem })
  in
  let fleet =
    List.concat
      [
        mk "ad-dc" 4 50 2048; mk "terminal" 8 200 4096; mk "erp-app" 6 150 4096;
        mk "mssql" 6 250 8192; mk "mail" 2 200 8192; mk "web" 8 100 2048;
        mk "antivirus" 2 100 2048; mk "devtest" 10 100 2048; mk "legacy-dos" 4 25 512;
      ]
  in
  let spec = Placement.default_host in
  let plan = Placement.first_fit_decreasing spec fleet in
  let report = Placement.cost_savings spec fleet plan () in
  Printf.printf "%d VMs -> %d hosts (%.1f VMs/host, cpu %.0f%%, mem %.0f%% utilized)\n"
    (List.length fleet) plan.Placement.hosts_used
    (Placement.consolidation_ratio plan)
    (100.0 *. plan.Placement.cpu_utilization)
    (100.0 *. plan.Placement.mem_utilization);
  Printf.printf "power: %.0f W -> %.0f W (cooling included)\n"
    report.Placement.watts_before report.Placement.watts_after;
  Printf.printf "savings: %.0f EUR/year total, %.0f EUR/year per displaced server\n"
    report.Placement.annual_euro_saved report.Placement.euro_saved_per_displaced_server
