examples/network.mli:
