examples/live_migration.ml: Host Hypervisor Images Int64 Link List Migrate Printf Tablefmt Velum_devices Velum_guests Velum_util Velum_vmm Vm Workloads
