examples/overcommit.mli:
