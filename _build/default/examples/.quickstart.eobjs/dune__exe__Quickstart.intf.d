examples/quickstart.mli:
