examples/consolidation.ml: Array Frame_alloc Host Hypervisor Images Int64 List Mem_mgr Monitor Placement Printf Tablefmt Vcpu Velum_guests Velum_util Velum_vmm Vm Workloads
