examples/network.ml: Host Hypervisor Images Link Monitor Nic Printf Velum_devices Velum_guests Velum_vmm Vm Workloads
