examples/quickstart.ml: Format Host Hypervisor Images Monitor Platform Printf Velum_devices Velum_guests Velum_vmm Vm Workloads
