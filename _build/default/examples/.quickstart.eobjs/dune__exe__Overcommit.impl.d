examples/overcommit.ml: Abi Host Hypervisor Images Int64 Mem_mgr Monitor Printf Velum_guests Velum_vmm Vm Workloads
