examples/consolidation.mli:
