(* Live migration walkthrough: boot a write-heavy guest on host A, then
   move it to host B three ways and compare total time, downtime, and
   pages on the wire.  The guest keeps running on the destination
   afterwards — its console keeps growing.

     dune exec examples/live_migration.exe *)

open Velum_util
open Velum_devices
open Velum_vmm
open Velum_guests

let migrate strategy =
  let setup =
    Images.plan ~heap_pages:96 ~user:(Workloads.dirty_loop ~pages:64 ~delay:4000) ()
  in
  let src = Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 1024) ()) () in
  let dst = Hypervisor.create ~host:(Host.create ~frames:(setup.Images.frames + 1024) ()) () in
  let vm =
    Hypervisor.create_vm src ~name:"worker" ~mem_frames:setup.Images.frames
      ~entry:Images.entry ()
  in
  Images.load_vm vm setup;
  (* boot and let it dirty pages for a while *)
  ignore (Hypervisor.run src ~budget:4_000_000L);
  (* a 10 Gb/s-ish link with 2k cycles of latency *)
  let link = Link.create () in
  let twin, r =
    match strategy with
    | `Stop -> Migrate.stop_and_copy ~src ~dst ~vm ~link ()
    | `Pre -> Migrate.precopy ~src ~dst ~vm ~link ~max_rounds:10 ~stop_threshold:8 ()
    | `Post -> Migrate.postcopy ~src ~dst ~vm ~link ()
  in
  (* prove the twin is alive on the destination *)
  let before = Vm.guest_cycles twin in
  ignore (Hypervisor.run dst ~budget:2_000_000L);
  assert (Vm.guest_cycles twin > before);
  r

let () =
  let t =
    Tablefmt.create
      [ ("strategy", Tablefmt.Left); ("total kcyc", Tablefmt.Right);
        ("downtime kcyc", Tablefmt.Right); ("pages", Tablefmt.Right);
        ("rounds", Tablefmt.Right); ("demand faults", Tablefmt.Right) ]
  in
  List.iter
    (fun (name, strat) ->
      let r = migrate strat in
      Tablefmt.add_row t
        [ name;
          Tablefmt.cell_f ~decimals:1 (Int64.to_float r.Migrate.total_cycles /. 1e3);
          Tablefmt.cell_f ~decimals:1 (Int64.to_float r.Migrate.downtime_cycles /. 1e3);
          Tablefmt.cell_i r.Migrate.pages_sent; string_of_int r.Migrate.rounds;
          Tablefmt.cell_i r.Migrate.remote_faults ])
    [ ("stop-and-copy", `Stop); ("pre-copy", `Pre); ("post-copy", `Post) ];
  Tablefmt.print t;
  Printf.printf
    "Pre-copy trades extra pages (re-sends) for two orders of magnitude less\n\
     downtime; post-copy makes downtime constant but pays demand faults on the\n\
     destination until the working set arrives.\n"
