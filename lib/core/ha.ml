open Velum_machine
open Velum_devices

module Fault = Velum_util.Fault

let log_src = Logs.Src.create "velum.ha" ~doc:"HA supervision and failover"

module Log = (val Logs.src_log log_src)

(* ---- per-VM supervisor ---- *)

type t = {
  hyp : Hypervisor.t;
  store : Store.t;
  churn : Churn.t; (* dirty-frame tracker on the host's physical memory *)
  checkpoint_every : int64;
  max_restarts : int;
  restart_window : int64;
  backoff_base : int64;
  mutable vm : Vm.t;
  mutable pending : int64 option; (* restore due at this host cycle *)
  mutable stalled_at : int64;
  mutable window_start : int64;
  mutable window_restarts : int;
  mutable restarts : int;
  mutable degraded : bool;
  mutable checkpoints : int;
  mutable torn_checkpoints : int;
  mutable checkpoint_cycles : int64;
  mutable mttr_total : int64;
  mutable mttr_events : int;
  mutable last_ckpt_instret : int64;
  mutable ckpt_bytes : int;
  mutable frames_churned : int;
}

type stats = {
  checkpoints : int;
  torn_checkpoints : int;
  checkpoint_cycles : int64;
  restarts : int;
  degraded : bool;
  mttr_total : int64;
  mttr_events : int;
  ckpt_bytes : int;
  ckpt_logical_bytes : int;
  frames_churned : int;
}

let vm_instret (vm : Vm.t) =
  Array.fold_left
    (fun acc (v : Vcpu.t) -> Int64.add acc v.Vcpu.state.Cpu.instret)
    0L vm.Vm.vcpus

let trace_ha (hyp : Hypervisor.t) (vm : Vm.t) what ~detail =
  match Hypervisor.trace hyp with
  | Some tr ->
      Trace.record tr ~vm_id:vm.Vm.id ~name:vm.Vm.name ~at:(Hypervisor.now hyp)
        (Trace.Ha_event { what; detail })
  | None -> ()

(* Only a VM that can still make progress is worth persisting: an
   all-blocked image IS the wedge, and committing it would make every
   restore land right back in it.  "Last good checkpoint" = the newest
   runnable, progressing state. *)
let checkpointable (vm : Vm.t) =
  Array.exists
    (fun (v : Vcpu.t) ->
      match v.Vcpu.runstate with
      | Vcpu.Runnable | Vcpu.Running -> true
      | Vcpu.Blocked | Vcpu.Halted -> false)
    vm.Vm.vcpus

(* Crash-loop exhaustion: stop restarting, halt the vCPUs but keep the
   VM registered so its wedged state can be examined post-mortem. *)
let degrade (t : t) =
  t.degraded <- true;
  t.pending <- None;
  Log.warn (fun m -> m "ha: degrading %s to halted" t.vm.Vm.name);
  Monitor.bump t.vm.Vm.monitor Monitor.E_ha_degraded;
  trace_ha t.hyp t.vm Trace.Ha_degraded ~detail:0L;
  Array.iter
    (fun (v : Vcpu.t) ->
      v.Vcpu.runstate <- Vcpu.Halted;
      (Hypervisor.sched t.hyp).Scheduler.remove v)
    t.vm.Vm.vcpus

(* The watchdog (or the idle-deadlock path) says the supervised VM is
   wedged.  Inside the crash-loop budget: destroy it and schedule a
   restore after exponential backoff.  Past the budget: degrade. *)
let handle_stall (t : t) =
  if (not t.degraded) && t.pending = None then begin
    let now = Hypervisor.now t.hyp in
    if Int64.unsigned_compare (Int64.sub now t.window_start) t.restart_window > 0
    then begin
      t.window_start <- now;
      t.window_restarts <- 0
    end;
    if t.window_restarts >= t.max_restarts then degrade t
    else begin
      t.window_restarts <- t.window_restarts + 1;
      t.stalled_at <- now;
      let backoff =
        Int64.mul t.backoff_base
          (Int64.shift_left 1L (min (t.window_restarts - 1) 20))
      in
      Log.warn (fun m ->
          m "ha: destroying wedged %s, restore in %Ld cycles" t.vm.Vm.name backoff);
      Hypervisor.remove_vm t.hyp t.vm;
      t.pending <- Some (Int64.add now backoff)
    end
  end

let maybe_restore (t : t) =
  match t.pending with
  | Some due when Int64.unsigned_compare (Hypervisor.now t.hyp) due >= 0 -> (
      t.pending <- None;
      match Store.recover t.store with
      | None ->
          (* nothing ever committed intact: no image to come back to *)
          t.degraded <- true
      | Some (image, gen) -> (
          match Snapshot.restore t.hyp image with
          | vm ->
              t.vm <- vm;
              t.last_ckpt_instret <- vm_instret vm;
              t.restarts <- t.restarts + 1;
              t.mttr_events <- t.mttr_events + 1;
              let mttr = Int64.sub (Hypervisor.now t.hyp) t.stalled_at in
              t.mttr_total <- Int64.add t.mttr_total mttr;
              Monitor.bump vm.Vm.monitor Monitor.E_ha_restart;
              trace_ha t.hyp vm Trace.Ha_restart ~detail:mttr;
              Log.info (fun m -> m "ha: restored %s from generation %d" vm.Vm.name gen)
          | exception Failure _ -> t.degraded <- true))
  | _ -> ()

let checkpoint (t : t) =
  if
    (not t.degraded) && t.pending = None
    && (not (Vm.halted t.vm))
    && checkpointable t.vm
  then begin
    let instret = vm_instret t.vm in
    (* A cadence tick with no retired instructions AND no dirtied frames
       has nothing new to persist; device DMA dirties memory without
       retiring guest instructions, which the churn tracker catches. *)
    if Int64.compare instret t.last_ckpt_instret <> 0 || Churn.churned t.churn > 0
    then begin
      t.last_ckpt_instret <- instret;
      let image = Snapshot.capture t.vm in
      (* The pause is charged on the bytes the commit actually streamed —
         the churned delta (or the torn prefix), not the full image. *)
      let outcome = Store.commit t.store image in
      let bytes =
        match outcome with
        | Store.Committed { bytes; _ } ->
            t.checkpoints <- t.checkpoints + 1;
            t.ckpt_bytes <- t.ckpt_bytes + bytes;
            t.frames_churned <- t.frames_churned + Churn.drain t.churn;
            bytes
        | Store.Torn cut ->
            t.torn_checkpoints <- t.torn_checkpoints + 1;
            cut
      in
      let cost = Store.commit_cycles ~bytes in
      (match outcome with
      | Store.Committed _ -> trace_ha t.hyp t.vm Trace.Ha_checkpoint ~detail:cost
      | Store.Torn _ -> ());
      t.checkpoint_cycles <- Int64.add t.checkpoint_cycles cost;
      (* the guest is paused while the commit streams out *)
      Hypervisor.advance_idle t.hyp ~to_:(Int64.add (Hypervisor.now t.hyp) cost)
    end
  end

let create ~hyp ~store ~vm ?(checkpoint_every = 300_000L) ?(wd_budget = 150_000L)
    ?(max_restarts = 3) ?(restart_window = 50_000_000L) ?(backoff_base = 100_000L) () =
  if Int64.compare checkpoint_every 0L <= 0 then
    invalid_arg "Ha.create: checkpoint_every must be positive";
  let t =
    {
      hyp;
      store;
      churn = Churn.attach (Hypervisor.host hyp).Host.mem;
      checkpoint_every;
      max_restarts;
      restart_window;
      backoff_base;
      vm;
      pending = None;
      stalled_at = 0L;
      window_start = Hypervisor.now hyp;
      window_restarts = 0;
      restarts = 0;
      degraded = false;
      checkpoints = 0;
      torn_checkpoints = 0;
      checkpoint_cycles = 0L;
      mttr_total = 0L;
      mttr_events = 0;
      last_ckpt_instret = Int64.minus_one;
      ckpt_bytes = 0;
      frames_churned = 0;
    }
  in
  Hypervisor.set_watchdog hyp ~budget:wd_budget ~policy:Hypervisor.Wd_restart;
  let prev = Hypervisor.restart_handler hyp in
  Hypervisor.set_restart_handler hyp (fun wedged ->
      if wedged == t.vm then handle_stall t
      else match prev with Some h -> h wedged | None -> ());
  (* baseline image, before anything can wedge *)
  checkpoint t;
  t

let run (t : t) ~budget =
  let hyp = t.hyp in
  let deadline = Int64.add (Hypervisor.now hyp) budget in
  let result = ref Hypervisor.Out_of_budget in
  let continue = ref true in
  while !continue do
    if Int64.unsigned_compare (Hypervisor.now hyp) deadline >= 0 then
      continue := false
    else begin
      maybe_restore t;
      let slice =
        let r = Int64.sub deadline (Hypervisor.now hyp) in
        if Int64.unsigned_compare t.checkpoint_every r < 0 then t.checkpoint_every
        else r
      in
      let o = Hypervisor.run hyp ~budget:slice in
      checkpoint t;
      match o with
      | Hypervisor.Out_of_budget | Hypervisor.Until_satisfied -> ()
      | Hypervisor.All_halted -> (
          match t.pending with
          | Some due -> Hypervisor.advance_idle hyp ~to_:due
          | None ->
              result := Hypervisor.All_halted;
              continue := false)
      | Hypervisor.Idle_deadlock -> (
          (* A wedged sole VM freezes the hypervisor clock, so the
             in-loop watchdog never sees its budget elapse — the
             deadlock outcome is the stall signal here. *)
          if (not t.degraded) && t.pending = None && not (Vm.halted t.vm)
          then begin
            Monitor.bump t.vm.Vm.monitor Monitor.E_watchdog;
            handle_stall t
          end;
          match t.pending with
          | Some due -> Hypervisor.advance_idle hyp ~to_:due
          | None ->
              (* a degrade halts the VM, so the deadlock resolved to a stop *)
              result :=
                (if t.degraded && Vm.halted t.vm then Hypervisor.All_halted
                 else Hypervisor.Idle_deadlock);
              continue := false)
    end
  done;
  !result

let vm (t : t) = t.vm
let degraded (t : t) = t.degraded

let stats (t : t) =
  {
    checkpoints = t.checkpoints;
    torn_checkpoints = t.torn_checkpoints;
    checkpoint_cycles = t.checkpoint_cycles;
    restarts = t.restarts;
    degraded = t.degraded;
    mttr_total = t.mttr_total;
    mttr_events = t.mttr_events;
    ckpt_bytes = t.ckpt_bytes;
    ckpt_logical_bytes = Store.logical_bytes t.store;
    frames_churned = t.frames_churned;
  }

let inject_stall (vm : Vm.t) =
  Array.iter
    (fun (v : Vcpu.t) -> if v.Vcpu.runstate <> Vcpu.Halted then Vcpu.block v)
    vm.Vm.vcpus

(* ---- heartbeat-driven host failover ---- *)

module Failover = struct
  type hb_knobs = {
    miss_limit : int;
    timeout : int64;
    takeover_backoff : int64;
  }

  let default_hb_knobs = { miss_limit = 3; timeout = 0L; takeover_backoff = 0L }

  let check_hb_knobs k =
    if k.miss_limit <= 0 then
      invalid_arg "Ha.Failover: miss_limit must be positive";
    if Int64.compare k.timeout 0L < 0 then
      invalid_arg "Ha.Failover: timeout must be non-negative";
    if Int64.compare k.takeover_backoff 0L < 0 then
      invalid_arg "Ha.Failover: takeover_backoff must be non-negative"

  type t = {
    session : Replicate.session;
    primary : Hypervisor.t;
    backup : Hypervisor.t;
    prot_vm : Vm.t;
    link : Link.t;
    faults : Fault.t;
    knobs : hb_knobs;
    primary_dies_at : int64 option;
    mutable generation : int; (* backup's view *)
    mutable primary_gen : int; (* primary's view *)
    mutable now : int64; (* session cycles *)
    mutable last_hb : int64;
    mutable misses : int;
    mutable hb_sent : int;
    mutable hb_lost : int;
    mutable hb_seen : int;
    mutable fenced : bool;
    mutable primary_alive : bool;
    mutable failover_at : int64 option;
    mutable mttr : int64 option;
    mutable epochs : int;
    mutable primary_epochs : int;
    mutable backup_epochs : int;
    mutable split_brain_epochs : int;
    mutable announces : int; (* TAKEOVER frames actually sent *)
    mutable next_announce : int64; (* backoff gate; 0 = immediately *)
  }

  type stats = {
    epochs : int;
    primary_epochs : int;
    backup_epochs : int;
    split_brain_epochs : int;
    hb_sent : int;
    hb_lost : int;
    hb_seen : int;
    generation : int;
    fenced : bool;
    failover_at : int64 option;
    mttr : int64 option;
  }

  let hb_tag = "HB"
  let takeover_tag = "TAKEOVER"

  let parse_gen ~tag msg =
    match String.split_on_char ' ' msg with
    | t :: g :: _ when String.equal t tag -> int_of_string_opt g
    | _ -> None

  let create ?faults ~primary ~backup ~vm ~link ?(knobs = default_hb_knobs)
      ?primary_dies_at () =
    check_hb_knobs knobs;
    let faults = match faults with Some f -> f | None -> Link.faults link in
    let session = Replicate.start ~faults ~primary ~backup ~vm ~link () in
    let now = Replicate.elapsed session in
    {
      session;
      primary;
      backup;
      prot_vm = vm;
      link;
      faults;
      knobs;
      primary_dies_at;
      generation = 1;
      primary_gen = 1;
      now;
      last_hb = now;
      misses = 0;
      hb_sent = 0;
      hb_lost = 0;
      hb_seen = 0;
      fenced = false;
      primary_alive = true;
      failover_at = None;
      mttr = None;
      epochs = 0;
      primary_epochs = 0;
      backup_epochs = 0;
      split_brain_epochs = 0;
      announces = 0;
      next_announce = 0L;
    }

  (* The returning stale primary has seen a higher generation: it stands
     down, destroying its (now divergent) instance. *)
  let fence_primary (t : t) =
    Log.warn (fun m ->
        m "ha: primary fenced at generation %d" t.primary_gen);
    Vm.stop_dirty_logging t.prot_vm;
    Hypervisor.remove_vm t.primary t.prot_vm

  let primary_may_run (t : t) = t.primary_alive && not t.fenced
  let failed_over (t : t) = Replicate.failed_over t.session

  let epoch (t : t) ~run_cycles =
    t.epochs <- t.epochs + 1;
    (match t.primary_dies_at with
    | Some c when Int64.unsigned_compare t.now c >= 0 -> t.primary_alive <- false
    | _ -> ());
    let advanced = ref false in
    (* --- primary's half --- *)
    if primary_may_run t then begin
      (* honour takeover announcements before running anything *)
      List.iter
        (fun msg ->
          match parse_gen ~tag:takeover_tag msg with
          | Some g when g > t.primary_gen ->
              t.primary_gen <- g;
              t.fenced <- true
          | _ -> ())
        (Link.poll_control t.link ~at:`A ~now:t.now);
      if t.fenced then fence_primary t
      else begin
        let session_usable =
          Replicate.failed_over t.session = None
          && not (Replicate.stats t.session).Replicate.link_failed
        in
        if session_usable then begin
          (match Replicate.epoch t.session ~run_cycles with
          | Replicate.Committed | Replicate.Link_failed -> ());
          t.now <- Replicate.elapsed t.session;
          advanced := true
        end
        else
          (* checkpoints can no longer commit (partition or a completed
             takeover the primary has not yet heard of): the stale
             primary keeps running unprotected — the split-brain window
             the generation fence closes *)
          Hypervisor.run_vm t.primary t.prot_vm ~cycles:run_cycles;
        t.primary_epochs <- t.primary_epochs + 1;
        (* cycle-stamped heartbeat, unless the hb.loss site eats it *)
        if Fault.fire t.faults Fault.Hb_loss ~now:t.now then
          t.hb_lost <- t.hb_lost + 1
        else begin
          ignore
            (Link.send_control t.link ~from:`A ~now:t.now
               ~payload:(Printf.sprintf "%s %d %Ld" hb_tag t.primary_gen t.now));
          t.hb_sent <- t.hb_sent + 1
        end
      end
    end;
    if not !advanced then t.now <- Int64.add t.now run_cycles;
    (* --- backup's half --- *)
    let got_hb =
      List.exists
        (fun msg -> parse_gen ~tag:hb_tag msg <> None)
        (Link.poll_control t.link ~at:`B ~now:t.now)
    in
    if got_hb then begin
      t.hb_seen <- t.hb_seen + 1;
      t.misses <- 0;
      t.last_hb <- t.now
    end
    else begin
      t.misses <- t.misses + 1;
      if Fault.injected t.faults Fault.Hb_loss > Fault.observed t.faults Fault.Hb_loss
      then Fault.observe t.faults Fault.Hb_loss
    end;
    if
      t.misses >= t.knobs.miss_limit
      && Int64.unsigned_compare (Int64.sub t.now t.last_hb) t.knobs.timeout >= 0
      && Replicate.failed_over t.session = None
    then begin
      t.generation <- t.generation + 1;
      (* the primary may in fact be alive across a partition — activate
         the twin without touching it and let the fence do its job *)
      ignore (Replicate.failover ~fence_primary:false t.session);
      t.failover_at <- Some t.now;
      t.mttr <- Some (Int64.sub t.now t.last_hb);
      trace_ha t.backup t.prot_vm Trace.Ha_failover
        ~detail:(Int64.sub t.now t.last_hb);
      Log.warn (fun m ->
          m "ha: %d heartbeats missed, failover at generation %d" t.misses
            t.generation)
    end;
    match Replicate.failed_over t.session with
    | None -> ()
    | Some _ ->
        (* announce (and re-announce) until the primary is known gone;
           a nonzero takeover backoff spaces the re-announcements out
           exponentially instead of flooding the control lane.  The
           split-brain clock keeps ticking either way — both instances
           are running whether or not a frame goes out this epoch. *)
        if t.primary_alive && not t.fenced then begin
          t.split_brain_epochs <- t.split_brain_epochs + 1;
          let due =
            Int64.compare t.knobs.takeover_backoff 0L <= 0
            || Int64.unsigned_compare t.now t.next_announce >= 0
          in
          if due then begin
            ignore
              (Link.send_control t.link ~from:`B ~now:t.now
                 ~payload:(Printf.sprintf "%s %d" takeover_tag t.generation));
            t.announces <- t.announces + 1;
            if Int64.compare t.knobs.takeover_backoff 0L > 0 then
              t.next_announce <-
                Int64.add t.now
                  (Int64.mul t.knobs.takeover_backoff
                     (Int64.shift_left 1L (min 16 (t.announces - 1))))
          end
        end;
        ignore (Hypervisor.run t.backup ~budget:run_cycles);
        t.backup_epochs <- t.backup_epochs + 1

  let stats (t : t) =
    {
      epochs = t.epochs;
      primary_epochs = t.primary_epochs;
      backup_epochs = t.backup_epochs;
      split_brain_epochs = t.split_brain_epochs;
      hb_sent = t.hb_sent;
      hb_lost = t.hb_lost;
      hb_seen = t.hb_seen;
      generation = t.generation;
      fenced = t.fenced;
      failover_at = t.failover_at;
      mttr = t.mttr;
    }

  let run (t : t) ~epoch_cycles ~epochs =
    for _ = 1 to epochs do
      epoch t ~run_cycles:epoch_cycles
    done;
    let survivor =
      match Replicate.failed_over t.session with
      | Some twin -> twin
      | None -> t.prot_vm
    in
    (survivor, stats t)
end
