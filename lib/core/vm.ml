open Velum_isa
open Velum_machine
open Velum_devices

type paging_mode = Shadow_paging | Nested_paging

type exec_mode = Trap_emulate | Binary_translation

type pv = { pv_console : bool; pv_pt : bool }

let no_pv = { pv_console = false; pv_pt = false }
let full_pv = { pv_console = true; pv_pt = true }

type t = {
  id : int;
  name : string;
  host : Host.t;
  p2m : P2m.t;
  vcpus : Vcpu.t array;
  tlbs : Tlb.t array;
  dtlbs : Dtlb.t array;
  paging : paging_mode;
  mutable shadow : Shadow.t option;
  mutable nested : Nested.t option;
  bus : Bus.t;
  uart : Uart.t;
  mutable blk : Blockdev.t;
  mutable vblk : Virtio_blk.t;
  mutable nic : Nic.t option;
  mutable vnet : Virtio_net.t option;
  monitor : Monitor.t;
  dirty : Bytes.t;
  mutable dirty_logging : bool;
  mutable remote_fetch : (int64 -> Bytes.t option) option;
  mutable remote_fault_cycles : int;
  pv : pv;
  mutable balloon_pages : int;
  exec_mode : exec_mode;
  bt_cache : (int64, unit) Hashtbl.t;
      (* guest PCs whose sensitive instruction has been translated *)
  engine : Engine.t;
  mem_listener : int option;
      (* write-listener handle on host memory (block engine only) *)
  event_channels : (int64, t) Hashtbl.t;  (* local port -> peer VM *)
  mutable event_pending : bool;
  mutable trace : Trace.t option;
  mutable traces_seen : int;
      (* superblock traces already reported to the trace ring; the
         hypervisor polls [traces_built] after each vCPU slice and
         records a formation event for the delta *)
}

let engine_kind t = t.engine.Engine.kind

(* Drop cached decoded blocks for a machine frame the VM is about to
   lose (ballooning, sharing, hypervisor swap).  Content-change
   invalidation is already guaranteed by the Phys_mem write listener;
   these revocation hooks drop blocks for frames that leave the VM with
   their bytes intact, so the cache never pins work for pages the guest
   no longer owns. *)
let revoke_exec_frame t ~ppn =
  match t.engine.Engine.cache with
  | Some c -> Trans_cache.invalidate_frame c ~ppn
  | None -> ()

let note_tlb_flush t =
  match t.engine.Engine.cache with Some c -> Trans_cache.note_flush c | None -> ()

let traces_built t =
  match t.engine.Engine.cache with
  | Some c -> Trans_cache.traces_built c
  | None -> 0

let page = Arch.page_size
let frame_base ppn = Int64.shift_left ppn Arch.page_shift
let gfn_of gpa = Int64.shift_right_logical gpa Arch.page_shift
let page_off gpa = Int64.logand gpa (Int64.of_int (page - 1))

(* ---- dirty bitmap ---- *)

let mark_dirty t gfn =
  let i = Int64.to_int gfn in
  if i >= 0 && i < P2m.gframes t.p2m then begin
    let byte = i / 8 and bit = i mod 8 in
    Bytes.set t.dirty byte
      (Char.chr (Char.code (Bytes.get t.dirty byte) lor (1 lsl bit)))
  end

let is_dirty t gfn =
  let i = Int64.to_int gfn in
  i >= 0
  && i < P2m.gframes t.p2m
  && Char.code (Bytes.get t.dirty (i / 8)) land (1 lsl (i mod 8)) <> 0

let dirty_count t =
  let n = ref 0 in
  Bytes.iter
    (fun c ->
      let v = Char.code c in
      for b = 0 to 7 do
        if v land (1 lsl b) <> 0 then incr n
      done)
    t.dirty;
  !n

let collect_dirty t ~clear =
  let acc = ref [] in
  for i = P2m.gframes t.p2m - 1 downto 0 do
    if Char.code (Bytes.get t.dirty (i / 8)) land (1 lsl (i mod 8)) <> 0 then
      acc := Int64.of_int i :: !acc
  done;
  if clear then Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
  !acc

(* ---- gfn resolution ---- *)

let resolve_read t gfn =
  if not (P2m.in_range t.p2m gfn) then None
  else
    match P2m.get t.p2m gfn with
    | P2m.Present { hpa_ppn; _ } -> Some hpa_ppn
    | P2m.Swapped { slot } -> (
        match Frame_alloc.alloc t.host.Host.alloc with
        | None -> None
        | Some ppn ->
            Host.swap_in t.host ~slot ~ppn;
            P2m.set t.p2m gfn
              (P2m.Present { hpa_ppn = ppn; writable = not t.dirty_logging; cow = false });
            Some ppn)
    | P2m.Remote -> (
        match t.remote_fetch with
        | None -> None
        | Some fetch -> (
            match fetch gfn with
            | None -> None
            | Some bytes -> (
                match Frame_alloc.alloc t.host.Host.alloc with
                | None -> None
                | Some ppn ->
                    Phys_mem.frame_write t.host.Host.mem ~ppn bytes;
                    P2m.set t.p2m gfn
                      (P2m.Present
                         { hpa_ppn = ppn; writable = not t.dirty_logging; cow = false });
                    Some ppn)))
    | P2m.Ballooned | P2m.Absent -> None

let invalidate_mapping t gfn =
  (match t.shadow with Some s -> Shadow.invalidate_gfn s gfn | None -> ());
  Array.iter Tlb.flush t.tlbs;
  note_tlb_flush t

let resolve_write t gfn =
  match resolve_read t gfn with
  | None -> None
  | Some hpa_ppn -> (
      match P2m.get t.p2m gfn with
      | P2m.Present { hpa_ppn = cur; writable; cow } ->
          let hpa =
            if cow then begin
              (* Copy-on-write break: private copy, drop the shared ref. *)
              let fresh = Frame_alloc.alloc_exn t.host.Host.alloc in
              Phys_mem.blit_between ~src:t.host.Host.mem ~src_ppn:cur
                ~dst:t.host.Host.mem ~dst_ppn:fresh;
              revoke_exec_frame t ~ppn:cur;
              ignore (Frame_alloc.decr_ref t.host.Host.alloc cur);
              P2m.set t.p2m gfn (P2m.Present { hpa_ppn = fresh; writable = true; cow = false });
              Monitor.bump t.monitor Monitor.E_cow_break;
              invalidate_mapping t gfn;
              fresh
            end
            else begin
              if not writable then
                P2m.set t.p2m gfn (P2m.Present { hpa_ppn = cur; writable = true; cow = false });
              cur
            end
          in
          if t.dirty_logging then mark_dirty t gfn;
          Some hpa
      | _ ->
          (* resolve_read just made it Present *)
          if t.dirty_logging then mark_dirty t gfn;
          Some hpa_ppn)

(* ---- guest-physical accessors ---- *)

let read_gpa_u64 t gpa =
  if Int64.rem gpa 8L <> 0L then None
  else
    Option.map
      (fun ppn ->
        Phys_mem.read t.host.Host.mem (Int64.logor (frame_base ppn) (page_off gpa)) Instr.W64)
      (resolve_read t (gfn_of gpa))

let write_gpa_u64 t gpa v =
  if Int64.rem gpa 8L <> 0L then false
  else
    match resolve_write t (gfn_of gpa) with
    | Some ppn ->
        Phys_mem.write t.host.Host.mem
          (Int64.logor (frame_base ppn) (page_off gpa))
          Instr.W64 v;
        true
    | None -> false

let read_gpa_bytes t gpa len =
  if len < 0 then None
  else begin
    let out = Bytes.create len in
    let rec go gpa off remaining =
      if remaining = 0 then Some out
      else
        match resolve_read t (gfn_of gpa) with
        | None -> None
        | Some ppn ->
            let in_page = min remaining (page - Int64.to_int (page_off gpa)) in
            let base = Int64.to_int (Int64.logor (frame_base ppn) (page_off gpa)) in
            for i = 0 to in_page - 1 do
              Bytes.set out (off + i)
                (Char.chr
                   (Int64.to_int
                      (Phys_mem.read t.host.Host.mem (Int64.of_int (base + i)) Instr.W8)))
            done;
            go (Int64.add gpa (Int64.of_int in_page)) (off + in_page) (remaining - in_page)
    in
    go gpa 0 len
  end

let write_gpa_bytes t gpa b =
  let len = Bytes.length b in
  let rec go gpa off remaining =
    if remaining = 0 then true
    else
      match resolve_write t (gfn_of gpa) with
      | None -> false
      | Some ppn ->
          let in_page = min remaining (page - Int64.to_int (page_off gpa)) in
          let base = Int64.to_int (Int64.logor (frame_base ppn) (page_off gpa)) in
          for i = 0 to in_page - 1 do
            Phys_mem.write t.host.Host.mem
              (Int64.of_int (base + i))
              Instr.W8
              (Int64.of_int (Char.code (Bytes.get b (off + i))))
          done;
          go (Int64.add gpa (Int64.of_int in_page)) (off + in_page) (remaining - in_page)
  in
  go gpa 0 len

let guest_mem t =
  {
    Virtio_ring.read_u64 = (fun gpa -> read_gpa_u64 t gpa);
    write_u64 = (fun gpa v -> write_gpa_u64 t gpa v);
    read_bytes = (fun gpa len -> read_gpa_bytes t gpa len);
    write_bytes = (fun gpa b -> write_gpa_bytes t gpa b);
  }

let guest_dma t =
  {
    Blockdev.dma_read = (fun gpa len -> read_gpa_bytes t gpa len);
    dma_write = (fun gpa b -> write_gpa_bytes t gpa b);
  }

(* ---- creation ---- *)

let create ~host ~id ~name ~mem_frames ?(vcpu_count = 1) ?(paging = Nested_paging)
    ?(pv = no_pv) ?(blk_sectors = 2048) ?(populate = true) ?nic ?(tlb_size = 64)
    ?(exec_mode = Trap_emulate) ?engine ~entry () =
  let engine =
    Engine.of_kind
      (match engine with Some k -> k | None -> host.Host.default_engine)
  in
  (* Blocks are keyed by machine frame, so content coherence (including
     guest self-modifying code) hangs off the host memory's write
     listeners; registered here, dropped in {!destroy}. *)
  let mem_listener =
    Option.map
      (fun cache ->
        Phys_mem.add_write_listener host.Host.mem (fun ~ppn ~lo ~hi ->
            Trans_cache.invalidate_range cache ~ppn ~lo ~hi))
      engine.Engine.cache
  in
  let p2m = P2m.create ~gframes:mem_frames in
  (* Populate guest memory eagerly; on failure return what we took. *)
  let allocated = ref [] in
  (if populate then
     try
       for gfn = 0 to mem_frames - 1 do
         match Frame_alloc.alloc host.Host.alloc with
         | Some ppn ->
             allocated := ppn :: !allocated;
             P2m.set p2m (Int64.of_int gfn)
               (P2m.Present { hpa_ppn = ppn; writable = true; cow = false })
         | None -> failwith "Vm.create: host out of frames"
       done
     with e ->
       List.iter (fun ppn -> ignore (Frame_alloc.decr_ref host.Host.alloc ppn)) !allocated;
       raise e);
  let vcpus =
    Array.init vcpu_count (fun i ->
        Vcpu.create ~id:((id * 64) + i) ~vm_id:id ~hartid:i ~entry ())
  in
  let tlbs = Array.init vcpu_count (fun _ -> Tlb.create ~size:tlb_size) in
  let dtlbs = Array.map (fun tlb -> Dtlb.create ~tlb) tlbs in
  let bus = Bus.create () in
  let uart = Uart.create () in
  let t =
    {
      id;
      name;
      host;
      p2m;
      vcpus;
      tlbs;
      dtlbs;
      paging;
      shadow = None;
      nested = None;
      bus;
      uart;
      blk = Blockdev.create ~sectors:blk_sectors { Blockdev.dma_read = (fun _ _ -> None); dma_write = (fun _ _ -> false) };
      vblk = Virtio_blk.create ~sectors:blk_sectors { Virtio_ring.read_u64 = (fun _ -> None); write_u64 = (fun _ _ -> false); read_bytes = (fun _ _ -> None); write_bytes = (fun _ _ -> false) };
      nic = None;
      vnet = None;
      monitor = Monitor.create ();
      dirty = Bytes.make ((mem_frames + 7) / 8) '\000';
      dirty_logging = false;
      remote_fetch = None;
      remote_fault_cycles = 0;
      pv;
      balloon_pages = 0;
      exec_mode;
      bt_cache = Hashtbl.create 64;
      engine;
      mem_listener;
      event_channels = Hashtbl.create 4;
      event_pending = false;
      trace = None;
      traces_seen = 0;
    }
  in
  (* Rebuild the devices now that [t] exists, wiring DMA through the VM's
     p2m, and attach them to the virtual bus. *)
  t.blk <- Blockdev.create ~sectors:blk_sectors (guest_dma t);
  t.vblk <- Virtio_blk.create ~sectors:blk_sectors (guest_mem t);
  t.nic <-
    Option.map
      (fun (link, endpoint) -> Nic.create ~link ~endpoint ~dma:(guest_dma t) ())
      nic;
  Bus.attach t.bus (Uart.device t.uart);
  Bus.attach t.bus (Blockdev.device t.blk);
  Bus.attach t.bus (Virtio_blk.device t.vblk);
  Option.iter (fun n -> Bus.attach t.bus (Nic.device n)) t.nic;
  (match paging with
  | Shadow_paging ->
      let env =
        {
          Shadow.mem = host.Host.mem;
          alloc = host.Host.alloc;
          cost = host.Host.cost;
          read_guest_pte = (fun gpa -> read_gpa_u64 t gpa);
          write_guest_pte = (fun gpa v -> write_gpa_u64 t gpa v);
          resolve_read = (fun gfn -> resolve_read t gfn);
          resolve_write = (fun gfn -> resolve_write t gfn);
          host_writable =
            (fun gfn ->
              match P2m.get t.p2m gfn with
              | P2m.Present { writable; cow; _ } -> writable && not cow
              | _ -> false);
        }
      in
      t.shadow <- Some (Shadow.create env)
  | Nested_paging ->
      let env =
        {
          Nested.mem = host.Host.mem;
          cost = host.Host.cost;
          p2m = t.p2m;
          mark_ad_write = (fun gfn -> if t.dirty_logging then mark_dirty t gfn);
        }
      in
      t.nested <- Some (Nested.create env));
  t

let destroy t =
  Option.iter (Phys_mem.remove_write_listener t.host.Host.mem) t.mem_listener;
  (match t.engine.Engine.cache with Some c -> Trans_cache.flush c | None -> ());
  (match t.shadow with Some s -> Shadow.flush_all s | None -> ());
  P2m.iter t.p2m ~f:(fun ~gfn entry ->
      match entry with
      | P2m.Present { hpa_ppn; _ } ->
          ignore (Frame_alloc.decr_ref t.host.Host.alloc hpa_ppn);
          P2m.set t.p2m gfn P2m.Absent
      | _ -> ())

(* Plug a virtio-net adapter into [link] at [endpoint] and put it on
   the bus.  Callable any time after creation — a migration twin gets
   its fabric port back this way, with {!Virtio_net.configure} restoring
   the ring layout host-side. *)
let attach_vnet t ~link ~endpoint =
  let v = Virtio_net.create ~link ~endpoint ~mem:(guest_mem t) () in
  t.vnet <- Some v;
  Bus.attach t.bus (Virtio_net.device v);
  v

let load_image t (img : Asm.image) =
  if not (write_gpa_bytes t img.Asm.origin img.Asm.code) then
    failwith "Vm.load_image: image does not fit in guest memory"

let mem_frames t = P2m.gframes t.p2m

let halted t = Array.for_all (fun v -> v.Vcpu.runstate = Vcpu.Halted) t.vcpus

let guest_cycles t =
  Array.fold_left (fun acc v -> Int64.add acc v.Vcpu.guest_cycles) 0L t.vcpus

let vmm_cycles t =
  Array.fold_left (fun acc v -> Int64.add acc v.Vcpu.vmm_cycles) 0L t.vcpus

(* ---- dirty logging epochs ---- *)

let flush_all_tlbs t =
  Array.iter Tlb.flush t.tlbs;
  note_tlb_flush t

let flush_vcpu_tlb t ~vcpu_idx =
  Tlb.flush t.tlbs.(vcpu_idx);
  note_tlb_flush t

let start_dirty_logging t =
  t.dirty_logging <- true;
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
  ignore (P2m.clear_writable_all t.p2m);
  (match t.shadow with Some s -> Shadow.clear_all_writable s | None -> ());
  flush_all_tlbs t

let stop_dirty_logging t =
  t.dirty_logging <- false;
  P2m.iter t.p2m ~f:(fun ~gfn entry ->
      match entry with
      | P2m.Present { hpa_ppn; writable = false; cow = false } ->
          P2m.set t.p2m gfn (P2m.Present { hpa_ppn; writable = true; cow = false })
      | _ -> ());
  flush_all_tlbs t

(* ---- guest-virtual software walk (no side effects) ---- *)

let read_guest_va t ~vcpu_idx va =
  let vcpu = t.vcpus.(vcpu_idx) in
  let satp = Cpu.get_csr vcpu.Vcpu.state Arch.Satp in
  let gpa =
    if not (Arch.satp_enabled satp) then Some va
    else begin
      let acc =
        {
          Page_table.read_pte =
            (fun gpa -> Option.value (read_gpa_u64 t gpa) ~default:Pte.invalid);
          write_pte = (fun _ _ -> ());
        }
      in
      match Page_table.walk acc ~root_ppn:(Arch.satp_root_ppn satp) va with
      | Ok { pte; level; _ } -> Some (Page_table.leaf_pa ~pte ~level ~va)
      | Error _ -> None
    end
  in
  Option.bind gpa (fun gpa ->
      if Int64.rem gpa 8L <> 0L then None else read_gpa_u64 t gpa)

(* ---- translation ---- *)

(* Shadow mode with guest paging disabled: guest-virtual = guest-physical
   through the hypervisor's direct map (still a 1-D walk on a miss). *)
let translate_bare_shadow t ~vcpu_idx ~access ~user:_ va =
  if Bus.is_mmio va then Ok { Cpu.pa = va; mmio = true; xlate_cycles = 0 }
  else begin
    let tlb = t.tlbs.(vcpu_idx) in
    let vpn = gfn_of va in
    let hit =
      match Tlb.lookup tlb ~vpn with
      | Some e when not e.Tlb.mmio ->
          if access = Arch.Store && not e.dirty_ok then None else Some e
      | _ -> None
    in
    match hit with
    | Some e ->
        Tlb.note_hit tlb;
        Ok
          {
            Cpu.pa = Int64.logor (frame_base e.Tlb.ppn) (page_off va);
            mmio = false;
            xlate_cycles = 0;
          }
    | None -> (
        Tlb.note_miss tlb;
        if not (P2m.in_range t.p2m vpn) then Error `Access
        else
          match P2m.get t.p2m vpn with
          | P2m.Present { hpa_ppn; writable; cow } ->
              let w = writable && not cow in
              if access = Arch.Store && not w then Error `Page
              else begin
                Tlb.insert tlb
                  {
                    Tlb.vpn;
                    ppn = hpa_ppn;
                    perms = { Pte.r = true; w; x = true; u = true };
                    dirty_ok = w;
                    mmio = false;
                    superpage = false;
                  };
                let cost = t.host.Host.cost in
                Ok
                  {
                    Cpu.pa = Int64.logor (frame_base hpa_ppn) (page_off va);
                    mmio = false;
                    xlate_cycles = Cost_model.walk_cycles_1d cost + cost.Cost_model.tlb_fill;
                  }
              end
          | P2m.Swapped _ | P2m.Remote -> Error `Page
          | P2m.Ballooned | P2m.Absent -> Error `Access)
  end

let translate t ~vcpu_idx ~access ~user va =
  let vcpu = t.vcpus.(vcpu_idx) in
  let satp = Cpu.get_csr vcpu.Vcpu.state Arch.Satp in
  match t.paging with
  | Nested_paging ->
      let nested = Option.get t.nested in
      Nested.translate nested ~guest_satp:satp ~tlb:t.tlbs.(vcpu_idx) ~access ~user va
  | Shadow_paging ->
      if Arch.satp_enabled satp then
        let shadow = Option.get t.shadow in
        Shadow.translate shadow ~root_gfn:(Arch.satp_root_ppn satp) ~tlb:t.tlbs.(vcpu_idx)
          ~access ~user va
      else translate_bare_shadow t ~vcpu_idx ~access ~user va

(* ---- ballooning ---- *)

let balloon_out t gfn =
  if not (P2m.in_range t.p2m gfn) then false
  else
    match P2m.get t.p2m gfn with
    | P2m.Present { hpa_ppn; _ } ->
        revoke_exec_frame t ~ppn:hpa_ppn;
        ignore (Frame_alloc.decr_ref t.host.Host.alloc hpa_ppn);
        P2m.set t.p2m gfn P2m.Ballooned;
        t.balloon_pages <- t.balloon_pages + 1;
        invalidate_mapping t gfn;
        true
    | _ -> false

let balloon_in t gfn =
  if not (P2m.in_range t.p2m gfn) then false
  else
    match P2m.get t.p2m gfn with
    | P2m.Ballooned -> (
        match Frame_alloc.alloc t.host.Host.alloc with
        | Some ppn ->
            P2m.set t.p2m gfn (P2m.Present { hpa_ppn = ppn; writable = true; cow = false });
            t.balloon_pages <- t.balloon_pages - 1;
            true
        | None -> false)
    | _ -> false

(* ---- console ---- *)

let console_put t c = Uart.write_reg t.uart Uart.reg_data (Int64.of_int (Char.code c))
let console_output t = Uart.output t.uart

let pp ppf t =
  Format.fprintf ppf "vm%d(%s, %d vcpus, %d frames, %s)" t.id t.name
    (Array.length t.vcpus) (mem_frames t)
    (match t.paging with Shadow_paging -> "shadow" | Nested_paging -> "nested")

(* Snapshot engine / TLB / micro-TLB counters into the monitor as
   gauges.  Called by presentation paths (CLI, benches) right before
   printing — never by the run loop itself, so differential tests that
   compare raw monitor state across engines stay engine-agnostic. *)
let publish_stats t =
  let m = t.monitor in
  let g = Monitor.set_gauge m in
  let sum f = Array.fold_left (fun acc x -> acc + f x) 0 in
  g "tlb.hits" (sum Tlb.hits t.tlbs);
  g "tlb.misses" (sum Tlb.misses t.tlbs);
  g "tlb.evictions" (sum Tlb.evictions t.tlbs);
  g "tlb.flushes" (sum Tlb.flushes t.tlbs);
  g "dtlb.hits" (sum Dtlb.hits t.dtlbs);
  g "dtlb.misses" (sum Dtlb.misses t.dtlbs);
  g "dtlb.fills" (sum Dtlb.fills t.dtlbs);
  (* Net gauges appear only when an adapter is attached, so outputs of
     network-less runs are unchanged.  Emulated NIC and virtio-net
     counters share one namespace: a VM has at most one of each, and the
     drop counters are the frame-conservation terms. *)
  Option.iter
    (fun n ->
      g "net.sent" (Nic.frames_sent n);
      g "net.received" (Nic.frames_received n);
      g "net.tx_dropped" (Nic.tx_dropped n);
      g "net.rx_dropped" (Nic.rx_dropped n);
      g "net.rx_overflow" (Nic.rx_overflow n);
      g "net.rx_queued" (Nic.rx_queue_length n))
    t.nic;
  Option.iter
    (fun v ->
      g "net.sent" (Virtio_net.frames_sent v);
      g "net.received" (Virtio_net.frames_received v);
      g "net.tx_dropped" (Virtio_net.tx_dropped v + Virtio_net.tx_malformed v);
      g "net.rx_dropped" (Virtio_net.rx_dropped v + Virtio_net.rx_malformed v);
      g "net.rx_overflow" (Virtio_net.rx_overflow v);
      g "net.rx_queued" (Virtio_net.backlog_length v);
      g "net.kicks" (Virtio_net.kicks v))
    t.vnet;
  match t.engine.Engine.cache with
  | None -> ()
  | Some c ->
      g "engine.cache.entries" (Trans_cache.entries c);
      g "engine.cache.hits" (Trans_cache.hits c);
      g "engine.cache.misses" (Trans_cache.misses c);
      g "engine.cache.invalidations" (Trans_cache.invalidations c);
      g "engine.cache.evictions" (Trans_cache.evictions c);
      g "engine.chain.patched" (Trans_cache.chains_patched c);
      g "engine.chain.follows" (Trans_cache.chain_follows c);
      g "engine.chain.severed" (Trans_cache.chains_severed c);
      g "engine.trace.built" (Trans_cache.traces_built c);
      g "engine.trace.follows" (Trans_cache.trace_follows c);
      g "engine.trace.severed" (Trans_cache.traces_severed c);
      g "engine.trace.side_exits" (Trans_cache.trace_side_exits c)
