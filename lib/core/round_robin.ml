let create ?(slice = Scheduler.default_slice) () =
  let queue : Vcpu.t Queue.t = Queue.create () in
  let push v = if not (Queue.fold (fun f x -> f || x == v) false queue) then Queue.push v queue in
  (* [let rec]: the closures read [t.notify] at call time, so the hook
     is a per-scheduler field rather than a cell shared across
     instances. *)
  let rec t =
    {
      Scheduler.name = "round-robin";
      enqueue = push;
      requeue = push;
      wake =
        (fun v ->
          Scheduler.tell t.Scheduler.notify (Some v)
            (Scheduler.N_wake { boosted = v.Vcpu.boosted });
          v.Vcpu.boosted <- false;
          push v);
      remove =
        (fun v ->
          let keep = Queue.fold (fun acc x -> if x == v then acc else x :: acc) [] queue in
          Queue.clear queue;
          List.iter (fun x -> Queue.push x queue) (List.rev keep));
      pick =
        (fun ~now:_ ->
          let rec next () =
            match Queue.take_opt queue with
            | None -> None
            | Some v -> if Vcpu.is_runnable v then Some (v, slice) else next ()
          in
          next ());
      charge = (fun _ ~used:_ ~now:_ -> ());
      next_release = (fun ~now:_ -> None);
      notify = None;
    }
  in
  t
