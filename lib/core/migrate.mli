(** Live migration of a VM between two hypervisors over a network link.

    Three strategies, as in the live-migration literature:

    - {!stop_and_copy}: freeze, transfer everything, resume — downtime
      equals total time (the baseline);
    - {!precopy}: iterative rounds — transfer all pages while the guest
      keeps running and dirtying, then re-send each round's dirty set
      until it is small enough (or stops shrinking), then freeze for a
      short final round.  Downtime scales with the residual dirty set;
      writable-working-set behaviour decides convergence;
    - {!postcopy}: freeze only for the vCPU state, resume on the
      destination immediately, pull pages on demand (charging a network
      round trip per fault) while pushing the rest in the background.
      Minimal downtime, degraded performance until the working set
      arrives.

    Storage is modelled as shared (network-attached); only memory and
    vCPU state move.  Transfer times are charged through the
    {!Velum_devices.Link} bandwidth/latency model, and the source VM
    executes on its hypervisor for the duration of each transfer round,
    so dirtying happens at the guest's natural rate. *)

open Velum_devices

type result = {
  total_cycles : int64;  (** start of migration to guest running on the
                             destination with all pages resident *)
  downtime_cycles : int64;  (** guest frozen (neither side executing) *)
  pages_sent : int;  (** includes re-sends and post-copy pulls *)
  bytes_sent : int;
  rounds : int;  (** pre-copy rounds (1 for stop-and-copy) *)
  remote_faults : int;  (** post-copy demand fetches *)
  retransmits : int;  (** frames re-sent after a timeout or NACK *)
  aborted : bool;  (** retries exhausted: rolled back, source resumed *)
}

val page_wire_bytes : int
(** Bytes on the wire per page (page + header). *)

exception Abort_migration of string
(** Raised internally when reliable-transfer retries exhaust; escapes
    only from {!Reliable.send}. *)

(** The reliable-delivery channel the lossy paths use: frames carry a
    sequence number and an FNV-1a checksum; the receiver NACKs corrupted
    frames and dedups retransmits; the sender retries with exponential
    backoff.  Exposed so {!Replicate} ships checkpoints over the same
    protocol. *)
module Reliable : sig
  type t

  val create : ?now:int64 -> link:Link.t -> faults:Velum_util.Fault.t -> unit -> t
  (** [now] seeds the channel clock (so cycle-windowed faults line up
      with session time); default [0L]. *)

  val send : t -> body:Bytes.t -> unit
  (** Deliver one body, advancing the channel clock by wire time, ack
      latencies, and backoff waits.

      @raise Abort_migration when attempts exhaust. *)

  val clock : t -> int64
  val retransmits : t -> int
  val bytes_sent : t -> int
end

val stop_and_copy :
  ?compress:bool ->
  ?faults:Velum_util.Fault.t ->
  src:Hypervisor.t ->
  dst:Hypervisor.t ->
  vm:Vm.t ->
  link:Link.t ->
  unit ->
  Vm.t * result
(** [compress] elides all-zero pages to a 24-byte wire marker (default
    false).

    [faults] defaults to the plan attached to [link].  When it is active,
    pages travel through a reliable layer: each frame carries a sequence
    number and an FNV-1a checksum, corrupted frames are NACKed, lost
    frames retransmitted with exponential backoff, duplicates deduped.
    Retry exhaustion aborts: the returned VM is then the {e source}
    (resumed, untouched) and the destination twin is destroyed, its
    frames reclaimed — check [aborted]. *)

val precopy :
  ?compress:bool ->
  ?faults:Velum_util.Fault.t ->
  ?watchdog_cycles:int64 ->
  src:Hypervisor.t ->
  dst:Hypervisor.t ->
  vm:Vm.t ->
  link:Link.t ->
  ?max_rounds:int ->
  ?stop_threshold:int ->
  unit ->
  Vm.t * result
(** Defaults: at most 8 rounds; freeze when the dirty set is ≤ 64
    pages.  Also freezes early when a round fails to shrink the dirty
    set (non-convergence guard).

    [faults] as in {!stop_and_copy}; under loss the guest keeps running
    (and dirtying) for the {e whole} round wire time, retransmits and
    backoff included.  [watchdog_cycles] is a convergence watchdog: once
    total transfer time exceeds it the iteration freezes and sends the
    residue rather than keep chasing the dirty set.  On abort the source
    VM resumes with dirty logging stopped and the twin's frames are
    freed. *)

val postcopy :
  src:Hypervisor.t ->
  dst:Hypervisor.t ->
  vm:Vm.t ->
  link:Link.t ->
  ?push_batch:int ->
  unit ->
  Vm.t * result
(** [push_batch] pages are pushed in the background between execution
    bursts (default 32). *)
