type note = N_wake of { boosted : bool } | N_refill | N_clamp

type hook = Vcpu.t option -> note -> unit

type t = {
  name : string;
  enqueue : Vcpu.t -> unit;
  requeue : Vcpu.t -> unit;
  wake : Vcpu.t -> unit;
  remove : Vcpu.t -> unit;
  pick : now:int64 -> (Vcpu.t * int) option;
  charge : Vcpu.t -> used:int -> now:int64 -> unit;
  next_release : now:int64 -> int64 option;
  mutable notify : hook option;
}

let tell h vcpu note = match h with Some f -> f vcpu note | None -> ()

let default_slice = 100_000
