(** High-availability supervision: checkpoint-to-store restart and
    heartbeat-driven host failover.

    Two recovery layers, matching two failure domains:

    - {b VM wedge} (guest livelock/deadlock): a per-VM supervisor
      checkpoints the VM to a crash-consistent {!Store} on a cycle
      cadence; when the hypervisor's progress watchdog ([Wd_restart])
      fires, the supervisor destroys the wedged VM and restores the last
      good checkpoint after an exponential backoff.  A crash-loop budget
      bounds futile restarts: once exceeded inside the window the VM is
      degraded to halted (kept registered for post-mortem) and
      [E_ha_degraded] is recorded.

    - {b host death / partition} (see {!Failover}): a primary/backup
      pair exchange cycle-stamped heartbeats over the replication
      {!Velum_devices.Link}; the backup counts consecutive misses and,
      past the limit, bumps its generation and activates the Remus twin
      via {!Replicate.failover} — automatically, no operator call.  The
      generation counter guards split-brain: a stale primary that
      returns sees the higher-generation TAKEOVER announcement and
      fences itself (refuses to run). *)

open Velum_devices

type t

type stats = {
  checkpoints : int;  (** durably committed *)
  torn_checkpoints : int;  (** cut by a power failure; retried next cadence *)
  checkpoint_cycles : int64;
      (** guest pause charged for commits — on the delta's actual byte
          count, so an incremental commit pauses for its churn, not the
          image footprint *)
  restarts : int;  (** successful destroy-and-restore cycles *)
  degraded : bool;  (** crash-loop budget exhausted (or store empty) *)
  mttr_total : int64;  (** summed stall-detection → running-again time *)
  mttr_events : int;
  ckpt_bytes : int;  (** bytes the committed checkpoints actually wrote *)
  ckpt_logical_bytes : int;
      (** image bytes those checkpoints represent; the ratio to
          [ckpt_bytes] is the store's dedup win *)
  frames_churned : int;  (** dirty frames covered by committed checkpoints *)
}

val create :
  hyp:Hypervisor.t ->
  store:Store.t ->
  vm:Vm.t ->
  ?checkpoint_every:int64 ->
  ?wd_budget:int64 ->
  ?max_restarts:int ->
  ?restart_window:int64 ->
  ?backoff_base:int64 ->
  unit ->
  t
(** Supervise [vm]: arm the hypervisor watchdog with [Wd_restart]
    (budget [wd_budget], default 150k cycles), chain into the restart
    handler, and take the baseline checkpoint.  Checkpoints then recur
    every [checkpoint_every] cycles (default 300k) of {!run}.  A restart
    is delayed [backoff_base * 2^(n-1)] cycles for the [n]th restart in
    the current window (default base 100k); more than [max_restarts]
    (default 3) inside [restart_window] cycles (default 50M) degrades
    the VM.

    Only runnable, progressing states are committed: an all-blocked
    image {e is} the wedge, so cadence points that catch the VM blocked
    (or with unchanged retired-instruction count) are skipped — "last
    good checkpoint" means the newest state that could still run.

    Note: [create] owns the hypervisor's watchdog configuration; arm at
    most one supervisor per VM.

    @raise Invalid_argument on a non-positive cadence or budget. *)

val run : t -> budget:int64 -> Hypervisor.outcome
(** Drive {!Hypervisor.run} in checkpoint-cadence slices for [budget]
    cycles, interleaving commits, due restores and stall handling.  A
    sole wedged VM freezes the hypervisor clock (the in-loop watchdog
    never sees its budget elapse), so an [Idle_deadlock] outcome from a
    slice is treated as the stall signal for the supervised VM.
    Checkpoint commits and restart backoffs advance the clock as idle
    time, so same-seed runs are cycle-deterministic. *)

val vm : t -> Vm.t
(** The current incarnation (changes across restarts). *)

val degraded : t -> bool
val stats : t -> stats

val inject_stall : Vm.t -> unit
(** Wedge the VM: block every non-halted vCPU with no wake event —
    exactly the livelock shape the watchdog exists to catch.  Test and
    benchmark helper. *)

(** Heartbeat-driven failover between a primary and backup hypervisor,
    layered on a {!Replicate} session. *)
module Failover : sig
  type t

  (** Detector tuning, shared verbatim with the cluster control plane's
      fleet-wide failure detector ({!Velum_cluster.Detector}): both
      protocols count consecutive heartbeat misses against the same
      three dials. *)
  type hb_knobs = {
    miss_limit : int;
        (** consecutive heartbeat misses before takeover (default 3) *)
    timeout : int64;
        (** additionally require [now - last_heartbeat >= timeout]
            cycles before taking over; 0 = miss count alone decides *)
    takeover_backoff : int64;
        (** base spacing of TAKEOVER re-announcements, doubled each
            announcement; 0 = re-announce every epoch (the historical
            behaviour).  The cluster detector reuses it as its probe
            backoff. *)
  }

  val default_hb_knobs : hb_knobs
  (** [{ miss_limit = 3; timeout = 0L; takeover_backoff = 0L }] —
      byte-identical to the formerly hard-wired constants. *)

  type stats = {
    epochs : int;  (** protocol steps driven *)
    primary_epochs : int;  (** steps the guest ran on the primary *)
    backup_epochs : int;  (** steps the twin ran after takeover *)
    split_brain_epochs : int;
        (** steps where both instances ran (partition, primary alive) —
            the window the generation fence exists to close *)
    hb_sent : int;
    hb_lost : int;  (** eaten by the [hb.loss] site before the wire *)
    hb_seen : int;
    generation : int;  (** backup's view; bumped once at takeover *)
    fenced : bool;  (** the stale primary saw TAKEOVER and stood down *)
    failover_at : int64 option;  (** session cycle of twin activation *)
    mttr : int64 option;  (** last-heartbeat-seen → twin running *)
  }

  val create :
    ?faults:Velum_util.Fault.t ->
    primary:Hypervisor.t ->
    backup:Hypervisor.t ->
    vm:Vm.t ->
    link:Link.t ->
    ?knobs:hb_knobs ->
    ?primary_dies_at:int64 ->
    unit ->
    t
  (** Start a {!Replicate} session for [vm] and the heartbeat protocol
    around it.  Each {!epoch}: the primary (unless dead or fenced) first
    honours any TAKEOVER announcement, else replicates one epoch and
    sends one heartbeat (unless the [hb.loss] site eats it; link-level
    drop/partition faults apply on the wire too).  The backup polls,
    counts consecutive misses, and once [knobs.miss_limit] misses {e and}
    [knobs.timeout] heartbeat-less cycles have accumulated it bumps its
    generation, activates the twin with
    [Replicate.failover ~fence_primary:false], and announces TAKEOVER —
    every epoch, or on [knobs.takeover_backoff] exponential spacing —
    until the primary fences.  [primary_dies_at] models host death: past
    that session cycle the primary neither runs nor heartbeats.

    @raise Invalid_argument on a non-positive miss limit or negative
    timeout/backoff. *)

  val epoch : t -> run_cycles:int64 -> unit
  (** One protocol step (both halves). *)

  val run : t -> epoch_cycles:int64 -> epochs:int -> Vm.t * stats
  (** Drive [epochs] steps and return the surviving instance: the
      activated twin if failover happened, else the primary's VM. *)

  val stats : t -> stats
  val failed_over : t -> Vm.t option
  val primary_may_run : t -> bool
  (** [false] once the primary is dead or fenced. *)
end
