(** The hypervisor: host resources, a vCPU scheduler, and the run loop
    that multiplexes virtual machines on one or more physical CPUs.

    The run loop picks a vCPU, world-switches in (charging
    {!Velum_machine.Cost_model.t.ctx_switch}), executes deprivileged
    guest code until the slice expires or an exit needs service, routes
    exits through {!Emulate}, and keeps device models and virtual timers
    flowing.  Blocked vCPUs wake when a virtual interrupt becomes
    deliverable; a fully idle host fast-forwards its clock to the next
    event. *)

type pcpu = { mutable pclock : int64 }

type watchdog_policy =
  | Wd_kill  (** halt the stalled VM's vCPUs *)
  | Wd_notify  (** count the event and restart the window *)
  | Wd_restart
      (** hand the stalled VM to the restart handler (see
          {!set_restart_handler}) — an HA supervisor destroys it and
          restores the last good checkpoint.  Falls back to [Wd_kill]
          when no handler is attached. *)

type watchdog

type t = {
  ctx : Host_ctx.t;
      (** every piece of per-host ambient state — machine resources,
          scheduler, RNG/fault roots, trace sink — so two hypervisors
          (possibly on two domains) share nothing through [t] *)
  mutable vms : Vm.t list;  (** registration order *)
  pcpus : pcpu array;
  mutable clock : int64;  (** makespan: max over pcpu clocks *)
  mutable next_vm_id : int;
  mutable idle_cycles : int64;
  mutable sched_decisions : int;
  mutable watchdog : watchdog option;
  mutable restart_handler : (Vm.t -> unit) option;
  mutable tickers : (int64 -> unit) list;
      (** ambient per-host infrastructure ticked at every wake point —
          e.g. a software switch between this host's VMs *)
  mutable event_sources : (unit -> int64 option) list;
      (** extra feeds for the idle-time event search (e.g.
          {!Velum_devices.Switch.next_event}) so pending fabric work
          wakes an otherwise idle host instead of deadlocking it *)
}

val create :
  ?ctx:Host_ctx.t -> ?host:Host.t -> ?sched:Scheduler.t -> ?pcpus:int -> unit -> t
(** Defaults: a fresh {!Host_ctx} (64 MiB host, credit scheduler), one
    pCPU.  [~ctx] supplies the whole per-host context; it cannot be
    combined with [~host]/[~sched], which remain as shorthands that
    build a fresh context around the given pieces.  With several pCPUs
    the run loop is an event-driven multiprocessor simulation: each pCPU
    has its own cycle clock, the scheduler's run queue is global (vCPUs
    migrate freely), an idle pCPU's clock never runs ahead of a busy
    peer's (so wakeups stay visible), and a vCPU's own virtual time is
    monotonic across pCPUs. *)

val ctx : t -> Host_ctx.t
val host : t -> Host.t
(** [host t] = [(ctx t).host]. *)

val sched : t -> Scheduler.t
(** [sched t] = [(ctx t).sched]. *)

val now : t -> int64
(** Makespan: the farthest pcpu clock. *)

val set_trace : t -> Trace.t -> unit
(** Attach a tracing sink: every current and future VM records into it,
    and this hypervisor's scheduler's {!Scheduler.t.notify} field is
    pointed at it (other hypervisors' schedulers are untouched).
    Tracing is host-side bookkeeping only — simulated cycles, exits and
    scheduling are byte-identical with tracing on or off. *)

val trace : t -> Trace.t option

val pcpu_count : t -> int

val create_vm :
  t ->
  name:string ->
  mem_frames:int ->
  ?vcpu_count:int ->
  ?paging:Vm.paging_mode ->
  ?pv:Vm.pv ->
  ?weight:int ->
  ?populate:bool ->
  ?nic:Velum_devices.Nic.link_binding ->
  ?tlb_size:int ->
  ?exec_mode:Vm.exec_mode ->
  ?engine:Velum_machine.Engine.kind ->
  entry:int64 ->
  unit ->
  Vm.t
(** Create a VM, register its vCPUs with the scheduler and return it.
    Load a boot image with {!Vm.load_image} before running.  [engine]
    overrides the host's default execution engine for this VM. *)

val remove_vm : t -> Vm.t -> unit
(** Deschedule and destroy the VM, returning its frames to the host. *)

val find_vm : t -> vm_id:int -> Vm.t option

type outcome =
  | All_halted  (** every vCPU of every VM has halted *)
  | Until_satisfied
  | Out_of_budget
  | Idle_deadlock  (** every vCPU blocked with no wake event in sight *)

val set_watchdog : t -> budget:int64 -> policy:watchdog_policy -> unit
(** [set_watchdog t ~budget ~policy] arms a per-VM progress watchdog: if
    a (non-halted) VM retires no instructions for [budget] consecutive
    cycles of host time, the event is counted in the VM's {!Monitor}
    under [E_watchdog] and the policy is applied.

    @raise Invalid_argument if [budget <= 0]. *)

val watchdog_fired : t -> int
(** Total watchdog firings across all VMs (0 when unarmed). *)

val set_restart_handler : t -> (Vm.t -> unit) -> unit
(** Install the [Wd_restart] callback.  The handler is invoked from
    inside the run loop with the wedged VM still registered; it may
    remove the VM and register a replacement (the loop iterates over a
    captured VM list, so mutation is safe).  Chain via
    {!restart_handler} when several supervisors share a hypervisor. *)

val restart_handler : t -> (Vm.t -> unit) option

val add_ticker : t -> (int64 -> unit) -> unit
(** Register an ambient ticker, called with the current clock at every
    wake point (before device buses tick).  Registration order is the
    tick order — keep wiring order fixed for byte-deterministic runs. *)

val add_event_source : t -> (unit -> int64 option) -> unit
(** Register an extra next-event feed consulted when every vCPU is
    blocked, alongside device completions and timer deadlines. *)

val advance_idle : t -> to_:int64 -> unit
(** Fast-forward every pCPU clock to [to_] (no-op for clocks already
    past it), charging the skipped span as idle cycles.  Models pauses
    whose cost is known up front: checkpoint commits, restart
    backoff. *)

val run : ?budget:int64 -> ?until:(t -> bool) -> t -> outcome
(** [run ?budget ?until t] — default budget 2G cycles. *)

val run_vm : t -> Vm.t -> cycles:int64 -> unit
(** [run_vm t vm ~cycles] advances only [vm] (round-robin over its
    runnable vCPUs) for the given number of host cycles — used by live
    migration to let the guest execute "during" a transfer round.  Time
    always advances by [cycles] (idle if the VM blocks). *)

(** {1 Accounting} *)

val guest_cycles : t -> int64
val vmm_cycles : t -> int64

val vcpu_index : Vm.t -> Vcpu.t -> int
(** Position of a vCPU within its VM.

    @raise Not_found if it belongs to another VM. *)

val wake_sleepers : t -> unit
(** Re-evaluate wake conditions for all blocked vCPUs now (the run loop
    does this automatically; exposed for tests and migration). *)
