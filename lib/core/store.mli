(** Crash-consistent, content-addressed incremental checkpoint store,
    layered on {!Velum_devices.Blockdev}.

    Snapshot images ({!Snapshot.full} bytes) are split into 4 KiB chunks
    keyed by their FNV-1a content hash.  A chunk is written once and
    shared by every later generation — and every other VM stream on the
    same store — that contains the same bytes, so a cadenced checkpoint
    costs its churn, not its footprint.  On-device layout:

    {v
    sector 0   superblock slot 0   (72 bytes used)
    sector 1   superblock slot 1
    sector 2 .. 2+S-1        log space A
    sector 2+S .. 2+2S-1     log space B
    v}

    One space is {e active}: commits append to it — new chunk records
    (magic, content hash, length, payload), then a {e manifest} (the
    ordered chunk list that reassembles one stream's image, with a
    whole-image checksum), then a {e catalog} (the stream directory),
    then a {e refcount table}, and finally — the sole commit point — a
    superblock (sequence, active space, log head, catalog/reftable
    locations, self-checksum) into slot [seq mod 2].  Until the
    superblock lands intact, both slots still describe older
    generations, and because the log is append-only no byte either of
    them references is ever overwritten by a commit.

    When the active space fills, {!gc} compacts every chunk reachable
    from the newest catalog into the {e other} space and flips the
    superblock — the pre-GC space is never written, so a power cut at
    any byte offset of the compaction stream leaves the old state
    ruling.  Refcounts (references from the manifests of the two
    recoverable catalogs) decide what is live; {!mount} rebuilds them
    from the manifests and cross-checks the stored table, so a lost or
    rotted refcount update (site [store.ref]) is detected and repaired
    rather than trusted.

    The power-failure model cuts a commit's or compaction's byte stream
    at an arbitrary offset — injected by the fault plan (sites
    [store.torn] / [store.gc], offset drawn from the plan's RNG) or at a
    caller-chosen offset ([?crash_at], used by the CI crash matrix).
    {!recover} validates superblock, catalog, manifest, every chunk
    record, and the whole-image checksum before returning the newest
    {e complete} generation: a crash at any offset yields either the
    previous or the new snapshot, never a torn hybrid and never a
    manifest pointing at reclaimed bytes.  Latent rot (site
    [store.csum]) flips a committed bit so the next scan must fall back
    a generation. *)

type t

val create : ?sectors:int -> ?faults:Velum_util.Fault.t -> unit -> t
(** Fresh store on a private blank {!Velum_devices.Blockdev} (default
    8192 sectors = 4 MiB; sequence 0, nothing recoverable). *)

val mount : ?faults:Velum_util.Fault.t -> Velum_devices.Blockdev.t -> t
(** Attach to an existing device — the reboot path.  Scans both
    superblock slots for the newest complete generation, rebuilds the
    chunk index and refcounts from the live manifests, and cross-checks
    the stored refcount table (mismatch: observed [store.ref], counted
    in {!ref_rebuilds}).  In-memory state left by a torn commit is
    discarded, exactly as a power cycle would. *)

val clone : t -> t
(** A fresh handle mounted on a byte copy of the device — the crash
    sweeps use this to restart from a prepared state without replaying
    its commits. *)

val device : t -> Velum_devices.Blockdev.t
(** The backing device (so a store can be remounted or copied). *)

val set_faults : t -> Velum_util.Fault.t -> unit

val sectors_for : image_bytes:int -> int
(** Device size (sectors) whose spaces comfortably hold one stream of
    [image_bytes] images — two full generations plus
    manifest/catalog/reftable overhead, so steady-state commits trigger
    GC rather than overflow. *)

val fleet_sectors_for : streams:int -> image_bytes:int -> int
(** Like {!sectors_for} but sized for [streams] independent VM streams
    sharing one store — the cluster control plane's shared fleet CAS. *)

type outcome =
  | Committed of {
      gen : int;  (** the stream's new generation number *)
      bytes : int;  (** bytes actually written: the churn, not the image *)
      chunks_new : int;  (** chunks appended by this commit *)
      chunks_shared : int;  (** chunks deduplicated against the CAS *)
    }
  | Torn of int
      (** power failed after this many bytes of the write stream; the
          device holds a prefix, the previous generation still rules *)

val commit : ?crash_at:int -> ?id:string -> t -> Bytes.t -> outcome
(** [commit t image] durably stores [image] as stream [id]'s (default
    [""]) next generation.  Chunks already in the store — from any
    stream or generation — are shared after a byte-compare verify, so
    the write stream contains only changed chunks plus metadata.
    [crash_at] deterministically cuts the stream after that many bytes
    (clamped to the stream length; the commit is then reported [Torn]
    without consulting the fault plan) — the CI sweep drives every
    offset of a delta commit through this.  Without [crash_at], the
    fault plan's [store.torn] site may cut the stream, [store.csum] may
    rot a committed record, and [store.ref] may rot the refcount table.
    If the active space is full, a GC compaction runs first; a power cut
    during it (site [store.gc]) reports the commit [Torn] with nothing
    of the new generation on the device.

    @raise Invalid_argument if the image cannot fit a space even after
    GC. *)

val commit_bytes : ?id:string -> t -> Bytes.t -> int
(** Total bytes [commit] would write for this image right now (new chunk
    records, manifest, catalog, reftable, superblock) — the exclusive
    upper bound for interesting [crash_at] offsets. *)

val commit_cycles : bytes:int -> int64
(** Cycles a commit of [bytes] occupies the storage path: two seeks (data
    stream, superblock flip) plus the per-byte streaming cost, matching
    the {!Velum_devices.Blockdev} latency model.  The HA supervisor
    charges this on the delta's {e actual} byte count as checkpoint
    pause time. *)

type gc_outcome =
  | Gc_committed of {
      bytes : int;  (** bytes of the compaction stream *)
      live_chunks : int;  (** distinct chunk records copied forward *)
      reclaimed : int;  (** log bytes freed by the flip *)
    }
  | Gc_torn of int
      (** power failed after this many bytes of the compaction stream;
          the pre-GC space was never written, so the old state rules *)

val gc : ?crash_at:int -> t -> gc_outcome
(** Compact every chunk reachable from the newest catalog into the
    inactive space and flip the superblock.  [crash_at] cuts the
    compaction stream deterministically (the CI sweep drives every
    offset); without it the fault plan's [store.gc] site may cut it. *)

val gc_bytes : t -> int
(** Bytes {!gc} would write right now — the exclusive upper bound for
    interesting [crash_at] offsets of a compaction. *)

val recover : ?id:string -> t -> (Bytes.t * int) option
(** Scan the device and return stream [id]'s newest complete image with
    its generation; [None] if no generation of that stream ever
    committed intact.  Re-validates everything from superblock to
    whole-image checksum.  Structural breakage counts as observed
    [store.torn]; checksum mismatches under a valid structure count as
    observed [store.csum]. *)

val generation : t -> int
(** Newest complete global commit sequence (0 = empty).  Superblock
    flips — commits and GC runs alike — advance it; for a single-stream
    store that never GCs it coincides with the stream generation. *)

val stream_generation : ?id:string -> t -> int
(** Newest committed generation of stream [id] (0 = none). *)

val commits : t -> int
(** Successful commits through this handle. *)

val torn_commits : t -> int
(** Commits cut by a power failure through this handle. *)

val bytes_written : t -> int
(** Total bytes this handle pushed at the device (torn prefixes and GC
    streams included). *)

val logical_bytes : t -> int
(** Total image bytes successfully committed — what a full-image store
    would have written.  [logical_bytes / bytes_written] is the dedup
    ratio. *)

val chunks_live : t -> int
(** Distinct chunks currently referenced by the live manifests. *)

val gc_runs : t -> int
(** Completed GC compactions through this handle. *)

val torn_gc : t -> int
(** GC compactions cut by a power failure through this handle. *)

val ref_rebuilds : t -> int
(** Times {!mount} found the stored refcount table missing, rotted, or
    under-counting and rebuilt it from the live manifests. *)
