(** Crash-consistent durable snapshot store, layered on {!Velum_devices.Blockdev}.

    The store persists full VM snapshots ({!Snapshot.full} byte images)
    so that recovery survives a host power failure.  On-device layout:

    {v
    sector 0   superblock slot 0   (48 bytes used)
    sector 1   superblock slot 1
    sector 2 .. 2+R-1        data region A
    sector 2+R .. 2+2R-1     data region B
    v}

    A commit of generation [g] writes the image as chunked records
    (header: magic, sequence, length, FNV-1a payload checksum) into
    region [g mod 2], then — and only then — writes a new superblock
    (generation, region, image length, whole-image FNV-1a checksum,
    self-checksum) into slot [g mod 2].  The superblock write is the
    commit point: until it lands intact, both slots still describe older
    generations.

    The power-failure model cuts the commit's byte stream at an
    arbitrary offset — either injected by the {!Velum_util.Fault.t} plan
    (site [store.torn], offset drawn from the plan's RNG) or at a caller
    chosen offset ([?crash_at], used by the CI crash matrix).  {!recover}
    scans both slots, validates every checksum, and returns the newest
    {e complete} image: a crash at any offset therefore yields either the
    previous or the new snapshot, never a torn hybrid.  Latent rot
    (site [store.csum]) flips a committed bit so the next scan must fall
    back a generation. *)

type t

val create : ?sectors:int -> ?faults:Velum_util.Fault.t -> unit -> t
(** Fresh store on a private blank {!Velum_devices.Blockdev} (default
    8192 sectors = 4 MiB; generation 0, nothing recoverable). *)

val mount : ?faults:Velum_util.Fault.t -> Velum_devices.Blockdev.t -> t
(** Attach to an existing device — the reboot path.  Scans both
    superblock slots to find the newest complete generation; in-memory
    state left by a torn commit is discarded, exactly as a power cycle
    would. *)

val device : t -> Velum_devices.Blockdev.t
(** The backing device (so a store can be remounted or copied). *)

val set_faults : t -> Velum_util.Fault.t -> unit

val sectors_for : image_bytes:int -> int
(** Device size (sectors) whose regions comfortably hold images of
    [image_bytes] (chunk overhead and both regions included). *)

type outcome =
  | Committed of int  (** the new generation number *)
  | Torn of int
      (** power failed after this many bytes of the commit stream; the
          device holds a prefix, the previous generation still rules *)

val commit : ?crash_at:int -> t -> Bytes.t -> outcome
(** [commit t image] durably stores [image] as the next generation.
    [crash_at] deterministically cuts the write stream after that many
    bytes (clamped to the stream length; the commit is then reported
    [Torn] without consulting the fault plan) — the CI sweep drives every
    offset of a full checkpoint through this.  Without [crash_at], the
    fault plan's [store.torn] site may cut the stream at a random offset
    and [store.csum] may rot a committed bit.

    @raise Invalid_argument if the image cannot fit a region. *)

val commit_bytes : t -> Bytes.t -> int
(** Total bytes [commit] would write for this image (chunk records plus
    superblock) — the exclusive upper bound for interesting [crash_at]
    offsets. *)

val commit_cycles : bytes:int -> int64
(** Cycles a commit of [bytes] occupies the storage path: two seeks (data
    stream, superblock flip) plus the per-byte streaming cost, matching
    the {!Velum_devices.Blockdev} latency model.  The HA supervisor
    charges this as checkpoint pause time. *)

val recover : t -> (Bytes.t * int) option
(** Scan the device and return the newest complete image with its
    generation; [None] if no generation ever committed intact.  Slots
    with a valid magic but an invalid structure count as observed
    [store.torn]; checksum mismatches under a valid structure count as
    observed [store.csum]. *)

val generation : t -> int
(** Newest complete generation (0 = empty). *)

val commits : t -> int
(** Successful commits through this handle. *)

val torn_commits : t -> int
(** Commits cut by a power failure through this handle. *)

val bytes_written : t -> int
(** Total bytes this handle pushed at the device (torn prefixes
    included). *)
