module Phys_mem = Velum_machine.Phys_mem

type t = {
  mem : Phys_mem.t;
  mutable listener : int;
  dirty : Bytes.t; (* one byte per frame; O(1) clear on drain *)
  mutable dirty_count : int;
  mutable total : int;
}

let attach mem =
  let n = Phys_mem.frames mem in
  let t =
    { mem; listener = -1; dirty = Bytes.make n '\000'; dirty_count = 0; total = 0 }
  in
  t.listener <-
    Phys_mem.add_write_listener mem (fun ~ppn ~lo:_ ~hi:_ ->
        let i = Int64.to_int ppn in
        if i >= 0 && i < n && Bytes.get t.dirty i = '\000' then begin
          Bytes.set t.dirty i '\001';
          t.dirty_count <- t.dirty_count + 1;
          t.total <- t.total + 1
        end);
  t

let detach t = Phys_mem.remove_write_listener t.mem t.listener
let churned t = t.dirty_count
let total t = t.total

let drain t =
  let n = t.dirty_count in
  if n > 0 then begin
    Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
    t.dirty_count <- 0
  end;
  n
