type state = {
  slice : int;
  period : int;
  mutable registered : Vcpu.t list; (* all vCPUs that receive refills *)
  mutable queue : Vcpu.t list; (* runnable, FIFO within priority class *)
  mutable next_refill : int64;
}

let priority v =
  if v.Vcpu.boosted then 0 else if v.Vcpu.credits > 0 then 1 else 2

(* A capped vCPU may not exceed cap% of one pCPU per accounting period;
   once it has, it is parked until the next refill. *)
let over_cap st v =
  v.Vcpu.cap > 0 && v.Vcpu.window_used >= st.period * v.Vcpu.cap / 100

let refill st =
  let total_weight =
    List.fold_left (fun acc v -> acc + max 1 v.Vcpu.weight) 0 st.registered
  in
  if total_weight > 0 then
    List.iter
      (fun v ->
        let grant = st.period * max 1 v.Vcpu.weight / total_weight in
        v.Vcpu.credits <- min (v.Vcpu.credits + grant) (2 * st.period);
        v.Vcpu.window_used <- 0)
      st.registered

let create ?(slice = Scheduler.default_slice) ?(period = 3_000_000) () =
  let st = { slice; period; registered = []; queue = []; next_refill = 0L } in
  let register v =
    if not (List.memq v st.registered) then begin
      st.registered <- v :: st.registered;
      (* A vCPU joining after the first refill (restore, migration,
         hotplug) would otherwise sit in the lowest priority class with
         zero credits until the period rolls over — starved for up to
         [period] cycles behind any resident with credits.  Grant a
         late joiner its pro-rated share immediately; vCPUs registered
         before the first pick still get everything from that refill,
         so upfront-created fleets are byte-for-byte unchanged. *)
      if Int64.compare st.next_refill 0L > 0 && v.Vcpu.credits <= 0 then begin
        let total_weight =
          List.fold_left (fun acc x -> acc + max 1 x.Vcpu.weight) 0 st.registered
        in
        v.Vcpu.credits <- st.period * max 1 v.Vcpu.weight / total_weight;
        v.Vcpu.window_used <- 0
      end
    end
  in
  let push v =
    register v;
    if not (List.memq v st.queue) then st.queue <- st.queue @ [ v ]
  in
  (* [let rec]: the closures read [t.notify] at call time, so the hook
     is a per-scheduler field rather than a cell shared across
     instances. *)
  let rec maybe_refill now =
    if Int64.unsigned_compare now st.next_refill >= 0 then begin
      refill st;
      Scheduler.tell t.Scheduler.notify None Scheduler.N_refill;
      st.next_refill <- Int64.add now (Int64.of_int st.period)
    end
  and t =
    {
      Scheduler.name = "credit";
      enqueue = push;
      requeue = push;
      wake =
        (fun v ->
          Scheduler.tell t.Scheduler.notify (Some v)
            (Scheduler.N_wake { boosted = v.Vcpu.boosted });
          push v);
      remove =
        (fun v ->
          st.queue <- List.filter (fun x -> not (x == v)) st.queue;
          st.registered <- List.filter (fun x -> not (x == v)) st.registered);
      pick =
        (fun ~now ->
          maybe_refill now;
          let eligible =
            List.filter (fun v -> Vcpu.is_runnable v && not (over_cap st v)) st.queue
          in
          match eligible with
          | [] ->
              (* drop stale entries but keep capped vCPUs parked for the
                 next period *)
              st.queue <- List.filter (fun v -> Vcpu.is_runnable v) st.queue;
              None
          | _ ->
              (* lowest priority class number first, FIFO inside a class *)
              let best =
                List.fold_left
                  (fun acc v ->
                    match acc with
                    | None -> Some v
                    | Some b -> if priority v < priority b then Some v else acc)
                  None eligible
              in
              let v = Option.get best in
              st.queue <- List.filter (fun x -> not (x == v)) st.queue;
              v.Vcpu.boosted <- false;
              (* never hand out a slice crossing the cap boundary *)
              let slice =
                if v.Vcpu.cap = 0 then st.slice
                else min st.slice (max 1 ((st.period * v.Vcpu.cap / 100) - v.Vcpu.window_used))
              in
              Some (v, slice));
      charge =
        (fun v ~used ~now ->
          maybe_refill now;
          v.Vcpu.credits <- v.Vcpu.credits - used;
          v.Vcpu.window_used <- v.Vcpu.window_used + used);
      next_release =
        (fun ~now ->
          (* only relevant when someone runnable is parked by a cap *)
          let parked =
            List.exists (fun v -> Vcpu.is_runnable v && over_cap st v) st.queue
          in
          if parked && Int64.unsigned_compare st.next_refill now > 0 then
            Some st.next_refill
          else None);
      notify = None;
    }
  in
  t
