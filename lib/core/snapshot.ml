open Velum_isa
open Velum_machine

type full = Bytes.t

let magic = 0x56454C4D534E5031L (* "VELMSNP1" *)

(* --- little-endian buffer helpers --- *)

let add_i64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Buffer.add_bytes buf b

let add_int buf v = add_i64 buf (Int64.of_int v)

let add_str buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

type reader = { data : Bytes.t; mutable pos : int }

let get_i64 r =
  if r.pos + 8 > Bytes.length r.data then failwith "Snapshot: truncated image";
  let v = Bytes.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let get_int r = Int64.to_int (get_i64 r)

let get_str r =
  let n = get_int r in
  if n < 0 || r.pos + n > Bytes.length r.data then failwith "Snapshot: truncated image";
  let s = Bytes.sub_string r.data r.pos n in
  r.pos <- r.pos + n;
  s

(* --- full snapshots --- *)

let runstate_code = function
  | Vcpu.Runnable | Vcpu.Running -> 0
  | Vcpu.Blocked -> 1
  | Vcpu.Halted -> 2

let runstate_of_code = function
  | 0 -> Vcpu.Runnable
  | 1 -> Vcpu.Blocked
  | 2 -> Vcpu.Halted
  | _ -> failwith "Snapshot: bad runstate"

let capture (vm : Vm.t) =
  let buf = Buffer.create (Vm.mem_frames vm * Arch.page_size / 2) in
  add_i64 buf magic;
  add_str buf vm.Vm.name;
  add_int buf (Vm.mem_frames vm);
  add_int buf (Array.length vm.Vm.vcpus);
  add_int buf (match vm.Vm.paging with Vm.Shadow_paging -> 0 | Vm.Nested_paging -> 1);
  add_int buf (if vm.Vm.pv.Vm.pv_console then 1 else 0);
  add_int buf (if vm.Vm.pv.Vm.pv_pt then 1 else 0);
  Array.iter
    (fun (vcpu : Vcpu.t) ->
      let s = vcpu.Vcpu.state in
      Array.iter (add_i64 buf) s.Cpu.regs;
      add_i64 buf s.Cpu.pc;
      add_int buf (match s.Cpu.mode with Arch.User -> 0 | Arch.Supervisor -> 1);
      Array.iter (add_i64 buf) s.Cpu.csrs;
      add_int buf (if s.Cpu.halted then 1 else 0);
      add_int buf (if s.Cpu.waiting then 1 else 0);
      add_i64 buf s.Cpu.instret;
      add_int buf (runstate_code vcpu.Vcpu.runstate))
    vm.Vm.vcpus;
  (* Page states: B = ballooned, A = absent, P = present (with data).
     Swapped pages are pulled back in by resolve_read. *)
  let pages = ref [] in
  P2m.iter vm.Vm.p2m ~f:(fun ~gfn entry ->
      match entry with
      | P2m.Ballooned -> pages := (gfn, `Ballooned) :: !pages
      | P2m.Absent -> pages := (gfn, `Absent) :: !pages
      | P2m.Present _ | P2m.Swapped _ | P2m.Remote -> pages := (gfn, `Data) :: !pages);
  let pages = List.rev !pages in
  add_int buf (List.length pages);
  List.iter
    (fun (gfn, kind) ->
      add_i64 buf gfn;
      match kind with
      | `Ballooned -> add_int buf 1
      | `Absent -> add_int buf 2
      | `Data -> (
          add_int buf 0;
          match Vm.resolve_read vm gfn with
          | Some ppn ->
              Buffer.add_bytes buf (Phys_mem.frame_read vm.Vm.host.Host.mem ~ppn)
          | None -> Buffer.add_bytes buf (Bytes.make Arch.page_size '\000')))
    pages;
  add_str buf (Vm.console_output vm);
  Buffer.to_bytes buf

let size_bytes = Bytes.length

let restore hyp image =
  let r = { data = image; pos = 0 } in
  if get_i64 r <> magic then failwith "Snapshot: bad magic";
  let name = get_str r in
  let mem_frames = get_int r in
  let vcpu_count = get_int r in
  (* Validate the header before allocating anything: a corrupt image must
     not drive [create_vm] into absurd allocations (or negative array
     sizes, which would escape as [Invalid_argument]). *)
  if mem_frames <= 0 || mem_frames > 1 lsl 24 then failwith "Snapshot: bad header";
  if vcpu_count <= 0 || vcpu_count > 1024 then failwith "Snapshot: bad header";
  let paging = if get_int r = 0 then Vm.Shadow_paging else Vm.Nested_paging in
  let pv_console = get_int r = 1 in
  let pv_pt = get_int r = 1 in
  let vm =
    Hypervisor.create_vm hyp ~name ~mem_frames ~vcpu_count ~paging
      ~pv:{ Vm.pv_console; pv_pt } ~entry:0L ()
  in
  (* From here on the VM owns frames and is registered: any parse failure
     must tear it down completely (frames reclaimed, scheduler and VM
     list clean) before the error propagates, or every rejected image
     would leak its partial restore. *)
  try
    Array.iter
      (fun (vcpu : Vcpu.t) ->
        let s = vcpu.Vcpu.state in
        for i = 0 to Array.length s.Cpu.regs - 1 do
          s.Cpu.regs.(i) <- get_i64 r
        done;
        s.Cpu.pc <- get_i64 r;
        s.Cpu.mode <- (if get_int r = 0 then Arch.User else Arch.Supervisor);
        for i = 0 to Array.length s.Cpu.csrs - 1 do
          s.Cpu.csrs.(i) <- get_i64 r
        done;
        s.Cpu.halted <- get_int r = 1;
        s.Cpu.waiting <- get_int r = 1;
        s.Cpu.instret <- get_i64 r;
        vcpu.Vcpu.runstate <- runstate_of_code (get_int r))
      vm.Vm.vcpus;
    let npages = get_int r in
    if npages < 0 || npages > mem_frames then failwith "Snapshot: bad page count";
    for _ = 1 to npages do
      let gfn = get_i64 r in
      match get_int r with
      | 1 -> ignore (Vm.balloon_out vm gfn)
      | 2 -> (
          (* absent in the source: free the eagerly allocated frame *)
          match P2m.get vm.Vm.p2m gfn with
          | P2m.Present { hpa_ppn; _ } ->
              ignore (Frame_alloc.decr_ref vm.Vm.host.Host.alloc hpa_ppn);
              P2m.set vm.Vm.p2m gfn P2m.Absent
          | _ -> ())
      | 0 -> (
          if r.pos + Arch.page_size > Bytes.length image then
            failwith "Snapshot: truncated page data";
          let page = Bytes.sub image r.pos Arch.page_size in
          r.pos <- r.pos + Arch.page_size;
          match Vm.resolve_write vm gfn with
          | Some ppn -> Phys_mem.frame_write vm.Vm.host.Host.mem ~ppn page
          | None -> failwith "Snapshot: cannot place page")
      | _ -> failwith "Snapshot: bad page kind"
    done;
    let console = get_str r in
    String.iter (fun c -> Vm.console_put vm c) console;
    vm
  with e ->
    Hypervisor.remove_vm hyp vm;
    raise e

(* --- live (copy-on-write) snapshots --- *)

type live = {
  src_host : Host.t;
  l_name : string;
  l_paging : Vm.paging_mode;
  l_pv : Vm.pv;
  l_mem_frames : int;
  l_vcpus : (Cpu.state * Vcpu.runstate) array;
  l_frames : (int64 * int64) list; (* gfn, hpa (ref held) *)
  mutable released : bool;
}

let capture_live (vm : Vm.t) =
  let host = vm.Vm.host in
  let frames = ref [] in
  P2m.iter vm.Vm.p2m ~f:(fun ~gfn entry ->
      match entry with
      | P2m.Present { hpa_ppn; _ } ->
          Frame_alloc.incr_ref host.Host.alloc hpa_ppn;
          (* The running VM's copy becomes COW so its future writes
             cannot leak into the snapshot. *)
          P2m.set vm.Vm.p2m gfn
            (P2m.Present { hpa_ppn; writable = false; cow = true });
          (match vm.Vm.shadow with Some s -> Shadow.invalidate_gfn s gfn | None -> ());
          frames := (gfn, hpa_ppn) :: !frames
      | _ -> ());
  Vm.flush_all_tlbs vm;
  {
    src_host = host;
    l_name = vm.Vm.name ^ "-snap";
    l_paging = vm.Vm.paging;
    l_pv = vm.Vm.pv;
    l_mem_frames = Vm.mem_frames vm;
    l_vcpus =
      Array.map (fun v -> (Cpu.copy_state v.Vcpu.state, v.Vcpu.runstate)) vm.Vm.vcpus;
    l_frames = List.rev !frames;
    released = false;
  }

let live_pages l = List.length l.l_frames

let restore_live hyp (l : live) =
  if l.released then failwith "Snapshot.restore_live: snapshot released";
  if not (Hypervisor.host hyp == l.src_host) then
    failwith "Snapshot.restore_live: snapshot frames live on a different host";
  let vm =
    Hypervisor.create_vm hyp ~name:l.l_name ~mem_frames:l.l_mem_frames
      ~vcpu_count:(Array.length l.l_vcpus) ~paging:l.l_paging ~pv:l.l_pv
      ~populate:false ~entry:0L ()
  in
  List.iter
    (fun (gfn, hpa) ->
      Frame_alloc.incr_ref l.src_host.Host.alloc hpa;
      P2m.set vm.Vm.p2m gfn (P2m.Present { hpa_ppn = hpa; writable = false; cow = true }))
    l.l_frames;
  Array.iteri
    (fun i (state, runstate) ->
      let vcpu = vm.Vm.vcpus.(i) in
      let s = vcpu.Vcpu.state in
      Array.blit state.Cpu.regs 0 s.Cpu.regs 0 (Array.length s.Cpu.regs);
      Array.blit state.Cpu.csrs 0 s.Cpu.csrs 0 (Array.length s.Cpu.csrs);
      s.Cpu.pc <- state.Cpu.pc;
      s.Cpu.mode <- state.Cpu.mode;
      s.Cpu.halted <- state.Cpu.halted;
      s.Cpu.waiting <- state.Cpu.waiting;
      s.Cpu.instret <- state.Cpu.instret;
      vcpu.Vcpu.runstate <- runstate)
    l.l_vcpus;
  vm

let release_live (l : live) =
  if not l.released then begin
    l.released <- true;
    List.iter
      (fun (_gfn, hpa) -> ignore (Frame_alloc.decr_ref l.src_host.Host.alloc hpa))
      l.l_frames
  end
