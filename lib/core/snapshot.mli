(** VM snapshots: full serialization and copy-on-write live snapshots.

    A {e full} snapshot serializes vCPU state and every present page to a
    byte buffer that can be restored on any host (portable, sized ~ guest
    memory).  A {e live} snapshot instead bumps refcounts and marks the
    VM's frames copy-on-write — O(pages) metadata, O(1) data — the VM
    keeps running and pays a COW break per page it subsequently writes;
    restoring clones a VM from the shared frames. *)

type full = Bytes.t

val capture : Vm.t -> full
(** Serialize the VM (vCPU state, present pages, balloon/absent layout,
    console).  The VM should be quiesced (not running) for a consistent
    image. *)

val restore : Hypervisor.t -> full -> Vm.t
(** Materialize a VM from a full snapshot on the given hypervisor
    (scheduler-registered, same run states).

    @raise Failure on a corrupt image or when the host lacks frames.  A
    rejected image leaves no trace: every frame the partial restore
    allocated is reclaimed and no half-built VM stays registered. *)

val size_bytes : full -> int

type live

val capture_live : Vm.t -> live
(** Mark every present frame copy-on-write and take a reference; the VM
    continues running. *)

val restore_live : Hypervisor.t -> live -> Vm.t
(** Clone a VM sharing the snapshot's frames (all copy-on-write).  The
    clone and the original diverge page by page as either writes.  Must
    run on the same host as the snapshot's frames. *)

val release_live : live -> unit
(** Drop the snapshot's frame references (frames whose last reference
    this was are freed).  Restored clones keep their own references. *)

val live_pages : live -> int
