(** Cycle-stamped tracing and profiling — the hypervisor's xentrace.

    Each traced VM owns a bounded event ring ({!Velum_util.Ring},
    oldest-evicted), one {!Velum_util.Histogram} of service latency per
    {!Monitor.exit_kind}, and a guest / VMM / device cycle-attribution
    triple.  All timestamps are simulated cycles and all accumulation is
    integer, so identical runs export byte-identical traces (the CI
    determinism gate diffs the files literally).  Recording is host-side
    bookkeeping only: it never perturbs simulated time, so a traced run
    executes exactly the same exits and cycles as an untraced one.

    Hooks live in {!Emulate} (exits, IRQ injection, hypercalls, device
    I/O), {!Hypervisor} (dispatch decisions, guest-cycle attribution),
    the schedulers (via {!Scheduler.hook}), {!Migrate} (copy rounds) and
    {!Ha} (checkpoint / restart / degrade / failover).  Install with
    {!Hypervisor.set_trace}. *)

type ha_what = Ha_checkpoint | Ha_restart | Ha_degraded | Ha_failover

type stop_reason =
  | S_slice  (** slice expired *)
  | S_yield
  | S_block
  | S_halt

type event =
  | Exit of { kind : Monitor.exit_kind; cost : int; detail : int64 }
      (** one VM exit: service cost in cycles, plus a kind-specific
          detail (faulting VA, MMIO GPA, port, gfn, …; 0 when unused) *)
  | Irq_inject of { cost : int }
  | Dispatch of { vcpu : int; slice : int; used : int; stop : stop_reason }
      (** scheduler dispatch: granted slice, consumed cycles, and why
          the vCPU left the pCPU *)
  | Sched_wake of { boosted : bool }
  | Sched_refill  (** credit accounting period *)
  | Sched_clamp  (** BVT wake clamp *)
  | Hypercall of { num : int64 }
  | Device_io of { write : bool; addr : int64 }
  | Migration_round of { round : int; pages : int }
  | Ha_event of { what : ha_what; detail : int64 }
  | Trace_formed of { count : int }
      (** the block engine promoted [count] hot chains into superblock
          traces during the preceding vCPU slice *)

type record = { at : int64; ev : event }

type t

val default_ring_capacity : int
(** 4096 events per VM. *)

val create : ?ring_capacity:int -> unit -> t

val record : t -> vm_id:int -> name:string -> at:int64 -> event -> unit
(** Append an event to [vm_id]'s ring (evicting the oldest when full)
    and fold it into the per-kind histograms and cycle attribution. *)

val add_guest_cycles : t -> vm_id:int -> name:string -> int -> unit
(** Attribute directly-executed guest cycles (called per engine chunk). *)

(** {1 Readback (tests, bench)} *)

val vm_ids : t -> int list
(** Ascending. *)

val events_recorded : t -> int
(** Total across VMs, including ring-evicted events. *)

val exit_count : t -> vm_id:int -> Monitor.exit_kind -> int
val guest_cycles : t -> vm_id:int -> int64
val vmm_cycles : t -> vm_id:int -> int64
(** Exit-service cycles excluding device emulation. *)

val device_cycles : t -> vm_id:int -> int64
(** MMIO and port-I/O exit-service cycles. *)

(** {1 Export and reporting} *)

val export_string : t -> string
(** Deterministic JSONL: a [meta] line, per-VM attribution lines,
    non-empty per-kind histogram lines (count/sum/min/max/mean/p50/p95/
    p99 plus log2 buckets), then the retained event tail oldest-first. *)

val export_file : t -> string -> unit

val render_report : string -> string
(** [render_report path] reads an exported JSONL file back and renders
    the cycle-attribution and per-exit-kind latency tables ([velum
    trace]). *)

val render_report_lines : string list -> string
(** Same, from already-read lines (exposed for tests). *)
