(** Per-VM event counters — the hypervisor's telemetry.

    Every VM exit, interrupt injection, shadow-pager action and
    memory-management event increments a counter here; the benchmark
    harness reads them to build the paper's tables. *)

type exit_kind =
  | E_csr
  | E_sret
  | E_sfence
  | E_wfi
  | E_halt
  | E_port_io
  | E_mmio
  | E_hypercall
  | E_guest_trap  (** reflected trap (syscall, illegal, breakpoint…) *)
  | E_guest_page_fault  (** reflected to the guest *)
  | E_shadow_fill  (** hidden fault: shadow entry built, guest resumed *)
  | E_pt_write  (** write-protected guest page-table write emulated *)
  | E_dirty_log  (** dirty-tracking write fault *)
  | E_cow_break
  | E_swap_in
  | E_remote_fetch  (** post-copy demand fetch *)
  | E_bt_translate  (** binary translation of a new sensitive site *)
  | E_watchdog  (** progress watchdog fired: no retired instructions *)
  | E_ha_restart
      (** HA supervisor destroyed this (wedged) VM's predecessor and
          restored it from the last good checkpoint *)
  | E_ha_degraded
      (** crash-loop budget exhausted: the supervisor gave up restarting
          and degraded the VM to halted *)
  | E_ha_failover
      (** this VM is a backup twin activated by missed heartbeats *)
  | E_cluster_shed
      (** cluster admission rejected (or evicted) this VM under overload:
          the lowest priority class is shed rather than breaching
          headroom *)
  | E_cluster_degraded
      (** the cluster control plane gave up evacuating a crash-looping VM
          and degraded it to halted (fleet-level analogue of
          [E_ha_degraded]) *)

val exit_kind_name : exit_kind -> string
val all_exit_kinds : exit_kind list

val kind_index : exit_kind -> int
(** Dense index of a kind within [all_exit_kinds] — a constant-time
    constructor match, safe on the exit hot path.  {!Trace} keys its
    per-kind latency histograms by it. *)

val nkinds : int
(** [List.length all_exit_kinds]. *)

type t

val create : unit -> t

val bump : t -> exit_kind -> unit
val add_cycles : t -> exit_kind -> int -> unit
(** [add_cycles t k c] accumulates VMM overhead cycles attributed to
    [k]. *)

val count : t -> exit_kind -> int
val cycles : t -> exit_kind -> int64
val total_exits : t -> int

val irq_injected : t -> unit
val irq_injections : t -> int

(** {1 Gauges}

    Free-form named statistics published in bulk (dotted names by
    convention: [engine.chain.follows], [tlb.evictions], …).  Unlike the
    exit counters these are set, not bumped — callers snapshot a
    subsystem's counters into the monitor right before printing. *)

val set_gauge : t -> string -> int -> unit
val gauge : t -> string -> int option
val gauges : t -> (string * int) list
(** Sorted by name. *)

val reset : t -> unit

val to_json : t -> string
(** Canonical single-line JSON: nonzero exits as ["name":[count,cycles]]
    in declaration order, then [irq_injections], then gauges sorted by
    name.  Order-stable by construction — two monitors holding the same
    values export byte-identical strings whatever the Hashtbl insertion
    order was, so parallel-vs-sequential diffs are meaningful. *)

val pp : Format.formatter -> t -> unit
(** One line per nonzero counter, then every gauge.  Gauges are sorted
    by name ({!gauges}), so the text export is order-stable too. *)
