(** Server-consolidation planning: pack VM reservations onto physical
    hosts and estimate the power/cost savings of the consolidation —
    Experiment E9, the one quantitative claim in the supplied text
    (≈3-4 VMs per host, ≈200-250 €/server/year of power+cooling). *)

type vm_req = {
  vm_name : string;
  cpu_units : int;  (** 100 = one core's worth of sustained demand *)
  mem_mb : int;
}

type host_spec = {
  cores : int;
  ram_mb : int;
  watts_idle : float;  (** power drawn by a host that is on *)
  watts_per_core : float;  (** additional power per busy core *)
}

val default_host : host_spec
(** 8 cores, 16 GiB, 120 W idle + 20 W/core — a modest 2010-era server. *)

type assignment = { host_index : int; req : vm_req }

type plan = {
  hosts_used : int;
  assignments : assignment list;
  cpu_utilization : float;  (** mean over used hosts, 0..1 *)
  mem_utilization : float;
}

val first_fit_decreasing : host_spec -> vm_req list -> plan
(** FFD bin packing on (cpu, memory) — sorted by the max of the two
    normalized dimensions.  Opens a new host when a VM fits nowhere.

    @raise Invalid_argument if some VM exceeds a whole host. *)

val consolidation_ratio : plan -> float
(** VMs per used host. *)

(** Incremental placement for a live cluster: a pool of fixed hosts
    whose occupancy changes one admission/evacuation/drain at a time.
    Generalizes the single-shot FFD with anti-affinity groups (no two
    members of one group share a host) and per-host headroom
    reservations (units admission may not touch — kept free so
    evacuations always have somewhere to land).  All state is explicit
    and deterministic; the control plane drives it from the coordinator
    phase. *)
module Pool : sig
  type host_state = private {
    host_id : int;
    cap_units : int;  (** total capacity, in caller-chosen units *)
    headroom : int;  (** reserved units at the top of each host *)
    mutable used_units : int;
    mutable placed : int;  (** VMs currently on this host *)
    mutable open_ : bool;  (** cordoned hosts are closed to placement *)
    mutable groups : int list;  (** anti-affinity groups present *)
  }

  type t

  val create : hosts:int -> cap_units:int -> headroom:int -> t
  (** Uniform pool.  @raise Invalid_argument unless
      [0 <= headroom < cap_units] and both counts are positive. *)

  val host : t -> int -> host_state
  val nhosts : t -> int

  val cordon : t -> int -> unit
  (** Close a host to new placements (maintenance intent). *)

  val uncordon : t -> int -> unit

  val choose : ?use_headroom:bool -> ?group:int -> t -> units:int -> int option
  (** First-fit: lowest-indexed open host with room and no anti-affinity
      conflict.  Ordinary admission respects headroom; evacuation passes
      [~use_headroom:true] to spend the reserve it exists for.  Returns
      the host index without committing. *)

  val commit : t -> int -> units:int -> group:int option -> unit

  val release : t -> int -> units:int -> group:int option -> unit
  (** [release] assumes at most one member of a group per host — which
      [choose] enforced on the way in. *)

  val shrink : t -> int -> units:int -> unit
  (** Reduce a host's used units without unplacing anything — the
      accounting half of ballooning a resident VM down under overload. *)

  val consolidation : t -> float
  (** Placed VMs per host actually holding at least one VM (the live
      analogue of {!consolidation_ratio}, E9's headline number). *)
end

val sort_decreasing : vm_req list -> vm_req list
(** FFD admission order: by cpu then memory, largest first, VM name as
    the deterministic tiebreak. *)

type cost_report = {
  unconsolidated_hosts : int;  (** one VM per host *)
  consolidated_hosts : int;
  watts_before : float;
  watts_after : float;
  annual_kwh_saved : float;
  annual_euro_saved : float;
  euro_saved_per_displaced_server : float;
}

val cost_savings :
  host_spec -> vm_req list -> plan -> ?euro_per_kwh:float -> ?cooling_overhead:float ->
  unit -> cost_report
(** Power model: each powered-on host draws [watts_idle] plus
    [watts_per_core × busy-cores]; consolidation removes idle draw of
    displaced hosts.  [cooling_overhead] multiplies IT power (default
    0.6 — cooling adds 60%).  Default electricity price 0.12 €/kWh. *)
