(** vCPU scheduler interface.

    The hypervisor drives whichever policy is plugged in through this
    record of operations.  Implementations: {!Round_robin} (baseline),
    {!Credit} (Xen-style proportional share with I/O boost), {!Bvt}
    (borrowed virtual time). *)

type note =
  | N_wake of { boosted : bool }  (** a blocked vCPU became runnable *)
  | N_refill  (** credit scheduler granted a new accounting period *)
  | N_clamp  (** BVT clamped a waker's vruntime to the queue minimum *)

type hook = Vcpu.t option -> note -> unit
(** Observer for scheduler-internal decisions ([None] = not tied to one
    vCPU, e.g. a global refill).  Installed by {!Hypervisor.set_trace};
    must not mutate scheduler or vCPU state. *)

type t = {
  name : string;
  enqueue : Vcpu.t -> unit;
      (** register a runnable vCPU (first time or after wake) *)
  requeue : Vcpu.t -> unit;
      (** the vCPU used its slice but is still runnable *)
  wake : Vcpu.t -> unit;
      (** a blocked vCPU became runnable (its [boosted] flag tells the
          policy whether it was an I/O wake) *)
  remove : Vcpu.t -> unit;  (** halted or migrated away *)
  pick : now:int64 -> (Vcpu.t * int) option;
      (** choose the next vCPU and its slice in cycles; [None] = idle *)
  charge : Vcpu.t -> used:int -> now:int64 -> unit;
      (** account consumed cycles after running *)
  next_release : now:int64 -> int64 option;
      (** when a policy is holding runnable work back (CPU caps), the
          earliest time it will release some — lets an idle host sleep
          to that point instead of deadlocking *)
  mutable notify : hook option;
      (** per-scheduler observer the policy's closures read on each
          decision; [None] (the default) costs one field load per
          event.  This is a field of the scheduler record — never a
          cell shared between schedulers — so two live hypervisors in
          one process (or on two domains) cannot cross-talk trace
          events. *)
}

val tell : hook option -> Vcpu.t option -> note -> unit
(** Invoke the installed hook, if any (helper for policy
    implementations; pass the current [t.notify]). *)

val default_slice : int
(** 100k cycles — the time quantum baseline policies use. *)
