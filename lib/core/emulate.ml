open Velum_isa
open Velum_machine

type action = Resume | Yielded | Became_blocked | Vcpu_halted

let cow_copy_cycles = Arch.page_size / 8 * 2

let trace_event (vm : Vm.t) ~now ev =
  match vm.Vm.trace with
  | Some tr -> Trace.record tr ~vm_id:vm.Vm.id ~name:vm.Vm.name ~at:now ev
  | None -> ()

let charge ?(detail = 0L) (vm : Vm.t) (vcpu : Vcpu.t) ~now kind cycles =
  vcpu.Vcpu.vmm_cycles <- Int64.add vcpu.Vcpu.vmm_cycles (Int64.of_int cycles);
  Monitor.bump vm.Vm.monitor kind;
  Monitor.add_cycles vm.Vm.monitor kind cycles;
  trace_event vm ~now (Trace.Exit { kind; cost = cycles; detail })

let ext_irq_pending (vm : Vm.t) =
  Bus.pending_irq vm.Vm.bus || vm.Vm.event_pending

(* The cost of getting from the guest's sensitive instruction into VMM
   code and back.  Under trap-and-emulate this is a full world switch.
   Under binary translation, a sensitive site is translated once (and
   remembered by guest PC); afterwards the translated sequence emulates
   inline at a fraction of the cost.  Device accesses and hidden page
   faults don't go through here — they are real exits in both modes. *)
let world_switch_cost (vm : Vm.t) (vcpu : Vcpu.t) ~now =
  let cost = vm.Vm.host.Host.cost in
  match vm.Vm.exec_mode with
  | Vm.Trap_emulate -> cost.Cost_model.vmexit
  | Vm.Binary_translation ->
      let pc = vcpu.Vcpu.state.Cpu.pc in
      if Hashtbl.mem vm.Vm.bt_cache pc then cost.Cost_model.bt_exec
      else begin
        Hashtbl.replace vm.Vm.bt_cache pc ();
        Monitor.bump vm.Vm.monitor Monitor.E_bt_translate;
        Monitor.add_cycles vm.Vm.monitor Monitor.E_bt_translate
          cost.Cost_model.bt_translate;
        trace_event vm ~now
          (Trace.Exit
             {
               kind = Monitor.E_bt_translate;
               cost = cost.Cost_model.bt_translate;
               detail = pc;
             });
        cost.Cost_model.bt_translate
      end

let irq_deliverable (vm : Vm.t) (vcpu : Vcpu.t) ~now =
  Cpu.interrupt_pending vcpu.Vcpu.state ~now ~ext_irq:(ext_irq_pending vm) <> None

let maybe_inject_irq (vm : Vm.t) ~vcpu_idx ~now =
  let vcpu = vm.Vm.vcpus.(vcpu_idx) in
  match Cpu.interrupt_pending vcpu.Vcpu.state ~now ~ext_irq:(ext_irq_pending vm) with
  | Some cause ->
      Cpu.deliver_trap vcpu.Vcpu.state ~cause ~tval:0L;
      let cost = vm.Vm.host.Host.cost.Cost_model.irq_inject in
      vcpu.Vcpu.vmm_cycles <- Int64.add vcpu.Vcpu.vmm_cycles (Int64.of_int cost);
      Monitor.irq_injected vm.Vm.monitor;
      trace_event vm ~now (Trace.Irq_inject { cost });
      true
  | None -> false

(* Reflect a trap into the guest: architectural trap entry on the
   virtual state.  BT translates the trapping site (e.g. the ecall) into
   a direct jump to the guest handler, so reflection gets cheap once the
   site is hot. *)
let reflect (vm : Vm.t) (vcpu : Vcpu.t) ~now kind ~cause ~tval =
  let cost = vm.Vm.host.Host.cost in
  let switch = world_switch_cost vm vcpu ~now in
  Cpu.deliver_trap vcpu.Vcpu.state ~cause ~tval;
  charge vm vcpu ~now ~detail:tval kind (switch + cost.Cost_model.emul_instr)

(* Virtual CSR semantics. *)
let vcsr_read (vm : Vm.t) (vcpu : Vcpu.t) ~now csr =
  let s = vcpu.Vcpu.state in
  match csr with
  | Arch.Time -> now
  | Arch.Vmid -> Int64.of_int (vm.Vm.id + 1)
  | Arch.Sip ->
      let v =
        if Cpu.timer_pending s ~now then
          Velum_util.Bitops.set_bit 0L Arch.irq_timer true
        else 0L
      in
      if ext_irq_pending vm then Velum_util.Bitops.set_bit v Arch.irq_external true else v
  | c -> Cpu.get_csr s c

let illegal_of insn = Instr.encode insn

let handle_privileged (vm : Vm.t) ~vcpu_idx ~now insn =
  let vcpu = vm.Vm.vcpus.(vcpu_idx) in
  let s = vcpu.Vcpu.state in
  let cost = vm.Vm.host.Host.cost in
  let base = world_switch_cost vm vcpu ~now + cost.Cost_model.emul_instr in
  let done_ ?detail kind extra =
    Cpu.advance_pc s;
    charge vm vcpu ~now ?detail kind (base + extra);
    Resume
  in
  if s.Cpu.mode = Arch.User then begin
    (* The virtual machine's *user* code ran a privileged instruction:
       the guest kernel gets the illegal-instruction trap. *)
    reflect vm vcpu ~now Monitor.E_guest_trap ~cause:Arch.Illegal_instruction
      ~tval:(illegal_of insn);
    Resume
  end
  else
    match insn with
    | Instr.Csrr (rd, csr) ->
        Cpu.set_reg s rd (vcsr_read vm vcpu ~now csr);
        done_ Monitor.E_csr 0
    | Instr.Csrw (csr, rs1) ->
        if Arch.csr_read_only csr then begin
          reflect vm vcpu ~now Monitor.E_guest_trap ~cause:Arch.Illegal_instruction
            ~tval:(illegal_of insn);
          Resume
        end
        else begin
          Cpu.set_csr s csr (Cpu.get_reg s rs1);
          if csr = Arch.Satp then Vm.flush_vcpu_tlb vm ~vcpu_idx;
          done_ Monitor.E_csr 0
        end
    | Instr.Sret ->
        Cpu.apply_sret s;
        charge vm vcpu ~now Monitor.E_sret base;
        Resume
    | Instr.Sfence ->
        Vm.flush_vcpu_tlb vm ~vcpu_idx;
        done_ Monitor.E_sfence 0
    | Instr.Wfi ->
        Cpu.advance_pc s;
        charge vm vcpu ~now Monitor.E_wfi base;
        if irq_deliverable vm vcpu ~now then Resume
        else begin
          Vcpu.block vcpu;
          Became_blocked
        end
    | Instr.In (rd, port) ->
        let v =
          if port = Velum_devices.Uart.data_port then
            Velum_devices.Uart.read_reg vm.Vm.uart Velum_devices.Uart.reg_data
          else if port = Velum_devices.Uart.status_port then
            Velum_devices.Uart.read_reg vm.Vm.uart Velum_devices.Uart.reg_status
          else 0L
        in
        Cpu.set_reg s rd v;
        trace_event vm ~now
          (Trace.Device_io { write = false; addr = Int64.of_int port });
        done_ ~detail:(Int64.of_int port) Monitor.E_port_io cost.Cost_model.port_io
    | Instr.Out (port, rs1) ->
        if port = Velum_devices.Uart.data_port then
          Velum_devices.Uart.write_reg vm.Vm.uart Velum_devices.Uart.reg_data
            (Cpu.get_reg s rs1);
        trace_event vm ~now
          (Trace.Device_io { write = true; addr = Int64.of_int port });
        done_ ~detail:(Int64.of_int port) Monitor.E_port_io cost.Cost_model.port_io
    | Instr.Halt ->
        vcpu.Vcpu.runstate <- Vcpu.Halted;
        charge vm vcpu ~now Monitor.E_halt base;
        Vcpu_halted
    | _ ->
        (* Non-privileged instructions never exit as X_privileged. *)
        assert false

(* Emulate the MMIO access of the instruction at the guest PC (shadow
   paging funnels device touches through page faults). *)
let emulate_mmio_insn (vm : Vm.t) ~vcpu_idx ~now ~gpa =
  let vcpu = vm.Vm.vcpus.(vcpu_idx) in
  let s = vcpu.Vcpu.state in
  let cost = vm.Vm.host.Host.cost in
  Bus.tick vm.Vm.bus now;
  match Option.bind (Vm.read_guest_va vm ~vcpu_idx s.Cpu.pc) Instr.decode with
  | Some (Instr.Load { rd; width; _ }) ->
      let v = Option.value (Bus.read vm.Vm.bus gpa width) ~default:0L in
      Cpu.set_reg s rd v;
      Cpu.advance_pc s;
      trace_event vm ~now (Trace.Device_io { write = false; addr = gpa });
      charge vm vcpu ~now ~detail:gpa Monitor.E_mmio
        (cost.Cost_model.vmexit + cost.Cost_model.emul_instr + cost.Cost_model.mmio_device);
      Resume
  | Some (Instr.Store { src; width; _ }) ->
      ignore (Bus.write vm.Vm.bus gpa width (Cpu.get_reg s src));
      Cpu.advance_pc s;
      trace_event vm ~now (Trace.Device_io { write = true; addr = gpa });
      charge vm vcpu ~now ~detail:gpa Monitor.E_mmio
        (cost.Cost_model.vmexit + cost.Cost_model.emul_instr + cost.Cost_model.mmio_device);
      Resume
  | Some _ | None ->
      reflect vm vcpu ~now Monitor.E_guest_trap ~cause:Arch.Load_access_fault ~tval:gpa;
      Resume

(* Host-level page-fault service: the guest never sees these. *)
let handle_host_fault (vm : Vm.t) ~vcpu_idx ~now ~gfn ~access =
  let vcpu = vm.Vm.vcpus.(vcpu_idx) in
  let cost = vm.Vm.host.Host.cost in
  let base = cost.Cost_model.vmexit in
  if gfn < 0L then begin
    charge vm vcpu ~now Monitor.E_shadow_fill base;
    Resume
  end
  else
    match P2m.get vm.Vm.p2m gfn with
    | P2m.Swapped _ -> (
        match Vm.resolve_read vm gfn with
        | Some _ ->
            Vm.flush_all_tlbs vm;
            charge vm vcpu ~now ~detail:gfn Monitor.E_swap_in (base + Host.swap_cost_cycles);
            Resume
        | None ->
            reflect vm vcpu ~now Monitor.E_guest_trap ~cause:Arch.Load_access_fault
              ~tval:0L;
            Resume)
    | P2m.Remote -> (
        match Vm.resolve_read vm gfn with
        | Some _ ->
            Vm.flush_all_tlbs vm;
            charge vm vcpu ~now ~detail:gfn Monitor.E_remote_fetch
              (base + vm.Vm.remote_fault_cycles);
            Resume
        | None ->
            reflect vm vcpu ~now Monitor.E_guest_trap ~cause:Arch.Load_access_fault
              ~tval:0L;
            Resume)
    | P2m.Present { writable = false; cow = true; _ } ->
        ignore (Vm.resolve_write vm gfn);
        charge vm vcpu ~now ~detail:gfn Monitor.E_cow_break (base + cow_copy_cycles);
        Resume
    | P2m.Present { writable = false; cow = false; _ } when access = Arch.Store ->
        ignore (Vm.resolve_write vm gfn);
        Vm.flush_all_tlbs vm;
        charge vm vcpu ~now ~detail:gfn Monitor.E_dirty_log
          (base + vm.Vm.host.Host.cost.Cost_model.emul_instr);
        Resume
    | P2m.Present { cow = true; _ } when access = Arch.Store ->
        ignore (Vm.resolve_write vm gfn);
        charge vm vcpu ~now ~detail:gfn Monitor.E_cow_break (base + cow_copy_cycles);
        Resume
    | P2m.Present _ ->
        (* Spurious (already repaired); resume and retry. *)
        charge vm vcpu ~now Monitor.E_shadow_fill base;
        Resume
    | P2m.Ballooned | P2m.Absent ->
        let cause =
          match access with
          | Arch.Fetch -> Arch.Fetch_access_fault
          | Arch.Load -> Arch.Load_access_fault
          | Arch.Store -> Arch.Store_access_fault
        in
        reflect vm vcpu ~now Monitor.E_guest_trap ~cause ~tval:0L;
        Resume

let guest_page_fault_cause access =
  match access with
  | Arch.Fetch -> Arch.Fetch_page_fault
  | Arch.Load -> Arch.Load_page_fault
  | Arch.Store -> Arch.Store_page_fault

let handle_page_fault (vm : Vm.t) ~vcpu_idx ~now ~access ~va =
  let vcpu = vm.Vm.vcpus.(vcpu_idx) in
  let s = vcpu.Vcpu.state in
  let cost = vm.Vm.host.Host.cost in
  let user = s.Cpu.mode = Arch.User in
  let satp = Cpu.get_csr s Arch.Satp in
  match vm.Vm.paging with
  | Vm.Shadow_paging ->
      if not (Arch.satp_enabled satp) then
        handle_host_fault vm ~vcpu_idx ~now
          ~gfn:(Int64.shift_right_logical va Arch.page_shift) ~access
      else begin
        let shadow = Option.get vm.Vm.shadow in
        let result =
          Shadow.handle_fault shadow ~root_gfn:(Arch.satp_root_ppn satp) ~access ~user ~va
        in
        if Shadow.take_tlb_flush shadow then Vm.flush_all_tlbs vm;
        match result with
        | Shadow.Filled { cycles } ->
            charge vm vcpu ~now ~detail:va Monitor.E_shadow_fill
              (cost.Cost_model.vmexit + cycles);
            Resume
        | Shadow.Guest_fault ->
            reflect vm vcpu ~now Monitor.E_guest_page_fault
              ~cause:(guest_page_fault_cause access) ~tval:va;
            Resume
        | Shadow.Target_mmio { gpa } -> emulate_mmio_insn vm ~vcpu_idx ~now ~gpa
        | Shadow.Pt_write { gpa } -> (
            (* Decode the trapped store and apply it to both trees. *)
            match Option.bind (Vm.read_guest_va vm ~vcpu_idx s.Cpu.pc) Instr.decode with
            | Some (Instr.Store { src; width = Instr.W64; _ }) ->
                (* adaptive BT retranslates hot PT-write sites so later
                   updates skip the hardware fault *)
                let switch = world_switch_cost vm vcpu ~now in
                ignore (Shadow.emulate_pt_write shadow ~gpa ~value:(Cpu.get_reg s src));
                if Shadow.take_tlb_flush shadow then Vm.flush_all_tlbs vm;
                Cpu.advance_pc s;
                charge vm vcpu ~now ~detail:gpa Monitor.E_pt_write
                  (switch + (2 * cost.Cost_model.emul_instr));
                Resume
            | Some _ | None ->
                (* A sub-word store to a page-table page; reflect it as a
                   fault rather than guessing. *)
                reflect vm vcpu ~now Monitor.E_guest_page_fault
                  ~cause:(guest_page_fault_cause access) ~tval:va;
                Resume)
        | Shadow.Bad_gpa ->
            let cause =
              match access with
              | Arch.Fetch -> Arch.Fetch_access_fault
              | Arch.Load -> Arch.Load_access_fault
              | Arch.Store -> Arch.Store_access_fault
            in
            reflect vm vcpu ~now Monitor.E_guest_trap ~cause ~tval:va;
            Resume
      end
  | Vm.Nested_paging -> (
      let nested = Option.get vm.Vm.nested in
      match Nested.classify_fault nested ~guest_satp:satp ~access ~user ~va with
      | Nested.Guest_level ->
          reflect vm vcpu ~now Monitor.E_guest_page_fault
            ~cause:(guest_page_fault_cause access) ~tval:va;
          Resume
      | Nested.Host_level { gfn } -> handle_host_fault vm ~vcpu_idx ~now ~gfn ~access
      | Nested.Mmio { gpa } -> emulate_mmio_insn vm ~vcpu_idx ~now ~gpa
      | Nested.Bad { gpa = _ } ->
          let cause =
            match access with
            | Arch.Fetch -> Arch.Fetch_access_fault
            | Arch.Load -> Arch.Load_access_fault
            | Arch.Store -> Arch.Store_access_fault
          in
          reflect vm vcpu ~now Monitor.E_guest_trap ~cause ~tval:va;
          Resume)

let handle_exit (vm : Vm.t) ~vcpu_idx ~now exit_ =
  let vcpu = vm.Vm.vcpus.(vcpu_idx) in
  let s = vcpu.Vcpu.state in
  let cost = vm.Vm.host.Host.cost in
  match exit_ with
  | Cpu.X_privileged insn -> handle_privileged vm ~vcpu_idx ~now insn
  | Cpu.X_trap { cause; tval } ->
      reflect vm vcpu ~now Monitor.E_guest_trap ~cause ~tval;
      Resume
  | Cpu.X_page_fault { access; va } -> handle_page_fault vm ~vcpu_idx ~now ~access ~va
  | Cpu.X_mmio_load { rd; pa; width } ->
      Bus.tick vm.Vm.bus now;
      let v = Option.value (Bus.read vm.Vm.bus pa width) ~default:0L in
      Cpu.set_reg s rd v;
      Cpu.advance_pc s;
      trace_event vm ~now (Trace.Device_io { write = false; addr = pa });
      charge vm vcpu ~now ~detail:pa Monitor.E_mmio
        (cost.Cost_model.vmexit + cost.Cost_model.mmio_device);
      Resume
  | Cpu.X_mmio_store { pa; width; value } ->
      Bus.tick vm.Vm.bus now;
      ignore (Bus.write vm.Vm.bus pa width value);
      Cpu.advance_pc s;
      trace_event vm ~now (Trace.Device_io { write = true; addr = pa });
      charge vm vcpu ~now ~detail:pa Monitor.E_mmio
        (cost.Cost_model.vmexit + cost.Cost_model.mmio_device);
      Resume
  | Cpu.X_hypercall ->
      if s.Cpu.mode = Arch.User then begin
        (* hypercalls are a kernel interface: reflect an illegal
           instruction into the guest rather than letting user code
           balloon pages or rewrite page tables *)
        reflect vm vcpu ~now Monitor.E_guest_trap ~cause:Arch.Illegal_instruction
          ~tval:(Instr.encode Instr.Hcall);
        Resume
      end
      else begin
        let num = Cpu.get_reg s 1 in
        let action = Hypercall.dispatch vm ~vcpu_idx ~now in
        trace_event vm ~now (Trace.Hypercall { num });
        charge vm vcpu ~now ~detail:num Monitor.E_hypercall cost.Cost_model.hypercall;
        match action with
        | Hypercall.Continue -> Resume
        | Hypercall.Yield_cpu -> Yielded
      end
