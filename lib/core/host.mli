(** Host machine resources shared by the hypervisor's subsystems: machine
    memory, the frame allocator, the cost model, and a swap area.

    Swap models a host-level paging device: slot granularity is one
    frame, and each transfer has a large fixed latency —
    {!swap_cost_cycles} — so hypervisor swapping is visibly worse than
    ballooning in the overcommit experiments, as in the ESX memory
    paper. *)

open Velum_machine

type t = {
  mem : Phys_mem.t;
  alloc : Frame_alloc.t;
  cost : Cost_model.t;
  default_engine : Engine.kind;
      (** execution engine VMs on this host use unless overridden at
          {!Hypervisor.create_vm} time *)
  mutable swap : Bytes.t option array;  (** slot → parked frame image *)
  mutable swap_free : int list;
      (** free-slot free-list (LIFO), so {!swap_out} allocates in O(1)
          instead of rescanning the array — swap-out sits on the
          overcommit hot path *)
  mutable swap_ins : int;
  mutable swap_outs : int;
}

val create :
  ?frames:int -> ?cost:Cost_model.t -> ?swap_slots:int -> ?engine:Engine.kind -> unit -> t
(** Default: 16384 frames (64 MiB), 4096 swap slots, interpreter
    engine. *)

val swap_cost_cycles : int
(** Cycles charged per swap transfer (~a disk access). *)

val swap_out : t -> ppn:int64 -> int
(** [swap_out t ~ppn] copies the frame into a free slot (popped from the
    free-list in O(1)) and returns it (the frame itself is {e not} freed
    — the caller owns that).

    @raise Failure when swap is full. *)

val swap_in : t -> slot:int -> ppn:int64 -> unit
(** [swap_in t ~slot ~ppn] restores a slot into the given frame and frees
    the slot.

    @raise Invalid_argument if the slot is empty. *)

val free_swap_slots : t -> int
