open Velum_isa
open Velum_machine
open Velum_devices

let log_src = Logs.Src.create "velum.migrate" ~doc:"live migration"

module Log = (val Logs.src_log log_src)

type result = {
  total_cycles : int64;
  downtime_cycles : int64;
  pages_sent : int;
  bytes_sent : int;
  rounds : int;
  remote_faults : int;
}

let page_wire_bytes = Arch.page_size + 16
let zero_page_wire_bytes = 24 (* header + "all zero" marker *)
let vcpu_state_bytes = 1024

(* Wire footprint of a page set, optionally eliding zero pages. *)
let wire_bytes ~compress (vm : Vm.t) gfns =
  if not compress then List.length gfns * page_wire_bytes
  else
    List.fold_left
      (fun acc gfn ->
        match Vm.resolve_read vm gfn with
        | Some ppn when Phys_mem.frame_is_zero vm.Vm.host.Host.mem ~ppn ->
            acc + zero_page_wire_bytes
        | _ -> acc + page_wire_bytes)
      0 gfns

let copy_vcpu_state ~(src : Vcpu.t) ~(dst : Vcpu.t) =
  let s = src.Vcpu.state and d = dst.Vcpu.state in
  Array.blit s.Cpu.regs 0 d.Cpu.regs 0 (Array.length s.Cpu.regs);
  Array.blit s.Cpu.csrs 0 d.Cpu.csrs 0 (Array.length s.Cpu.csrs);
  d.Cpu.pc <- s.Cpu.pc;
  d.Cpu.mode <- s.Cpu.mode;
  d.Cpu.halted <- s.Cpu.halted;
  d.Cpu.waiting <- s.Cpu.waiting;
  d.Cpu.instret <- s.Cpu.instret;
  dst.Vcpu.runstate <- src.Vcpu.runstate

(* Create the destination twin (same shape, unpopulated p2m). *)
let make_twin ~(dst : Hypervisor.t) ~(vm : Vm.t) =
  Hypervisor.create_vm dst ~name:vm.Vm.name ~mem_frames:(Vm.mem_frames vm)
    ~vcpu_count:(Array.length vm.Vm.vcpus) ~paging:vm.Vm.paging ~pv:vm.Vm.pv
    ~exec_mode:vm.Vm.exec_mode ~engine:(Vm.engine_kind vm) ~populate:false ~entry:0L ()

(* Copy one page's current contents source→destination memory. *)
let copy_page ~(vm : Vm.t) ~(twin : Vm.t) gfn =
  match Vm.resolve_read vm gfn with
  | None -> false
  | Some src_ppn -> (
      let dst_ppn =
        match P2m.get twin.Vm.p2m gfn with
        | P2m.Present { hpa_ppn; _ } -> Some hpa_ppn
        | _ -> (
            match Frame_alloc.alloc twin.Vm.host.Host.alloc with
            | Some ppn ->
                P2m.set twin.Vm.p2m gfn
                  (P2m.Present { hpa_ppn = ppn; writable = true; cow = false });
                Some ppn
            | None -> None)
      in
      match dst_ppn with
      | None -> false
      | Some dst_ppn ->
          Phys_mem.blit_between ~src:vm.Vm.host.Host.mem ~src_ppn
            ~dst:twin.Vm.host.Host.mem ~dst_ppn;
          true)

let present_gfns (vm : Vm.t) =
  P2m.fold_present vm.Vm.p2m ~init:[] ~f:(fun acc ~gfn ~hpa_ppn:_ -> gfn :: acc)
  |> List.rev

let finish ~src ~vm ~(twin : Vm.t) =
  (* The source instance is gone; its frames return to the source host. *)
  Hypervisor.remove_vm src vm;
  (* Destination vCPUs may be runnable now — make sure the scheduler
     sees them. *)
  Array.iter
    (fun vcpu -> if Vcpu.is_runnable vcpu then vcpu.Vcpu.runstate <- Vcpu.Runnable)
    twin.Vm.vcpus

let transfer_pages_cycles link n =
  Link.transfer_cycles link ~bytes:(n * page_wire_bytes)

let stop_and_copy ?(compress = false) ~src ~dst ~vm ~link () =
  let twin = make_twin ~dst ~vm in
  let gfns = present_gfns vm in
  let bytes = wire_bytes ~compress vm gfns + vcpu_state_bytes in
  List.iter (fun gfn -> ignore (copy_page ~vm ~twin gfn)) gfns;
  Array.iteri
    (fun i vcpu -> copy_vcpu_state ~src:vcpu ~dst:twin.Vm.vcpus.(i))
    vm.Vm.vcpus;
  let pages = List.length gfns in
  let cycles = Int64.of_int (Link.transfer_cycles link ~bytes) in
  finish ~src ~vm ~twin;
  ( twin,
    {
      total_cycles = cycles;
      downtime_cycles = cycles;
      pages_sent = pages;
      bytes_sent = bytes;
      rounds = 1;
      remote_faults = 0;
    } )

let precopy ?(compress = false) ~src ~dst ~vm ~link ?(max_rounds = 8)
    ?(stop_threshold = 64) () =
  let twin = make_twin ~dst ~vm in
  Vm.start_dirty_logging vm;
  let total = ref 0L in
  let pages = ref 0 in
  let bytes_total = ref 0 in
  let rounds = ref 0 in
  let rec round to_send prev_count =
    incr rounds;
    Log.debug (fun m ->
        m "precopy %s: round %d, %d pages" vm.Vm.name !rounds (List.length to_send));
    let round_bytes = wire_bytes ~compress vm to_send in
    bytes_total := !bytes_total + round_bytes;
    List.iter (fun gfn -> ignore (copy_page ~vm ~twin gfn)) to_send;
    let n = List.length to_send in
    pages := !pages + n;
    let cycles = Link.transfer_cycles link ~bytes:round_bytes in
    ignore (transfer_pages_cycles link n);
    total := Int64.add !total (Int64.of_int cycles);
    (* The guest executes on the source while this round is on the
       wire, dirtying pages that the next round must re-send. *)
    Hypervisor.run_vm src vm ~cycles:(Int64.of_int cycles);
    let dirty = Vm.collect_dirty vm ~clear:false in
    (* Re-arm write protection for the next epoch (clears the bitmap). *)
    Vm.start_dirty_logging vm;
    let count = List.length dirty in
    if count = 0 then []
    else if !rounds >= max_rounds || count <= stop_threshold || count >= prev_count then
      dirty (* freeze and send the residue *)
    else round dirty count
  in
  let residue = round (present_gfns vm) max_int in
  (* Stop phase: guest frozen, send the residual dirty set + vCPU state. *)
  let residue_bytes = wire_bytes ~compress vm residue + vcpu_state_bytes in
  bytes_total := !bytes_total + residue_bytes;
  List.iter (fun gfn -> ignore (copy_page ~vm ~twin gfn)) residue;
  let n = List.length residue in
  pages := !pages + n;
  let downtime = Int64.of_int (Link.transfer_cycles link ~bytes:residue_bytes) in
  total := Int64.add !total downtime;
  Vm.stop_dirty_logging vm;
  Array.iteri
    (fun i vcpu -> copy_vcpu_state ~src:vcpu ~dst:twin.Vm.vcpus.(i))
    vm.Vm.vcpus;
  finish ~src ~vm ~twin;
  ( twin,
    {
      total_cycles = !total;
      downtime_cycles = downtime;
      pages_sent = !pages;
      bytes_sent = !bytes_total;
      rounds = !rounds;
      remote_faults = 0;
    } )

let postcopy ~src ~dst ~vm ~link ?(push_batch = 32) () =
  let twin = make_twin ~dst ~vm in
  (* Freeze: ship only the vCPU state; every present page becomes Remote
     on the destination. *)
  let downtime = Int64.of_int (Link.transfer_cycles link ~bytes:vcpu_state_bytes) in
  let gfns = present_gfns vm in
  List.iter (fun gfn -> P2m.set twin.Vm.p2m gfn P2m.Remote) gfns;
  Array.iteri
    (fun i vcpu -> copy_vcpu_state ~src:vcpu ~dst:twin.Vm.vcpus.(i))
    vm.Vm.vcpus;
  let pulled = ref 0 in
  twin.Vm.remote_fetch <-
    Some
      (fun gfn ->
        match Vm.resolve_read vm gfn with
        | Some src_ppn ->
            incr pulled;
            Some (Phys_mem.frame_read vm.Vm.host.Host.mem ~ppn:src_ppn)
        | None -> None);
  (* A demand fetch pays a full network round trip plus the page. *)
  twin.Vm.remote_fault_cycles <-
    (2 * Link.latency_cycles link) + Link.transfer_cycles link ~bytes:page_wire_bytes;
  let total = ref downtime in
  (* Background push: run the guest on the destination for the time one
     batch occupies the wire, then mark the batch resident. *)
  let remote_left () =
    P2m.count twin.Vm.p2m ~f:(function P2m.Remote -> true | _ -> false)
  in
  let rec push () =
    if remote_left () > 0 && not (Vm.halted twin) then begin
      let batch = ref [] in
      (try
         P2m.iter twin.Vm.p2m ~f:(fun ~gfn entry ->
             if List.length !batch >= push_batch then raise Exit;
             match entry with P2m.Remote -> batch := gfn :: !batch | _ -> ())
       with Exit -> ());
      let cycles = transfer_pages_cycles link (List.length !batch) in
      total := Int64.add !total (Int64.of_int cycles);
      Hypervisor.run_vm dst twin ~cycles:(Int64.of_int cycles);
      (* Whatever is still remote from this batch arrives now. *)
      List.iter
        (fun gfn ->
          match P2m.get twin.Vm.p2m gfn with
          | P2m.Remote -> ignore (Vm.resolve_read twin gfn)
          | _ -> ())
        !batch;
      push ()
    end
  in
  push ();
  let faults = Monitor.count twin.Vm.monitor Monitor.E_remote_fetch in
  twin.Vm.remote_fetch <- None;
  let pages = !pulled in
  finish ~src ~vm ~twin;
  ( twin,
    {
      total_cycles = !total;
      downtime_cycles = downtime;
      pages_sent = pages;
      bytes_sent = pages * page_wire_bytes;
      rounds = 1;
      remote_faults = faults;
    } )
