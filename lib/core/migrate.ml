open Velum_isa
open Velum_machine
open Velum_devices

let log_src = Logs.Src.create "velum.migrate" ~doc:"live migration"

module Log = (val Logs.src_log log_src)

module Fault = Velum_util.Fault
module Fnv = Velum_util.Fnv

type result = {
  total_cycles : int64;
  downtime_cycles : int64;
  pages_sent : int;
  bytes_sent : int;
  rounds : int;
  remote_faults : int;
  retransmits : int;
  aborted : bool;
}

let page_wire_bytes = Arch.page_size + 16
let zero_page_wire_bytes = 24 (* header + "all zero" marker *)
let vcpu_state_bytes = 1024

(* Wire footprint of a page set, optionally eliding zero pages. *)
let wire_bytes ~compress (vm : Vm.t) gfns =
  if not compress then List.length gfns * page_wire_bytes
  else
    List.fold_left
      (fun acc gfn ->
        match Vm.resolve_read vm gfn with
        | Some ppn when Phys_mem.frame_is_zero vm.Vm.host.Host.mem ~ppn ->
            acc + zero_page_wire_bytes
        | _ -> acc + page_wire_bytes)
      0 gfns

let copy_vcpu_state ~(src : Vcpu.t) ~(dst : Vcpu.t) =
  let s = src.Vcpu.state and d = dst.Vcpu.state in
  Array.blit s.Cpu.regs 0 d.Cpu.regs 0 (Array.length s.Cpu.regs);
  Array.blit s.Cpu.csrs 0 d.Cpu.csrs 0 (Array.length s.Cpu.csrs);
  d.Cpu.pc <- s.Cpu.pc;
  d.Cpu.mode <- s.Cpu.mode;
  d.Cpu.halted <- s.Cpu.halted;
  d.Cpu.waiting <- s.Cpu.waiting;
  d.Cpu.instret <- s.Cpu.instret;
  dst.Vcpu.runstate <- src.Vcpu.runstate

(* Create the destination twin (same shape, unpopulated p2m). *)
let make_twin ~(dst : Hypervisor.t) ~(vm : Vm.t) =
  Hypervisor.create_vm dst ~name:vm.Vm.name ~mem_frames:(Vm.mem_frames vm)
    ~vcpu_count:(Array.length vm.Vm.vcpus) ~paging:vm.Vm.paging ~pv:vm.Vm.pv
    ~exec_mode:vm.Vm.exec_mode ~engine:(Vm.engine_kind vm) ~populate:false ~entry:0L ()

(* Copy one page's current contents source→destination memory. *)
let copy_page ~(vm : Vm.t) ~(twin : Vm.t) gfn =
  match Vm.resolve_read vm gfn with
  | None -> false
  | Some src_ppn -> (
      let dst_ppn =
        match P2m.get twin.Vm.p2m gfn with
        | P2m.Present { hpa_ppn; _ } -> Some hpa_ppn
        | _ -> (
            match Frame_alloc.alloc twin.Vm.host.Host.alloc with
            | Some ppn ->
                P2m.set twin.Vm.p2m gfn
                  (P2m.Present { hpa_ppn = ppn; writable = true; cow = false });
                Some ppn
            | None -> None)
      in
      match dst_ppn with
      | None -> false
      | Some dst_ppn ->
          Phys_mem.blit_between ~src:vm.Vm.host.Host.mem ~src_ppn
            ~dst:twin.Vm.host.Host.mem ~dst_ppn;
          true)

let present_gfns (vm : Vm.t) =
  P2m.fold_present vm.Vm.p2m ~init:[] ~f:(fun acc ~gfn ~hpa_ppn:_ -> gfn :: acc)
  |> List.rev

let finish ~src ~vm ~(twin : Vm.t) =
  (* The source instance is gone; its frames return to the source host. *)
  Hypervisor.remove_vm src vm;
  (* Destination vCPUs may be runnable now — make sure the scheduler
     sees them. *)
  Array.iter
    (fun vcpu -> if Vcpu.is_runnable vcpu then vcpu.Vcpu.runstate <- Vcpu.Runnable)
    twin.Vm.vcpus

let transfer_pages_cycles link n =
  Link.transfer_cycles link ~bytes:(n * page_wire_bytes)

(* ---- reliable transfer (used when a fault plan is active) ----

   Each page travels as one frame: [seq:8][body][fnv1a-checksum:8], the
   checksum covering everything before it.  The receiver NACKs frames
   whose checksum fails and dedups by sequence number (retransmits reuse
   the page's seq, so a delayed original and its retransmit cannot both
   apply).  The sender retries on timeout/NACK with exponential backoff,
   bounded by [max_attempts]; exhaustion aborts the migration. *)

exception Abort_migration of string

type xfer = {
  x_link : Link.t;
  x_faults : Fault.t;
  mutable x_clock : int64; (* cumulative wire time of this migration *)
  mutable x_retx : int;
  mutable x_bytes : int;
  x_seen : (int, unit) Hashtbl.t; (* receiver-side dedup by seq *)
  mutable x_next_seq : int;
  x_max_attempts : int;
}

let make_xfer ~link ~faults =
  {
    x_link = link;
    x_faults = faults;
    x_clock = 0L;
    x_retx = 0;
    x_bytes = 0;
    x_seen = Hashtbl.create 1024;
    x_next_seq = 0;
    x_max_attempts = 8;
  }

let frame_of ~seq body =
  let n = Bytes.length body in
  let b = Bytes.create (n + 16) in
  Bytes.set_int64_le b 0 (Int64.of_int seq);
  Bytes.blit body 0 b 8 n;
  Bytes.set_int64_le b (n + 8) (Fnv.hash_bytes ~pos:0 ~len:(n + 8) b);
  Bytes.to_string b

(* [None] = corrupted (checksum mismatch); [Some seq] otherwise. *)
let decode_frame s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  if n < 16 then None
  else if Bytes.get_int64_le b (n - 8) <> Fnv.hash_bytes ~pos:0 ~len:(n - 8) b then
    None
  else Some (Int64.to_int (Bytes.get_int64_le b 0))

let backoff_cycles x n =
  let base = max 64 (Link.latency_cycles x.x_link / 2) in
  min (base * (1 lsl min (n - 1) 8)) (base * 256)

(* Push one body through the link until the receiver has it, advancing
   the migration clock by the real wire time, ack latencies, and any
   backoff waits.  @raise Abort_migration when attempts exhaust. *)
let send_reliable x ~body =
  let seq = x.x_next_seq in
  x.x_next_seq <- seq + 1;
  let frame = frame_of ~seq body in
  let len = String.length frame in
  let ack_lat = Int64.of_int (Link.latency_cycles x.x_link) in
  let rec attempt n =
    if n > x.x_max_attempts then
      raise (Abort_migration (Printf.sprintf "page seq %d: retries exhausted" seq));
    if n > 1 then x.x_retx <- x.x_retx + 1;
    x.x_bytes <- x.x_bytes + len;
    let t0 = x.x_clock in
    ignore (Link.send x.x_link ~from:`A ~now:t0 ~payload:frame);
    let expected =
      Int64.add t0 (Int64.of_int (Link.transfer_cycles x.x_link ~bytes:len))
    in
    List.iter
      (fun s ->
        match decode_frame s with
        | None -> Fault.observe x.x_faults Fault.Corrupt
        | Some seq' ->
            if Hashtbl.mem x.x_seen seq' then Fault.observe x.x_faults Fault.Duplicate
            else Hashtbl.add x.x_seen seq' ())
      (Link.poll x.x_link ~at:`B ~now:expected);
    if Hashtbl.mem x.x_seen seq then x.x_clock <- Int64.add expected ack_lat
    else begin
      (* Timeout (drop/partition/late frame) or NACK (corruption): wait
         out the ack window plus a growing backoff, then retransmit. *)
      x.x_clock <-
        Int64.add (Int64.add expected ack_lat)
          (Int64.of_int (backoff_cycles x n));
      attempt (n + 1)
    end
  in
  attempt 1

let send_page_reliable x ~vm ~twin gfn =
  match Vm.resolve_read vm gfn with
  | None -> ()
  | Some ppn ->
      send_reliable x ~body:(Phys_mem.frame_read vm.Vm.host.Host.mem ~ppn);
      ignore (copy_page ~vm ~twin gfn)

let send_vcpus_reliable x =
  send_reliable x ~body:(Bytes.make (vcpu_state_bytes - 16) 'V')

let rollback ~dst ~twin reason =
  Log.warn (fun m ->
      m "migration aborted (%s): rolling back, source resumes" reason);
  Hypervisor.remove_vm dst twin

let trace_round ~src (vm : Vm.t) ~round ~pages =
  match Hypervisor.trace src with
  | Some tr ->
      Trace.record tr ~vm_id:vm.Vm.id ~name:vm.Vm.name ~at:(Hypervisor.now src)
        (Trace.Migration_round { round; pages })
  | None -> ()

let stop_and_copy ?(compress = false) ?faults ~src ~dst ~vm ~link () =
  let faults = match faults with Some f -> f | None -> Link.faults link in
  let twin = make_twin ~dst ~vm in
  let gfns = present_gfns vm in
  if not (Fault.active faults) then begin
    let bytes = wire_bytes ~compress vm gfns + vcpu_state_bytes in
    List.iter (fun gfn -> ignore (copy_page ~vm ~twin gfn)) gfns;
    Array.iteri
      (fun i vcpu -> copy_vcpu_state ~src:vcpu ~dst:twin.Vm.vcpus.(i))
      vm.Vm.vcpus;
    let pages = List.length gfns in
    let cycles = Int64.of_int (Link.transfer_cycles link ~bytes) in
    trace_round ~src vm ~round:1 ~pages;
    finish ~src ~vm ~twin;
    ( twin,
      {
        total_cycles = cycles;
        downtime_cycles = cycles;
        pages_sent = pages;
        bytes_sent = bytes;
        rounds = 1;
        remote_faults = 0;
        retransmits = 0;
        aborted = false;
      } )
  end
  else begin
    let x = make_xfer ~link ~faults in
    let pages = ref 0 in
    try
      List.iter
        (fun gfn ->
          send_page_reliable x ~vm ~twin gfn;
          incr pages)
        gfns;
      send_vcpus_reliable x;
      Array.iteri
        (fun i vcpu -> copy_vcpu_state ~src:vcpu ~dst:twin.Vm.vcpus.(i))
        vm.Vm.vcpus;
      trace_round ~src vm ~round:1 ~pages:!pages;
      finish ~src ~vm ~twin;
      ( twin,
        {
          total_cycles = x.x_clock;
          downtime_cycles = x.x_clock;
          pages_sent = !pages;
          bytes_sent = x.x_bytes;
          rounds = 1;
          remote_faults = 0;
          retransmits = x.x_retx;
          aborted = false;
        } )
    with Abort_migration reason ->
      rollback ~dst ~twin reason;
      ( vm,
        {
          total_cycles = x.x_clock;
          downtime_cycles = 0L;
          pages_sent = !pages;
          bytes_sent = x.x_bytes;
          rounds = 1;
          remote_faults = 0;
          retransmits = x.x_retx;
          aborted = true;
        } )
  end

let precopy ?(compress = false) ?faults ?watchdog_cycles ~src ~dst ~vm ~link
    ?(max_rounds = 8) ?(stop_threshold = 64) () =
  let faults = match faults with Some f -> f | None -> Link.faults link in
  let twin = make_twin ~dst ~vm in
  if not (Fault.active faults) then begin
    Vm.start_dirty_logging vm;
    let total = ref 0L in
    let pages = ref 0 in
    let bytes_total = ref 0 in
    let rounds = ref 0 in
    let rec round to_send prev_count =
      incr rounds;
      Log.debug (fun m ->
          m "precopy %s: round %d, %d pages" vm.Vm.name !rounds (List.length to_send));
      let round_bytes = wire_bytes ~compress vm to_send in
      bytes_total := !bytes_total + round_bytes;
      List.iter (fun gfn -> ignore (copy_page ~vm ~twin gfn)) to_send;
      let n = List.length to_send in
      pages := !pages + n;
      trace_round ~src vm ~round:!rounds ~pages:n;
      let cycles = Link.transfer_cycles link ~bytes:round_bytes in
      ignore (transfer_pages_cycles link n);
      total := Int64.add !total (Int64.of_int cycles);
      (* The guest executes on the source while this round is on the
         wire, dirtying pages that the next round must re-send. *)
      Hypervisor.run_vm src vm ~cycles:(Int64.of_int cycles);
      let dirty = Vm.collect_dirty vm ~clear:false in
      (* Re-arm write protection for the next epoch (clears the bitmap). *)
      Vm.start_dirty_logging vm;
      let count = List.length dirty in
      let over_budget =
        match watchdog_cycles with
        | Some w -> Int64.unsigned_compare !total w > 0
        | None -> false
      in
      if count = 0 then []
      else if
        !rounds >= max_rounds || count <= stop_threshold || count >= prev_count
        || over_budget
      then dirty (* freeze and send the residue *)
      else round dirty count
    in
    let residue = round (present_gfns vm) max_int in
    (* Stop phase: guest frozen, send the residual dirty set + vCPU state. *)
    let residue_bytes = wire_bytes ~compress vm residue + vcpu_state_bytes in
    bytes_total := !bytes_total + residue_bytes;
    List.iter (fun gfn -> ignore (copy_page ~vm ~twin gfn)) residue;
    let n = List.length residue in
    pages := !pages + n;
    let downtime = Int64.of_int (Link.transfer_cycles link ~bytes:residue_bytes) in
    total := Int64.add !total downtime;
    Vm.stop_dirty_logging vm;
    Array.iteri
      (fun i vcpu -> copy_vcpu_state ~src:vcpu ~dst:twin.Vm.vcpus.(i))
      vm.Vm.vcpus;
    finish ~src ~vm ~twin;
    ( twin,
      {
        total_cycles = !total;
        downtime_cycles = downtime;
        pages_sent = !pages;
        bytes_sent = !bytes_total;
        rounds = !rounds;
        remote_faults = 0;
        retransmits = 0;
        aborted = false;
      } )
  end
  else begin
    (* Lossy link: page transfer goes through the reliable layer.  Round
       wire time — retransmits and backoff included — is exactly the time
       the guest keeps executing (and dirtying) on the source, so loss
       directly degrades convergence.  Zero-page compression is skipped:
       every frame carries its full body so checksums protect real
       content. *)
    let x = make_xfer ~link ~faults in
    Vm.start_dirty_logging vm;
    let pages = ref 0 in
    let rounds = ref 0 in
    try
      let rec round to_send prev_count =
        incr rounds;
        Log.debug (fun m ->
            m "precopy %s (lossy): round %d, %d pages" vm.Vm.name !rounds
              (List.length to_send));
        let t_before = x.x_clock in
        List.iter (fun gfn -> send_page_reliable x ~vm ~twin gfn) to_send;
        pages := !pages + List.length to_send;
        trace_round ~src vm ~round:!rounds ~pages:(List.length to_send);
        Hypervisor.run_vm src vm ~cycles:(Int64.sub x.x_clock t_before);
        let dirty = Vm.collect_dirty vm ~clear:false in
        Vm.start_dirty_logging vm;
        let count = List.length dirty in
        (* Convergence watchdog: when the budget is spent, stop iterating
           and freeze now rather than chase a dirty set that loss-induced
           slow rounds may never shrink. *)
        let over_budget =
          match watchdog_cycles with
          | Some w -> Int64.unsigned_compare x.x_clock w > 0
          | None -> false
        in
        if count = 0 then []
        else if
          !rounds >= max_rounds || count <= stop_threshold || count >= prev_count
          || over_budget
        then dirty
        else round dirty count
      in
      let residue = round (present_gfns vm) max_int in
      let t_before = x.x_clock in
      List.iter (fun gfn -> send_page_reliable x ~vm ~twin gfn) residue;
      pages := !pages + List.length residue;
      send_vcpus_reliable x;
      let downtime = Int64.sub x.x_clock t_before in
      Vm.stop_dirty_logging vm;
      Array.iteri
        (fun i vcpu -> copy_vcpu_state ~src:vcpu ~dst:twin.Vm.vcpus.(i))
        vm.Vm.vcpus;
      finish ~src ~vm ~twin;
      ( twin,
        {
          total_cycles = x.x_clock;
          downtime_cycles = downtime;
          pages_sent = !pages;
          bytes_sent = x.x_bytes;
          rounds = !rounds;
          remote_faults = 0;
          retransmits = x.x_retx;
          aborted = false;
        } )
    with Abort_migration reason ->
      (* Rollback: the source keeps running with dirty logging off; the
         destination twin — and every frame it allocated — is discarded. *)
      Vm.stop_dirty_logging vm;
      rollback ~dst ~twin reason;
      ( vm,
        {
          total_cycles = x.x_clock;
          downtime_cycles = 0L;
          pages_sent = !pages;
          bytes_sent = x.x_bytes;
          rounds = !rounds;
          remote_faults = 0;
          retransmits = x.x_retx;
          aborted = true;
        } )
  end

let postcopy ~src ~dst ~vm ~link ?(push_batch = 32) () =
  let twin = make_twin ~dst ~vm in
  (* Freeze: ship only the vCPU state; every present page becomes Remote
     on the destination. *)
  let downtime = Int64.of_int (Link.transfer_cycles link ~bytes:vcpu_state_bytes) in
  let gfns = present_gfns vm in
  trace_round ~src vm ~round:1 ~pages:(List.length gfns);
  List.iter (fun gfn -> P2m.set twin.Vm.p2m gfn P2m.Remote) gfns;
  Array.iteri
    (fun i vcpu -> copy_vcpu_state ~src:vcpu ~dst:twin.Vm.vcpus.(i))
    vm.Vm.vcpus;
  let pulled = ref 0 in
  twin.Vm.remote_fetch <-
    Some
      (fun gfn ->
        match Vm.resolve_read vm gfn with
        | Some src_ppn ->
            incr pulled;
            Some (Phys_mem.frame_read vm.Vm.host.Host.mem ~ppn:src_ppn)
        | None -> None);
  (* A demand fetch pays a full network round trip plus the page. *)
  twin.Vm.remote_fault_cycles <-
    (2 * Link.latency_cycles link) + Link.transfer_cycles link ~bytes:page_wire_bytes;
  let total = ref downtime in
  (* Background push: run the guest on the destination for the time one
     batch occupies the wire, then mark the batch resident. *)
  let remote_left () =
    P2m.count twin.Vm.p2m ~f:(function P2m.Remote -> true | _ -> false)
  in
  let rec push () =
    if remote_left () > 0 && not (Vm.halted twin) then begin
      let batch = ref [] in
      (try
         P2m.iter twin.Vm.p2m ~f:(fun ~gfn entry ->
             if List.length !batch >= push_batch then raise Exit;
             match entry with P2m.Remote -> batch := gfn :: !batch | _ -> ())
       with Exit -> ());
      let cycles = transfer_pages_cycles link (List.length !batch) in
      total := Int64.add !total (Int64.of_int cycles);
      Hypervisor.run_vm dst twin ~cycles:(Int64.of_int cycles);
      (* Whatever is still remote from this batch arrives now. *)
      List.iter
        (fun gfn ->
          match P2m.get twin.Vm.p2m gfn with
          | P2m.Remote -> ignore (Vm.resolve_read twin gfn)
          | _ -> ())
        !batch;
      push ()
    end
  in
  push ();
  let faults = Monitor.count twin.Vm.monitor Monitor.E_remote_fetch in
  twin.Vm.remote_fetch <- None;
  let pages = !pulled in
  finish ~src ~vm ~twin;
  ( twin,
    {
      total_cycles = !total;
      downtime_cycles = downtime;
      pages_sent = pages;
      bytes_sent = pages * page_wire_bytes;
      rounds = 1;
      remote_faults = faults;
      retransmits = 0;
      aborted = false;
    } )

(* Reused by {!Replicate} for checkpoint shipping. *)
module Reliable = struct
  type t = xfer

  let create ?(now = 0L) ~link ~faults () =
    let x = make_xfer ~link ~faults in
    x.x_clock <- now;
    x

  let send = send_reliable
  let clock x = x.x_clock
  let retransmits x = x.x_retx
  let bytes_sent x = x.x_bytes
end
