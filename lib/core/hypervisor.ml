open Velum_isa
open Velum_machine
open Velum_devices

let log_src = Logs.Src.create "velum.hypervisor" ~doc:"VM lifecycle and scheduling"

module Log = (val Logs.src_log log_src)

type pcpu = { mutable pclock : int64 }

type watchdog_policy = Wd_kill | Wd_notify | Wd_restart

type wd_mark = { mutable wd_instret : int64; mutable wd_window_start : int64 }

type watchdog = {
  wd_budget : int64;
  wd_policy : watchdog_policy;
  wd_marks : (int, wd_mark) Hashtbl.t; (* vm id -> progress mark *)
  mutable wd_fired : int;
}

type t = {
  ctx : Host_ctx.t; (* all per-host ambient state lives here *)
  mutable vms : Vm.t list;
  pcpus : pcpu array;
  mutable clock : int64; (* makespan: max over pcpu clocks *)
  mutable next_vm_id : int;
  mutable idle_cycles : int64;
  mutable sched_decisions : int;
  mutable watchdog : watchdog option;
  mutable restart_handler : (Vm.t -> unit) option;
  (* Ambient infrastructure that is not a VM device — a software switch
     between this host's VMs, for instance.  Tickers run at every wake
     point; event sources feed the idle-time search so a pending frame
     arrival wakes the host instead of deadlocking it. *)
  mutable tickers : (int64 -> unit) list;
  mutable event_sources : (unit -> int64 option) list;
}

let create ?ctx ?host ?sched ?(pcpus = 1) () =
  if pcpus <= 0 then invalid_arg "Hypervisor.create: pcpus must be positive";
  let ctx =
    match ctx with
    | Some c ->
        if Option.is_some host || Option.is_some sched then
          invalid_arg "Hypervisor.create: pass either ~ctx or ~host/~sched";
        c
    | None -> Host_ctx.create ?host ?sched ()
  in
  {
    ctx;
    vms = [];
    pcpus = Array.init pcpus (fun _ -> { pclock = 0L });
    clock = 0L;
    next_vm_id = 0;
    idle_cycles = 0L;
    sched_decisions = 0;
    watchdog = None;
    restart_handler = None;
    tickers = [];
    event_sources = [];
  }

let ctx t = t.ctx
let host t = t.ctx.Host_ctx.host
let sched t = t.ctx.Host_ctx.sched

let set_watchdog t ~budget ~policy =
  if Int64.compare budget 0L <= 0 then
    invalid_arg "Hypervisor.set_watchdog: budget must be positive";
  t.watchdog <-
    Some
      { wd_budget = budget; wd_policy = policy; wd_marks = Hashtbl.create 7; wd_fired = 0 }

let watchdog_fired t = match t.watchdog with None -> 0 | Some w -> w.wd_fired
let set_restart_handler t f = t.restart_handler <- Some f
let restart_handler t = t.restart_handler

(* Registration order is preserved (ticks run oldest-first) so a fixed
   wiring order gives a fixed tick order — the fleet's byte-determinism
   depends on it. *)
let add_ticker t f = t.tickers <- t.tickers @ [ f ]
let add_event_source t f = t.event_sources <- t.event_sources @ [ f ]

let now t = t.clock
let pcpu_count t = Array.length t.pcpus

let refresh_makespan t =
  Array.iter
    (fun p -> if Int64.unsigned_compare p.pclock t.clock > 0 then t.clock <- p.pclock)
    t.pcpus

let min_pcpu t =
  let best = ref t.pcpus.(0) in
  Array.iter
    (fun p -> if Int64.unsigned_compare p.pclock !best.pclock < 0 then best := p)
    t.pcpus;
  !best

(* The closest pcpu clock strictly ahead of [p] — an idle pcpu never
   runs ahead of its peers, so wakeups peers trigger stay visible. *)
let next_peer_clock t p =
  Array.fold_left
    (fun acc q ->
      if Int64.unsigned_compare q.pclock p.pclock > 0 then
        match acc with
        | None -> Some q.pclock
        | Some a -> if Int64.unsigned_compare q.pclock a < 0 then Some q.pclock else acc
      else acc)
    None t.pcpus

(* Fast-forward every pcpu to [to_] charging idle time — models a pause
   whose cost is known up front (checkpoint commits, restart backoff). *)
let advance_idle t ~to_ =
  Array.iter
    (fun p ->
      if Int64.unsigned_compare to_ p.pclock > 0 then begin
        t.idle_cycles <- Int64.add t.idle_cycles (Int64.sub to_ p.pclock);
        p.pclock <- to_
      end)
    t.pcpus;
  refresh_makespan t

let create_vm t ~name ~mem_frames ?(vcpu_count = 1) ?(paging = Vm.Nested_paging)
    ?(pv = Vm.no_pv) ?(weight = 256) ?(populate = true) ?nic ?tlb_size ?exec_mode ?engine
    ~entry () =
  let id = t.next_vm_id in
  t.next_vm_id <- id + 1;
  let vm =
    Vm.create ~host:(host t) ~id ~name ~mem_frames ~vcpu_count ~paging ~pv ~populate ?nic
      ?tlb_size ?exec_mode ?engine ~entry ()
  in
  vm.Vm.trace <- t.ctx.Host_ctx.trace;
  Array.iter
    (fun vcpu ->
      vcpu.Vcpu.weight <- weight;
      (sched t).Scheduler.enqueue vcpu)
    vm.Vm.vcpus;
  t.vms <- t.vms @ [ vm ];
  Log.info (fun m ->
      m "created %s (%d frames, %d vcpus)" vm.Vm.name mem_frames vcpu_count);
  vm

let remove_vm t vm =
  Log.info (fun m -> m "destroying %s" vm.Vm.name);
  Array.iter (fun vcpu -> (sched t).Scheduler.remove vcpu) vm.Vm.vcpus;
  t.vms <- List.filter (fun v -> not (v == vm)) t.vms;
  Vm.destroy vm

let find_vm t ~vm_id = List.find_opt (fun vm -> vm.Vm.id = vm_id) t.vms

(* ---- tracing ---- *)

let trace t = t.ctx.Host_ctx.trace

(* Attach a tracing sink: existing and future VMs share it, and the
   scheduler's notify field routes policy decisions into it.  Recording
   is host-side only, so a traced run burns exactly the same simulated
   cycles as an untraced one. *)
let set_trace t tr =
  Host_ctx.set_trace t.ctx tr;
  List.iter (fun vm -> vm.Vm.trace <- Some tr) t.vms;
  (sched t).Scheduler.notify <-
    Some
      (fun vcpu note ->
        let ev =
          match note with
          | Scheduler.N_wake { boosted } -> Trace.Sched_wake { boosted }
          | Scheduler.N_refill -> Trace.Sched_refill
          | Scheduler.N_clamp -> Trace.Sched_clamp
        in
        match vcpu with
        | Some v -> (
            match find_vm t ~vm_id:v.Vcpu.vm_id with
            | Some vm -> Trace.record tr ~vm_id:vm.Vm.id ~name:vm.Vm.name ~at:t.clock ev
            | None -> ())
        | None -> Trace.record tr ~vm_id:(-1) ~name:"scheduler" ~at:t.clock ev)

let vcpu_index vm vcpu =
  let found = ref (-1) in
  Array.iteri (fun i v -> if v == vcpu then found := i) vm.Vm.vcpus;
  if !found < 0 then raise Not_found;
  !found

(* ---- vCPU execution ---- *)

type exec_outcome = Slice_done | Yielded | Blocked | Halted_vcpu

(* Run one vCPU for up to [slice] cycles starting at [base], servicing
   exits as they occur.  Returns cycles consumed (guest + VMM). *)
let exec_vcpu t vm ~vcpu_idx ~base ~slice =
  let vcpu = vm.Vm.vcpus.(vcpu_idx) in
  let state = vcpu.Vcpu.state in
  vcpu.Vcpu.runstate <- Vcpu.Running;
  let used = ref 0 in
  let now_fn () = Int64.add base (Int64.of_int !used) in
  let charge_vmm_delta before =
    let delta = Int64.to_int (Int64.sub vcpu.Vcpu.vmm_cycles before) in
    used := !used + delta
  in
  let h = host t in
  let ctx =
    {
      Cpu.translate = (fun ~access ~user va -> Vm.translate vm ~vcpu_idx ~access ~user va);
      read_ram = (fun pa w -> Phys_mem.read h.Host.mem pa w);
      write_ram = (fun pa w v -> Phys_mem.write h.Host.mem pa w v);
      flush_tlb = (fun () -> Vm.flush_vcpu_tlb vm ~vcpu_idx);
      now = now_fn;
      ext_irq = (fun () -> false);
      cost = h.Host.cost;
      env = Cpu.Deprivileged;
      dtlb = Some vm.Vm.dtlbs.(vcpu_idx);
    }
  in
  let inject () =
    let before = vcpu.Vcpu.vmm_cycles in
    let injected = Emulate.maybe_inject_irq vm ~vcpu_idx ~now:(now_fn ()) in
    if injected then charge_vmm_delta before
  in
  inject ();
  let outcome = ref None in
  while !outcome = None do
    if !used >= slice then outcome := Some Slice_done
    else begin
      (* Bound the chunk by the virtual timer so expiry is noticed
         promptly even inside a long slice. *)
      let remaining = slice - !used in
      let chunk =
        let cmp = Cpu.get_csr state Arch.Stimecmp in
        if cmp = 0L then remaining
        else
          let until = Int64.sub cmp (now_fn ()) in
          if until <= 0L then remaining
          else min remaining (max 200 (Int64.to_int (min until 1_000_000L)))
      in
      let consumed, stop = vm.Vm.engine.Engine.step_n state ctx ~fuel:chunk in
      used := !used + consumed;
      vcpu.Vcpu.guest_cycles <- Int64.add vcpu.Vcpu.guest_cycles (Int64.of_int consumed);
      (match vm.Vm.trace with
      | Some tr when consumed > 0 ->
          Trace.add_guest_cycles tr ~vm_id:vm.Vm.id ~name:vm.Vm.name consumed
      | _ -> ());
      (* Surface superblock-trace compilation in the event ring: the
         promotion happens deep inside the engine, so poll the cache
         counter across the chunk and record the delta. *)
      (match vm.Vm.trace with
      | Some tr ->
          let built = Vm.traces_built vm in
          if built > vm.Vm.traces_seen then begin
            Trace.record tr ~vm_id:vm.Vm.id ~name:vm.Vm.name ~at:(now_fn ())
              (Trace.Trace_formed { count = built - vm.Vm.traces_seen });
            vm.Vm.traces_seen <- built
          end
      | None -> ());
      match stop with
      | Cpu.Budget -> inject ()
      | Cpu.Halted ->
          vcpu.Vcpu.runstate <- Vcpu.Halted;
          outcome := Some Halted_vcpu
      | Cpu.Waiting ->
          Vcpu.block vcpu;
          outcome := Some Blocked
      | Cpu.Exit e -> (
          let before = vcpu.Vcpu.vmm_cycles in
          let action = Emulate.handle_exit vm ~vcpu_idx ~now:(now_fn ()) e in
          charge_vmm_delta before;
          match action with
          | Emulate.Resume -> inject ()
          | Emulate.Yielded -> outcome := Some Yielded
          | Emulate.Became_blocked -> outcome := Some Blocked
          | Emulate.Vcpu_halted -> outcome := Some Halted_vcpu)
    end
  done;
  Bus.tick vm.Vm.bus (now_fn ());
  (if vcpu.Vcpu.runstate = Vcpu.Running then vcpu.Vcpu.runstate <- Vcpu.Runnable);
  let result = match !outcome with Some o -> o | None -> assert false in
  (!used, result)

(* ---- wake and idle machinery ---- *)

let wake_sleepers_at t ~now =
  List.iter (fun f -> f now) t.tickers;
  List.iter
    (fun vm ->
      Bus.tick vm.Vm.bus now;
      Array.iteri
        (fun _i vcpu ->
          if vcpu.Vcpu.runstate = Vcpu.Blocked && Emulate.irq_deliverable vm vcpu ~now
          then begin
            Vcpu.wake vcpu ~boost:true;
            (sched t).Scheduler.wake vcpu
          end)
        vm.Vm.vcpus)
    t.vms

let wake_sleepers t = wake_sleepers_at t ~now:t.clock

let next_event t =
  let earliest = ref None in
  let consider when_ =
    match !earliest with
    | None -> earliest := Some when_
    | Some e -> if Int64.unsigned_compare when_ e < 0 then earliest := Some when_
  in
  List.iter
    (fun vm ->
      Array.iter
        (fun vcpu ->
          if vcpu.Vcpu.runstate = Vcpu.Blocked then begin
            let cmp = Cpu.get_csr vcpu.Vcpu.state Arch.Stimecmp in
            if cmp <> 0L then consider cmp
          end)
        vm.Vm.vcpus;
      Option.iter consider (Blockdev.next_completion vm.Vm.blk);
      Option.iter consider (Virtio_blk.next_completion vm.Vm.vblk);
      Option.iter (fun n -> Option.iter consider (Nic.next_arrival n)) vm.Vm.nic;
      Option.iter (fun v -> Option.iter consider (Virtio_net.next_arrival v)) vm.Vm.vnet)
    t.vms;
  List.iter (fun src -> Option.iter consider (src ())) t.event_sources;
  !earliest

let all_halted t = t.vms <> [] && List.for_all Vm.halted t.vms

(* ---- progress watchdog ---- *)

let vm_instret vm =
  Array.fold_left
    (fun acc vcpu -> Int64.add acc vcpu.Vcpu.state.Cpu.instret)
    0L vm.Vm.vcpus

(* Fire when a VM retires no instructions for a whole cycle budget.
   [Wd_notify] counts the event and restarts the window; [Wd_kill] halts
   the VM's vCPUs (the VM stays registered so its state can be examined);
   [Wd_restart] hands the VM to the registered restart handler (an HA
   supervisor) — or behaves like [Wd_kill] when none is attached.  A
   no-op unless [set_watchdog] was called. *)
let check_watchdog t =
  match t.watchdog with
  | None -> ()
  | Some wd ->
      List.iter
        (fun vm ->
          if not (Vm.halted vm) then begin
            let instret = vm_instret vm in
            match Hashtbl.find_opt wd.wd_marks vm.Vm.id with
            | None ->
                Hashtbl.replace wd.wd_marks vm.Vm.id
                  { wd_instret = instret; wd_window_start = t.clock }
            | Some m ->
                if Int64.compare instret m.wd_instret <> 0 then begin
                  m.wd_instret <- instret;
                  m.wd_window_start <- t.clock
                end
                else if
                  Int64.unsigned_compare (Int64.sub t.clock m.wd_window_start)
                    wd.wd_budget
                  >= 0
                then begin
                  wd.wd_fired <- wd.wd_fired + 1;
                  Monitor.bump vm.Vm.monitor Monitor.E_watchdog;
                  (match vm.Vm.trace with
                  | Some tr ->
                      Trace.record tr ~vm_id:vm.Vm.id ~name:vm.Vm.name ~at:t.clock
                        (Trace.Exit
                           { kind = Monitor.E_watchdog; cost = 0; detail = 0L })
                  | None -> ());
                  m.wd_window_start <- t.clock;
                  let kill () =
                    Array.iter
                      (fun vcpu ->
                        vcpu.Vcpu.runstate <- Vcpu.Halted;
                        (sched t).Scheduler.remove vcpu)
                      vm.Vm.vcpus
                  in
                  match wd.wd_policy with
                  | Wd_notify ->
                      Log.warn (fun msg ->
                          msg "watchdog: %s made no progress for %Ld cycles"
                            vm.Vm.name wd.wd_budget)
                  | Wd_kill ->
                      Log.warn (fun msg ->
                          msg "watchdog: killing stalled %s" vm.Vm.name);
                      kill ()
                  | Wd_restart -> (
                      match t.restart_handler with
                      | Some handler ->
                          Log.warn (fun msg ->
                              msg "watchdog: restarting stalled %s" vm.Vm.name);
                          (* the handler replaces the VM (new id), so the
                             stale progress mark must not linger *)
                          Hashtbl.remove wd.wd_marks vm.Vm.id;
                          handler vm
                      | None ->
                          Log.warn (fun msg ->
                              msg "watchdog: killing stalled %s (no restart handler)"
                                vm.Vm.name);
                          kill ())
                end
          end)
        t.vms

(* ---- main run loop ---- *)

type outcome = All_halted | Until_satisfied | Out_of_budget | Idle_deadlock

let dispatch_on t p (vcpu : Vcpu.t) slice =
  t.sched_decisions <- t.sched_decisions + 1;
  match find_vm t ~vm_id:vcpu.Vcpu.vm_id with
  | None -> () (* VM was removed; drop the stale pick *)
  | Some vm ->
      let vcpu_idx = vcpu_index vm vcpu in
      (* a vCPU's virtual time never runs backwards across pcpus *)
      if Int64.unsigned_compare vcpu.Vcpu.last_scheduled p.pclock > 0 then begin
        t.idle_cycles <-
          Int64.add t.idle_cycles (Int64.sub vcpu.Vcpu.last_scheduled p.pclock);
        p.pclock <- vcpu.Vcpu.last_scheduled
      end;
      p.pclock <-
        Int64.add p.pclock (Int64.of_int (host t).Host.cost.Cost_model.ctx_switch);
      let dispatched_at = p.pclock in
      let used, outcome = exec_vcpu t vm ~vcpu_idx ~base:p.pclock ~slice in
      p.pclock <- Int64.add p.pclock (Int64.of_int used);
      vcpu.Vcpu.last_scheduled <- p.pclock;
      (sched t).Scheduler.charge vcpu ~used ~now:p.pclock;
      (match trace t with
      | Some tr ->
          let stop =
            match outcome with
            | Slice_done -> Trace.S_slice
            | Yielded -> Trace.S_yield
            | Blocked -> Trace.S_block
            | Halted_vcpu -> Trace.S_halt
          in
          Trace.record tr ~vm_id:vm.Vm.id ~name:vm.Vm.name ~at:dispatched_at
            (Trace.Dispatch { vcpu = vcpu_idx; slice; used; stop })
      | None -> ());
      (match outcome with
      | Slice_done | Yielded -> (sched t).Scheduler.requeue vcpu
      | Blocked -> ()
      | Halted_vcpu -> (sched t).Scheduler.remove vcpu);
      refresh_makespan t

let run ?(budget = 2_000_000_000L) ?until t =
  let deadline = Int64.add t.clock budget in
  let stalls = ref 0 in
  let max_stalls = (2 * Array.length t.pcpus) + 2 in
  let rec loop () =
    if (match until with Some f -> f t | None -> false) then Until_satisfied
    else if all_halted t then All_halted
    else if Int64.unsigned_compare t.clock deadline >= 0 then Out_of_budget
    else begin
      check_watchdog t;
      let p = min_pcpu t in
      wake_sleepers_at t ~now:p.pclock;
      match (sched t).Scheduler.pick ~now:p.pclock with
      | Some (vcpu, slice) ->
          stalls := 0;
          dispatch_on t p vcpu slice;
          loop ()
      | None -> (
          (* Idle: catch up to the nearest peer clock, the next device/
             timer event, or a scheduler release (CPU caps), whichever
             comes first. *)
          let min_opt a b =
            match (a, b) with
            | Some a, Some b -> Some (if Int64.unsigned_compare a b < 0 then a else b)
            | Some a, None -> Some a
            | None, b -> b
          in
          let target =
            min_opt
              (min_opt (next_peer_clock t p) (next_event t))
              ((sched t).Scheduler.next_release ~now:p.pclock)
          in
          match target with
          | Some when_ when Int64.unsigned_compare when_ p.pclock > 0 ->
              stalls := 0;
              t.idle_cycles <- Int64.add t.idle_cycles (Int64.sub when_ p.pclock);
              p.pclock <- when_;
              refresh_makespan t;
              loop ()
          | Some _ | None ->
              incr stalls;
              if !stalls > max_stalls then Idle_deadlock
              else begin
                (* Give devices one more tick; a wake may become due. *)
                List.iter (fun vm -> Bus.tick vm.Vm.bus p.pclock) t.vms;
                loop ()
              end)
    end
  in
  loop ()

(* ---- single-VM execution (live migration, replication) ---- *)

let run_vm t vm ~cycles =
  let p = t.pcpus.(0) in
  let deadline = Int64.add p.pclock cycles in
  let next = ref 0 in
  let rec loop () =
    if Int64.unsigned_compare p.pclock deadline >= 0 then ()
    else begin
      wake_sleepers_at t ~now:p.pclock;
      let n = Array.length vm.Vm.vcpus in
      let runnable =
        List.filter
          (fun i -> Vcpu.is_runnable vm.Vm.vcpus.(i))
          (List.init n (fun i -> (i + !next) mod n))
      in
      match runnable with
      | [] -> (
          match next_event t with
          | Some when_
            when Int64.unsigned_compare when_ p.pclock > 0
                 && Int64.unsigned_compare when_ deadline <= 0 ->
              t.idle_cycles <- Int64.add t.idle_cycles (Int64.sub when_ p.pclock);
              p.pclock <- when_;
              loop ()
          | _ ->
              t.idle_cycles <- Int64.add t.idle_cycles (Int64.sub deadline p.pclock);
              p.pclock <- deadline)
      | i :: _ ->
          next := i + 1;
          let remaining = Int64.to_int (min (Int64.sub deadline p.pclock) 1_000_000L) in
          let slice = min Scheduler.default_slice (max 1 remaining) in
          let used, _outcome = exec_vcpu t vm ~vcpu_idx:i ~base:p.pclock ~slice in
          p.pclock <- Int64.add p.pclock (Int64.of_int used);
          loop ()
    end
  in
  (if not (Vm.halted vm) then loop ()
   else begin
     t.idle_cycles <- Int64.add t.idle_cycles (Int64.sub deadline p.pclock);
     p.pclock <- deadline
   end);
  refresh_makespan t

(* ---- accounting ---- *)

let guest_cycles t = List.fold_left (fun acc vm -> Int64.add acc (Vm.guest_cycles vm)) 0L t.vms
let vmm_cycles t = List.fold_left (fun acc vm -> Int64.add acc (Vm.vmm_cycles vm)) 0L t.vms
