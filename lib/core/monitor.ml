type exit_kind =
  | E_csr
  | E_sret
  | E_sfence
  | E_wfi
  | E_halt
  | E_port_io
  | E_mmio
  | E_hypercall
  | E_guest_trap
  | E_guest_page_fault
  | E_shadow_fill
  | E_pt_write
  | E_dirty_log
  | E_cow_break
  | E_swap_in
  | E_remote_fetch
  | E_bt_translate
  | E_watchdog
  | E_ha_restart
  | E_ha_degraded
  | E_ha_failover
  | E_cluster_shed
  | E_cluster_degraded

let all_exit_kinds =
  [
    E_csr;
    E_sret;
    E_sfence;
    E_wfi;
    E_halt;
    E_port_io;
    E_mmio;
    E_hypercall;
    E_guest_trap;
    E_guest_page_fault;
    E_shadow_fill;
    E_pt_write;
    E_dirty_log;
    E_cow_break;
    E_swap_in;
    E_remote_fetch;
    E_bt_translate;
    E_watchdog;
    E_ha_restart;
    E_ha_degraded;
    E_ha_failover;
    E_cluster_shed;
    E_cluster_degraded;
  ]

let exit_kind_name = function
  | E_csr -> "csr"
  | E_sret -> "sret"
  | E_sfence -> "sfence"
  | E_wfi -> "wfi"
  | E_halt -> "halt"
  | E_port_io -> "port-io"
  | E_mmio -> "mmio"
  | E_hypercall -> "hypercall"
  | E_guest_trap -> "guest-trap"
  | E_guest_page_fault -> "guest-page-fault"
  | E_shadow_fill -> "shadow-fill"
  | E_pt_write -> "pt-write"
  | E_dirty_log -> "dirty-log"
  | E_cow_break -> "cow-break"
  | E_swap_in -> "swap-in"
  | E_remote_fetch -> "remote-fetch"
  | E_bt_translate -> "bt-translate"
  | E_watchdog -> "watchdog"
  | E_ha_restart -> "ha-restart"
  | E_ha_degraded -> "ha-degraded"
  | E_ha_failover -> "ha-failover"
  | E_cluster_shed -> "cluster-shed"
  | E_cluster_degraded -> "cluster-degraded"

(* Constant-time constructor -> index map.  This sits on the hottest VMM
   path (every exit bumps a counter and accumulates cycles); the indices
   must stay aligned with [all_exit_kinds] above. *)
let kind_index = function
  | E_csr -> 0
  | E_sret -> 1
  | E_sfence -> 2
  | E_wfi -> 3
  | E_halt -> 4
  | E_port_io -> 5
  | E_mmio -> 6
  | E_hypercall -> 7
  | E_guest_trap -> 8
  | E_guest_page_fault -> 9
  | E_shadow_fill -> 10
  | E_pt_write -> 11
  | E_dirty_log -> 12
  | E_cow_break -> 13
  | E_swap_in -> 14
  | E_remote_fetch -> 15
  | E_bt_translate -> 16
  | E_watchdog -> 17
  | E_ha_restart -> 18
  | E_ha_degraded -> 19
  | E_ha_failover -> 20
  | E_cluster_shed -> 21
  | E_cluster_degraded -> 22

let nkinds = 23

type t = {
  counts : int array;
  cycle_acc : int64 array;
  mutable injections : int;
  gauges : (string, int) Hashtbl.t;
}

let create () =
  {
    counts = Array.make nkinds 0;
    cycle_acc = Array.make nkinds 0L;
    injections = 0;
    gauges = Hashtbl.create 16;
  }

let bump t k =
  let i = kind_index k in
  t.counts.(i) <- t.counts.(i) + 1

let add_cycles t k c =
  let i = kind_index k in
  t.cycle_acc.(i) <- Int64.add t.cycle_acc.(i) (Int64.of_int c)

let count t k = t.counts.(kind_index k)
let cycles t k = t.cycle_acc.(kind_index k)
let total_exits t = Array.fold_left ( + ) 0 t.counts

let irq_injected t = t.injections <- t.injections + 1
let irq_injections t = t.injections

let set_gauge t name v = Hashtbl.replace t.gauges name v
let gauge t name = Hashtbl.find_opt t.gauges name

let gauges t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.gauges []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Array.fill t.counts 0 nkinds 0;
  Array.fill t.cycle_acc 0 nkinds 0L;
  t.injections <- 0;
  Hashtbl.reset t.gauges

(* Canonical single-line JSON: exits in declaration order (nonzero
   only), gauges sorted by name.  Field order is fixed so two monitors
   with the same contents — regardless of Hashtbl insertion order —
   export byte-identical strings; the cluster determinism gates diff
   this literally. *)
let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"exits\":{";
  let first = ref true in
  List.iter
    (fun k ->
      let c = count t k in
      if c > 0 then begin
        if not !first then Buffer.add_char buf ',';
        first := false;
        Printf.bprintf buf "\"%s\":[%d,%Ld]" (exit_kind_name k) c (cycles t k)
      end)
    all_exit_kinds;
  Printf.bprintf buf "},\"irq_injections\":%d,\"gauges\":{" t.injections;
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\"%s\":%d" name v)
    (gauges t);
  Buffer.add_string buf "}}";
  Buffer.contents buf

let pp ppf t =
  List.iter
    (fun k ->
      let c = count t k in
      if c > 0 then
        Format.fprintf ppf "%s: %d (%Ld cyc)@." (exit_kind_name k) c (cycles t k))
    all_exit_kinds;
  if t.injections > 0 then Format.fprintf ppf "irq-injections: %d@." t.injections;
  List.iter (fun (name, v) -> Format.fprintf ppf "%s: %d@." name v) (gauges t)
