open Velum_machine

type t = {
  mem : Phys_mem.t;
  alloc : Frame_alloc.t;
  cost : Cost_model.t;
  default_engine : Engine.kind;
  mutable swap : Bytes.t option array;
  mutable swap_ins : int;
  mutable swap_outs : int;
}

let swap_cost_cycles = 2_000_000

let create ?(frames = 16384) ?(cost = Cost_model.default) ?(swap_slots = 4096)
    ?(engine = Engine.Interp) () =
  let mem = Phys_mem.create ~frames in
  {
    mem;
    alloc = Frame_alloc.create ~mem ();
    cost;
    default_engine = engine;
    swap = Array.make swap_slots None;
    swap_ins = 0;
    swap_outs = 0;
  }

let swap_out t ~ppn =
  let rec find i =
    if i >= Array.length t.swap then failwith "Host.swap_out: swap full"
    else if t.swap.(i) = None then i
    else find (i + 1)
  in
  let slot = find 0 in
  t.swap.(slot) <- Some (Phys_mem.frame_read t.mem ~ppn);
  t.swap_outs <- t.swap_outs + 1;
  slot

let swap_in t ~slot ~ppn =
  match t.swap.(slot) with
  | Some b ->
      Phys_mem.frame_write t.mem ~ppn b;
      t.swap.(slot) <- None;
      t.swap_ins <- t.swap_ins + 1
  | None -> invalid_arg "Host.swap_in: empty slot"

let free_swap_slots t =
  Array.fold_left (fun acc s -> if s = None then acc + 1 else acc) 0 t.swap
