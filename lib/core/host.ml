open Velum_machine

type t = {
  mem : Phys_mem.t;
  alloc : Frame_alloc.t;
  cost : Cost_model.t;
  default_engine : Engine.kind;
  mutable swap : Bytes.t option array;
  mutable swap_free : int list;
  mutable swap_ins : int;
  mutable swap_outs : int;
}

let swap_cost_cycles = 2_000_000

let create ?(frames = 16384) ?(cost = Cost_model.default) ?(swap_slots = 4096)
    ?(engine = Engine.Interp) () =
  let mem = Phys_mem.create ~frames in
  {
    mem;
    alloc = Frame_alloc.create ~mem ();
    cost;
    default_engine = engine;
    swap = Array.make swap_slots None;
    swap_free = List.init swap_slots Fun.id;
    swap_ins = 0;
    swap_outs = 0;
  }

let swap_out t ~ppn =
  match t.swap_free with
  | [] -> failwith "Host.swap_out: swap full"
  | slot :: rest ->
      t.swap_free <- rest;
      t.swap.(slot) <- Some (Phys_mem.frame_read t.mem ~ppn);
      t.swap_outs <- t.swap_outs + 1;
      slot

let swap_in t ~slot ~ppn =
  match t.swap.(slot) with
  | Some b ->
      Phys_mem.frame_write t.mem ~ppn b;
      t.swap.(slot) <- None;
      t.swap_free <- slot :: t.swap_free;
      t.swap_ins <- t.swap_ins + 1
  | None -> invalid_arg "Host.swap_in: empty slot"

let free_swap_slots t = List.length t.swap_free
