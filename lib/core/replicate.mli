(** Checkpoint replication for high availability (Remus-style).

    A protected VM runs in epochs: at the end of each epoch the primary
    pauses briefly, ships the pages dirtied during the epoch plus the
    vCPU state to a warm backup on another host, and resumes.  If the
    primary fails, the backup resumes from the last completed checkpoint
    — losing at most one epoch of execution, with no shared storage of
    memory state required.

    The trade-off this module lets the benchmarks quantify: shorter
    epochs bound the failover loss window but pause the guest more often
    (checkpoint overhead grows), exactly the knob the Remus paper
    (NSDI'08) evaluates. *)

open Velum_devices

type session

type stats = {
  epochs_completed : int;
  pages_sent : int;  (** epoch checkpoints only *)
  initial_pages : int;  (** the one-time full synchronization *)
  initial_sync_cycles : int64;
  bytes_sent : int;  (** everything, including the full sync *)
  paused_cycles : int64;  (** guest stopped while epoch checkpoints
                              shipped (full sync excluded) *)
  run_cycles : int64;  (** guest execution between checkpoints *)
  retransmits : int;  (** checkpoint frames re-sent (lost frames or acks) *)
  link_failed : bool;  (** a checkpoint could not commit; failover time *)
}

type epoch_outcome =
  | Committed  (** the checkpoint applied atomically to the backup *)
  | Link_failed  (** retries exhausted mid-checkpoint: nothing applied *)

val start :
  ?faults:Velum_util.Fault.t ->
  primary:Hypervisor.t ->
  backup:Hypervisor.t ->
  vm:Vm.t ->
  link:Link.t ->
  unit ->
  session
(** Full initial synchronization (guest paused), then dirty logging is
    armed and the VM keeps running on the primary.  The backup twin is
    created blocked — it must not execute while the primary lives.
    [faults] defaults to the plan attached to [link]; when active,
    checkpoints ship over {!Migrate.Reliable} with session-cycle
    timestamps, so cycle-windowed link death lands at a predictable
    epoch. *)

val epoch : session -> run_cycles:int64 -> epoch_outcome
(** Run the guest for [run_cycles] on the primary, then pause it for the
    time the epoch's dirty pages + vCPU state occupy the wire, applying
    them to the backup.  Application is atomic: on [Link_failed] the
    backup still holds the previous completed checkpoint, and every
    later call returns [Link_failed] without running the guest. *)

val stats : session -> stats

val elapsed : session -> int64
(** Session cycles: initial sync + guest run time + checkpoint pauses.
    This is the clock cycle-windowed fault plans and the HA heartbeat
    protocol run on. *)

val failover : ?fence_primary:bool -> session -> Vm.t
(** The primary is declared dead: it is destroyed, and the backup twin is
    unblocked at the last completed checkpoint (its {!Monitor} records
    [E_ha_failover]).  Idempotent: a second invocation — e.g. a
    heartbeat-driven failover racing an explicit one in the HA control
    plane — returns the already-activated twin instead of raising.

    [~fence_primary:false] activates the twin {e without} touching the
    primary's instance — the partitioned-backup case, where the primary
    may still be alive and must be fenced separately by the generation
    protocol (see {!Ha.Failover}). *)

val failed_over : session -> Vm.t option
(** The activated twin, once {!failover} has run. *)

val protect :
  ?faults:Velum_util.Fault.t ->
  primary:Hypervisor.t ->
  backup:Hypervisor.t ->
  vm:Vm.t ->
  link:Link.t ->
  epoch_cycles:int64 ->
  epochs:int ->
  unit ->
  Vm.t * stats
(** Convenience: [start], run [epochs] epochs (stopping early if the
    link fails), then [failover]. *)
