(** Dirty-frame tracking for incremental checkpoints.

    A churn tracker rides the same {!Velum_machine.Phys_mem} write
    listener hook the translation cache uses for SMC invalidation: every
    guest store, DMA write, or VMM poke into physical memory marks the
    frame dirty.  The HA supervisor consults it to decide whether a
    cadence tick has anything to checkpoint — instruction progress alone
    misses device DMA, and a pure-idle guest needs no commit at all —
    and reports how many frames of churn each checkpoint covered.  The
    byte-exact delta itself is computed by {!Store.commit}'s
    content-addressed dedup, which the tracker makes cheap to invoke
    only when something actually changed. *)

type t

val attach : Velum_machine.Phys_mem.t -> t
(** Register a write listener on [mem] with every frame initially clean
    (the first checkpoint after attach is driven by instruction
    progress, which a fresh boot always shows). *)

val detach : t -> unit
(** Unregister the listener. *)

val churned : t -> int
(** Frames dirtied since the last {!drain}. *)

val total : t -> int
(** Frames dirtied over the tracker's lifetime (monotonic). *)

val drain : t -> int
(** Clear the bitmap and return how many frames were dirty — called by
    the supervisor at each committed checkpoint. *)
