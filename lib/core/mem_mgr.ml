open Velum_machine

type share_stats = { scanned : int; shared : int; freed : int }

(* Canonical frame for a digest, plus the owner entries that must be
   flipped to COW when a second copy appears. *)
type canonical = {
  hpa : int64;
  mutable cow_applied : bool;
  mutable first_owner : (Vm.t * int64) option; (* vm, gfn *)
}

let make_cow (vm : Vm.t) gfn hpa =
  P2m.set vm.Vm.p2m gfn (P2m.Present { hpa_ppn = hpa; writable = false; cow = true });
  (match vm.Vm.shadow with Some s -> Shadow.invalidate_gfn s gfn | None -> ());
  Vm.flush_all_tlbs vm

let share_pass vms =
  let table : (int64, canonical) Hashtbl.t = Hashtbl.create 1024 in
  let scanned = ref 0 and shared = ref 0 and freed = ref 0 in
  List.iter
    (fun (vm : Vm.t) ->
      let host = vm.Vm.host in
      P2m.iter vm.Vm.p2m ~f:(fun ~gfn entry ->
          match entry with
          | P2m.Present { hpa_ppn; cow = false; writable = _ }
            when Frame_alloc.refcount host.Host.alloc hpa_ppn > 1 ->
              (* intentionally shared (grant-mapped): merging it under
                 COW would silently unshare the channel on first write *)
              ()
          | P2m.Present { hpa_ppn; cow; writable = _ } -> (
              incr scanned;
              let digest = Phys_mem.frame_hash host.Host.mem ~ppn:hpa_ppn in
              match Hashtbl.find_opt table digest with
              | None ->
                  Hashtbl.replace table digest
                    {
                      hpa = hpa_ppn;
                      cow_applied = cow;
                      first_owner = (if cow then None else Some (vm, gfn));
                    }
              | Some canon ->
                  if canon.hpa = hpa_ppn then ()
                  else if Phys_mem.frame_equal host.Host.mem canon.hpa hpa_ppn then begin
                    (* First real duplicate: retroactively COW-protect the
                       canonical owner. *)
                    if not canon.cow_applied then begin
                      (match canon.first_owner with
                      | Some (ovm, ogfn) -> make_cow ovm ogfn canon.hpa
                      | None -> ());
                      canon.cow_applied <- true
                    end;
                    Frame_alloc.incr_ref host.Host.alloc canon.hpa;
                    Vm.revoke_exec_frame vm ~ppn:hpa_ppn;
                    if Frame_alloc.decr_ref host.Host.alloc hpa_ppn then incr freed;
                    make_cow vm gfn canon.hpa;
                    incr shared
                  end)
          | _ -> ()))
    vms;
  { scanned = !scanned; shared = !shared; freed = !freed }

let shared_frames vms =
  List.fold_left
    (fun acc (vm : Vm.t) ->
      acc + P2m.count vm.Vm.p2m ~f:(function P2m.Present { cow; _ } -> cow | _ -> false))
    0 vms

let saved_frames vms =
  (* Count distinct canonical frames with refcount > 1 once. *)
  let seen = Hashtbl.create 64 in
  let saved = ref 0 in
  List.iter
    (fun (vm : Vm.t) ->
      P2m.iter vm.Vm.p2m ~f:(fun ~gfn:_ entry ->
          match entry with
          | P2m.Present { hpa_ppn; cow = true; _ } when not (Hashtbl.mem seen hpa_ppn) ->
              Hashtbl.replace seen hpa_ppn ();
              let rc = Frame_alloc.refcount vm.Vm.host.Host.alloc hpa_ppn in
              if rc > 1 then saved := !saved + (rc - 1)
          | _ -> ()))
    vms;
  !saved

let evict (vm : Vm.t) ~n =
  let host = vm.Vm.host in
  (* The hypervisor cannot see which guest pages are hot, so victims are
     a uniform random sample of the present frames — the "blind
     eviction" the balloon argument is about.  Deterministic seed per
     VM. *)
  let candidates = ref [] in
  P2m.iter vm.Vm.p2m ~f:(fun ~gfn entry ->
      match entry with
      | P2m.Present { cow = false; _ } -> candidates := gfn :: !candidates
      | _ -> ());
  let pool = Array.of_list !candidates in
  let rng = Velum_util.Rng.create ~seed:(Int64.of_int (0x5eed + vm.Vm.id)) in
  Velum_util.Rng.shuffle rng pool;
  let evicted = ref 0 in
  Array.iter
    (fun gfn ->
      if !evicted < n then
        match P2m.get vm.Vm.p2m gfn with
        | P2m.Present { hpa_ppn; cow = false; _ } ->
            let slot = Host.swap_out host ~ppn:hpa_ppn in
            Vm.revoke_exec_frame vm ~ppn:hpa_ppn;
            ignore (Frame_alloc.decr_ref host.Host.alloc hpa_ppn);
            P2m.set vm.Vm.p2m gfn (P2m.Swapped { slot });
            (match vm.Vm.shadow with Some s -> Shadow.invalidate_gfn s gfn | None -> ());
            incr evicted
        | _ -> ())
    pool;
  if !evicted > 0 then Vm.flush_all_tlbs vm;
  !evicted
