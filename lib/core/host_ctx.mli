(** Per-host ambient state, gathered in one record.

    Everything a simulated host mutates outside its VMs' own structures
    lives here: the machine resources ({!Host}), the vCPU scheduler (and
    through it the per-scheduler {!Scheduler.t.notify} observer), the
    host's randomness root, its fault plan, and its tracing sink.

    The point of the bundle is the share-nothing invariant the parallel
    cluster runner relies on: two hosts in one process may share {e
    nothing} mutable except {!Velum_devices.Link} endpoints (and those
    are only touched at round barriers).  Constructing one [Host_ctx]
    per simulated host makes that auditable — if a piece of mutable
    state is not reachable from exactly one context, it has no business
    existing. *)

type t = {
  host : Host.t;  (** physical memory, frame allocator, cost model, swap *)
  sched : Scheduler.t;  (** this host's scheduler — including its notify cell *)
  rng : Velum_util.Rng.t;  (** per-host randomness root (never shared) *)
  faults : Velum_util.Fault.t;  (** per-host fault plan (owns its own RNG) *)
  mutable trace : Trace.t option;  (** per-host tracing sink *)
}

val create :
  ?host:Host.t ->
  ?sched:Scheduler.t ->
  ?seed:int64 ->
  ?faults:Velum_util.Fault.t ->
  ?trace:Trace.t ->
  unit ->
  t
(** Defaults: a fresh 64 MiB host, a fresh credit scheduler, seed 0, an
    inactive fault plan, no trace.  Never pass the same [host], [sched]
    or [faults] to two contexts that can run on different domains. *)

val host : t -> Host.t
val sched : t -> Scheduler.t
val rng : t -> Velum_util.Rng.t
val faults : t -> Velum_util.Fault.t
val trace : t -> Trace.t option
val set_trace : t -> Trace.t -> unit
