(** A virtual machine: guest memory view, vCPUs, virtual devices and the
    paging machinery that binds them to the host.

    Guest-physical address space layout mirrors bare metal: RAM at zero,
    the device window at {!Velum_machine.Bus.mmio_base} (the same guest
    images boot natively and virtualized).  Each vCPU has its own TLB
    (modelling one hardware context per virtual hart). *)

open Velum_isa
open Velum_machine
open Velum_devices

type paging_mode = Shadow_paging | Nested_paging

type exec_mode =
  | Trap_emulate
      (** every sensitive event is a full world switch (the default) *)
  | Binary_translation
      (** a software translator rewrites sensitive instructions in
          place: the first execution of each sensitive site pays a
          translation cost, later executions emulate inline at a small
          fraction of an exit.  Device accesses and hidden page faults
          still require real exits.  Models VMware-style adaptive BT
          (Adams & Agesen, ASPLOS'06); semantics are identical to
          trap-and-emulate, only the cost accounting differs. *)

type pv = {
  pv_console : bool;  (** guest prints via hypercall, not UART MMIO *)
  pv_pt : bool;  (** guest updates page tables via hypercall batches *)
}

val no_pv : pv
val full_pv : pv

type t = {
  id : int;
  name : string;
  host : Host.t;
  p2m : P2m.t;
  vcpus : Vcpu.t array;
  tlbs : Tlb.t array;  (** parallel to [vcpus] *)
  dtlbs : Dtlb.t array;
      (** per-vCPU data micro-TLBs backed by the matching [tlbs] entry;
          handed to the execution engine through {!Cpu.ctx} *)
  paging : paging_mode;
  mutable shadow : Shadow.t option;
  mutable nested : Nested.t option;
  bus : Bus.t;
  uart : Uart.t;
  mutable blk : Blockdev.t;
  mutable vblk : Virtio_blk.t;
  mutable nic : Nic.t option;
  mutable vnet : Virtio_net.t option;  (** paravirtual fabric port *)
  monitor : Monitor.t;
  dirty : Bytes.t;  (** dirty bitmap, one bit per guest frame *)
  mutable dirty_logging : bool;
  mutable remote_fetch : (int64 -> Bytes.t option) option;
      (** post-copy: pull a page from the migration source *)
  mutable remote_fault_cycles : int;
      (** latency charged per demand fetch *)
  pv : pv;
  mutable balloon_pages : int;  (** pages currently surrendered *)
  exec_mode : exec_mode;
  bt_cache : (int64, unit) Hashtbl.t;  (** translated sensitive sites *)
  engine : Engine.t;
      (** execution engine driving this VM's vCPUs; [exec_mode] above is
          the {e cost-model} abstraction (what an exit costs), the engine
          is the {e mechanism} (how instructions are dispatched) — the
          two compose freely *)
  mem_listener : int option;
      (** host-memory write-listener handle keeping the engine's
          translation cache coherent (block engine only) *)
  event_channels : (int64, t) Hashtbl.t;
      (** event-channel ports → peer VM (managed by {!Event}) *)
  mutable event_pending : bool;
      (** an unacknowledged event raises the external-interrupt line *)
  mutable trace : Trace.t option;
      (** tracing sink shared with the hypervisor ([None] = tracing off;
          set by {!Hypervisor.set_trace}, inherited at
          {!Hypervisor.create_vm}) *)
  mutable traces_seen : int;
      (** superblock traces already reported to the [trace] ring — the
          hypervisor polls {!traces_built} after each vCPU slice and
          records a formation event for the delta *)
}

val create :
  host:Host.t ->
  id:int ->
  name:string ->
  mem_frames:int ->
  ?vcpu_count:int ->
  ?paging:paging_mode ->
  ?pv:pv ->
  ?blk_sectors:int ->
  ?populate:bool ->
  ?nic:Nic.link_binding ->
  ?tlb_size:int ->
  ?exec_mode:exec_mode ->
  ?engine:Engine.kind ->
  entry:int64 ->
  unit ->
  t
(** Allocates all guest frames eagerly (Present, writable) unless
    [populate = false], in which case every entry starts [Absent]
    (post-copy migration fills them as [Remote]).

    @raise Failure when the host is out of frames (everything allocated
    so far is returned first). *)

val destroy : t -> unit
(** Release every host frame the VM holds (guest memory, shadow tables).
    The VM must not be used afterwards. *)

val attach_vnet : t -> link:Link.t -> endpoint:Link.endpoint -> Virtio_net.t
(** Plug a virtio-net adapter into one end of [link] and attach it to
    the VM's bus (at {!Virtio_net.mmio_base}).  Callable any time after
    creation — this is also how a live-migration twin gets its switch
    port back on the destination host, with {!Virtio_net.configure}
    restoring the ring layout host-side. *)

val load_image : t -> Asm.image -> unit
(** Copy an assembled image into guest-physical memory. *)

val mem_frames : t -> int
val halted : t -> bool
(** All vCPUs halted. *)

val guest_cycles : t -> int64
val vmm_cycles : t -> int64

(** {1 Dirty-page tracking (live migration)} *)

val mark_dirty : t -> int64 -> unit
val is_dirty : t -> int64 -> bool
val dirty_count : t -> int
val collect_dirty : t -> clear:bool -> int64 list
val start_dirty_logging : t -> unit
val stop_dirty_logging : t -> unit

(** {1 Guest-physical memory access (host side)}

    Used by virtual-device DMA, hypercall buffers and migration.  Writes
    resolve copy-on-write and dirty logging exactly as guest stores do. *)

val resolve_read : t -> int64 -> int64 option
(** [resolve_read vm gfn] — machine frame backing [gfn] for reading
    (performs swap-in / remote fetch); [None] if unbacked. *)

val resolve_write : t -> int64 -> int64 option

val read_gpa_u64 : t -> int64 -> int64 option
val write_gpa_u64 : t -> int64 -> int64 -> bool
val read_gpa_bytes : t -> int64 -> int -> Bytes.t option
val write_gpa_bytes : t -> int64 -> Bytes.t -> bool

val guest_mem : t -> Virtio_ring.guest_mem
val guest_dma : t -> Blockdev.dma

(** {1 Guest-virtual access (instruction emulation)} *)

val read_guest_va : t -> vcpu_idx:int -> int64 -> int64 option
(** Software walk of the guest's own tables (no side effects), then a
    physical read; [None] on any fault. *)

(** {1 Translation} *)

val translate :
  t ->
  vcpu_idx:int ->
  access:Arch.access ->
  user:bool ->
  int64 ->
  (Cpu.xlate, Cpu.xlate_fault) result
(** The translate function installed in the deprivileged hart's context;
    dispatches on paging mode and the vCPU's virtual [satp]. *)

val flush_vcpu_tlb : t -> vcpu_idx:int -> unit
val flush_all_tlbs : t -> unit

(** {1 Execution engine} *)

val engine_kind : t -> Engine.kind

val revoke_exec_frame : t -> ppn:int64 -> unit
(** Drop any decoded blocks cached for machine frame [ppn].  Called when
    a frame leaves the VM with its bytes intact — ballooning, COW
    sharing, hypervisor swap-out — so the translation cache never pins
    work for pages the guest no longer owns.  Content {e changes} need no
    call: the cache subscribes to {!Velum_machine.Phys_mem} write
    listeners.  No-op on the interpreter engine. *)

val traces_built : t -> int
(** Superblock traces compiled so far by this VM's block engine (0 on
    the interpreter).  The hypervisor compares this against
    [traces_seen] after each vCPU slice to emit trace-formation events
    into the {!Trace} ring. *)

(** {1 Ballooning} *)

val balloon_out : t -> int64 -> bool
(** [balloon_out vm gfn] — the guest surrendered [gfn]; frees the backing
    frame.  False if the gfn is not present. *)

val balloon_in : t -> int64 -> bool
(** [balloon_in vm gfn] — give the page back (zeroed).  False if not
    ballooned or the host is out of memory. *)

(** {1 Console} *)

val console_put : t -> char -> unit
val console_output : t -> string

val pp : Format.formatter -> t -> unit

val publish_stats : t -> unit
(** Snapshot engine dispatch, chain, trace, TLB and micro-TLB counters
    into the monitor as gauges ([engine.*], [tlb.*], [dtlb.*]).  Presentation
    paths call this right before printing; the run loop never does, so
    raw monitor state stays comparable across engines. *)
