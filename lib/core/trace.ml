(* Cycle-stamped tracing and profiling.  Each traced VM gets a bounded
   event ring (oldest events are evicted, never the newest), a per-exit-
   kind latency histogram, and a guest/VMM/device cycle-attribution
   triple.  Everything is stamped with simulated cycles and accumulated
   with integer arithmetic, so two identical runs export byte-identical
   traces — the CI determinism gate diffs them literally.  Recording
   never touches guest or hypervisor state: a traced run executes the
   exact same simulated cycles as an untraced one. *)

module Ring = Velum_util.Ring
module Histogram = Velum_util.Histogram
module Tablefmt = Velum_util.Tablefmt

type ha_what = Ha_checkpoint | Ha_restart | Ha_degraded | Ha_failover

let ha_what_name = function
  | Ha_checkpoint -> "checkpoint"
  | Ha_restart -> "restart"
  | Ha_degraded -> "degraded"
  | Ha_failover -> "failover"

type stop_reason = S_slice | S_yield | S_block | S_halt

let stop_name = function
  | S_slice -> "slice"
  | S_yield -> "yield"
  | S_block -> "block"
  | S_halt -> "halt"

type event =
  | Exit of { kind : Monitor.exit_kind; cost : int; detail : int64 }
  | Irq_inject of { cost : int }
  | Dispatch of { vcpu : int; slice : int; used : int; stop : stop_reason }
  | Sched_wake of { boosted : bool }
  | Sched_refill
  | Sched_clamp
  | Hypercall of { num : int64 }
  | Device_io of { write : bool; addr : int64 }
  | Migration_round of { round : int; pages : int }
  | Ha_event of { what : ha_what; detail : int64 }
  | Trace_formed of { count : int }

type record = { at : int64; ev : event }

type stream = {
  vm_id : int;
  mutable vm_name : string;
  ring : record Ring.t;
  mutable dropped : int;
  hist : Histogram.t array; (* indexed by Monitor.kind_index *)
  mutable guest_cycles : int64;
  mutable vmm_cycles : int64; (* exit service minus device emulation *)
  mutable device_cycles : int64; (* MMIO / port-IO exit service *)
  mutable events : int; (* total recorded, including evicted *)
}

type t = {
  ring_capacity : int;
  streams : (int, stream) Hashtbl.t;
}

let default_ring_capacity = 4096

let create ?(ring_capacity = default_ring_capacity) () =
  { ring_capacity; streams = Hashtbl.create 7 }

let stream t ~vm_id ~name =
  match Hashtbl.find_opt t.streams vm_id with
  | Some s ->
      if s.vm_name <> name then s.vm_name <- name;
      s
  | None ->
      let s =
        {
          vm_id;
          vm_name = name;
          ring = Ring.create ~capacity:t.ring_capacity;
          dropped = 0;
          hist = Array.init Monitor.nkinds (fun _ -> Histogram.create ());
          guest_cycles = 0L;
          vmm_cycles = 0L;
          device_cycles = 0L;
          events = 0;
        }
      in
      Hashtbl.replace t.streams vm_id s;
      s

let is_device_kind = function
  | Monitor.E_mmio | Monitor.E_port_io -> true
  | _ -> false

let record t ~vm_id ~name ~at ev =
  let s = stream t ~vm_id ~name in
  if Ring.is_full s.ring then s.dropped <- s.dropped + 1;
  Ring.push_force s.ring { at; ev };
  s.events <- s.events + 1;
  match ev with
  | Exit { kind; cost; _ } ->
      Histogram.add s.hist.(Monitor.kind_index kind) cost;
      if is_device_kind kind then
        s.device_cycles <- Int64.add s.device_cycles (Int64.of_int cost)
      else s.vmm_cycles <- Int64.add s.vmm_cycles (Int64.of_int cost)
  | Irq_inject { cost } -> s.vmm_cycles <- Int64.add s.vmm_cycles (Int64.of_int cost)
  | _ -> ()

let add_guest_cycles t ~vm_id ~name cycles =
  let s = stream t ~vm_id ~name in
  s.guest_cycles <- Int64.add s.guest_cycles (Int64.of_int cycles)

(* ---- accessors (tests, bench) ---- *)

let vm_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.streams [] |> List.sort compare

let events_recorded t =
  Hashtbl.fold (fun _ s acc -> acc + s.events) t.streams 0

let find t ~vm_id = Hashtbl.find_opt t.streams vm_id

let exit_count t ~vm_id kind =
  match find t ~vm_id with
  | None -> 0
  | Some s -> Histogram.count s.hist.(Monitor.kind_index kind)

let guest_cycles t ~vm_id =
  match find t ~vm_id with None -> 0L | Some s -> s.guest_cycles

let vmm_cycles t ~vm_id =
  match find t ~vm_id with None -> 0L | Some s -> s.vmm_cycles

let device_cycles t ~vm_id =
  match find t ~vm_id with None -> 0L | Some s -> s.device_cycles

(* ---- JSONL export ----

   Hand-rolled writer (the toolchain ships no JSON library).  One object
   per line: a [meta] header, then per VM (ascending id) an attribution
   line, the non-empty per-kind histograms, and finally the retained
   event tail in ring (oldest-first) order.  All iteration is over
   sorted keys, never raw [Hashtbl] order. *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_event buf vm_id { at; ev } =
  let p fmt = Printf.bprintf buf fmt in
  p "{\"type\":\"event\",\"vm\":%d,\"at\":%Ld," vm_id at;
  (match ev with
  | Exit { kind; cost; detail } ->
      p "\"ev\":\"exit\",\"kind\":\"%s\",\"cost\":%d,\"detail\":%Ld"
        (Monitor.exit_kind_name kind) cost detail
  | Irq_inject { cost } -> p "\"ev\":\"irq-inject\",\"cost\":%d" cost
  | Dispatch { vcpu; slice; used; stop } ->
      p "\"ev\":\"dispatch\",\"vcpu\":%d,\"slice\":%d,\"used\":%d,\"stop\":\"%s\"" vcpu
        slice used (stop_name stop)
  | Sched_wake { boosted } ->
      p "\"ev\":\"sched-wake\",\"boosted\":%b" boosted
  | Sched_refill -> p "\"ev\":\"sched-refill\""
  | Sched_clamp -> p "\"ev\":\"sched-clamp\""
  | Hypercall { num } -> p "\"ev\":\"hypercall\",\"num\":%Ld" num
  | Device_io { write; addr } ->
      p "\"ev\":\"device-io\",\"write\":%b,\"addr\":%Ld" write addr
  | Migration_round { round; pages } ->
      p "\"ev\":\"migration-round\",\"round\":%d,\"pages\":%d" round pages
  | Ha_event { what; detail } ->
      p "\"ev\":\"ha\",\"what\":\"%s\",\"detail\":%Ld" (ha_what_name what) detail
  | Trace_formed { count } -> p "\"ev\":\"trace-formed\",\"count\":%d" count);
  p "}\n"

let export_buf t buf =
  let p fmt = Printf.bprintf buf fmt in
  let ids = vm_ids t in
  p "{\"type\":\"meta\",\"version\":1,\"ring_capacity\":%d,\"vms\":%d,\"events\":%d}\n"
    t.ring_capacity (List.length ids) (events_recorded t);
  List.iter
    (fun id ->
      let s = Hashtbl.find t.streams id in
      p
        "{\"type\":\"vm\",\"id\":%d,\"name\":\"%s\",\"guest_cycles\":%Ld,\"vmm_cycles\":%Ld,\"device_cycles\":%Ld,\"events\":%d,\"dropped\":%d}\n"
        s.vm_id (json_escape s.vm_name) s.guest_cycles s.vmm_cycles s.device_cycles
        s.events s.dropped)
    ids;
  List.iter
    (fun id ->
      let s = Hashtbl.find t.streams id in
      List.iter
        (fun kind ->
          let h = s.hist.(Monitor.kind_index kind) in
          if Histogram.count h > 0 then begin
            p
              "{\"type\":\"hist\",\"vm\":%d,\"kind\":\"%s\",\"count\":%d,\"sum\":%Ld,\"min\":%d,\"max\":%d,\"mean\":%.1f,\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f,\"buckets\":["
              s.vm_id (Monitor.exit_kind_name kind) (Histogram.count h)
              (Histogram.sum h) (Histogram.min_value h) (Histogram.max_value h)
              (Histogram.mean h)
              (Histogram.percentile h 50.0)
              (Histogram.percentile h 95.0)
              (Histogram.percentile h 99.0);
            List.iteri
              (fun i (lo, n) -> p "%s[%d,%d]" (if i = 0 then "" else ",") lo n)
              (Histogram.buckets h);
            p "]}\n"
          end)
        Monitor.all_exit_kinds)
    ids;
  List.iter
    (fun id ->
      let s = Hashtbl.find t.streams id in
      Ring.iter (add_event buf s.vm_id) s.ring)
    ids

let export_string t =
  let buf = Buffer.create 65536 in
  export_buf t buf;
  Buffer.contents buf

let export_file t path =
  let oc = open_out path in
  output_string oc (export_string t);
  close_out oc

(* ---- report ----

   Reads back only the export format above, with a minimal field
   extractor rather than a JSON parser (none is available): find
   ["key":] and take the raw token up to the next top-level [,] or [}],
   skipping over nested arrays. *)

let field line key =
  let pat = "\"" ^ key ^ "\":" in
  let plen = String.length pat and llen = String.length line in
  let rec find i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let depth = ref 0 and stop = ref start in
      (try
         for i = start to llen - 1 do
           match line.[i] with
           | '[' -> incr depth
           | ']' -> decr depth
           | (',' | '}') when !depth = 0 ->
               stop := i;
               raise Exit
           | _ -> ()
         done;
         stop := llen
       with Exit -> ());
      Some (String.sub line start (!stop - start))

let field_str line key =
  match field line key with
  | Some v when String.length v >= 2 && v.[0] = '"' -> String.sub v 1 (String.length v - 2)
  | other -> Option.value other ~default:""

let field_int line key =
  match field line key with
  | Some v -> ( try int_of_string v with _ -> 0)
  | None -> 0

let field_i64 line key =
  match field line key with
  | Some v -> ( try Int64.of_string v with _ -> 0L)
  | None -> 0L

let render_report_lines lines =
  let vms = List.filter (fun l -> field_str l "type" = "vm") lines in
  let hists = List.filter (fun l -> field_str l "type" = "hist") lines in
  let events = List.filter (fun l -> field_str l "type" = "event") lines in
  let buf = Buffer.create 4096 in
  let attribution = Tablefmt.create ~title:"cycle attribution (per VM)"
      [
        ("vm", Tablefmt.Left);
        ("guest", Tablefmt.Right);
        ("vmm", Tablefmt.Right);
        ("device", Tablefmt.Right);
        ("total", Tablefmt.Right);
        ("vmm+dev %", Tablefmt.Right);
      ]
  in
  List.iter
    (fun l ->
      let guest = field_i64 l "guest_cycles"
      and vmm = field_i64 l "vmm_cycles"
      and dev = field_i64 l "device_cycles" in
      let total = Int64.add guest (Int64.add vmm dev) in
      let overhead =
        if total = 0L then 0.0
        else Int64.to_float (Int64.add vmm dev) /. Int64.to_float total *. 100.0
      in
      Tablefmt.add_row attribution
        [
          Printf.sprintf "%d:%s" (field_int l "id") (field_str l "name");
          Int64.to_string guest;
          Int64.to_string vmm;
          Int64.to_string dev;
          Int64.to_string total;
          Tablefmt.cell_f ~decimals:1 overhead;
        ])
    vms;
  Buffer.add_string buf (Tablefmt.render attribution);
  Buffer.add_char buf '\n';
  let latency = Tablefmt.create ~title:"exit latency histograms (cycles)"
      [
        ("vm", Tablefmt.Left);
        ("exit kind", Tablefmt.Left);
        ("count", Tablefmt.Right);
        ("mean", Tablefmt.Right);
        ("p50", Tablefmt.Right);
        ("p95", Tablefmt.Right);
        ("p99", Tablefmt.Right);
        ("max", Tablefmt.Right);
      ]
  in
  List.iter
    (fun l ->
      Tablefmt.add_row latency
        [
          string_of_int (field_int l "vm");
          field_str l "kind";
          string_of_int (field_int l "count");
          field_str l "mean";
          field_str l "p50";
          field_str l "p95";
          field_str l "p99";
          string_of_int (field_int l "max");
        ])
    hists;
  Buffer.add_string buf (Tablefmt.render latency);
  Buffer.add_char buf '\n';
  let formed = List.filter (fun l -> field_str l "ev" = "trace-formed") events in
  if formed <> [] then begin
    let total = List.fold_left (fun acc l -> acc + field_int l "count") 0 formed in
    Buffer.add_string buf
      (Printf.sprintf "superblock traces formed: %d (%d formation events)\n" total
         (List.length formed))
  end;
  (match List.find_opt (fun l -> field_str l "type" = "meta") lines with
  | Some meta ->
      Buffer.add_string buf
        (Printf.sprintf "events recorded: %d (retained tail: %d)\n"
           (field_int meta "events") (List.length events))
  | None -> ());
  Buffer.contents buf

let render_report path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  render_report_lines (List.rev !lines)
