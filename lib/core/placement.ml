type vm_req = { vm_name : string; cpu_units : int; mem_mb : int }

type host_spec = {
  cores : int;
  ram_mb : int;
  watts_idle : float;
  watts_per_core : float;
}

let default_host = { cores = 8; ram_mb = 16384; watts_idle = 120.0; watts_per_core = 20.0 }

type assignment = { host_index : int; req : vm_req }

type plan = {
  hosts_used : int;
  assignments : assignment list;
  cpu_utilization : float;
  mem_utilization : float;
}

type bin = { mutable cpu_left : int; mutable mem_left : int }

let first_fit_decreasing spec reqs =
  let cpu_cap = spec.cores * 100 in
  List.iter
    (fun r ->
      if r.cpu_units > cpu_cap || r.mem_mb > spec.ram_mb then
        invalid_arg (Printf.sprintf "Placement: %s exceeds a whole host" r.vm_name))
    reqs;
  (* Sort by dominant normalized dimension, largest first. *)
  let key r =
    Float.max
      (float_of_int r.cpu_units /. float_of_int cpu_cap)
      (float_of_int r.mem_mb /. float_of_int spec.ram_mb)
  in
  let sorted = List.sort (fun a b -> compare (key b) (key a)) reqs in
  let bins : bin array ref = ref [||] in
  let assignments = ref [] in
  let place r =
    let fits b = b.cpu_left >= r.cpu_units && b.mem_left >= r.mem_mb in
    let idx =
      let found = ref None in
      Array.iteri
        (fun i b -> if !found = None && fits b then found := Some i)
        !bins;
      match !found with
      | Some i -> i
      | None ->
          bins := Array.append !bins [| { cpu_left = cpu_cap; mem_left = spec.ram_mb } |];
          Array.length !bins - 1
    in
    let b = !bins.(idx) in
    b.cpu_left <- b.cpu_left - r.cpu_units;
    b.mem_left <- b.mem_left - r.mem_mb;
    assignments := { host_index = idx; req = r } :: !assignments
  in
  List.iter place sorted;
  let used = Array.length !bins in
  let cpu_util =
    if used = 0 then 0.0
    else
      Array.fold_left
        (fun acc b -> acc +. (float_of_int (cpu_cap - b.cpu_left) /. float_of_int cpu_cap))
        0.0 !bins
      /. float_of_int used
  in
  let mem_util =
    if used = 0 then 0.0
    else
      Array.fold_left
        (fun acc b ->
          acc +. (float_of_int (spec.ram_mb - b.mem_left) /. float_of_int spec.ram_mb))
        0.0 !bins
      /. float_of_int used
  in
  {
    hosts_used = used;
    assignments = List.rev !assignments;
    cpu_utilization = cpu_util;
    mem_utilization = mem_util;
  }

let consolidation_ratio plan =
  if plan.hosts_used = 0 then 0.0
  else float_of_int (List.length plan.assignments) /. float_of_int plan.hosts_used

(* ---- incremental placement for a live cluster ----

   [first_fit_decreasing] above is single-shot: it owns all the bins and
   sees every request at once.  A control plane instead holds a pool of
   *fixed* hosts whose occupancy changes as VMs are admitted, evacuated
   and drained, and needs first-fit decisions one at a time — with two
   datacenter policies layered on: anti-affinity groups (no two replicas
   of one service on the same host) and per-host headroom reservations
   (capacity admission may not touch, kept free to absorb evacuations). *)

module Pool = struct
  type host_state = {
    host_id : int;
    cap_units : int;
    headroom : int;
    mutable used_units : int;
    mutable placed : int;
    mutable open_ : bool;
    mutable groups : int list;
  }

  type t = { hosts : host_state array }

  let create ~hosts ~cap_units ~headroom =
    if hosts <= 0 then invalid_arg "Placement.Pool.create: hosts";
    if cap_units <= 0 then invalid_arg "Placement.Pool.create: cap_units";
    if headroom < 0 || headroom >= cap_units then
      invalid_arg "Placement.Pool.create: headroom must be in [0, cap_units)";
    {
      hosts =
        Array.init hosts (fun host_id ->
            {
              host_id;
              cap_units;
              headroom;
              used_units = 0;
              placed = 0;
              open_ = true;
              groups = [];
            });
    }

  let host t i = t.hosts.(i)
  let nhosts t = Array.length t.hosts
  let cordon t i = t.hosts.(i).open_ <- false
  let uncordon t i = t.hosts.(i).open_ <- true

  let fits h ~units ~group ~use_headroom =
    let cap = if use_headroom then h.cap_units else h.cap_units - h.headroom in
    h.open_
    && h.used_units + units <= cap
    && match group with None -> true | Some g -> not (List.mem g h.groups)

  let choose ?(use_headroom = false) ?group t ~units =
    let n = Array.length t.hosts in
    let rec go i =
      if i >= n then None
      else if fits t.hosts.(i) ~units ~group ~use_headroom then Some i
      else go (i + 1)
    in
    go 0

  let commit t i ~units ~group =
    let h = t.hosts.(i) in
    h.used_units <- h.used_units + units;
    h.placed <- h.placed + 1;
    match group with
    | Some g when not (List.mem g h.groups) -> h.groups <- g :: h.groups
    | _ -> ()

  let shrink t i ~units =
    let h = t.hosts.(i) in
    h.used_units <- max 0 (h.used_units - units)

  let release t i ~units ~group =
    let h = t.hosts.(i) in
    h.used_units <- max 0 (h.used_units - units);
    h.placed <- max 0 (h.placed - 1);
    match group with
    | Some g -> h.groups <- List.filter (fun g' -> g' <> g) h.groups
    | None -> ()

  let consolidation t =
    let vms = Array.fold_left (fun acc h -> acc + h.placed) 0 t.hosts in
    let used =
      Array.fold_left (fun acc h -> acc + if h.placed > 0 then 1 else 0) 0 t.hosts
    in
    if used = 0 then 0.0 else float_of_int vms /. float_of_int used
end

let sort_decreasing reqs =
  (* FFD ordering for incremental admission: largest first, name as the
     deterministic tiebreak so equal-size requests keep a fixed order. *)
  List.sort
    (fun a b ->
      match compare b.cpu_units a.cpu_units with
      | 0 -> (
          match compare b.mem_mb a.mem_mb with
          | 0 -> compare a.vm_name b.vm_name
          | c -> c)
      | c -> c)
    reqs

type cost_report = {
  unconsolidated_hosts : int;
  consolidated_hosts : int;
  watts_before : float;
  watts_after : float;
  annual_kwh_saved : float;
  annual_euro_saved : float;
  euro_saved_per_displaced_server : float;
}

let busy_watts spec reqs =
  (* Total dynamic power is workload-dependent, not placement-dependent:
     the same busy cores burn on either side. *)
  let units = List.fold_left (fun acc r -> acc + r.cpu_units) 0 reqs in
  spec.watts_per_core *. (float_of_int units /. 100.0)

let cost_savings spec reqs plan ?(euro_per_kwh = 0.12) ?(cooling_overhead = 0.6) () =
  let n_vms = List.length reqs in
  let dynamic = busy_watts spec reqs in
  let before = (float_of_int n_vms *. spec.watts_idle) +. dynamic in
  let after = (float_of_int plan.hosts_used *. spec.watts_idle) +. dynamic in
  let with_cooling w = w *. (1.0 +. cooling_overhead) in
  let hours = 24.0 *. 365.0 in
  let kwh_saved = (with_cooling before -. with_cooling after) *. hours /. 1000.0 in
  let euro = kwh_saved *. euro_per_kwh in
  let displaced = n_vms - plan.hosts_used in
  {
    unconsolidated_hosts = n_vms;
    consolidated_hosts = plan.hosts_used;
    watts_before = with_cooling before;
    watts_after = with_cooling after;
    annual_kwh_saved = kwh_saved;
    annual_euro_saved = euro;
    euro_saved_per_displaced_server =
      (if displaced <= 0 then 0.0 else euro /. float_of_int displaced);
  }
