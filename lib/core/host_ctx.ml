module Rng = Velum_util.Rng
module Fault = Velum_util.Fault

type t = {
  host : Host.t;
  sched : Scheduler.t;
  rng : Rng.t;
  faults : Fault.t;
  mutable trace : Trace.t option;
}

let create ?host ?sched ?(seed = 0L) ?faults ?trace () =
  let host = match host with Some h -> h | None -> Host.create () in
  let sched = match sched with Some s -> s | None -> Credit.create () in
  let faults = match faults with Some f -> f | None -> Fault.none () in
  { host; sched; rng = Rng.create ~seed; faults; trace }

let host t = t.host
let sched t = t.sched
let rng t = t.rng
let faults t = t.faults
let trace t = t.trace
let set_trace t tr = t.trace <- Some tr
