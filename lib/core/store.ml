open Velum_devices
module Fault = Velum_util.Fault
module Fnv = Velum_util.Fnv
module Rng = Velum_util.Rng

let sb_magic = 0x56454C53544F5231L (* "VELSTOR1" *)
let chunk_magic = 0x56454C43484E4B31L (* "VELCHNK1" *)
let sb_bytes = 48
let chunk_header = 32
let chunk_payload = 4096
let data_start_sector = 2

type t = {
  blk : Blockdev.t;
  region_sectors : int;
  mutable faults : Fault.t;
  mutable gen : int; (* newest complete generation on the device *)
  mutable commits : int;
  mutable torn : int;
  mutable bytes_written : int;
}

let device t = t.blk
let set_faults t f = t.faults <- f
let generation t = t.gen
let commits t = t.commits
let torn_commits t = t.torn
let bytes_written t = t.bytes_written

let commit_cycles ~bytes = Int64.of_int ((2 * 2_000) + (2 * bytes))

let sectors_for ~image_bytes =
  let chunks = max 1 ((image_bytes + chunk_payload - 1) / chunk_payload) in
  let region_bytes = (chunks * (chunk_header + chunk_payload)) + sb_bytes in
  let region_sectors = (region_bytes + Blockdev.sector_bytes - 1) / Blockdev.sector_bytes in
  data_start_sector + (2 * (region_sectors + 2))

(* --- on-device records --- *)

let put_i64 b off v = Bytes.set_int64_le b off v
let get_i64 b off = Bytes.get_int64_le b off

let superblock ~gen ~region ~len ~img_csum =
  let b = Bytes.create sb_bytes in
  put_i64 b 0 sb_magic;
  put_i64 b 8 (Int64.of_int gen);
  put_i64 b 16 (Int64.of_int region);
  put_i64 b 24 (Int64.of_int len);
  put_i64 b 32 img_csum;
  put_i64 b 40 (Fnv.hash_bytes ~pos:0 ~len:40 b);
  b

let sb_off slot = slot * Blockdev.sector_bytes
let data_off t region =
  (data_start_sector + (region * t.region_sectors)) * Blockdev.sector_bytes

(* --- commit: chunk records, then the superblock flip --- *)

let chunk_records image =
  let len = Bytes.length image in
  let nchunks = (len + chunk_payload - 1) / chunk_payload in
  List.init nchunks (fun i ->
      let pos = i * chunk_payload in
      let plen = min chunk_payload (len - pos) in
      let b = Bytes.create (chunk_header + plen) in
      put_i64 b 0 chunk_magic;
      put_i64 b 8 (Int64.of_int i);
      put_i64 b 16 (Int64.of_int plen);
      put_i64 b 24 (Fnv.hash_bytes ~pos ~len:plen image);
      Bytes.blit image pos b chunk_header plen;
      b)

let commit_bytes _t image =
  List.fold_left (fun acc b -> acc + Bytes.length b) sb_bytes (chunk_records image)

type outcome = Committed of int | Torn of int

let commit ?crash_at t image =
  let gen = t.gen + 1 in
  let region = gen mod 2 in
  let chunks = chunk_records image in
  let data_len = List.fold_left (fun acc b -> acc + Bytes.length b) 0 chunks in
  if data_len > t.region_sectors * Blockdev.sector_bytes then
    invalid_arg "Store.commit: image does not fit a region";
  let sb =
    superblock ~gen ~region ~len:(Bytes.length image)
      ~img_csum:(Fnv.hash_bytes image)
  in
  let writes =
    let off = ref (data_off t region) in
    List.map
      (fun b ->
        let w = (!off, b) in
        off := !off + Bytes.length b;
        w)
      chunks
    @ [ (sb_off (gen mod 2), sb) ]
  in
  let total = List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 writes in
  let cut =
    match crash_at with
    | Some n -> Some (max 0 (min n (total - 1)))
    | None ->
        (* [now] for window-style plans is the commit ordinal, so a plan
           can also say "power fails during commit 3". *)
        if Fault.fire t.faults Fault.Store_torn ~now:(Int64.of_int t.commits)
        then Some (Rng.int (Fault.rng t.faults) total)
        else None
  in
  match cut with
  | Some cut ->
      (* Power fails after [cut] bytes: the prefix lands, the rest never
         reaches the device.  The in-memory generation is deliberately
         not advanced — a real crash loses it anyway; [mount] re-derives
         the truth from the device. *)
      let budget = ref cut in
      List.iter
        (fun (off, b) ->
          let n = min !budget (Bytes.length b) in
          if n > 0 then Blockdev.pwrite t.blk ~off b ~pos:0 ~len:n;
          budget := !budget - n)
        writes;
      t.torn <- t.torn + 1;
      t.bytes_written <- t.bytes_written + cut;
      Torn cut
  | None ->
      List.iter
        (fun (off, b) -> Blockdev.pwrite t.blk ~off b ~pos:0 ~len:(Bytes.length b))
        writes;
      t.bytes_written <- t.bytes_written + total;
      (if Fault.fire t.faults Fault.Store_csum ~now:(Int64.of_int t.commits) then begin
         (* Latent rot: flip one committed data bit so the next scan must
            detect it and fall back a generation. *)
         let rng = Fault.rng t.faults in
         let off = data_off t region + Rng.int rng data_len in
         let b = Blockdev.pread t.blk ~off ~len:1 in
         Bytes.set b 0
           (Char.chr (Char.code (Bytes.get b 0) lxor (1 lsl Rng.int rng 8)));
         Blockdev.pwrite t.blk ~off b ~pos:0 ~len:1
       end);
      t.gen <- gen;
      t.commits <- t.commits + 1;
      Committed gen

(* --- recovery scan --- *)

(* Validate one superblock slot and, if its structure holds, re-read and
   re-checksum every chunk of the generation it describes.  Returns the
   image on full success. *)
let read_candidate t slot =
  let sb = Blockdev.pread t.blk ~off:(sb_off slot) ~len:sb_bytes in
  if get_i64 sb 0 <> sb_magic then None (* never written; not a fault *)
  else if get_i64 sb 40 <> Fnv.hash_bytes ~pos:0 ~len:40 sb then begin
    Fault.observe t.faults Fault.Store_torn;
    None
  end
  else begin
    let gen = Int64.to_int (get_i64 sb 8) in
    let region = Int64.to_int (get_i64 sb 16) in
    let len = Int64.to_int (get_i64 sb 24) in
    let img_csum = get_i64 sb 32 in
    let region_bytes = t.region_sectors * Blockdev.sector_bytes in
    if gen <= 0 || region < 0 || region > 1 || len < 0 || len > region_bytes
    then begin
      Fault.observe t.faults Fault.Store_torn;
      None
    end
    else begin
      let nchunks = (len + chunk_payload - 1) / chunk_payload in
      let image = Bytes.create len in
      let off = ref (data_off t region) in
      let ok = ref true in
      let torn = ref false in
      (try
         for i = 0 to nchunks - 1 do
           let hdr = Blockdev.pread t.blk ~off:!off ~len:chunk_header in
           let pos = i * chunk_payload in
           let plen = min chunk_payload (len - pos) in
           if
             get_i64 hdr 0 <> chunk_magic
             || get_i64 hdr 8 <> Int64.of_int i
             || get_i64 hdr 16 <> Int64.of_int plen
           then begin
             torn := true;
             raise Exit
           end;
           let payload = Blockdev.pread t.blk ~off:(!off + chunk_header) ~len:plen in
           if get_i64 hdr 24 <> Fnv.hash_bytes payload then raise Exit;
           Bytes.blit payload 0 image pos plen;
           off := !off + chunk_header + plen
         done
       with Exit | Invalid_argument _ -> ok := false);
      if !ok && Fnv.hash_bytes image = img_csum then Some (image, gen)
      else begin
        Fault.observe t.faults
          (if !torn then Fault.Store_torn else Fault.Store_csum);
        None
      end
    end
  end

let recover t =
  match (read_candidate t 0, read_candidate t 1) with
  | None, None -> None
  | (Some _ as c), None | None, (Some _ as c) -> c
  | Some (i0, g0), Some (i1, g1) ->
      if g0 > g1 then Some (i0, g0) else Some (i1, g1)

(* --- construction --- *)

let of_blk ?(faults = Fault.none ()) blk =
  let nsectors = Blockdev.sectors blk in
  if nsectors < data_start_sector + 2 then
    invalid_arg "Store: device too small for two superblocks and data";
  let region_sectors = (nsectors - data_start_sector) / 2 in
  { blk; region_sectors; faults; gen = 0; commits = 0; torn = 0; bytes_written = 0 }

let host_dma =
  (* The store is a host-side controller path: no guest DMA ever runs
     through it. *)
  { Blockdev.dma_read = (fun _ _ -> None); dma_write = (fun _ _ -> false) }

let create ?(sectors = 8192) ?faults () =
  of_blk ?faults (Blockdev.create ~sectors host_dma)

let mount ?faults blk =
  let t = of_blk ?faults blk in
  (match recover t with Some (_, gen) -> t.gen <- gen | None -> ());
  t
