open Velum_devices
module Fault = Velum_util.Fault
module Fnv = Velum_util.Fnv
module Rng = Velum_util.Rng

let sb_magic = 0x56454C53544F5232L (* "VELSTOR2" *)
let chunk_magic = 0x56454C43484E4B32L (* "VELCHNK2" *)
let manifest_magic = 0x56454C4D4E465332L (* "VELMNFS2" *)
let catalog_magic = 0x56454C43544C4732L (* "VELCTLG2" *)
let reftable_magic = 0x56454C5245465432L (* "VELREFT2" *)
let sb_bytes = 72
let chunk_header = 24
let chunk_payload = 4096
let data_start_sector = 2
let data_start = data_start_sector * Blockdev.sector_bytes

(* A chunk the in-memory index knows about: where the newest clean copy
   of this content lives in the active space, and how many references
   the live manifests hold on it. *)
type chunk = { c_off : int; c_len : int; mutable refs : int }

(* One committed generation of one stream: an ordered list of chunk
   references that reassembles the full snapshot image. *)
type manifest = {
  m_stream : string;
  m_gen : int;
  m_entries : (int64 * int * int) array; (* content hash, absolute off, len *)
  m_image_len : int;
  m_image_csum : int64;
  m_off : int; (* absolute device offset of this manifest record *)
  m_len : int;
}

type t = {
  blk : Blockdev.t;
  space_bytes : int;
  mutable faults : Fault.t;
  mutable seq : int; (* global commit sequence (superblock flips) *)
  mutable space : int; (* active log space, 0 or 1 *)
  mutable head : int; (* append offset relative to the space start *)
  index : (int64, chunk) Hashtbl.t;
  streams : (string, manifest) Hashtbl.t; (* newest manifest per stream *)
  mutable catalogs : manifest list list; (* newest-first, at most 2 *)
  mutable commits : int;
  mutable torn : int;
  mutable bytes_written : int;
  mutable logical_bytes : int;
  mutable gc_runs : int;
  mutable torn_gc : int;
  mutable ref_rebuilds : int;
}

let device t = t.blk
let set_faults t f = t.faults <- f
let generation t = t.seq
let commits t = t.commits
let torn_commits t = t.torn
let bytes_written t = t.bytes_written
let logical_bytes t = t.logical_bytes
let gc_runs t = t.gc_runs
let torn_gc t = t.torn_gc
let ref_rebuilds t = t.ref_rebuilds

let chunks_live t =
  Hashtbl.fold (fun _ c n -> if c.refs > 0 then n + 1 else n) t.index 0

let stream_generation ?(id = "") t =
  match Hashtbl.find_opt t.streams id with Some m -> m.m_gen | None -> 0

let commit_cycles ~bytes = Int64.of_int ((2 * 2_000) + (2 * bytes))

let fleet_sectors_for ~streams ~image_bytes =
  let nchunks = max 1 ((image_bytes + chunk_payload - 1) / chunk_payload) in
  let d = nchunks * (chunk_header + chunk_payload) in
  let manifest = 128 + (24 * nchunks) in
  let catalog = 32 + (streams * 96) in
  let reftable = 32 + (16 * 2 * streams * nchunks) in
  let space =
    (streams * ((2 * d) + (4 * manifest)))
    + (4 * (catalog + reftable))
    + 65536
  in
  let space_sectors =
    (space + Blockdev.sector_bytes - 1) / Blockdev.sector_bytes
  in
  data_start_sector + (2 * space_sectors)

let sectors_for ~image_bytes = fleet_sectors_for ~streams:1 ~image_bytes

(* --- on-device records --- *)

let put_i64 b off v = Bytes.set_int64_le b off v
let get_i64 b off = Bytes.get_int64_le b off
let space_off t s = data_start + (s * t.space_bytes)
let sb_off slot = slot * Blockdev.sector_bytes

let superblock ~seq ~space ~head ~cat_off ~cat_len ~ref_off ~ref_len =
  let b = Bytes.create sb_bytes in
  put_i64 b 0 sb_magic;
  put_i64 b 8 (Int64.of_int seq);
  put_i64 b 16 (Int64.of_int space);
  put_i64 b 24 (Int64.of_int head);
  put_i64 b 32 (Int64.of_int cat_off);
  put_i64 b 40 (Int64.of_int cat_len);
  put_i64 b 48 (Int64.of_int ref_off);
  put_i64 b 56 (Int64.of_int ref_len);
  put_i64 b 64 (Fnv.hash_bytes ~pos:0 ~len:64 b);
  b

let chunk_record ~hash payload_src ~pos ~len =
  let b = Bytes.create (chunk_header + len) in
  put_i64 b 0 chunk_magic;
  put_i64 b 8 hash;
  put_i64 b 16 (Int64.of_int len);
  Bytes.blit payload_src pos b chunk_header len;
  b

let manifest_bytes m =
  let nlen = String.length m.m_stream in
  let n = Array.length m.m_entries in
  let total = 48 + nlen + (24 * n) + 8 in
  let b = Bytes.create total in
  put_i64 b 0 manifest_magic;
  put_i64 b 8 (Int64.of_int nlen);
  put_i64 b 16 (Int64.of_int n);
  put_i64 b 24 (Int64.of_int m.m_image_len);
  put_i64 b 32 m.m_image_csum;
  put_i64 b 40 (Int64.of_int m.m_gen);
  Bytes.blit_string m.m_stream 0 b 48 nlen;
  Array.iteri
    (fun i (h, off, len) ->
      let p = 48 + nlen + (24 * i) in
      put_i64 b p h;
      put_i64 b (p + 8) (Int64.of_int off);
      put_i64 b (p + 16) (Int64.of_int len))
    m.m_entries;
  put_i64 b (total - 8) (Fnv.hash_bytes ~pos:0 ~len:(total - 8) b);
  b

let manifest_len m = 48 + String.length m.m_stream + (24 * Array.length m.m_entries) + 8

(* Catalog: the stream directory — name, per-stream generation, and the
   absolute location of each stream's newest manifest.  Serialized in
   stream-name order for byte determinism. *)
let catalog_bytes ms =
  let ms = List.sort (fun a b -> compare a.m_stream b.m_stream) ms in
  let body =
    List.fold_left (fun acc m -> acc + 8 + String.length m.m_stream + 24) 0 ms
  in
  let total = 16 + body + 8 in
  let b = Bytes.create total in
  put_i64 b 0 catalog_magic;
  put_i64 b 8 (Int64.of_int (List.length ms));
  let p = ref 16 in
  List.iter
    (fun m ->
      let nlen = String.length m.m_stream in
      put_i64 b !p (Int64.of_int nlen);
      Bytes.blit_string m.m_stream 0 b (!p + 8) nlen;
      put_i64 b (!p + 8 + nlen) (Int64.of_int m.m_gen);
      put_i64 b (!p + 16 + nlen) (Int64.of_int m.m_off);
      put_i64 b (!p + 24 + nlen) (Int64.of_int m.m_len);
      p := !p + 32 + nlen)
    ms;
  put_i64 b (total - 8) (Fnv.hash_bytes ~pos:0 ~len:(total - 8) b);
  b

let reftable_bytes refs =
  let entries =
    Hashtbl.fold (fun h n acc -> if n > 0 then (h, n) :: acc else acc) refs []
    |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)
  in
  let n = List.length entries in
  let total = 16 + (16 * n) + 8 in
  let b = Bytes.create total in
  put_i64 b 0 reftable_magic;
  put_i64 b 8 (Int64.of_int n);
  List.iteri
    (fun i (h, r) ->
      put_i64 b (16 + (16 * i)) h;
      put_i64 b (24 + (16 * i)) (Int64.of_int r))
    entries;
  put_i64 b (total - 8) (Fnv.hash_bytes ~pos:0 ~len:(total - 8) b);
  b

(* References held on each content hash by the distinct manifests of the
   (at most two) recoverable catalogs.  Identity is the manifest's device
   offset; counts are per entry occurrence. *)
let refs_of_catalogs catalogs =
  let refs = Hashtbl.create 64 in
  let seen = Hashtbl.create 16 in
  List.iter
    (List.iter (fun m ->
         if not (Hashtbl.mem seen m.m_off) then begin
           Hashtbl.replace seen m.m_off ();
           Array.iter
             (fun (h, _, _) ->
               Hashtbl.replace refs h
                 (1 + Option.value ~default:0 (Hashtbl.find_opt refs h)))
             m.m_entries
         end))
    catalogs;
  refs

let set_refs t refs =
  Hashtbl.iter
    (fun h c ->
      c.refs <- Option.value ~default:0 (Hashtbl.find_opt refs h))
    t.index

(* --- commit planning --- *)

let bytes_equal_at a apos b bpos len =
  let ok = ref true in
  (try
     for i = 0 to len - 1 do
       if Bytes.unsafe_get a (apos + i) <> Bytes.unsafe_get b (bpos + i) then begin
         ok := false;
         raise Exit
       end
     done
   with Exit -> ());
  !ok

type plan = {
  p_gen : int;
  p_new : (int * Bytes.t) list; (* absolute off, chunk record (reversed) *)
  p_new_meta : (int64 * int * int) list; (* hash, absolute off, payload len *)
  p_shared : int;
  p_manifest : manifest;
  p_catalog : manifest list;
  p_refs : (int64, int) Hashtbl.t;
  p_cat_off : int;
  p_cat_b : Bytes.t;
  p_ref_off : int;
  p_ref_b : Bytes.t;
  p_data_len : int; (* bytes this commit appends into the space *)
  p_rot_len : int; (* chunk+manifest+catalog span (store.csum rot region) *)
  p_total : int; (* p_data_len + sb_bytes *)
}

let plan_commit t ~id image =
  let len = Bytes.length image in
  let nchunks = (len + chunk_payload - 1) / chunk_payload in
  let base = space_off t t.space in
  let cursor = ref t.head in
  let pending = Hashtbl.create 16 in
  (* hash -> image pos of the first new chunk with that content *)
  let news = ref [] and news_meta = ref [] and shared = ref 0 in
  let entries =
    Array.init (max 0 nchunks) (fun i ->
        let pos = i * chunk_payload in
        let plen = min chunk_payload (len - pos) in
        let h = Fnv.hash_bytes ~pos ~len:plen image in
        let dedup =
          match Hashtbl.find_opt pending h with
          | Some (ppos, off) when bytes_equal_at image ppos image pos plen ->
              Some (off, plen)
          | _ -> (
              match Hashtbl.find_opt t.index h with
              | Some c when c.c_len = plen ->
                  (* Verify before sharing: content-hash equality is not
                     content equality, and a rotted stored copy must not
                     be re-referenced. *)
                  let stored =
                    Blockdev.pread t.blk ~off:(c.c_off + chunk_header) ~len:plen
                  in
                  if bytes_equal_at stored 0 image pos plen then
                    Some (c.c_off, plen)
                  else None
              | _ -> None)
        in
        match dedup with
        | Some (off, plen) ->
            incr shared;
            (h, off, plen)
        | None ->
            let off = base + !cursor in
            let rec_b = chunk_record ~hash:h image ~pos ~len:plen in
            news := (off, rec_b) :: !news;
            news_meta := (h, off, plen) :: !news_meta;
            if not (Hashtbl.mem pending h) then
              Hashtbl.replace pending h (pos, off);
            cursor := !cursor + Bytes.length rec_b;
            (h, off, plen))
  in
  let p_gen = stream_generation ~id t + 1 in
  let m_off = base + !cursor in
  let m0 =
    {
      m_stream = id;
      m_gen = p_gen;
      m_entries = entries;
      m_image_len = len;
      m_image_csum = Fnv.hash_bytes image;
      m_off;
      m_len = 0;
    }
  in
  let m = { m0 with m_len = manifest_len m0 } in
  cursor := !cursor + m.m_len;
  let catalog =
    m
    :: Hashtbl.fold
         (fun name m' acc -> if name = id then acc else m' :: acc)
         t.streams []
  in
  let p_cat_off = base + !cursor in
  let p_cat_b = catalog_bytes catalog in
  cursor := !cursor + Bytes.length p_cat_b;
  let prev = match t.catalogs with c :: _ -> [ c ] | [] -> [] in
  let p_refs = refs_of_catalogs (catalog :: prev) in
  let p_ref_off = base + !cursor in
  let p_ref_b = reftable_bytes p_refs in
  cursor := !cursor + Bytes.length p_ref_b;
  let p_data_len = !cursor - t.head in
  {
    p_gen;
    p_new = List.rev !news;
    p_new_meta = List.rev !news_meta;
    p_shared = !shared;
    p_manifest = m;
    p_catalog = catalog;
    p_refs;
    p_cat_off;
    p_cat_b;
    p_ref_off;
    p_ref_b;
    p_data_len;
    p_rot_len = p_ref_off - (base + t.head);
    p_total = p_data_len + sb_bytes;
  }

let commit_bytes ?(id = "") t image = (plan_commit t ~id image).p_total

(* --- the write stream, cut at an arbitrary byte offset on a crash --- *)

let stream_writes t writes ~cut =
  match cut with
  | None ->
      List.iter
        (fun (off, b) -> Blockdev.pwrite t.blk ~off b ~pos:0 ~len:(Bytes.length b))
        writes
  | Some cut ->
      (* Power fails after [cut] bytes: the prefix lands, the rest never
         reaches the device. *)
      let budget = ref cut in
      List.iter
        (fun (off, b) ->
          let n = min !budget (Bytes.length b) in
          if n > 0 then Blockdev.pwrite t.blk ~off b ~pos:0 ~len:n;
          budget := !budget - n)
        writes

let rot_bit t ~off ~len =
  let rng = Fault.rng t.faults in
  let off = off + Rng.int rng len in
  let b = Blockdev.pread t.blk ~off ~len:1 in
  Bytes.set b 0
    (Char.chr (Char.code (Bytes.get b 0) lxor (1 lsl Rng.int rng 8)));
  Blockdev.pwrite t.blk ~off b ~pos:0 ~len:1

type outcome =
  | Committed of { gen : int; bytes : int; chunks_new : int; chunks_shared : int }
  | Torn of int

type gc_outcome =
  | Gc_committed of { bytes : int; live_chunks : int; reclaimed : int }
  | Gc_torn of int

(* --- GC compaction: copy live chunks into the other space, flip --- *)

type gc_plan = {
  g_writes : (int * Bytes.t) list;
  g_manifests : (string * manifest) list;
  g_refs : (int64, int) Hashtbl.t;
  g_head : int;
  g_live : int;
  g_total : int;
}

let plan_gc t =
  let target = 1 - t.space in
  let base = space_off t target in
  let streams =
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.streams []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let reloc = Hashtbl.create 64 in
  (* old absolute off -> new absolute off *)
  let cursor = ref 0 in
  let writes = ref [] in
  List.iter
    (fun (_, m) ->
      Array.iter
        (fun (h, off, len) ->
          if not (Hashtbl.mem reloc off) then begin
            let payload = Blockdev.pread t.blk ~off:(off + chunk_header) ~len in
            (* Copy raw: a rotted payload keeps its original hash in the
               record so recovery still detects the rot after compaction. *)
            let rec_b = chunk_record ~hash:h payload ~pos:0 ~len in
            Hashtbl.replace reloc off (base + !cursor);
            writes := (base + !cursor, rec_b) :: !writes;
            cursor := !cursor + Bytes.length rec_b
          end)
        m.m_entries)
    streams;
  let live = Hashtbl.length reloc in
  let manifests =
    List.map
      (fun (name, m) ->
        let entries =
          Array.map (fun (h, off, len) -> (h, Hashtbl.find reloc off, len)) m.m_entries
        in
        let m' = { m with m_entries = entries; m_off = base + !cursor } in
        let b = manifest_bytes m' in
        let m' = { m' with m_len = Bytes.length b } in
        writes := (m'.m_off, b) :: !writes;
        cursor := !cursor + Bytes.length b;
        (name, m'))
      streams
  in
  let cat_b = catalog_bytes (List.map snd manifests) in
  let cat_off = base + !cursor in
  writes := (cat_off, cat_b) :: !writes;
  cursor := !cursor + Bytes.length cat_b;
  let refs = refs_of_catalogs [ List.map snd manifests ] in
  let ref_b = reftable_bytes refs in
  let ref_off = base + !cursor in
  writes := (ref_off, ref_b) :: !writes;
  cursor := !cursor + Bytes.length ref_b;
  let seq = t.seq + 1 in
  let sb =
    superblock ~seq ~space:target ~head:!cursor ~cat_off ~cat_len:(Bytes.length cat_b)
      ~ref_off ~ref_len:(Bytes.length ref_b)
  in
  writes := (sb_off (seq mod 2), sb) :: !writes;
  {
    g_writes = List.rev !writes;
    g_manifests = manifests;
    g_refs = refs;
    g_head = !cursor;
    g_live = live;
    g_total = !cursor + sb_bytes;
  }

let gc_bytes t = (plan_gc t).g_total

let gc ?crash_at t =
  let p = plan_gc t in
  let cut =
    match crash_at with
    | Some n -> Some (max 0 (min n (p.g_total - 1)))
    | None ->
        if Fault.fire t.faults Fault.Store_gc ~now:(Int64.of_int t.commits) then
          Some (Rng.int (Fault.rng t.faults) p.g_total)
        else None
  in
  stream_writes t p.g_writes ~cut;
  match cut with
  | Some cut ->
      (* The pre-GC space and its superblocks were never touched, so the
         store's in-memory view — and a remount — still see the old truth. *)
      t.torn_gc <- t.torn_gc + 1;
      t.bytes_written <- t.bytes_written + cut;
      Gc_torn cut
  | None ->
      let reclaimed = max 0 (t.head - p.g_head) in
      t.seq <- t.seq + 1;
      t.space <- 1 - t.space;
      t.head <- p.g_head;
      Hashtbl.reset t.index;
      List.iter
        (fun (_, m) ->
          Array.iter
            (fun (h, off, len) ->
              Hashtbl.replace t.index h { c_off = off; c_len = len; refs = 0 })
            m.m_entries)
        p.g_manifests;
      set_refs t p.g_refs;
      Hashtbl.reset t.streams;
      List.iter (fun (name, m) -> Hashtbl.replace t.streams name m) p.g_manifests;
      t.catalogs <- [ List.map snd p.g_manifests ];
      t.gc_runs <- t.gc_runs + 1;
      t.bytes_written <- t.bytes_written + p.g_total;
      Gc_committed { bytes = p.g_total; live_chunks = p.g_live; reclaimed }

(* --- commit --- *)

let do_commit ?crash_at t ~id ~plan:p image =
  let seq = t.seq + 1 in
  let sb =
    superblock ~seq ~space:t.space ~head:(t.head + p.p_data_len)
      ~cat_off:p.p_cat_off ~cat_len:(Bytes.length p.p_cat_b) ~ref_off:p.p_ref_off
      ~ref_len:(Bytes.length p.p_ref_b)
  in
  let writes =
    p.p_new
    @ [
        (p.p_manifest.m_off, manifest_bytes p.p_manifest);
        (p.p_cat_off, p.p_cat_b);
        (p.p_ref_off, p.p_ref_b);
        (sb_off (seq mod 2), sb);
      ]
  in
  let cut =
    match crash_at with
    | Some n -> Some (max 0 (min n (p.p_total - 1)))
    | None ->
        (* [now] for window-style plans is the commit ordinal, so a plan
           can also say "power fails during commit 3". *)
        if Fault.fire t.faults Fault.Store_torn ~now:(Int64.of_int t.commits)
        then Some (Rng.int (Fault.rng t.faults) p.p_total)
        else None
  in
  stream_writes t writes ~cut;
  match cut with
  | Some cut ->
      (* The in-memory generation is deliberately not advanced — a real
         crash loses it anyway; [mount] re-derives the truth from the
         device. *)
      t.torn <- t.torn + 1;
      t.bytes_written <- t.bytes_written + cut;
      Torn cut
  | None ->
      t.bytes_written <- t.bytes_written + p.p_total;
      t.logical_bytes <- t.logical_bytes + Bytes.length image;
      let start = space_off t t.space + t.head in
      (if Fault.fire t.faults Fault.Store_csum ~now:(Int64.of_int t.commits)
       then
         (* Latent rot: flip one bit of this commit's chunk/manifest/
            catalog records so the next scan must detect it and fall back
            a generation.  Confined to the new records: rotting a chunk
            shared with older generations would (correctly, but uselessly
            for the model) take them all down at once. *)
         rot_bit t ~off:start ~len:p.p_rot_len);
      (if Fault.fire t.faults Fault.Store_ref ~now:(Int64.of_int t.commits)
       then
         (* A lost refcount update: rot the just-written refcount table;
            the next mount must spot the mismatch and rebuild from the
            live manifests. *)
         rot_bit t ~off:p.p_ref_off ~len:(Bytes.length p.p_ref_b));
      t.seq <- seq;
      t.head <- t.head + p.p_data_len;
      List.iter
        (fun (h, off, len) ->
          let refs =
            match Hashtbl.find_opt t.index h with Some c -> c.refs | None -> 0
          in
          Hashtbl.replace t.index h { c_off = off; c_len = len; refs })
        p.p_new_meta;
      set_refs t p.p_refs;
      Hashtbl.replace t.streams id p.p_manifest;
      let prev = match t.catalogs with c :: _ -> [ c ] | [] -> [] in
      t.catalogs <- p.p_catalog :: prev;
      t.commits <- t.commits + 1;
      Committed
        {
          gen = p.p_gen;
          bytes = p.p_total;
          chunks_new = List.length p.p_new_meta;
          chunks_shared = p.p_shared;
        }

let commit ?crash_at ?(id = "") t image =
  let p = plan_commit t ~id image in
  if t.head + p.p_data_len <= t.space_bytes then
    do_commit ?crash_at t ~id ~plan:p image
  else
    (* The active space is full: compact live chunks into the other
       space first.  A power cut during that compaction loses nothing —
       the commit is reported torn and the pre-GC state still rules. *)
    match gc t with
    | Gc_torn cut ->
        t.torn <- t.torn + 1;
        Torn cut
    | Gc_committed _ ->
        let p = plan_commit t ~id image in
        if t.head + p.p_data_len > t.space_bytes then
          invalid_arg "Store.commit: image does not fit a space even after GC";
        do_commit ?crash_at t ~id ~plan:p image

(* --- recovery scan --- *)

(* A candidate: one superblock slot whose structure — superblock,
   catalog, every manifest — validates end to end.  Chunk payloads are
   only re-read when a stream is actually reconstructed. *)
type cand = {
  k_seq : int;
  k_space : int;
  k_head : int;
  k_streams : (string * manifest) list;
  k_ref_off : int;
  k_ref_len : int;
}

exception Bad of Fault.site

let capacity t = Blockdev.capacity_bytes t.blk

let parse_manifest t ~stream ~gen ~off ~len =
  if len < 56 || off < data_start || off + len > capacity t then
    raise (Bad Fault.Store_torn);
  let b = Blockdev.pread t.blk ~off ~len in
  if get_i64 b 0 <> manifest_magic then raise (Bad Fault.Store_torn);
  let nlen = Int64.to_int (get_i64 b 8) in
  let n = Int64.to_int (get_i64 b 16) in
  let image_len = Int64.to_int (get_i64 b 24) in
  if
    nlen < 0 || n < 0 || image_len < 0
    || 48 + nlen + (24 * n) + 8 <> len
    || Int64.to_int (get_i64 b 40) <> gen
  then raise (Bad Fault.Store_torn);
  if get_i64 b (len - 8) <> Fnv.hash_bytes ~pos:0 ~len:(len - 8) b then
    raise (Bad Fault.Store_csum);
  if Bytes.sub_string b 48 nlen <> stream then raise (Bad Fault.Store_torn);
  let entries =
    Array.init n (fun i ->
        let p = 48 + nlen + (24 * i) in
        let h = get_i64 b p in
        let coff = Int64.to_int (get_i64 b (p + 8)) in
        let clen = Int64.to_int (get_i64 b (p + 16)) in
        if
          coff < data_start || clen <= 0 || clen > chunk_payload
          || coff + chunk_header + clen > capacity t
        then raise (Bad Fault.Store_torn);
        (h, coff, clen))
  in
  {
    m_stream = stream;
    m_gen = gen;
    m_entries = entries;
    m_image_len = image_len;
    m_image_csum = get_i64 b 32;
    m_off = off;
    m_len = len;
  }

let parse_catalog t ~off ~len =
  if len < 24 || off < data_start || off + len > capacity t then
    raise (Bad Fault.Store_torn);
  let b = Blockdev.pread t.blk ~off ~len in
  if get_i64 b 0 <> catalog_magic then raise (Bad Fault.Store_torn);
  if get_i64 b (len - 8) <> Fnv.hash_bytes ~pos:0 ~len:(len - 8) b then
    raise (Bad Fault.Store_csum);
  let n = Int64.to_int (get_i64 b 8) in
  if n < 0 || n > len then raise (Bad Fault.Store_torn);
  let p = ref 16 in
  List.init n (fun _ ->
      if !p + 8 > len - 8 then raise (Bad Fault.Store_torn);
      let nlen = Int64.to_int (get_i64 b !p) in
      if nlen < 0 || !p + 32 + nlen > len - 8 then raise (Bad Fault.Store_torn);
      let name = Bytes.sub_string b (!p + 8) nlen in
      let gen = Int64.to_int (get_i64 b (!p + 8 + nlen)) in
      let m_off = Int64.to_int (get_i64 b (!p + 16 + nlen)) in
      let m_len = Int64.to_int (get_i64 b (!p + 24 + nlen)) in
      p := !p + 32 + nlen;
      (name, gen, m_off, m_len))

let read_cand t slot =
  let sb = Blockdev.pread t.blk ~off:(sb_off slot) ~len:sb_bytes in
  if get_i64 sb 0 <> sb_magic then None (* never written; not a fault *)
  else if get_i64 sb 64 <> Fnv.hash_bytes ~pos:0 ~len:64 sb then begin
    Fault.observe t.faults Fault.Store_torn;
    None
  end
  else begin
    let seq = Int64.to_int (get_i64 sb 8) in
    let space = Int64.to_int (get_i64 sb 16) in
    let head = Int64.to_int (get_i64 sb 24) in
    let cat_off = Int64.to_int (get_i64 sb 32) in
    let cat_len = Int64.to_int (get_i64 sb 40) in
    let ref_off = Int64.to_int (get_i64 sb 48) in
    let ref_len = Int64.to_int (get_i64 sb 56) in
    if seq <= 0 || space < 0 || space > 1 || head < 0 || head > t.space_bytes
    then begin
      Fault.observe t.faults Fault.Store_torn;
      None
    end
    else
      try
        let streams =
          parse_catalog t ~off:cat_off ~len:cat_len
          |> List.map (fun (name, gen, m_off, m_len) ->
                 (name, parse_manifest t ~stream:name ~gen ~off:m_off ~len:m_len))
        in
        Some
          { k_seq = seq; k_space = space; k_head = head; k_streams = streams;
            k_ref_off = ref_off; k_ref_len = ref_len }
      with Bad site ->
        Fault.observe t.faults site;
        None
  end

let candidates t =
  List.filter_map (read_cand t) [ 0; 1 ]
  |> List.sort (fun a b -> compare b.k_seq a.k_seq)

(* Reassemble one stream's image from its manifest, re-validating every
   chunk record and the whole-image checksum. *)
let reconstruct t m =
  let image = Bytes.create m.m_image_len in
  let pos = ref 0 in
  let torn = ref false in
  let ok = ref true in
  (try
     Array.iter
       (fun (h, off, len) ->
         let hdr = Blockdev.pread t.blk ~off ~len:chunk_header in
         if
           get_i64 hdr 0 <> chunk_magic
           || get_i64 hdr 8 <> h
           || get_i64 hdr 16 <> Int64.of_int len
         then begin
           torn := true;
           raise Exit
         end;
         if !pos + len > m.m_image_len then begin
           torn := true;
           raise Exit
         end;
         let payload = Blockdev.pread t.blk ~off:(off + chunk_header) ~len in
         if Fnv.hash_bytes payload <> h then raise Exit;
         Bytes.blit payload 0 image !pos len;
         pos := !pos + len)
       m.m_entries
   with Exit | Invalid_argument _ -> ok := false);
  if !ok && !pos = m.m_image_len && Fnv.hash_bytes image = m.m_image_csum then
    Some image
  else begin
    Fault.observe t.faults
      (if !torn then Fault.Store_torn else Fault.Store_csum);
    None
  end

let recover ?(id = "") t =
  let rec go = function
    | [] -> None
    | c :: rest -> (
        match List.assoc_opt id c.k_streams with
        | None -> go rest (* stream absent from this generation; not a fault *)
        | Some m -> (
            match reconstruct t m with
            | Some image -> Some (image, m.m_gen)
            | None -> go rest))
  in
  go (candidates t)

(* --- construction --- *)

let of_blk ?(faults = Fault.none ()) blk =
  let nsectors = Blockdev.sectors blk in
  if nsectors < data_start_sector + 2 then
    invalid_arg "Store: device too small for two superblocks and data";
  let space_bytes = (nsectors - data_start_sector) / 2 * Blockdev.sector_bytes in
  {
    blk;
    space_bytes;
    faults;
    seq = 0;
    space = 0;
    head = 0;
    index = Hashtbl.create 64;
    streams = Hashtbl.create 4;
    catalogs = [];
    commits = 0;
    torn = 0;
    bytes_written = 0;
    logical_bytes = 0;
    gc_runs = 0;
    torn_gc = 0;
    ref_rebuilds = 0;
  }

let host_dma =
  (* The store is a host-side controller path: no guest DMA ever runs
     through it. *)
  { Blockdev.dma_read = (fun _ _ -> None); dma_write = (fun _ _ -> false) }

let create ?(sectors = 8192) ?faults () =
  of_blk ?faults (Blockdev.create ~sectors host_dma)

(* Check the stored refcount table against the truth recomputed from the
   live manifests.  Tolerates a superset (a torn commit can retire a
   catalog whose references the last-written table still counts), but a
   missing or under-counted reference means the table was lost or rotted. *)
let reftable_covers t ~off ~len refs =
  try
    if len < 24 || off < data_start || off + len > capacity t then raise Exit;
    let b = Blockdev.pread t.blk ~off ~len in
    if get_i64 b 0 <> reftable_magic then raise Exit;
    if get_i64 b (len - 8) <> Fnv.hash_bytes ~pos:0 ~len:(len - 8) b then
      raise Exit;
    let n = Int64.to_int (get_i64 b 8) in
    if n < 0 || 16 + (16 * n) + 8 <> len then raise Exit;
    let stored = Hashtbl.create 64 in
    for i = 0 to n - 1 do
      Hashtbl.replace stored (get_i64 b (16 + (16 * i)))
        (Int64.to_int (get_i64 b (24 + (16 * i))))
    done;
    Hashtbl.iter
      (fun h r ->
        if r > 0 && Option.value ~default:0 (Hashtbl.find_opt stored h) < r then
          raise Exit)
      refs;
    true
  with Exit | Invalid_argument _ -> false

let mount ?faults blk =
  let t = of_blk ?faults blk in
  (match candidates t with
  | [] -> ()
  | newest :: older ->
      t.seq <- newest.k_seq;
      t.space <- newest.k_space;
      t.head <- newest.k_head;
      Hashtbl.reset t.streams;
      List.iter (fun (n, m) -> Hashtbl.replace t.streams n m) newest.k_streams;
      (* Only same-space catalogs feed the index and refcounts: after a
         GC flip the older slot still describes the other space, whose
         chunks the active log can no longer share. *)
      let cats =
        List.map snd newest.k_streams
        :: (older
           |> List.filter (fun c -> c.k_space = newest.k_space)
           |> List.map (fun c -> List.map snd c.k_streams))
      in
      t.catalogs <- cats;
      List.iter
        (List.iter (fun m ->
             Array.iter
               (fun (h, off, len) ->
                 if not (Hashtbl.mem t.index h) then
                   Hashtbl.replace t.index h { c_off = off; c_len = len; refs = 0 })
               m.m_entries))
        cats;
      let refs = refs_of_catalogs cats in
      set_refs t refs;
      if not (reftable_covers t ~off:newest.k_ref_off ~len:newest.k_ref_len refs)
      then begin
        Fault.observe t.faults Fault.Store_ref;
        t.ref_rebuilds <- t.ref_rebuilds + 1
      end);
  t

let clone t =
  let n = Blockdev.sectors t.blk in
  let blk = Blockdev.create ~sectors:n host_dma in
  Blockdev.load blk ~sector:0 (Blockdev.read_back t.blk ~sector:0 ~count:n);
  mount blk
