open Velum_machine
open Velum_devices

module Fault = Velum_util.Fault

type session = {
  primary : Hypervisor.t;
  backup : Hypervisor.t;
  vm : Vm.t;
  twin : Vm.t;
  link : Link.t;
  faults : Fault.t;
  mutable epochs_completed : int;
  mutable pages_sent : int;
  mutable initial_pages : int;
  mutable initial_sync_cycles : int64;
  mutable paused_cycles : int64;
  mutable run_cycles : int64;
  mutable retransmits : int;
  mutable link_failed : bool;
  mutable finished : bool;
  mutable failed_over : Vm.t option; (* failover is idempotent *)
}

type stats = {
  epochs_completed : int;
  pages_sent : int;
  initial_pages : int;
  initial_sync_cycles : int64;
  bytes_sent : int;
  paused_cycles : int64;
  run_cycles : int64;
  retransmits : int;
  link_failed : bool;
}

type epoch_outcome = Committed | Link_failed

let vcpu_state_bytes = 1024

let copy_page (s : session) gfn =
  match Vm.resolve_read s.vm gfn with
  | None -> ()
  | Some src_ppn -> (
      let dst_ppn =
        match P2m.get s.twin.Vm.p2m gfn with
        | P2m.Present { hpa_ppn; _ } -> Some hpa_ppn
        | _ -> (
            match Frame_alloc.alloc s.twin.Vm.host.Host.alloc with
            | Some ppn ->
                P2m.set s.twin.Vm.p2m gfn
                  (P2m.Present { hpa_ppn = ppn; writable = true; cow = false });
                Some ppn
            | None -> None)
      in
      match dst_ppn with
      | None -> ()
      | Some dst_ppn ->
          Phys_mem.blit_between ~src:s.vm.Vm.host.Host.mem ~src_ppn
            ~dst:s.twin.Vm.host.Host.mem ~dst_ppn;
          s.pages_sent <- s.pages_sent + 1)

let copy_vcpus (s : session) =
  Array.iteri
    (fun i (vcpu : Vcpu.t) ->
      let src = vcpu.Vcpu.state and dst = s.twin.Vm.vcpus.(i).Vcpu.state in
      Array.blit src.Cpu.regs 0 dst.Cpu.regs 0 (Array.length src.Cpu.regs);
      Array.blit src.Cpu.csrs 0 dst.Cpu.csrs 0 (Array.length src.Cpu.csrs);
      dst.Cpu.pc <- src.Cpu.pc;
      dst.Cpu.mode <- src.Cpu.mode;
      dst.Cpu.halted <- src.Cpu.halted;
      dst.Cpu.waiting <- src.Cpu.waiting;
      dst.Cpu.instret <- src.Cpu.instret)
    s.vm.Vm.vcpus

let transfer_cycles (s : session) ~pages =
  Int64.of_int
    (Link.transfer_cycles s.link
       ~bytes:((pages * Migrate.page_wire_bytes) + vcpu_state_bytes))

let start ?faults ~primary ~backup ~vm ~link () =
  let faults = match faults with Some f -> f | None -> Link.faults link in
  let twin =
    Hypervisor.create_vm backup ~name:(vm.Vm.name ^ "-backup")
      ~mem_frames:(Vm.mem_frames vm)
      ~vcpu_count:(Array.length vm.Vm.vcpus)
      ~paging:vm.Vm.paging ~pv:vm.Vm.pv ~exec_mode:vm.Vm.exec_mode
      ~engine:(Vm.engine_kind vm) ~populate:false ~entry:0L ()
  in
  (* the backup must not run until failover *)
  Array.iter (fun v -> Vcpu.block v) twin.Vm.vcpus;
  let s =
    {
      primary;
      backup;
      vm;
      twin;
      link;
      faults;
      epochs_completed = 0;
      pages_sent = 0;
      initial_pages = 0;
      initial_sync_cycles = 0L;
      paused_cycles = 0L;
      run_cycles = 0L;
      retransmits = 0;
      link_failed = false;
      finished = false;
      failed_over = None;
    }
  in
  (* initial full synchronization with the guest paused *)
  let gfns =
    P2m.fold_present vm.Vm.p2m ~init:[] ~f:(fun acc ~gfn ~hpa_ppn:_ -> gfn :: acc)
  in
  List.iter (copy_page s) gfns;
  copy_vcpus s;
  s.initial_pages <- List.length gfns;
  s.pages_sent <- 0 (* epoch accounting starts after the full sync *);
  s.initial_sync_cycles <- transfer_cycles s ~pages:s.initial_pages;
  Vm.start_dirty_logging vm;
  s

(* Session time drives cycle-windowed faults (a "link dies at cycle C"
   plan), so a checkpoint started after C reliably fails. *)
let elapsed (s : session) =
  Int64.add s.initial_sync_cycles (Int64.add s.run_cycles s.paused_cycles)

let epoch (s : session) ~run_cycles =
  if s.finished then failwith "Replicate.epoch: session finished";
  if s.link_failed then Link_failed (* a dead link stays dead *)
  else begin
    Hypervisor.run_vm s.primary s.vm ~cycles:run_cycles;
    s.run_cycles <- Int64.add s.run_cycles run_cycles;
    let dirty = Vm.collect_dirty s.vm ~clear:false in
    Vm.start_dirty_logging s.vm (* re-arm write protection, clear bitmap *);
    if not (Fault.active s.faults) then begin
      List.iter (copy_page s) dirty;
      copy_vcpus s;
      s.paused_cycles <-
        Int64.add s.paused_cycles (transfer_cycles s ~pages:(List.length dirty));
      s.epochs_completed <- s.epochs_completed + 1;
      Committed
    end
    else begin
      (* Checkpoint commit must be atomic: ship every page plus the vCPU
         record through the reliable channel first (dropped acks are
         retransmitted; the backup dedups by sequence number and re-acks)
         and only then apply to the twin.  If retries exhaust, nothing is
         applied — the backup stays at the last completed checkpoint. *)
      let now = elapsed s in
      let ch = Migrate.Reliable.create ~now ~link:s.link ~faults:s.faults () in
      let outcome =
        try
          List.iter
            (fun gfn ->
              match Vm.resolve_read s.vm gfn with
              | None -> ()
              | Some ppn ->
                  Migrate.Reliable.send ch
                    ~body:(Phys_mem.frame_read s.vm.Vm.host.Host.mem ~ppn))
            dirty;
          Migrate.Reliable.send ch ~body:(Bytes.make (vcpu_state_bytes - 16) 'V');
          Committed
        with Migrate.Abort_migration _ -> Link_failed
      in
      s.retransmits <- s.retransmits + Migrate.Reliable.retransmits ch;
      s.paused_cycles <-
        Int64.add s.paused_cycles (Int64.sub (Migrate.Reliable.clock ch) now);
      (match outcome with
      | Committed ->
          List.iter (copy_page s) dirty;
          copy_vcpus s;
          s.epochs_completed <- s.epochs_completed + 1
      | Link_failed -> s.link_failed <- true);
      outcome
    end
  end

let stats (s : session) =
  {
    epochs_completed = s.epochs_completed;
    pages_sent = s.pages_sent;
    initial_pages = s.initial_pages;
    initial_sync_cycles = s.initial_sync_cycles;
    bytes_sent =
      ((s.pages_sent + s.initial_pages) * Migrate.page_wire_bytes)
      + ((s.epochs_completed + 1) * vcpu_state_bytes);
    paused_cycles = s.paused_cycles;
    run_cycles = s.run_cycles;
    retransmits = s.retransmits;
    link_failed = s.link_failed;
  }

(* Idempotent: HA control planes can race a heartbeat-driven failover
   against an explicit one, and the loser must not blow the whole
   recovery path up with a [Failure] — the second caller simply gets the
   twin the first activated. *)
let failover ?(fence_primary = true) (s : session) =
  match s.failed_over with
  | Some twin -> twin
  | None ->
      s.finished <- true;
      if fence_primary then begin
        Vm.stop_dirty_logging s.vm;
        Hypervisor.remove_vm s.primary s.vm
      end;
      (* unblock the twin at the last checkpoint *)
      Array.iter
        (fun (v : Vcpu.t) ->
          if not v.Vcpu.state.Cpu.halted then begin
            v.Vcpu.runstate <- Vcpu.Runnable;
            (Hypervisor.sched s.backup).Scheduler.wake v
          end
          else v.Vcpu.runstate <- Vcpu.Halted)
        s.twin.Vm.vcpus;
      Monitor.bump s.twin.Vm.monitor Monitor.E_ha_failover;
      s.failed_over <- Some s.twin;
      s.twin

let failed_over (s : session) = s.failed_over

let protect ?faults ~primary ~backup ~vm ~link ~epoch_cycles ~epochs () =
  let s = start ?faults ~primary ~backup ~vm ~link () in
  (try
     for _ = 1 to epochs do
       match epoch s ~run_cycles:epoch_cycles with
       | Committed -> ()
       | Link_failed -> raise Exit
     done
   with Exit -> ());
  let st = stats s in
  let twin = failover s in
  (twin, st)
