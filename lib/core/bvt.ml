type state = { slice : int; mutable queue : Vcpu.t list }

let min_vruntime st =
  List.fold_left
    (fun acc v -> match acc with None -> Some v.Vcpu.vruntime | Some m -> Some (min m v.Vcpu.vruntime))
    None st.queue

let create ?(slice = Scheduler.default_slice) () =
  let st = { slice; queue = [] } in
  let push v = if not (List.memq v st.queue) then st.queue <- st.queue @ [ v ] in
  (* [let rec]: the closures read [t.notify] at call time, so the hook
     is a per-scheduler field rather than a cell shared across
     instances. *)
  let rec t =
    {
      Scheduler.name = "bvt";
      enqueue = push;
      requeue = push;
      wake =
        (fun v ->
          Scheduler.tell t.Scheduler.notify (Some v)
            (Scheduler.N_wake { boosted = v.Vcpu.boosted });
          v.Vcpu.boosted <- false;
          (* Clamp a waker to the current minimum so it cannot monopolise
             the CPU to "catch up" for its sleep. *)
          (match min_vruntime st with
          | Some m when v.Vcpu.vruntime < m ->
              Scheduler.tell t.Scheduler.notify (Some v) Scheduler.N_clamp;
              v.Vcpu.vruntime <- m
          | _ -> ());
          push v);
      remove = (fun v -> st.queue <- List.filter (fun x -> not (x == v)) st.queue);
      pick =
        (fun ~now:_ ->
          let runnable = List.filter Vcpu.is_runnable st.queue in
          match runnable with
          | [] ->
              st.queue <- [];
              None
          | first :: rest ->
              let best =
                List.fold_left
                  (fun b v -> if v.Vcpu.vruntime < b.Vcpu.vruntime then v else b)
                  first rest
              in
              st.queue <- List.filter (fun x -> not (x == best)) st.queue;
              Some (best, st.slice));
      charge =
        (fun v ~used ~now:_ ->
          v.Vcpu.vruntime <-
            v.Vcpu.vruntime +. (float_of_int used /. float_of_int (max 1 v.Vcpu.weight)));
      next_release = (fun ~now:_ -> None);
      notify = None;
    }
  in
  t
