(** Log2-bucketed latency histogram for non-negative integer samples
    (cycles).  Bucket 0 covers values [0..1]; bucket [i] (i >= 1) covers
    [2^i .. 2^(i+1)-1].  All accumulation is integer arithmetic, so two
    runs fed identical samples read back bit-identical summaries — the
    property the trace export's determinism gate relies on.  Percentiles
    interpolate linearly within a bucket and are clamped to the observed
    min/max, so they are exact when a bucket holds one distinct value. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** [add t v] records one sample.  Negative values clamp to 0. *)

val count : t -> int
val sum : t -> int64
val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int
val mean : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0,100]; 0.0 when empty.

    @raise Invalid_argument if [p] is outside [0,100]. *)

val buckets : t -> (int * int) list
(** Nonzero buckets as [(lower_bound, count)], ascending. *)

val bucket_of : int -> int
(** Index of the bucket a value lands in (exposed for tests). *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
(** One-line [n/mean/p50/p95/p99/max] summary. *)
