let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int n)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg "Stats.percentile: NaN sample")
    xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let median xs = percentile xs 50.0

let jain_fairness xs =
  let n = Array.length xs in
  if n = 0 then 1.0
  else
    let s = Array.fold_left ( +. ) 0.0 xs in
    let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if s2 = 0.0 then 1.0 else s *. s /. (float_of_int n *. s2)

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive sample";
        acc := !acc +. log x)
      xs;
    exp (!acc /. float_of_int n)
  end

type running = {
  mutable count : int;
  mutable mean_acc : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

let running_create () =
  { count = 0; mean_acc = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity }

let running_add r x =
  r.count <- r.count + 1;
  let delta = x -. r.mean_acc in
  r.mean_acc <- r.mean_acc +. (delta /. float_of_int r.count);
  r.m2 <- r.m2 +. (delta *. (x -. r.mean_acc));
  if x < r.min_v then r.min_v <- x;
  if x > r.max_v then r.max_v <- x

let running_count r = r.count
let running_mean r = if r.count = 0 then 0.0 else r.mean_acc

let running_stddev r =
  if r.count < 2 then 0.0 else sqrt (r.m2 /. float_of_int r.count)

let running_min r = if r.count = 0 then 0.0 else r.min_v
let running_max r = if r.count = 0 then 0.0 else r.max_v
