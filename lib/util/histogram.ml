(* Log2-bucketed latency histogram.  Bucket 0 holds values <= 1; bucket i
   (i >= 1) holds values in [2^i, 2^(i+1)).  All state is integer, so two
   runs that feed the same samples produce bit-identical readouts. *)

let nbuckets = 63

type t = {
  buckets : int array;
  mutable n : int;
  mutable sum : int64;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { buckets = Array.make nbuckets 0; n = 0; sum = 0L; min_v = max_int; max_v = 0 }

let bucket_of v =
  if v <= 1 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 1 do
      incr i;
      v := !v lsr 1
    done;
    !i
  end

let add t v =
  let v = if v < 0 then 0 else v in
  t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
  t.n <- t.n + 1;
  t.sum <- Int64.add t.sum (Int64.of_int v);
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.n
let sum t = t.sum
let min_value t = if t.n = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.n = 0 then 0.0 else Int64.to_float t.sum /. float_of_int t.n

let bucket_lo i = if i = 0 then 0 else 1 lsl i
let bucket_hi i = (1 lsl (i + 1)) - 1

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p out of range";
  if t.n = 0 then 0.0
  else begin
    let rank = p /. 100.0 *. float_of_int (t.n - 1) in
    (* Walk to the bucket containing sample index [floor rank], then
       interpolate linearly inside the bucket's value bounds. *)
    let i = ref 0 and cum = ref 0 in
    while
      !i < nbuckets - 1
      && float_of_int (!cum + t.buckets.(!i)) <= rank
    do
      cum := !cum + t.buckets.(!i);
      incr i
    done;
    let in_bucket = t.buckets.(!i) in
    let v =
      if in_bucket = 0 then float_of_int (bucket_lo !i)
      else
        let pos = (rank -. float_of_int !cum) /. float_of_int in_bucket in
        float_of_int (bucket_lo !i)
        +. (pos *. float_of_int (bucket_hi !i - bucket_lo !i))
    in
    (* The true samples are bounded by the observed extrema. *)
    Float.min (float_of_int t.max_v) (Float.max (float_of_int (min_value t)) v)
  end

let buckets t =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.buckets.(i) > 0 then acc := (bucket_lo i, t.buckets.(i)) :: !acc
  done;
  !acc

let reset t =
  Array.fill t.buckets 0 nbuckets 0;
  t.n <- 0;
  t.sum <- 0L;
  t.min_v <- max_int;
  t.max_v <- 0

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%d" t.n
      (mean t) (percentile t 50.0) (percentile t 95.0) (percentile t 99.0)
      t.max_v
