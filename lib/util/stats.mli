(** Summary statistics for experiment reporting. *)

val mean : float array -> float
(** [mean xs] is the arithmetic mean; 0 on an empty array. *)

val stddev : float array -> float
(** [stddev xs] is the {e population} standard deviation (divides the sum
    of squares by [n], not [n-1]); 0 for fewer than two samples.  Bench
    tables across the repo assume this convention, and
    {!running_stddev} matches it exactly. *)

val percentile : float array -> float -> float
(** [percentile xs p] is the [p]-th percentile (0..100) by linear
    interpolation over the samples sorted with [Float.compare].

    @raise Invalid_argument on an empty array, [p] outside [0,100], or
    any NaN sample. *)

val median : float array -> float
(** [median xs] is [percentile xs 50.0]. *)

val jain_fairness : float array -> float
(** [jain_fairness xs] is Jain's fairness index
    [(sum xs)^2 / (n * sum (x^2))]: 1.0 means perfectly even allocation,
    [1/n] maximal unfairness.  Returns 1.0 for empty input. *)

val geometric_mean : float array -> float
(** [geometric_mean xs] for strictly positive samples; 0 on empty input.

    @raise Invalid_argument if any sample is non-positive. *)

type running
(** Online accumulator (Welford) for mean/variance without storing
    samples. *)

val running_create : unit -> running
val running_add : running -> float -> unit
val running_count : running -> int
val running_mean : running -> float
val running_stddev : running -> float
(** Population ([/ n]) standard deviation, matching {!stddev}. *)

val running_min : running -> float
val running_max : running -> float
