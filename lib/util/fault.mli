(** Deterministic, seeded fault injection.

    A fault plan decides — reproducibly, from a splitmix64 seed — when a
    simulated component misbehaves.  Each injection {e site} (frame drop,
    frame corruption, block-device transient error, ...) carries an
    independent probability plus an optional list of explicit cycle windows
    during which the fault {e always} fires.  Consumers ask [fire] at each
    opportunity; the plan draws from its private RNG stream so that equal
    seeds yield byte-identical fault schedules regardless of wall-clock
    time or host platform.

    The plan also keeps two counters per site: [injected] (how many times
    [fire] said yes) and [observed] (how many times a consumer detected and
    handled the fault — e.g. a checksum mismatch caught by the migration
    protocol).  Tests use these to assert that every injected fault is
    accounted for. *)

type site =
  | Drop  (** a link frame is silently lost *)
  | Corrupt  (** a link frame payload is bit-flipped in flight *)
  | Duplicate  (** a link frame is delivered twice *)
  | Delay  (** a link frame suffers extra queueing delay *)
  | Blk_transient  (** one block-device command fails, retry may succeed *)
  | Blk_permanent  (** the block device fails hard; sticky until reset *)
  | Partition  (** the link is down: nothing gets through *)
  | Store_torn
      (** power fails mid-commit to the durable snapshot store: the write
          stream is cut at an arbitrary byte offset *)
  | Store_csum
      (** latent store corruption: a committed record rots and fails its
          checksum on the next recovery scan *)
  | Store_gc
      (** power fails mid-compaction in the checkpoint store's garbage
          collector: the relocation stream is cut at an arbitrary byte
          offset; the pre-GC space must still rule *)
  | Store_ref
      (** a refcount-table update is lost or rots after a commit; the
          next mount must detect the mismatch and rebuild refcounts from
          the live manifests *)
  | Hb_loss  (** an HA heartbeat is lost before reaching the wire *)
  | Cluster_hb
      (** a cluster control-plane heartbeat or probe is lost before
          reaching its spoke link — drives the fleet failure detector's
          suspicion counters *)
  | Cluster_evac
      (** one evacuation restore attempt fails (bad read from the
          checkpoint store); the control plane retries next round and
          counts it against the VM's crash-loop budget *)
  | Cluster_drain
      (** one maintenance-drain migration attempt fails before it
          starts; the drain engine retries, then aborts the host's
          maintenance past its retry budget *)

val all_sites : site list
val site_name : site -> string

type t

val create : ?seed:int64 -> unit -> t
(** [create ?seed ()] is a fault plan with every probability zero and no
    windows.  [seed] defaults to [0L]. *)

val none : unit -> t
(** An inert plan: [fire] never returns [true] and draws no randomness.
    Useful as a default so consumers need no option plumbing. *)

val derive : t -> seed:int64 -> t
(** [derive t ~seed] is a fresh plan with [t]'s probabilities and
    windows but its own RNG stream rooted at [seed] and zeroed
    counters.  This is how a fleet gives every host the {e same} fault
    profile while keeping fault schedules independent and per-host —
    two hosts must never draw from one RNG. *)

val active : t -> bool
(** [active t] is [true] iff some site has a nonzero probability or at
    least one window — i.e. [fire] could ever return [true]. *)

val set_prob : t -> site -> float -> unit
(** [set_prob t site p] sets the per-opportunity probability for [site].
    [p] is clamped to [0, 1]. *)

val prob : t -> site -> float

val add_window : t -> site -> lo:int64 -> hi:int64 -> unit
(** [add_window t site ~lo ~hi] makes [site] fire deterministically for
    every opportunity whose cycle [now] satisfies [lo <= now <= hi]. *)

val fire : t -> site -> now:int64 -> bool
(** [fire t site ~now] decides whether the fault happens at this
    opportunity and counts it as injected if so.  Windows are checked
    first (no RNG draw); otherwise a probability draw is made iff the
    site's probability is positive, so sites with [p = 0] never perturb
    the RNG stream. *)

val observe : t -> site -> unit
(** [observe t site] records that a consumer detected/handled one injected
    fault of this kind (e.g. a checksum mismatch, an error status). *)

val injected : t -> site -> int
val observed : t -> site -> int

val rng : t -> Rng.t
(** The plan's private generator — for deterministic auxiliary choices
    (which byte to corrupt, how long a delay lasts).  Consumers must only
    draw from it when a fault actually fired, to keep schedules stable. *)

val parse : string -> (t, string) result
(** [parse spec] builds a plan from a comma-separated spec, e.g.
    ["seed=42,drop=0.05,corrupt=0.01,partition@10000-20000"].  Each clause
    is [seed=N], [SITE=PROB], or [SITE@LO-HI] (a cycle window).  Site
    names: drop corrupt dup delay blk blkperm partition store.torn
    store.csum store.gc store.ref hb.loss cluster.hb cluster.evac
    cluster.drain. *)

val pp : Format.formatter -> t -> unit
(** Prints the per-site injected/observed counters (nonzero sites only). *)
