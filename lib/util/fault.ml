type site =
  | Drop
  | Corrupt
  | Duplicate
  | Delay
  | Blk_transient
  | Blk_permanent
  | Partition
  | Store_torn
  | Store_csum
  | Store_gc
  | Store_ref
  | Hb_loss
  | Cluster_hb
  | Cluster_evac
  | Cluster_drain

let all_sites =
  [
    Drop; Corrupt; Duplicate; Delay; Blk_transient; Blk_permanent; Partition;
    Store_torn; Store_csum; Store_gc; Store_ref; Hb_loss; Cluster_hb;
    Cluster_evac; Cluster_drain;
  ]

let nsites = List.length all_sites

let site_index = function
  | Drop -> 0
  | Corrupt -> 1
  | Duplicate -> 2
  | Delay -> 3
  | Blk_transient -> 4
  | Blk_permanent -> 5
  | Partition -> 6
  | Store_torn -> 7
  | Store_csum -> 8
  | Store_gc -> 9
  | Store_ref -> 10
  | Hb_loss -> 11
  | Cluster_hb -> 12
  | Cluster_evac -> 13
  | Cluster_drain -> 14

let site_name = function
  | Drop -> "drop"
  | Corrupt -> "corrupt"
  | Duplicate -> "dup"
  | Delay -> "delay"
  | Blk_transient -> "blk"
  | Blk_permanent -> "blkperm"
  | Partition -> "partition"
  | Store_torn -> "store.torn"
  | Store_csum -> "store.csum"
  | Store_gc -> "store.gc"
  | Store_ref -> "store.ref"
  | Hb_loss -> "hb.loss"
  | Cluster_hb -> "cluster.hb"
  | Cluster_evac -> "cluster.evac"
  | Cluster_drain -> "cluster.drain"

type t = {
  rng : Rng.t;
  prob : float array;
  windows : (int64 * int64) list array;
  injected : int array;
  observed : int array;
}

let create ?(seed = 0L) () =
  {
    rng = Rng.create ~seed;
    prob = Array.make nsites 0.0;
    windows = Array.make nsites [];
    injected = Array.make nsites 0;
    observed = Array.make nsites 0;
  }

let none () = create ()

let derive t ~seed =
  {
    rng = Rng.create ~seed;
    prob = Array.copy t.prob;
    windows = Array.copy t.windows;
    injected = Array.make nsites 0;
    observed = Array.make nsites 0;
  }

let active t =
  Array.exists (fun p -> p > 0.0) t.prob
  || Array.exists (fun w -> w <> []) t.windows

let set_prob t site p =
  t.prob.(site_index site) <- Float.max 0.0 (Float.min 1.0 p)

let prob t site = t.prob.(site_index site)

let add_window t site ~lo ~hi =
  let i = site_index site in
  t.windows.(i) <- t.windows.(i) @ [ (lo, hi) ]

let in_window t i ~now =
  List.exists
    (fun (lo, hi) -> Int64.compare lo now <= 0 && Int64.compare now hi <= 0)
    t.windows.(i)

let fire t site ~now =
  let i = site_index site in
  let hit =
    if t.windows.(i) <> [] && in_window t i ~now then true
    else
      (* Only draw when the probability can matter: sites left at zero must
         not perturb the stream of sites that are in use. *)
      t.prob.(i) > 0.0 && Rng.float t.rng < t.prob.(i)
  in
  if hit then t.injected.(i) <- t.injected.(i) + 1;
  hit

let observe t site =
  let i = site_index site in
  t.observed.(i) <- t.observed.(i) + 1

let injected t site = t.injected.(site_index site)
let observed t site = t.observed.(site_index site)
let rng t = t.rng

let site_of_name = function
  | "drop" -> Some Drop
  | "corrupt" -> Some Corrupt
  | "dup" -> Some Duplicate
  | "delay" -> Some Delay
  | "blk" -> Some Blk_transient
  | "blkperm" -> Some Blk_permanent
  | "partition" -> Some Partition
  | "store.torn" -> Some Store_torn
  | "store.csum" -> Some Store_csum
  | "store.gc" -> Some Store_gc
  | "store.ref" -> Some Store_ref
  | "hb.loss" -> Some Hb_loss
  | "cluster.hb" -> Some Cluster_hb
  | "cluster.evac" -> Some Cluster_evac
  | "cluster.drain" -> Some Cluster_drain
  | _ -> None

let parse spec =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let clauses =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  (* The seed clause must apply regardless of position, so scan it first. *)
  let seed = ref 0L in
  let rest =
    List.filter
      (fun c ->
        match String.index_opt c '=' with
        | Some i when String.sub c 0 i = "seed" -> (
            let v = String.sub c (i + 1) (String.length c - i - 1) in
            match Int64.of_string_opt v with
            | Some s ->
                seed := s;
                false
            | None -> true)
        | _ -> true)
      clauses
  in
  let t = create ~seed:!seed () in
  let rec go = function
    | [] -> Ok t
    | c :: tl -> (
        match (String.index_opt c '=', String.index_opt c '@') with
        | Some i, _ when String.sub c 0 i <> "seed" -> (
            let name = String.sub c 0 i in
            let v = String.sub c (i + 1) (String.length c - i - 1) in
            match (site_of_name name, float_of_string_opt v) with
            | Some site, Some p when p >= 0.0 && p <= 1.0 ->
                set_prob t site p;
                go tl
            | Some _, _ -> err "fault spec: bad probability %S in %S" v c
            | None, _ -> err "fault spec: unknown site %S in %S" name c)
        | Some _, _ ->
            (* seed=... with an unparsable value reaches here *)
            err "fault spec: bad seed clause %S" c
        | None, Some i -> (
            let name = String.sub c 0 i in
            let v = String.sub c (i + 1) (String.length c - i - 1) in
            let range =
              match String.index_opt v '-' with
              | Some j -> (
                  let lo = String.sub v 0 j in
                  let hi = String.sub v (j + 1) (String.length v - j - 1) in
                  match (Int64.of_string_opt lo, Int64.of_string_opt hi) with
                  | Some lo, Some hi -> Some (lo, hi)
                  | _ -> None)
              | None -> None
            in
            match (site_of_name name, range) with
            | Some site, Some (lo, hi) ->
                add_window t site ~lo ~hi;
                go tl
            | None, _ -> err "fault spec: unknown site %S in %S" name c
            | Some _, None -> err "fault spec: bad window %S in %S" v c)
        | None, None -> err "fault spec: cannot parse clause %S" c)
  in
  go rest

let pp fmt t =
  let any = ref false in
  List.iter
    (fun site ->
      let i = site_index site in
      if t.injected.(i) > 0 || t.observed.(i) > 0 then begin
        any := true;
        Format.fprintf fmt "  fault.%-10s injected %6d  observed %6d@."
          (site_name site) t.injected.(i) t.observed.(i)
      end)
    all_sites;
  if not !any then Format.fprintf fmt "  (no faults injected)@."
