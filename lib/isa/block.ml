type cls = Fast | Slow

let classify = function
  | Instr.Nop | Instr.Alu _ | Instr.Alui _ | Instr.Lui _ | Instr.Load _
  | Instr.Store _ | Instr.Branch _ | Instr.Jal _ | Instr.Jalr _ ->
      Fast
  | Instr.Ecall | Instr.Ebreak | Instr.Hcall | Instr.Csrr _ | Instr.Csrw _
  | Instr.Sret | Instr.Sfence | Instr.Wfi | Instr.In _ | Instr.Out _ | Instr.Halt
    ->
      Slow

let is_terminator insn =
  match insn with
  | Instr.Branch _ | Instr.Jal _ | Instr.Jalr _ -> true
  | _ -> classify insn = Slow

let preserves_translation = function
  | Instr.Nop | Instr.Alu _ | Instr.Alui _ | Instr.Lui _ | Instr.Branch _
  | Instr.Jal _ | Instr.Jalr _ | Instr.Load _ | Instr.Store _ ->
      true
  | _ -> false

let preserves_translation_unconditionally = function
  | Instr.Nop | Instr.Alu _ | Instr.Alui _ | Instr.Lui _ | Instr.Branch _
  | Instr.Jal _ | Instr.Jalr _ ->
      true
  | _ -> false

type decoded = { insns : Instr.t array; classes : cls array; terminated : bool }

let decode_span ~read_word ~max_instrs =
  let acc = ref [] in
  let count = ref 0 in
  let terminated = ref false in
  let stop = ref false in
  while (not !stop) && !count < max_instrs do
    match Instr.decode (read_word !count) with
    | None -> stop := true
    | Some insn ->
        acc := insn :: !acc;
        incr count;
        if is_terminator insn then begin
          terminated := true;
          stop := true
        end
  done;
  let insns = Array.of_list (List.rev !acc) in
  { insns; classes = Array.map classify insns; terminated = !terminated }
