(** Straight-line block decoding for the translation-caching execution
    engine.

    A {e block} is a maximal run of instructions starting at some byte
    offset that an engine may execute without re-consulting memory:
    decoding stops at (and includes) the first {e terminator} — any
    control transfer (branch, jump), trap-raising instruction (ecall,
    ebreak, hypercall) or sensitive/privileged instruction (CSR access,
    [sret], [sfence], [wfi], port I/O, [halt]) — because after such an
    instruction the PC, privilege mode or translation regime may have
    changed.  Blocks never cross a page-frame boundary, so every
    instruction of a block shares one fetch translation. *)

type cls =
  | Fast  (** pure register/ALU/memory work: no mode, PC-discontinuity or
              translation side effects beyond the access itself *)
  | Slow  (** traps, hypercalls and sensitive instructions: emulation or
              a world switch may be required *)

val classify : Instr.t -> cls

val is_terminator : Instr.t -> bool
(** Ends a straight-line block (the terminator itself is still part of
    the block).  Every [Slow] instruction terminates; so do the [Fast]
    control transfers ([Branch], [Jal], [Jalr]). *)

val preserves_translation : Instr.t -> bool
(** [preserves_translation i] — executing [i] {e can} leave every
    address translation outcome unchanged.  For [Nop], [Alu], [Alui],
    [Lui], [Branch], [Jal] and [Jalr] this is unconditional; [Load] and
    [Store] are also included — relaxed from the original definition —
    because their translations do not disturb the TLB as long as they
    are served by an existing entry (a data micro-TLB hit, see {!Dtlb}
    in the machine library).  An engine using this relaxed predicate
    must pair it with a dynamic check that the instruction really did
    leave translation state alone (mode unchanged and TLB generation
    unchanged); without such a check, use
    {!preserves_translation_unconditionally}. *)

val preserves_translation_unconditionally : Instr.t -> bool
(** The strict, statically-certain form: executing the instruction
    touches no memory (so it cannot evict or fill TLB entries), cannot
    trap (mode unchanged) and cannot write [satp] or flush.  True
    exactly for [Nop], [Alu], [Alui], [Lui], [Branch], [Jal] and
    [Jalr]. *)

type decoded = {
  insns : Instr.t array;
  classes : cls array;  (** parallel to [insns] *)
  terminated : bool;
      (** the last instruction is a terminator (as opposed to the span
          ending at an undecodable word or the read limit) *)
}

val decode_span : read_word:(int -> int64) -> max_instrs:int -> decoded
(** [decode_span ~read_word ~max_instrs] decodes instruction words
    [read_word 0], [read_word 1], … into a straight-line block: decoding
    stops after the first terminator, before the first word that fails
    to decode, or after [max_instrs] instructions, whichever comes
    first.  The result may be empty (first word undecodable). *)
