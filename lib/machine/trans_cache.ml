open Velum_isa

type block = {
  insns : Instr.t array;
  classes : Block.cls array;
  start_off : int;
  mutable valid : bool;
  mutable stamp : int;
}

type key = int

(* Packed key: frame number, byte offset within the frame (multiple of
   8, needs 12 bits) and two regime bits. *)
let key ~ppn ~off ~user ~paging =
  (Int64.to_int ppn lsl 14)
  lor (off lsl 2)
  lor (if user then 1 else 0)
  lor (if paging then 2 else 0)

let key_ppn k = k lsr 14

(* Per-frame index: the blocks decoded from the frame plus the union of
   their byte spans.  The span is a conservative bound (it never
   shrinks while blocks remain) that lets a write notification for a
   disjoint part of the frame — a stack slot or data word sharing a
   page with code — return after two integer compares instead of
   walking the block set. *)
type frame_info = {
  blocks : (key, block) Hashtbl.t;
  mutable span_lo : int;
  mutable span_hi : int;
}

type t = {
  capacity : int;
  table : (key, block) Hashtbl.t;
  by_frame : (int, frame_info) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable evictions : int;
  mutable tlb_flushes : int;
}

let create ?(capacity = 1024) () =
  if capacity <= 0 then invalid_arg "Trans_cache.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (min capacity 256);
    by_frame = Hashtbl.create 64;
    tick = 0;
    hits = 0;
    misses = 0;
    invalidations = 0;
    evictions = 0;
    tlb_flushes = 0;
  }

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some b when b.valid ->
      t.tick <- t.tick + 1;
      b.stamp <- t.tick;
      t.hits <- t.hits + 1;
      Some b
  | _ ->
      t.misses <- t.misses + 1;
      None

let unlink t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some b ->
      b.valid <- false;
      Hashtbl.remove t.table k;
      let ppn = key_ppn k in
      (match Hashtbl.find_opt t.by_frame ppn with
      | Some info ->
          Hashtbl.remove info.blocks k;
          if Hashtbl.length info.blocks = 0 then Hashtbl.remove t.by_frame ppn
      | None -> ())

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k b ->
      match !victim with
      | Some (_, stamp) when b.stamp >= stamp -> ()
      | _ -> victim := Some (k, b.stamp))
    t.table;
  match !victim with
  | Some (k, _) ->
      unlink t k;
      t.evictions <- t.evictions + 1
  | None -> ()

let insert t ~key:k ~ppn ~insns ~classes ~start_off =
  if Hashtbl.length t.table >= t.capacity then evict_lru t;
  t.tick <- t.tick + 1;
  let b = { insns; classes; start_off; valid = true; stamp = t.tick } in
  (* Replacing a dead entry under the same key is possible after an
     invalidation raced a decode; last write wins. *)
  unlink t k;
  Hashtbl.replace t.table k b;
  let ppn_i = Int64.to_int ppn in
  let info =
    match Hashtbl.find_opt t.by_frame ppn_i with
    | Some i -> i
    | None ->
        let i = { blocks = Hashtbl.create 4; span_lo = max_int; span_hi = 0 } in
        Hashtbl.replace t.by_frame ppn_i i;
        i
  in
  Hashtbl.replace info.blocks k b;
  info.span_lo <- min info.span_lo start_off;
  info.span_hi <- max info.span_hi (start_off + (Arch.instr_bytes * Array.length insns));
  b

(* Drop only the blocks whose decoded span overlaps the written byte
   range [lo, hi) of the frame.  Precision matters: guest kernels keep
   register-save areas and data words in the same pages as code, and
   whole-frame invalidation would re-decode the trap handler on every
   context save. *)
let invalidate_range t ~ppn ~lo ~hi =
  let ppn_i = Int64.to_int ppn in
  match Hashtbl.find_opt t.by_frame ppn_i with
  | None -> ()
  | Some info ->
      if hi > info.span_lo && lo < info.span_hi then begin
        let keys =
          Hashtbl.fold
            (fun k b acc ->
              if
                b.start_off < hi
                && b.start_off + (Arch.instr_bytes * Array.length b.insns) > lo
              then k :: acc
              else acc)
            info.blocks []
        in
        List.iter
          (fun k ->
            unlink t k;
            t.invalidations <- t.invalidations + 1)
          keys
      end

let invalidate_frame t ~ppn = invalidate_range t ~ppn ~lo:0 ~hi:Arch.page_size

let note_flush t = t.tlb_flushes <- t.tlb_flushes + 1

let flush t =
  Hashtbl.iter (fun _ b -> b.valid <- false) t.table;
  Hashtbl.reset t.table;
  Hashtbl.reset t.by_frame

let entries t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
let invalidations t = t.invalidations
let evictions t = t.evictions
let tlb_flushes t = t.tlb_flushes
