open Velum_isa

type key = int

type block = {
  key : key;
  insns : Instr.t array;
  classes : Block.cls array;
  start_off : int;
  mutable valid : bool;
  mutable stamp : int;
  mutable succ_fall : block option;
  mutable succ_taken : block option;
  mutable preds : (block * bool) list;
      (* incoming chain edges: [(p, taken)] means [p]'s fall-through
         (false) or taken (true) successor slot points at this block, so
         invalidating this block can sever every such edge *)
  mutable heat : int;
      (* dispatches since the last promotion attempt; the trace tier's
         hotness signal (covers in-block loops that never cross a chain
         edge) *)
  mutable hot_fall : int;
  mutable hot_taken : int;
      (* per-direction chain-follow counts, guiding which way the
         promotion walker extends through a branch junction *)
  mutable trace_at : trace option;
      (* the superblock trace headed by this block, if promoted *)
  mutable in_traces : trace list;
      (* every trace this block is a constituent of; invalidating the
         block severs them all *)
}

and trace = {
  t_prog : Trace_ir.prog;
  t_cost : Cost_model.t;
      (* the cost model the per-op cycle constants were baked against;
         dispatch requires physical equality with the live ctx's model *)
  t_blocks : block list;  (* constituents, head first *)
}

(* Packed key: frame number, byte offset within the frame (multiple of
   8, needs 12 bits) and two regime bits. *)
let key ~ppn ~off ~user ~paging =
  (Int64.to_int ppn lsl 14)
  lor (off lsl 2)
  lor (if user then 1 else 0)
  lor (if paging then 2 else 0)

let key_ppn k = k lsr 14

(* Everything but the offset bits: frame, user and paging — the parts of
   the key that must agree between two blocks for a chain edge, or
   between a block and the current dispatch, to be meaningful. *)
let regime_mask = lnot (0xFFF lsl 2)
let same_regime_key b k = (b.key lxor k) land regime_mask = 0

(* Per-frame index: the blocks decoded from the frame plus the union of
   their byte spans.  The span is a conservative bound (it never
   shrinks while blocks remain) that lets a write notification for a
   disjoint part of the frame — a stack slot or data word sharing a
   page with code — return after two integer compares instead of
   walking the block set. *)
type frame_info = {
  blocks : (key, block) Hashtbl.t;
  mutable span_lo : int;
  mutable span_hi : int;
}

type t = {
  capacity : int;
  table : (key, block) Hashtbl.t;
  by_frame : (int, frame_info) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable evictions : int;
  mutable tlb_flushes : int;
  mutable chains_patched : int;
  mutable chain_follows : int;
  mutable chains_severed : int;
  mutable traces_built : int;
  mutable trace_follows : int;
  mutable traces_severed : int;
  mutable trace_side_exits : int;
}

let create ?(capacity = 1024) () =
  if capacity <= 0 then invalid_arg "Trans_cache.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (min capacity 256);
    by_frame = Hashtbl.create 64;
    tick = 0;
    hits = 0;
    misses = 0;
    invalidations = 0;
    evictions = 0;
    tlb_flushes = 0;
    chains_patched = 0;
    chain_follows = 0;
    chains_severed = 0;
    traces_built = 0;
    trace_follows = 0;
    traces_severed = 0;
    trace_side_exits = 0;
  }

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some b when b.valid ->
      t.tick <- t.tick + 1;
      b.stamp <- t.tick;
      t.hits <- t.hits + 1;
      Some b
  | _ ->
      t.misses <- t.misses + 1;
      None

(* ---- chain edges ----

   [succ_fall]/[succ_taken] are patched by the engine on first dispatch
   of the successor and let hot block→block transfers skip the hashtable.
   An edge is only a prediction: following one re-checks validity, key
   regime and span containment, so a stale or wrong edge can cost a
   repatch but never wrong execution.  Severing on every unlink keeps
   evicted/invalidated blocks unreachable through any predecessor. *)

let slot_of b ~taken = if taken then b.succ_taken else b.succ_fall

(* ---- trace severing ----

   A trace is only as alive as its weakest constituent: any block being
   invalidated, evicted or replaced takes every trace containing it
   down with it.  The [live] ref is shared with the executing engine,
   which observes the severing mid-trace (after the very store that
   caused it).  The head's [heat] is reset so re-promotion requires the
   path to prove itself hot again over fresh code. *)

let sever_traces t b =
  match b.in_traces with
  | [] -> ()
  | traces ->
      List.iter
        (fun tr ->
          if !(tr.t_prog.Trace_ir.live) then begin
            tr.t_prog.Trace_ir.live := false;
            t.traces_severed <- t.traces_severed + 1;
            List.iter
              (fun cb ->
                cb.in_traces <- List.filter (fun x -> not (x == tr)) cb.in_traces;
                match cb.trace_at with
                | Some x when x == tr ->
                    cb.trace_at <- None;
                    cb.heat <- 0
                | _ -> ())
              tr.t_blocks
          end)
        traces;
      b.in_traces <- []

let sever_incoming t b =
  List.iter
    (fun (p, taken) ->
      match slot_of p ~taken with
      | Some s when s == b ->
          if taken then p.succ_taken <- None else p.succ_fall <- None;
          t.chains_severed <- t.chains_severed + 1
      | _ -> ())
    b.preds;
  b.preds <- []

let drop_outgoing b =
  let drop taken slot =
    match slot with
    | Some s ->
        s.preds <- List.filter (fun (p, tk) -> not (p == b && tk = taken)) s.preds
    | None -> ()
  in
  drop false b.succ_fall;
  drop true b.succ_taken;
  b.succ_fall <- None;
  b.succ_taken <- None

let set_succ t ~from ~taken ~target =
  if
    from.valid && target.valid
    && same_regime_key from target.key
    && not (match slot_of from ~taken with Some s -> s == target | None -> false)
  then begin
    (match slot_of from ~taken with
    | Some old ->
        old.preds <- List.filter (fun (p, tk) -> not (p == from && tk = taken)) old.preds
    | None -> ());
    if taken then from.succ_taken <- Some target else from.succ_fall <- Some target;
    if not (List.exists (fun (p, tk) -> p == from && tk = taken) target.preds) then
      target.preds <- (from, taken) :: target.preds;
    t.chains_patched <- t.chains_patched + 1
  end

let follow t ~from ~taken ~key:k ~off =
  match slot_of from ~taken with
  | Some b
    when b.valid && same_regime_key b k && off >= b.start_off
         && off < b.start_off + (Arch.instr_bytes * Array.length b.insns) ->
      t.tick <- t.tick + 1;
      b.stamp <- t.tick;
      t.chain_follows <- t.chain_follows + 1;
      if taken then from.hot_taken <- from.hot_taken + 1
      else from.hot_fall <- from.hot_fall + 1;
      Some b
  | _ -> None

let unlink t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some b ->
      b.valid <- false;
      sever_traces t b;
      sever_incoming t b;
      drop_outgoing b;
      Hashtbl.remove t.table k;
      let ppn = key_ppn k in
      (match Hashtbl.find_opt t.by_frame ppn with
      | Some info ->
          Hashtbl.remove info.blocks k;
          if Hashtbl.length info.blocks = 0 then Hashtbl.remove t.by_frame ppn
      | None -> ())

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k b ->
      match !victim with
      | Some (_, stamp) when b.stamp >= stamp -> ()
      | _ -> victim := Some (k, b.stamp))
    t.table;
  match !victim with
  | Some (k, _) ->
      unlink t k;
      t.evictions <- t.evictions + 1
  | None -> ()

let insert t ~key:k ~ppn ~insns ~classes ~start_off =
  if Hashtbl.length t.table >= t.capacity then evict_lru t;
  t.tick <- t.tick + 1;
  let b =
    {
      key = k;
      insns;
      classes;
      start_off;
      valid = true;
      stamp = t.tick;
      succ_fall = None;
      succ_taken = None;
      preds = [];
      heat = 0;
      hot_fall = 0;
      hot_taken = 0;
      trace_at = None;
      in_traces = [];
    }
  in
  (* Replacing a dead entry under the same key is possible after an
     invalidation raced a decode; last write wins. *)
  unlink t k;
  Hashtbl.replace t.table k b;
  let ppn_i = Int64.to_int ppn in
  let info =
    match Hashtbl.find_opt t.by_frame ppn_i with
    | Some i -> i
    | None ->
        let i = { blocks = Hashtbl.create 4; span_lo = max_int; span_hi = 0 } in
        Hashtbl.replace t.by_frame ppn_i i;
        i
  in
  Hashtbl.replace info.blocks k b;
  info.span_lo <- min info.span_lo start_off;
  info.span_hi <- max info.span_hi (start_off + (Arch.instr_bytes * Array.length insns));
  b

(* Drop only the blocks whose decoded span overlaps the written byte
   range [lo, hi) of the frame.  Precision matters: guest kernels keep
   register-save areas and data words in the same pages as code, and
   whole-frame invalidation would re-decode the trap handler on every
   context save. *)
let invalidate_range t ~ppn ~lo ~hi =
  let ppn_i = Int64.to_int ppn in
  match Hashtbl.find_opt t.by_frame ppn_i with
  | None -> ()
  | Some info ->
      if hi > info.span_lo && lo < info.span_hi then begin
        let keys =
          Hashtbl.fold
            (fun k b acc ->
              if
                b.start_off < hi
                && b.start_off + (Arch.instr_bytes * Array.length b.insns) > lo
              then k :: acc
              else acc)
            info.blocks []
        in
        List.iter
          (fun k ->
            unlink t k;
            t.invalidations <- t.invalidations + 1)
          keys
      end

let invalidate_frame t ~ppn = invalidate_range t ~ppn ~lo:0 ~hi:Arch.page_size

let note_flush t = t.tlb_flushes <- t.tlb_flushes + 1

let flush t =
  Hashtbl.iter
    (fun _ b ->
      b.valid <- false;
      if b.succ_fall <> None then t.chains_severed <- t.chains_severed + 1;
      if b.succ_taken <> None then t.chains_severed <- t.chains_severed + 1;
      b.succ_fall <- None;
      b.succ_taken <- None;
      b.preds <- [];
      (* count each live trace once, via its head *)
      (match b.trace_at with
      | Some tr when !(tr.t_prog.Trace_ir.live) ->
          tr.t_prog.Trace_ir.live := false;
          t.traces_severed <- t.traces_severed + 1
      | _ -> ());
      b.trace_at <- None;
      b.in_traces <- [])
    t.table;
  Hashtbl.reset t.table;
  Hashtbl.reset t.by_frame

(* ---- superblock trace promotion ----

   The walker turns a hot head block into a predicted execution path:
   starting from the head, it repeatedly steps through the terminator's
   most likely continuation — the chain direction with the higher
   follow count, the static jal target — collecting whole blocks as
   segments, and stops at a dynamic jump (jalr), a slow instruction
   (the trace then ends in a static exit), an unknown or unterminated
   successor, a block already in the trace (the builder wires the back
   edge into an in-trace loop) or the size caps.  Everything it decides
   is a prediction only: the builder resolves every branch direction to
   either an in-trace op or a side exit, so a wrong guess costs a trace
   exit, never wrong execution. *)

let max_trace_segments = 8
let max_trace_ops = 96
let promote_threshold = 16

(* the block's key with its offset bits replaced by [off] *)
let key_at b off = (b.key land regime_mask) lor (off lsl 2)

let block_terminated b =
  let len = Array.length b.insns in
  len > 0 && Block.is_terminator b.insns.(len - 1)

(* The block (if any) to continue the trace through for a control
   transfer landing at page offset [tgt_off]: an exact-start table entry
   first, else the chained successor when its span contains the target.
   Must be valid and terminated, and must not restart a block already
   collected (loops stay inside the trace). *)
let successor_for t b ~taken ~tgt_off ~collected =
  if tgt_off < 0 || tgt_off >= Arch.page_size || tgt_off land (Arch.instr_bytes - 1) <> 0
  then None
  else
    let candidate =
      match Hashtbl.find_opt t.table (key_at b tgt_off) with
      | Some s when s.valid -> Some s
      | _ -> (
          match slot_of b ~taken with
          | Some s
            when s.valid && tgt_off >= s.start_off
                 && tgt_off < s.start_off + (Arch.instr_bytes * Array.length s.insns) ->
              Some s
          | _ -> None)
    in
    match candidate with
    | Some s when block_terminated s && not (List.exists (fun x -> x == s) collected) ->
        Some s
    | _ -> None

let try_promote t ~head ~cost =
  if (not head.valid) || head.trace_at <> None || not (block_terminated head) then false
  else begin
    let ib = Arch.instr_bytes in
    let rec walk rev_blocks nops b =
      let len = Array.length b.insns in
      let term = b.insns.(len - 1) in
      let term_off = b.start_off + ((len - 1) * ib) in
      let accept () = List.rev rev_blocks in
      let extend ~taken ~tgt_off =
        match successor_for t b ~taken ~tgt_off ~collected:rev_blocks with
        | Some s
          when List.length rev_blocks < max_trace_segments
               && nops + Array.length s.insns <= max_trace_ops ->
            walk (s :: rev_blocks) (nops + Array.length s.insns) s
        | _ -> accept ()
      in
      match term with
      | Instr.Jal (_, delta) ->
          let delta = Int64.to_int delta in
          extend ~taken:(delta <> ib) ~tgt_off:(term_off + delta)
      | Instr.Branch (_, _, _, delta) ->
          let t_off = term_off + Int64.to_int delta and f_off = term_off + ib in
          (* follow the observed-hotter direction; cold branches guess
             backward-taken (a loop) over fall-through *)
          let prefer_taken =
            if b.hot_taken <> b.hot_fall then b.hot_taken > b.hot_fall
            else t_off <= term_off
          in
          if prefer_taken then extend ~taken:true ~tgt_off:t_off
          else extend ~taken:false ~tgt_off:f_off
      | _ ->
          (* jalr (dynamic) or a slow instruction (static exit) *)
          accept ()
    in
    let blocks = walk [ head ] (Array.length head.insns) head in
    let segments =
      List.map
        (fun b -> { Trace_ir.seg_insns = b.insns; seg_off = b.start_off })
        blocks
    in
    match Trace_ir.build ~cost ~segments with
    | None -> false
    | Some prog ->
        let tr = { t_prog = prog; t_cost = cost; t_blocks = blocks } in
        List.iter
          (fun b ->
            b.in_traces <- tr :: b.in_traces;
            (* keep constituents warm so LRU churn does not sever a hot
               trace from under itself *)
            t.tick <- t.tick + 1;
            b.stamp <- t.tick)
          blocks;
        head.trace_at <- Some tr;
        t.traces_built <- t.traces_built + 1;
        true
  end

let note_trace_follow t = t.trace_follows <- t.trace_follows + 1
let note_trace_side_exit t = t.trace_side_exits <- t.trace_side_exits + 1

let entries t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
let invalidations t = t.invalidations
let evictions t = t.evictions
let tlb_flushes t = t.tlb_flushes
let chains_patched t = t.chains_patched
let chain_follows t = t.chain_follows
let chains_severed t = t.chains_severed
let traces_built t = t.traces_built
let trace_follows t = t.trace_follows
let traces_severed t = t.traces_severed
let trace_side_exits t = t.trace_side_exits
