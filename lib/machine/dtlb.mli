(** Data-side micro-TLB.

    A small direct-mapped array of recent data (load/store) translations
    sitting in front of the full translate path, for use by execution
    engines that must stay cycle- and behaviour-lockstep with the
    interpreter.  Every cached entry is verified at fill time against
    the backing {!Tlb} — the entry is only stored if the TLB would, on
    its own, satisfy the same access as a zero-cycle hit — and is
    consulted only while {!Tlb.generation} is unchanged, i.e. while no
    TLB entry has been flushed, evicted or replaced.  A micro-TLB hit is
    therefore observationally identical to the real translate call it
    replaces (same physical address, zero charged cycles, one
    {!Tlb.note_hit}), just without the full MMU/nested/shadow call
    chain. *)

type t

val create : tlb:Tlb.t -> t
(** [create ~tlb] makes an empty micro-TLB validated against [tlb]. *)

val backing : t -> Tlb.t
val generation : t -> int
(** Current generation of the backing TLB (see {!Tlb.generation}). *)

val lookup :
  t -> access:Velum_isa.Arch.access -> user:bool -> int64 -> int64 option
(** [lookup t ~access ~user va] returns the physical address when the
    cached translation for [va]'s page is still certified by the backing
    TLB's generation; replicates the [note_hit] the real hit would have
    recorded.  Fetch accesses never hit. *)

val fill :
  t -> access:Velum_isa.Arch.access -> user:bool -> va:int64 -> pa:int64 -> unit
(** [fill t ~access ~user ~va ~pa] caches a successful RAM translation,
    provided the backing TLB verifiably holds a matching entry.  MMIO
    and TLB-bypassing translations are never cached. *)

val hits : t -> int
val misses : t -> int
val fills : t -> int
val reset_stats : t -> unit
